#!/bin/sh
# Scripted strong-scaling campaign (docs/SCALING.md).
#
# Sweeps the calibrated performance model over the paper's rank counts
# and writes BENCH_scaling.json (per-point modelled time, efficiency and
# communication fraction for every strategy, plus the derived headline
# numbers: ~18x GPU speedup, DSL-vs-Fortran crossover, Amdahl ceiling).
# The emitter self-validates; a malformed sweep exits non-zero.
#
# Usage:
#   scripts/run_scaling.sh [MAX_RANKS] [OUT.json]
#     MAX_RANKS  highest rank count to sweep (default 320, the paper's)
#     OUT.json   output path (default BENCH_scaling.json in the repo root)
set -eu
cd "$(dirname "$0")/.."

max_ranks="${1:-320}"
out="${2:-BENCH_scaling.json}"

dune build bench/main.exe
./_build/default/bench/main.exe scaling --max-ranks "$max_ranks" --out "$out"

# structural sanity when a JSON parser is around (the emitter already
# validated the numbers; this guards the serialization itself)
if command -v python3 > /dev/null 2>&1; then
  python3 - "$out" << 'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["validated"] is True
assert d["series"]["dsl_bands"][0]["efficiency"] == 1.0
for name, rows in d["series"].items():
    assert rows, name
    for r in rows:
        assert r["time_s"] > 0 and 0 < r["efficiency"] <= 1.2, (name, r)
        assert 0 <= r["comm_fraction"] <= 1, (name, r)
print("run_scaling: %s parses, %d series validated" % (sys.argv[1], len(d["series"])))
EOF
fi

echo "run_scaling: campaign to $max_ranks ranks written to $out"
