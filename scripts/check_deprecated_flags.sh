#!/bin/sh
# Smoke test of the backend-selection CLI surface:
#   - `--backend SPEC` parses every canonical spec silently;
#   - the deprecated `--target` alias still works but warns on stderr,
#     including the legacy `hybrid:R:D` spelling;
#   - malformed specs are rejected with exit code 2 and a grammar hint.
# Runs a 1-step 4x4 solve per case, so it is cheap enough for CI.
set -eu
cd "$(dirname "$0")/.."

dune build bin/bte_sim.exe 2>/dev/null
SIM=_build/default/bin/bte_sim.exe
RUN="$SIM run --nx 4 --ny 4 --dirs 2 --bands 2 --steps 1"

status=0
fail() {
  echo "FAIL: $1" >&2
  status=1
}

# canonical --backend specs: accepted, no deprecation warning
# (gpu:NAME:R = R band-parallel ranks; gpu:NAME:GxR = G devices per rank
#  tiling the cells x R ranks splitting the bands)
for spec in serial threads:2 bands:2 cells:2 hybrid:2x2 gpu gpu:a100 \
            gpu:a6000:2 gpu:a6000:2x2; do
  err=$($RUN --backend "$spec" 2>&1 >/dev/null) || fail "--backend $spec exited nonzero"
  case "$err" in
    *deprecated*) fail "--backend $spec warned: $err" ;;
  esac
done

# deprecated --target alias: accepted, warns on stderr
for spec in cells:2 hybrid:2:2 gpu:a6000:2x2; do
  err=$($RUN --target "$spec" 2>&1 >/dev/null) || fail "--target $spec exited nonzero"
  case "$err" in
    *deprecated*) : ;;
    *) fail "--target $spec did not print a deprecation warning" ;;
  esac
done

# malformed specs: rejected with exit 2 and the grammar in the message
for spec in nonsense cells:0 hybrid:2 gpu:v100 gpu:a6000:0x2 gpu:a6000:2x; do
  if err=$($RUN --backend "$spec" 2>&1 >/dev/null); then
    fail "--backend $spec was accepted"
  else
    case "$err" in
      *"bad backend spec"*) : ;;
      *) fail "--backend $spec: unexpected error: $err" ;;
    esac
  fi
done

# the facade request surface (`bte_sim request`): the same backend
# grammar arrives through JSON; canonical specs parse silently, bad
# specs are rejected with exit 2, and the run subcommand above remains
# the deprecation-warning alias path
REQ='{"scenario":"hotspot","nx":4,"ny":4,"ndirs":2,"nbands":2,"nsteps":1'
for spec in serial cells:2 hybrid:2x2 gpu:a6000:2x2; do
  err=$($SIM request --json "$REQ,\"backend\":\"$spec\"}" 2>&1 >/dev/null) \
    || fail "request backend $spec exited nonzero"
  case "$err" in
    *deprecated*) fail "request backend $spec warned: $err" ;;
  esac
done
if err=$($SIM request --json "$REQ,\"backend\":\"nonsense\"}" 2>&1 >/dev/null); then
  fail "request accepted a bad backend spec"
else
  case "$err" in
    *"bad backend spec"*) : ;;
    *) fail "request bad backend: unexpected error: $err" ;;
  esac
fi
if $SIM request --json '{"nx":4}' >/dev/null 2>&1; then
  fail "request accepted JSON without a scenario"
fi

if [ "$status" -eq 0 ]; then
  echo "check_deprecated_flags: OK"
fi
exit "$status"
