#!/bin/sh
# Static-analysis gate for the generated IR programs.
#
# Builds the lint CLI, runs the analyzer's seeded-defect selftest (every
# error code must be reproduced exactly), then lints every shipped
# scenario under the full backend x overlap matrix and requires zero
# findings. Exits non-zero on any regression; meant for CI and local
# pre-commit use. See docs/ANALYSIS.md for the pass catalogue.
set -eu
cd "$(dirname "$0")/.."

dune build bin/bte_lint.exe

echo "== analyzer selftest (seeded-defect fixtures) =="
./_build/default/bin/bte_lint.exe --selftest

echo "== scenario x backend x overlap lint matrix (naive IR, --opt 0) =="
./_build/default/bin/bte_lint.exe --opt 0

echo "== scenario x backend x overlap lint matrix (optimized IR, --opt 2) =="
./_build/default/bin/bte_lint.exe --opt 2

echo "== communication-schedule verifier (multi-rank and multi-device) =="
# the configurations whose programs actually exchange ghosts: the Comm
# pass (A025-A032) elaborates and simulates their full message schedule
./_build/default/bin/bte_lint.exe --backend cells:2 --backend cells:4 \
  --backend gpu:a6000:2x2 --backend gpu:a6000:2x4

echo "== machine-readable lint output (--format json) =="
json_out=$(mktemp)
./_build/default/bin/bte_lint.exe --backend cells:2 --opt 0 --format json \
  > "$json_out"
grep -q '"summary"' "$json_out" || {
  echo "check_ir: JSON lint output missing the summary object"
  cat "$json_out"
  rm -f "$json_out"
  exit 1
}
grep -q '"errors": 0' "$json_out" || {
  echo "check_ir: JSON lint output reports errors (or lost the count)"
  cat "$json_out"
  rm -f "$json_out"
  exit 1
}
rm -f "$json_out"

echo "== native codegen smoke test (cold compile, then warm cache) =="
dune build bin/bte_sim.exe
cache_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir"' EXIT
# cold: compiles the kernel into the fresh cache (cache_misses >= 1)
./_build/default/bin/bte_sim.exe run --nx 6 --ny 6 --dirs 4 --bands 3 \
  --steps 10 --eval native --codegen-cache-dir "$cache_dir" --metrics \
  > /tmp/check_ir_native_cold.$$ 2>&1
grep -q 'codegen.cache_misses.*[1-9]' /tmp/check_ir_native_cold.$$ || {
  echo "check_ir: cold native run did not compile a kernel"
  cat /tmp/check_ir_native_cold.$$
  rm -f /tmp/check_ir_native_cold.$$
  exit 1
}
rm -f /tmp/check_ir_native_cold.$$
ls "$cache_dir"/finch_kernel_*.cmxs > /dev/null || {
  echo "check_ir: no compiled kernel persisted in the cache dir"
  exit 1
}
# warm: a second process must load from disk without recompiling
./_build/default/bin/bte_sim.exe run --nx 6 --ny 6 --dirs 4 --bands 3 \
  --steps 10 --eval native --codegen-cache-dir "$cache_dir" --metrics \
  > /tmp/check_ir_native_warm.$$ 2>&1
grep -q 'codegen.cache_misses.*0$' /tmp/check_ir_native_warm.$$ || {
  echo "check_ir: warm native run recompiled instead of hitting the cache"
  cat /tmp/check_ir_native_warm.$$
  rm -f /tmp/check_ir_native_warm.$$
  exit 1
}
rm -f /tmp/check_ir_native_warm.$$

echo "== serve scheduler smoke (3-request batch; emitter self-validates) =="
dune build bin/bte_serve.exe
serve_out=$(mktemp)
# one temperature repeated three times: a single 3-request batch whose
# speedup over the cold per-request pipeline is robustly > 1 (both the
# program cache and the scenario-table memo hit on the repeats)
./_build/default/bin/bte_serve.exe --requests 1 --repeat 3 --scenario hotspot \
  --nx 8 --dirs 4 --bands 3 --steps 4 --json "$serve_out" > /dev/null || {
  echo "check_ir: serve smoke run failed (batched != solo, no cache hits, or no speedup)"
  rm -f "$serve_out"
  exit 1
}
for field in '"validated": true' '"max_abs_diff": 0' '"program_hits"' \
             '"batched"' '"unbatched"' '"requests_per_s"'; do
  grep -q "$field" "$serve_out" || {
    echo "check_ir: BENCH_serve.json missing $field"
    rm -f "$serve_out"
    exit 1
  }
done
rm -f "$serve_out"

echo "== tuner smoke (--backend auto cold+warm, both scenarios; bench campaign self-validates) =="
tune_cache=$(mktemp -d)
for scenario in hotspot corner; do
  # cold: the decision is computed and persisted
  ./_build/default/bin/bte_sim.exe run --scenario "$scenario" --nx 8 --ny 8 \
    --dirs 4 --bands 3 --steps 4 --backend auto \
    --tune-cache-dir "$tune_cache" --metrics \
    > /tmp/check_ir_tune_cold.$$ 2>&1
  grep -q 'tuner: plan ' /tmp/check_ir_tune_cold.$$ || {
    echo "check_ir: $scenario auto run did not report a tuned plan"
    cat /tmp/check_ir_tune_cold.$$
    rm -f /tmp/check_ir_tune_cold.$$
    exit 1
  }
  grep -q 'tune.cache_misses.*1$' /tmp/check_ir_tune_cold.$$ || {
    echo "check_ir: $scenario cold auto run did not miss the decision cache"
    cat /tmp/check_ir_tune_cold.$$
    rm -f /tmp/check_ir_tune_cold.$$
    exit 1
  }
  rm -f /tmp/check_ir_tune_cold.$$
  # warm: a second process must reuse the persisted decision
  ./_build/default/bin/bte_sim.exe run --scenario "$scenario" --nx 8 --ny 8 \
    --dirs 4 --bands 3 --steps 4 --backend auto \
    --tune-cache-dir "$tune_cache" --metrics \
    > /tmp/check_ir_tune_warm.$$ 2>&1
  grep -q 'tune.cache_hits.*1$' /tmp/check_ir_tune_warm.$$ || {
    echo "check_ir: $scenario warm auto run re-tuned instead of hitting the cache"
    cat /tmp/check_ir_tune_warm.$$
    rm -f /tmp/check_ir_tune_warm.$$
    exit 1
  }
  rm -f /tmp/check_ir_tune_warm.$$
done
# the explain table lists the candidate ranking with the pick marked
./_build/default/bin/bte_sim.exe run --nx 6 --ny 6 --dirs 4 --bands 3 \
  --steps 4 --backend auto --explain-plan --tune-cache-dir "$tune_cache" \
  > /tmp/check_ir_tune_explain.$$ 2>&1
grep -q 'candidate(s) scored' /tmp/check_ir_tune_explain.$$ || {
  echo "check_ir: --explain-plan printed no candidate table"
  cat /tmp/check_ir_tune_explain.$$
  rm -f /tmp/check_ir_tune_explain.$$
  exit 1
}
grep -q -- '<- chosen' /tmp/check_ir_tune_explain.$$ || {
  echo "check_ir: --explain-plan marked no chosen plan"
  cat /tmp/check_ir_tune_explain.$$
  rm -f /tmp/check_ir_tune_explain.$$
  exit 1
}
rm -f /tmp/check_ir_tune_explain.$$
rm -rf "$tune_cache"
# the measured campaign: hand-picked plans vs auto, emitter self-validates
dune build bench/main.exe
tune_out=$(mktemp)
FINCH_TUNE_CACHE_DIR=$(mktemp -d) ./_build/default/bench/main.exe tune \
  --out "$tune_out" > /dev/null || {
  echo "check_ir: tune campaign failed (auto plan not competitive or not bit-identical)"
  rm -f "$tune_out"
  exit 1
}
grep -q '"validated": true' "$tune_out" || {
  echo "check_ir: BENCH_tune.json missing the validated marker"
  rm -f "$tune_out"
  exit 1
}
rm -f "$tune_out"

echo "== scaling campaign smoke (tiny 8-rank sweep; emitter self-validates) =="
scaling_out=$(mktemp)
scripts/run_scaling.sh 8 "$scaling_out" > /dev/null || {
  echo "check_ir: tiny scaling campaign failed"
  rm -f "$scaling_out"
  exit 1
}
grep -q '"validated": true' "$scaling_out" || {
  echo "check_ir: BENCH_scaling.json missing the validated marker"
  rm -f "$scaling_out"
  exit 1
}
grep -q '"gpu_grid_8dev"' "$scaling_out" || {
  echo "check_ir: scaling campaign dropped the multi-device series"
  rm -f "$scaling_out"
  exit 1
}
rm -f "$scaling_out"

echo "check_ir: selftest, full lint matrix (opt 0 and 2), comm-schedule verifier, JSON output, native codegen cache, tuner, serve scheduler and scaling smoke clean"
