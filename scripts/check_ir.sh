#!/bin/sh
# Static-analysis gate for the generated IR programs.
#
# Builds the lint CLI, runs the analyzer's seeded-defect selftest (every
# error code must be reproduced exactly), then lints every shipped
# scenario under the full backend x overlap matrix and requires zero
# findings. Exits non-zero on any regression; meant for CI and local
# pre-commit use. See docs/ANALYSIS.md for the pass catalogue.
set -eu
cd "$(dirname "$0")/.."

dune build bin/bte_lint.exe

echo "== analyzer selftest (seeded-defect fixtures) =="
./_build/default/bin/bte_lint.exe --selftest

echo "== scenario x backend x overlap lint matrix (naive IR, --opt 0) =="
./_build/default/bin/bte_lint.exe --opt 0

echo "== scenario x backend x overlap lint matrix (optimized IR, --opt 2) =="
./_build/default/bin/bte_lint.exe --opt 2

echo "check_ir: selftest and full lint matrix clean at opt 0 and opt 2"
