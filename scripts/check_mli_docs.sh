#!/bin/sh
# Documentation-coverage lint for the runtime and GPU-simulator interfaces.
#
# odoc is not installed in this environment and every library is private,
# so `dune build @doc` succeeds without rendering anything; this script is
# the enforceable stand-in. It checks that every `val` declared in the
# covered interfaces is followed by an odoc comment (the repo's
# convention is docs-after: `val f : ...` then `(** ... *)`).
set -eu
cd "$(dirname "$0")/.."

status=0
for f in lib/prt/*.mli lib/gpu/*.mli lib/analysis/*.mli lib/fvm/*.mli \
         lib/opt/*.mli lib/codegen/*.mli lib/codegen/iface/*.mli \
         lib/serve/*.mli lib/tune/*.mli; do
  out=$(awk '
    function flush() {
      if (pending) {
        printf "%s:%d: undocumented val %s\n", FILENAME, vline, vname
        pending = 0
      }
    }
    /\(\*\*/ { pending = 0 }
    /^[[:space:]]*(type|exception|module)[[:space:]]/ { flush() }
    /^[[:space:]]*val[[:space:]]/ { flush(); pending = 1; vline = FNR; vname = $2 }
    END { flush() }
  ' "$f")
  if [ -n "$out" ]; then
    echo "$out"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_mli_docs: every val in lib/prt, lib/gpu, lib/analysis, lib/fvm, lib/opt, lib/codegen, lib/serve and lib/tune is documented"
fi
exit "$status"
