(* Coarse-grained 3-D BTE run (paper Section III-A mentions such runs were
   "performed successfully" before the paper focuses on 2-D).

   A box with a hot spot in the middle of the ceiling; the example checks
   that the DSL pipeline (3-component upwind, six boundary regions, the
   sphere quadrature) works unchanged in 3-D and prints the temperature
   on a vertical slice through the spot. *)

open Bte

let () =
  let sc = Setup3d.coarse in
  let built = Setup3d.build sc in
  Printf.printf
    "3-D box %dx%dx%d, %d directions (%d az x %d po), %d bands, %d steps (dt %.2g s)\n%!"
    sc.Setup3d.nx sc.Setup3d.ny sc.Setup3d.nz built.Setup3d.angles.Angles.ndirs
    sc.Setup3d.n_azimuthal sc.Setup3d.n_polar
    (Dispersion.nbands built.Setup3d.disp)
    sc.Setup3d.nsteps built.Setup3d.scenario.Setup3d.dt;

  let t0 = Unix.gettimeofday () in
  let o = Finch.Solve.solve built.Setup3d.problem in
  Printf.printf "wall time %.2f s\n%!" (Unix.gettimeofday () -. t0);

  let ft = Finch.Solve.field o "T" in
  let stats =
    Diag.temperature_stats built.Setup3d.mesh ft ~t_ambient:sc.Setup3d.t_cold
  in
  Format.printf "%a@." Diag.pp_stats stats;

  (* vertical profile through the centre column (floor -> ceiling) *)
  let i = sc.Setup3d.nx / 2 and j = sc.Setup3d.ny / 2 in
  print_string "centre column T (floor -> ceiling): ";
  for k = 0 to sc.Setup3d.nz - 1 do
    let c = Fvm.Mesh_gen.cell_at_3d ~nx:sc.Setup3d.nx ~ny:sc.Setup3d.ny i j k in
    Printf.printf "%.2f " (Fvm.Field.get ft c 0)
  done;
  print_newline ();

  (* sanity: the ceiling cell under the spot is the hottest *)
  let peak = stats.Diag.peak_pos in
  Printf.printf "peak at (%.2f, %.2f, %.2f) um\n" (1e6 *. peak.(0))
    (1e6 *. peak.(1)) (1e6 *. peak.(2))
