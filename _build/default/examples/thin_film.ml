(* The phonon size effect: cross-plane conduction through thin silicon
   films.  For films thick against the phonon mean free path the BTE
   recovers Fourier's law (k_eff -> k_bulk); for thin films boundary
   scattering throttles transport (ballistic limit).  This is why
   sub-micron devices need the BTE instead of Fourier — the paper's
   opening argument — demonstrated here with the same DSL on 1-D meshes
   and the point-implicit stepper. *)

open Bte

let () =
  let quick = not (Array.exists (( = ) "--full") Sys.argv) in
  let cfg =
    if quick then
      { Film.default_config with Film.ncells = 24; ndirs = 8; n_la_bands = 6;
        max_steps = 20_000 }
    else Film.default_config
  in
  let t_mid = (cfg.Film.t_hot +. cfg.Film.t_cold) /. 2. in
  Printf.printf
    "cross-plane silicon film, %d cells, %d dirs, %d LA bands, walls %g/%g K\n"
    cfg.Film.ncells cfg.Film.ndirs cfg.Film.n_la_bands cfg.Film.t_hot
    cfg.Film.t_cold;
  Printf.printf "bulk k(%.0f K) = %.1f W/(m K), MFP = %.0f nm\n\n" t_mid
    (Conductivity.bulk t_mid)
    (1e9 *. Conductivity.mean_free_path t_mid);
  Printf.printf "%-14s %12s %12s %10s %12s\n" "thickness" "k_eff" "k_bulk"
    "ratio" "steps";
  let thicknesses =
    if quick then [ 50e-9; 200e-9; 1e-6 ] else [ 20e-9; 50e-9; 200e-9; 1e-6; 5e-6 ]
  in
  let results =
    List.map
      (fun l ->
        let r = Film.effective_conductivity ~cfg ~thickness:l () in
        Printf.printf "%-14s %12.1f %12.1f %10.3f %12d\n%!"
          (Printf.sprintf "%g nm" (1e9 *. l))
          r.Film.k_eff r.Film.k_bulk r.Film.ratio r.Film.steps_run;
        r)
      thicknesses
  in
  print_newline ();
  (* the size-effect signature: monotone in thickness, well below bulk for
     thin films *)
  let ratios = List.map (fun r -> r.Film.ratio) results in
  let monotone =
    let rec go = function
      | a :: (b :: _ as rest) -> a < b && go rest
      | _ -> true
    in
    go ratios
  in
  Printf.printf "size effect: k_eff/k_bulk increases with thickness: %b\n" monotone;
  Printf.printf
    "thin films are far below bulk (ballistic), thick films approach it —\n\
     the regime boundary sits at the ~%.0f nm mean free path, as expected.\n"
    (1e9 *. Conductivity.mean_free_path t_mid)
