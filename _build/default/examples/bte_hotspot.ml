(* The paper's main demonstration (Section III, Figs. 1-2): a 2-D silicon
   slab with a cold isothermal bottom wall, an isothermal top wall carrying
   a centred Gaussian hot spot, and symmetric sides; 55 polarization-
   resolved spectral bands x N directions of phonon intensity advected by
   an upwind FVM scheme with the nonlinear temperature update after every
   step.

   Run with --full for the paper-scale configuration (slow); the default
   is a reduced grid that finishes in seconds.  An optional --gpu flag runs
   the hybrid CPU/GPU target on the simulated device. *)

open Bte

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  let gpu = Array.exists (( = ) "--gpu") Sys.argv in
  let sc =
    if full then Setup.paper_hotspot
    else { Setup.small_hotspot with nsteps = 60 }
  in
  let built = Setup.build sc in
  let p = built.Setup.problem in
  if gpu then Finch.Problem.use_cuda p;
  Printf.printf "scenario %s: %dx%d cells, %d dirs, %d bands (%d LA + %d TA), dt=%.3g s, %d steps\n%!"
    sc.Setup.sname sc.Setup.nx sc.Setup.ny sc.Setup.ndirs
    (Dispersion.nbands built.Setup.disp)
    built.Setup.disp.Dispersion.n_la built.Setup.disp.Dispersion.n_ta
    built.Setup.scenario.Setup.dt sc.Setup.nsteps;

  let outcome =
    if gpu then Finch.Solve.solve ~post_io:Setup.post_io p
    else Finch.Solve.solve p
  in
  let ft = Finch.Solve.field outcome "T" in
  let stats =
    Diag.temperature_stats built.Setup.mesh ft ~t_ambient:sc.Setup.t_cold
  in
  Format.printf "%a@." Diag.pp_stats stats;
  Format.printf "breakdown: %a@." Prt.Breakdown.pp outcome.Finch.Solve.breakdown;

  (* vertical temperature profile through the hot spot *)
  let i = sc.Setup.nx / 2 in
  let prof = Diag.profile_y ft ~nx:sc.Setup.nx ~ny:sc.Setup.ny ~i in
  print_string "T profile through the hot spot (bottom -> top): ";
  Array.iteri
    (fun j t -> if j mod (max 1 (sc.Setup.ny / 8)) = 0 then Printf.printf "%.2f " t)
    prof;
  print_newline ();

  (match outcome.Finch.Solve.gpu with
   | Some g ->
     let report =
       Gpu_sim.Perf.report g.Finch.Target_gpu.device
         ~avg_threads:g.Finch.Target_gpu.profile_threads
     in
     print_endline (Gpu_sim.Perf.to_string report)
   | None -> ());

  Diag.to_csv built.Setup.mesh ft ~comp:0 "/tmp/bte_hotspot_T.csv";
  print_endline "temperature field written to /tmp/bte_hotspot_T.csv"
