(* Transient thermal grating (TTG): a sinusoidal temperature perturbation
   of spatial period 2L decays in time.  Fourier's law predicts the decay
   rate gamma_F = alpha (pi/L)^2; when L is comparable to the phonon mean
   free paths the observed rate is *suppressed* (quasiballistic transport)
   — the experimental signature (Johnson et al., PRL 2013) that
   sub-continuum conduction is real, and a second physics validation of
   this BTE stack beyond the thin-film size effect.

   Setup: a 1-D domain [0, L] with specular (symmetry) walls at both ends
   and initial local equilibrium at T(x) = T0 + dT cos(pi x / L) — half a
   grating period; the symmetry walls continue it periodically.  We fit
   the decay rate of the fundamental-mode amplitude and compare with the
   Fourier rate computed from the same discretized model's diffusive
   conductivity and heat capacity. *)

open Bte

let t0 = 300.
let dt_amp = 4.

(* volumetric heat capacity of the discretized model:
   C = Omega * sum_b dI0_b/dT / vg_b *)
let discrete_heat_capacity (disp : Dispersion.t) (angles : Angles.t) eqtab t =
  let acc = ref 0. in
  for b = 0 to Dispersion.nbands disp - 1 do
    let band = Dispersion.band disp b in
    acc := !acc +. (Equilibrium.di0 eqtab b t /. band.Dispersion.vg)
  done;
  angles.Angles.total *. !acc

let build ~length ~ncells ~ndirs ~n_la_bands =
  let disp = Dispersion.make ~n_la:n_la_bands in
  let nb = Dispersion.nbands disp in
  let angles = Angles.make_2d ~ndirs in
  let eqtab =
    Equilibrium.make ~omega_total:angles.Angles.total ~t_lo:150. ~t_hi:600. disp
  in
  let temp_model = Temperature.make ~disp ~eqtab ~angles () in
  let p = Finch.Problem.init "ttg" in
  Finch.Problem.domain p 1;
  Finch.Problem.set_mesh p (Fvm.Mesh_gen.line ~n:ncells ~length);
  Finch.Problem.time_stepper p Finch.Config.Euler_point_implicit;
  let dx = length /. float_of_int ncells in
  let vmax =
    Array.fold_left
      (fun acc (b : Dispersion.band) -> Float.max acc b.Dispersion.vg)
      0. disp.Dispersion.bands
  in
  let dt = 0.4 *. dx /. vmax in
  Finch.Problem.set_steps p ~dt ~nsteps:1;
  let d = Finch.Problem.index p ~name:"d" ~range:(1, ndirs) in
  let b = Finch.Problem.index p ~name:"b" ~range:(1, nb) in
  let vI = Finch.Problem.variable p ~name:"I" ~indices:[ d; b ] () in
  let vIo = Finch.Problem.variable p ~name:"Io" ~indices:[ b ] () in
  let vbeta = Finch.Problem.variable p ~name:"beta" ~indices:[ b ] () in
  let vT = Finch.Problem.variable p ~name:"T" () in
  ignore
    (Finch.Problem.coefficient p ~name:"Sx" ~index:d
       (Finch.Entity.Arr (Array.copy angles.Angles.sx)));
  ignore
    (Finch.Problem.coefficient p ~name:"vg" ~index:b
       (Finch.Entity.Arr (Dispersion.vg_array disp)));
  let t_of pos = t0 +. (dt_amp *. cos (Float.pi *. pos.(0) /. length)) in
  Finch.Problem.initial p vI
    (Finch.Problem.Init_fn
       (fun pos comp -> Equilibrium.i0 eqtab (comp / ndirs) (t_of pos)));
  Finch.Problem.initial p vIo
    (Finch.Problem.Init_fn (fun pos bb -> Equilibrium.i0 eqtab bb (t_of pos)));
  Finch.Problem.initial p vbeta
    (Finch.Problem.Init_fn
       (fun pos bb -> Scattering.band_rate (Dispersion.band disp bb) (t_of pos)));
  Finch.Problem.initial p vT (Finch.Problem.Init_fn (fun pos _ -> t_of pos));
  let bcctx = { Bc.disp; eqtab; angles } in
  Finch.Problem.callback_function p "symmetry" (Bc.symmetry bcctx);
  Finch.Problem.boundary p vI 1 Finch.Config.Flux "symmetry(I,Sx,b,d,normal)";
  Finch.Problem.boundary p vI 2 Finch.Config.Flux "symmetry(I,Sx,b,d,normal)";
  Finch.Problem.post_step_function p (Temperature.post_step temp_model);
  ignore
    (Finch.Problem.conservation_form p vI
       "(Io[b] - I[d,b]) * beta[b] - surface(vg[b] * upwind([Sx[d]], I[d,b]))");
  p, disp, angles, eqtab, dt

(* grating amplitude: difference between the hot end and the cold end *)
let amplitude st ~ncells =
  let ft = Finch.Lower.field st "T" in
  (Fvm.Field.get ft 0 0 -. Fvm.Field.get ft (ncells - 1) 0) /. 2.

let decay_rate ~length ~ncells ~ndirs ~n_la_bands =
  let p, disp, angles, eqtab, dt = build ~length ~ncells ~ndirs ~n_la_bands in
  let st = Finch.Lower.build p in
  let a0 = amplitude st ~ncells in
  (* march until the amplitude halves (or a step cap) *)
  let steps = ref 0 in
  let max_steps = 60_000 in
  let a = ref a0 in
  while !a > 0.5 *. a0 && !steps < max_steps do
    Finch.Lower.rk_step st;
    Finch.Lower.run_post_step st ~allreduce:(fun _ -> ());
    incr steps;
    a := amplitude st ~ncells
  done;
  let t_elapsed = float_of_int !steps *. dt in
  let gamma = log (a0 /. !a) /. t_elapsed in
  (* the same model's Fourier prediction *)
  let k = Film.diffusive_limit disp angles eqtab t0 in
  let c = discrete_heat_capacity disp angles eqtab t0 in
  let alpha = k /. c in
  let gamma_fourier = alpha *. (Float.pi /. length) ** 2. in
  gamma, gamma_fourier, !steps

let () =
  let quick = not (Array.exists (( = ) "--full") Sys.argv) in
  let ndirs = if quick then 8 else 16 in
  let n_la_bands = if quick then 6 else 8 in
  let ncells = if quick then 20 else 40 in
  Printf.printf
    "transient thermal grating: decay of a cos(pi x / L) perturbation\n";
  Printf.printf "(%d cells, %d dirs, %d LA bands; suppression = BTE rate / Fourier rate)\n\n"
    ncells ndirs n_la_bands;
  Printf.printf "%-14s %14s %14s %14s\n" "half-period L" "BTE [1/s]"
    "Fourier [1/s]" "suppression";
  let suppressions =
    List.map
      (fun l ->
        let g, gf, _ = decay_rate ~length:l ~ncells ~ndirs ~n_la_bands in
        Printf.printf "%-14s %14.3e %14.3e %14.3f\n%!"
          (Printf.sprintf "%g nm" (1e9 *. l))
          g gf (g /. gf);
        g /. gf)
      [ 100e-9; 400e-9; 2e-6 ]
  in
  print_newline ();
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 0.05 && increasing rest
    | _ -> true
  in
  Printf.printf
    "suppression approaches 1 for long gratings and drops for short ones: %b\n"
    (increasing suppressions);
  Printf.printf
    "(quasiballistic transport: heat carried by phonons with mean free paths\n\
    \ longer than the grating relaxes slower than Fourier predicts)\n"
