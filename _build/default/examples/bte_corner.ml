(* The paper's second demonstration (Fig. 10): a smaller, elongated domain
   with the heat source tucked into one corner of the top wall, an
   isothermal bottom wall, and symmetry conditions on the left and right —
   run at a 100 K base temperature with a 150 K source.

   Also demonstrates mesh export: the generated mesh is written to a Gmsh
   file and re-imported, exercising the DSL's mesh-file path. *)

open Bte

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  let sc =
    if full then Setup.paper_corner
    else { Setup.small_corner with Setup.nx = 48; ny = 12; nsteps = 150 }
  in
  let built = Setup.build_corner sc in

  (* round-trip the mesh through the Gmsh format, as a user with an
     external mesh would *)
  let path = Filename.temp_file "bte_corner" ".msh" in
  Fvm.Gmsh.write_file path built.Setup.mesh;
  let reimported = Fvm.Gmsh.read_file path in
  Sys.remove path;
  Printf.printf "mesh round-trip through %s: %d cells, %d faces preserved\n%!"
    "Gmsh 2.2" reimported.Fvm.Mesh.ncells reimported.Fvm.Mesh.nfaces;

  Printf.printf
    "scenario %s: %dx%d cells on %.0fx%.0f um, base %g K, corner source %g K\n%!"
    sc.Setup.sname sc.Setup.nx sc.Setup.ny (1e6 *. sc.Setup.lx)
    (1e6 *. sc.Setup.ly) sc.Setup.t_cold sc.Setup.t_hot;

  let o = Finch.Solve.solve built.Setup.problem in
  let ft = Finch.Solve.field o "T" in
  let stats = Diag.temperature_stats built.Setup.mesh ft ~t_ambient:sc.Setup.t_cold in
  Format.printf "%a@." Diag.pp_stats stats;

  (* a coarse character plot of the temperature field, hot corner visible *)
  let tmin = stats.Diag.t_min and tmax = stats.Diag.t_max in
  let glyphs = " .:-=+*#%@" in
  print_endline "temperature field (top row = heated wall side):";
  for j = sc.Setup.ny - 1 downto 0 do
    print_string "  ";
    for i = 0 to sc.Setup.nx - 1 do
      let t = Fvm.Field.get ft ((j * sc.Setup.nx) + i) 0 in
      let frac = (t -. tmin) /. (Float.max 1e-9 (tmax -. tmin)) in
      let g = int_of_float (frac *. 9.) in
      print_char glyphs.[max 0 (min 9 g)]
    done;
    print_newline ()
  done;
  Diag.to_csv built.Setup.mesh ft ~comp:0 "/tmp/bte_corner_T.csv";
  print_endline "temperature field written to /tmp/bte_corner_T.csv"
