(* The DSL's other discretization: finite elements (paper Sec. II-A —
   Finch "includes support for finite element and finite volume methods",
   with weak-form terms "organized into linear and bilinear groups").

   Solves the Poisson problem
     -alpha Laplace(u) = f  on the unit square, u = 0 on the boundary,
   with the manufactured solution u = sin(pi x) sin(pi y), from a weak-form
   input string through classification, P1 assembly and a preconditioned
   CG solve; then verifies the O(h^2) convergence of the P1 elements and
   runs the transient heat equation against its analytic decay rate. *)

let exact pos = sin (Float.pi *. pos.(0)) *. sin (Float.pi *. pos.(1))

let () =
  let alpha = 1.5 in
  let form_text =
    "alpha*gradgrad(u,v) - 2*alpha*pi^2*sin(pi*x)*sin(pi*y)*v"
  in
  Printf.printf "weak-form input: %s\n\n" form_text;
  let form =
    Fem.Weak.parse_form
      ~coef_value:(function "alpha" -> alpha | s -> failwith ("coef " ^ s))
      form_text
  in
  print_endline "=== classified groups (paper: linear and bilinear) ===";
  print_endline (Fem.Weak.report form);

  print_endline "\n=== Poisson: mesh refinement ===";
  Printf.printf "%-8s %10s %12s %12s\n" "n" "nodes" "L2 error" "CG iters";
  let prev = ref None in
  List.iter
    (fun n ->
      let mesh = Fvm.Mesh_gen.triangulated_rectangle ~nx:n ~ny:n ~lx:1. ~ly:1. () in
      let sp = Fem.Assembly.space_of_mesh mesh in
      let u, stats =
        Fem.Weak.solve_steady sp form ~dirichlet_regions:[ 1; 2; 3; 4 ]
          ~dirichlet_value:(fun _ -> 0.)
      in
      let err = Fem.Assembly.l2_error sp u exact in
      let order =
        match !prev with
        | Some e -> Printf.sprintf "   (order %.2f)" (log (e /. err) /. log 2.)
        | None -> ""
      in
      prev := Some err;
      Printf.printf "%-8d %10d %12.3e %12d%s\n" n sp.Fem.Assembly.nnodes err
        stats.La.Solvers.iterations order)
    [ 4; 8; 16; 32 ];

  print_endline "\n=== transient heat equation vs analytic decay ===";
  let sp =
    Fem.Assembly.space_of_mesh
      (Fvm.Mesh_gen.triangulated_rectangle ~nx:12 ~ny:12 ~lx:1. ~ly:1. ())
  in
  let a = 0.5 and dt = 1e-3 in
  List.iter
    (fun nsteps ->
      let u =
        Fem.Weak.solve_heat sp ~alpha:a ~source:(fun _ -> 0.)
          ~dirichlet_regions:[ 1; 2; 3; 4 ] ~dirichlet_value:(fun _ -> 0.) ~dt
          ~nsteps ~initial:exact
      in
      let amp = Fem.Assembly.interpolate sp u [| 0.5; 0.5 |] in
      let t = dt *. float_of_int nsteps in
      let analytic = exp (-2. *. Float.pi *. Float.pi *. a *. t) in
      Printf.printf "t = %.3f s: centre amplitude %.4f (analytic %.4f)\n" t amp
        analytic)
    [ 20; 50; 100 ]
