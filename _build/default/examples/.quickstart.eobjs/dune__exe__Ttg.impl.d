examples/ttg.ml: Angles Array Bc Bte Dispersion Equilibrium Film Finch Float Fvm List Printf Scattering Sys Temperature
