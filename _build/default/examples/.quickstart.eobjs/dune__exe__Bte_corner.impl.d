examples/bte_corner.ml: Array Bte Diag Filename Finch Float Format Fvm Printf Setup String Sys
