examples/ttg.mli:
