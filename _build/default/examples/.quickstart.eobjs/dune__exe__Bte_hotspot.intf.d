examples/bte_hotspot.mli:
