examples/bte_3d.ml: Angles Array Bte Diag Dispersion Finch Format Fvm Printf Setup3d Unix
