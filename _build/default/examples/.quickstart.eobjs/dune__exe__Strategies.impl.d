examples/strategies.ml: Bte Dispersion Finch Float Fvm Gpu_sim List Printf Setup Unix
