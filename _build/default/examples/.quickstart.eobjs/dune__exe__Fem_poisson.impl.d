examples/fem_poisson.ml: Array Fem Float Fvm La List Printf
