examples/quickstart.mli:
