examples/bte_hotspot.ml: Array Bte Diag Dispersion Finch Format Gpu_sim Printf Prt Setup Sys
