examples/quickstart.ml: Config Emit_source Entity Finch Format Fvm Ir List Printf Problem Prt Solve Transform
