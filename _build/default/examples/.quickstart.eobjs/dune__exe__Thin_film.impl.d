examples/thin_film.ml: Array Bte Conductivity Film List Printf Sys
