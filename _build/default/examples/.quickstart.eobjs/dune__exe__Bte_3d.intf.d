examples/bte_3d.mli:
