examples/bte_corner.mli:
