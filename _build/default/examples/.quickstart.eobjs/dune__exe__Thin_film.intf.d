examples/thin_film.mli:
