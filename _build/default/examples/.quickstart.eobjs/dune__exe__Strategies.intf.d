examples/strategies.mli:
