(* Quickstart: the advection-reaction equation from Section II of the paper,

     du/dt = -k*u - div(b u),

   entered in conservation form as  "-k*u - surface(upwind(b, u))".

   Demonstrates the full DSL pipeline: entity declaration, string input,
   operator expansion, time-stepping transform, term classification,
   generated-source inspection, and a real solve on a 2-D mesh with an
   inflow Dirichlet boundary. *)

open Finch

let () =
  let p = Problem.init "quickstart" in
  Problem.domain p 2;
  Problem.solver_type p Config.FV;
  Problem.time_stepper p Config.Euler_explicit;
  let mesh = Fvm.Mesh_gen.rectangle ~nx:40 ~ny:40 ~lx:1.0 ~ly:1.0 () in
  Problem.set_mesh p mesh;
  Problem.set_steps p ~dt:2e-3 ~nsteps:150;

  let u = Problem.variable p ~name:"u" () in
  let _k = Problem.coefficient p ~name:"k" (Entity.Const 0.5) in
  let _bx = Problem.coefficient p ~name:"bx" (Entity.Const 1.0) in
  let _by = Problem.coefficient p ~name:"by" (Entity.Const 0.25) in

  (* a blob entering from the left boundary *)
  Problem.initial p u (Problem.Init_const 0.0);
  (* region 4 is the left edge (x = 0): inflow with a bump profile *)
  Problem.boundary p u 4 Config.Dirichlet "exp(-40*(y-0.5)^2)";
  (* bottom/right/top: outflow — prescribe the upwind flux directly using
     the interior value (ghost = interior) *)
  List.iter
    (fun region ->
      Problem.boundary p u region Config.Dirichlet "u")
    [ 1; 2; 3 ];

  let eq = Problem.conservation_form p u "-k*u - surface(upwind([bx;by], u))" in

  print_endline "=== expanded symbolic representation ===";
  print_endline (Transform.report_expanded eq);
  print_endline "\n=== after forward-Euler transform ===";
  print_endline (Transform.report_stepped eq);
  print_endline "\n=== classified terms ===";
  print_endline (Transform.report_classified eq);

  print_endline "\n=== generated CPU code (Julia-like) ===";
  print_endline (Emit_source.to_julia (Ir.build_cpu p));

  let outcome = Solve.solve p in
  let field = outcome.Solve.u in
  let total = Fvm.Field.integral field mesh 0 in
  let maxu = Fvm.Field.max_abs field in
  Printf.printf "after %d steps: integral(u) = %.6f, max(u) = %.6f\n"
    p.Problem.nsteps total maxu;
  Printf.printf "breakdown: %s\n"
    (Format.asprintf "%a" Prt.Breakdown.pp outcome.Solve.breakdown);
  (* downstream profile along y = 0.5 *)
  print_string "profile y=0.5: ";
  for i = 0 to 7 do
    let cell = Fvm.Mesh_gen.cell_at ~nx:40 (i * 5) 20 in
    Printf.printf "%.3f " (Fvm.Field.get field cell 0)
  done;
  print_newline ()
