(* Symbolic operators available in DSL input expressions.

   Built-ins include the [surface] marker and the [upwind] flux
   reconstruction used by the paper; users can register custom operators
   ("A powerful feature of the DSL is the ability to define and import any
   custom symbolic operator"), which are expanded during the same pass.

   Expansion happens bottom-up on the parsed expression; the result is the
   paper's "expanded symbolic representation" in which [upwind(b, u)]
   becomes

     conditional(b1*NORMAL_1 + b2*NORMAL_2 > 0,
                 (b1*NORMAL_1 + b2*NORMAL_2) * CELL1_u,
                 (b1*NORMAL_1 + b2*NORMAL_2) * CELL2_u)            *)

open Finch_symbolic

exception Operator_error of string

type t = Expr.t list -> Expr.t

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let define name f = Hashtbl.replace registry name f
let is_defined name = Hashtbl.mem registry name
let find name = Hashtbl.find_opt registry name

let normal_sym k = Expr.sym (Printf.sprintf "NORMAL_%d" k)

(* The advective direction argument of [upwind] may be a vector literal
   [\[bx; by\]] or a single expression for 1-D problems. *)
let vector_components = function
  | Expr.Call ("vector", comps) -> comps
  | e -> [ e ]

(* dot(vec, outward normal) as a symbolic expression *)
let normal_dot vec =
  let comps = vector_components vec in
  Expr.add (List.mapi (fun k c -> Expr.mul [ c; normal_sym (k + 1) ]) comps)

(* First-order upwind reconstruction of the advective flux (b.n) u:
   take u from the upwind side of the face. *)
let upwind args =
  match args with
  | [ vec; u ] ->
    let bn = normal_dot vec in
    Expr.cond
      (Expr.cmp Expr.Gt bn Expr.zero)
      (Expr.mul [ bn; Expr.retag_side Expr.Cell1 u ])
      (Expr.mul [ bn; Expr.retag_side Expr.Cell2 u ])
  | _ -> raise (Operator_error "upwind expects (direction, value)")

(* Central (average) flux reconstruction — second-order alternative,
   exercising the paper's claim that other reconstructions slot in the
   same way as [upwind]. *)
let central args =
  match args with
  | [ vec; u ] ->
    let bn = normal_dot vec in
    Expr.mul
      [ bn;
        Expr.Num 0.5;
        Expr.add [ Expr.retag_side Expr.Cell1 u; Expr.retag_side Expr.Cell2 u ] ]
  | _ -> raise (Operator_error "central expects (direction, value)")

(* surface(e): mark e as a surface-integral term.  The marker survives
   simplification as a multiplicative symbol, exactly as in the paper's
   printouts. *)
let surface args =
  match args with
  | [ e ] -> Expr.mul [ Expr.sym "SURFACE"; e ]
  | _ -> raise (Operator_error "surface expects one argument")

let () =
  define "upwind" upwind;
  define "central" central;
  define "surface" surface

(* Expand all registered operators in an expression, bottom-up.  Function
   calls with no registered operator and no numeric meaning are left alone
   (they may be callback invocations handled later). *)
let expand e =
  Expr.rewrite
    (function
      | Expr.Call (name, args) as e -> (
        match find name with Some f -> f args | None -> e)
      | e -> e)
    e

(* True when the (already expanded) term belongs to the surface category. *)
let is_surface_term t = Expr.contains_sym "SURFACE" t

(* Strip the SURFACE marker from a term. *)
let strip_surface t =
  Simplify.simplify (Expr.subst_sym "SURFACE" Expr.one t)
