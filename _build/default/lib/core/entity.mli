(** DSL entities: indices, variables, coefficients — the script-level
    objects of the paper's input language
    ([index("d", range=[1,ndirs])], [variable("I", ..., index=[d,b])],
    [coefficient("Sx", sx_val, ...)]).

    Index ranges are 1-based in the surface syntax; a variable's index
    space flattens into per-cell components with the first declared index
    fastest. *)

type index = {
  iname : string;
  lo : int; (** inclusive, 1-based *)
  hi : int;
}

val index : name:string -> range:int * int -> index
(** Raises [Invalid_argument] on an empty range. *)

val index_extent : index -> int

type location = Cell | Face | Node

type variable = {
  vname : string;
  location : location;
  vindices : index list; (** [] = plain scalar variable *)
}

val variable :
  name:string -> ?location:location -> ?indices:index list -> unit -> variable

val var_ncomp : variable -> int
(** Product of index extents (1 for scalars). *)

val var_comp : variable -> int list -> int
(** Component offset of a concrete (0-based) index assignment, first index
    fastest. Raises [Invalid_argument] on arity or range errors. *)

type coef_value =
  | Const of float
  | Arr of float array                  (** indexed array, e.g. Sx over d *)
  | Space_fn of (float array -> float)  (** function of position *)

type coefficient = {
  cname : string;
  cvalue : coef_value;
  cindex : index option; (** the index an [Arr] coefficient is addressed by *)
}

val coefficient : name:string -> ?index:index -> coef_value -> coefficient
(** Checks [Arr] length against the index extent. *)
