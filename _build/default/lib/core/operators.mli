(** Symbolic operators available in DSL input expressions: the built-in
    [surface] marker and [upwind]/[central] flux reconstructions, plus a
    registry for user-defined operators ("the ability to define and import
    any custom symbolic operator"). *)

open Finch_symbolic

exception Operator_error of string

type t = Expr.t list -> Expr.t
(** An operator rewrites its argument list into an expression. *)

val define : string -> t -> unit
val is_defined : string -> bool
val find : string -> t option

val normal_sym : int -> Expr.t
(** [normal_sym k] is the symbol NORMAL_k (1-based component of the
    outward face normal). *)

val vector_components : Expr.t -> Expr.t list
val normal_dot : Expr.t -> Expr.t

val upwind : t
(** First-order upwind reconstruction:
    [upwind(b, u)] expands to
    [conditional(b.n > 0, (b.n)*CELL1_u, (b.n)*CELL2_u)]. *)

val central : t
(** Central (average) reconstruction — the second-order alternative. *)

val surface : t
(** Marks a term as a surface integrand (multiplies by the SURFACE
    symbol, which survives simplification as in the paper's printouts). *)

val expand : Expr.t -> Expr.t
(** Expand every registered operator, bottom-up. Unregistered calls are
    left in place (they may be callback invocations). *)

val is_surface_term : Expr.t -> bool
val strip_surface : Expr.t -> Expr.t
