(* DSL entities: indices, variables and coefficients.

   These mirror the paper's script-level objects:

     d = index("d", range=[1,ndirs])
     I = variable("I", type=VAR_ARRAY, location=CELL, index=[d,b])
     Sx = coefficient("Sx", sx_val, type=VAR_ARRAY)

   Index ranges are 1-based in the surface syntax (as in Julia) and
   converted to 0-based positions internally.  A variable with indices
   [d; b] stores ndirs*nbands components per cell; the flattening order is
   the variable's index list order (first index fastest), which the
   assembly-loop configuration may later permute. *)

type index = {
  iname : string;
  lo : int; (* inclusive, 1-based *)
  hi : int; (* inclusive *)
}

let index ~name ~range:(lo, hi) =
  if hi < lo then invalid_arg "Entity.index: empty range";
  { iname = name; lo; hi }

let index_extent i = i.hi - i.lo + 1

type location = Cell | Face | Node

type variable = {
  vname : string;
  location : location;
  vindices : index list; (* [] = plain scalar variable *)
}

let variable ~name ?(location = Cell) ?(indices = []) () =
  { vname = name; location; vindices = indices }

let var_ncomp v =
  List.fold_left (fun acc i -> acc * index_extent i) 1 v.vindices

(* Component offset of a concrete index assignment, first index fastest.
   [vals] are 0-based positions in each index's range, in the order of
   [vindices]. *)
let var_comp v vals =
  let rec go idxs vals stride acc =
    match idxs, vals with
    | [], [] -> acc
    | i :: idxs', p :: vals' ->
      if p < 0 || p >= index_extent i then
        invalid_arg
          (Printf.sprintf "Entity.var_comp %s: index %s position %d out of range"
             v.vname i.iname p);
      go idxs' vals' (stride * index_extent i) (acc + (p * stride))
    | _ -> invalid_arg "Entity.var_comp: wrong arity"
  in
  go v.vindices vals 1 0

type coef_value =
  | Const of float
  | Arr of float array                  (* indexed array, e.g. Sx over d *)
  | Space_fn of (float array -> float)  (* function of position *)

type coefficient = {
  cname : string;
  cvalue : coef_value;
  cindex : index option; (* the index an Arr coefficient is addressed by *)
}

let coefficient ~name ?index value =
  (match value, index with
   | Arr a, Some i when Array.length a <> index_extent i ->
     invalid_arg
       (Printf.sprintf "Entity.coefficient %s: array length %d vs index extent %d"
          name (Array.length a) (index_extent i))
   | _ -> ());
  { cname = name; cvalue = value; cindex = index }
