(** Solver configuration enumerations (script options). *)

type solver_type =
  | FV (** finite volume — the method used throughout the paper *)
  | FE (** accepted for completeness; code generation targets FV *)

type time_stepper =
  | Euler_explicit       (** the paper's scheme *)
  | RK2                  (** explicit midpoint (extension) *)
  | RK4                  (** classic four-stage (extension) *)
  | Euler_point_implicit
    (** source linearized symbolically and treated implicitly, advection
        explicit — removes the stiff relaxation bound on dt (extension) *)

val stepper_stages : time_stepper -> int
val stepper_name : time_stepper -> string

type bc_kind =
  | Flux      (** prescribes the surface-term integrand (possibly callback) *)
  | Dirichlet (** prescribes the ghost/boundary value *)

val bc_kind_name : bc_kind -> string

(** Parallel execution strategies explored in the paper (Sec. III-C/D). *)
type strategy =
  | Serial
  | Cell_parallel of int (** mesh partitioned into n pieces *)
  | Band_parallel of int (** equation index space partitioned into n pieces *)

type target =
  | Cpu of strategy
  | Gpu of { spec : Gpu_sim.Spec.t; ranks : int }

val target_name : target -> string
