(* Compilation of symbolic expressions to evaluation closures.

   The code generation targets do not interpret the AST in the inner loop:
   [compile] resolves every entity reference to a direct field/coefficient
   access once, producing a closure tree whose evaluation does no lookups,
   no allocation and no matching beyond the structure of the expression
   itself.  The closure reads loop state (current cell, face, index values)
   from a mutable environment owned by the executor.

   [cost] statically estimates FLOPs and DRAM traffic per evaluation; the
   GPU simulator's roofline model consumes these numbers. *)

open Finch_symbolic

exception Compile_error of string

type env = {
  mesh : Fvm.Mesh.t;
  dt : float ref;
  time : float ref;
  (* loop state, written by the executor *)
  mutable cell : int;
  mutable cell2 : int;   (* neighbour across the current face; -1 = ghost *)
  mutable face : int;
  mutable nsign : float; (* +1 when [cell] owns the current face *)
  (* ghost accessor for boundary faces: variable name -> component -> value *)
  mutable ghost : (string -> int -> float) option;
  (* current value of each index variable, 0-based *)
  ivals : (string * int ref) list;
}

let make_env ~mesh ~dt ~time ~index_names =
  {
    mesh;
    dt;
    time;
    cell = 0;
    cell2 = -1;
    face = 0;
    nsign = 1.;
    ghost = None;
    ivals = List.map (fun n -> n, ref 0) index_names;
  }

let ival env name =
  match List.assoc_opt name env.ivals with
  | Some r -> r
  | None -> raise (Compile_error ("unknown index " ^ name))

(* What a compiled expression can reference. *)
type binding =
  | Bfield of Fvm.Field.t * (string * int * int) list
    (* field plus per-index (name, 1-based lo, stride) layout *)
  | Bcoef_const of float
  | Bcoef_arr of float array * string * int (* array, index name, 1-based lo *)
  | Bcoef_fn of (float array -> float)

type bindings = (string * binding) list

type compiled = env -> float

(* Component offset closure for a field reference with the given index
   refs. *)
let compile_comp env layout (idx_refs : Expr.index_ref list) : env -> int =
  if List.length layout <> List.length idx_refs then
    raise (Compile_error "index arity mismatch");
  let pieces =
    List.map2
      (fun (iname, lo, stride) iref ->
        match iref with
        | Expr.Iconst k ->
          let p = k - lo in
          fun (_ : env) -> p * stride
        | Expr.Ivar n ->
          if not (String.equal n iname) then
            (* referencing a different index than the layout position was
               declared with is allowed as long as it is a known index —
               e.g. Io[b] on a variable declared over [b]. The layout
               position name is informative only; the *position* governs
               the stride. *)
            ();
          let r = ival env n in
          fun (_ : env) -> !r * stride
        | Expr.Ishift (n, k) ->
          let r = ival env n in
          fun (_ : env) -> (!r + k) * stride)
      layout idx_refs
  in
  fun env -> List.fold_left (fun acc f -> acc + f env) 0 pieces

let rec compile (bindings : bindings) (e : Expr.t) : compiled =
  match e with
  | Expr.Num x -> fun _ -> x
  | Expr.Sym s -> compile_sym bindings s
  | Expr.Ref (name, idx_refs, side) -> compile_ref bindings name idx_refs side
  | Expr.Add es ->
    let fs = Array.of_list (List.map (compile bindings) es) in
    fun env ->
      let s = ref 0. in
      for i = 0 to Array.length fs - 1 do
        s := !s +. fs.(i) env
      done;
      !s
  | Expr.Mul es ->
    let fs = Array.of_list (List.map (compile bindings) es) in
    fun env ->
      let s = ref 1. in
      for i = 0 to Array.length fs - 1 do
        s := !s *. fs.(i) env
      done;
      !s
  | Expr.Pow (a, Expr.Num x) when Float.equal x (-1.) ->
    let fa = compile bindings a in
    fun env -> 1. /. fa env
  | Expr.Pow (a, Expr.Num x) when Float.equal x 2. ->
    let fa = compile bindings a in
    fun env ->
      let v = fa env in
      v *. v
  | Expr.Pow (a, b) ->
    let fa = compile bindings a and fb = compile bindings b in
    fun env -> Float.pow (fa env) (fb env)
  | Expr.Call (name, args) -> compile_call bindings name args
  | Expr.Cmp (op, a, b) ->
    let fa = compile bindings a and fb = compile bindings b in
    let test =
      match op with
      | Expr.Gt -> fun x y -> x > y
      | Expr.Ge -> fun x y -> x >= y
      | Expr.Lt -> fun x y -> x < y
      | Expr.Le -> fun x y -> x <= y
      | Expr.Eq -> fun x y -> Float.equal x y
      | Expr.Ne -> fun x y -> not (Float.equal x y)
    in
    fun env -> if test (fa env) (fb env) then 1. else 0.
  | Expr.Cond (c, t, el) ->
    let fc = compile bindings c
    and ft = compile bindings t
    and fe = compile bindings el in
    fun env -> if fc env <> 0. then ft env else fe env

and compile_sym bindings s =
  match s with
  | "dt" -> fun env -> !(env.dt)
  | "t" | "time" -> fun env -> !(env.time)
  | "pi" -> fun _ -> Float.pi
  | "x" -> fun env -> env.mesh.Fvm.Mesh.cell_centroid.(env.cell * env.mesh.Fvm.Mesh.dim)
  | "y" ->
    fun env ->
      env.mesh.Fvm.Mesh.cell_centroid.((env.cell * env.mesh.Fvm.Mesh.dim) + 1)
  | "z" ->
    fun env ->
      env.mesh.Fvm.Mesh.cell_centroid.((env.cell * env.mesh.Fvm.Mesh.dim) + 2)
  | "VOLUME" -> fun env -> env.mesh.Fvm.Mesh.cell_volume.(env.cell)
  | "FACEAREA" -> fun env -> env.mesh.Fvm.Mesh.face_area.(env.face)
  | s when String.length s > 7 && String.sub s 0 7 = "NORMAL_" ->
    let k = int_of_string (String.sub s 7 (String.length s - 7)) - 1 in
    fun env ->
      env.nsign *. env.mesh.Fvm.Mesh.face_normal.((env.face * env.mesh.Fvm.Mesh.dim) + k)
  | s -> (
    match List.assoc_opt s bindings with
    | Some (Bcoef_const v) -> fun _ -> v
    | Some (Bcoef_fn f) ->
      fun env ->
        let d = env.mesh.Fvm.Mesh.dim in
        f (Array.init d (fun k -> env.mesh.Fvm.Mesh.cell_centroid.((env.cell * d) + k)))
    | Some (Bcoef_arr _) ->
      raise (Compile_error (s ^ " is an indexed coefficient; write " ^ s ^ "[i]"))
    | Some (Bfield _) ->
      raise (Compile_error (s ^ " is an indexed variable; write " ^ s ^ "[...]"))
    | None -> raise (Compile_error ("unknown symbol " ^ s)))

and compile_ref bindings name idx_refs side =
  match List.assoc_opt name bindings with
  | Some (Bfield (field, layout)) ->
    (* fail fast: arity errors are compile-time errors, not lazy runtime
       surprises inside the first evaluation *)
    if not (idx_refs = [] && layout = [])
       && List.length layout <> List.length idx_refs
    then
      raise
        (Compile_error
           (Printf.sprintf "%s expects %d indices, given %d" name
              (List.length layout) (List.length idx_refs)));
    (* Index-variable cells live in the runtime env, so the component
       closure is built lazily against the env of the first call and
       memoized (each compiled program runs against a single env). Scalar
       variables (no indices) read component 0. *)
    let cache : (env * (env -> int)) option ref = ref None in
    let comp env =
      match !cache with
      | Some (e, f) when e == env -> f env
      | _ ->
        let f =
          if idx_refs = [] && layout = [] then fun (_ : env) -> 0
          else compile_comp env layout idx_refs
        in
        cache := Some (env, f);
        f env
    in
    (match side with
     | Expr.Here | Expr.Cell1 ->
       fun env -> Fvm.Field.get field env.cell (comp env)
     | Expr.Cell2 ->
       fun env ->
         let c = comp env in
         if env.cell2 >= 0 then Fvm.Field.get field env.cell2 c
         else (
           match env.ghost with
           | Some g -> g name c
           | None ->
             raise
               (Compile_error
                  ("boundary face reached with no ghost accessor for " ^ name))))
  | Some (Bcoef_arr (arr, iname, lo)) -> (
    match idx_refs with
    | [ Expr.Ivar n ] ->
      ignore iname;
      let cache : (env * int ref) option ref = ref None in
      fun env ->
        let r =
          match !cache with
          | Some (e, r) when e == env -> r
          | _ ->
            let r = ival env n in
            cache := Some (env, r);
            r
        in
        arr.(!r)
    | [ Expr.Iconst k ] ->
      let v = arr.(k - lo) in
      fun _ -> v
    | _ -> raise (Compile_error ("coefficient " ^ name ^ " expects one index")))
  | Some (Bcoef_const v) -> fun _ -> v
  | Some (Bcoef_fn f) ->
    fun env ->
      let d = env.mesh.Fvm.Mesh.dim in
      f (Array.init d (fun k -> env.mesh.Fvm.Mesh.cell_centroid.((env.cell * d) + k)))
  | None -> raise (Compile_error ("unknown entity " ^ name))

and compile_call bindings name args =
  let unary f =
    match args with
    | [ a ] ->
      let fa = compile bindings a in
      fun env -> f (fa env)
    | _ -> raise (Compile_error (name ^ " expects one argument"))
  in
  match name with
  | "sin" -> unary sin
  | "cos" -> unary cos
  | "tan" -> unary tan
  | "exp" -> unary exp
  | "log" -> unary log
  | "sqrt" -> unary sqrt
  | "abs" -> unary Float.abs
  | "sinh" -> unary sinh
  | "cosh" -> unary cosh
  | "tanh" -> unary tanh
  | "min" | "max" -> (
    match args with
    | [ a; b ] ->
      let fa = compile bindings a and fb = compile bindings b in
      let f = if name = "min" then Float.min else Float.max in
      fun env -> f (fa env) (fb env)
    | _ -> raise (Compile_error (name ^ " expects two arguments")))
  | _ ->
    raise
      (Compile_error
         (Printf.sprintf
            "unresolved call %s/%d (operators must be expanded before compilation)"
            name (List.length args)))

(* ------------------------------------------------------------------ *)
(* Static cost estimation for the roofline model.                      *)
(* ------------------------------------------------------------------ *)

type cost = { flops : float; loads : int }

let cost e =
  let flops = ref 0. and loads = ref 0 in
  let count _ n =
    (match n with
     | Expr.Add es -> flops := !flops +. float_of_int (List.length es - 1)
     | Expr.Mul es -> flops := !flops +. float_of_int (List.length es - 1)
     | Expr.Pow _ -> flops := !flops +. 4.
     | Expr.Call (("min" | "max" | "abs"), _) -> flops := !flops +. 1.
     | Expr.Call _ -> flops := !flops +. 8. (* transcendental *)
     | Expr.Cmp _ -> flops := !flops +. 1.
     | Expr.Ref _ -> incr loads
     | Expr.Sym s when String.length s > 7 && String.sub s 0 7 = "NORMAL_" ->
       incr loads
     | Expr.Sym _ | Expr.Num _ | Expr.Cond _ -> ());
    ()
  in
  Expr.fold count () e;
  { flops = !flops; loads = !loads }
