(** The DSL's symbolic pipeline (paper Section II): parse → operator
    expansion → time-stepping transform → LHS/RHS x volume/surface term
    classification.

    Sign convention (matching the paper's worked example): the input is the
    right-hand side of d/dt ∫u dV = ∫(volume terms) dV + ∮(surface terms)
    dA, surface terms written inside [surface(...)] with their own sign;
    forward Euler yields u = u + dt·R with SURFACE-marked terms later
    discretized as (1/V) Σ_faces area · integrand. *)

open Finch_symbolic

exception Equation_error of string

type classified = {
  lhs_volume : Expr.t list;  (** unknown-side terms (the -u of the update) *)
  rhs_volume : Expr.t list;  (** known volume terms, dt applied *)
  rhs_surface : Expr.t list; (** known surface terms, dt applied, marker kept *)
}

type equation = {
  eq_var : string;
  u_expr : Expr.t;        (** the unknown with its declared indices *)
  input_text : string;
  parsed : Expr.t;
  expanded : Expr.t;      (** -TIMEDERIVATIVE*u + expanded input *)
  stepped : Expr.t;       (** u + dt * R (forward-Euler symbolic form) *)
  classified : classified;
  rvol : Expr.t;          (** volume part of R (execution form) *)
  rsurf : Expr.t;         (** surface integrand of R, marker stripped *)
}

val time_derivative_marker : string

val resolve_vars : string list -> Expr.t -> Expr.t
(** Promote bare identifiers naming declared variables to entity
    references (so side-tagging and field binding see them). *)

val unknown_ref : Entity.variable -> Expr.t

val conservation_form :
  ?var_names:string list -> Entity.variable -> string -> equation
(** Run the full pipeline on a conservation-form input string for the
    given unknown. Raises {!Equation_error} on parse failures. *)

val rvol_linearization : equation -> Expr.t
(** b = -d(rvol)/du (symbolic). Raises {!Equation_error} when the volume
    term is not affine in the unknown. *)

val report_expanded : equation -> string
(** The paper-style "expanded symbolic representation" printout. *)

val report_stepped : equation -> string
val report_classified : equation -> string
