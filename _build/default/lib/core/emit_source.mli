(** Readable source emission from the IR — the listings a Finch user would
    inspect or hand-modify. Execution itself goes through the compiled
    closures; these renderings are documentation-grade output, kept
    faithful to the paper's pseudo-code sketches. *)

val to_julia : Ir.node -> string
(** Julia-like CPU listing (the original Finch's native output style). *)

val to_cuda : Ir.node -> string
(** CUDA-C-like hybrid listing: kernel body with thread-index
    decomposition and guard, host-side callback/combine steps, stream
    synchronization and memcpy annotations. *)
