lib/core/ir.ml: Config Entity Eval Expr Finch_symbolic List Problem Transform
