lib/core/config.mli: Gpu_sim
