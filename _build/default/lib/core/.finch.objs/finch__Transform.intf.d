lib/core/transform.mli: Entity Expr Finch_symbolic
