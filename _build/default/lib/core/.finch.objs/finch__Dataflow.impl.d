lib/core/dataflow.ml: Array Entity Eval Finch_symbolic Fvm List Problem Transform
