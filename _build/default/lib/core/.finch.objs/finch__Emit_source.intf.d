lib/core/emit_source.mli: Ir
