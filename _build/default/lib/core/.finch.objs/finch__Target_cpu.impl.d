lib/core/target_cpu.ml: Array Domain Entity Eval Fvm List Lower Problem Prt
