lib/core/emit_source.ml: Buffer Finch_symbolic Ir List Option Printer Printf String
