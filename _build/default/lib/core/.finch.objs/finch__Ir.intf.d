lib/core/ir.mli: Expr Finch_symbolic Problem Transform
