lib/core/operators.ml: Expr Finch_symbolic Hashtbl List Printf Simplify
