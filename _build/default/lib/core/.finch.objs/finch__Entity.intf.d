lib/core/entity.mli:
