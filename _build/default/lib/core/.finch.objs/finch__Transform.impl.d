lib/core/transform.ml: Diff Entity Expr Finch_symbolic List Operators Parser Printer Printf Simplify String
