lib/core/dataflow.mli: Problem
