lib/core/problem.ml: Array Config Entity Expr Finch_symbolic Fvm Gpu_sim List Operators Parser Simplify String Transform
