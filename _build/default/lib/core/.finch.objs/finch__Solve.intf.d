lib/core/solve.mli: Dataflow Fvm Lower Problem Prt Target_gpu
