lib/core/eval.mli: Finch_symbolic Fvm
