lib/core/problem.mli: Config Entity Expr Finch_symbolic Fvm Gpu_sim Transform
