lib/core/operators.mli: Expr Finch_symbolic
