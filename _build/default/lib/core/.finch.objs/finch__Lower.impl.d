lib/core/lower.ml: Array Config Entity Eval Fvm Lazy List Problem Prt String Transform
