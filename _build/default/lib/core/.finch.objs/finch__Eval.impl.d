lib/core/eval.ml: Array Expr Finch_symbolic Float Fvm List Printf String
