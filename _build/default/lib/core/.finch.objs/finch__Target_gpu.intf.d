lib/core/target_gpu.mli: Dataflow Gpu_sim Lower Problem Prt
