lib/core/config.ml: Gpu_sim Printf
