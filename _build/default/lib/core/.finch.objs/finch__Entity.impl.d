lib/core/entity.ml: Array List Printf
