lib/core/lower.mli: Entity Eval Fvm Lazy Problem Prt Transform
