lib/core/target_cpu.mli: Fvm Lower Problem Prt
