lib/core/solve.ml: Config Entity Fvm List Lower Problem Prt Target_cpu Target_gpu
