lib/core/target_gpu.ml: Array Config Dataflow Entity Eval Fvm Gpu_sim List Lower Problem Prt Target_cpu Transform
