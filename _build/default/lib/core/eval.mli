(** Compilation of symbolic expressions to evaluation closures.

    [compile] resolves every entity reference to a direct field or
    coefficient access once; the resulting closure reads loop state
    (current cell, face, index values) from a mutable environment owned by
    the executor and performs no lookups or allocation in the inner loop.

    Recognized special symbols: [dt], [t]/[time], [pi], [x]/[y]/[z] (cell
    centroid), [VOLUME], [FACEAREA], [NORMAL_k] (outward normal component,
    sign-adjusted for the current cell). *)

exception Compile_error of string

type env = {
  mesh : Fvm.Mesh.t;
  dt : float ref;
  time : float ref;
  mutable cell : int;
  mutable cell2 : int;   (** neighbour across the current face; -1 = ghost *)
  mutable face : int;
  mutable nsign : float; (** +1 when [cell] owns the current face *)
  mutable ghost : (string -> int -> float) option;
    (** boundary ghost accessor: variable name -> component -> value *)
  ivals : (string * int ref) list; (** current 0-based index values *)
}

val make_env :
  mesh:Fvm.Mesh.t -> dt:float ref -> time:float ref ->
  index_names:string list -> env

val ival : env -> string -> int ref
(** The mutable cell holding an index's current value; raises
    {!Compile_error} for unknown indices. *)

type binding =
  | Bfield of Fvm.Field.t * (string * int * int) list
    (** field + per-index (name, 1-based lo, stride) layout *)
  | Bcoef_const of float
  | Bcoef_arr of float array * string * int
  | Bcoef_fn of (float array -> float)

type bindings = (string * binding) list

type compiled = env -> float

val compile : bindings -> Finch_symbolic.Expr.t -> compiled
(** Raises {!Compile_error} on unknown entities, unresolved operator
    calls, or misused indexed entities. *)

type cost = { flops : float; loads : int }

val cost : Finch_symbolic.Expr.t -> cost
(** Static per-evaluation FLOP and load-count estimate, consumed by the
    GPU roofline model. *)
