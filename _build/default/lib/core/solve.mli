(** Top-level driver — the paper's [solve(I)]: dispatch a configured
    problem to its code-generation target and package the results. *)

type outcome = {
  u : Fvm.Field.t;                      (** gathered unknown after the run *)
  fields : (string * Fvm.Field.t) list; (** rank-0 view of all variables *)
  breakdown : Prt.Breakdown.t;
  gpu : Target_gpu.result option;       (** present for GPU runs *)
  states : Lower.state array;
}

val default_band_index : Problem.t -> string
(** The index split by band-parallel runs when none is given: the last
    declared index. *)

val solve :
  ?band_index:string -> ?post_io:Dataflow.callback_io -> Problem.t -> outcome

val field : outcome -> string -> Fvm.Field.t
