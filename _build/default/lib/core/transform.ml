(* The DSL's symbolic pipeline (paper Section II):

   1. parse the conservation-form input string;
   2. expand operators ([upwind], [surface], user-defined) to obtain the
      "expanded symbolic representation";
   3. apply the time-stepping scheme (forward Euler shown in the paper;
      RK schemes reuse the same right-hand side staged);
   4. classify terms into LHS volume / RHS volume / RHS surface groups.

   Conventions (matching the paper's worked example):
   - the input expression is the right-hand side of
       d/dt (integral of u dV) = integral of (volume terms) dV
                                 + integral of (surface terms) dA
     where surface terms are written inside [surface(...)] and carry their
     own sign — e.g. an outward advective flux enters as
     [- surface(upwind(b, u))];
   - the expanded form is  0 = -TIMEDERIVATIVE*u + (input terms);
   - forward Euler produces  u = u + dt*(input terms), with SURFACE-marked
     terms later discretized as (1/V) * sum over faces of (area * integrand). *)

open Finch_symbolic

exception Equation_error of string

type classified = {
  lhs_volume : Expr.t list;  (* unknown-side terms (the -u of the update) *)
  rhs_volume : Expr.t list;  (* known volume terms, dt applied *)
  rhs_surface : Expr.t list; (* known surface terms, dt applied, SURFACE kept *)
}

type equation = {
  eq_var : string;        (* the unknown being advanced *)
  u_expr : Expr.t;        (* the unknown with its declared indices *)
  input_text : string;
  parsed : Expr.t;
  expanded : Expr.t;      (* -TIMEDERIVATIVE*u + expanded input *)
  stepped : Expr.t;       (* u + dt * R (forward-Euler symbolic form) *)
  classified : classified;
  (* execution decomposition: R = rvol + surface terms with the marker
     stripped; these are what the code generators lower. *)
  rvol : Expr.t;          (* volume part of R *)
  rsurf : Expr.t;         (* surface integrand (flux), marker stripped *)
}

let time_derivative_marker = "TIMEDERIVATIVE"

(* A bare identifier in the input may be a declared variable referenced
   without indices (a plain scalar variable like the quickstart's [u]);
   promote those symbols to entity references so side-tagging and field
   binding see them. *)
let resolve_vars var_names e =
  Expr.rewrite
    (function
      | Expr.Sym s when List.mem s var_names -> Expr.Ref (s, [], Expr.Here)
      | x -> x)
    e

(* The unknown as referenced in the update: the variable with its declared
   index variables, e.g. I[d,b]. *)
let unknown_ref (v : Entity.variable) =
  Expr.ref_ v.Entity.vname
    (List.map (fun i -> Expr.Ivar i.Entity.iname) v.Entity.vindices)

let conservation_form ?(var_names = []) (v : Entity.variable) text =
  let parsed =
    try Parser.parse text
    with Parser.Parse_error msg ->
      raise (Equation_error (Printf.sprintf "parse error in %S: %s" text msg))
  in
  let var_names =
    if List.mem v.Entity.vname var_names then var_names
    else v.Entity.vname :: var_names
  in
  let parsed = resolve_vars var_names parsed in
  let input_expanded = Simplify.expand (Operators.expand parsed) in
  let u = unknown_ref v in
  let expanded =
    Simplify.simplify
      (Expr.add [ Expr.neg (Expr.mul [ Expr.sym time_derivative_marker; u ]); input_expanded ])
  in
  (* forward-Euler symbolic form: u = u + dt * R *)
  let r = input_expanded in
  let stepped =
    Simplify.expand (Expr.add [ u; Expr.mul [ Expr.sym "dt"; r ] ])
  in
  let surf_terms, vol_terms =
    Simplify.partition_terms Operators.is_surface_term stepped
  in
  let classified =
    {
      lhs_volume = [ Expr.neg u ];
      rhs_volume = vol_terms;
      rhs_surface = surf_terms;
    }
  in
  (* Execution decomposition of R itself (no u0 term, no dt). *)
  let r_surf_terms, r_vol_terms =
    Simplify.partition_terms Operators.is_surface_term (Simplify.expand r)
  in
  let rvol = Simplify.simplify (Expr.add r_vol_terms) in
  let rsurf =
    Simplify.simplify
      (Expr.add (List.map Operators.strip_surface r_surf_terms))
  in
  {
    eq_var = v.Entity.vname;
    u_expr = u;
    input_text = text;
    parsed;
    expanded;
    stepped;
    classified;
    rvol;
    rsurf;
  }

(* Linearization of the volume term with respect to the unknown:
   b = -d(rvol)/du, evaluated by substituting the unknown's (Here-side)
   references with a fresh scalar symbol and differentiating symbolically.
   Used by the point-implicit stepper: with rvol affine in u (the BTE's
   (Io - I)*beta), the update
     u' = (u + dt*(rvol(u) + b*u + flux)) / (1 + dt*b)
   treats relaxation implicitly and is exact for affine sources. *)
let linvar = "__pointimplicit_u"

let rvol_linearization (eq : equation) =
  let substituted =
    Expr.subst_ref eq.eq_var (fun _ _ -> Expr.sym linvar) eq.rvol
  in
  let db = Diff.d linvar substituted in
  if Expr.contains_sym linvar db then
    raise
      (Equation_error
         "point-implicit stepper requires a volume term affine in the unknown");
  Simplify.simplify (Expr.neg db)

(* Pretty reports matching the paper's printouts. *)

let report_expanded eq = Printer.to_finch_string eq.expanded

let report_stepped eq =
  Printf.sprintf "%s = %s"
    (Printer.to_finch_string eq.u_expr)
    (Printer.to_finch_string eq.stepped)

let report_classified eq =
  let block title terms =
    let body =
      match terms with
      | [] -> "0"
      | ts -> Printer.to_finch_string (Simplify.simplify (Expr.add ts))
    in
    title ^ ":\n  " ^ body
  in
  String.concat "\n"
    [
      block "LHS volume" eq.classified.lhs_volume;
      block "RHS volume" eq.classified.rhs_volume;
      block "RHS surface" eq.classified.rhs_surface;
    ]
