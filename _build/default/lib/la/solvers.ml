(* Iterative solvers for the FEM path: conjugate gradients with an
   optional Jacobi preconditioner.  Dense direct solves are deliberately
   absent — meshes make SPD sparse systems, and CG is what a production
   FEM code would reach for first. *)

type stats = {
  iterations : int;
  residual : float;   (* relative, ||b - Ax|| / ||b|| *)
  converged : bool;
}

let dot a b =
  let s = ref 0. in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let axpy alpha x y =
  (* y := y + alpha x *)
  for i = 0 to Array.length y - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let norm2 a = sqrt (dot a a)

(* Preconditioned conjugate gradients; [x] is used as the initial guess
   and overwritten with the solution. *)
let cg ?(precond = true) ?(tol = 1e-10) ?(max_iter = 2000) (a : Csr.t) ~b ~x =
  let n = Array.length b in
  if Csr.nrows a <> n || Array.length x <> n then
    invalid_arg "Solvers.cg: size mismatch";
  let inv_diag =
    if precond then
      Array.map (fun d -> if Float.abs d > 0. then 1. /. d else 1.) (Csr.diagonal a)
    else Array.make n 1.
  in
  let r = Array.make n 0. in
  Csr.spmv a x r;
  for i = 0 to n - 1 do
    r.(i) <- b.(i) -. r.(i)
  done;
  let z = Array.mapi (fun i ri -> inv_diag.(i) *. ri) r in
  let p = Array.copy z in
  let ap = Array.make n 0. in
  let bnorm = Float.max (norm2 b) 1e-300 in
  let rz = ref (dot r z) in
  let iters = ref 0 in
  let res = ref (norm2 r /. bnorm) in
  while !res > tol && !iters < max_iter do
    Csr.spmv a p ap;
    let pap = dot p ap in
    if pap <= 0. then iters := max_iter (* not SPD: bail out *)
    else begin
      let alpha = !rz /. pap in
      axpy alpha p x;
      axpy (-.alpha) ap r;
      for i = 0 to n - 1 do
        z.(i) <- inv_diag.(i) *. r.(i)
      done;
      let rz' = dot r z in
      let beta = rz' /. !rz in
      for i = 0 to n - 1 do
        p.(i) <- z.(i) +. (beta *. p.(i))
      done;
      rz := rz';
      incr iters;
      res := norm2 r /. bnorm
    end
  done;
  { iterations = !iters; residual = !res; converged = !res <= tol }

(* Jacobi iteration — kept for comparison/teaching and as a fallback for
   non-symmetric systems. *)
let jacobi ?(tol = 1e-10) ?(max_iter = 5000) (a : Csr.t) ~b ~x =
  let n = Array.length b in
  let d = Csr.diagonal a in
  let x' = Array.make n 0. in
  let bnorm = Float.max (norm2 b) 1e-300 in
  let iters = ref 0 in
  let res = ref infinity in
  while !res > tol && !iters < max_iter do
    for r = 0 to n - 1 do
      let acc = ref b.(r) in
      Csr.iter_row a r (fun c v -> if c <> r then acc := !acc -. (v *. x.(c)));
      x'.(r) <- !acc /. d.(r)
    done;
    Array.blit x' 0 x 0 n;
    (* true residual *)
    let rvec = Csr.mul a x in
    let rn = ref 0. in
    for i = 0 to n - 1 do
      let e = b.(i) -. rvec.(i) in
      rn := !rn +. (e *. e)
    done;
    res := sqrt !rn /. bnorm;
    incr iters
  done;
  { iterations = !iters; residual = !res; converged = !res <= tol }
