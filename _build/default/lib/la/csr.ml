(* Compressed-sparse-row matrices.

   Assembled from (row, col, value) triplets with duplicate summation —
   the natural output of finite-element assembly — and consumed by the
   iterative solvers.  The IR-level remark in the paper (linear-algebra
   operations must stay abstract because "different data layouts" suit
   different targets) is realized here as the usual CSR layout for CPU
   sparse matrix-vector products. *)

type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array;   (* length nrows+1 *)
  col_idx : int array;
  values : float array;
}

let nrows m = m.nrows
let ncols m = m.ncols
let nnz m = Array.length m.values

(* Build from triplets; duplicates are summed, explicit zeros kept out. *)
let of_triplets ~nrows ~ncols triplets =
  if nrows < 1 || ncols < 1 then invalid_arg "Csr.of_triplets: empty shape";
  List.iter
    (fun (r, c, _) ->
      if r < 0 || r >= nrows || c < 0 || c >= ncols then
        invalid_arg
          (Printf.sprintf "Csr.of_triplets: entry (%d,%d) out of %dx%d" r c nrows
             ncols))
    triplets;
  (* bucket by row, then sort and merge columns *)
  let buckets = Array.make nrows [] in
  List.iter (fun (r, c, v) -> buckets.(r) <- (c, v) :: buckets.(r)) triplets;
  let row_ptr = Array.make (nrows + 1) 0 in
  let cols = ref [] and vals = ref [] in
  let count = ref 0 in
  for r = 0 to nrows - 1 do
    let entries = List.sort (fun (c1, _) (c2, _) -> compare c1 c2) buckets.(r) in
    let rec merge = function
      | [] -> []
      | [ e ] -> [ e ]
      | (c1, v1) :: (c2, v2) :: rest when c1 = c2 -> merge ((c1, v1 +. v2) :: rest)
      | e :: rest -> e :: merge rest
    in
    let merged = List.filter (fun (_, v) -> v <> 0.) (merge entries) in
    List.iter
      (fun (c, v) ->
        cols := c :: !cols;
        vals := v :: !vals;
        incr count)
      merged;
    row_ptr.(r + 1) <- !count
  done;
  {
    nrows;
    ncols;
    row_ptr;
    col_idx = Array.of_list (List.rev !cols);
    values = Array.of_list (List.rev !vals);
  }

(* y := A x *)
let spmv m x y =
  if Array.length x <> m.ncols || Array.length y <> m.nrows then
    invalid_arg "Csr.spmv: size mismatch";
  for r = 0 to m.nrows - 1 do
    let acc = ref 0. in
    for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
    done;
    y.(r) <- !acc
  done

let mul m x =
  let y = Array.make m.nrows 0. in
  spmv m x y;
  y

let diagonal m =
  let d = Array.make m.nrows 0. in
  for r = 0 to m.nrows - 1 do
    for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      if m.col_idx.(k) = r then d.(r) <- m.values.(k)
    done
  done;
  d

let get m r c =
  let v = ref 0. in
  for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
    if m.col_idx.(k) = c then v := m.values.(k)
  done;
  !v

let iter_row m r f =
  for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

(* symmetry check (structural + numeric, within eps) for SPD solvers *)
let is_symmetric ?(eps = 1e-12) m =
  if m.nrows <> m.ncols then false
  else begin
    let ok = ref true in
    for r = 0 to m.nrows - 1 do
      iter_row m r (fun c v ->
          if Float.abs (v -. get m c r) > eps *. (1. +. Float.abs v) then
            ok := false)
    done;
    !ok
  end
