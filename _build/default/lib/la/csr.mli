(** Compressed-sparse-row matrices, assembled from (row, col, value)
    triplets with duplicate summation — the natural output of
    finite-element assembly. *)

type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

val nrows : t -> int
val ncols : t -> int
val nnz : t -> int

val of_triplets : nrows:int -> ncols:int -> (int * int * float) list -> t
(** Duplicates are summed; exact zeros dropped; out-of-range entries raise
    [Invalid_argument]. *)

val spmv : t -> float array -> float array -> unit
(** [spmv a x y] sets y := A x. *)

val mul : t -> float array -> float array
val diagonal : t -> float array
val get : t -> int -> int -> float
val iter_row : t -> int -> (int -> float -> unit) -> unit
val is_symmetric : ?eps:float -> t -> bool
