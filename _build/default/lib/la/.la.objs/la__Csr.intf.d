lib/la/csr.mli:
