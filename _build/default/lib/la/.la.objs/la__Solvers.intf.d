lib/la/solvers.mli: Csr
