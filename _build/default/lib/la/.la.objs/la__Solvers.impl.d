lib/la/solvers.ml: Array Csr Float
