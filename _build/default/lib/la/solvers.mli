(** Iterative sparse solvers: Jacobi-preconditioned conjugate gradients
    (the workhorse for the SPD systems FEM assembly produces) and plain
    Jacobi iteration for comparison. *)

type stats = {
  iterations : int;
  residual : float; (** relative: ||b - Ax|| / ||b|| *)
  converged : bool;
}

val dot : float array -> float array -> float
val axpy : float -> float array -> float array -> unit
val norm2 : float array -> float

val cg :
  ?precond:bool -> ?tol:float -> ?max_iter:int -> Csr.t ->
  b:float array -> x:float array -> stats
(** [x] is the initial guess and receives the solution. Bails out (with
    [converged = false]) if the matrix is detected non-SPD. *)

val jacobi :
  ?tol:float -> ?max_iter:int -> Csr.t -> b:float array -> x:float array ->
  stats
