(* Boundary conditions for the phonon BTE (paper Eq. 6).

   Both conditions are implemented as FLUX callbacks: the callback returns
   the surface-term integrand with the same sign convention as the
   equation's [- surface(vg * upwind(S, I))] term, i.e. minus the outward
   advective flux, with the ghost ("outside") intensity chosen as

     isothermal wall:    I_ghost = I0_b(T_wall(x))
     symmetry (specular): I_ghost = I_{r,b} of the interior cell,
                          r = reflected direction index.

   These run on the CPU in the hybrid target, exactly as the paper's
   user-supplied callbacks do. *)

type ctx = {
  disp : Dispersion.t;
  eqtab : Equilibrium.t;
  angles : Angles.t;
}

(* wall temperature profile: constant, or a function of position along the
   wall (the hot-spot wall uses a Gaussian) *)
type wall = Const_wall of float | Profile_wall of (float array -> float)

let wall_temperature w pos =
  match w with Const_wall t -> t | Profile_wall f -> f pos

(* advective normal speed of direction d, band b through face normal;
   handles 1-D, 2-D and 3-D meshes *)
let bn ctx ~d ~b ~normal =
  let vg = (Dispersion.band ctx.disp b).Dispersion.vg in
  let dim = Array.length normal in
  let s_dot_n =
    (ctx.angles.Angles.sx.(d) *. normal.(0))
    +. (if dim > 1 then ctx.angles.Angles.sy.(d) *. normal.(1) else 0.)
    +. if dim > 2 then ctx.angles.Angles.sz.(d) *. normal.(2) else 0.
  in
  vg *. s_dot_n

(* upwind flux integrand through a boundary face given the ghost value *)
let flux_with_ghost ctx (bctx : Finch.Problem.bc_ctx) ~ghost =
  let d = Finch.Problem.bc_ival bctx "d" and b = Finch.Problem.bc_ival bctx "b" in
  let speed = bn ctx ~d ~b ~normal:bctx.Finch.Problem.bc_normal in
  let fi = bctx.Finch.Problem.bc_field "I" in
  let i_face =
    if speed > 0. then
      (* outgoing: interior value *)
      Fvm.Field.get fi bctx.Finch.Problem.bc_cell bctx.Finch.Problem.bc_comp
    else ghost
  in
  (* minus the outward flux, matching the equation's surface-term sign *)
  -.(speed *. i_face)

(* Isothermal boundary: ghost intensity is the equilibrium intensity at the
   wall temperature.  The first numeric argument of the DSL string (e.g.
   "isothermal(I,vg,Sx,Sy,b,d,normal,300)") provides the default wall
   temperature; [wall] overrides it with a profile. *)
let isothermal ?wall ctx (bctx : Finch.Problem.bc_ctx) =
  let b = Finch.Problem.bc_ival bctx "b" in
  let t_wall =
    match wall with
    | Some w ->
      let pos = Fvm.Mesh.face_centroid bctx.Finch.Problem.bc_mesh bctx.Finch.Problem.bc_face in
      wall_temperature w pos
    | None ->
      if Array.length bctx.Finch.Problem.bc_args > 0 then
        bctx.Finch.Problem.bc_args.(0)
      else Constants.t_reference
  in
  flux_with_ghost ctx bctx ~ghost:(Equilibrium.i0 ctx.eqtab b t_wall)

(* Symmetry boundary: specular reflection couples directions — the ghost
   intensity of direction d is the interior intensity of the reflected
   direction r at the same band. *)
let symmetry ctx (bctx : Finch.Problem.bc_ctx) =
  let d = Finch.Problem.bc_ival bctx "d" and b = Finch.Problem.bc_ival bctx "b" in
  let nd = ctx.angles.Angles.ndirs in
  (* the mesh normal may have fewer components than the direction set
     (1-D slabs use the circle quadrature); pad with zeros *)
  let normal =
    let n = bctx.Finch.Problem.bc_normal in
    if Array.length n >= ctx.angles.Angles.dim then n
    else
      Array.init ctx.angles.Angles.dim (fun k ->
          if k < Array.length n then n.(k) else 0.)
  in
  let r = Angles.reflect ctx.angles d normal in
  let fi = bctx.Finch.Problem.bc_field "I" in
  let ghost = Fvm.Field.get fi bctx.Finch.Problem.bc_cell (r + (b * nd)) in
  flux_with_ghost ctx bctx ~ghost

(* Adiabatic (perfectly insulated) wall: zero net flux.  Not used by the
   paper's scenarios but handy for conservation tests. *)
let adiabatic (_ : Finch.Problem.bc_ctx) = 0.
