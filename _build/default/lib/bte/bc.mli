(** Boundary conditions for the phonon BTE (paper Eq. 6), implemented as
    FLUX callbacks returning the surface-term integrand with the same sign
    convention as the equation's [- surface(vg * upwind(S, I))] term.
    These run on the CPU in the hybrid target, exactly like the paper's
    user-supplied callbacks. *)

type ctx = {
  disp : Dispersion.t;
  eqtab : Equilibrium.t;
  angles : Angles.t;
}

type wall = Const_wall of float | Profile_wall of (float array -> float)

val wall_temperature : wall -> float array -> float

val bn : ctx -> d:int -> b:int -> normal:float array -> float
(** Advective normal speed vg (s . n) of a (direction, band) pair. *)

val flux_with_ghost : ctx -> Finch.Problem.bc_ctx -> ghost:float -> float
(** Upwind flux integrand through a boundary face: interior value when
    outgoing, [ghost] when incoming; sign-matched to the equation. *)

val isothermal : ?wall:wall -> ctx -> Finch.Problem.bc_callback
(** Ghost intensity = I0_b(T_wall); the wall temperature comes from
    [wall] (e.g. the Gaussian hot-spot profile) or from the first numeric
    argument of the DSL boundary string. *)

val symmetry : ctx -> Finch.Problem.bc_callback
(** Specular reflection: the ghost intensity of direction d is the
    interior intensity of the reflected direction at the same band — the
    direction coupling the paper highlights. *)

val adiabatic : Finch.Problem.bc_ctx -> float
(** Zero net flux (used by conservation tests). *)
