(* Angular discretization of the direction space.

   2-D problems use [n] uniformly spaced unit vectors on the circle with
   equal weights summing to the full angular measure 2*pi (the paper's
   2-D case uses 20 such directions).  3-D problems use a product
   azimuthal x polar rule on the sphere (n_az * n_po directions, weights
   summing to 4*pi), matching the 20 x 20 = 400 direction configuration the
   paper describes for general 3-D runs.

   Direction layouts are chosen so that axis-aligned specular reflections
   map the direction set onto itself exactly (offset half-step placement
   with an even count), which the symmetry boundary condition requires. *)

type t = {
  dim : int;
  ndirs : int;
  sx : float array;
  sy : float array;
  sz : float array;        (* zeros in 2-D *)
  weight : float array;    (* quadrature weights, sum = total measure *)
  total : float;           (* 2*pi in 2-D, 4*pi in 3-D *)
}

let make_2d ~ndirs =
  if ndirs < 2 || ndirs mod 2 <> 0 then
    invalid_arg "Angles.make_2d: need an even direction count >= 2";
  let sx = Array.make ndirs 0. and sy = Array.make ndirs 0. in
  for d = 0 to ndirs - 1 do
    (* half-step offset keeps directions off the axes, so reflections about
       x and y axes permute the set without fixed boundary-grazing rays *)
    let th = 2. *. Float.pi *. (float_of_int d +. 0.5) /. float_of_int ndirs in
    sx.(d) <- cos th;
    sy.(d) <- sin th
  done;
  let w = 2. *. Float.pi /. float_of_int ndirs in
  {
    dim = 2;
    ndirs;
    sx;
    sy;
    sz = Array.make ndirs 0.;
    weight = Array.make ndirs w;
    total = 2. *. Float.pi;
  }

(* product rule on the sphere: uniform azimuthal x midpoint polar in
   cos(theta) (exactly integrates constants; adequate for coarse 3-D) *)
let make_3d ~n_azimuthal ~n_polar =
  if n_azimuthal < 2 || n_polar < 1 then invalid_arg "Angles.make_3d";
  let n = n_azimuthal * n_polar in
  let sx = Array.make n 0.
  and sy = Array.make n 0.
  and sz = Array.make n 0.
  and weight = Array.make n 0. in
  let dmu = 2. /. float_of_int n_polar in
  let dphi = 2. *. Float.pi /. float_of_int n_azimuthal in
  let idx = ref 0 in
  for j = 0 to n_polar - 1 do
    let mu = -1. +. ((float_of_int j +. 0.5) *. dmu) in
    let sin_th = sqrt (Float.max 0. (1. -. (mu *. mu))) in
    for i = 0 to n_azimuthal - 1 do
      let phi = (float_of_int i +. 0.5) *. dphi in
      sx.(!idx) <- sin_th *. cos phi;
      sy.(!idx) <- sin_th *. sin phi;
      sz.(!idx) <- mu;
      weight.(!idx) <- dmu *. dphi;
      incr idx
    done
  done;
  { dim = 3; ndirs = n; sx; sy; sz; weight; total = 4. *. Float.pi }

let dir t d =
  if t.dim = 2 then [| t.sx.(d); t.sy.(d) |] else [| t.sx.(d); t.sy.(d); t.sz.(d) |]

(* Index of the direction closest to [v] (used to resolve reflections). *)
let closest t v =
  let best = ref 0 and best_dot = ref neg_infinity in
  for d = 0 to t.ndirs - 1 do
    let dot =
      (t.sx.(d) *. v.(0)) +. (t.sy.(d) *. v.(1))
      +. if t.dim = 3 then t.sz.(d) *. v.(2) else 0.
    in
    if dot > !best_dot then begin
      best_dot := dot;
      best := d
    end
  done;
  !best

(* Specular reflection of direction [d] about a plane with unit normal
   [n]: returns the index of the reflected direction.  For axis-aligned
   normals and the layouts above this is exact; otherwise the closest
   discrete direction is used. *)
let reflect t d n =
  let v = dir t d in
  let r = Fvm.Vec.reflect v n in
  closest t r

(* check that reflection about [n] is an involution on the whole set *)
let reflection_is_involution t n =
  let ok = ref true in
  for d = 0 to t.ndirs - 1 do
    if reflect t (reflect t d n) n <> d then ok := false
  done;
  !ok
