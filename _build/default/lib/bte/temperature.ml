(* The nonlinear temperature update — the paper's post-step user code.

   After each intensity step, the lattice temperature of every cell is
   recovered from the energy balance of the scattering operator:

     sum_b [ Omega * I0_b(T) - J_b ] * rate_b(T) = 0,
     J_b = sum_d w_d I_{d,b}            (angular integral of intensity)

   so that relaxation neither creates nor destroys energy during the next
   sweep.  The equation is scalar but nonlinear in T (Bose-Einstein
   statistics in I0_b, Holland rates in rate_b); it is solved per cell by a
   Newton iteration with the dI0/dT tabulation as the Jacobian, with a
   bisection fallback.

   Cross-band coupling: in band-parallel runs every rank owns a band
   subset; J_b is summed across ranks ("a reduction of intensity across
   bands"), after which each rank performs the (duplicated, cheap) Newton
   solve and refreshes I0 and beta = 1/tau for its own bands. *)

(* How the cross-band coupling is communicated in distributed runs:
   - [Scalar_energy] reduces one number per cell (the absorbed power
     G_c = sum_{d,b} w_d I beta with the current rates) — the paper's
     "reduction of intensity across bands", cheapest possible payload;
   - [Per_band] reduces the per-band angular integrals J_b (ncells*nbands
     values) so the balance can be re-evaluated with rates at the updated
     temperature — exactly energy-conserving for the next sweep. *)
type reduction = Scalar_energy | Per_band

type model = {
  disp : Dispersion.t;
  eqtab : Equilibrium.t;
  angles : Angles.t;
  max_newton : int;
  tol : float; (* on |F| relative to the emission magnitude *)
  reduction : reduction;
}

let make ?(max_newton = 30) ?(tol = 1e-12) ?(reduction = Scalar_energy)
    ~disp ~eqtab ~angles () =
  { disp; eqtab; angles; max_newton; tol; reduction }

let nbands m = Dispersion.nbands m.disp

(* residual F(T) and a Jacobian estimate at T.  [jb] gives the per-band
   angular integral; [g] gives the pre-reduced absorbed power (scalar
   mode), in which case the J term is dropped from the emission sum. *)
(* Energy density per (direction, band) is w * I / vg, so the scattering
   operator's energy balance carries a 1/vg weight per band:
     sum_b (rate_b(T) / vg_b) * (Omega I0_b(T) - J_b) = 0. *)
let residual_per_band m jb t =
  let omega = m.angles.Angles.total in
  let f = ref 0. and df = ref 0. in
  for b = 0 to nbands m - 1 do
    let band = Dispersion.band m.disp b in
    let w = Scattering.band_rate band t /. band.Dispersion.vg in
    f := !f +. (((omega *. Equilibrium.i0 m.eqtab b t) -. jb b) *. w);
    df := !df +. (omega *. Equilibrium.di0 m.eqtab b t *. w)
  done;
  !f, !df

let residual_scalar m g t =
  let omega = m.angles.Angles.total in
  let f = ref (-.g) and df = ref 0. in
  for b = 0 to nbands m - 1 do
    let band = Dispersion.band m.disp b in
    let w = Scattering.band_rate band t /. band.Dispersion.vg in
    f := !f +. (omega *. Equilibrium.i0 m.eqtab b t *. w);
    df := !df +. (omega *. Equilibrium.di0 m.eqtab b t *. w)
  done;
  !f, !df

(* magnitude used for the relative convergence test *)
let emission_scale m t =
  let omega = m.angles.Angles.total in
  let acc = ref 0. in
  for b = 0 to nbands m - 1 do
    let band = Dispersion.band m.disp b in
    acc :=
      !acc
      +. (omega *. Equilibrium.i0 m.eqtab b t *. Scattering.band_rate band t
          /. band.Dispersion.vg)
  done;
  Float.max !acc 1e-300

exception No_convergence of float

let newton_residual m residual ~guess =
  let t_lo = m.eqtab.Equilibrium.t_lo and t_hi = m.eqtab.Equilibrium.t_hi in
  let scale = emission_scale m (Float.max t_lo (Float.min t_hi guess)) in
  let rec go t iter =
    if iter > m.max_newton then bisect t_lo t_hi 0
    else begin
      let f, df = residual t in
      if Float.abs f <= m.tol *. scale then t
      else if df <= 0. then bisect t_lo t_hi 0
      else begin
        let t' = t -. (f /. df) in
        let t' = Float.max t_lo (Float.min t_hi t') in
        if Float.abs (t' -. t) < 1e-13 *. t then t' else go t' (iter + 1)
      end
    end
  and bisect lo hi iter =
    (* F is increasing in T (I0 and rates both increase), so bisection is
       safe whenever Newton stalls *)
    if iter > 200 then raise (No_convergence ((lo +. hi) /. 2.))
    else begin
      let mid = (lo +. hi) /. 2. in
      let f, _ = residual mid in
      if Float.abs f <= m.tol *. scale || hi -. lo < 1e-10 then mid
      else if f > 0. then bisect lo mid (iter + 1)
      else bisect mid hi (iter + 1)
    end
  in
  go (Float.max t_lo (Float.min t_hi guess)) 0

let newton m ~jb ~guess =
  newton_residual m (residual_per_band m jb) ~guess

let newton_scalar m ~g ~guess =
  newton_residual m (fun t -> residual_scalar m g t) ~guess

(* The post-step callback wired into the DSL problem.  Field names follow
   the BTE encoding: intensity "I" over [d; b], equilibrium "Io" over [b],
   rates "beta" over [b], temperature "T" (scalar). *)
let post_step m (ctx : Finch.Problem.step_ctx) =
  let mesh = ctx.Finch.Problem.st_mesh in
  let ncells = mesh.Fvm.Mesh.ncells in
  let nd = m.angles.Angles.ndirs in
  let nb = nbands m in
  let fi = ctx.Finch.Problem.st_field "I" in
  let fio = ctx.Finch.Problem.st_field "Io" in
  let fbeta = ctx.Finch.Problem.st_field "beta" in
  let ft = ctx.Finch.Problem.st_field "T" in
  let b_off, b_len = ctx.Finch.Problem.st_index_range "b" in
  let cells =
    match ctx.Finch.Problem.st_cells with
    | Some cs -> cs
    | None -> Array.init ncells (fun c -> c)
  in
  let refresh cell t =
    Fvm.Field.set ft cell 0 t;
    for b = b_off to b_off + b_len - 1 do
      let band = Dispersion.band m.disp b in
      Fvm.Field.set fio cell b (Equilibrium.i0 m.eqtab b t);
      Fvm.Field.set fbeta cell b (Scattering.band_rate band t)
    done
  in
  match m.reduction with
  | Scalar_energy ->
    (* absorbed power per cell with the current (pre-update) rates *)
    let g = Array.make ncells 0. in
    Array.iter
      (fun cell ->
        let acc = ref 0. in
        for b = b_off to b_off + b_len - 1 do
          let vg = (Dispersion.band m.disp b).Dispersion.vg in
          let w = Fvm.Field.get fbeta cell b /. vg in
          for d = 0 to nd - 1 do
            let comp = d + (b * nd) in
            acc :=
              !acc
              +. (m.angles.Angles.weight.(d) *. Fvm.Field.get fi cell comp *. w)
          done
        done;
        g.(cell) <- !acc)
      cells;
    if ctx.Finch.Problem.st_nranks > 1 && b_len < nb then
      ctx.Finch.Problem.st_allreduce g;
    Array.iter
      (fun cell ->
        let guess = Fvm.Field.get ft cell 0 in
        let t = newton_scalar m ~g:g.(cell) ~guess in
        refresh cell t)
      cells
  | Per_band ->
    (* per-cell, per-band angular integrals J_b for the owned slice *)
    let j = Array.make (ncells * nb) 0. in
    Array.iter
      (fun cell ->
        for b = b_off to b_off + b_len - 1 do
          let acc = ref 0. in
          for d = 0 to nd - 1 do
            let comp = d + (b * nd) in
            acc := !acc +. (m.angles.Angles.weight.(d) *. Fvm.Field.get fi cell comp)
          done;
          j.((cell * nb) + b) <- !acc
        done)
      cells;
    (* cross-band (and, for mesh partitioning, cross-cell) reduction *)
    if ctx.Finch.Problem.st_nranks > 1 && b_len < nb then
      ctx.Finch.Problem.st_allreduce j;
    (* Newton per owned cell; refresh T, Io, beta for owned bands *)
    Array.iter
      (fun cell ->
        let jb b = j.((cell * nb) + b) in
        let guess = Fvm.Field.get ft cell 0 in
        let t = newton m ~jb ~guess in
        refresh cell t)
      cells
