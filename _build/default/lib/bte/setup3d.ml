(* Coarse 3-D BTE scenario (paper Section III-A: "Some very coarse-grained
   3-dimensional runs were also performed successfully").

   A box with a cold isothermal floor (region 1), an isothermal ceiling
   carrying a Gaussian hot spot (region 2), and specular symmetry on the
   four side walls (regions 3..6).  Directions use the product sphere rule
   of [Angles.make_3d]; everything else (dispersion, scattering,
   temperature inversion) is shared with the 2-D setup. *)

type scenario3d = {
  sname : string;
  lx : float;
  ly : float;
  lz : float;
  nx : int;
  ny : int;
  nz : int;
  n_azimuthal : int;
  n_polar : int;
  n_la_bands : int;
  t_cold : float;
  t_hot : float;
  hot_radius : float;
  dt : float;
  nsteps : int;
}

(* the paper's "comparable resolution" 3-D case would need ~20x20 = 400
   directions; the demonstration default is deliberately coarse *)
let coarse =
  {
    sname = "box-coarse";
    lx = 2e-6;
    ly = 2e-6;
    lz = 2e-6;
    nx = 8;
    ny = 8;
    nz = 8;
    n_azimuthal = 6;
    n_polar = 4;
    n_la_bands = 6;
    t_cold = 300.;
    t_hot = 350.;
    hot_radius = 0.7e-6;
    dt = 1e-12;
    nsteps = 20;
  }

type built3d = {
  problem : Finch.Problem.t;
  scenario : scenario3d;
  disp : Dispersion.t;
  angles : Angles.t;
  eqtab : Equilibrium.t;
  temp_model : Temperature.model;
  mesh : Fvm.Mesh.t;
}

let cfl_dt sc disp =
  let dx =
    Float.min
      (sc.lx /. float_of_int sc.nx)
      (Float.min (sc.ly /. float_of_int sc.ny) (sc.lz /. float_of_int sc.nz))
  in
  let vmax =
    Array.fold_left
      (fun acc (b : Dispersion.band) -> Float.max acc b.Dispersion.vg)
      0. disp.Dispersion.bands
  in
  let rate_max =
    Array.fold_left
      (fun acc b -> Float.max acc (Scattering.band_rate b (Float.max sc.t_cold sc.t_hot)))
      0. disp.Dispersion.bands
  in
  Float.min (dx /. vmax /. 3.) (0.5 /. rate_max)

let build (sc : scenario3d) =
  let disp = Dispersion.make ~n_la:sc.n_la_bands in
  let nb = Dispersion.nbands disp in
  let angles = Angles.make_3d ~n_azimuthal:sc.n_azimuthal ~n_polar:sc.n_polar in
  let eqtab =
    Equilibrium.make ~omega_total:angles.Angles.total
      ~t_lo:(Float.max 2. (Float.min sc.t_cold sc.t_hot /. 2.))
      ~t_hi:(2. *. Float.max sc.t_cold sc.t_hot)
      disp
  in
  let temp_model = Temperature.make ~disp ~eqtab ~angles () in
  let dt = Float.min sc.dt (cfl_dt sc disp) in

  let p = Finch.Problem.init ("bte3d-" ^ sc.sname) in
  Finch.Problem.domain p 3;
  Finch.Problem.solver_type p Finch.Config.FV;
  Finch.Problem.time_stepper p Finch.Config.Euler_explicit;
  let mesh =
    Fvm.Mesh_gen.box ~nx:sc.nx ~ny:sc.ny ~nz:sc.nz ~lx:sc.lx ~ly:sc.ly ~lz:sc.lz ()
  in
  Finch.Problem.set_mesh p mesh;
  Finch.Problem.set_steps p ~dt ~nsteps:sc.nsteps;

  let d = Finch.Problem.index p ~name:"d" ~range:(1, angles.Angles.ndirs) in
  let b = Finch.Problem.index p ~name:"b" ~range:(1, nb) in
  let vI =
    Finch.Problem.variable p ~name:"I" ~location:Finch.Entity.Cell
      ~indices:[ d; b ] ()
  in
  let vIo =
    Finch.Problem.variable p ~name:"Io" ~location:Finch.Entity.Cell ~indices:[ b ] ()
  in
  let vbeta =
    Finch.Problem.variable p ~name:"beta" ~location:Finch.Entity.Cell ~indices:[ b ] ()
  in
  let vT = Finch.Problem.variable p ~name:"T" ~location:Finch.Entity.Cell () in
  ignore
    (Finch.Problem.coefficient p ~name:"Sx" ~index:d
       (Finch.Entity.Arr (Array.copy angles.Angles.sx)));
  ignore
    (Finch.Problem.coefficient p ~name:"Sy" ~index:d
       (Finch.Entity.Arr (Array.copy angles.Angles.sy)));
  ignore
    (Finch.Problem.coefficient p ~name:"Sz" ~index:d
       (Finch.Entity.Arr (Array.copy angles.Angles.sz)));
  ignore
    (Finch.Problem.coefficient p ~name:"vg" ~index:b
       (Finch.Entity.Arr (Dispersion.vg_array disp)));

  let nd = angles.Angles.ndirs in
  let i_init = Array.init nb (fun bb -> Equilibrium.i0 eqtab bb sc.t_cold) in
  Finch.Problem.initial p vI
    (Finch.Problem.Init_fn (fun _ comp -> i_init.(comp / nd)));
  Finch.Problem.initial p vIo (Finch.Problem.Init_fn (fun _ bb -> i_init.(bb)));
  Finch.Problem.initial p vbeta
    (Finch.Problem.Init_fn
       (fun _ bb -> Scattering.band_rate (Dispersion.band disp bb) sc.t_cold));
  Finch.Problem.initial p vT (Finch.Problem.Init_const sc.t_cold);

  let bcctx = { Bc.disp; eqtab; angles } in
  let hot_wall pos =
    let x = pos.(0) -. (sc.lx /. 2.) and y = pos.(1) -. (sc.ly /. 2.) in
    let r2 = (x *. x) +. (y *. y) in
    sc.t_cold
    +. ((sc.t_hot -. sc.t_cold)
        *. exp (-2. *. r2 /. (sc.hot_radius *. sc.hot_radius)))
  in
  Finch.Problem.callback_function p "isothermal_cold" (Bc.isothermal bcctx);
  Finch.Problem.callback_function p "isothermal_hot"
    (Bc.isothermal ~wall:(Bc.Profile_wall hot_wall) bcctx);
  Finch.Problem.callback_function p "symmetry" (Bc.symmetry bcctx);
  Finch.Problem.boundary p vI 1 Finch.Config.Flux
    (Printf.sprintf "isothermal_cold(I,vg,Sx,Sy,b,d,normal,%g)" sc.t_cold);
  Finch.Problem.boundary p vI 2 Finch.Config.Flux
    "isothermal_hot(I,vg,Sx,Sy,b,d,normal)";
  List.iter
    (fun r ->
      Finch.Problem.boundary p vI r Finch.Config.Flux "symmetry(I,Sx,Sy,b,d,normal)")
    [ 3; 4; 5; 6 ];

  Finch.Problem.post_step_function p (Temperature.post_step temp_model);

  ignore
    (Finch.Problem.conservation_form p vI
       "(Io[b] - I[d,b]) * beta[b] - surface(vg[b] * upwind([Sx[d];Sy[d];Sz[d]], I[d,b]))");
  { problem = p; scenario = { sc with dt }; disp; angles; eqtab; temp_model; mesh }
