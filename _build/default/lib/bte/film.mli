(** Cross-plane thin-film conduction: the phonon size effect.

    A 1-D slab between two isothermal walls, marched to a steady heat flux
    with the point-implicit stepper; the effective conductivity
    k_eff = q L / dT is far below the bulk value for films thin against
    the mean free path (ballistic limit) and approaches the model's own
    diffusive limit for thick films — the physics that motivates the BTE
    over Fourier's law at sub-micron scales. *)

type result = {
  thickness : float;
  k_eff : float;
  k_bulk : float;          (** the discretized model's diffusive limit *)
  ratio : float;           (** k_eff / k_bulk: the size-effect signature *)
  steps_run : int;
  flux_uniformity : float; (** steady-state check: relative flux variation *)
}

type config = {
  ncells : int;
  ndirs : int;
  n_la_bands : int;
  t_hot : float;
  t_cold : float;
  max_steps : int;
  flux_tol : float;
}

val default_config : config

val build :
  config -> thickness:float ->
  Finch.Problem.t * Fvm.Mesh.t * Dispersion.t * Angles.t * float
(** The 1-D DSL problem for a slab; returns (problem, mesh, dispersion,
    angles, dt). *)

val cell_flux : Dispersion.t -> Angles.t -> Fvm.Field.t -> int -> float
(** q(c) = sum over (d,b) of w_d Sx_d I — no group-velocity factor:
    intensity is already an energy-flux density. *)

val diffusive_limit : Dispersion.t -> Angles.t -> Equilibrium.t -> float -> float
(** k of the discretized model in the Fourier limit:
    (1/2) Omega sum_b (dI0_b/dT) vg_b tau_b. *)

val effective_conductivity : ?cfg:config -> thickness:float -> unit -> result
