(* Cross-plane thin-film conduction: the classic phonon size effect.

   A 1-D slab of thickness L between two isothermal walls at T_hot and
   T_cold.  When L is large against the phonon mean free path the BTE
   reduces to Fourier's law and the effective conductivity approaches the
   bulk value; when L is comparable or smaller, boundary scattering cuts
   the conductivity down (ballistic limit).  This is the size effect that
   makes sub-micron thermal analysis require the BTE — the motivation in
   the paper's introduction — and a strong end-to-end check of the DSL on
   1-D meshes.

   The effective conductivity is extracted from the steady heat flux:
   k_eff = q L / (T_hot - T_cold),  q = sum over (d,b) of w_d Sx_d I. *)

type result = {
  thickness : float;
  k_eff : float;
  k_bulk : float;
  ratio : float;        (* k_eff / k_bulk *)
  steps_run : int;
  flux_uniformity : float; (* max relative flux variation across the slab *)
}

type config = {
  ncells : int;
  ndirs : int;
  n_la_bands : int;
  t_hot : float;
  t_cold : float;
  max_steps : int;
  flux_tol : float; (* steady-state criterion on flux drift per 100 steps *)
}

let default_config =
  {
    ncells = 40;
    ndirs = 16;
    n_la_bands = 8;
    t_hot = 305.;
    t_cold = 295.;
    max_steps = 40_000;
    flux_tol = 1e-4;
  }

(* build the 1-D problem for a slab of thickness [l] *)
let build cfg ~thickness =
  let disp = Dispersion.make ~n_la:cfg.n_la_bands in
  let nb = Dispersion.nbands disp in
  let angles = Angles.make_2d ~ndirs:cfg.ndirs in
  let t_mid = (cfg.t_hot +. cfg.t_cold) /. 2. in
  let eqtab =
    Equilibrium.make ~omega_total:angles.Angles.total ~t_lo:(t_mid /. 2.)
      ~t_hi:(2. *. t_mid) disp
  in
  let temp_model = Temperature.make ~disp ~eqtab ~angles () in
  let p = Finch.Problem.init "thin-film" in
  Finch.Problem.domain p 1;
  let mesh = Fvm.Mesh_gen.line ~n:cfg.ncells ~length:thickness in
  Finch.Problem.set_mesh p mesh;
  (* point-implicit stepping frees dt from the relaxation bound; only the
     advective CFL limit remains *)
  Finch.Problem.time_stepper p Finch.Config.Euler_point_implicit;
  let dx = thickness /. float_of_int cfg.ncells in
  let vmax =
    Array.fold_left
      (fun acc (b : Dispersion.band) -> Float.max acc b.Dispersion.vg)
      0. disp.Dispersion.bands
  in
  let dt = 0.4 *. dx /. vmax in
  Finch.Problem.set_steps p ~dt ~nsteps:1;

  let d = Finch.Problem.index p ~name:"d" ~range:(1, cfg.ndirs) in
  let b = Finch.Problem.index p ~name:"b" ~range:(1, nb) in
  let vI = Finch.Problem.variable p ~name:"I" ~indices:[ d; b ] () in
  let vIo = Finch.Problem.variable p ~name:"Io" ~indices:[ b ] () in
  let vbeta = Finch.Problem.variable p ~name:"beta" ~indices:[ b ] () in
  let vT = Finch.Problem.variable p ~name:"T" () in
  ignore
    (Finch.Problem.coefficient p ~name:"Sx" ~index:d
       (Finch.Entity.Arr (Array.copy angles.Angles.sx)));
  ignore
    (Finch.Problem.coefficient p ~name:"vg" ~index:b
       (Finch.Entity.Arr (Dispersion.vg_array disp)));

  let nd = cfg.ndirs in
  (* linear initial temperature profile speeds convergence *)
  let t_of pos =
    cfg.t_hot +. ((cfg.t_cold -. cfg.t_hot) *. pos.(0) /. thickness)
  in
  Finch.Problem.initial p vI
    (Finch.Problem.Init_fn (fun pos comp -> Equilibrium.i0 eqtab (comp / nd) (t_of pos)));
  Finch.Problem.initial p vIo
    (Finch.Problem.Init_fn (fun pos bb -> Equilibrium.i0 eqtab bb (t_of pos)));
  Finch.Problem.initial p vbeta
    (Finch.Problem.Init_fn
       (fun pos bb -> Scattering.band_rate (Dispersion.band disp bb) (t_of pos)));
  Finch.Problem.initial p vT (Finch.Problem.Init_fn (fun pos _ -> t_of pos));

  let bcctx = { Bc.disp; eqtab; angles } in
  Finch.Problem.callback_function p "hot_wall"
    (Bc.isothermal ~wall:(Bc.Const_wall cfg.t_hot) bcctx);
  Finch.Problem.callback_function p "cold_wall"
    (Bc.isothermal ~wall:(Bc.Const_wall cfg.t_cold) bcctx);
  Finch.Problem.boundary p vI 1 Finch.Config.Flux "hot_wall(I,vg,Sx,b,d,normal)";
  Finch.Problem.boundary p vI 2 Finch.Config.Flux "cold_wall(I,vg,Sx,b,d,normal)";
  Finch.Problem.post_step_function p (Temperature.post_step temp_model);
  ignore
    (Finch.Problem.conservation_form p vI
       "(Io[b] - I[d,b]) * beta[b] - surface(vg[b] * upwind([Sx[d]], I[d,b]))");
  p, mesh, disp, angles, dt

(* Heat flux through the slab at cell [c]: q = sum over (d,b) of
   w_d Sx_d I — intensity is already an energy-flux density, so no group
   velocity appears here (it lives inside I0 and the advection term). *)
let cell_flux (disp : Dispersion.t) (angles : Angles.t) fi c =
  let nd = angles.Angles.ndirs in
  let acc = ref 0. in
  for b = 0 to Dispersion.nbands disp - 1 do
    for d = 0 to nd - 1 do
      acc :=
        !acc
        +. (angles.Angles.weight.(d) *. angles.Angles.sx.(d)
            *. Fvm.Field.get fi c (d + (b * nd)))
    done
  done;
  !acc

(* The diffusive limit of the *discretized* model (2-D angular space,
   band-centred properties): expanding I = I0 - tau vg Sx dI0/dx and
   integrating the flux gives
     k = sum_b <Sx^2>_Omega * Omega * (dI0_b/dT) * vg_b * tau_b
   with <Sx^2> = 1/2 on the circle, Omega = 2 pi.  This (not the
   3-D-spherical bulk integral) is what k_eff must approach for thick
   films. *)
let diffusive_limit (disp : Dispersion.t) (angles : Angles.t)
    (eqtab : Equilibrium.t) t =
  let acc = ref 0. in
  for b = 0 to Dispersion.nbands disp - 1 do
    let band = Dispersion.band disp b in
    let tau = 1. /. Scattering.band_rate band t in
    acc := !acc +. (Equilibrium.di0 eqtab b t *. band.Dispersion.vg *. tau)
  done;
  0.5 *. angles.Angles.total *. !acc

(* march the 1-D problem to a steady flux and extract k_eff *)
let effective_conductivity ?(cfg = default_config) ~thickness () =
  let p, _mesh, disp, angles, _dt = build cfg ~thickness in
  let t_mid = (cfg.t_hot +. cfg.t_cold) /. 2. in
  let eqtab =
    Equilibrium.make ~omega_total:angles.Angles.total ~t_lo:(t_mid /. 2.)
      ~t_hi:(2. *. t_mid) disp
  in
  let st = Finch.Lower.build p in
  let mid = cfg.ncells / 2 in
  let flux () = cell_flux disp angles st.Finch.Lower.u mid in
  let prev = ref (flux ()) in
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ && !steps < cfg.max_steps do
    for _ = 1 to 100 do
      Finch.Lower.rk_step st;
      Finch.Lower.run_post_step st ~allreduce:(fun _ -> ())
    done;
    steps := !steps + 100;
    let q = flux () in
    if Float.abs (q -. !prev) <= cfg.flux_tol *. Float.abs q then
      continue_ := false;
    prev := q
  done;
  let q = flux () in
  (* flux uniformity across the interior (steady state => divergence-free) *)
  let qmin = ref infinity and qmax = ref neg_infinity in
  for c = 2 to cfg.ncells - 3 do
    let qc = cell_flux disp angles st.Finch.Lower.u c in
    if qc < !qmin then qmin := qc;
    if qc > !qmax then qmax := qc
  done;
  let k_eff = q *. thickness /. (cfg.t_hot -. cfg.t_cold) in
  let k_bulk = diffusive_limit disp angles eqtab t_mid in
  {
    thickness;
    k_eff;
    k_bulk;
    ratio = k_eff /. k_bulk;
    steps_run = !steps;
    flux_uniformity = (!qmax -. !qmin) /. Float.abs q;
  }
