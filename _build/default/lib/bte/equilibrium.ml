(* Band-integrated equilibrium intensity I0_b(T) and its temperature
   derivative.

   The equilibrium phonon intensity per unit solid angle is

     I0_b(T) = (1/Omega) * deg_p * integral over the band of
                 hbar*omega * vg(omega) * D(omega) * f_BE(omega, T) domega

   with D the 3-D isotropic density of states and Omega the total angular
   measure of the discretization (2*pi in the 2-D setting).  Each band is
   integrated with a midpoint rule; values and derivatives are tabulated on
   a dense temperature grid for O(1) lookup in the per-cell Newton solve. *)

type t = {
  disp : Dispersion.t;
  omega_total : float;
  t_lo : float;
  t_hi : float;
  dt_grid : float;
  ntemps : int;
  (* i0.(b).(k): I0 of band b at grid temperature k *)
  i0 : float array array;
  di0 : float array array; (* dI0/dT on the same grid *)
}

let f_bose w t =
  let x = Constants.hbar *. w /. (Constants.kb *. t) in
  (* guard very small x: expm1 keeps precision *)
  1. /. Float.expm1 x

(* d f_BE / dT *)
let df_bose w t =
  let x = Constants.hbar *. w /. (Constants.kb *. t) in
  let e = Float.expm1 x in
  let ex = e +. 1. in
  x /. t *. ex /. (e *. e)

(* spectral integrand hbar w vg D(w) for one branch *)
let spectral branch w =
  Constants.hbar *. w *. Dispersion.vg_of_omega branch w *. Dispersion.dos branch w

let quad_points = 32

(* integral over one band of spectral * f(w) *)
let band_integral (b : Dispersion.band) f =
  let deg = Dispersion.degeneracy b.Dispersion.branch in
  let dw = (b.Dispersion.w_hi -. b.Dispersion.w_lo) /. float_of_int quad_points in
  let acc = ref 0. in
  for i = 0 to quad_points - 1 do
    let w = b.Dispersion.w_lo +. ((float_of_int i +. 0.5) *. dw) in
    acc := !acc +. (spectral b.Dispersion.branch w *. f w)
  done;
  deg *. !acc *. dw

let i0_exact tbl b t =
  let band = tbl.disp.Dispersion.bands.(b) in
  band_integral band (fun w -> f_bose w t) /. tbl.omega_total

let di0_exact tbl b t =
  let band = tbl.disp.Dispersion.bands.(b) in
  band_integral band (fun w -> df_bose w t) /. tbl.omega_total

let make ?(t_lo = 50.) ?(t_hi = 600.) ?(dt_grid = 0.5) ~omega_total disp =
  if t_hi <= t_lo || dt_grid <= 0. then invalid_arg "Equilibrium.make";
  let ntemps = int_of_float (ceil ((t_hi -. t_lo) /. dt_grid)) + 1 in
  let nb = Dispersion.nbands disp in
  let tbl =
    {
      disp;
      omega_total;
      t_lo;
      t_hi;
      dt_grid;
      ntemps;
      i0 = Array.make_matrix nb ntemps 0.;
      di0 = Array.make_matrix nb ntemps 0.;
    }
  in
  for b = 0 to nb - 1 do
    for k = 0 to ntemps - 1 do
      let t = t_lo +. (float_of_int k *. dt_grid) in
      tbl.i0.(b).(k) <- i0_exact tbl b t;
      tbl.di0.(b).(k) <- di0_exact tbl b t
    done
  done;
  tbl

let clamp tbl t = Float.min tbl.t_hi (Float.max tbl.t_lo t)

(* linear interpolation on the grid *)
let interp table tbl b t =
  let t = clamp tbl t in
  let x = (t -. tbl.t_lo) /. tbl.dt_grid in
  let k = int_of_float x in
  let k = min k (tbl.ntemps - 2) in
  let frac = x -. float_of_int k in
  let row : float array = table.(b) in
  ((1. -. frac) *. row.(k)) +. (frac *. row.(k + 1))

let i0 tbl b t = interp tbl.i0 tbl b t
let di0 tbl b t = interp tbl.di0 tbl b t

(* total equilibrium energy density at T: sum over bands of Omega * I0 / vg *)
let energy_density tbl t =
  let acc = ref 0. in
  for b = 0 to Dispersion.nbands tbl.disp - 1 do
    let vg = (Dispersion.band tbl.disp b).Dispersion.vg in
    acc := !acc +. (tbl.omega_total *. i0 tbl b t /. vg)
  done;
  !acc
