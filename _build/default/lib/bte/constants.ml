(* Physical constants and silicon material parameters.

   Dispersion: quadratic fits omega(k) = vs*k + c*k^2 along [100] for the
   LA and TA branches of silicon (Brockhouse neutron data), the standard
   parameterization used by the phonon-BTE literature the paper builds on
   (Mazumder & Majumdar 2001; Ali et al. 2014).

   Relaxation times: Holland-type model —
     impurity     1/tau_i  = a_impurity * omega^4          (all branches)
     LA N+U       1/tau_l  = b_l * omega^2 * T^3
     TA normal    1/tau_tn = b_tn * omega * T^4            (omega < omega_half)
     TA umklapp   1/tau_tu = b_tu * omega^2 / sinh(x)      (omega >= omega_half)
   combined by Matthiessen's rule. *)

let hbar = 1.054571817e-34 (* J s *)
let kb = 1.380649e-23      (* J/K *)

(* --- silicon dispersion ------------------------------------------------ *)

(* LA branch: omega = vs_la k + c_la k^2, k in [0, k_max] *)
let vs_la = 9.01e3   (* m/s *)
let c_la = -2.0e-7   (* m^2/s *)

(* TA branch (doubly degenerate) *)
let vs_ta = 5.23e3
let c_ta = -2.26e-7

(* zone-edge wavevector along [100]: 2*pi / a with a = 5.43 Angstrom,
   halved for the diamond structure's reduced zone *)
let k_max = 1.157e10 /. 2. *. 2. (* m^-1; see note below *)

(* NOTE: the literature fits use k_max ~ 1.12e10 1/m; using 1.157e10 from
   2*pi/a directly changes band-edge frequencies by ~3%, well inside the
   model's accuracy.  We keep 2*pi/a. *)

(* --- Holland relaxation-time parameters for silicon -------------------- *)

let a_impurity = 1.32e-45 (* s^3 *)
let b_l = 2.0e-24         (* s K^-3 *)
let b_tn = 9.3e-13        (* K^-4 *)
let b_tu = 5.5e-18        (* s *)

(* TA normal/umklapp crossover: omega at k_max/2 on the TA branch *)
let omega_half_ta =
  let k = k_max /. 2. in
  (vs_ta *. k) +. (c_ta *. k *. k)

(* --- default scenario temperatures ------------------------------------- *)

let t_reference = 300. (* K *)
