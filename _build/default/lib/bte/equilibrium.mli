(** Band-integrated Bose-Einstein equilibrium intensity I0_b(T) and its
    temperature derivative, tabulated on a dense temperature grid for the
    O(1) lookups the per-cell Newton solve needs.

    I0_b(T) = (deg_p / Omega) * integral over the band of
              hbar w vg(w) D(w) f_BE(w, T) dw. *)

type t = {
  disp : Dispersion.t;
  omega_total : float;
  t_lo : float;
  t_hi : float;
  dt_grid : float;
  ntemps : int;
  i0 : float array array;
  di0 : float array array;
}

val f_bose : float -> float -> float
val df_bose : float -> float -> float

val spectral : Dispersion.branch -> float -> float
(** hbar w vg D(w). *)

val quad_points : int

val band_integral : Dispersion.band -> (float -> float) -> float
(** Midpoint-rule integral of spectral * f over a band, including the
    branch degeneracy. *)

val i0_exact : t -> int -> float -> float
(** Direct quadrature (no table). *)

val di0_exact : t -> int -> float -> float

val make :
  ?t_lo:float -> ?t_hi:float -> ?dt_grid:float -> omega_total:float ->
  Dispersion.t -> t

val i0 : t -> int -> float -> float
(** Linear interpolation in the table; temperature clamped to the grid. *)

val di0 : t -> int -> float -> float

val energy_density : t -> float -> float
(** Total equilibrium phonon energy density at T:
    sum over bands of Omega * I0_b / vg_b. *)
