(** Diagnostics: temperature-field statistics, profiles, CSV dumps and the
    energy integral used by conservation tests. *)

type field_stats = {
  t_min : float;
  t_max : float;
  t_mean : float;              (** volume-weighted *)
  peak_pos : float array;      (** centroid of the hottest cell *)
  spread_halfwidth : float;
    (** largest distance from the peak where the excess temperature is
        still at least half the peak excess *)
}

val temperature_stats : Fvm.Mesh.t -> Fvm.Field.t -> t_ambient:float -> field_stats

val profile_x : Fvm.Field.t -> nx:int -> j:int -> float array
(** Temperature along row [j] of a structured grid. *)

val profile_y : Fvm.Field.t -> nx:int -> ny:int -> i:int -> float array

val to_csv : Fvm.Mesh.t -> Fvm.Field.t -> comp:int -> string -> unit
(** x,y,value per cell. *)

val total_energy : Fvm.Mesh.t -> Fvm.Field.t -> Dispersion.t -> Angles.t -> float
(** Domain integral of sum over (d,b) of w_d I / vg_b — conserved in a
    closed adiabatic domain. *)

val to_vtk :
  Fvm.Mesh.t -> (string * Fvm.Field.t * int) list -> string -> unit
(** Legacy-VTK unstructured-grid dump of cell scalars (ParaView-loadable);
    each entry is (name, field, component). *)

val pp_stats : Format.formatter -> field_stats -> unit
