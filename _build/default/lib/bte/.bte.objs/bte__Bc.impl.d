lib/bte/bc.ml: Angles Array Constants Dispersion Equilibrium Finch Fvm
