lib/bte/equilibrium.mli: Dispersion
