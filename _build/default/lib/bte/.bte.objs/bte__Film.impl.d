lib/bte/film.ml: Angles Array Bc Dispersion Equilibrium Finch Float Fvm Scattering Temperature
