lib/bte/temperature.mli: Angles Dispersion Equilibrium Finch
