lib/bte/reference.mli: Angles Dispersion Equilibrium Setup Temperature
