lib/bte/setup3d.ml: Angles Array Bc Dispersion Equilibrium Finch Float Fvm List Printf Scattering Temperature
