lib/bte/scattering.ml: Constants Dispersion Float
