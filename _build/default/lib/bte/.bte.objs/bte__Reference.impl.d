lib/bte/reference.ml: Angles Array Dispersion Equilibrium Float Scattering Setup Temperature Unix
