lib/bte/film.mli: Angles Dispersion Equilibrium Finch Fvm
