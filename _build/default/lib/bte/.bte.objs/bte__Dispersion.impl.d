lib/bte/dispersion.ml: Array Constants Float Printf
