lib/bte/setup.mli: Angles Dispersion Equilibrium Finch Fvm Temperature
