lib/bte/temperature.ml: Angles Array Dispersion Equilibrium Finch Float Fvm Scattering
