lib/bte/equilibrium.ml: Array Constants Dispersion Float
