lib/bte/setup3d.mli: Angles Dispersion Equilibrium Finch Fvm Temperature
