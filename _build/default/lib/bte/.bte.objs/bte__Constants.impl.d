lib/bte/constants.ml:
