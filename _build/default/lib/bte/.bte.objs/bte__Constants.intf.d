lib/bte/constants.mli:
