lib/bte/angles.ml: Array Float Fvm
