lib/bte/bc.mli: Angles Dispersion Equilibrium Finch
