lib/bte/diag.mli: Angles Dispersion Format Fvm
