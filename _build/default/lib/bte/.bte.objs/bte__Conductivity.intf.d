lib/bte/conductivity.mli: Dispersion
