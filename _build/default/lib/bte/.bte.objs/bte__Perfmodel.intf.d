lib/bte/perfmodel.mli: Gpu_sim Prt Setup
