lib/bte/diag.ml: Angles Array Dispersion Format Fvm List Printf
