lib/bte/dispersion.mli:
