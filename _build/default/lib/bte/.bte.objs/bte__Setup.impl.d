lib/bte/setup.ml: Angles Array Bc Dispersion Equilibrium Finch Float Fvm Printf Scattering Temperature
