lib/bte/conductivity.ml: Constants Dispersion Equilibrium List Scattering
