lib/bte/scattering.mli: Dispersion
