lib/bte/angles.mli:
