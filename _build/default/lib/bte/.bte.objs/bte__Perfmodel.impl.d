lib/bte/perfmodel.ml: Dispersion Float Gpu_sim Prt Setup
