(* Phonon dispersion and spectral-band discretization for silicon.

   The frequency axis [0, omega_max_LA] is split into [n_la] equal bands.
   The LA branch spans all of them; the (doubly degenerate) TA branch only
   exists below its zone-edge frequency, so only the lower bands carry a
   TA variant.  With 40 frequency bands this yields 40 LA + 15 TA = 55
   polarization-resolved bands — exactly the paper's configuration. *)

type branch = LA | TA

let branch_name = function LA -> "LA" | TA -> "TA"

(* degeneracy: one LA branch, two TA branches *)
let degeneracy = function LA -> 1. | TA -> 2.

let vs = function LA -> Constants.vs_la | TA -> Constants.vs_ta
let cq = function LA -> Constants.c_la | TA -> Constants.c_ta

(* omega(k) on a branch *)
let omega_of_k br k =
  let v = vs br and c = cq br in
  (v *. k) +. (c *. k *. k)

(* group velocity at wavevector k *)
let vg_of_k br k = vs br +. (2. *. cq br *. k)

(* zone-edge (maximum) frequency of a branch *)
let omega_max br = omega_of_k br Constants.k_max

(* invert omega = vs k + c k^2 for k in [0, k_max]; c < 0 so the root with
   the minus sign in front of the square root is the physical one *)
let k_of_omega br w =
  let v = vs br and c = cq br in
  if w < 0. || w > omega_max br +. 1e-6 then
    invalid_arg
      (Printf.sprintf "Dispersion.k_of_omega: %g out of range for %s" w
         (branch_name br));
  let disc = (v *. v) +. (4. *. c *. w) in
  let disc = Float.max disc 0. in
  (-.v +. sqrt disc) /. (2. *. c)

let vg_of_omega br w = vg_of_k br (k_of_omega br w)

(* One polarization-resolved spectral band. *)
type band = {
  id : int;            (* 0-based position in the flattened band list *)
  branch : branch;
  w_lo : float;        (* band edges, rad/s *)
  w_hi : float;
  w_center : float;
  vg : float;          (* group velocity at the band centre, m/s *)
}

type t = {
  n_la : int;
  n_ta : int;
  bands : band array;  (* LA bands first (low to high), then TA bands *)
  domega : float;      (* uniform band width *)
}

let nbands d = Array.length d.bands
let band d i = d.bands.(i)

(* Build the discretization with [n_la] frequency bands over the LA range. *)
let make ~n_la =
  if n_la < 1 then invalid_arg "Dispersion.make";
  let wmax_la = omega_max LA in
  let wmax_ta = omega_max TA in
  let dw = wmax_la /. float_of_int n_la in
  (* TA variants exist for bands fully below the TA zone edge *)
  let n_ta =
    let full = int_of_float (Float.round (wmax_ta /. dw -. 0.5)) in
    max 0 (min n_la full)
  in
  let mk id branch i =
    let w_lo = float_of_int i *. dw in
    let w_hi = w_lo +. dw in
    let w_center = (w_lo +. w_hi) /. 2. in
    { id; branch; w_lo; w_hi; w_center; vg = vg_of_omega branch w_center }
  in
  let la = Array.init n_la (fun i -> mk i LA i) in
  let ta = Array.init n_ta (fun i -> mk (n_la + i) TA i) in
  { n_la; n_ta; bands = Array.append la ta; domega = dw }

(* The paper's configuration: 40 frequency bands -> 55 resolved bands. *)
let paper () = make ~n_la:40

let vg_array d = Array.map (fun b -> b.vg) d.bands

(* 3-D isotropic density of states per unit volume and frequency:
   D(omega) = k^2 / (2 pi^2 vg). *)
let dos br w =
  let k = k_of_omega br w in
  let g = vg_of_omega br w in
  if g <= 0. then 0. else k *. k /. (2. *. Float.pi *. Float.pi *. g)
