(** Holland-model relaxation times, combined by Matthiessen's rule.
    Rates depend on frequency, branch and local temperature, which is why
    the solver refreshes per-cell 1/tau values after every temperature
    update. *)

val rate_impurity : float -> float
val rate_la : float -> float -> float
val rate_ta : float -> float -> float

val rate : Dispersion.branch -> float -> float -> float
(** [rate branch omega t] = combined 1/tau, floored away from zero to keep
    the explicit scheme well-behaved at omega -> 0. *)

val tau : Dispersion.branch -> float -> float -> float

val band_rate : Dispersion.band -> float -> float
(** Rate at the band centre. *)

val band_tau : Dispersion.band -> float -> float
