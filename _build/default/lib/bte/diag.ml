(* Diagnostics: temperature-field statistics, profiles and CSV dumps used
   by the examples and by the figure-regeneration benches (Figs. 2 and 10
   report temperature fields; we report their quantitative signature). *)

type field_stats = {
  t_min : float;
  t_max : float;
  t_mean : float;          (* volume-weighted *)
  peak_pos : float array;  (* centroid of the hottest cell *)
  spread_halfwidth : float;
    (* largest distance from the peak at which the excess temperature is
       still at least half the peak excess — the "spread of heat" contour *)
}

let temperature_stats (mesh : Fvm.Mesh.t) (ft : Fvm.Field.t) ~t_ambient =
  let n = mesh.Fvm.Mesh.ncells in
  let t_min = ref infinity and t_max = ref neg_infinity in
  let sum = ref 0. and vol = ref 0. in
  let peak_cell = ref 0 in
  for c = 0 to n - 1 do
    let t = Fvm.Field.get ft c 0 in
    if t < !t_min then t_min := t;
    if t > !t_max then begin
      t_max := t;
      peak_cell := c
    end;
    sum := !sum +. (t *. mesh.Fvm.Mesh.cell_volume.(c));
    vol := !vol +. mesh.Fvm.Mesh.cell_volume.(c)
  done;
  let peak_pos = Fvm.Mesh.cell_centroid mesh !peak_cell in
  let half = t_ambient +. ((!t_max -. t_ambient) /. 2.) in
  let spread = ref 0. in
  for c = 0 to n - 1 do
    let t = Fvm.Field.get ft c 0 in
    if t >= half then begin
      let pos = Fvm.Mesh.cell_centroid mesh c in
      let d = Fvm.Vec.norm (Fvm.Vec.sub pos peak_pos) in
      if d > !spread then spread := d
    end
  done;
  {
    t_min = !t_min;
    t_max = !t_max;
    t_mean = !sum /. !vol;
    peak_pos;
    spread_halfwidth = !spread;
  }

(* temperature along a horizontal line of a structured [nx] x [ny] grid *)
let profile_x (ft : Fvm.Field.t) ~nx ~j =
  Array.init nx (fun i -> Fvm.Field.get ft ((j * nx) + i) 0)

let profile_y (ft : Fvm.Field.t) ~nx ~ny ~i =
  Array.init ny (fun j -> Fvm.Field.get ft ((j * nx) + i) 0)

(* CSV dump: x,y,value per cell *)
let to_csv (mesh : Fvm.Mesh.t) (f : Fvm.Field.t) ~comp path =
  let oc = open_out path in
  output_string oc "x,y,value\n";
  for c = 0 to mesh.Fvm.Mesh.ncells - 1 do
    let pos = Fvm.Mesh.cell_centroid mesh c in
    Printf.fprintf oc "%.9g,%.9g,%.9g\n" pos.(0)
      (if Array.length pos > 1 then pos.(1) else 0.)
      (Fvm.Field.get f c comp)
  done;
  close_out oc

(* Total phonon energy density integrated over the domain:
   E = sum_cells V_c * sum_{d,b} w_d I_{d,b} / vg_b.  Conserved in a closed
   adiabatic domain — the invariant the conservation tests check. *)
let total_energy (mesh : Fvm.Mesh.t) (fi : Fvm.Field.t) (disp : Dispersion.t)
    (angles : Angles.t) =
  let nd = angles.Angles.ndirs in
  let nb = Dispersion.nbands disp in
  let acc = ref 0. in
  for c = 0 to mesh.Fvm.Mesh.ncells - 1 do
    let cell_acc = ref 0. in
    for b = 0 to nb - 1 do
      let vg = (Dispersion.band disp b).Dispersion.vg in
      for d = 0 to nd - 1 do
        cell_acc :=
          !cell_acc
          +. (angles.Angles.weight.(d) *. Fvm.Field.get fi c (d + (b * nd)) /. vg)
      done
    done;
    acc := !acc +. (!cell_acc *. mesh.Fvm.Mesh.cell_volume.(c))
  done;
  !acc

(* Legacy-VTK unstructured-grid writer for cell data (temperature fields,
   intensity moments) — loadable in ParaView for the Fig. 2 / Fig. 10
   style visualizations. *)
let to_vtk (mesh : Fvm.Mesh.t) (fields : (string * Fvm.Field.t * int) list)
    path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "# vtk DataFile Version 3.0\n";
  pr "finch-bte field dump\nASCII\nDATASET UNSTRUCTURED_GRID\n";
  let dim = mesh.Fvm.Mesh.dim in
  pr "POINTS %d double\n" mesh.Fvm.Mesh.nvertices;
  for v = 0 to mesh.Fvm.Mesh.nvertices - 1 do
    let c k = if k < dim then mesh.Fvm.Mesh.coords.((v * dim) + k) else 0. in
    pr "%.9g %.9g %.9g\n" (c 0) (c 1) (c 2)
  done;
  let total_ints =
    Array.fold_left
      (fun acc verts -> acc + 1 + Array.length verts)
      0 mesh.Fvm.Mesh.cell_vertices
  in
  pr "CELLS %d %d\n" mesh.Fvm.Mesh.ncells total_ints;
  Array.iter
    (fun verts ->
      pr "%d" (Array.length verts);
      Array.iter (fun v -> pr " %d" v) verts;
      pr "\n")
    mesh.Fvm.Mesh.cell_vertices;
  pr "CELL_TYPES %d\n" mesh.Fvm.Mesh.ncells;
  Array.iter
    (fun verts ->
      let t =
        match dim, Array.length verts with
        | 1, _ -> 3 (* line *)
        | 2, 3 -> 5 (* triangle *)
        | 2, 4 -> 9 (* quad *)
        | 3, 8 -> 12 (* hexahedron *)
        | _, n -> invalid_arg (Printf.sprintf "Diag.to_vtk: %d-vertex cell" n)
      in
      pr "%d\n" t)
    mesh.Fvm.Mesh.cell_vertices;
  pr "CELL_DATA %d\n" mesh.Fvm.Mesh.ncells;
  List.iter
    (fun (name, f, comp) ->
      pr "SCALARS %s double 1\nLOOKUP_TABLE default\n" name;
      for c = 0 to mesh.Fvm.Mesh.ncells - 1 do
        pr "%.9g\n" (Fvm.Field.get f c comp)
      done)
    fields;
  close_out oc

let pp_stats ppf s =
  Format.fprintf ppf
    "T in [%.2f, %.2f] K, mean %.3f K, peak at (%.1f, %.1f) um, half-excess spread %.1f um"
    s.t_min s.t_max s.t_mean
    (1e6 *. s.peak_pos.(0))
    (1e6 *. s.peak_pos.(1))
    (1e6 *. s.spread_halfwidth)
