(** Physical constants and silicon material parameters: quadratic
    dispersion fits along [100] (Brockhouse data, the parameterization
    used by the phonon-BTE literature the paper builds on) and
    Holland-model relaxation-time coefficients. *)

(** J s *)
val hbar : float

(** J/K *)
val kb : float

(** {2 Silicon dispersion: omega = vs k + c k^2} *)

(** LA sound speed, m/s *)
val vs_la : float

(** LA quadratic coefficient, m^2/s *)
val c_la : float
val vs_ta : float
val c_ta : float

(** zone-edge wavevector along [100], 1/m *)
val k_max : float

(** {2 Holland relaxation-time parameters} *)

(** impurity: 1/tau = a w^4; s^3 *)
val a_impurity : float

(** LA N+U: 1/tau = b_l w^2 T^3; s/K^3 *)
val b_l : float

(** TA normal (w < omega_half): 1/tau = b_tn w T^4 *)
val b_tn : float

(** TA umklapp (w >= omega_half) *)
val b_tu : float

(** TA normal/umklapp crossover frequency *)
val omega_half_ta : float

(** 300 K *)
val t_reference : float