(* Hand-written reference BTE solver.

   Plays the role of the paper's previously-developed Fortran code: a
   direct, single-purpose implementation of exactly the same model
   (structured grid, first-order upwind, forward Euler, Holland scattering,
   per-cell Newton temperature update) against which the DSL-generated
   solver is verified ("our solutions matched theirs") and benchmarked
   (the Fortran code runs about twice as fast sequentially).

   Flat arrays, no DSL machinery, no callbacks — what a domain scientist
   would write by hand for this one problem. *)

type t = {
  sc : Setup.scenario;
  disp : Dispersion.t;
  angles : Angles.t;
  eqtab : Equilibrium.t;
  tmodel : Temperature.model;
  nx : int;
  ny : int;
  nd : int;
  nb : int;
  dx : float;
  dy : float;
  dt : float;
  (* per-(d,b) advection velocities *)
  vx : float array;
  vy : float array;
  refl_x : int array; (* direction reflected about a wall with x-normal *)
  refl_y : int array;
  (* state: i.(cell*ncomp + d + b*nd) *)
  mutable i : float array;
  mutable i_new : float array;
  io : float array;   (* ncells*nb *)
  beta : float array; (* ncells*nb *)
  temp : float array; (* ncells *)
  hot_wall : float -> float; (* top-wall temperature profile of x *)
  mutable time : float;
  mutable steps_done : int;
}

let ncells t = t.nx * t.ny
let ncomp t = t.nd * t.nb

let create (sc : Setup.scenario) =
  let disp = Dispersion.make ~n_la:sc.Setup.n_la_bands in
  let nb = Dispersion.nbands disp in
  let angles = Angles.make_2d ~ndirs:sc.Setup.ndirs in
  let eqtab =
    Equilibrium.make ~omega_total:angles.Angles.total
      ~t_lo:(Float.max 2. (Float.min sc.Setup.t_cold sc.Setup.t_hot /. 2.))
      ~t_hi:(2. *. Float.max sc.Setup.t_cold sc.Setup.t_hot)
      disp
  in
  let tmodel = Temperature.make ~disp ~eqtab ~angles () in
  let nd = sc.Setup.ndirs in
  let nx = sc.Setup.nx and ny = sc.Setup.ny in
  let n = nx * ny in
  let vx = Array.make (nd * nb) 0. and vy = Array.make (nd * nb) 0. in
  for b = 0 to nb - 1 do
    let vg = (Dispersion.band disp b).Dispersion.vg in
    for d = 0 to nd - 1 do
      vx.(d + (b * nd)) <- vg *. angles.Angles.sx.(d);
      vy.(d + (b * nd)) <- vg *. angles.Angles.sy.(d)
    done
  done;
  let refl_x = Array.init nd (fun d -> Angles.reflect angles d [| 1.; 0. |]) in
  let refl_y = Array.init nd (fun d -> Angles.reflect angles d [| 0.; 1. |]) in
  let i0_cold = Array.init nb (fun b -> Equilibrium.i0 eqtab b sc.Setup.t_cold) in
  let i = Array.make (n * nd * nb) 0. in
  for c = 0 to n - 1 do
    for b = 0 to nb - 1 do
      for d = 0 to nd - 1 do
        i.((c * nd * nb) + d + (b * nd)) <- i0_cold.(b)
      done
    done
  done;
  let io = Array.make (n * nb) 0. and beta = Array.make (n * nb) 0. in
  for c = 0 to n - 1 do
    for b = 0 to nb - 1 do
      io.((c * nb) + b) <- i0_cold.(b);
      beta.((c * nb) + b) <-
        Scattering.band_rate (Dispersion.band disp b) sc.Setup.t_cold
    done
  done;
  let hot_wall x =
    let xr = x -. sc.Setup.hot_center in
    sc.Setup.t_cold
    +. ((sc.Setup.t_hot -. sc.Setup.t_cold)
        *. exp (-2. *. xr *. xr /. (sc.Setup.hot_radius *. sc.Setup.hot_radius)))
  in
  let dt = Float.min sc.Setup.dt (Setup.cfl_dt sc disp) in
  {
    sc;
    disp;
    angles;
    eqtab;
    tmodel;
    nx;
    ny;
    nd;
    nb;
    dx = sc.Setup.lx /. float_of_int nx;
    dy = sc.Setup.ly /. float_of_int ny;
    dt;
    vx;
    vy;
    refl_x;
    refl_y;
    i;
    i_new = Array.make (n * nd * nb) 0.;
    io;
    beta;
    temp = Array.make n sc.Setup.t_cold;
    hot_wall;
    time = 0.;
    steps_done = 0;
  }

(* one forward-Euler intensity sweep *)
let sweep t =
  let nx = t.nx and ny = t.ny and nd = t.nd and nb = t.nb in
  let nc = nd * nb in
  let i = t.i and i_new = t.i_new in
  let inv_dx = 1. /. t.dx and inv_dy = 1. /. t.dy in
  for cy = 0 to ny - 1 do
    for cx = 0 to nx - 1 do
      let c = (cy * nx) + cx in
      let base = c * nc in
      let x_cell = (float_of_int cx +. 0.5) *. t.dx in
      let t_top = t.hot_wall x_cell in
      for b = 0 to nb - 1 do
        let io_b = t.io.((c * nb) + b) in
        let beta_b = t.beta.((c * nb) + b) in
        for d = 0 to nd - 1 do
          let k = d + (b * nd) in
          let u = i.(base + k) in
          let vx = t.vx.(k) and vy = t.vy.(k) in
          (* ghost/neighbour values *)
          let u_w =
            if cx > 0 then i.(base - nc + k)
            else i.(base + t.refl_x.(d) + (b * nd)) (* left symmetry *)
          in
          let u_e =
            if cx < nx - 1 then i.(base + nc + k)
            else i.(base + t.refl_x.(d) + (b * nd)) (* right symmetry *)
          in
          let u_s =
            if cy > 0 then i.(base - (nx * nc) + k)
            else Equilibrium.i0 t.eqtab b t.sc.Setup.t_cold (* cold wall *)
          in
          let u_n =
            if cy < ny - 1 then i.(base + (nx * nc) + k)
            else Equilibrium.i0 t.eqtab b t_top (* hot-spot wall *)
          in
          let f_e = if vx > 0. then vx *. u else vx *. u_e in
          let f_w = if vx > 0. then vx *. u_w else vx *. u in
          let f_n = if vy > 0. then vy *. u else vy *. u_n in
          let f_s = if vy > 0. then vy *. u_s else vy *. u in
          let adv = ((f_e -. f_w) *. inv_dx) +. ((f_n -. f_s) *. inv_dy) in
          i_new.(base + k) <- u +. (t.dt *. (((io_b -. u) *. beta_b) -. adv))
        done
      done
    done
  done

(* temperature update: per-cell Newton on the absorbed power with current
   rates (the same scalar-energy formulation as the DSL solver's default),
   then refresh Io and beta *)
let temperature_update t =
  let n = ncells t in
  let nd = t.nd and nb = t.nb in
  let nc = nd * nb in
  for c = 0 to n - 1 do
    let base = c * nc in
    let g = ref 0. in
    for b = 0 to nb - 1 do
      let vg = (Dispersion.band t.disp b).Dispersion.vg in
      let w = t.beta.((c * nb) + b) /. vg in
      for d = 0 to nd - 1 do
        g :=
          !g
          +. (t.angles.Angles.weight.(d) *. t.i.(base + d + (b * nd)) *. w)
      done
    done;
    let tc = Temperature.newton_scalar t.tmodel ~g:!g ~guess:t.temp.(c) in
    t.temp.(c) <- tc;
    for b = 0 to nb - 1 do
      t.io.((c * nb) + b) <- Equilibrium.i0 t.eqtab b tc;
      t.beta.((c * nb) + b) <-
        Scattering.band_rate (Dispersion.band t.disp b) tc
    done
  done

let step t =
  sweep t;
  (* swap buffers *)
  let tmp = t.i in
  t.i <- t.i_new;
  t.i_new <- tmp;
  temperature_update t;
  t.time <- t.time +. t.dt;
  t.steps_done <- t.steps_done + 1

let run t ~nsteps =
  for _ = 1 to nsteps do
    step t
  done

(* intensity value accessor matching the DSL field layout (comp = d + b*nd) *)
let intensity t ~cell ~comp = t.i.((cell * ncomp t) + comp)
let temperature t ~cell = t.temp.(cell)

(* measured DOF-update throughput (DOF-updates per second) of the sweep,
   used to calibrate the performance model against this machine *)
let measure_sweep_rate t ~repeats =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to repeats do
    sweep t
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  float_of_int (repeats * ncells t * ncomp t) /. elapsed
