(** Phonon dispersion and spectral-band discretization for silicon.

    The frequency axis [0, omega_max(LA)] splits into [n_la] equal bands;
    the doubly-degenerate TA branch exists only below its zone edge, so
    only the lower bands carry a TA variant. With 40 frequency bands this
    gives 40 LA + 15 TA = 55 polarization-resolved bands — the paper's
    configuration. *)

type branch = LA | TA

val branch_name : branch -> string

(** 1 for LA, 2 for TA *)
val degeneracy : branch -> float
val vs : branch -> float
val cq : branch -> float

val omega_of_k : branch -> float -> float
val vg_of_k : branch -> float -> float
val omega_max : branch -> float

val k_of_omega : branch -> float -> float

(** Inverse of {!omega_of_k} on [0, k_max]; raises [Invalid_argument] out
    of range. *)

val vg_of_omega : branch -> float -> float

type band = {
  id : int;          (** position in the flattened band list *)
  branch : branch;
  w_lo : float;
  w_hi : float;
  w_center : float;
  vg : float;        (** group velocity at the band centre, m/s *)
}

type t = {
  n_la : int;
  n_ta : int;
  bands : band array; (** LA bands first (low to high), then TA bands *)
  domega : float;
}

val nbands : t -> int
val band : t -> int -> band

val make : n_la:int -> t

(** 40 frequency bands -> 55 resolved bands *)
val paper : unit -> t
val vg_array : t -> float array

val dos : branch -> float -> float

(** 3-D isotropic density of states per unit volume and frequency,
    k^2 / (2 pi^2 vg). *)
