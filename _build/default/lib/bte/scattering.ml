(* Holland-model relaxation times, combined by Matthiessen's rule.

   Rates depend on frequency, branch and local temperature; the solver
   refreshes per-cell 1/tau values in the temperature-update step because
   of this T dependence. *)

let rate_impurity w = Constants.a_impurity *. (w ** 4.)

let rate_la w t = Constants.b_l *. w *. w *. (t ** 3.)

let rate_ta w t =
  if w < Constants.omega_half_ta then Constants.b_tn *. w *. (t ** 4.)
  else begin
    let x = Constants.hbar *. w /. (Constants.kb *. t) in
    Constants.b_tu *. w *. w /. sinh x
  end

(* combined scattering rate 1/tau for a branch at (omega, T) *)
let rate branch w t =
  let r =
    rate_impurity w
    +.
    match branch with
    | Dispersion.LA -> rate_la w t
    | Dispersion.TA -> rate_ta w t
  in
  (* guard against pathological tiny rates at omega -> 0: they would make
     the explicit scheme's relaxation term stiff-free but the intensity
     unbounded in time; floor at a conservative value *)
  Float.max r 1e4

let tau branch w t = 1. /. rate branch w t

(* per-band rate at the band centre *)
let band_rate (b : Dispersion.band) t = rate b.Dispersion.branch b.Dispersion.w_center t
let band_tau b t = 1. /. band_rate b t
