(** Scenario construction: encodes the phonon BTE in the DSL exactly as
    the paper's input script (Sec. III-B / appendix listing) and wires the
    physics callbacks.

    Scenarios: [hotspot] — the main demonstration (cold isothermal bottom
    wall, isothermal top wall with a centred Gaussian hot spot, symmetric
    sides, initial equilibrium at the cold temperature); [corner] — the
    Fig. 10 variant with the source against a corner of an elongated
    domain at 100 K. *)

type scenario = {
  sname : string;
  lx : float;
  ly : float;
  nx : int;
  ny : int;
  ndirs : int;
  n_la_bands : int;   (** frequency bands; resolved count is larger *)
  t_cold : float;
  t_hot : float;
  hot_radius : float; (** 1/e^2 radius of the Gaussian, m *)
  hot_center : float; (** x position of the peak, m *)
  dt : float;
  nsteps : int;
}

val paper_hotspot : scenario
(** 525 um square, 120x120 cells, 20 directions, 40 frequency bands (55
    resolved), dt = 1e-12 s (the appendix's stable value). *)

val small_hotspot : scenario
(** A sub-micron reduced configuration (Knudsen number near one) that runs
    in seconds. *)

val paper_corner : scenario
val small_corner : scenario

type built = {
  problem : Finch.Problem.t;
  scenario : scenario; (** with dt clamped to the stability bound *)
  disp : Dispersion.t;
  angles : Angles.t;
  eqtab : Equilibrium.t;
  temp_model : Temperature.model;
  mesh : Fvm.Mesh.t;
}

val cfl_dt : scenario -> Dispersion.t -> float
(** Stability bound: advective CFL AND the relaxation-rate bound
    dt * max(1/tau) < 1 (high-frequency bands have tau of a few ps). *)

val post_io : Finch.Dataflow.callback_io
(** Data-movement declaration of the temperature update: reads "I",
    writes "Io"/"beta"/"T". *)

val build :
  ?enforce_cfl:bool -> ?stepper:Finch.Config.time_stepper -> scenario -> built
(** With the point-implicit stepper only the advective CFL bound applies
    to dt (the relaxation-rate bound disappears). *)

val build_corner :
  ?enforce_cfl:bool -> ?stepper:Finch.Config.time_stepper -> scenario -> built
