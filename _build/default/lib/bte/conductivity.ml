(* Bulk thermal conductivity from kinetic theory:

     k(T) = (1/3) sum_branches deg_p *
            integral of C(w) vg(w)^2 tau(w, T) dw,
     C(w) = hbar w D(w) df_BE/dT   (spectral heat capacity)

   This is the standard closure of the BTE in the diffusive limit and the
   quantity the paper's companion work (FDTR extraction, ref [15]) targets.
   It validates the dispersion + Holland-scattering parameterization
   end-to-end: with the constants in [Constants], silicon at 300 K should
   come out near the measured 148 W/(m K) — the test suite asserts the
   right decade and the correct decreasing trend above ~100 K. *)

let quad_points = 512

(* spectral heat capacity of one branch at (w, T), per unit volume and
   frequency *)
let spectral_heat_capacity branch w t =
  Constants.hbar *. w *. Dispersion.dos branch w *. Equilibrium.df_bose w t

(* contribution of one branch *)
let branch_conductivity branch t =
  let wmax = Dispersion.omega_max branch in
  let dw = wmax /. float_of_int quad_points in
  let acc = ref 0. in
  for i = 0 to quad_points - 1 do
    let w = (float_of_int i +. 0.5) *. dw in
    let vg = Dispersion.vg_of_omega branch w in
    let tau = Scattering.tau branch w t in
    acc := !acc +. (spectral_heat_capacity branch w t *. vg *. vg *. tau)
  done;
  Dispersion.degeneracy branch *. !acc *. dw /. 3.

let bulk t =
  branch_conductivity Dispersion.LA t +. branch_conductivity Dispersion.TA t

(* volumetric heat capacity, for completeness (J / m^3 K) *)
let heat_capacity t =
  let one branch =
    let wmax = Dispersion.omega_max branch in
    let dw = wmax /. float_of_int quad_points in
    let acc = ref 0. in
    for i = 0 to quad_points - 1 do
      let w = (float_of_int i +. 0.5) *. dw in
      acc := !acc +. spectral_heat_capacity branch w t
    done;
    Dispersion.degeneracy branch *. !acc *. dw
  in
  one Dispersion.LA +. one Dispersion.TA

(* gray-medium mean free path: Lambda = 3 k / (C v_avg), the number the
   paper's introduction quotes as ~300 nm for silicon at room temperature *)
let mean_free_path t =
  let k = bulk t in
  let c = heat_capacity t in
  (* capacity-weighted average group velocity *)
  let v_avg =
    let num = ref 0. and den = ref 0. in
    List.iter
      (fun branch ->
        let wmax = Dispersion.omega_max branch in
        let dw = wmax /. float_of_int quad_points in
        for i = 0 to quad_points - 1 do
          let w = (float_of_int i +. 0.5) *. dw in
          let cw =
            Dispersion.degeneracy branch *. spectral_heat_capacity branch w t
          in
          num := !num +. (cw *. Dispersion.vg_of_omega branch w *. dw);
          den := !den +. (cw *. dw)
        done)
      [ Dispersion.LA; Dispersion.TA ];
    !num /. !den
  in
  3. *. k /. (c *. v_avg)
