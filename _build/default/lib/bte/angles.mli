(** Angular discretization of the direction space.

    2-D: [n] uniformly spaced unit vectors on the circle, equal weights
    summing to 2 pi, placed at half-step offsets with an even count so
    axis-aligned specular reflections map the set onto itself exactly.
    3-D: a product azimuthal x polar rule on the sphere, weights summing
    to 4 pi. *)

type t = {
  dim : int;
  ndirs : int;
  sx : float array;
  sy : float array;
  sz : float array;      (** zeros in 2-D *)
  weight : float array;  (** quadrature weights; sum = total measure *)
  total : float;         (** 2 pi in 2-D, 4 pi in 3-D *)
}

val make_2d : ndirs:int -> t
(** Requires an even [ndirs] >= 2. *)

val make_3d : n_azimuthal:int -> n_polar:int -> t

val dir : t -> int -> float array
val closest : t -> float array -> int

val reflect : t -> int -> float array -> int
(** Index of the direction obtained by specular reflection about a plane
    with the given unit normal; exact for axis-aligned normals with the
    layouts above, nearest-direction otherwise. *)

val reflection_is_involution : t -> float array -> bool
