(** Bulk thermal conductivity and related material properties from kinetic
    theory — the diffusive-limit closure of the BTE and the quantity the
    paper's companion FDTR work (its ref [15]) extracts.

    Validates the dispersion + Holland-scattering parameterization: at
    300 K the acoustic-branch k comes out in silicon's measured decade
    (~90 vs 148 W/(m K); optical branches, absent from the model, carry
    heat capacity but almost no heat), decreasing as ~T^-1.3 above the
    Umklapp peak. *)

val quad_points : int

val spectral_heat_capacity : Dispersion.branch -> float -> float -> float
(** hbar w D(w) df_BE/dT at (w, T), per unit volume and frequency. *)

val branch_conductivity : Dispersion.branch -> float -> float

val bulk : float -> float
(** k(T) = (1/3) sum_p deg_p integral C(w) vg^2 tau dw, W/(m K). *)

val heat_capacity : float -> float
(** Volumetric heat capacity of the acoustic branches, J/(m^3 K). *)

val mean_free_path : float -> float
(** Gray-medium mean free path 3k/(C v_avg) in metres — order 100 nm at
    room temperature, the scale the paper's introduction quotes to justify
    the BTE over Fourier at sub-micron sizes. *)
