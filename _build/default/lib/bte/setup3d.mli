(** Coarse 3-D BTE scenario (paper Sec. III-A: "very coarse-grained
    3-dimensional runs were also performed successfully"): a box with a
    cold isothermal floor, an isothermal ceiling carrying a Gaussian hot
    spot, and specular symmetry on the four side walls, using the sphere
    quadrature of {!Angles.make_3d}. *)

type scenario3d = {
  sname : string;
  lx : float;
  ly : float;
  lz : float;
  nx : int;
  ny : int;
  nz : int;
  n_azimuthal : int;
  n_polar : int;
  n_la_bands : int;
  t_cold : float;
  t_hot : float;
  hot_radius : float;
  dt : float;
  nsteps : int;
}

val coarse : scenario3d

type built3d = {
  problem : Finch.Problem.t;
  scenario : scenario3d;
  disp : Dispersion.t;
  angles : Angles.t;
  eqtab : Equilibrium.t;
  temp_model : Temperature.model;
  mesh : Fvm.Mesh.t;
}

val cfl_dt : scenario3d -> Dispersion.t -> float
val build : scenario3d -> built3d
