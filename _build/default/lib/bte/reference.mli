(** Hand-written reference BTE solver — the stand-in for the paper's
    previously-developed Fortran code: a direct, single-purpose
    implementation of exactly the same discretization (structured grid,
    first-order upwind, forward Euler, Holland scattering, per-cell Newton
    temperature update with the scalar-energy reduction), used as the
    correctness oracle ("our solutions matched theirs") and as the
    measured-throughput comparator. *)

type t = {
  sc : Setup.scenario;
  disp : Dispersion.t;
  angles : Angles.t;
  eqtab : Equilibrium.t;
  tmodel : Temperature.model;
  nx : int;
  ny : int;
  nd : int;
  nb : int;
  dx : float;
  dy : float;
  dt : float;
  vx : float array;
  vy : float array;
  refl_x : int array;
  refl_y : int array;
  mutable i : float array;
  mutable i_new : float array;
  io : float array;
  beta : float array;
  temp : float array;
  hot_wall : float -> float;
  mutable time : float;
  mutable steps_done : int;
}

val ncells : t -> int
val ncomp : t -> int

val create : Setup.scenario -> t
(** Initial thermal equilibrium at the cold temperature; dt clamped to the
    stability bound. *)

val sweep : t -> unit
val temperature_update : t -> unit
val step : t -> unit
val run : t -> nsteps:int -> unit

val intensity : t -> cell:int -> comp:int -> float
(** Matches the DSL field layout (comp = d + b*nd). *)

val temperature : t -> cell:int -> float

val measure_sweep_rate : t -> repeats:int -> float
(** Measured DOF-updates per second of the sweep on this machine. *)
