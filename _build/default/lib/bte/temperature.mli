(** The nonlinear temperature update — the paper's post-step user code.

    Per cell, the lattice temperature solves the scattering operator's
    energy balance (energy density per (d,b) is w I / vg, hence the 1/vg
    weights):

      sum_b (rate_b(T) / vg_b) (Omega I0_b(T) - J_b) = 0,
      J_b = sum_d w_d I_(d,b).

    Newton iteration with the tabulated dI0/dT as Jacobian and a bisection
    fallback (the residual is increasing in T). *)

(** Distributed-reduction flavour for the cross-band coupling:
    [Scalar_energy] reduces one absorbed-power value per cell (the
    paper's "reduction of intensity across bands" — cheapest payload,
    rates frozen at their pre-update values); [Per_band] reduces the
    per-band angular integrals so the balance is evaluated with updated
    rates — exactly energy-conserving for the next sweep. *)
type reduction = Scalar_energy | Per_band

type model = {
  disp : Dispersion.t;
  eqtab : Equilibrium.t;
  angles : Angles.t;
  max_newton : int;
  tol : float;
  reduction : reduction;
}

val make :
  ?max_newton:int -> ?tol:float -> ?reduction:reduction ->
  disp:Dispersion.t -> eqtab:Equilibrium.t -> angles:Angles.t -> unit -> model

val nbands : model -> int

val residual_per_band : model -> (int -> float) -> float -> float * float
val residual_scalar : model -> float -> float -> float * float
val emission_scale : model -> float -> float

exception No_convergence of float

val newton_residual : model -> (float -> float * float) -> guess:float -> float
val newton : model -> jb:(int -> float) -> guess:float -> float
val newton_scalar : model -> g:float -> guess:float -> float

val post_step : model -> Finch.Problem.step_ctx -> unit
(** The callback wired into the DSL problem; expects fields "I" (over
    [d; b]), "Io" and "beta" (over [b]) and "T". Performs the configured
    cross-rank reduction through [st_allreduce] when bands are
    partitioned, then refreshes T, Io and beta. *)
