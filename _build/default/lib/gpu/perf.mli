(** nvprof-style profiling report: the three metrics the paper's Section
    III-D table gives for the BTE intensity kernel on one A6000 (SM
    utilization, memory throughput fraction, FLOP fraction of DP peak). *)

type report = {
  device : string;
  kernel_time : float;
  transfer_time : float;
  kernel_launches : int;
  sm_utilization : float;      (** 0..1 *)
  mem_throughput_frac : float; (** achieved DRAM rate over peak *)
  flop_frac_of_peak : float;   (** achieved FLOP rate over fp64 peak *)
  bytes_h2d : int;
  bytes_d2h : int;
}

val report : Memory.device -> avg_threads:int -> report
(** [avg_threads] is the typical grid size of the profiled launches; it
    determines the occupancy term of SM utilization. *)

val pp : Format.formatter -> report -> unit
val to_string : report -> string
