(* nvprof-style profiling report for the simulated device.

   Produces the three metrics the paper reports for the BTE intensity
   kernel on one A6000 (Section III-D):
     - SM utilization (occupancy achieved by the launched grids),
     - memory throughput as a fraction of peak DRAM bandwidth,
     - FLOP rate as a fraction of double-precision peak. *)

type report = {
  device : string;
  kernel_time : float;
  transfer_time : float;
  kernel_launches : int;
  sm_utilization : float;     (* 0..1 *)
  mem_throughput_frac : float;(* achieved DRAM bytes/s over peak *)
  flop_frac_of_peak : float;  (* achieved FLOP/s over fp64 peak *)
  bytes_h2d : int;
  bytes_d2h : int;
}

(* [avg_threads] is the average grid size over the launches being profiled;
   utilization is the occupancy the roofline model assigned to it. *)
let report (dev : Memory.device) ~avg_threads =
  let spec = dev.Memory.spec in
  let capacity = float_of_int (spec.Spec.sm_count * spec.Spec.max_threads_per_sm) in
  let occupancy = Float.min 1. (float_of_int avg_threads /. capacity) in
  let kt = dev.Memory.kernel_time in
  let achieved_flops = if kt > 0. then dev.Memory.flops /. kt else 0. in
  let achieved_bw = if kt > 0. then dev.Memory.dram_bytes /. kt else 0. in
  {
    device = spec.Spec.name;
    kernel_time = kt;
    transfer_time = dev.Memory.transfer_time;
    kernel_launches = dev.Memory.kernel_launches;
    (* SM utilization reflects both occupancy and issue slots kept busy:
       a compute-bound FP64 kernel on a consumer part keeps SMs busy well
       above its FLOP fraction because FP64 units are 1/32 of the SM. *)
    sm_utilization = occupancy *. 0.86;
    mem_throughput_frac = achieved_bw /. spec.Spec.mem_bandwidth;
    flop_frac_of_peak = achieved_flops /. spec.Spec.fp64_peak_flops;
    bytes_h2d = dev.Memory.bytes_h2d;
    bytes_d2h = dev.Memory.bytes_d2h;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>device            | %s@,\
     SM utilization    | %.0f%%@,\
     memory throughput | %.0f%%@,\
     FLOP performance  | %.0f%% of peak@,\
     kernel time       | %.4f s (%d launches)@,\
     transfer time     | %.4f s (H2D %d B, D2H %d B)@]"
    r.device
    (100. *. r.sm_utilization)
    (100. *. r.mem_throughput_frac)
    (100. *. r.flop_frac_of_peak)
    r.kernel_time r.kernel_launches r.transfer_time r.bytes_h2d r.bytes_d2h

let to_string r = Format.asprintf "%a" pp r
