(** SPMD kernel execution on the simulated device.

    A kernel body receives a global thread index and runs real code
    against device buffers; launches mirror CUDA's flat 1-D grid with the
    excess threads of the last block guarded out. Execution is sequential
    over threads (deterministic, bit-reproducible); timing comes from the
    roofline model via the per-thread cost annotation. *)

type cost = {
  flops_per_thread : float;
  dram_bytes_per_thread : float;
}

type t = {
  name : string;
  cost : cost;
  body : int -> unit;
}

val make : name:string -> cost:cost -> (int -> unit) -> t

val launch : Memory.device -> t -> nthreads:int -> ?block:int -> unit -> float
(** Execute over [nthreads] logical threads (blocks of [block], default
    256); returns the modelled kernel duration and updates the device's
    counters. *)
