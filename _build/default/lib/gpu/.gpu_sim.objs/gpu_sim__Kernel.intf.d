lib/gpu/kernel.mli: Memory
