lib/gpu/perf.ml: Float Format Memory Spec
