lib/gpu/stream.mli: Bigarray Kernel Memory
