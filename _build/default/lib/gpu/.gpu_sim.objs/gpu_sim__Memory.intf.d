lib/gpu/memory.mli: Bigarray Spec
