lib/gpu/perf.mli: Format Memory
