lib/gpu/spec.mli:
