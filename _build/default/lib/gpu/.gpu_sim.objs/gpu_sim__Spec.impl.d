lib/gpu/spec.ml: Float
