lib/gpu/stream.ml: Float Kernel Memory
