lib/gpu/memory.ml: Bigarray Spec
