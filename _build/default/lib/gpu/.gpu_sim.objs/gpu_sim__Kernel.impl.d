lib/gpu/kernel.ml: Memory Spec
