(** Simulated device memory.

    Buffers own genuinely separate storage standing for device global
    memory: host <-> device transfers really copy, so generated code that
    forgets a transfer computes wrong numbers — the simulator preserves the
    programming model's failure modes, not just its timings. Transfer and
    kernel activity is accounted on the owning device. *)

type buffer = {
  label : string;
  device_data :
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable h2d_count : int;
  mutable d2h_count : int;
}

type device = {
  spec : Spec.t;
  id : int;
  mutable buffers : buffer list;
  mutable bytes_h2d : int;
  mutable bytes_d2h : int;
  mutable transfer_time : float;   (** modelled PCIe seconds *)
  mutable kernel_time : float;     (** modelled kernel seconds *)
  mutable kernel_launches : int;
  mutable flops : float;
  mutable dram_bytes : float;
  mutable busy_until : float;
}

val create_device : ?id:int -> Spec.t -> device
val alloc : device -> label:string -> size:int -> buffer
val size : buffer -> int
val bytes : buffer -> int

val h2d :
  device -> buffer ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> float
(** Copy host data to the device; returns the modelled transfer seconds.
    Raises [Invalid_argument] on size mismatch. *)

val d2h :
  device -> buffer ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> float

val reset_counters : device -> unit
