(** Asynchronous streams over the simulated device.

    Data effects happen immediately; modelled durations accumulate on the
    stream's timeline. [synchronize] advances the host clock to the stream
    tail, so a driver can overlap modelled CPU work with modelled GPU work
    exactly as the paper's generated code overlaps the boundary callback
    with the interior kernel (Fig. 6). *)

type t = { device : Memory.device; mutable tail : float }
type host_clock = { mutable now : float }

val create_clock : unit -> host_clock
val create : Memory.device -> t

val enqueue_overhead : float
(** Host-side cost of issuing one operation. *)

val enqueue : t -> host_clock -> dur:float -> (unit -> 'a) -> 'a

val kernel : t -> host_clock -> Kernel.t -> nthreads:int -> ?block:int -> unit -> unit
val h2d :
  t -> host_clock -> Memory.buffer ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> unit
val d2h :
  t -> host_clock -> Memory.buffer ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> unit

val host_work : host_clock -> dur:float -> (unit -> 'a) -> 'a
(** CPU work of modelled duration [dur] overlapping the stream. *)

val synchronize : t -> host_clock -> unit
val pending : t -> host_clock -> bool
