(** Cluster node description and alpha-beta network cost models used by
    the strong-scaling studies (the paper's evaluation platform is
    modelled, not available; see DESIGN.md). *)

type node = {
  name : string;
  cores_per_node : int;
  cpu_dof_update_time : float;       (** s per intensity DOF update, 1 core *)
  fortran_dof_update_time : float;
  temp_update_time_per_cell : float;
  boundary_time_per_face_dof : float;
}

val cascade_lake : node
(** The paper's two-socket 40-core Cascade Lake node, with unit costs
    anchored to its sequential measurements. *)

type network = {
  alpha : float; (** per-message latency, s *)
  beta : float;  (** per-byte time, s *)
}

val default_network : network

val p2p : network -> bytes:int -> float
val allreduce : network -> p:int -> bytes:int -> float
(** Tree allreduce: ~ 2 ceil(log2 p) (alpha + bytes*beta); 0 for p <= 1. *)

val allgather : network -> p:int -> bytes_per_rank:int -> float
(** Ring allgather: (p-1) rounds of one chunk. *)

val halo_exchange : network -> neighbour_bytes:int list -> float
(** Sum of point-to-point costs over a rank's neighbours. *)

val broadcast : network -> p:int -> bytes:int -> float
