(** Virtual-rank BSP executor: explicit supersteps over per-rank states.

    A simpler alternative to {!Spmd} when the program structure is already
    bulk-synchronous: run every rank's local computation, then exchange
    through a function that sees all states. *)

type 'state t

val create : nranks:int -> init:(int -> 'state) -> 'state t
val nranks : 'state t -> int
val state : 'state t -> int -> 'state

val superstep :
  'state t ->
  compute:(int -> 'state -> unit) ->
  exchange:('state array -> unit) ->
  unit

val allreduce_sum :
  'state t ->
  get:('state -> float array) ->
  set:('state -> float array -> unit) ->
  len:int -> unit

val iter_ranks : 'state t -> (int -> 'state -> unit) -> unit
