lib/prt/spmd.ml: Array Effect List Printf
