lib/prt/cluster.mli:
