lib/prt/spmd.mli:
