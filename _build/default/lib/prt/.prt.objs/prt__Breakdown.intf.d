lib/prt/breakdown.mli: Format
