lib/prt/vranks.ml: Array
