lib/prt/vranks.mli:
