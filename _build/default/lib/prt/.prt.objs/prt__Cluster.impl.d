lib/prt/cluster.ml: List
