lib/prt/breakdown.ml: Format Printf Unix
