(* Phase-time accounting: the paper's execution-time breakdowns (Figs. 5
   and 8) split wall time into "solve for intensity", "temperature update"
   and "communication".  This module is the common currency for both the
   analytic performance model and the instrumented real runs. *)

type t = {
  mutable intensity : float;     (* s spent updating I *)
  mutable temperature : float;   (* s spent in the temperature update *)
  mutable communication : float; (* s in MPI-like or host<->device traffic *)
  mutable boundary : float;      (* s in boundary callbacks *)
  mutable other : float;
}

let zero () =
  { intensity = 0.; temperature = 0.; communication = 0.; boundary = 0.; other = 0. }

let make ~intensity ~temperature ~communication ?(boundary = 0.) ?(other = 0.) () =
  { intensity; temperature; communication; boundary; other }

let total b = b.intensity +. b.temperature +. b.communication +. b.boundary +. b.other

let add a b =
  {
    intensity = a.intensity +. b.intensity;
    temperature = a.temperature +. b.temperature;
    communication = a.communication +. b.communication;
    boundary = a.boundary +. b.boundary;
    other = a.other +. b.other;
  }

let scale c b =
  {
    intensity = c *. b.intensity;
    temperature = c *. b.temperature;
    communication = c *. b.communication;
    boundary = c *. b.boundary;
    other = c *. b.other;
  }

type percentages = {
  pct_intensity : float;
  pct_temperature : float;
  pct_communication : float;
  pct_boundary : float;
  pct_other : float;
}

let percentages b =
  let t = total b in
  if t <= 0. then
    { pct_intensity = 0.; pct_temperature = 0.; pct_communication = 0.;
      pct_boundary = 0.; pct_other = 0. }
  else
    {
      pct_intensity = 100. *. b.intensity /. t;
      pct_temperature = 100. *. b.temperature /. t;
      pct_communication = 100. *. b.communication /. t;
      pct_boundary = 100. *. b.boundary /. t;
      pct_other = 100. *. b.other /. t;
    }

let pp ppf b =
  let p = percentages b in
  Format.fprintf ppf
    "intensity %.1f%% | temperature %.1f%% | communication %.1f%%%s (total %.3g s)"
    p.pct_intensity p.pct_temperature p.pct_communication
    (if b.boundary > 0. then Printf.sprintf " | boundary %.1f%%" p.pct_boundary
     else "")
    (total b)

(* Wall-clock phase timer for instrumented real runs. *)
type phase = Intensity | Temperature | Communication | Boundary | Other

let record b phase dt =
  match phase with
  | Intensity -> b.intensity <- b.intensity +. dt
  | Temperature -> b.temperature <- b.temperature +. dt
  | Communication -> b.communication <- b.communication +. dt
  | Boundary -> b.boundary <- b.boundary +. dt
  | Other -> b.other <- b.other +. dt

let timed b phase f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  record b phase (Unix.gettimeofday () -. t0);
  r
