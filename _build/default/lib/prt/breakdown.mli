(** Phase-time accounting — the currency of the paper's execution-time
    breakdowns (Figs. 5 and 8): intensity solve / temperature update /
    communication (plus boundary and other). *)

type t = {
  mutable intensity : float;
  mutable temperature : float;
  mutable communication : float;
  mutable boundary : float;
  mutable other : float;
}

val zero : unit -> t

val make :
  intensity:float -> temperature:float -> communication:float ->
  ?boundary:float -> ?other:float -> unit -> t

val total : t -> float
val add : t -> t -> t
val scale : float -> t -> t

type percentages = {
  pct_intensity : float;
  pct_temperature : float;
  pct_communication : float;
  pct_boundary : float;
  pct_other : float;
}

val percentages : t -> percentages
val pp : Format.formatter -> t -> unit

type phase = Intensity | Temperature | Communication | Boundary | Other

val record : t -> phase -> float -> unit
(** Add [dt] seconds to a phase. *)

val timed : t -> phase -> (unit -> 'a) -> 'a
(** Run a thunk, recording its wall-clock duration against a phase. *)
