(* Virtual-rank BSP executor.

   Correctness tests of the distributed strategies run all ranks inside one
   process: a program is a sequence of supersteps; within a superstep every
   rank's local work runs (sequentially, in rank order), then the exchange
   function moves data between rank-local states.  This gives exactly the
   semantics of a bulk-synchronous MPI program without needing real
   processes, so decomposed solvers can be checked bit-for-bit against the
   sequential solver. *)

type 'state t = {
  nranks : int;
  states : 'state array;
}

let create ~nranks ~init =
  if nranks < 1 then invalid_arg "Vranks.create";
  { nranks; states = Array.init nranks init }

let nranks t = t.nranks
let state t r = t.states.(r)

(* One superstep: local computation on every rank, then a global exchange
   with access to all states (standing in for the network). *)
let superstep t ~compute ~exchange =
  for r = 0 to t.nranks - 1 do
    compute r t.states.(r)
  done;
  exchange t.states

(* Allreduce helper over float arrays held by an accessor. *)
let allreduce_sum t ~get ~set ~len =
  let acc = Array.make len 0. in
  for r = 0 to t.nranks - 1 do
    let a = get t.states.(r) in
    for i = 0 to len - 1 do
      acc.(i) <- acc.(i) +. a.(i)
    done
  done;
  for r = 0 to t.nranks - 1 do
    set t.states.(r) acc
  done

let iter_ranks t f = Array.iteri f t.states
