(* Expression printers.

   [to_string] produces ordinary infix notation for humans and tests.
   [to_finch_string] mimics the expanded symbolic form printed in the paper
   (Section II): entity references become underscore-decorated names such as
   [_u_1], face sides appear as CELL1_/CELL2_ prefixes, and conditionals
   print as [conditional(test, a, b)]. *)

open Expr

let prec = function
  | Num x when x < 0. -> 1
  | Add _ -> 1
  | Mul _ -> 2
  | Pow _ -> 3
  | Num _ | Sym _ | Ref _ | Call _ | Cond _ -> 4
  | Cmp _ -> 0

let fmt_num x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%g" x

let rec go ~finch parent e =
  let p = prec e in
  let s =
    match e with
    | Num x -> fmt_num x
    | Sym s -> s
    | Ref (name, indices, side) ->
      let idx =
        match indices with
        | [] -> ""
        | l -> "[" ^ String.concat "," (List.map index_ref_string l) ^ "]"
      in
      if finch then side_string side ^ "_" ^ name ^ "_1" ^ idx
      else side_string side ^ name ^ idx
    | Add es ->
      let rec render = function
        | [] -> ""
        | t :: rest ->
          let c, _ = Simplify.split_coeff t in
          let piece =
            if c < 0. then
              " - " ^ go ~finch 2 (Simplify.simplify (Mul [ Num (-1.); t ]))
            else " + " ^ go ~finch 1 t
          in
          piece ^ render rest
      in
      (match es with
       | [] -> "0"
       | first :: rest ->
         let head =
           let c, _ = Simplify.split_coeff first in
           if c < 0. then
             "-" ^ go ~finch 2 (Simplify.simplify (Mul [ Num (-1.); first ]))
           else go ~finch 1 first
         in
         head ^ render rest)
    | Mul es ->
      (* render negative powers as division *)
      let num_factors, den_factors =
        List.partition
          (function Pow (_, Num e) when e < 0. -> false | _ -> true)
          es
      in
      let render_list fs =
        match fs with
        | [] -> "1"
        | fs -> String.concat "*" (List.map (go ~finch 2) fs)
      in
      let numerator = render_list num_factors in
      (match den_factors with
       | [] -> numerator
       | dens ->
         let den_str =
           String.concat "*"
             (List.map
                (function
                  | Pow (b, Num e) when Float.equal e (-1.) -> go ~finch 3 b
                  | Pow (b, Num e) -> go ~finch 3 (Pow (b, Num (-.e)))
                  | f -> go ~finch 3 f)
                dens)
         in
         let den_str =
           if List.length dens > 1 then "(" ^ den_str ^ ")" else den_str
         in
         numerator ^ "/" ^ den_str)
    | Pow (a, Num e) when e < 0. ->
      "1/" ^ go ~finch 3 (Pow (a, Num (-.e)))
    | Pow (a, b) -> go ~finch 4 a ^ "^" ^ go ~finch 4 b
    | Call ("vector", comps) ->
      "[" ^ String.concat ";" (List.map (go ~finch 0) comps) ^ "]"
    | Call (name, args) ->
      name ^ "(" ^ String.concat ", " (List.map (go ~finch 0) args) ^ ")"
    | Cmp (op, a, b) ->
      go ~finch 1 a ^ " " ^ cmp_op_string op ^ " " ^ go ~finch 1 b
    | Cond (c, t, el) ->
      "conditional(" ^ go ~finch 0 c ^ ", " ^ go ~finch 0 t ^ ", "
      ^ go ~finch 0 el ^ ")"
  in
  if p < parent then "(" ^ s ^ ")" else s

let to_string e = go ~finch:false 0 e
let to_finch_string e = go ~finch:true 0 e

let pp ppf e = Format.pp_print_string ppf (to_string e)
