(** Tokenizer for the DSL's expression strings. *)

type token =
  | TNum of float
  | TIdent of string
  | TPlus
  | TMinus
  | TStar
  | TSlash
  | TCaret
  | TLParen
  | TRParen
  | TLBracket
  | TRBracket
  | TComma
  | TSemi
  | TGt
  | TGe
  | TLt
  | TLe
  | TEqEq
  | TNe
  | TEOF

exception Lex_error of string * int
(** Message and character position. *)

val token_string : token -> string

val tokenize : string -> token list
(** Whole-string tokenization ending in {!TEOF}. Numbers accept integer,
    decimal and exponent forms. *)
