(* Symbolic expression AST for the Finch DSL.

   This is the stand-in for SymEngine in the original Julia implementation.
   Expressions are kept in a lightly-normalized n-ary form: [Add] and [Mul]
   hold flattened argument lists, numeric literals are plain floats, and
   entity references carry their index lists and a "side" tag used by
   surface terms to distinguish the two cells sharing a face (the paper's
   CELL1_u / CELL2_u symbols). *)

type side =
  | Here   (* value in the current cell / no face context *)
  | Cell1  (* owning cell of a face *)
  | Cell2  (* neighbour cell of a face *)

type cmp_op = Gt | Ge | Lt | Le | Eq | Ne

type index_ref =
  | Ivar of string          (* a named index, e.g. [d] *)
  | Iconst of int           (* a literal index, e.g. [3] *)
  | Ishift of string * int  (* a shifted index, e.g. [d+1] *)

type t =
  | Num of float
  | Sym of string                       (* scalar symbol: dt, NORMAL_1, ... *)
  | Ref of string * index_ref list * side  (* entity reference: I[d,b] *)
  | Add of t list
  | Mul of t list
  | Pow of t * t
  | Call of string * t list             (* operator/function application *)
  | Cmp of cmp_op * t * t               (* comparison, used inside Cond *)
  | Cond of t * t * t                   (* conditional(test, then, else) *)

let zero = Num 0.
let one = Num 1.
let num x = Num x
let sym s = Sym s
let ref_ ?(side = Here) name indices = Ref (name, indices, side)

let add = function [] -> zero | [ e ] -> e | es -> Add es
let mul = function [] -> one | [ e ] -> e | es -> Mul es
let neg e = Mul [ Num (-1.); e ]
let sub a b = Add [ a; neg b ]
let div a b = Mul [ a; Pow (b, Num (-1.)) ]
let pow a b = Pow (a, b)
let call name args = Call (name, args)
let cond test then_ else_ = Cond (test, then_, else_)
let cmp op a b = Cmp (op, a, b)

let cmp_op_string = function
  | Gt -> ">"
  | Ge -> ">="
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "=="
  | Ne -> "!="

let side_string = function Here -> "" | Cell1 -> "CELL1_" | Cell2 -> "CELL2_"

let index_ref_string = function
  | Ivar s -> s
  | Iconst i -> string_of_int i
  | Ishift (s, k) ->
    if k >= 0 then Printf.sprintf "%s+%d" s k else Printf.sprintf "%s-%d" s (-k)

(* Structural equality.  Floats are compared exactly: the simplifier only
   produces floats from exact arithmetic on user input, so this is the
   behaviour we want for term collection. *)
let rec equal a b =
  match a, b with
  | Num x, Num y -> Float.equal x y
  | Sym x, Sym y -> String.equal x y
  | Ref (n1, i1, s1), Ref (n2, i2, s2) ->
    String.equal n1 n2 && s1 = s2
    && List.length i1 = List.length i2
    && List.for_all2 (fun a b -> a = b) i1 i2
  | Add xs, Add ys | Mul xs, Mul ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Pow (a1, b1), Pow (a2, b2) -> equal a1 a2 && equal b1 b2
  | Call (n1, a1), Call (n2, a2) ->
    String.equal n1 n2 && List.length a1 = List.length a2
    && List.for_all2 equal a1 a2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Cond (c1, t1, e1), Cond (c2, t2, e2) ->
    equal c1 c2 && equal t1 t2 && equal e1 e2
  | (Num _ | Sym _ | Ref _ | Add _ | Mul _ | Pow _ | Call _ | Cmp _ | Cond _), _
    -> false

(* A total order on expressions used for canonical sorting of n-ary
   argument lists.  The particular order is unimportant as long as it is
   total and stable. *)
let rec compare_expr a b =
  let rank = function
    | Num _ -> 0
    | Sym _ -> 1
    | Ref _ -> 2
    | Pow _ -> 3
    | Mul _ -> 4
    | Add _ -> 5
    | Call _ -> 6
    | Cmp _ -> 7
    | Cond _ -> 8
  in
  match a, b with
  | Num x, Num y -> Float.compare x y
  | Sym x, Sym y -> String.compare x y
  | Ref (n1, i1, s1), Ref (n2, i2, s2) ->
    let c = String.compare n1 n2 in
    if c <> 0 then c
    else
      let c = Stdlib.compare i1 i2 in
      if c <> 0 then c else Stdlib.compare s1 s2
  | Add xs, Add ys | Mul xs, Mul ys -> compare_list xs ys
  | Pow (a1, b1), Pow (a2, b2) ->
    let c = compare_expr a1 a2 in
    if c <> 0 then c else compare_expr b1 b2
  | Call (n1, a1), Call (n2, a2) ->
    let c = String.compare n1 n2 in
    if c <> 0 then c else compare_list a1 a2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
    let c = Stdlib.compare o1 o2 in
    if c <> 0 then c
    else
      let c = compare_expr a1 a2 in
      if c <> 0 then c else compare_expr b1 b2
  | Cond (c1, t1, e1), Cond (c2, t2, e2) ->
    let c = compare_expr c1 c2 in
    if c <> 0 then c
    else
      let c = compare_expr t1 t2 in
      if c <> 0 then c else compare_expr e1 e2
  | _ -> Stdlib.compare (rank a) (rank b)

and compare_list xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare_expr x y in
    if c <> 0 then c else compare_list xs' ys'

(* Generic bottom-up rewrite: applies [f] to every node after rewriting
   its children. *)
let rec rewrite f e =
  let e' =
    match e with
    | Num _ | Sym _ | Ref _ -> e
    | Add es -> Add (List.map (rewrite f) es)
    | Mul es -> Mul (List.map (rewrite f) es)
    | Pow (a, b) -> Pow (rewrite f a, rewrite f b)
    | Call (n, args) -> Call (n, List.map (rewrite f) args)
    | Cmp (op, a, b) -> Cmp (op, rewrite f a, rewrite f b)
    | Cond (c, t, el) -> Cond (rewrite f c, rewrite f t, rewrite f el)
  in
  f e'

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Num _ | Sym _ | Ref _ -> acc
  | Add es | Mul es | Call (_, es) -> List.fold_left (fold f) acc es
  | Pow (a, b) | Cmp (_, a, b) -> fold f (fold f acc a) b
  | Cond (c, t, el) -> fold f (fold f (fold f acc c) t) el

(* All entity references appearing in an expression, with duplicates
   removed (structural). *)
let refs e =
  let collect acc = function Ref (n, i, s) -> (n, i, s) :: acc | _ -> acc in
  List.rev (fold collect [] e)
  |> List.fold_left (fun acc r -> if List.mem r acc then acc else r :: acc) []
  |> List.rev

let ref_names e =
  refs e
  |> List.map (fun (n, _, _) -> n)
  |> List.fold_left (fun acc n -> if List.mem n acc then acc else n :: acc) []
  |> List.rev

(* Symbols (scalar, non-indexed) appearing in an expression. *)
let sym_names e =
  let collect acc = function Sym s -> s :: acc | _ -> acc in
  List.rev (fold collect [] e)
  |> List.fold_left (fun acc n -> if List.mem n acc then acc else n :: acc) []
  |> List.rev

(* Index variables used anywhere in the expression. *)
let index_names e =
  let of_ref acc = function
    | Ref (_, idx, _) ->
      List.fold_left
        (fun acc -> function
          | Ivar s | Ishift (s, _) -> if List.mem s acc then acc else s :: acc
          | Iconst _ -> acc)
        acc idx
    | _ -> acc
  in
  List.rev (fold of_ref [] e)

let contains_ref name e =
  fold (fun found n -> found || match n with Ref (n', _, _) -> String.equal n' name | _ -> false)
    false e

let contains_sym name e =
  fold (fun found n -> found || match n with Sym s -> String.equal s name | _ -> false)
    false e

let contains_call name e =
  fold (fun found n -> found || match n with Call (c, _) -> String.equal c name | _ -> false)
    false e

(* Substitute every occurrence of symbol [name] with expression [v]. *)
let subst_sym name v e =
  rewrite (function Sym s when String.equal s name -> v | x -> x) e

(* Substitute references to entity [name] (regardless of indices) using
   [f indices side]. *)
let subst_ref name f e =
  rewrite
    (function Ref (n, idx, side) when String.equal n name -> f idx side | x -> x)
    e

(* Re-tag all Here references with [side]; used when splitting an
   expression into this-cell / neighbour-cell contributions. *)
let retag_side side e =
  rewrite (function Ref (n, idx, Here) -> Ref (n, idx, side) | x -> x) e

let size e = fold (fun n _ -> n + 1) 0 e

(* Numeric evaluation against environments; the basis for the qcheck
   soundness tests of the simplifier.  [env_sym] resolves scalar symbols,
   [env_ref] resolves entity references. *)
let eval ~env_sym ~env_ref e =
  let rec go e =
    match e with
    | Num x -> x
    | Sym s -> env_sym s
    | Ref (n, idx, side) -> env_ref n idx side
    | Add es -> List.fold_left (fun a e -> a +. go e) 0. es
    | Mul es -> List.fold_left (fun a e -> a *. go e) 1. es
    | Pow (a, b) ->
      let base = go a and ex = go b in
      if Float.is_integer ex && Float.abs ex <= 16. then begin
        (* Exact small integer powers, including negative bases. *)
        let n = int_of_float ex in
        let rec ipow acc b n = if n = 0 then acc else ipow (acc *. b) b (n - 1) in
        if n >= 0 then ipow 1. base n else 1. /. ipow 1. base (-n)
      end
      else Float.pow base ex
    | Call (name, args) -> eval_call name (List.map go args)
    | Cmp (op, a, b) ->
      let x = go a and y = go b in
      let holds =
        match op with
        | Gt -> x > y
        | Ge -> x >= y
        | Lt -> x < y
        | Le -> x <= y
        | Eq -> Float.equal x y
        | Ne -> not (Float.equal x y)
      in
      if holds then 1. else 0.
    | Cond (c, t, el) -> if go c <> 0. then go t else go el
  and eval_call name args =
    match name, args with
    | "sin", [ x ] -> sin x
    | "cos", [ x ] -> cos x
    | "tan", [ x ] -> tan x
    | "exp", [ x ] -> exp x
    | "log", [ x ] -> log x
    | "sqrt", [ x ] -> sqrt x
    | "abs", [ x ] -> Float.abs x
    | "min", [ x; y ] -> Float.min x y
    | "max", [ x; y ] -> Float.max x y
    | "sinh", [ x ] -> sinh x
    | "cosh", [ x ] -> cosh x
    | "tanh", [ x ] -> tanh x
    | _ -> invalid_arg (Printf.sprintf "Expr.eval: unknown function %s/%d" name (List.length args))
  in
  go e

(* The functions with a numeric evaluation rule built into [eval]. *)
let known_functions =
  [ "sin"; "cos"; "tan"; "exp"; "log"; "sqrt"; "abs"; "min"; "max";
    "sinh"; "cosh"; "tanh" ]
