lib/symbolic/expr.ml: Float List Printf Stdlib String
