lib/symbolic/printer.ml: Expr Float Format List Printf Simplify String
