lib/symbolic/diff.mli: Expr
