lib/symbolic/expr.mli:
