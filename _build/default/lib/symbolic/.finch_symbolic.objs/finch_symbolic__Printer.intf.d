lib/symbolic/printer.mli: Expr Format
