lib/symbolic/diff.ml: Expr List Printf Simplify String
