lib/symbolic/simplify.ml: Expr Float List
