lib/symbolic/simplify.mli: Expr
