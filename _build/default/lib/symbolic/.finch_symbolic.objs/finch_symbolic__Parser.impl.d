lib/symbolic/parser.ml: Expr Float Lexer List Printf
