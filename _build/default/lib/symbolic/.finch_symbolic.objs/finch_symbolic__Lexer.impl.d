lib/symbolic/lexer.ml: List Printf String
