lib/symbolic/lexer.mli:
