(** Algebraic normalization of {!Expr.t} values.

    [simplify] is conservative (no distribution); [expand] additionally
    distributes products over sums, which the DSL uses before splitting an
    equation into classified terms. Both preserve numeric semantics — a
    property checked by the qcheck suites. *)

val is_zero : Expr.t -> bool
val is_one : Expr.t -> bool

val split_coeff : Expr.t -> float * Expr.t list
(** Split a term into its numeric coefficient and remaining factors. *)

val join_coeff : float -> Expr.t list -> Expr.t
(** Inverse of {!split_coeff} (up to normalization). *)

val simplify : Expr.t -> Expr.t
(** Flatten sums/products, fold numerics, collect like terms and factors,
    sort arguments canonically. Idempotent. *)

val expand : Expr.t -> Expr.t
(** Distribute products over sums (and small integer powers of sums), then
    simplify. *)

val terms : Expr.t -> Expr.t list
(** Top-level additive terms of the expanded expression; [[]] for zero. *)

val partition_terms : (Expr.t -> bool) -> Expr.t -> Expr.t list * Expr.t list
(** Partition the expanded terms by a predicate. *)
