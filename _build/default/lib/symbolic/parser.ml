(* Recursive-descent parser turning DSL expression strings into Expr.t.

   Grammar (lowest to highest precedence):

     cexpr  := expr (cmpop expr)?
     expr   := term (('+'|'-') term)*
     term   := unary (('*'|'/') unary)*
     unary  := '-' unary | power
     power  := atom ('^' unary)?
     atom   := number
             | ident '[' indices ']'        -- entity reference
             | ident '(' cexpr, ... ')'     -- function / operator call
             | ident                        -- scalar symbol
             | '(' cexpr ')'
             | '[' cexpr (';' cexpr)* ']'   -- vector literal -> Call "vector"
     index  := ident | ident '+' int | ident '-' int | int

   Division [a/b] becomes [a * b^-1], matching the internal representation. *)

open Expr

exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.TEOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t =
  if peek st = t then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (Lexer.token_string t)
            (Lexer.token_string (peek st))))

let parse_index st =
  match peek st with
  | Lexer.TNum x when Float.is_integer x ->
    advance st;
    Iconst (int_of_float x)
  | Lexer.TIdent name -> (
    advance st;
    match peek st with
    | Lexer.TPlus -> (
      advance st;
      match peek st with
      | Lexer.TNum x when Float.is_integer x ->
        advance st;
        Ishift (name, int_of_float x)
      | t ->
        raise (Parse_error ("expected integer shift, found " ^ Lexer.token_string t)))
    | Lexer.TMinus -> (
      advance st;
      match peek st with
      | Lexer.TNum x when Float.is_integer x ->
        advance st;
        Ishift (name, -int_of_float x)
      | t ->
        raise (Parse_error ("expected integer shift, found " ^ Lexer.token_string t)))
    | _ -> Ivar name)
  | t -> raise (Parse_error ("expected index, found " ^ Lexer.token_string t))

let rec parse_cexpr st =
  let lhs = parse_expr st in
  let op =
    match peek st with
    | Lexer.TGt -> Some Gt
    | Lexer.TGe -> Some Ge
    | Lexer.TLt -> Some Lt
    | Lexer.TLe -> Some Le
    | Lexer.TEqEq -> Some Eq
    | Lexer.TNe -> Some Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    let rhs = parse_expr st in
    Cmp (op, lhs, rhs)

and parse_expr st =
  let first = parse_term st in
  let rec loop acc =
    match peek st with
    | Lexer.TPlus ->
      advance st;
      loop (parse_term st :: acc)
    | Lexer.TMinus ->
      advance st;
      loop (neg (parse_term st) :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ e ] -> e | es -> Add es

and parse_term st =
  let first = parse_unary st in
  let rec loop acc =
    match peek st with
    | Lexer.TStar ->
      advance st;
      loop (parse_unary st :: acc)
    | Lexer.TSlash ->
      advance st;
      loop (Pow (parse_unary st, Num (-1.)) :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ e ] -> e | es -> Mul es

and parse_unary st =
  match peek st with
  | Lexer.TMinus ->
    advance st;
    neg (parse_unary st)
  | _ -> parse_power st

and parse_power st =
  let base = parse_atom st in
  match peek st with
  | Lexer.TCaret ->
    advance st;
    Pow (base, parse_unary st)
  | _ -> base

and parse_atom st =
  match peek st with
  | Lexer.TNum x ->
    advance st;
    Num x
  | Lexer.TLParen ->
    advance st;
    let e = parse_cexpr st in
    expect st Lexer.TRParen;
    e
  | Lexer.TLBracket ->
    (* vector literal [a; b; ...] *)
    advance st;
    let first = parse_cexpr st in
    let rec loop acc =
      match peek st with
      | Lexer.TSemi ->
        advance st;
        loop (parse_cexpr st :: acc)
      | _ -> List.rev acc
    in
    let comps = loop [ first ] in
    expect st Lexer.TRBracket;
    Call ("vector", comps)
  | Lexer.TIdent name -> (
    advance st;
    match peek st with
    | Lexer.TLBracket ->
      advance st;
      let first = parse_index st in
      let rec loop acc =
        match peek st with
        | Lexer.TComma ->
          advance st;
          loop (parse_index st :: acc)
        | _ -> List.rev acc
      in
      let indices = loop [ first ] in
      expect st Lexer.TRBracket;
      Ref (name, indices, Here)
    | Lexer.TLParen ->
      advance st;
      if peek st = Lexer.TRParen then begin
        advance st;
        Call (name, [])
      end
      else begin
        let first = parse_cexpr st in
        let rec loop acc =
          match peek st with
          | Lexer.TComma ->
            advance st;
            loop (parse_cexpr st :: acc)
          | _ -> List.rev acc
        in
        let args = loop [ first ] in
        expect st Lexer.TRParen;
        match name, args with
        | "conditional", [ c; t; e ] -> Cond (c, t, e)
        | "conditional", _ ->
          raise (Parse_error "conditional expects three arguments")
        | _ -> Call (name, args)
      end
    | _ -> Sym name)
  | t -> raise (Parse_error ("unexpected token " ^ Lexer.token_string t))

let parse s =
  let st =
    try { toks = Lexer.tokenize s }
    with Lexer.Lex_error (msg, pos) ->
      raise (Parse_error (Printf.sprintf "lexical error at %d: %s" pos msg))
  in
  let e = parse_cexpr st in
  (match peek st with
   | Lexer.TEOF -> ()
   | t -> raise (Parse_error ("trailing input at " ^ Lexer.token_string t)));
  e

let parse_opt s = try Some (parse s) with Parse_error _ -> None
