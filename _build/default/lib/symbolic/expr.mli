(** Symbolic expression AST — the SymEngine substitute underlying the DSL.

    Expressions are n-ary for [Add]/[Mul]; entity references carry an index
    list and a face-side tag (the paper's [CELL1_u]/[CELL2_u] distinction for
    surface terms). *)

(** Which cell of a face an entity reference refers to. *)
type side =
  | Here   (** the current cell, or no face context *)
  | Cell1  (** owning cell of a face *)
  | Cell2  (** neighbour cell across a face *)

type cmp_op = Gt | Ge | Lt | Le | Eq | Ne

(** One position of an entity's index list. *)
type index_ref =
  | Ivar of string          (** named index, e.g. [I[d]] *)
  | Iconst of int           (** literal index *)
  | Ishift of string * int  (** shifted index, e.g. [I[d+1]] *)

type t =
  | Num of float
  | Sym of string                          (** scalar symbol: [dt], [NORMAL_1] *)
  | Ref of string * index_ref list * side  (** entity reference: [I[d,b]] *)
  | Add of t list
  | Mul of t list
  | Pow of t * t
  | Call of string * t list                (** operator / function application *)
  | Cmp of cmp_op * t * t
  | Cond of t * t * t                      (** [conditional(test, then, else)] *)

val zero : t
val one : t
val num : float -> t
val sym : string -> t

val ref_ : ?side:side -> string -> index_ref list -> t
(** [ref_ name indices] builds an entity reference; [side] defaults to
    {!Here}. *)

val add : t list -> t
(** n-ary sum; [add []] is [zero], singletons collapse. *)

val mul : t list -> t
(** n-ary product; [mul []] is [one], singletons collapse. *)

val neg : t -> t
val sub : t -> t -> t
val div : t -> t -> t
(** [div a b] is represented as [a * b^-1]. *)

val pow : t -> t -> t
val call : string -> t list -> t
val cond : t -> t -> t -> t
val cmp : cmp_op -> t -> t -> t

val cmp_op_string : cmp_op -> string
val side_string : side -> string
val index_ref_string : index_ref -> string

val equal : t -> t -> bool
(** Structural equality (floats compared exactly). *)

val compare_expr : t -> t -> int
(** A total order used for canonical sorting of argument lists. *)

val rewrite : (t -> t) -> t -> t
(** Bottom-up rewrite: children first, then the node itself. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val refs : t -> (string * index_ref list * side) list
(** All distinct entity references, in first-occurrence order. *)

val ref_names : t -> string list
(** Distinct referenced entity names, in first-occurrence order. *)

val sym_names : t -> string list
(** Distinct scalar symbol names, in first-occurrence order. *)

val index_names : t -> string list
(** Distinct index-variable names used by any reference. *)

val contains_ref : string -> t -> bool
val contains_sym : string -> t -> bool
val contains_call : string -> t -> bool

val subst_sym : string -> t -> t -> t
(** [subst_sym name v e] replaces every [Sym name] in [e] by [v]. *)

val subst_ref : string -> (index_ref list -> side -> t) -> t -> t
(** [subst_ref name f e] replaces every reference to entity [name]. *)

val retag_side : side -> t -> t
(** Re-tag every {!Here} reference with the given side. *)

val size : t -> int
(** Node count. *)

val eval :
  env_sym:(string -> float) ->
  env_ref:(string -> index_ref list -> side -> float) ->
  t -> float
(** Numeric evaluation. Comparisons yield 1.0/0.0; [Cond] tests against 0.
    Raises [Invalid_argument] on unknown function calls. *)

val known_functions : string list
(** Function names that {!eval} can evaluate. *)
