(* Symbolic differentiation with respect to a scalar symbol.

   Used by the DSL for linearization of source terms (Newton-type updates)
   and by the BTE layer for d(I0)/dT checks; also a good stress test of the
   expression algebra. *)

open Expr

let rec d x e =
  match e with
  | Num _ -> zero
  | Sym s -> if String.equal s x then one else zero
  | Ref _ -> zero (* entity references are opaque w.r.t. scalar symbols *)
  | Add es -> Simplify.simplify (add (List.map (d x) es))
  | Mul es ->
    (* product rule over the n-ary list *)
    let rec go before = function
      | [] -> []
      | f :: after ->
        let term = mul (List.rev_append before (d x f :: after)) in
        term :: go (f :: before) after
    in
    Simplify.simplify (add (go [] es))
  | Pow (a, Num n) ->
    Simplify.simplify (mul [ Num n; Pow (a, Num (n -. 1.)); d x a ])
  | Pow (a, b) ->
    (* general case: d(a^b) = a^b * (b' ln a + b a'/a) *)
    Simplify.simplify
      (mul
         [ Pow (a, b);
           add [ mul [ d x b; call "log" [ a ] ]; mul [ b; d x a; pow a (Num (-1.)) ] ] ])
  | Call (name, [ a ]) ->
    let da = d x a in
    let outer =
      match name with
      | "sin" -> call "cos" [ a ]
      | "cos" -> neg (call "sin" [ a ])
      | "tan" -> add [ one; pow (call "tan" [ a ]) (Num 2.) ]
      | "exp" -> call "exp" [ a ]
      | "log" -> pow a (Num (-1.))
      | "sqrt" -> mul [ Num 0.5; pow a (Num (-0.5)) ]
      | "sinh" -> call "cosh" [ a ]
      | "cosh" -> call "sinh" [ a ]
      | "tanh" -> sub one (pow (call "tanh" [ a ]) (Num 2.))
      | other -> call (other ^ "'") [ a ]  (* unknown: formal derivative *)
    in
    Simplify.simplify (mul [ outer; da ])
  | Call (name, args) ->
    invalid_arg
      (Printf.sprintf "Diff.d: cannot differentiate %s/%d" name (List.length args))
  | Cmp _ -> zero (* piecewise-constant almost everywhere *)
  | Cond (c, t, e') -> Cond (c, d x t, d x e')

let derivative = d
