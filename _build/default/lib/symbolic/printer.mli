(** Expression printers. *)

val to_string : Expr.t -> string
(** Ordinary infix rendering, with negative powers shown as division. *)

val to_finch_string : Expr.t -> string
(** The paper's expanded symbolic style: entity references print as
    [_name_1\[indices\]] with [CELL1_]/[CELL2_] side prefixes, conditionals
    as [conditional(test, a, b)]. *)

val pp : Format.formatter -> Expr.t -> unit
