(* Tokenizer for the DSL's expression strings, e.g.
   "(Io[b] - I[d,b]) / beta[b] + surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))" *)

type token =
  | TNum of float
  | TIdent of string
  | TPlus
  | TMinus
  | TStar
  | TSlash
  | TCaret
  | TLParen
  | TRParen
  | TLBracket
  | TRBracket
  | TComma
  | TSemi
  | TGt
  | TGe
  | TLt
  | TLe
  | TEqEq
  | TNe
  | TEOF

exception Lex_error of string * int  (* message, position *)

let token_string = function
  | TNum x -> Printf.sprintf "%g" x
  | TIdent s -> s
  | TPlus -> "+"
  | TMinus -> "-"
  | TStar -> "*"
  | TSlash -> "/"
  | TCaret -> "^"
  | TLParen -> "("
  | TRParen -> ")"
  | TLBracket -> "["
  | TRBracket -> "]"
  | TComma -> ","
  | TSemi -> ";"
  | TGt -> ">"
  | TGe -> ">="
  | TLt -> "<"
  | TLe -> "<="
  | TEqEq -> "=="
  | TNe -> "!="
  | TEOF -> "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Tokenize the whole string.  Numbers accept [1], [1.5], [1e-3], [1.5e+10]. *)
let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let emit t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do incr i done;
      if !i < n && s.[!i] = '.' then begin
        incr i;
        while !i < n && is_digit s.[!i] do incr i done
      end;
      if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
        let save = !i in
        incr i;
        if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
        if !i < n && is_digit s.[!i] then
          while !i < n && is_digit s.[!i] do incr i done
        else i := save (* not an exponent after all *)
      end;
      let text = String.sub s start (!i - start) in
      match float_of_string_opt text with
      | Some x -> emit (TNum x)
      | None -> raise (Lex_error (Printf.sprintf "bad number %S" text, start))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      emit (TIdent (String.sub s start (!i - start)))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub s !i 2) else None
      in
      match two with
      | Some ">=" -> emit TGe; i := !i + 2
      | Some "<=" -> emit TLe; i := !i + 2
      | Some "==" -> emit TEqEq; i := !i + 2
      | Some "!=" -> emit TNe; i := !i + 2
      | _ ->
        (match c with
         | '+' -> emit TPlus
         | '-' -> emit TMinus
         | '*' -> emit TStar
         | '/' -> emit TSlash
         | '^' -> emit TCaret
         | '(' -> emit TLParen
         | ')' -> emit TRParen
         | '[' -> emit TLBracket
         | ']' -> emit TRBracket
         | ',' -> emit TComma
         | ';' -> emit TSemi
         | '>' -> emit TGt
         | '<' -> emit TLt
         | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i)));
        incr i
    end
  done;
  emit TEOF;
  List.rev !toks
