(** Symbolic differentiation with respect to a scalar symbol. *)

val d : string -> Expr.t -> Expr.t
(** [d x e] is de/dx, simplified. Entity references and comparisons are
    treated as constants; unknown single-argument functions [f] get a formal
    derivative [f']. Raises [Invalid_argument] for unknown multi-argument
    functions. *)

val derivative : string -> Expr.t -> Expr.t
(** Alias for {!d}. *)
