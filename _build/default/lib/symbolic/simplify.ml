(* Algebraic normalization of symbolic expressions.

   The simplifier brings expressions to a canonical-enough form for the DSL
   pipeline: flattened n-ary sums/products, folded numeric subterms,
   like terms collected in sums, like factors collected in products, and
   argument lists sorted by the canonical order of [Expr.compare_expr].

   It is deliberately conservative: no distribution of products over sums
   (that can blow up expression size), except [expand] which does it on
   request for term classification. *)

open Expr

let is_zero = function Num x -> Float.equal x 0. | _ -> false
let is_one = function Num x -> Float.equal x 1. | _ -> false

(* Split a product into (numeric coefficient, non-numeric factors). *)
let split_coeff e =
  match e with
  | Num x -> x, []
  | Mul es ->
    let nums, rest = List.partition (function Num _ -> true | _ -> false) es in
    let c = List.fold_left (fun a -> function Num x -> a *. x | _ -> a) 1. nums in
    c, rest
  | e -> 1., [ e ]

(* Rebuild a term from coefficient and factors. *)
let join_coeff c factors =
  if Float.equal c 0. then zero
  else
    match factors with
    | [] -> Num c
    | [ f ] when Float.equal c 1. -> f
    | fs when Float.equal c 1. -> Mul fs
    | fs -> Mul (Num c :: fs)

(* Split a factor into (base, exponent) for power collection. *)
let split_pow = function
  | Pow (b, Num e) -> b, e
  | Pow (b, e) -> Pow (b, e), 1.  (* non-numeric exponent: opaque base *)
  | e -> e, 1.

let rec flatten_add acc = function
  | [] -> List.rev acc
  | Add es :: rest -> flatten_add acc (es @ rest)
  | e :: rest -> flatten_add (e :: acc) rest

let rec flatten_mul acc = function
  | [] -> List.rev acc
  | Mul es :: rest -> flatten_mul acc (es @ rest)
  | e :: rest -> flatten_mul (e :: acc) rest

(* Collect structurally-equal keys in an association list, summing values. *)
let collect_assoc keys_equal pairs =
  List.fold_left
    (fun acc (k, v) ->
      let rec upd = function
        | [] -> [ (k, v) ]
        | (k', v') :: rest when keys_equal k k' -> (k', v' +. v) :: rest
        | p :: rest -> p :: upd rest
      in
      upd acc)
    [] pairs

let simplify_add es =
  let es = flatten_add [] es in
  let const, terms =
    List.fold_left
      (fun (c, ts) e ->
        match e with
        | Num x -> c +. x, ts
        | e ->
          let coeff, factors = split_coeff e in
          (* normalize monomial factor order so collection sees equal keys *)
          let factors = List.sort compare_expr factors in
          c, (factors, coeff) :: ts)
      (0., []) es
  in
  let keys_equal a b =
    List.length a = List.length b && List.for_all2 equal a b
  in
  let collected = collect_assoc keys_equal (List.rev terms) in
  let terms =
    List.filter_map
      (fun (factors, coeff) ->
        if Float.equal coeff 0. then None else Some (join_coeff coeff factors))
      collected
  in
  let terms = List.sort compare_expr terms in
  let terms = if Float.equal const 0. then terms else terms @ [ Num const ] in
  match terms with [] -> zero | [ t ] -> t | ts -> Add ts

let simplify_mul es =
  let es = flatten_mul [] es in
  if List.exists is_zero es then zero
  else
    let const, factors =
      List.fold_left
        (fun (c, fs) e ->
          match e with
          | Num x -> c *. x, fs
          | e ->
            let base, ex = split_pow e in
            c, (base, ex) :: fs)
        (1., []) es
    in
    let collected = collect_assoc equal (List.rev factors) in
    let factors =
      List.filter_map
        (fun (base, ex) ->
          if Float.equal ex 0. then None
          else if Float.equal ex 1. then Some base
          else Some (Pow (base, Num ex)))
        collected
    in
    let factors = List.sort compare_expr factors in
    join_coeff const factors

let simplify_pow a b =
  match a, b with
  | _, Num e when Float.equal e 0. -> one
  | a, Num e when Float.equal e 1. -> a
  | Num x, Num e when Float.is_integer e && Float.abs e <= 16. && not (Float.equal x 0. && e < 0.) ->
    let n = int_of_float e in
    let rec ipow acc b n = if n = 0 then acc else ipow (acc *. b) b (n - 1) in
    Num (if n >= 0 then ipow 1. x n else 1. /. ipow 1. x (-n))
  | Pow (base, Num e1), Num e2 -> Pow (base, Num (e1 *. e2))
  | a, b -> Pow (a, b)

let simplify_node = function
  | Add es -> simplify_add es
  | Mul es -> simplify_mul es
  | Pow (a, b) -> simplify_pow a b
  | Cond (Num c, t, e) -> if c <> 0. then t else e
  | Cond (Cmp (op, Num x, Num y), t, e) ->
    let holds =
      match op with
      | Gt -> x > y | Ge -> x >= y | Lt -> x < y | Le -> x <= y
      | Eq -> Float.equal x y | Ne -> not (Float.equal x y)
    in
    if holds then t else e
  | e -> e

let simplify e = rewrite simplify_node e

(* Fully distribute products over sums (and small integer powers of sums),
   then simplify.  Needed before splitting an equation into individual
   terms for LHS/RHS classification.

   Each subexpression is expanded exactly once; products combine the term
   lists of their already-expanded factors (a cartesian product), so the
   cost is proportional to the size of the result rather than exponential
   in the nesting depth. *)
let rec expand e =
  match e with
  | Num _ | Sym _ | Ref _ -> e
  | Add es -> simplify_add (List.map expand es)
  | Mul es ->
    let factor_terms =
      List.map
        (fun f ->
          match expand f with
          | Add ts -> ts
          | t -> [ t ])
        es
    in
    let products =
      List.fold_left
        (fun acc ts ->
          List.concat_map (fun t -> List.map (fun a -> simplify_mul [ a; t ]) acc) ts)
        [ one ] factor_terms
    in
    simplify_add products
  | Pow (a, Num n) when Float.is_integer n && n >= 2. && n <= 4. ->
    let a = expand a in
    (match a with
     | Add _ ->
       let n = int_of_float n in
       expand (Mul (List.init n (fun _ -> a)))
     | a -> simplify_pow a (Num n))
  | Pow (a, b) -> simplify_pow (expand a) (expand b)
  | Cond (c, t, el) -> Cond (expand c, expand t, expand el)
  | Call (n, args) -> Call (n, List.map expand args)
  | Cmp (op, a, b) -> Cmp (op, expand a, expand b)

(* Split an expanded expression into its top-level additive terms. *)
let terms e =
  match expand e with
  | Add es -> es
  | Num x when Float.equal x 0. -> []
  | e -> [ e ]

(* Separate a term list by a predicate on each whole term. *)
let partition_terms p e = List.partition p (terms e)
