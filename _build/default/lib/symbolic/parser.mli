(** Parser for the DSL's expression strings. *)

exception Parse_error of string

val parse : string -> Expr.t
(** Parse an expression such as
    ["(Io[b] - I[d,b]) / beta[b] + surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"].
    Division becomes multiplication by an inverse power; vector literals
    [\[a;b\]] become [Call ("vector", ...)]. Raises {!Parse_error}. *)

val parse_opt : string -> Expr.t option
(** Like {!parse} but [None] on error. *)
