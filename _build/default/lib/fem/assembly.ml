(* Global finite-element assembly over a triangular Fvm.Mesh.

   Unknowns live at mesh vertices (the FVM substrate's meshes carry the
   vertex data needed here).  Dirichlet conditions are imposed by row
   substitution: constrained rows become identity, and their known values
   are moved to the right-hand side, keeping the system symmetric for CG
   (the column entries are eliminated too). *)

exception Fem_error of string

type space = {
  mesh : Fvm.Mesh.t;
  elements : P1.element array;
  nnodes : int;
}

let space_of_mesh (mesh : Fvm.Mesh.t) =
  if mesh.Fvm.Mesh.dim <> 2 then raise (Fem_error "FEM space needs a 2-D mesh");
  Array.iter
    (fun verts ->
      if Array.length verts <> 3 then
        raise (Fem_error "FEM space needs a triangulated mesh"))
    mesh.Fvm.Mesh.cell_vertices;
  {
    mesh;
    elements =
      Array.map (P1.element_of mesh.Fvm.Mesh.coords) mesh.Fvm.Mesh.cell_vertices;
    nnodes = mesh.Fvm.Mesh.nvertices;
  }

(* assemble c * stiffness + m * mass as triplets *)
let operator_triplets sp ~stiffness ~mass =
  let triplets = ref [] in
  Array.iter
    (fun e ->
      let k = P1.local_stiffness e and mm = P1.local_mass e in
      for i = 0 to 2 do
        for j = 0 to 2 do
          let v = (stiffness *. k.(i).(j)) +. (mass *. mm.(i).(j)) in
          if v <> 0. then
            triplets := (e.P1.verts.(i), e.P1.verts.(j), v) :: !triplets
        done
      done)
    sp.elements;
  !triplets

let assemble_operator sp ~stiffness ~mass =
  La.Csr.of_triplets ~nrows:sp.nnodes ~ncols:sp.nnodes
    (operator_triplets sp ~stiffness ~mass)

let assemble_load sp f =
  let b = Array.make sp.nnodes 0. in
  Array.iter
    (fun e ->
      let l = P1.local_load e f in
      for i = 0 to 2 do
        b.(e.P1.verts.(i)) <- b.(e.P1.verts.(i)) +. l.(i)
      done)
    sp.elements;
  b

(* nodes lying on boundary faces of the given regions *)
let boundary_nodes sp ~regions =
  let mesh = sp.mesh in
  let mark = Array.make sp.nnodes false in
  Array.iter
    (fun f ->
      if List.mem mesh.Fvm.Mesh.face_bid.(f) regions then begin
        (* a boundary face's endpoints: find the cell edge whose midpoint is
           the face centroid *)
        let c = mesh.Fvm.Mesh.face_cell1.(f) in
        let verts = mesh.Fvm.Mesh.cell_vertices.(c) in
        let n = Array.length verts in
        let fc = Fvm.Mesh.face_centroid mesh f in
        for i = 0 to n - 1 do
          let v1 = verts.(i) and v2 = verts.((i + 1) mod n) in
          let mx = (mesh.Fvm.Mesh.coords.(v1 * 2) +. mesh.Fvm.Mesh.coords.(v2 * 2)) /. 2. in
          let my =
            (mesh.Fvm.Mesh.coords.((v1 * 2) + 1) +. mesh.Fvm.Mesh.coords.((v2 * 2) + 1))
            /. 2.
          in
          if Float.abs (mx -. fc.(0)) < 1e-12 && Float.abs (my -. fc.(1)) < 1e-12
          then begin
            mark.(v1) <- true;
            mark.(v2) <- true
          end
        done
      end)
    mesh.Fvm.Mesh.boundary_faces;
  mark

(* Impose u = g on the marked nodes symmetrically: subtract the known
   columns from b, zero the rows/columns, set unit diagonal and b = g. *)
let apply_dirichlet a b ~marked ~value =
  let n = Array.length b in
  let g = Array.init n (fun i -> if marked.(i) then value i else 0.) in
  (* b := b - A g on unconstrained rows *)
  let ag = La.Csr.mul a g in
  let triplets = ref [] in
  for r = 0 to n - 1 do
    if marked.(r) then begin
      triplets := (r, r, 1.) :: !triplets;
      b.(r) <- g.(r)
    end
    else begin
      b.(r) <- b.(r) -. ag.(r);
      La.Csr.iter_row a r (fun c v ->
          if not marked.(c) then triplets := (r, c, v) :: !triplets)
    end
  done;
  La.Csr.of_triplets ~nrows:n ~ncols:n !triplets

(* value of the P1 field at a point inside element [e] (barycentric) *)
let interpolate sp u pos =
  let inside e =
    let x i = sp.mesh.Fvm.Mesh.coords.((e.P1.verts.(i) * 2) + 0)
    and y i = sp.mesh.Fvm.Mesh.coords.((e.P1.verts.(i) * 2) + 1) in
    let sign (x1, y1) (x2, y2) (x3, y3) =
      ((x1 -. x3) *. (y2 -. y3)) -. ((x2 -. x3) *. (y1 -. y3))
    in
    let p = pos.(0), pos.(1) in
    let a = x 0, y 0 and b = x 1, y 1 and c = x 2, y 2 in
    let d1 = sign p a b and d2 = sign p b c and d3 = sign p c a in
    let neg = d1 < -1e-12 || d2 < -1e-12 || d3 < -1e-12 in
    let pos_ = d1 > 1e-12 || d2 > 1e-12 || d3 > 1e-12 in
    not (neg && pos_)
  in
  let rec find i =
    if i >= Array.length sp.elements then raise Not_found
    else if inside sp.elements.(i) then sp.elements.(i)
    else find (i + 1)
  in
  let e = find 0 in
  (* barycentric weights via the element gradients *)
  let x1 = sp.mesh.Fvm.Mesh.coords.((e.P1.verts.(0) * 2) + 0) in
  let y1 = sp.mesh.Fvm.Mesh.coords.((e.P1.verts.(0) * 2) + 1) in
  let l2 =
    (e.P1.grads.(1).(0) *. (pos.(0) -. x1)) +. (e.P1.grads.(1).(1) *. (pos.(1) -. y1))
  in
  let l3 =
    (e.P1.grads.(2).(0) *. (pos.(0) -. x1)) +. (e.P1.grads.(2).(1) *. (pos.(1) -. y1))
  in
  let l1 = 1. -. l2 -. l3 in
  (l1 *. u.(e.P1.verts.(0))) +. (l2 *. u.(e.P1.verts.(1))) +. (l3 *. u.(e.P1.verts.(2)))

(* L2 norm of (u_h - u_exact) with a vertex-based rule *)
let l2_error sp u exact =
  let acc = ref 0. in
  Array.iter
    (fun e ->
      let mean_sq = ref 0. in
      for i = 0 to 2 do
        let v = e.P1.verts.(i) in
        let pos =
          [| sp.mesh.Fvm.Mesh.coords.(v * 2); sp.mesh.Fvm.Mesh.coords.((v * 2) + 1) |]
        in
        let d = u.(v) -. exact pos in
        mean_sq := !mean_sq +. (d *. d /. 3.)
      done;
      acc := !acc +. (e.P1.area *. !mean_sq))
    sp.elements;
  sqrt !acc
