(** Weak-form input for the finite-element path — the paper's remark that
    with FEM the DSL's terms are "organized into linear and bilinear
    groups" made concrete: parse a weak-form string over trial [u] and
    test [v], classify the expanded terms, lower the canonical patterns
    (diffusion [gradgrad(u,v)], reaction [u*v], source [f*v]) to assembly
    coefficients, and drive steady and transient solves. *)

exception Weak_error of string

type classified_term =
  | Bilinear_stiffness of float
  | Bilinear_mass of float
  | Linear_load of (float array -> float)

type form = {
  stiffness : float;
  mass : float;
  load : float array -> float;
  bilinear_terms : int;
  linear_terms : int;
}

val grad_marker : string

val classify_term :
  coef_value:(string -> float) -> Finch_symbolic.Expr.t -> classified_term
(** Raises {!Weak_error} for terms outside the supported patterns (e.g.
    nonlinear in the trial function). *)

val parse_form : ?coef_value:(string -> float) -> string -> form
(** The load may reference [x], [y] and [pi]; named scalar coefficients
    resolve through [coef_value]. *)

val report : form -> string
(** The paper-style classification printout. *)

val solve_steady :
  Assembly.space -> form -> dirichlet_regions:int list ->
  dirichlet_value:(float array -> float) -> float array * La.Solvers.stats
(** The form is the equation's left-hand side with load terms entered
    negated (matching the FVM sign convention); solves with
    Jacobi-preconditioned CG. *)

val solve_heat :
  Assembly.space -> alpha:float -> source:(float array -> float) ->
  dirichlet_regions:int list -> dirichlet_value:(float array -> float) ->
  dt:float -> nsteps:int -> initial:(float array -> float) -> float array
(** Backward-Euler steps of u_t = alpha Laplace(u) + f. *)
