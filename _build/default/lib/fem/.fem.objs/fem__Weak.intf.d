lib/fem/weak.mli: Assembly Finch_symbolic La
