lib/fem/assembly.ml: Array Float Fvm La List P1
