lib/fem/p1.ml: Array Float
