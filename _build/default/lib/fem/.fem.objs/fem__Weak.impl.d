lib/fem/weak.ml: Array Assembly Expr Finch Finch_symbolic Float Fvm La List Parser Printf Simplify
