lib/fem/assembly.mli: Fvm La P1
