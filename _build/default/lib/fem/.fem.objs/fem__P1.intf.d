lib/fem/p1.mli:
