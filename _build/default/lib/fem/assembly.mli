(** Global P1 assembly over triangulated {!Fvm.Mesh} meshes.

    Unknowns live at mesh vertices. Dirichlet conditions are imposed
    symmetrically (row/column elimination with the known values moved to
    the right-hand side), keeping systems SPD for CG. *)

exception Fem_error of string

type space = {
  mesh : Fvm.Mesh.t;
  elements : P1.element array;
  nnodes : int;
}

val space_of_mesh : Fvm.Mesh.t -> space
(** Raises {!Fem_error} unless the mesh is 2-D and fully triangular. *)

val operator_triplets :
  space -> stiffness:float -> mass:float -> (int * int * float) list

val assemble_operator : space -> stiffness:float -> mass:float -> La.Csr.t
(** c_K * stiffness + c_M * mass. *)

val assemble_load : space -> (float array -> float) -> float array

val boundary_nodes : space -> regions:int list -> bool array
(** Nodes lying on boundary faces of the given regions. *)

val apply_dirichlet :
  La.Csr.t -> float array -> marked:bool array -> value:(int -> float) ->
  La.Csr.t
(** Returns the constrained (still symmetric) matrix; modifies [b] in
    place. *)

val interpolate : space -> float array -> float array -> float
(** P1 interpolation of a nodal field at a point; raises [Not_found]
    outside the mesh. *)

val l2_error : space -> float array -> (float array -> float) -> float
