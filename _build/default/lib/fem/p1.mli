(** Linear (P1) triangular finite elements: barycentric shape functions,
    constant per-element gradients, closed-form local matrices. *)

type element = {
  verts : int array;          (** 3 vertex ids *)
  area : float;
  grads : float array array;  (** gradient of each shape function *)
  centroid : float array;
}

val element_of : float array -> int array -> element
(** From flat vertex coordinates and three vertex ids; raises
    [Invalid_argument] on degenerate triangles. *)

val local_stiffness : element -> float array array
(** K_ij = area * grad_i . grad_j; rows sum to zero. *)

val local_mass : element -> float array array
(** Consistent mass: (area/12) (1 + delta_ij); entries sum to the area. *)

val local_load : element -> (float array -> float) -> float array
(** One-point (centroid) rule. *)
