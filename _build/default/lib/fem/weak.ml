(* Weak-form input for the finite-element path.

   The paper notes that with the finite element discretization "the terms
   would be organized into linear and bilinear groups, and for volume,
   boundary, or surface integration".  This module does exactly that for
   the P1 path: it parses a weak-form string over the trial function [u]
   and test function [v], classifies each expanded term, and lowers the
   canonical patterns

     c * dot(grad(u), grad(v))   ->  c x stiffness
     c * u * v                   ->  c x mass
     expr(x,y) * v               ->  load with density expr

   into assembly coefficients.  Anything outside these patterns is
   reported as unsupported rather than silently ignored. *)

open Finch_symbolic

exception Weak_error of string

type classified_term =
  | Bilinear_stiffness of float (* coefficient *)
  | Bilinear_mass of float
  | Linear_load of (float array -> float)

type form = {
  stiffness : float;
  mass : float;
  load : float array -> float;
  bilinear_terms : int;
  linear_terms : int;
}

(* The symbolic marker produced by grad(u).grad(v): we register a custom
   operator that collapses dot(grad(u), grad(v)) into a single opaque
   symbol; the assembly knows its discrete meaning. *)
let grad_marker = "GRADGRAD"

let () =
  (* dot(grad(u), grad(v)) -> GRADGRAD marker (a registered DSL operator,
     exercising the custom-operator facility on the FEM side) *)
  Finch.Operators.define "gradgrad" (function
    | [ _; _ ] -> Expr.sym grad_marker
    | _ -> raise (Weak_error "gradgrad expects two arguments"))

let classify_term ~coef_value term =
  let factors = match term with Expr.Mul fs -> fs | f -> [ f ] in
  let has_u = List.exists (fun f -> Expr.contains_ref "u" f) factors in
  let has_v = List.exists (fun f -> Expr.contains_ref "v" f) factors in
  let has_grad = List.exists (fun f -> Expr.contains_sym grad_marker f) factors in
  if has_grad then begin
    (* coefficient = product of the numeric/coefficient factors *)
    let c =
      List.fold_left
        (fun acc f ->
          match f with
          | Expr.Sym s when s = grad_marker -> acc
          | Expr.Num x -> acc *. x
          | Expr.Sym s -> acc *. coef_value s
          | _ -> raise (Weak_error "unsupported stiffness coefficient"))
        1. factors
    in
    Bilinear_stiffness c
  end
  else if has_u && has_v then begin
    let c =
      List.fold_left
        (fun acc f ->
          match f with
          | Expr.Ref (("u" | "v"), _, _) -> acc
          | Expr.Num x -> acc *. x
          | Expr.Sym s -> acc *. coef_value s
          | _ -> raise (Weak_error "unsupported mass coefficient"))
        1. factors
    in
    Bilinear_mass c
  end
  else if has_v && not has_u then begin
    (* load density: everything except the test function, evaluated at a
       spatial point *)
    let density = Expr.subst_ref "v" (fun _ _ -> Expr.one) term in
    let f pos =
      Expr.eval
        ~env_sym:(fun s ->
          match s with
          | "x" -> pos.(0)
          | "y" -> pos.(1)
          | "pi" -> Float.pi
          | s -> coef_value s)
        ~env_ref:(fun name _ _ ->
          raise (Weak_error ("load density references entity " ^ name)))
        density
    in
    Linear_load f
  end
  else raise (Weak_error "term involves the trial function without the test function")

(* Parse a weak form such as
     "alpha * gradgrad(u, v) + c * u * v - f(x,y)-style source * v"
   [coef_value] resolves named scalar coefficients. *)
let parse_form ?(coef_value = fun s -> raise (Weak_error ("unknown coefficient " ^ s)))
    text =
  let parsed =
    try Parser.parse text
    with Parser.Parse_error m -> raise (Weak_error ("parse error: " ^ m))
  in
  let resolved = Finch.Transform.resolve_vars [ "u"; "v" ] parsed in
  let expanded = Simplify.expand (Finch.Operators.expand resolved) in
  let terms = Simplify.terms expanded in
  let stiffness = ref 0. and mass = ref 0. in
  let loads = ref [] in
  let nb = ref 0 and nl = ref 0 in
  List.iter
    (fun t ->
      match classify_term ~coef_value t with
      | Bilinear_stiffness c ->
        incr nb;
        stiffness := !stiffness +. c
      | Bilinear_mass c ->
        incr nb;
        mass := !mass +. c
      | Linear_load f ->
        incr nl;
        loads := f :: !loads)
    terms;
  let loads = !loads in
  {
    stiffness = !stiffness;
    mass = !mass;
    load = (fun pos -> List.fold_left (fun acc f -> acc +. f pos) 0. loads);
    bilinear_terms = !nb;
    linear_terms = !nl;
  }

(* report in the paper's style *)
let report form =
  Printf.sprintf
    "bilinear terms: %d (stiffness coefficient %g, mass coefficient %g)\n\
     linear terms: %d"
    form.bilinear_terms form.stiffness form.mass form.linear_terms

(* ------------------------------------------------------------------ *)
(* Drivers                                                              *)
(* ------------------------------------------------------------------ *)

(* Steady problem: stiffness-weighted Poisson/Helmholtz
     -c Laplace(u) + m u = f,  u = g on the Dirichlet boundary.
   The weak form's sign convention: the form IS the left-hand side with
   the load moved to the right (load terms enter the string negated, like
   the FVM convention). *)
let node_pos (sp : Assembly.space) v =
  [| sp.Assembly.mesh.Fvm.Mesh.coords.(v * 2);
     sp.Assembly.mesh.Fvm.Mesh.coords.((v * 2) + 1) |]

let solve_steady sp (form : form) ~dirichlet_regions ~dirichlet_value =
  if form.stiffness <= 0. && form.mass <= 0. then
    raise (Weak_error "form has no positive bilinear part");
  let a = Assembly.assemble_operator sp ~stiffness:form.stiffness ~mass:form.mass in
  let b = Assembly.assemble_load sp (fun pos -> -.form.load pos) in
  let marked = Assembly.boundary_nodes sp ~regions:dirichlet_regions in
  let a =
    Assembly.apply_dirichlet a b ~marked
      ~value:(fun v -> dirichlet_value (node_pos sp v))
  in
  let x = Array.make sp.Assembly.nnodes 0. in
  let stats = La.Solvers.cg a ~b ~x in
  if not stats.La.Solvers.converged then
    raise
      (Weak_error
         (Printf.sprintf "CG did not converge (%d iters, residual %g)"
            stats.La.Solvers.iterations stats.La.Solvers.residual));
  x, stats

(* Transient heat equation  u_t = alpha Laplace(u) + f  with backward
   Euler: (M + dt alpha K) u' = M u + dt F. *)
let solve_heat sp ~alpha ~source ~dirichlet_regions ~dirichlet_value ~dt ~nsteps
    ~initial =
  let k = Assembly.assemble_operator sp ~stiffness:1.0 ~mass:0. in
  let m = Assembly.assemble_operator sp ~stiffness:0. ~mass:1.0 in
  let sys = Assembly.assemble_operator sp ~stiffness:(dt *. alpha) ~mass:1.0 in
  ignore k;
  let n = sp.Assembly.nnodes in
  let u =
    Array.init n (fun v ->
        initial
          [| sp.Assembly.mesh.Fvm.Mesh.coords.(v * 2);
             sp.Assembly.mesh.Fvm.Mesh.coords.((v * 2) + 1) |])
  in
  let load = Assembly.assemble_load sp source in
  let marked = Assembly.boundary_nodes sp ~regions:dirichlet_regions in
  for _ = 1 to nsteps do
    let b = La.Csr.mul m u in
    for i = 0 to n - 1 do
      b.(i) <- b.(i) +. (dt *. load.(i))
    done;
    let sys' =
      Assembly.apply_dirichlet sys b ~marked
        ~value:(fun v -> dirichlet_value (node_pos sp v))
    in
    let stats = La.Solvers.cg sys' ~b ~x:u in
    if not stats.La.Solvers.converged then
      raise (Weak_error "heat step: CG did not converge")
  done;
  u
