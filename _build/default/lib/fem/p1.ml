(* Linear (P1) triangular finite elements.

   Shape functions on a triangle with vertices p1, p2, p3 are the
   barycentric coordinates; their gradients are constant per element,
   which makes the local stiffness matrix a closed form and the local
   mass matrix the classic (area/12) * [2 1 1; 1 2 1; 1 1 2]. *)

type element = {
  verts : int array;        (* 3 vertex ids *)
  area : float;
  grads : float array array;(* 3 gradients, 2 components each *)
  centroid : float array;
}

(* element geometry from vertex coordinates *)
let element_of coords verts =
  let x i = coords.((verts.(i) * 2) + 0) and y i = coords.((verts.(i) * 2) + 1) in
  let x1 = x 0 and y1 = y 0 in
  let x2 = x 1 and y2 = y 1 in
  let x3 = x 2 and y3 = y 2 in
  let det = ((x2 -. x1) *. (y3 -. y1)) -. ((x3 -. x1) *. (y2 -. y1)) in
  if Float.abs det < 1e-300 then invalid_arg "P1.element_of: degenerate triangle";
  let area = Float.abs det /. 2. in
  (* grad of barycentric lambda_i: perpendicular to the opposite edge *)
  let grads =
    [| [| (y2 -. y3) /. det; (x3 -. x2) /. det |];
       [| (y3 -. y1) /. det; (x1 -. x3) /. det |];
       [| (y1 -. y2) /. det; (x2 -. x1) /. det |] |]
  in
  {
    verts = Array.copy verts;
    area;
    grads;
    centroid = [| (x1 +. x2 +. x3) /. 3.; (y1 +. y2 +. y3) /. 3. |];
  }

(* local stiffness: K_ij = area * (grad_i . grad_j) *)
let local_stiffness e =
  Array.init 3 (fun i ->
      Array.init 3 (fun j ->
          e.area
          *. ((e.grads.(i).(0) *. e.grads.(j).(0))
              +. (e.grads.(i).(1) *. e.grads.(j).(1)))))

(* local (consistent) mass: M_ij = area/12 * (1 + delta_ij) *)
let local_mass e =
  Array.init 3 (fun i ->
      Array.init 3 (fun j -> e.area /. 12. *. if i = j then 2. else 1.))

(* local load for a source evaluated at the centroid (one-point rule,
   exact for constant sources and O(h^2) otherwise) *)
let local_load e f = Array.make 3 (e.area /. 3. *. f e.centroid)
