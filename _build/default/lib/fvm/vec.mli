(** Small dense-vector helpers for mesh geometry (dimension 1-3).
    Vectors are plain float arrays of length [dim]. *)

val dot : float array -> float array -> float
val norm : float array -> float
val scale : float -> float array -> float array
val add : float array -> float array -> float array
val sub : float array -> float array -> float array

val normalize : float array -> float array
(** Raises [Invalid_argument] on the zero vector. *)

val reflect : float array -> float array -> float array
(** [reflect v n] is v - 2 (v.n) n for unit normal [n] — specular
    reflection, used by symmetry boundary conditions. *)

val equal_eps : float -> float array -> float array -> bool
