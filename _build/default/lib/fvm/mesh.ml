(* Finite-volume mesh representation.

   Storage is struct-of-arrays for the hot paths (flux loops touch
   [face_cell1]/[face_cell2]/[face_normal]/[face_area] for every face of
   every cell each step).  Faces are oriented: the normal points out of
   [cell1] into [cell2]; boundary faces have [cell2 = -1] and a positive
   boundary-region id. *)

type t = {
  dim : int;
  ncells : int;
  nfaces : int;
  nvertices : int;
  coords : float array;          (* nvertices * dim vertex coordinates *)
  cell_vertices : int array array;
  cell_centroid : float array;   (* ncells * dim *)
  cell_volume : float array;     (* ncells; area in 2-D, length in 1-D *)
  cell_faces : int array array;  (* face ids per cell *)
  face_cell1 : int array;
  face_cell2 : int array;        (* -1 on the boundary *)
  face_area : float array;       (* length in 2-D, 1.0 in 1-D *)
  face_normal : float array;     (* nfaces * dim, unit, outward from cell1 *)
  face_centroid : float array;   (* nfaces * dim *)
  face_bid : int array;          (* 0 interior, >0 boundary region id *)
  boundary_faces : int array;    (* ids of all boundary faces *)
}

let dim m = m.dim
let ncells m = m.ncells
let nfaces m = m.nfaces

let cell_centroid m c = Array.init m.dim (fun k -> m.cell_centroid.((c * m.dim) + k))
let face_centroid m f = Array.init m.dim (fun k -> m.face_centroid.((f * m.dim) + k))
let face_normal m f = Array.init m.dim (fun k -> m.face_normal.((f * m.dim) + k))

let is_boundary_face m f = m.face_bid.(f) > 0

(* Neighbour of [c] across face [f]; -1 if [f] is a boundary face. *)
let neighbour m f c =
  if m.face_cell1.(f) = c then m.face_cell2.(f)
  else m.face_cell1.(f)

(* Sign of the stored normal as seen from cell [c]: +1 if it points out of
   [c] (i.e. [c] owns the face), -1 otherwise. *)
let normal_sign m f c = if m.face_cell1.(f) = c then 1. else -1.

let boundary_regions m =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun f ->
      let b = m.face_bid.(f) in
      if b > 0 && not (Hashtbl.mem tbl b) then Hashtbl.add tbl b ())
    m.boundary_faces;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let faces_of_region m bid =
  Array.to_list m.boundary_faces
  |> List.filter (fun f -> m.face_bid.(f) = bid)
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Construction from cell-vertex connectivity (1-D and 2-D).           *)
(* ------------------------------------------------------------------ *)

(* Shoelace area and centroid of a polygon given CCW vertex ids. *)
let polygon_area_centroid coords dim verts =
  assert (dim = 2);
  let n = Array.length verts in
  let x i = coords.((verts.(i) * 2) + 0) and y i = coords.((verts.(i) * 2) + 1) in
  let a = ref 0. and cx = ref 0. and cy = ref 0. in
  for i = 0 to n - 1 do
    let j = (i + 1) mod n in
    let cross = (x i *. y j) -. (x j *. y i) in
    a := !a +. cross;
    cx := !cx +. ((x i +. x j) *. cross);
    cy := !cy +. ((y i +. y j) *. cross)
  done;
  let a = !a /. 2. in
  if Float.abs a < 1e-300 then invalid_arg "Mesh: degenerate cell";
  let cx = !cx /. (6. *. a) and cy = !cy /. (6. *. a) in
  Float.abs a, [| cx; cy |]

(* Build a 2-D mesh from vertex coordinates and per-cell CCW vertex lists.
   [classify] maps a boundary face's centroid and outward normal to a
   boundary-region id (>= 1). *)
let of_cells_2d ~coords ~cells ~classify =
  let dim = 2 in
  let nvertices = Array.length coords / dim in
  let ncells = Array.length cells in
  let cell_centroid = Array.make (ncells * dim) 0. in
  let cell_volume = Array.make ncells 0. in
  Array.iteri
    (fun c verts ->
      let a, ctr = polygon_area_centroid coords dim verts in
      cell_volume.(c) <- a;
      cell_centroid.((c * dim) + 0) <- ctr.(0);
      cell_centroid.((c * dim) + 1) <- ctr.(1))
    cells;
  (* discover faces by hashing sorted edge endpoints *)
  let edge_tbl : (int * int, int) Hashtbl.t = Hashtbl.create (ncells * 4) in
  let face_cell1 = ref [] and face_cell2 = Hashtbl.create (ncells * 4) in
  let face_verts = ref [] in
  let nfaces = ref 0 in
  let cell_faces = Array.make ncells [] in
  Array.iteri
    (fun c verts ->
      let n = Array.length verts in
      for i = 0 to n - 1 do
        let v1 = verts.(i) and v2 = verts.((i + 1) mod n) in
        let key = if v1 < v2 then v1, v2 else v2, v1 in
        match Hashtbl.find_opt edge_tbl key with
        | Some f ->
          Hashtbl.replace face_cell2 f c;
          cell_faces.(c) <- f :: cell_faces.(c)
        | None ->
          let f = !nfaces in
          incr nfaces;
          Hashtbl.add edge_tbl key f;
          face_cell1 := (f, c) :: !face_cell1;
          face_verts := (f, (v1, v2)) :: !face_verts;
          cell_faces.(c) <- f :: cell_faces.(c)
      done)
    cells;
  let nf = !nfaces in
  let fc1 = Array.make nf (-1) and fc2 = Array.make nf (-1) in
  List.iter (fun (f, c) -> fc1.(f) <- c) !face_cell1;
  Hashtbl.iter (fun f c -> fc2.(f) <- c) face_cell2;
  let fverts = Array.make nf (0, 0) in
  List.iter (fun (f, vv) -> fverts.(f) <- vv) !face_verts;
  let face_area = Array.make nf 0. in
  let face_normal = Array.make (nf * dim) 0. in
  let face_centroid_a = Array.make (nf * dim) 0. in
  let face_bid = Array.make nf 0 in
  for f = 0 to nf - 1 do
    let v1, v2 = fverts.(f) in
    let x1 = coords.((v1 * 2) + 0) and y1 = coords.((v1 * 2) + 1) in
    let x2 = coords.((v2 * 2) + 0) and y2 = coords.((v2 * 2) + 1) in
    let ex = x2 -. x1 and ey = y2 -. y1 in
    let len = sqrt ((ex *. ex) +. (ey *. ey)) in
    face_area.(f) <- len;
    face_centroid_a.((f * 2) + 0) <- (x1 +. x2) /. 2.;
    face_centroid_a.((f * 2) + 1) <- (y1 +. y2) /. 2.;
    (* edge rotated by -90 degrees, then oriented outward from cell1 *)
    let nx = ey /. len and ny = -.ex /. len in
    let c1 = fc1.(f) in
    let dx = face_centroid_a.((f * 2) + 0) -. cell_centroid.((c1 * 2) + 0) in
    let dy = face_centroid_a.((f * 2) + 1) -. cell_centroid.((c1 * 2) + 1) in
    let s = if (nx *. dx) +. (ny *. dy) >= 0. then 1. else -1. in
    face_normal.((f * 2) + 0) <- s *. nx;
    face_normal.((f * 2) + 1) <- s *. ny;
    if fc2.(f) < 0 then begin
      let ctr = [| face_centroid_a.(f * 2); face_centroid_a.((f * 2) + 1) |] in
      let nrm = [| face_normal.(f * 2); face_normal.((f * 2) + 1) |] in
      let bid = classify ctr nrm in
      if bid < 1 then invalid_arg "Mesh: boundary classifier returned id < 1";
      face_bid.(f) <- bid
    end
  done;
  let boundary_faces =
    Array.of_list
      (List.filter (fun f -> face_bid.(f) > 0) (List.init nf (fun f -> f)))
  in
  {
    dim;
    ncells;
    nfaces = nf;
    nvertices;
    coords;
    cell_vertices = cells;
    cell_centroid;
    cell_volume;
    cell_faces = Array.map (fun l -> Array.of_list (List.rev l)) cell_faces;
    face_cell1 = fc1;
    face_cell2 = fc2;
    face_area;
    face_normal;
    face_centroid = face_centroid_a;
    face_bid;
    boundary_faces;
  }

(* 1-D mesh on [0, length] with [n] uniform cells.  Faces are points with
   unit "area"; region 1 is the left end, region 2 the right end. *)
let line ~n ~length =
  if n < 1 then invalid_arg "Mesh.line: need at least one cell";
  let dim = 1 in
  let dx = length /. float_of_int n in
  let coords = Array.init (n + 1) (fun i -> float_of_int i *. dx) in
  let ncells = n and nfaces = n + 1 in
  let cell_centroid = Array.init n (fun c -> (float_of_int c +. 0.5) *. dx) in
  let cell_volume = Array.make n dx in
  let face_cell1 = Array.init nfaces (fun f -> if f = 0 then 0 else f - 1) in
  let face_cell2 =
    Array.init nfaces (fun f -> if f = 0 || f = n then -1 else f)
  in
  let face_area = Array.make nfaces 1. in
  let face_normal =
    Array.init nfaces (fun f -> if f = 0 then -1. else 1.)
  in
  let face_centroid = Array.copy coords in
  let face_bid =
    Array.init nfaces (fun f -> if f = 0 then 1 else if f = n then 2 else 0)
  in
  let cell_faces = Array.init n (fun c -> [| c; c + 1 |]) in
  {
    dim;
    ncells;
    nfaces;
    nvertices = n + 1;
    coords;
    cell_vertices = Array.init n (fun c -> [| c; c + 1 |]);
    cell_centroid;
    cell_volume;
    cell_faces;
    face_cell1;
    face_cell2;
    face_area;
    face_normal;
    face_centroid;
    face_bid;
    boundary_faces = [| 0; n |];
  }

(* ------------------------------------------------------------------ *)
(* Consistency checking (used by tests and after Gmsh import).          *)
(* ------------------------------------------------------------------ *)

type check_error = string

let check m : (unit, check_error list) result =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if m.ncells < 1 then err "mesh has no cells";
  for f = 0 to m.nfaces - 1 do
    if m.face_cell1.(f) < 0 || m.face_cell1.(f) >= m.ncells then
      err "face %d: bad cell1 %d" f m.face_cell1.(f);
    if m.face_cell2.(f) >= m.ncells then err "face %d: bad cell2" f;
    if m.face_cell2.(f) < 0 && m.face_bid.(f) <= 0 then
      err "face %d: boundary face without region id" f;
    if m.face_cell2.(f) >= 0 && m.face_bid.(f) <> 0 then
      err "face %d: interior face with region id %d" f m.face_bid.(f);
    if m.face_area.(f) <= 0. then err "face %d: non-positive area" f;
    let n2 = ref 0. in
    for k = 0 to m.dim - 1 do
      let v = m.face_normal.((f * m.dim) + k) in
      n2 := !n2 +. (v *. v)
    done;
    if Float.abs (!n2 -. 1.) > 1e-9 then err "face %d: non-unit normal" f
  done;
  for c = 0 to m.ncells - 1 do
    if m.cell_volume.(c) <= 0. then err "cell %d: non-positive volume" c;
    (* divergence-free constant field: sum of outward area-weighted normals
       over each cell's faces must vanish (closed polygon) *)
    let acc = Array.make m.dim 0. in
    Array.iter
      (fun f ->
        let s = normal_sign m f c in
        for k = 0 to m.dim - 1 do
          acc.(k) <- acc.(k) +. (s *. m.face_area.(f) *. m.face_normal.((f * m.dim) + k))
        done)
      m.cell_faces.(c);
    Array.iteri
      (fun k v ->
        if Float.abs v > 1e-9 *. (1. +. m.cell_volume.(c)) then
          err "cell %d: faces do not close (component %d residual %g)" c k v)
      acc
  done;
  match !errs with [] -> Ok () | l -> Error (List.rev l)

let total_volume m = Array.fold_left ( +. ) 0. m.cell_volume
