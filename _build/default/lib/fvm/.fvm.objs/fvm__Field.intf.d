lib/fvm/field.mli: Bigarray Mesh
