lib/fvm/mesh.mli:
