lib/fvm/partition.mli: Mesh
