lib/fvm/mesh_gen.mli: Mesh
