lib/fvm/field.ml: Array Bigarray Float Mesh Printf
