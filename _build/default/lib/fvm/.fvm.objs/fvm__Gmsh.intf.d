lib/fvm/gmsh.mli: Mesh
