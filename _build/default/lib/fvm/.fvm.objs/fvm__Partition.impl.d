lib/fvm/partition.ml: Array Float List Mesh
