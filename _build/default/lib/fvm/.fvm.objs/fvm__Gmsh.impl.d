lib/fvm/gmsh.ml: Array Buffer Float Hashtbl List Mesh Printf String
