lib/fvm/halo.mli: Mesh Partition
