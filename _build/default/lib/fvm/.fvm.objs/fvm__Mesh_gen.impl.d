lib/fvm/mesh_gen.ml: Array List Mesh Printf
