lib/fvm/mesh.ml: Array Float Hashtbl List Printf
