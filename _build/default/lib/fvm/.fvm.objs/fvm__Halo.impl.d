lib/fvm/halo.ml: Array Hashtbl List Mesh Partition
