lib/fvm/vec.mli:
