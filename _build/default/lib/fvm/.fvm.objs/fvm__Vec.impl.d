lib/fvm/vec.ml: Array Float
