(* Mesh and index-space partitioning (METIS substitute).

   Two partitioners are provided:
   - recursive coordinate bisection over cell centroids (for meshes), and
   - contiguous block partitioning of an index range (for the paper's
     band-parallel strategy, where equations rather than cells are split). *)

type t = {
  nparts : int;
  owner : int array; (* item -> rank *)
}

let nparts p = p.nparts
let owner p i = p.owner.(i)
let nitems p = Array.length p.owner

let cells_of_rank p r =
  let acc = ref [] in
  for i = Array.length p.owner - 1 downto 0 do
    if p.owner.(i) = r then acc := i :: !acc
  done;
  Array.of_list !acc

let counts p =
  let c = Array.make p.nparts 0 in
  Array.iter (fun r -> c.(r) <- c.(r) + 1) p.owner;
  c

(* max/avg item count over ranks; 1.0 is perfect. *)
let imbalance p =
  let c = counts p in
  let mx = Array.fold_left max 0 c in
  let avg = float_of_int (Array.length p.owner) /. float_of_int p.nparts in
  float_of_int mx /. avg

(* Contiguous block partition of [0, nitems): block sizes differ by at most
   one.  Used for bands (and for direction-parallel experiments). *)
let blocks ~nitems ~nparts =
  if nparts < 1 || nitems < 1 then invalid_arg "Partition.blocks";
  if nparts > nitems then
    invalid_arg "Partition.blocks: more parts than items";
  let owner = Array.make nitems 0 in
  let base = nitems / nparts and extra = nitems mod nparts in
  let i = ref 0 in
  for r = 0 to nparts - 1 do
    let sz = base + if r < extra then 1 else 0 in
    for _ = 1 to sz do
      owner.(!i) <- r;
      incr i
    done
  done;
  { nparts; owner }

let block_range ~nitems ~nparts r =
  let base = nitems / nparts and extra = nitems mod nparts in
  let start = (r * base) + min r extra in
  let sz = base + if r < extra then 1 else 0 in
  start, sz

(* Recursive coordinate bisection: split the item set along its widest
   coordinate extent at the weighted median, recursing until [nparts]
   pieces exist.  Handles non-power-of-two counts by splitting part counts
   proportionally. *)
let rcb ~coords ~dim ~nitems ~nparts =
  if nparts < 1 || nitems < 1 then invalid_arg "Partition.rcb";
  if nparts > nitems then invalid_arg "Partition.rcb: more parts than items";
  let owner = Array.make nitems 0 in
  let rec go items rank0 nparts =
    if nparts = 1 then
      Array.iter (fun i -> owner.(i) <- rank0) items
    else begin
      (* widest axis *)
      let lo = Array.make dim infinity and hi = Array.make dim neg_infinity in
      Array.iter
        (fun i ->
          for k = 0 to dim - 1 do
            let x = coords.((i * dim) + k) in
            if x < lo.(k) then lo.(k) <- x;
            if x > hi.(k) then hi.(k) <- x
          done)
        items;
      let axis = ref 0 and best = ref neg_infinity in
      for k = 0 to dim - 1 do
        let w = hi.(k) -. lo.(k) in
        if w > !best then begin
          best := w;
          axis := k
        end
      done;
      let axis = !axis in
      let sorted = Array.copy items in
      Array.sort
        (fun a b ->
          let c = Float.compare coords.((a * dim) + axis) coords.((b * dim) + axis) in
          if c <> 0 then c else compare a b)
        sorted;
      let np_left = nparts / 2 in
      let np_right = nparts - np_left in
      let n = Array.length sorted in
      let cut = n * np_left / nparts in
      let left = Array.sub sorted 0 cut in
      let right = Array.sub sorted cut (n - cut) in
      go left rank0 np_left;
      go right (rank0 + np_left) np_right
    end
  in
  go (Array.init nitems (fun i -> i)) 0 nparts;
  { nparts; owner }

let rcb_mesh (m : Mesh.t) ~nparts =
  rcb ~coords:m.Mesh.cell_centroid ~dim:m.Mesh.dim ~nitems:m.Mesh.ncells ~nparts

(* Number of interior mesh faces whose two cells live on different ranks —
   the communication volume proxy for cell-based partitioning. *)
let edge_cut (m : Mesh.t) p =
  let cut = ref 0 in
  for f = 0 to m.Mesh.nfaces - 1 do
    let c2 = m.Mesh.face_cell2.(f) in
    if c2 >= 0 && p.owner.(m.Mesh.face_cell1.(f)) <> p.owner.(c2) then incr cut
  done;
  !cut

(* For each rank, the set of neighbouring ranks it shares cut faces with. *)
let rank_adjacency (m : Mesh.t) p =
  let adj = Array.make p.nparts [] in
  let add r r' = if not (List.mem r' adj.(r)) then adj.(r) <- r' :: adj.(r) in
  for f = 0 to m.Mesh.nfaces - 1 do
    let c2 = m.Mesh.face_cell2.(f) in
    if c2 >= 0 then begin
      let r1 = p.owner.(m.Mesh.face_cell1.(f)) and r2 = p.owner.(c2) in
      if r1 <> r2 then begin
        add r1 r2;
        add r2 r1
      end
    end
  done;
  Array.map (List.sort compare) adj
