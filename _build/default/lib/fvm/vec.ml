(* Small dense vector helpers used by mesh geometry (dimension 1-3).
   Vectors are plain float arrays of length [dim]. *)

let dot a b =
  let n = Array.length a in
  let s = ref 0. in
  for i = 0 to n - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm a = sqrt (dot a a)

let scale c a = Array.map (fun x -> c *. x) a

let add a b = Array.mapi (fun i x -> x +. b.(i)) a

let sub a b = Array.mapi (fun i x -> x -. b.(i)) a

let normalize a =
  let n = norm a in
  if n = 0. then invalid_arg "Vec.normalize: zero vector";
  scale (1. /. n) a

(* Reflect vector [v] about a plane with unit normal [n]:
   v - 2 (v.n) n.  Used by specular boundary conditions. *)
let reflect v n =
  let c = 2. *. dot v n in
  Array.mapi (fun i x -> x -. (c *. n.(i))) v

let equal_eps eps a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a b
