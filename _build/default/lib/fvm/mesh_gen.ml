(* Internal mesh generation utility (the DSL's "simple generation utility").

   Structured rectangles/boxes of uniform cells.  Boundary regions follow the
   paper's numbering for the BTE demonstration:

     2-D: 1 = bottom (y = 0), 2 = right, 3 = top, 4 = left
     3-D: 1 = bottom (z = 0), 2 = top, 3..6 = y=0, x=Lx, y=Ly, x=0

   A custom classifier can override this. *)

let default_classify_2d ~lx ~ly ctr nrm =
  let eps = 1e-9 *. (lx +. ly) in
  ignore ctr;
  if nrm.(1) < -0.5 then 1
  else if nrm.(0) > 0.5 then 2
  else if nrm.(1) > 0.5 then 3
  else if nrm.(0) < -0.5 then 4
  else invalid_arg (Printf.sprintf "unclassifiable boundary normal (eps=%g)" eps)

(* Uniform [nx] x [ny] grid of quadrilateral cells on [0,lx] x [0,ly]. *)
let rectangle ?classify ~nx ~ny ~lx ~ly () =
  if nx < 1 || ny < 1 then invalid_arg "Mesh_gen.rectangle: empty grid";
  let classify =
    match classify with Some f -> f | None -> default_classify_2d ~lx ~ly
  in
  let nvx = nx + 1 and nvy = ny + 1 in
  let coords = Array.make (nvx * nvy * 2) 0. in
  let dx = lx /. float_of_int nx and dy = ly /. float_of_int ny in
  for j = 0 to nvy - 1 do
    for i = 0 to nvx - 1 do
      let v = (j * nvx) + i in
      coords.((v * 2) + 0) <- float_of_int i *. dx;
      coords.((v * 2) + 1) <- float_of_int j *. dy
    done
  done;
  let cells =
    Array.init (nx * ny) (fun c ->
        let i = c mod nx and j = c / nx in
        let v00 = (j * nvx) + i in
        let v10 = v00 + 1 in
        let v01 = v00 + nvx in
        let v11 = v01 + 1 in
        (* counter-clockwise *)
        [| v00; v10; v11; v01 |])
  in
  Mesh.of_cells_2d ~coords ~cells ~classify

(* Cell id at structured position (i, j) of an [nx] x [ny] rectangle. *)
let cell_at ~nx i j = (j * nx) + i

(* A strip of triangles: each rectangle cell split along its diagonal.
   Exercises the general polygonal path of the mesh builder. *)
let triangulated_rectangle ?classify ~nx ~ny ~lx ~ly () =
  if nx < 1 || ny < 1 then invalid_arg "Mesh_gen.triangulated_rectangle: empty grid";
  let classify =
    match classify with Some f -> f | None -> default_classify_2d ~lx ~ly
  in
  let nvx = nx + 1 and nvy = ny + 1 in
  let coords = Array.make (nvx * nvy * 2) 0. in
  let dx = lx /. float_of_int nx and dy = ly /. float_of_int ny in
  for j = 0 to nvy - 1 do
    for i = 0 to nvx - 1 do
      let v = (j * nvx) + i in
      coords.((v * 2) + 0) <- float_of_int i *. dx;
      coords.((v * 2) + 1) <- float_of_int j *. dy
    done
  done;
  let cells =
    Array.init (nx * ny * 2) (fun t ->
        let c = t / 2 and half = t mod 2 in
        let i = c mod nx and j = c / nx in
        let v00 = (j * nvx) + i in
        let v10 = v00 + 1 in
        let v01 = v00 + nvx in
        let v11 = v01 + 1 in
        if half = 0 then [| v00; v10; v11 |] else [| v00; v11; v01 |])
  in
  Mesh.of_cells_2d ~coords ~cells ~classify

(* 1-D re-export for convenience. *)
let line = Mesh.line

(* Uniform [nx] x [ny] x [nz] box of hexahedral cells on
   [0,lx] x [0,ly] x [0,lz].  Faces are axis-aligned; boundary regions:
   1 = bottom (z=0), 2 = top (z=lz), 3 = y=0, 4 = x=lx, 5 = y=ly, 6 = x=0.
   Built directly (no polygon machinery); supports the paper's coarse 3-D
   runs. *)
let box ~nx ~ny ~nz ~lx ~ly ~lz () =
  if nx < 1 || ny < 1 || nz < 1 then invalid_arg "Mesh_gen.box: empty grid";
  let dim = 3 in
  let dx = lx /. float_of_int nx
  and dy = ly /. float_of_int ny
  and dz = lz /. float_of_int nz in
  let ncells = nx * ny * nz in
  let cell_id i j k = (((k * ny) + j) * nx) + i in
  let cell_centroid = Array.make (ncells * dim) 0. in
  let cell_volume = Array.make ncells (dx *. dy *. dz) in
  for k = 0 to nz - 1 do
    for j = 0 to ny - 1 do
      for i = 0 to nx - 1 do
        let c = cell_id i j k in
        cell_centroid.((c * 3) + 0) <- (float_of_int i +. 0.5) *. dx;
        cell_centroid.((c * 3) + 1) <- (float_of_int j +. 0.5) *. dy;
        cell_centroid.((c * 3) + 2) <- (float_of_int k +. 0.5) *. dz
      done
    done
  done;
  (* faces: x-normal (nx+1)*ny*nz, y-normal nx*(ny+1)*nz, z-normal nx*ny*(nz+1) *)
  let nfx = (nx + 1) * ny * nz in
  let nfy = nx * (ny + 1) * nz in
  let nfz = nx * ny * (nz + 1) in
  let nfaces = nfx + nfy + nfz in
  let face_cell1 = Array.make nfaces (-1) in
  let face_cell2 = Array.make nfaces (-1) in
  let face_area = Array.make nfaces 0. in
  let face_normal = Array.make (nfaces * dim) 0. in
  let face_centroid = Array.make (nfaces * dim) 0. in
  let face_bid = Array.make nfaces 0 in
  let cell_faces = Array.make ncells [] in
  let add_face f ~c1 ~c2 ~area ~normal ~centroid ~bid =
    face_cell1.(f) <- c1;
    face_cell2.(f) <- c2;
    face_area.(f) <- area;
    for m = 0 to 2 do
      face_normal.((f * 3) + m) <- normal.(m);
      face_centroid.((f * 3) + m) <- centroid.(m)
    done;
    face_bid.(f) <- bid;
    cell_faces.(c1) <- f :: cell_faces.(c1);
    if c2 >= 0 then cell_faces.(c2) <- f :: cell_faces.(c2)
  in
  (* x-normal faces at plane i (0..nx) between cells (i-1,j,k) and (i,j,k);
     the stored normal points in +x, so cell1 is the low-x cell when it
     exists (interior and x=lx boundary); on the x=0 boundary the owner is
     the high-x cell and the normal points in -x *)
  let f = ref 0 in
  for k = 0 to nz - 1 do
    for j = 0 to ny - 1 do
      for i = 0 to nx do
        let centroid =
          [| float_of_int i *. dx; (float_of_int j +. 0.5) *. dy;
             (float_of_int k +. 0.5) *. dz |]
        in
        (if i = 0 then
           add_face !f ~c1:(cell_id 0 j k) ~c2:(-1) ~area:(dy *. dz)
             ~normal:[| -1.; 0.; 0. |] ~centroid ~bid:6
         else if i = nx then
           add_face !f ~c1:(cell_id (nx - 1) j k) ~c2:(-1) ~area:(dy *. dz)
             ~normal:[| 1.; 0.; 0. |] ~centroid ~bid:4
         else
           add_face !f ~c1:(cell_id (i - 1) j k) ~c2:(cell_id i j k)
             ~area:(dy *. dz) ~normal:[| 1.; 0.; 0. |] ~centroid ~bid:0);
        incr f
      done
    done
  done;
  for k = 0 to nz - 1 do
    for j = 0 to ny do
      for i = 0 to nx - 1 do
        let centroid =
          [| (float_of_int i +. 0.5) *. dx; float_of_int j *. dy;
             (float_of_int k +. 0.5) *. dz |]
        in
        (if j = 0 then
           add_face !f ~c1:(cell_id i 0 k) ~c2:(-1) ~area:(dx *. dz)
             ~normal:[| 0.; -1.; 0. |] ~centroid ~bid:3
         else if j = ny then
           add_face !f ~c1:(cell_id i (ny - 1) k) ~c2:(-1) ~area:(dx *. dz)
             ~normal:[| 0.; 1.; 0. |] ~centroid ~bid:5
         else
           add_face !f ~c1:(cell_id i (j - 1) k) ~c2:(cell_id i j k)
             ~area:(dx *. dz) ~normal:[| 0.; 1.; 0. |] ~centroid ~bid:0);
        incr f
      done
    done
  done;
  for k = 0 to nz do
    for j = 0 to ny - 1 do
      for i = 0 to nx - 1 do
        let centroid =
          [| (float_of_int i +. 0.5) *. dx; (float_of_int j +. 0.5) *. dy;
             float_of_int k *. dz |]
        in
        (if k = 0 then
           add_face !f ~c1:(cell_id i j 0) ~c2:(-1) ~area:(dx *. dy)
             ~normal:[| 0.; 0.; -1. |] ~centroid ~bid:1
         else if k = nz then
           add_face !f ~c1:(cell_id i j (nz - 1)) ~c2:(-1) ~area:(dx *. dy)
             ~normal:[| 0.; 0.; 1. |] ~centroid ~bid:2
         else
           add_face !f ~c1:(cell_id i j (k - 1)) ~c2:(cell_id i j k)
             ~area:(dx *. dy) ~normal:[| 0.; 0.; 1. |] ~centroid ~bid:0);
        incr f
      done
    done
  done;
  assert (!f = nfaces);
  let boundary_faces =
    Array.of_list
      (List.filter (fun f -> face_bid.(f) > 0) (List.init nfaces (fun f -> f)))
  in
  (* vertices of the box grid (for completeness; not used by the solver) *)
  let nvx = nx + 1 and nvy = ny + 1 and nvz = nz + 1 in
  let coords = Array.make (nvx * nvy * nvz * 3) 0. in
  for k = 0 to nvz - 1 do
    for j = 0 to nvy - 1 do
      for i = 0 to nvx - 1 do
        let v = (((k * nvy) + j) * nvx) + i in
        coords.((v * 3) + 0) <- float_of_int i *. dx;
        coords.((v * 3) + 1) <- float_of_int j *. dy;
        coords.((v * 3) + 2) <- float_of_int k *. dz
      done
    done
  done;
  let vert i j k = (((k * nvy) + j) * nvx) + i in
  let cell_vertices =
    Array.init ncells (fun c ->
        let i = c mod nx and j = c / nx mod ny and k = c / (nx * ny) in
        [| vert i j k; vert (i + 1) j k; vert (i + 1) (j + 1) k;
           vert i (j + 1) k; vert i j (k + 1); vert (i + 1) j (k + 1);
           vert (i + 1) (j + 1) (k + 1); vert i (j + 1) (k + 1) |])
  in
  {
    Mesh.dim;
    ncells;
    nfaces;
    nvertices = nvx * nvy * nvz;
    coords;
    cell_vertices;
    cell_centroid;
    cell_volume;
    cell_faces = Array.map (fun l -> Array.of_list (List.rev l)) cell_faces;
    face_cell1;
    face_cell2;
    face_area;
    face_normal;
    face_centroid;
    face_bid;
    boundary_faces;
  }

(* 3-D structured cell id helper *)
let cell_at_3d ~nx ~ny i j k = (((k * ny) + j) * nx) + i
