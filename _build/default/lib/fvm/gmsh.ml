(* Gmsh MSH 2.2 ASCII reader/writer (the subset the DSL needs).

   Supported element types: 1 = 2-node line (boundary tagging),
   2 = 3-node triangle, 3 = 4-node quadrangle.  The first tag of an element
   (the physical group) is used as the boundary-region id for lines.
   Boundary faces with no matching line element fall back to region 1. *)

type parsed = {
  nodes : float array;            (* nnodes * 2, z dropped *)
  surface_cells : int array array;(* triangles and quads, 0-based vertex ids *)
  boundary_edges : ((int * int) * int) list; (* sorted vertex pair -> tag *)
}

exception Format_error of string

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun x -> x <> "")

let parse_lines lines =
  let lines = Array.of_list lines in
  let n = Array.length lines in
  let pos = ref 0 in
  let next () =
    if !pos >= n then raise (Format_error "unexpected end of file");
    let l = String.trim lines.(!pos) in
    incr pos;
    l
  in
  let find_section name =
    let rec go () =
      if !pos >= n then None
      else
        let l = String.trim lines.(!pos) in
        incr pos;
        if l = name then Some () else go ()
    in
    pos := 0;
    go ()
  in
  (* $MeshFormat *)
  (match find_section "$MeshFormat" with
   | None -> raise (Format_error "missing $MeshFormat")
   | Some () ->
     let l = next () in
     (match split_ws l with
      | v :: _ when String.length v >= 1 && v.[0] = '2' -> ()
      | v :: _ -> raise (Format_error ("unsupported MSH version " ^ v))
      | [] -> raise (Format_error "empty $MeshFormat")));
  (* $Nodes *)
  (match find_section "$Nodes" with
   | None -> raise (Format_error "missing $Nodes")
   | Some () -> ());
  let nnodes = int_of_string (next ()) in
  let nodes = Array.make (nnodes * 2) 0. in
  let id_map = Hashtbl.create nnodes in
  for i = 0 to nnodes - 1 do
    match split_ws (next ()) with
    | id :: x :: y :: _ ->
      Hashtbl.replace id_map (int_of_string id) i;
      nodes.((i * 2) + 0) <- float_of_string x;
      nodes.((i * 2) + 1) <- float_of_string y
    | _ -> raise (Format_error "bad node line")
  done;
  (* $Elements *)
  (match find_section "$Elements" with
   | None -> raise (Format_error "missing $Elements")
   | Some () -> ());
  let nelems = int_of_string (next ()) in
  let cells = ref [] and edges = ref [] in
  let node i =
    match Hashtbl.find_opt id_map i with
    | Some v -> v
    | None -> raise (Format_error (Printf.sprintf "unknown node id %d" i))
  in
  for _ = 1 to nelems do
    match List.map int_of_string (split_ws (next ())) with
    | _ :: etype :: ntags :: rest ->
      let tags, verts =
        let rec take k acc l =
          if k = 0 then List.rev acc, l
          else
            match l with
            | [] -> raise (Format_error "bad element line")
            | x :: l' -> take (k - 1) (x :: acc) l'
        in
        take ntags [] rest
      in
      let phys = match tags with t :: _ -> t | [] -> 1 in
      (match etype, verts with
       | 1, [ a; b ] ->
         let a = node a and b = node b in
         let key = if a < b then a, b else b, a in
         edges := (key, phys) :: !edges
       | 2, [ a; b; c ] -> cells := [| node a; node b; node c |] :: !cells
       | 3, [ a; b; c; d ] -> cells := [| node a; node b; node c; node d |] :: !cells
       | 15, _ -> () (* point elements: ignore *)
       | t, _ -> raise (Format_error (Printf.sprintf "unsupported element type %d" t)))
    | _ -> raise (Format_error "bad element line")
  done;
  {
    nodes;
    surface_cells = Array.of_list (List.rev !cells);
    boundary_edges = !edges;
  }

(* Ensure counter-clockwise orientation of each cell. *)
let orient_ccw coords cells =
  Array.map
    (fun verts ->
      let n = Array.length verts in
      let x i = coords.((verts.(i) * 2) + 0) and y i = coords.((verts.(i) * 2) + 1) in
      let a = ref 0. in
      for i = 0 to n - 1 do
        let j = (i + 1) mod n in
        a := !a +. ((x i *. y j) -. (x j *. y i))
      done;
      if !a < 0. then begin
        let r = Array.copy verts in
        let n = Array.length r in
        for i = 0 to n - 1 do
          r.(i) <- verts.(n - 1 - i)
        done;
        r
      end
      else verts)
    cells

let mesh_of_parsed p =
  let cells = orient_ccw p.nodes p.surface_cells in
  (* Map boundary-edge midpoints to tags so the centroid-based classifier can
     recover the region id; midpoints are computed with the same arithmetic
     as Mesh.of_cells_2d so lookups are exact. *)
  let mid_tbl = Hashtbl.create 64 in
  List.iter
    (fun ((a, b), tag) ->
      let mx = (p.nodes.(a * 2) +. p.nodes.(b * 2)) /. 2. in
      let my = (p.nodes.((a * 2) + 1) +. p.nodes.((b * 2) + 1)) /. 2. in
      Hashtbl.replace mid_tbl (mx, my) tag)
    p.boundary_edges;
  let classify ctr _nrm =
    match Hashtbl.find_opt mid_tbl (ctr.(0), ctr.(1)) with
    | Some tag when tag >= 1 -> tag
    | _ -> 1
  in
  Mesh.of_cells_2d ~coords:p.nodes ~cells ~classify

let read_string s =
  let lines = String.split_on_char '\n' s in
  mesh_of_parsed (parse_lines lines)

let read_file path =
  let ic = open_in path in
  let buf = Buffer.create 65536 in
  (try
     while true do
       Buffer.add_string buf (input_line ic);
       Buffer.add_char buf '\n'
     done
   with End_of_file -> close_in ic);
  read_string (Buffer.contents buf)

let write_string (m : Mesh.t) =
  if m.Mesh.dim <> 2 then invalid_arg "Gmsh.write_string: 2-D meshes only";
  let buf = Buffer.create 65536 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "$MeshFormat\n2.2 0 8\n$EndMeshFormat\n";
  pr "$Nodes\n%d\n" m.Mesh.nvertices;
  for v = 0 to m.Mesh.nvertices - 1 do
    pr "%d %.17g %.17g 0\n" (v + 1) m.Mesh.coords.(v * 2) m.Mesh.coords.((v * 2) + 1)
  done;
  pr "$EndNodes\n";
  let bfaces = m.Mesh.boundary_faces in
  pr "$Elements\n%d\n" (Array.length bfaces + m.Mesh.ncells);
  let eid = ref 0 in
  Array.iter
    (fun f ->
      incr eid;
      (* recover the face's endpoints from the owning cell's vertex list *)
      let c = m.Mesh.face_cell1.(f) in
      let verts = m.Mesh.cell_vertices.(c) in
      let n = Array.length verts in
      let fc = Mesh.face_centroid m f in
      let found = ref None in
      for i = 0 to n - 1 do
        let v1 = verts.(i) and v2 = verts.((i + 1) mod n) in
        let mx = (m.Mesh.coords.(v1 * 2) +. m.Mesh.coords.(v2 * 2)) /. 2. in
        let my =
          (m.Mesh.coords.((v1 * 2) + 1) +. m.Mesh.coords.((v2 * 2) + 1)) /. 2.
        in
        if Float.abs (mx -. fc.(0)) < 1e-12 && Float.abs (my -. fc.(1)) < 1e-12
        then found := Some (v1, v2)
      done;
      match !found with
      | Some (v1, v2) ->
        pr "%d 1 2 %d %d %d %d\n" !eid m.Mesh.face_bid.(f) m.Mesh.face_bid.(f)
          (v1 + 1) (v2 + 1)
      | None -> invalid_arg "Gmsh.write_string: cannot locate boundary edge")
    bfaces;
  Array.iteri
    (fun c verts ->
      incr eid;
      match Array.length verts with
      | 3 ->
        pr "%d 2 2 0 0 %d %d %d\n" !eid (verts.(0) + 1) (verts.(1) + 1)
          (verts.(2) + 1)
      | 4 ->
        pr "%d 3 2 0 0 %d %d %d %d\n" !eid (verts.(0) + 1) (verts.(1) + 1)
          (verts.(2) + 1) (verts.(3) + 1)
      | n ->
        invalid_arg (Printf.sprintf "Gmsh.write_string: %d-gon cell %d" n c))
    m.Mesh.cell_vertices;
  pr "$EndElements\n";
  Buffer.contents buf

let write_file path m =
  let oc = open_out path in
  output_string oc (write_string m);
  close_out oc
