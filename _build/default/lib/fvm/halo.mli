(** Halo (ghost-cell) exchange plans for mesh-partitioned runs.

    For each ordered rank pair, the plan lists the cells the sender owns
    that the receiver needs as ghosts (cells adjacent across cut faces). *)

type exchange = {
  from_rank : int;
  to_rank : int;
  cells : int array; (** owned by [from_rank], ghosts on [to_rank] *)
}

type t = {
  nranks : int;
  exchanges : exchange list;
  ghosts : int array array; (** ghost cells needed by each rank *)
}

val build : Mesh.t -> Partition.t -> t

val send_count : t -> int -> int
(** Cells rank [r] sends per exchange round. *)

val recv_count : t -> int -> int

val bytes_per_round : t -> int -> ncomp:int -> bytes_per:int -> int
(** Bytes moved by a rank per round (send + receive) for a field with
    [ncomp] components of [bytes_per] bytes. *)

val max_send_count : t -> int
val neighbour_ranks : t -> int -> int list
