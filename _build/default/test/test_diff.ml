(* Symbolic differentiation tests: hand-checked derivatives plus a
   numeric-vs-symbolic property check on random expressions. *)

open Finch_symbolic

let env_sym x0 = function "x" -> x0 | "a" -> 1.7 | s -> float_of_int (String.length s)
let env_ref _ _ _ = 0.4

let eval_at x0 e = Expr.eval ~env_sym:(env_sym x0) ~env_ref e

let d s = Diff.d "x" (Parser.parse s)

let check_deriv_at name expr x0 =
  let e = Parser.parse expr in
  let de = Diff.d "x" e in
  let h = 1e-6 *. (1. +. Float.abs x0) in
  let numeric = (eval_at (x0 +. h) e -. eval_at (x0 -. h) e) /. (2. *. h) in
  let symbolic = eval_at x0 de in
  if not (Tutil.feq ~eps:1e-4 numeric symbolic) then
    Alcotest.failf "%s at %g: numeric %.10g vs symbolic %.10g" name x0 numeric
      symbolic

let test_polynomials () =
  List.iter
    (fun x0 ->
      check_deriv_at "x^3" "x^3" x0;
      check_deriv_at "poly" "2*x^4 - 3*x^2 + x - 7" x0;
      check_deriv_at "product" "x * (x + 1) * (x - 2)" x0)
    [ -2.; -0.3; 0.5; 1.9 ]

let test_quotients () =
  List.iter
    (fun x0 ->
      check_deriv_at "1/x" "1/x" x0;
      check_deriv_at "rational" "(x^2 + 1) / (x + 3)" x0)
    [ 0.5; 1.5; 4. ]

let test_transcendental () =
  List.iter
    (fun x0 ->
      check_deriv_at "sin" "sin(x)" x0;
      check_deriv_at "chain" "exp(-2*x^2)" x0;
      check_deriv_at "nested" "cos(sin(x))" x0;
      check_deriv_at "log" "log(x^2 + 1)" x0;
      check_deriv_at "sqrt" "sqrt(x^2 + 4)" x0;
      check_deriv_at "tanh" "tanh(x)" x0;
      check_deriv_at "sinh-cosh" "sinh(x) * cosh(x)" x0)
    [ -1.2; 0.1; 2.3 ]

let test_constants_and_refs () =
  let zero = Diff.d "x" (Parser.parse "a + I[d,b] * 3") in
  Alcotest.(check bool)
    "constants differentiate to zero" true
    (Expr.equal (Simplify.simplify zero) Expr.zero)

let test_conditional () =
  (* piecewise: derivative applies per branch *)
  let de = d "conditional(x > 0, x^2, -x)" in
  Alcotest.(check (float 1e-9)) "right branch" 2. (eval_at 1. de);
  Alcotest.(check (float 1e-9)) "left branch" (-1.) (eval_at (-1.) de)

let test_unknown_function_formal () =
  let de = d "g(x)" in
  Alcotest.(check bool) "formal derivative g'" true
    (Expr.contains_call "g'" de)

let test_linearity () =
  (* d/dx (f + g) = df + dg, checked numerically on a combination *)
  check_deriv_at "linearity" "3*sin(x) - 5*x^2 + exp(x)/2" 0.7

(* random polynomials in x: symbolic derivative equals numeric derivative *)
let poly_gen =
  QCheck.Gen.(
    let term =
      map2
        (fun c k ->
          Expr.mul [ Expr.num (float_of_int c); Expr.pow (Expr.sym "x") (Expr.num (float_of_int k)) ])
        (int_range (-5) 5) (int_range 0 4)
    in
    map Expr.add (list_size (int_range 1 5) term))

let prop_poly_derivative =
  QCheck.Test.make ~name:"random polynomial derivative matches numeric"
    ~count:200
    (QCheck.make ~print:Printer.to_string poly_gen)
    (fun e ->
      let de = Diff.d "x" e in
      List.for_all
        (fun x0 ->
          let h = 1e-5 in
          let numeric = (eval_at (x0 +. h) e -. eval_at (x0 -. h) e) /. (2. *. h) in
          let symbolic = eval_at x0 de in
          Tutil.feq ~eps:1e-3 numeric symbolic)
        [ -1.1; 0.4; 2.2 ])

let suite =
  ( "diff",
    [
      Alcotest.test_case "polynomials" `Quick test_polynomials;
      Alcotest.test_case "quotients" `Quick test_quotients;
      Alcotest.test_case "transcendental + chain rule" `Quick test_transcendental;
      Alcotest.test_case "constants and refs" `Quick test_constants_and_refs;
      Alcotest.test_case "conditional branches" `Quick test_conditional;
      Alcotest.test_case "unknown function formal derivative" `Quick
        test_unknown_function_formal;
      Alcotest.test_case "linearity" `Quick test_linearity;
      QCheck_alcotest.to_alcotest prop_poly_derivative;
    ] )
