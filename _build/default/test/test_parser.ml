(* Parser tests, including the exact input strings from the paper. *)

open Finch_symbolic

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let parses s = ignore (Parser.parse s)

let fails s =
  match Parser.parse_opt s with
  | None -> ()
  | Some e -> Alcotest.failf "expected failure for %S, got %s" s (Printer.to_string e)

let test_paper_bte_input () =
  (* the conservationForm string from Section III-B *)
  let e =
    Parser.parse
      "(Io[b] - I[d,b]) * beta[b] + surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"
  in
  Alcotest.(check (list string))
    "entities" [ "Io"; "I"; "beta"; "vg"; "Sx"; "Sy" ] (Expr.ref_names e);
  check_bool "has surface call" true (Expr.contains_call "surface" e);
  check_bool "has upwind call" true (Expr.contains_call "upwind" e)

let test_paper_quickstart_input () =
  parses "-k*u - surface(upwind(b, u))";
  parses "s(u)-surface(f(u))"

let test_paper_bc_input () =
  match Parser.parse "isothermal(I,vg,Sx,Sy,b,d,normal,300)" with
  | Expr.Call ("isothermal", args) ->
    Alcotest.(check int) "eight args" 8 (List.length args);
    (match List.rev args with
     | Expr.Num x :: _ -> Alcotest.(check (float 0.)) "temp arg" 300. x
     | _ -> Alcotest.fail "last arg should be 300")
  | _ -> Alcotest.fail "expected a call"

let test_precedence () =
  let v s = Expr.eval ~env_sym:(fun _ -> 2.) ~env_ref:(fun _ _ _ -> 1.) (Parser.parse s) in
  Alcotest.(check (float 1e-12)) "mul before add" 7. (v "1 + 2*3");
  Alcotest.(check (float 1e-12)) "parens" 9. (v "(1+2)*3");
  Alcotest.(check (float 1e-12)) "pow before mul" 18. (v "2*3^2");
  Alcotest.(check (float 1e-12)) "unary minus" (-4.) (v "-2*2");
  Alcotest.(check (float 1e-12)) "division" 1.5 (v "3/2");
  Alcotest.(check (float 1e-12)) "a/b/c left assoc" 0.75 (v "3/2/2");
  Alcotest.(check (float 1e-12)) "sub chain" (-4.) (v "1-2-3")

let test_numbers () =
  let n s =
    match Parser.parse s with Expr.Num x -> x | _ -> Alcotest.fail "not a number"
  in
  Alcotest.(check (float 0.)) "int" 42. (n "42");
  Alcotest.(check (float 0.)) "float" 3.25 (n "3.25");
  Alcotest.(check (float 0.)) "exponent" 1e-12 (n "1e-12");
  Alcotest.(check (float 0.)) "exp plus" 1.5e10 (n "1.5e+10");
  Alcotest.(check (float 0.)) "leading dot digit" 0.5 (n "0.5")

let test_index_forms () =
  (match Parser.parse "I[d+1,b]" with
   | Expr.Ref ("I", [ Expr.Ishift ("d", 1); Expr.Ivar "b" ], Expr.Here) -> ()
   | _ -> Alcotest.fail "shift +1");
  (match Parser.parse "I[d-2,3]" with
   | Expr.Ref ("I", [ Expr.Ishift ("d", -2); Expr.Iconst 3 ], Expr.Here) -> ()
   | _ -> Alcotest.fail "shift -2 and const");
  parses "T[1]"

let test_vector_literal () =
  match Parser.parse "[Sx[d]; Sy[d]]" with
  | Expr.Call ("vector", [ _; _ ]) -> ()
  | _ -> Alcotest.fail "vector literal"

let test_comparisons () =
  (match Parser.parse "a >= b" with
   | Expr.Cmp (Expr.Ge, _, _) -> ()
   | _ -> Alcotest.fail ">=");
  (match Parser.parse "a != b" with
   | Expr.Cmp (Expr.Ne, _, _) -> ()
   | _ -> Alcotest.fail "!=");
  parses "conditional(a == b, 1, 0)"

let test_errors () =
  fails "";
  fails "1 +";
  fails "(1";
  fails "I[d";
  fails "I[]";
  fails "1 2";
  fails "a $ b";
  fails "f(a,)"

let test_whitespace_robust () =
  let a = Parser.parse "  ( Io[b]\t- I[d,b] )\n * beta[b] " in
  let b = Parser.parse "(Io[b]-I[d,b])*beta[b]" in
  check_bool "whitespace-insensitive" true (Expr.equal a b)

(* printer round-trip: parse (print (parse s)) has the same value *)
let env_sym = function "dt" -> 0.1 | s -> float_of_int (String.length s) +. 0.5
let env_ref name idx _side = float_of_int (Hashtbl.hash (name, idx) mod 11) +. 0.25

let roundtrip_cases =
  [ "(Io[b] - I[d,b]) * beta[b]";
    "-k*u - 3*u^2 + 1/u";
    "a/b/c + a*b*c";
    "conditional(a > b, a - b, b - a)";
    "exp(-2*a^2) + sqrt(b)";
    "min(a, max(b, k))" ]

let test_print_parse_roundtrip () =
  List.iter
    (fun s ->
      let e = Parser.parse s in
      let printed = Printer.to_string e in
      let e' =
        try Parser.parse printed
        with Parser.Parse_error m ->
          Alcotest.failf "reparse of %S failed: %s" printed m
      in
      let v = Expr.eval ~env_sym ~env_ref e
      and v' = Expr.eval ~env_sym ~env_ref e' in
      if Float.abs (v -. v') > 1e-9 *. (1. +. Float.abs v) then
        Alcotest.failf "round trip changed value for %S: %g vs %g" s v v')
    roundtrip_cases

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round trip preserves value" ~count:200
    Test_expr.arb_expr (fun e ->
      let printed = Printer.to_string e in
      match Parser.parse_opt printed with
      | None -> QCheck.Test.fail_reportf "unparseable: %s" printed
      | Some e' ->
        let v = Expr.eval ~env_sym ~env_ref e
        and v' = Expr.eval ~env_sym ~env_ref e' in
        Float.abs (v -. v') <= 1e-7 *. (1. +. Float.abs v)
        || (Float.is_nan v && Float.is_nan v')
        || Float.abs v > 1e14)

let test_finch_style_printing () =
  let eq =
    Finch.Transform.conservation_form
      (Finch.Entity.variable ~name:"u" ())
      "-k*u - surface(upwind([bx;by], u))"
  in
  let s = Finch.Transform.report_expanded eq in
  check_bool "mentions TIMEDERIVATIVE" true
    (Tutil.contains s "TIMEDERIVATIVE");
  check_bool "mentions _u_1" true (Tutil.contains s "_u_1");
  let c = Finch.Transform.report_classified eq in
  check_bool "has LHS volume" true (Tutil.contains c "LHS volume");
  check_bool "has CELL1 in surface" true (Tutil.contains c "CELL1_")

let suite =
  ( "parser",
    [
      Alcotest.test_case "paper BTE input" `Quick test_paper_bte_input;
      Alcotest.test_case "paper quickstart input" `Quick test_paper_quickstart_input;
      Alcotest.test_case "paper boundary input" `Quick test_paper_bc_input;
      Alcotest.test_case "precedence" `Quick test_precedence;
      Alcotest.test_case "number literals" `Quick test_numbers;
      Alcotest.test_case "index forms" `Quick test_index_forms;
      Alcotest.test_case "vector literal" `Quick test_vector_literal;
      Alcotest.test_case "comparisons" `Quick test_comparisons;
      Alcotest.test_case "parse errors" `Quick test_errors;
      Alcotest.test_case "whitespace robustness" `Quick test_whitespace_robust;
      Alcotest.test_case "print/parse round trip (cases)" `Quick
        test_print_parse_roundtrip;
      Alcotest.test_case "finch-style printing" `Quick test_finch_style_printing;
      QCheck_alcotest.to_alcotest prop_roundtrip;
    ] )
