(* Shared helpers for the test suites. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let rec go i =
      if i + m > n then false
      else if String.sub s i m = sub then true
      else go (i + 1)
    in
    go 0
  end

let feq ?(eps = 1e-12) a b =
  Float.abs (a -. b) <= eps *. (1. +. Float.max (Float.abs a) (Float.abs b))

let check_close ?(eps = 1e-12) name expected got =
  if not (feq ~eps expected got) then
    Alcotest.failf "%s: expected %.17g, got %.17g (eps %g)" name expected got eps

(* a deterministic pseudo-random float sequence for field initialisation *)
let lcg seed =
  let state = ref seed in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. float_of_int 0x3FFFFFFF
