(* Gmsh MSH 2.2 reader/writer tests. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample_msh =
  (* a 2x1 quad strip with tagged boundary lines:
     region 1 = bottom, 2 = right, 3 = top, 4 = left *)
  "$MeshFormat\n\
   2.2 0 8\n\
   $EndMeshFormat\n\
   $Nodes\n\
   6\n\
   1 0 0 0\n\
   2 1 0 0\n\
   3 2 0 0\n\
   4 0 1 0\n\
   5 1 1 0\n\
   6 2 1 0\n\
   $EndNodes\n\
   $Elements\n\
   8\n\
   1 1 2 1 1 1 2\n\
   2 1 2 1 1 2 3\n\
   3 1 2 2 2 3 6\n\
   4 1 2 3 3 6 5\n\
   5 1 2 3 3 5 4\n\
   6 1 2 4 4 4 1\n\
   7 3 2 0 0 1 2 5 4\n\
   8 3 2 0 0 2 3 6 5\n\
   $EndElements\n"

let test_read_sample () =
  let m = Fvm.Gmsh.read_string sample_msh in
  check_int "cells" 2 m.Fvm.Mesh.ncells;
  check_int "faces" 7 m.Fvm.Mesh.nfaces;
  Tutil.check_close "area" 2.0 (Fvm.Mesh.total_volume m);
  Alcotest.(check (list int)) "regions" [ 1; 2; 3; 4 ] (Fvm.Mesh.boundary_regions m);
  check_int "bottom faces" 2 (Array.length (Fvm.Mesh.faces_of_region m 1));
  (match Fvm.Mesh.check m with
   | Ok () -> ()
   | Error e -> Alcotest.failf "check: %s" (String.concat ";" e))

let test_read_reversed_cells () =
  (* clockwise cells must be reoriented, not rejected *)
  let msh =
    "$MeshFormat\n2.2 0 8\n$EndMeshFormat\n$Nodes\n4\n\
     1 0 0 0\n2 1 0 0\n3 1 1 0\n4 0 1 0\n$EndNodes\n\
     $Elements\n1\n1 3 2 0 0 1 4 3 2\n$EndElements\n"
  in
  let m = Fvm.Gmsh.read_string msh in
  check_int "one cell" 1 m.Fvm.Mesh.ncells;
  Tutil.check_close "positive area" 1.0 m.Fvm.Mesh.cell_volume.(0)

let test_read_triangles () =
  let msh =
    "$MeshFormat\n2.2 0 8\n$EndMeshFormat\n$Nodes\n4\n\
     1 0 0 0\n2 1 0 0\n3 1 1 0\n4 0 1 0\n$EndNodes\n\
     $Elements\n2\n1 2 2 0 0 1 2 3\n2 2 2 0 0 1 3 4\n$EndElements\n"
  in
  let m = Fvm.Gmsh.read_string msh in
  check_int "two triangles" 2 m.Fvm.Mesh.ncells;
  Tutil.check_close "area" 1.0 (Fvm.Mesh.total_volume m)

let test_untagged_boundary_defaults () =
  (* no line elements at all: every boundary face gets region 1 *)
  let msh =
    "$MeshFormat\n2.2 0 8\n$EndMeshFormat\n$Nodes\n4\n\
     1 0 0 0\n2 1 0 0\n3 1 1 0\n4 0 1 0\n$EndNodes\n\
     $Elements\n1\n1 3 2 0 0 1 2 3 4\n$EndElements\n"
  in
  let m = Fvm.Gmsh.read_string msh in
  Alcotest.(check (list int)) "default region" [ 1 ] (Fvm.Mesh.boundary_regions m)

let test_roundtrip_rectangle () =
  let m = Fvm.Mesh_gen.rectangle ~nx:5 ~ny:4 ~lx:2.5 ~ly:1.0 () in
  let m' = Fvm.Gmsh.read_string (Fvm.Gmsh.write_string m) in
  check_int "cells preserved" m.Fvm.Mesh.ncells m'.Fvm.Mesh.ncells;
  check_int "faces preserved" m.Fvm.Mesh.nfaces m'.Fvm.Mesh.nfaces;
  Tutil.check_close "volume preserved" (Fvm.Mesh.total_volume m)
    (Fvm.Mesh.total_volume m');
  Alcotest.(check (list int)) "regions preserved"
    (Fvm.Mesh.boundary_regions m) (Fvm.Mesh.boundary_regions m');
  List.iter
    (fun r ->
      check_int
        (Printf.sprintf "region %d face count" r)
        (Array.length (Fvm.Mesh.faces_of_region m r))
        (Array.length (Fvm.Mesh.faces_of_region m' r)))
    (Fvm.Mesh.boundary_regions m)

let test_file_roundtrip () =
  let m = Fvm.Mesh_gen.rectangle ~nx:3 ~ny:3 ~lx:1.0 ~ly:1.0 () in
  let path = Filename.temp_file "mesh" ".msh" in
  Fvm.Gmsh.write_file path m;
  let m' = Fvm.Gmsh.read_file path in
  Sys.remove path;
  check_int "cells" m.Fvm.Mesh.ncells m'.Fvm.Mesh.ncells

let test_roundtrip_triangulated () =
  let m = Fvm.Mesh_gen.triangulated_rectangle ~nx:4 ~ny:3 ~lx:2.0 ~ly:1.5 () in
  let m' = Fvm.Gmsh.read_string (Fvm.Gmsh.write_string m) in
  check_int "cells preserved" m.Fvm.Mesh.ncells m'.Fvm.Mesh.ncells;
  Tutil.check_close "volume preserved" (Fvm.Mesh.total_volume m)
    (Fvm.Mesh.total_volume m');
  Alcotest.(check (list int)) "regions preserved"
    (Fvm.Mesh.boundary_regions m) (Fvm.Mesh.boundary_regions m');
  match Fvm.Mesh.check m' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reimported mesh invalid: %s" (String.concat ";" e)

let expect_format_error s =
  match Fvm.Gmsh.read_string s with
  | exception Fvm.Gmsh.Format_error _ -> ()
  | _ -> Alcotest.fail "expected Format_error"

let test_errors () =
  expect_format_error "";
  expect_format_error "$MeshFormat\n4.1 0 8\n$EndMeshFormat\n";
  expect_format_error "$MeshFormat\n2.2 0 8\n$EndMeshFormat\n$Nodes\n1\nbad\n";
  expect_format_error
    "$MeshFormat\n2.2 0 8\n$EndMeshFormat\n$Nodes\n1\n1 0 0 0\n$EndNodes\n\
     $Elements\n1\n1 99 2 0 0 1 1 1\n$EndElements\n"

let suite =
  ( "gmsh",
    [
      Alcotest.test_case "read sample" `Quick test_read_sample;
      Alcotest.test_case "reorients clockwise cells" `Quick test_read_reversed_cells;
      Alcotest.test_case "reads triangles" `Quick test_read_triangles;
      Alcotest.test_case "untagged boundary defaults to 1" `Quick
        test_untagged_boundary_defaults;
      Alcotest.test_case "write/read round trip" `Quick test_roundtrip_rectangle;
      Alcotest.test_case "triangulated round trip" `Quick test_roundtrip_triangulated;
      Alcotest.test_case "file round trip" `Quick test_file_roundtrip;
      Alcotest.test_case "format errors" `Quick test_errors;
    ] )
