(* Field storage tests: layouts, accessors, reductions. *)

let check_int = Alcotest.(check int)

let test_create_and_fill () =
  let f = Fvm.Field.create ~name:"u" ~ncells:10 ~ncomp:3 () in
  check_int "size" 30 (Fvm.Field.size f);
  Tutil.check_close "zero initialised" 0. (Fvm.Field.max_abs f);
  Fvm.Field.fill f 2.5;
  Tutil.check_close "filled" 2.5 (Fvm.Field.get f 9 2)

let test_get_set_layouts () =
  List.iter
    (fun layout ->
      let f = Fvm.Field.create ~layout ~name:"u" ~ncells:5 ~ncomp:4 () in
      Fvm.Field.init f (fun c k -> float_of_int ((c * 10) + k));
      for c = 0 to 4 do
        for k = 0 to 3 do
          Tutil.check_close "roundtrip" (float_of_int ((c * 10) + k)) (Fvm.Field.get f c k)
        done
      done)
    [ Fvm.Field.Cell_major; Fvm.Field.Comp_major ]

let test_layout_memory_order () =
  (* Cell_major: components of a cell adjacent; Comp_major: cells adjacent *)
  let f = Fvm.Field.create ~layout:Fvm.Field.Cell_major ~name:"u" ~ncells:3 ~ncomp:2 () in
  Fvm.Field.set f 1 0 7.;
  Tutil.check_close "cell-major offset" 7. (Bigarray.Array1.get (Fvm.Field.raw f) 2);
  let g = Fvm.Field.create ~layout:Fvm.Field.Comp_major ~name:"u" ~ncells:3 ~ncomp:2 () in
  Fvm.Field.set g 1 0 7.;
  Tutil.check_close "comp-major offset" 7. (Bigarray.Array1.get (Fvm.Field.raw g) 1)

let test_bounds_checked_accessor () =
  let f = Fvm.Field.create ~name:"u" ~ncells:2 ~ncomp:2 () in
  match Fvm.Field.get_checked f 2 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bounds error"

let test_blit_copy_diff () =
  let a = Fvm.Field.create ~name:"a" ~ncells:4 ~ncomp:2 () in
  Fvm.Field.init a (fun c k -> float_of_int (c + k));
  let b = Fvm.Field.copy a in
  Tutil.check_close "copy equal" 0. (Fvm.Field.max_abs_diff a b);
  Fvm.Field.set b 3 1 100.;
  Tutil.check_close "diff detected" 96. (Fvm.Field.max_abs_diff a b);
  Fvm.Field.blit ~src:a ~dst:b;
  Tutil.check_close "blit equal" 0. (Fvm.Field.max_abs_diff a b)

let test_sums_and_integral () =
  let m = Fvm.Mesh_gen.rectangle ~nx:4 ~ny:4 ~lx:2.0 ~ly:2.0 () in
  let f = Fvm.Field.create ~name:"u" ~ncells:16 ~ncomp:2 () in
  Fvm.Field.init f (fun _ k -> if k = 0 then 3. else 1.);
  Tutil.check_close "sum comp 0" 48. (Fvm.Field.sum_comp f 0);
  (* integral over a 2x2 domain of the constant 3 *)
  Tutil.check_close "integral" 12. (Fvm.Field.integral f m 0);
  Tutil.check_close "integral comp 1" 4. (Fvm.Field.integral f m 1)

let test_of_bigarray_view () =
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 6 in
  Bigarray.Array1.fill data 1.5;
  let f = Fvm.Field.of_bigarray ~name:"view" ~ncells:3 ~ncomp:2 data in
  Tutil.check_close "view reads backing" 1.5 (Fvm.Field.get f 2 1);
  Fvm.Field.set f 0 0 9.;
  Tutil.check_close "view writes backing" 9. (Bigarray.Array1.get data 0);
  match Fvm.Field.of_bigarray ~name:"bad" ~ncells:4 ~ncomp:2 data with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "size mismatch should raise"

let test_fold_iter () =
  let f = Fvm.Field.create ~name:"u" ~ncells:3 ~ncomp:3 () in
  Fvm.Field.init f (fun c k -> float_of_int (c * k));
  let total = Fvm.Field.fold f (fun acc _ _ v -> acc +. v) 0. in
  (* sum over c,k of c*k = (0+1+2)(0+1+2) = 9 *)
  Tutil.check_close "fold total" 9. total;
  let count = ref 0 in
  Fvm.Field.iter f (fun _ _ _ -> incr count);
  check_int "iter visits all" 9 !count

let suite =
  ( "field",
    [
      Alcotest.test_case "create and fill" `Quick test_create_and_fill;
      Alcotest.test_case "get/set both layouts" `Quick test_get_set_layouts;
      Alcotest.test_case "layout memory order" `Quick test_layout_memory_order;
      Alcotest.test_case "bounds-checked accessor" `Quick test_bounds_checked_accessor;
      Alcotest.test_case "blit/copy/diff" `Quick test_blit_copy_diff;
      Alcotest.test_case "sums and integral" `Quick test_sums_and_integral;
      Alcotest.test_case "bigarray view" `Quick test_of_bigarray_view;
      Alcotest.test_case "fold/iter" `Quick test_fold_iter;
    ] )
