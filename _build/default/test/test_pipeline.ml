(* DSL pipeline tests: operator expansion, the conservation-form transform
   and term classification (Section II of the paper), the data-movement
   analysis, IR construction and source emission. *)

open Finch_symbolic

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- operators ---------- *)

let test_upwind_expansion () =
  let e = Parser.parse "upwind([bx;by], u)" in
  let e = Expr.subst_sym "u" (Expr.ref_ "u" []) e in
  match Finch.Operators.expand e with
  | Expr.Cond (Expr.Cmp (Expr.Gt, bn, z), pos, neg) ->
    check_bool "test against zero" true (Expr.equal z Expr.zero);
    check_bool "bn mentions NORMAL_1" true (Expr.contains_sym "NORMAL_1" bn);
    check_bool "bn mentions NORMAL_2" true (Expr.contains_sym "NORMAL_2" bn);
    let has_side side e =
      Expr.fold
        (fun acc n -> acc || match n with Expr.Ref (_, _, s) -> s = side | _ -> false)
        false e
    in
    check_bool "positive branch uses CELL1" true (has_side Expr.Cell1 pos);
    check_bool "negative branch uses CELL2" true (has_side Expr.Cell2 neg)
  | _ -> Alcotest.fail "upwind did not expand to a conditional"

let test_upwind_numeric () =
  (* upwind flux evaluates to bn * (upwind value) *)
  let e = Finch.Operators.expand (Parser.parse "upwind([bx;by], uvar[d])") in
  let eval ~bx ~by ~n1 ~n2 ~u1 ~u2 =
    Expr.eval
      ~env_sym:(function
        | "bx" -> bx | "by" -> by | "NORMAL_1" -> n1 | "NORMAL_2" -> n2
        | s -> Alcotest.failf "sym %s" s)
      ~env_ref:(fun name _ side ->
        match name, side with
        | "uvar", Expr.Cell1 -> u1
        | "uvar", Expr.Cell2 -> u2
        | _ -> Alcotest.fail "ref")
      e
  in
  Tutil.check_close "outflow takes cell1" (1.5 *. 2.)
    (eval ~bx:1.5 ~by:0. ~n1:1. ~n2:0. ~u1:2. ~u2:7.);
  Tutil.check_close "inflow takes cell2" (-1.5 *. 7.)
    (eval ~bx:1.5 ~by:0. ~n1:(-1.) ~n2:0. ~u1:2. ~u2:7.);
  Tutil.check_close "tangential is zero-ish" (1.5 *. 7.)
    (eval ~bx:0. ~by:1.5 ~n1:0. ~n2:1. ~u1:7. ~u2:2.)

let test_central_operator () =
  let e = Finch.Operators.expand (Parser.parse "central([bx;by], uvar[d])") in
  let v =
    Expr.eval
      ~env_sym:(function
        | "bx" -> 2. | "by" -> 0. | "NORMAL_1" -> 1. | "NORMAL_2" -> 0.
        | _ -> 0.)
      ~env_ref:(fun _ _ side -> if side = Expr.Cell1 then 4. else 6.)
      e
  in
  Tutil.check_close "average flux" (2. *. 5.) v

let test_custom_operator () =
  Finch.Operators.define "doubleit" (function
    | [ e ] -> Expr.mul [ Expr.num 2.; e ]
    | _ -> Alcotest.fail "arity");
  let e = Finch.Operators.expand (Parser.parse "doubleit(k)") in
  check_bool "custom operator expanded" true
    (Expr.equal (Simplify.simplify e) (Simplify.simplify (Parser.parse "2*k")))

let test_surface_marker () =
  let e = Finch.Operators.expand (Parser.parse "surface(f1 * k)") in
  check_bool "marked" true (Finch.Operators.is_surface_term e);
  let stripped = Finch.Operators.strip_surface e in
  check_bool "stripped" false (Expr.contains_sym "SURFACE" stripped)

(* ---------- transform ---------- *)

let quickstart_eq () =
  Finch.Transform.conservation_form
    (Finch.Entity.variable ~name:"u" ())
    "-k*u - surface(upwind([bx;by], u))"

let test_classification_paper_example () =
  let eq = quickstart_eq () in
  (* LHS volume is -u *)
  (match eq.Finch.Transform.classified.Finch.Transform.lhs_volume with
   | [ t ] ->
     check_bool "lhs is -u" true
       (Expr.equal (Simplify.simplify t)
          (Simplify.simplify (Expr.neg (Expr.ref_ "u" []))))
   | _ -> Alcotest.fail "one LHS term");
  (* RHS volume terms carry no SURFACE marker, surface terms all do *)
  List.iter
    (fun t -> check_bool "vol term unmarked" false (Finch.Operators.is_surface_term t))
    eq.Finch.Transform.classified.Finch.Transform.rhs_volume;
  List.iter
    (fun t -> check_bool "surf term marked" true (Finch.Operators.is_surface_term t))
    eq.Finch.Transform.classified.Finch.Transform.rhs_surface;
  (* RHS volume contains the u0 term and -dt*k*u *)
  let vol = Expr.add eq.Finch.Transform.classified.Finch.Transform.rhs_volume in
  check_bool "vol has dt" true (Expr.contains_sym "dt" vol);
  check_bool "vol has u" true (Expr.contains_ref "u" vol)

let test_stepped_euler_form () =
  let eq = quickstart_eq () in
  (* stepped = u + dt * R; at dt = 0 it must reduce to u *)
  let v ~dt_v ~u ~k =
    Expr.eval
      ~env_sym:(function
        | "dt" -> dt_v | "k" -> k | "bx" | "by" -> 0.
        | "NORMAL_1" | "NORMAL_2" -> 0. | "SURFACE" -> 1.
        | s -> Alcotest.failf "sym %s" s)
      ~env_ref:(fun _ _ _ -> u)
      eq.Finch.Transform.stepped
  in
  Tutil.check_close "dt=0 identity" 5. (v ~dt_v:0. ~u:5. ~k:2.);
  (* with zero advection, u' = u - dt*k*u *)
  Tutil.check_close "decay step" (5. -. (0.1 *. 2. *. 5.)) (v ~dt_v:0.1 ~u:5. ~k:2.)

let test_rvol_rsurf_decomposition () =
  let eq = quickstart_eq () in
  check_bool "rvol has no surface marker" false
    (Expr.contains_sym "SURFACE" eq.Finch.Transform.rvol);
  check_bool "rsurf stripped of marker" false
    (Expr.contains_sym "SURFACE" eq.Finch.Transform.rsurf);
  check_bool "rsurf has sides" true
    (Expr.fold
       (fun acc n ->
         acc || match n with Expr.Ref (_, _, Expr.Cell1) -> true | _ -> false)
       false eq.Finch.Transform.rsurf)

let test_bte_equation_transform () =
  let d = Finch.Entity.index ~name:"d" ~range:(1, 4) in
  let b = Finch.Entity.index ~name:"b" ~range:(1, 3) in
  let vi = Finch.Entity.variable ~name:"I" ~indices:[ d; b ] () in
  let eq =
    Finch.Transform.conservation_form vi
      "(Io[b] - I[d,b]) * beta[b] - surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"
  in
  Alcotest.(check string) "unknown" "I" eq.Finch.Transform.eq_var;
  check_bool "rvol mentions Io" true (Expr.contains_ref "Io" eq.Finch.Transform.rvol);
  check_bool "rsurf mentions vg" true (Expr.contains_ref "vg" eq.Finch.Transform.rsurf);
  check_bool "rsurf indexes Sx by d" true (Expr.contains_ref "Sx" eq.Finch.Transform.rsurf)

let test_parse_error_reported () =
  match quickstart_eq () |> ignore; Finch.Transform.conservation_form
          (Finch.Entity.variable ~name:"u" ()) "u ++ 1" with
  | exception Finch.Transform.Equation_error _ -> ()
  | _ -> Alcotest.fail "expected Equation_error"

(* ---------- dataflow ---------- *)

let mk_vars () =
  [ { Finch.Dataflow.v_name = "I"; v_bytes = 1000 };
    { Finch.Dataflow.v_name = "Io"; v_bytes = 100 };
    { Finch.Dataflow.v_name = "vg"; v_bytes = 10 } ]

let test_dataflow_schedule () =
  let tasks =
    [ { Finch.Dataflow.t_name = "interior"; t_reads = [ "I"; "Io"; "vg" ];
        t_writes = [ "I" ]; t_pinned = None; t_flops = 1e9 };
      { Finch.Dataflow.t_name = "post"; t_reads = [ "I" ]; t_writes = [ "Io" ];
        t_pinned = Some Finch.Dataflow.Cpu_side; t_flops = 1e5 } ]
  in
  let plan =
    Finch.Dataflow.optimize ~tasks ~vars:(mk_vars ()) ()
  in
  (* the big compute task must land on the GPU *)
  Alcotest.(check bool) "interior on gpu" true
    (List.assoc "interior" plan.Finch.Dataflow.placement = Finch.Dataflow.Gpu_side);
  let tr name =
    List.find (fun t -> t.Finch.Dataflow.tr_var = name) plan.Finch.Dataflow.transfers
  in
  check_bool "I moves down every step" true (tr "I").Finch.Dataflow.tr_d2h_every_step;
  check_bool "Io moves up every step" true (tr "Io").Finch.Dataflow.tr_h2d_every_step;
  check_bool "vg uploads once" true (tr "vg").Finch.Dataflow.tr_h2d_once;
  check_bool "vg not per-step" false (tr "vg").Finch.Dataflow.tr_h2d_every_step

let test_dataflow_all_cpu_when_tiny () =
  (* if the compute is negligible, avoiding PCIe wins and everything stays
     on the CPU *)
  let tasks =
    [ { Finch.Dataflow.t_name = "interior"; t_reads = [ "I" ]; t_writes = [ "I" ];
        t_pinned = None; t_flops = 10. };
      { Finch.Dataflow.t_name = "post"; t_reads = [ "I" ]; t_writes = [ "I" ];
        t_pinned = Some Finch.Dataflow.Cpu_side; t_flops = 10. } ]
  in
  let vars = [ { Finch.Dataflow.v_name = "I"; v_bytes = 1_000_000_000 } ] in
  let plan = Finch.Dataflow.optimize ~tasks ~vars () in
  check_bool "tiny compute stays on cpu" true
    (List.assoc "interior" plan.Finch.Dataflow.placement = Finch.Dataflow.Cpu_side);
  check_int "then nothing moves" 0 plan.Finch.Dataflow.bytes_per_step

let test_dataflow_bte_problem () =
  let built = Bte.Setup.build Bte.Setup.small_hotspot in
  let plan =
    Finch.Dataflow.plan_for_problem ~post_io:Bte.Setup.post_io
      built.Bte.Setup.problem
  in
  check_bool "interior on gpu" true
    (List.assoc "interior_update" plan.Finch.Dataflow.placement
     = Finch.Dataflow.Gpu_side);
  let every_step =
    List.filter_map
      (fun t ->
        if t.Finch.Dataflow.tr_h2d_every_step then Some t.Finch.Dataflow.tr_var
        else None)
      plan.Finch.Dataflow.transfers
  in
  check_bool "I uploaded each step" true (List.mem "I" every_step);
  check_bool "Io uploaded each step" true (List.mem "Io" every_step);
  check_bool "beta uploaded each step" true (List.mem "beta" every_step);
  (* coefficients like vg go up once *)
  let once =
    List.filter_map
      (fun t ->
        if t.Finch.Dataflow.tr_h2d_once then Some t.Finch.Dataflow.tr_var else None)
      plan.Finch.Dataflow.transfers
  in
  check_bool "vg uploaded once" true (List.mem "vg" once)

(* ---------- IR and emission ---------- *)

let quickstart_problem () =
  let p = Finch.Problem.init "t" in
  Finch.Problem.domain p 2;
  Finch.Problem.set_mesh p (Fvm.Mesh_gen.rectangle ~nx:4 ~ny:4 ~lx:1. ~ly:1. ());
  Finch.Problem.set_steps p ~dt:1e-3 ~nsteps:5;
  let u = Finch.Problem.variable p ~name:"u" () in
  let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 1.) in
  let _ = Finch.Problem.coefficient p ~name:"bx" (Finch.Entity.Const 1.) in
  let _ = Finch.Problem.coefficient p ~name:"by" (Finch.Entity.Const 0.) in
  Finch.Problem.initial p u (Finch.Problem.Init_const 1.);
  let _ = Finch.Problem.conservation_form p u "-k*u - surface(upwind([bx;by], u))" in
  p

let test_ir_cpu_structure () =
  let p = quickstart_problem () in
  let ir = Finch.Ir.build_cpu p in
  check_bool "writes u" true (List.mem "u" (Finch.Ir.writes ir));
  check_bool "reads u" true (List.mem "u" (Finch.Ir.reads ir));
  (* the tree contains a time loop with a cell loop inside *)
  let has_steps =
    Finch.Ir.fold
      (fun acc n ->
        acc || match n with Finch.Ir.Loop { range = Finch.Ir.Steps; _ } -> true | _ -> false)
      false ir
  in
  check_bool "time loop present" true has_steps

let test_emit_julia () =
  let p = quickstart_problem () in
  let src = Finch.Emit_source.to_julia (Finch.Ir.build_cpu p) in
  List.iter
    (fun marker -> check_bool ("julia has " ^ marker) true (Tutil.contains src marker))
    [ "for step = 1:Nsteps"; "for cell = 1:Ncells"; "apply_boundary_conditions";
      "u = u_new"; "time += dt"; "conditional(" ]

let test_emit_cuda () =
  let p = quickstart_problem () in
  Finch.Problem.use_cuda p;
  let plan = Finch.Dataflow.plan_for_problem p in
  let transfers =
    List.filter_map
      (fun t ->
        if t.Finch.Dataflow.tr_h2d_every_step then Some (t.Finch.Dataflow.tr_var, true)
        else if t.Finch.Dataflow.tr_h2d_once then Some (t.Finch.Dataflow.tr_var, false)
        else None)
      plan.Finch.Dataflow.transfers
  in
  let src = Finch.Emit_source.to_cuda (Finch.Ir.build_gpu p ~transfers) in
  List.iter
    (fun marker -> check_bool ("cuda has " ^ marker) true (Tutil.contains src marker))
    [ "blockIdx.x"; "if (tid >= ndofs) return;"; "cudaStreamSynchronize";
      "cudaMemcpyAsync"; "post_step_function" ]

let suite =
  ( "pipeline",
    [
      Alcotest.test_case "upwind expansion shape" `Quick test_upwind_expansion;
      Alcotest.test_case "upwind numeric semantics" `Quick test_upwind_numeric;
      Alcotest.test_case "central operator" `Quick test_central_operator;
      Alcotest.test_case "custom operator" `Quick test_custom_operator;
      Alcotest.test_case "surface marker" `Quick test_surface_marker;
      Alcotest.test_case "classification (paper example)" `Quick
        test_classification_paper_example;
      Alcotest.test_case "forward-Euler stepped form" `Quick test_stepped_euler_form;
      Alcotest.test_case "rvol/rsurf decomposition" `Quick test_rvol_rsurf_decomposition;
      Alcotest.test_case "BTE equation transform" `Quick test_bte_equation_transform;
      Alcotest.test_case "parse errors surfaced" `Quick test_parse_error_reported;
      Alcotest.test_case "dataflow schedule" `Quick test_dataflow_schedule;
      Alcotest.test_case "dataflow keeps tiny work on cpu" `Quick
        test_dataflow_all_cpu_when_tiny;
      Alcotest.test_case "dataflow on the BTE problem" `Quick test_dataflow_bte_problem;
      Alcotest.test_case "IR structure" `Quick test_ir_cpu_structure;
      Alcotest.test_case "emit Julia-like source" `Quick test_emit_julia;
      Alcotest.test_case "emit CUDA-like source" `Quick test_emit_cuda;
    ] )
