(* Unit and property tests for the symbolic expression core. *)

open Finch_symbolic

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let feq ?(eps = 1e-12) a b =
  Float.abs (a -. b) <= eps *. (1. +. Float.max (Float.abs a) (Float.abs b))

let check_float name a b =
  if not (feq a b) then
    Alcotest.failf "%s: expected %.17g, got %.17g" name a b

(* fixed environments for numeric evaluation *)
let env_sym = function
  | "dt" -> 0.25
  | "k" -> 2.0
  | "a" -> 3.0
  | "b" -> -1.5
  | "NORMAL_1" -> 0.6
  | "NORMAL_2" -> -0.8
  | "SURFACE" -> 1.0
  | "TIMEDERIVATIVE" -> 1.0
  | s -> float_of_int (String.length s)

let env_ref name idx side =
  let base = float_of_int (Hashtbl.hash (name, idx) mod 97) /. 13. in
  match side with
  | Expr.Here -> base
  | Expr.Cell1 -> base +. 0.5
  | Expr.Cell2 -> base -. 0.5

let ev e = Expr.eval ~env_sym ~env_ref e

(* ---------- unit tests ---------- *)

let test_constructors () =
  check_bool "add [] = 0" true (Expr.equal (Expr.add []) Expr.zero);
  check_bool "mul [] = 1" true (Expr.equal (Expr.mul []) Expr.one);
  check_bool "add singleton" true
    (Expr.equal (Expr.add [ Expr.sym "x" ]) (Expr.sym "x"));
  check_bool "mul singleton" true
    (Expr.equal (Expr.mul [ Expr.sym "x" ]) (Expr.sym "x"))

let test_equal_structural () =
  let a = Expr.ref_ "I" [ Expr.Ivar "d"; Expr.Ivar "b" ] in
  let b = Expr.ref_ "I" [ Expr.Ivar "d"; Expr.Ivar "b" ] in
  let c = Expr.ref_ ~side:Expr.Cell2 "I" [ Expr.Ivar "d"; Expr.Ivar "b" ] in
  check_bool "same refs equal" true (Expr.equal a b);
  check_bool "different side unequal" false (Expr.equal a c);
  check_bool "index shift matters" false
    (Expr.equal a (Expr.ref_ "I" [ Expr.Ishift ("d", 1); Expr.Ivar "b" ]))

let test_compare_total_order () =
  let es =
    [ Expr.num 1.; Expr.sym "x"; Expr.ref_ "u" []; Expr.add [ Expr.sym "x"; Expr.num 2. ];
      Expr.mul [ Expr.sym "y"; Expr.num 3. ]; Expr.pow (Expr.sym "x") (Expr.num 2.) ]
  in
  List.iter
    (fun a ->
      check_int "compare self = 0" 0 (Expr.compare_expr a a);
      List.iter
        (fun b ->
          let ab = Expr.compare_expr a b and ba = Expr.compare_expr b a in
          check_int "antisymmetric" 0 (compare (ab > 0) (ba < 0)))
        es)
    es

let test_subst_sym () =
  let e = Parser.parse "k*u + k^2" in
  let e' = Expr.subst_sym "k" (Expr.num 3.) e in
  check_bool "no k left" false (Expr.contains_sym "k" e');
  check_float "value after subst" ((3. *. env_sym "u") +. 9.) (ev e')

let test_subst_ref () =
  let e = Parser.parse "I[d,b] + 2*I[d,b]" in
  let e' = Expr.subst_ref "I" (fun _ _ -> Expr.num 5.) e in
  check_float "ref substituted" 15. (ev (Simplify.simplify e'))

let test_retag_side () =
  let e = Parser.parse "I[d,b] * vg[b]" in
  let e' = Expr.retag_side Expr.Cell2 e in
  match e' with
  | Expr.Mul l ->
    let has_cell2 =
      List.exists (function Expr.Ref (_, _, Expr.Cell2) -> true | _ -> false) l
    in
    check_bool "Here refs retagged" true has_cell2
  | _ -> Alcotest.fail "unexpected shape"

let test_refs_and_names () =
  let e = Parser.parse "I[d,b] + Io[b] * beta[b] + I[d,b]" in
  check_int "distinct refs" 3 (List.length (Expr.refs e));
  Alcotest.(check (list string))
    "ref names in order" [ "I"; "Io"; "beta" ] (Expr.ref_names e);
  Alcotest.(check (list string)) "index names" [ "d"; "b" ] (Expr.index_names e)

let test_fold_size () =
  let e = Parser.parse "a + b * (a + 1)" in
  check_bool "size positive" true (Expr.size e > 4)

let test_eval_functions () =
  check_float "sin" (sin 3.) (ev (Parser.parse "sin(a)"));
  check_float "exp" (exp (-1.5)) (ev (Parser.parse "exp(b)"));
  check_float "min" (-1.5) (ev (Parser.parse "min(a, b)"));
  check_float "max" 3. (ev (Parser.parse "max(a, b)"));
  check_float "sqrt" (sqrt 3.) (ev (Parser.parse "sqrt(a)"))

let test_eval_conditional () =
  check_float "true branch" 1. (ev (Parser.parse "conditional(a > 0, 1, 2)"));
  check_float "false branch" 2. (ev (Parser.parse "conditional(a < 0, 1, 2)"));
  check_float "le" 7. (ev (Parser.parse "conditional(b <= -1.5, 7, 8)"))

let test_eval_pow_negative_base () =
  (* integer powers of negative bases must be exact *)
  check_float "(-1.5)^2" 2.25 (ev (Parser.parse "b^2"));
  check_float "(-1.5)^3" (-3.375) (ev (Parser.parse "b^3"))

let test_eval_unknown_call () =
  Alcotest.check_raises "unknown function"
    (Invalid_argument "Expr.eval: unknown function frobnicate/1")
    (fun () -> ignore (ev (Parser.parse "frobnicate(a)")))

(* ---------- qcheck generators ---------- *)

let leaf_gen =
  QCheck.Gen.(
    frequency
      [ 3, map (fun x -> Expr.num (float_of_int x)) (int_range (-9) 9);
        2, map Expr.sym (oneofl [ "a"; "b"; "k"; "dt" ]);
        2,
        map
          (fun (n, i) -> Expr.ref_ n [ Expr.Ivar i ])
          (pair (oneofl [ "I"; "Io"; "beta" ]) (oneofl [ "d"; "b" ])) ])

(* widths and depth are kept small enough that full expansion stays
   tractable (expansion is inherently exponential in nesting) *)
let rec expr_gen n =
  let open QCheck.Gen in
  if n <= 0 then leaf_gen
  else
    frequency
      [ 2, leaf_gen;
        3, map Expr.add (list_size (int_range 2 3) (expr_gen (n - 1)));
        3, map Expr.mul (list_size (int_range 2 2) (expr_gen (n - 1)));
        1, map (fun e -> Expr.pow e (Expr.num 2.)) (expr_gen (n - 1));
        1,
        map3
          (fun c a b -> Expr.cond (Expr.cmp Expr.Gt c Expr.zero) a b)
          (expr_gen (n - 1)) (expr_gen (n - 1)) (expr_gen (n - 1)) ]

let arb_expr =
  QCheck.make ~print:Printer.to_string (expr_gen 3)

let prop_simplify_sound =
  QCheck.Test.make ~name:"simplify preserves value" ~count:300 arb_expr (fun e ->
      let v = ev e and v' = ev (Simplify.simplify e) in
      feq ~eps:1e-9 v v'
      || (Float.is_nan v && Float.is_nan v')
      || (Float.is_integer v && Float.abs v > 1e14) (* overflowy cases *))

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify idempotent" ~count:300 arb_expr (fun e ->
      let s = Simplify.simplify e in
      Expr.equal s (Simplify.simplify s))

let prop_expand_sound =
  QCheck.Test.make ~name:"expand preserves value" ~count:300 arb_expr (fun e ->
      let v = ev e and v' = ev (Simplify.expand e) in
      feq ~eps:1e-7 v v' || (Float.is_nan v && Float.is_nan v'))

let prop_terms_sum =
  QCheck.Test.make ~name:"terms sum back to the expression" ~count:200 arb_expr
    (fun e ->
      let v = ev e and v' = ev (Expr.add (Simplify.terms e)) in
      feq ~eps:1e-7 v v' || (Float.is_nan v && Float.is_nan v'))

let suite =
  ( "expr",
    [
      Alcotest.test_case "constructors" `Quick test_constructors;
      Alcotest.test_case "structural equality" `Quick test_equal_structural;
      Alcotest.test_case "compare is a total order" `Quick test_compare_total_order;
      Alcotest.test_case "subst_sym" `Quick test_subst_sym;
      Alcotest.test_case "subst_ref" `Quick test_subst_ref;
      Alcotest.test_case "retag_side" `Quick test_retag_side;
      Alcotest.test_case "refs and names" `Quick test_refs_and_names;
      Alcotest.test_case "fold/size" `Quick test_fold_size;
      Alcotest.test_case "eval functions" `Quick test_eval_functions;
      Alcotest.test_case "eval conditional" `Quick test_eval_conditional;
      Alcotest.test_case "pow of negative base" `Quick test_eval_pow_negative_base;
      Alcotest.test_case "unknown call raises" `Quick test_eval_unknown_call;
      QCheck_alcotest.to_alcotest prop_simplify_sound;
      QCheck_alcotest.to_alcotest prop_simplify_idempotent;
      QCheck_alcotest.to_alcotest prop_expand_sound;
      QCheck_alcotest.to_alcotest prop_terms_sum;
    ] )
