(* Parallel-runtime tests: breakdown accounting, network cost models and
   the effects-based SPMD executor. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_breakdown_arith () =
  let a =
    Prt.Breakdown.make ~intensity:3. ~temperature:1. ~communication:0.5 ()
  in
  Tutil.check_close "total" 4.5 (Prt.Breakdown.total a);
  let b = Prt.Breakdown.scale 2. a in
  Tutil.check_close "scaled" 9. (Prt.Breakdown.total b);
  let c = Prt.Breakdown.add a b in
  Tutil.check_close "added" 13.5 (Prt.Breakdown.total c);
  let p = Prt.Breakdown.percentages a in
  Tutil.check_close "intensity pct" (100. *. 3. /. 4.5) p.Prt.Breakdown.pct_intensity;
  Tutil.check_close "pcts sum to 100"
    100.
    (p.Prt.Breakdown.pct_intensity +. p.pct_temperature +. p.pct_communication
     +. p.pct_boundary +. p.pct_other)

let test_breakdown_record_timed () =
  let b = Prt.Breakdown.zero () in
  Prt.Breakdown.record b Prt.Breakdown.Intensity 1.5;
  Prt.Breakdown.record b Prt.Breakdown.Communication 0.5;
  let r = Prt.Breakdown.timed b Prt.Breakdown.Temperature (fun () -> 42) in
  check_int "timed returns" 42 r;
  check_bool "temperature recorded" true (b.Prt.Breakdown.temperature >= 0.);
  Tutil.check_close "intensity" 1.5 b.Prt.Breakdown.intensity

let test_network_models () =
  let net = Prt.Cluster.default_network in
  check_bool "p2p has latency floor" true
    (Prt.Cluster.p2p net ~bytes:0 >= net.Prt.Cluster.alpha);
  Tutil.check_close "allreduce p=1 free" 0. (Prt.Cluster.allreduce net ~p:1 ~bytes:1000);
  let a2 = Prt.Cluster.allreduce net ~p:2 ~bytes:1000 in
  let a16 = Prt.Cluster.allreduce net ~p:16 ~bytes:1000 in
  check_bool "allreduce grows log p" true (a16 > a2 && a16 < 8. *. a2);
  let g = Prt.Cluster.allgather net ~p:4 ~bytes_per_rank:100 in
  check_bool "allgather positive" true (g > 0.);
  Tutil.check_close "halo exchange sums"
    (2. *. Prt.Cluster.p2p net ~bytes:50)
    (Prt.Cluster.halo_exchange net ~neighbour_bytes:[ 50; 50 ]);
  check_bool "broadcast grows with p" true
    (Prt.Cluster.broadcast net ~p:8 ~bytes:100 > Prt.Cluster.broadcast net ~p:2 ~bytes:100)

let test_spmd_barrier_order () =
  (* events around a barrier: all "before" precede all "after" *)
  let log = ref [] in
  Prt.Spmd.run ~nranks:3 (fun rank ->
      log := (`Before, rank) :: !log;
      Prt.Spmd.barrier ();
      log := (`After, rank) :: !log);
  let events = List.rev !log in
  let rec split acc = function
    | (`Before, _) :: rest -> split (acc + 1) rest
    | rest -> acc, rest
  in
  let nbefore, rest = split 0 events in
  check_int "all befores first" 3 nbefore;
  check_int "then all afters" 3 (List.length rest)

let test_spmd_allreduce () =
  let results = Array.make 4 [||] in
  Prt.Spmd.run ~nranks:4 (fun rank ->
      let a = [| float_of_int rank; 1.; float_of_int (rank * rank) |] in
      Prt.Spmd.allreduce_sum a;
      results.(rank) <- a);
  Array.iter
    (fun a ->
      Tutil.check_close "sum of ranks" 6. a.(0);
      Tutil.check_close "sum of ones" 4. a.(1);
      Tutil.check_close "sum of squares" 14. a.(2))
    results

let test_spmd_multiple_rounds () =
  let acc = Array.make 3 0. in
  Prt.Spmd.run ~nranks:3 (fun rank ->
      for _round = 1 to 5 do
        let a = [| 1. |] in
        Prt.Spmd.allreduce_sum a;
        acc.(rank) <- acc.(rank) +. a.(0);
        Prt.Spmd.barrier ()
      done);
  Array.iter (fun v -> Tutil.check_close "5 rounds of 3" 15. v) acc

let test_spmd_single_rank () =
  let hit = ref false in
  Prt.Spmd.run ~nranks:1 (fun _ ->
      let a = [| 2. |] in
      Prt.Spmd.allreduce_sum a;
      Tutil.check_close "identity reduce" 2. a.(0);
      Prt.Spmd.barrier ();
      hit := true);
  check_bool "ran" true !hit

let test_spmd_mismatch_detected () =
  let mismatch () =
    Prt.Spmd.run ~nranks:2 (fun rank ->
        if rank = 0 then Prt.Spmd.barrier ()
        (* rank 1 exits without reaching the barrier *))
  in
  match mismatch () with
  | exception Prt.Spmd.Spmd_error _ -> ()
  | () -> Alcotest.fail "expected Spmd_error"

let test_spmd_length_mismatch () =
  let bad () =
    Prt.Spmd.run ~nranks:2 (fun rank ->
        let a = Array.make (1 + rank) 0. in
        Prt.Spmd.allreduce_sum a)
  in
  match bad () with
  | exception Prt.Spmd.Spmd_error _ -> ()
  | () -> Alcotest.fail "expected length mismatch error"

let test_spmd_stress () =
  (* many ranks, many mixed collective rounds: a prefix-sum style program
     whose final values are checkable in closed form *)
  let nranks = 16 and rounds = 30 in
  let finals = Array.make nranks 0. in
  Prt.Spmd.run ~nranks (fun rank ->
      let acc = ref 0. in
      for round = 1 to rounds do
        let a = [| float_of_int (rank + round) |] in
        Prt.Spmd.allreduce_sum a;
        acc := !acc +. a.(0);
        Prt.Spmd.barrier ()
      done;
      finals.(rank) <- !acc);
  (* sum over rounds of sum over ranks of (rank + round) *)
  let expected =
    let n = float_of_int nranks and r = float_of_int rounds in
    (r *. (n *. (n -. 1.) /. 2.)) +. (n *. (r *. (r +. 1.) /. 2.))
  in
  Array.iter (fun v -> Tutil.check_close "prefix sums" expected v) finals

let test_vranks () =
  let t = Prt.Vranks.create ~nranks:3 ~init:(fun r -> Array.make 2 (float_of_int r)) in
  Prt.Vranks.superstep t
    ~compute:(fun _ st -> st.(1) <- st.(0) *. 2.)
    ~exchange:(fun _ -> ());
  Tutil.check_close "rank 2 compute" 4. (Prt.Vranks.state t 2).(1);
  Prt.Vranks.allreduce_sum t ~get:(fun st -> st) ~set:(fun st a -> Array.blit a 0 st 0 2) ~len:2;
  Tutil.check_close "reduced" 3. (Prt.Vranks.state t 0).(0)

let suite =
  ( "prt",
    [
      Alcotest.test_case "breakdown arithmetic" `Quick test_breakdown_arith;
      Alcotest.test_case "breakdown record/timed" `Quick test_breakdown_record_timed;
      Alcotest.test_case "network cost models" `Quick test_network_models;
      Alcotest.test_case "spmd barrier ordering" `Quick test_spmd_barrier_order;
      Alcotest.test_case "spmd allreduce" `Quick test_spmd_allreduce;
      Alcotest.test_case "spmd multiple rounds" `Quick test_spmd_multiple_rounds;
      Alcotest.test_case "spmd single rank" `Quick test_spmd_single_rank;
      Alcotest.test_case "spmd mismatch detected" `Quick test_spmd_mismatch_detected;
      Alcotest.test_case "spmd length mismatch" `Quick test_spmd_length_mismatch;
      Alcotest.test_case "spmd stress (16 ranks, 30 rounds)" `Quick test_spmd_stress;
      Alcotest.test_case "vranks superstep" `Quick test_vranks;
    ] )
