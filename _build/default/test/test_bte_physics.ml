(* Physics-layer tests: dispersion, scattering, angular quadrature,
   equilibrium tables and the temperature inversion. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- dispersion ---------- *)

let test_paper_band_counts () =
  (* 40 frequency bands -> 40 LA + 15 TA = 55 resolved bands (paper) *)
  let d = Bte.Dispersion.paper () in
  check_int "LA bands" 40 d.Bte.Dispersion.n_la;
  check_int "TA bands" 15 d.Bte.Dispersion.n_ta;
  check_int "total" 55 (Bte.Dispersion.nbands d)

let test_band_structure () =
  let d = Bte.Dispersion.make ~n_la:10 in
  Array.iter
    (fun (b : Bte.Dispersion.band) ->
      check_bool "positive width" true (b.Bte.Dispersion.w_hi > b.Bte.Dispersion.w_lo);
      check_bool "centre inside" true
        (b.Bte.Dispersion.w_center > b.Bte.Dispersion.w_lo
         && b.Bte.Dispersion.w_center < b.Bte.Dispersion.w_hi);
      check_bool "positive group velocity" true (b.Bte.Dispersion.vg > 0.))
    d.Bte.Dispersion.bands;
  (* LA bands tile [0, wmax_la] *)
  let wmax = Bte.Dispersion.omega_max Bte.Dispersion.LA in
  Tutil.check_close ~eps:1e-9 "LA bands tile the range" wmax
    d.Bte.Dispersion.bands.(9).Bte.Dispersion.w_hi

let test_k_omega_inverse () =
  List.iter
    (fun br ->
      let wmax = Bte.Dispersion.omega_max br in
      List.iter
        (fun frac ->
          let w = frac *. wmax in
          let k = Bte.Dispersion.k_of_omega br w in
          Tutil.check_close ~eps:1e-9 "omega(k(w)) = w" w (Bte.Dispersion.omega_of_k br k);
          check_bool "k in range" true (k >= 0. && k <= Bte.Constants.k_max *. 1.0001))
        [ 0.01; 0.25; 0.5; 0.75; 0.99 ])
    [ Bte.Dispersion.LA; Bte.Dispersion.TA ]

let test_group_velocity_decreases () =
  (* quadratic dispersion with c < 0: vg decreases with frequency *)
  let vg_lo = Bte.Dispersion.vg_of_omega Bte.Dispersion.LA 1e12 in
  let vg_hi =
    Bte.Dispersion.vg_of_omega Bte.Dispersion.LA
      (0.9 *. Bte.Dispersion.omega_max Bte.Dispersion.LA)
  in
  check_bool "vg decreasing" true (vg_hi < vg_lo);
  Tutil.check_close ~eps:1e-3 "vg -> sound speed at w -> 0"
    Bte.Constants.vs_la
    (Bte.Dispersion.vg_of_omega Bte.Dispersion.LA 1e9)

let test_ta_below_la_range () =
  check_bool "TA zone edge below LA" true
    (Bte.Dispersion.omega_max Bte.Dispersion.TA
     < Bte.Dispersion.omega_max Bte.Dispersion.LA)

let test_dos_positive () =
  List.iter
    (fun frac ->
      let w = frac *. Bte.Dispersion.omega_max Bte.Dispersion.LA in
      check_bool "dos > 0" true (Bte.Dispersion.dos Bte.Dispersion.LA w > 0.))
    [ 0.1; 0.5; 0.9 ]

(* ---------- scattering ---------- *)

let test_rates_positive_and_monotone_t () =
  let d = Bte.Dispersion.paper () in
  Array.iter
    (fun b ->
      let r300 = Bte.Scattering.band_rate b 300. in
      let r400 = Bte.Scattering.band_rate b 400. in
      check_bool "positive rate" true (r300 > 0.);
      check_bool "rate grows with T" true (r400 >= r300))
    d.Bte.Dispersion.bands

let test_rates_grow_with_frequency () =
  (* impurity scattering (w^4) dominates at high frequency *)
  let lo = Bte.Scattering.rate Bte.Dispersion.LA 1e12 300. in
  let hi = Bte.Scattering.rate Bte.Dispersion.LA 6e13 300. in
  check_bool "higher frequency scatters faster" true (hi > lo *. 10.)

let test_tau_reciprocal () =
  let w = 3e13 in
  Tutil.check_close "tau = 1/rate" 1.
    (Bte.Scattering.tau Bte.Dispersion.LA w 300.
     *. Bte.Scattering.rate Bte.Dispersion.LA w 300.)

let test_realistic_lifetimes () =
  (* zone-edge LA phonons at room temperature live a few ps; low-frequency
     phonons much longer *)
  let tau_edge =
    Bte.Scattering.tau Bte.Dispersion.LA
      (0.95 *. Bte.Dispersion.omega_max Bte.Dispersion.LA) 300.
  in
  check_bool "edge lifetime ps-scale" true (tau_edge > 1e-13 && tau_edge < 1e-10);
  let tau_low = Bte.Scattering.tau Bte.Dispersion.LA 1e12 300. in
  check_bool "low-frequency much longer" true (tau_low > 100. *. tau_edge)

(* ---------- angles ---------- *)

let test_angles_2d_weights () =
  let a = Bte.Angles.make_2d ~ndirs:8 in
  let total = Array.fold_left ( +. ) 0. a.Bte.Angles.weight in
  Tutil.check_close "weights sum to 2pi" (2. *. Float.pi) total;
  for d = 0 to 7 do
    let v = Bte.Angles.dir a d in
    Tutil.check_close "unit vectors" 1. (Fvm.Vec.norm v)
  done;
  (* first moments vanish by symmetry *)
  let mx = ref 0. and my = ref 0. in
  for d = 0 to 7 do
    mx := !mx +. (a.Bte.Angles.weight.(d) *. a.Bte.Angles.sx.(d));
    my := !my +. (a.Bte.Angles.weight.(d) *. a.Bte.Angles.sy.(d))
  done;
  Tutil.check_close ~eps:1e-12 "zero net x flux" 0. !mx;
  Tutil.check_close ~eps:1e-12 "zero net y flux" 0. !my

let test_angles_3d_weights () =
  let a = Bte.Angles.make_3d ~n_azimuthal:8 ~n_polar:4 in
  check_int "count" 32 a.Bte.Angles.ndirs;
  let total = Array.fold_left ( +. ) 0. a.Bte.Angles.weight in
  Tutil.check_close "weights sum to 4pi" (4. *. Float.pi) total;
  for d = 0 to a.Bte.Angles.ndirs - 1 do
    Tutil.check_close "unit" 1. (Fvm.Vec.norm (Bte.Angles.dir a d))
  done

let test_reflection_involution () =
  List.iter
    (fun n ->
      let a = Bte.Angles.make_2d ~ndirs:n in
      check_bool "x-normal involution" true
        (Bte.Angles.reflection_is_involution a [| 1.; 0. |]);
      check_bool "y-normal involution" true
        (Bte.Angles.reflection_is_involution a [| 0.; 1. |]))
    [ 4; 8; 12; 20 ]

let test_reflection_exact_for_axes () =
  let a = Bte.Angles.make_2d ~ndirs:8 in
  for d = 0 to 7 do
    let r = Bte.Angles.reflect a d [| 1.; 0. |] in
    (* reflected vector flips x and keeps y *)
    Tutil.check_close "x flipped" (-.a.Bte.Angles.sx.(d)) a.Bte.Angles.sx.(r);
    Tutil.check_close "y kept" a.Bte.Angles.sy.(d) a.Bte.Angles.sy.(r)
  done

let test_angles_validation () =
  (match Bte.Angles.make_2d ~ndirs:5 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "odd direction count must be rejected")

(* ---------- equilibrium ---------- *)

let make_eqtab () =
  let d = Bte.Dispersion.make ~n_la:10 in
  d, Bte.Equilibrium.make ~omega_total:(2. *. Float.pi) d

let test_equilibrium_monotone_in_t () =
  let d, tab = make_eqtab () in
  for b = 0 to Bte.Dispersion.nbands d - 1 do
    let prev = ref 0. in
    List.iter
      (fun t ->
        let v = Bte.Equilibrium.i0 tab b t in
        check_bool "i0 positive" true (v > 0.);
        check_bool "i0 monotone" true (v > !prev);
        prev := v)
      [ 100.; 200.; 300.; 400.; 500. ]
  done

let test_equilibrium_interp_accuracy () =
  let d, tab = make_eqtab () in
  for b = 0 to Bte.Dispersion.nbands d - 1 do
    List.iter
      (fun t ->
        Tutil.check_close ~eps:5e-5 "interp vs exact"
          (Bte.Equilibrium.i0_exact tab b t)
          (Bte.Equilibrium.i0 tab b t))
      [ 123.4; 300.17; 456.7 ]
  done

let test_equilibrium_derivative () =
  let d, tab = make_eqtab () in
  for b = 0 to Bte.Dispersion.nbands d - 1 do
    let t = 310. in
    let h = 0.5 in
    let numeric =
      (Bte.Equilibrium.i0_exact tab b (t +. h) -. Bte.Equilibrium.i0_exact tab b (t -. h))
      /. (2. *. h)
    in
    let tabulated = Bte.Equilibrium.di0 tab b t in
    Tutil.check_close ~eps:2e-3 "dI0/dT" numeric tabulated
  done

let test_energy_density_monotone () =
  let _, tab = make_eqtab () in
  check_bool "energy density grows with T" true
    (Bte.Equilibrium.energy_density tab 350. > Bte.Equilibrium.energy_density tab 250.)

(* ---------- temperature inversion ---------- *)

let make_model () =
  let d = Bte.Dispersion.make ~n_la:10 in
  let a = Bte.Angles.make_2d ~ndirs:8 in
  let tab = Bte.Equilibrium.make ~omega_total:a.Bte.Angles.total d in
  d, a, Bte.Temperature.make ~disp:d ~eqtab:tab ~angles:a ()

let test_newton_roundtrip () =
  (* at equilibrium intensity for T0, the inversion must return T0 *)
  let d, a, m = make_model () in
  let tab = m.Bte.Temperature.eqtab in
  List.iter
    (fun t0 ->
      let jb b = a.Bte.Angles.total *. Bte.Equilibrium.i0 tab b t0 in
      let t = Bte.Temperature.newton m ~jb ~guess:(t0 +. 17.) in
      Tutil.check_close ~eps:1e-6 "per-band roundtrip" t0 t;
      (* scalar-energy formulation *)
      let g = ref 0. in
      for b = 0 to Bte.Dispersion.nbands d - 1 do
        let band = Bte.Dispersion.band d b in
        let rate = Bte.Scattering.band_rate band t0 in
        g := !g +. (jb b *. rate /. band.Bte.Dispersion.vg)
      done;
      let t' = Bte.Temperature.newton_scalar m ~g:!g ~guess:(t0 -. 23.) in
      Tutil.check_close ~eps:1e-6 "scalar roundtrip" t0 t')
    [ 150.; 250.; 300.; 350.; 450. ]

let test_newton_monotone () =
  (* more absorbed energy -> higher temperature *)
  let d, a, m = make_model () in
  let tab = m.Bte.Temperature.eqtab in
  ignore d;
  let jb0 b = a.Bte.Angles.total *. Bte.Equilibrium.i0 tab b 300. in
  let t1 = Bte.Temperature.newton m ~jb:jb0 ~guess:300. in
  let t2 = Bte.Temperature.newton m ~jb:(fun b -> 1.3 *. jb0 b) ~guess:300. in
  check_bool "hotter with more energy" true (t2 > t1)

let test_newton_from_bad_guess () =
  let _, a, m = make_model () in
  let tab = m.Bte.Temperature.eqtab in
  let jb b = a.Bte.Angles.total *. Bte.Equilibrium.i0 tab b 320. in
  let t = Bte.Temperature.newton m ~jb ~guess:(tab.Bte.Equilibrium.t_hi) in
  Tutil.check_close ~eps:1e-5 "converges from the clamp" 320. t

(* ---------- kinetic-theory conductivity ---------- *)

let test_conductivity_magnitude () =
  (* silicon's measured k(300K) is 148 W/mK; the acoustic-only Holland
     model should land in the same decade *)
  let k300 = Bte.Conductivity.bulk 300. in
  check_bool (Printf.sprintf "k(300K) = %.0f in [50, 250]" k300) true
    (k300 > 50. && k300 < 250.)

let test_conductivity_trend () =
  (* above the Umklapp peak, k decreases with temperature *)
  let k200 = Bte.Conductivity.bulk 200. in
  let k300 = Bte.Conductivity.bulk 300. in
  let k400 = Bte.Conductivity.bulk 400. in
  check_bool "k(200) > k(300) > k(400)" true (k200 > k300 && k300 > k400);
  (* roughly 1/T^alpha with alpha in [1, 2] *)
  let alpha = log (k200 /. k400) /. log 2. in
  check_bool (Printf.sprintf "power law alpha %.2f" alpha) true
    (alpha > 0.9 && alpha < 2.2)

let test_heat_capacity () =
  (* acoustic-branch C grows with T toward saturation; a large part of
     silicon's 1.66e6 J/m3K *)
  let c100 = Bte.Conductivity.heat_capacity 100. in
  let c300 = Bte.Conductivity.heat_capacity 300. in
  check_bool "C grows" true (c300 > c100);
  check_bool "C(300) order of magnitude" true (c300 > 3e5 && c300 < 1.66e6)

let test_mean_free_path () =
  (* the sub-micron scale that motivates the whole paper *)
  let mfp = Bte.Conductivity.mean_free_path 300. in
  check_bool
    (Printf.sprintf "MFP(300K) = %.0f nm in [30, 500]" (1e9 *. mfp))
    true
    (mfp > 30e-9 && mfp < 500e-9)

let suite =
  ( "bte-physics",
    [
      Alcotest.test_case "paper band counts (40 -> 55)" `Quick test_paper_band_counts;
      Alcotest.test_case "band structure" `Quick test_band_structure;
      Alcotest.test_case "k/omega inverse" `Quick test_k_omega_inverse;
      Alcotest.test_case "group velocity trend" `Quick test_group_velocity_decreases;
      Alcotest.test_case "TA range below LA" `Quick test_ta_below_la_range;
      Alcotest.test_case "density of states" `Quick test_dos_positive;
      Alcotest.test_case "rates positive/monotone in T" `Quick
        test_rates_positive_and_monotone_t;
      Alcotest.test_case "rates grow with frequency" `Quick test_rates_grow_with_frequency;
      Alcotest.test_case "tau reciprocal" `Quick test_tau_reciprocal;
      Alcotest.test_case "realistic lifetimes" `Quick test_realistic_lifetimes;
      Alcotest.test_case "2-D angular weights" `Quick test_angles_2d_weights;
      Alcotest.test_case "3-D angular weights" `Quick test_angles_3d_weights;
      Alcotest.test_case "reflection involution" `Quick test_reflection_involution;
      Alcotest.test_case "axis reflection exact" `Quick test_reflection_exact_for_axes;
      Alcotest.test_case "angles validation" `Quick test_angles_validation;
      Alcotest.test_case "equilibrium monotone in T" `Quick test_equilibrium_monotone_in_t;
      Alcotest.test_case "equilibrium interpolation" `Quick test_equilibrium_interp_accuracy;
      Alcotest.test_case "equilibrium derivative" `Quick test_equilibrium_derivative;
      Alcotest.test_case "energy density monotone" `Quick test_energy_density_monotone;
      Alcotest.test_case "newton roundtrip" `Quick test_newton_roundtrip;
      Alcotest.test_case "newton monotone" `Quick test_newton_monotone;
      Alcotest.test_case "newton from bad guess" `Quick test_newton_from_bad_guess;
      Alcotest.test_case "conductivity magnitude" `Quick test_conductivity_magnitude;
      Alcotest.test_case "conductivity trend" `Quick test_conductivity_trend;
      Alcotest.test_case "heat capacity" `Quick test_heat_capacity;
      Alcotest.test_case "mean free path" `Quick test_mean_free_path;
    ] )
