(* Sparse linear algebra and the finite-element path: CSR, CG, P1
   elements, assembly invariants, weak-form classification, and
   manufactured-solution convergence. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- CSR ---------- *)

let test_csr_triplets () =
  let m =
    La.Csr.of_triplets ~nrows:3 ~ncols:3
      [ 0, 0, 1.; 0, 0, 2.; 1, 2, 5.; 2, 1, -1.; 2, 2, 4.; 1, 2, 0. ]
  in
  check_int "nnz after merge" 4 (La.Csr.nnz m);
  Tutil.check_close "duplicates summed" 3. (La.Csr.get m 0 0);
  Tutil.check_close "entry" 5. (La.Csr.get m 1 2);
  Tutil.check_close "missing entry is zero" 0. (La.Csr.get m 1 0);
  Alcotest.(check (array (float 0.))) "diagonal" [| 3.; 0.; 4. |] (La.Csr.diagonal m)

let test_csr_spmv () =
  let m = La.Csr.of_triplets ~nrows:2 ~ncols:3 [ 0, 0, 1.; 0, 2, 2.; 1, 1, 3. ] in
  let y = La.Csr.mul m [| 1.; 2.; 3. |] in
  Alcotest.(check (array (float 1e-12))) "Ax" [| 7.; 6. |] y

let test_csr_validation () =
  match La.Csr.of_triplets ~nrows:2 ~ncols:2 [ 2, 0, 1. ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range triplet must be rejected"

let test_csr_symmetry () =
  let sym = La.Csr.of_triplets ~nrows:2 ~ncols:2 [ 0, 1, 2.; 1, 0, 2.; 0, 0, 1.; 1, 1, 1. ] in
  check_bool "symmetric" true (La.Csr.is_symmetric sym);
  let asym = La.Csr.of_triplets ~nrows:2 ~ncols:2 [ 0, 1, 2.; 1, 0, 1. ] in
  check_bool "asymmetric" false (La.Csr.is_symmetric asym)

(* ---------- solvers ---------- *)

let laplace_1d n =
  (* tridiagonal SPD [2 -1] of size n *)
  let triplets = ref [] in
  for i = 0 to n - 1 do
    triplets := (i, i, 2.) :: !triplets;
    if i > 0 then triplets := (i, i - 1, -1.) :: !triplets;
    if i < n - 1 then triplets := (i, i + 1, -1.) :: !triplets
  done;
  La.Csr.of_triplets ~nrows:n ~ncols:n !triplets

let test_cg_solves () =
  let n = 50 in
  let a = laplace_1d n in
  let x_true = Array.init n (fun i -> sin (float_of_int i /. 7.)) in
  let b = La.Csr.mul a x_true in
  let x = Array.make n 0. in
  let stats = La.Solvers.cg a ~b ~x in
  check_bool "converged" true stats.La.Solvers.converged;
  check_bool "few iterations" true (stats.La.Solvers.iterations <= n);
  Array.iteri
    (fun i v -> Tutil.check_close ~eps:1e-7 "solution" x_true.(i) v)
    x

let test_cg_vs_jacobi () =
  let n = 30 in
  let a = laplace_1d n in
  let b = Array.make n 1. in
  let x1 = Array.make n 0. and x2 = Array.make n 0. in
  let s1 = La.Solvers.cg a ~b ~x:x1 in
  let s2 = La.Solvers.jacobi ~max_iter:20000 ~tol:1e-8 a ~b ~x:x2 in
  check_bool "both converge" true
    (s1.La.Solvers.converged && s2.La.Solvers.converged);
  check_bool "cg much faster" true
    (s1.La.Solvers.iterations * 5 < s2.La.Solvers.iterations);
  Array.iteri (fun i v -> Tutil.check_close ~eps:1e-5 "agree" x1.(i) v) x2

(* ---------- P1 elements and assembly ---------- *)

let unit_square n = Fvm.Mesh_gen.triangulated_rectangle ~nx:n ~ny:n ~lx:1. ~ly:1. ()

let test_p1_local_matrices () =
  let coords = [| 0.; 0.; 1.; 0.; 0.; 1. |] in
  let e = Fem.P1.element_of coords [| 0; 1; 2 |] in
  Tutil.check_close "area" 0.5 e.Fem.P1.area;
  let k = Fem.P1.local_stiffness e in
  (* stiffness rows sum to zero (constants are in the kernel) *)
  for i = 0 to 2 do
    Tutil.check_close "row sum" 0. (k.(i).(0) +. k.(i).(1) +. k.(i).(2))
  done;
  (* reference-triangle stiffness: K = 1/2 [2 -1 -1; -1 1 0; -1 0 1] *)
  Tutil.check_close "K00" 1. k.(0).(0);
  Tutil.check_close "K01" (-0.5) k.(0).(1);
  Tutil.check_close "K12" 0. k.(1).(2);
  let m = Fem.P1.local_mass e in
  (* total mass = element area *)
  let total = ref 0. in
  Array.iter (Array.iter (fun v -> total := !total +. v)) m;
  Tutil.check_close "mass total" 0.5 !total

let test_assembly_invariants () =
  let sp = Fem.Assembly.space_of_mesh (unit_square 6) in
  let k = Fem.Assembly.assemble_operator sp ~stiffness:1. ~mass:0. in
  let m = Fem.Assembly.assemble_operator sp ~stiffness:0. ~mass:1. in
  check_bool "K symmetric" true (La.Csr.is_symmetric k);
  check_bool "M symmetric" true (La.Csr.is_symmetric m);
  let ones = Array.make sp.Fem.Assembly.nnodes 1. in
  (* K 1 = 0 *)
  Array.iter
    (fun v -> Tutil.check_close ~eps:1e-10 "K annihilates constants" 0. v)
    (La.Csr.mul k ones);
  (* 1^T M 1 = domain area *)
  let m1 = La.Csr.mul m ones in
  let total = Array.fold_left ( +. ) 0. m1 in
  Tutil.check_close "mass = area" 1.0 total;
  (* load of f=1 integrates to the area as well *)
  let b = Fem.Assembly.assemble_load sp (fun _ -> 1.) in
  Tutil.check_close "load of unity" 1.0 (Array.fold_left ( +. ) 0. b)

let test_space_requires_triangles () =
  match Fem.Assembly.space_of_mesh (Fvm.Mesh_gen.rectangle ~nx:2 ~ny:2 ~lx:1. ~ly:1. ()) with
  | exception Fem.Assembly.Fem_error _ -> ()
  | _ -> Alcotest.fail "quad mesh must be rejected"

(* ---------- weak-form classification ---------- *)

let test_weak_classification () =
  let form =
    Fem.Weak.parse_form
      ~coef_value:(function "alpha" -> 2.5 | "c" -> 3. | s -> Alcotest.failf "coef %s" s)
      "alpha*gradgrad(u,v) + c*u*v - 7*v"
  in
  Tutil.check_close "stiffness coefficient" 2.5 form.Fem.Weak.stiffness;
  Tutil.check_close "mass coefficient" 3. form.Fem.Weak.mass;
  check_int "bilinear terms" 2 form.Fem.Weak.bilinear_terms;
  check_int "linear terms" 1 form.Fem.Weak.linear_terms;
  Tutil.check_close "load density" (-7.) (form.Fem.Weak.load [| 0.3; 0.4 |]);
  check_bool "report mentions groups" true
    (Tutil.contains (Fem.Weak.report form) "bilinear")

let test_weak_spatial_load () =
  let form = Fem.Weak.parse_form "gradgrad(u,v) - sin(pi*x)*sin(pi*y)*v" in
  Tutil.check_close "load at centre" (-1.) (form.Fem.Weak.load [| 0.5; 0.5 |]);
  Tutil.check_close ~eps:1e-12 "load at corner" 0. (form.Fem.Weak.load [| 0.; 0.7 |])

let test_weak_rejects_nonsense () =
  (match Fem.Weak.parse_form "u * u * v" with
   | exception Fem.Weak.Weak_error _ -> ()
   | _ -> Alcotest.fail "nonlinear trial term must be rejected");
  match Fem.Weak.parse_form "u" with
  | exception Fem.Weak.Weak_error _ -> ()
  | _ -> Alcotest.fail "trial-only term must be rejected"

(* ---------- manufactured solutions ---------- *)

let exact pos = sin (Float.pi *. pos.(0)) *. sin (Float.pi *. pos.(1))

let poisson_error n =
  let sp = Fem.Assembly.space_of_mesh (unit_square n) in
  let form =
    Fem.Weak.parse_form "gradgrad(u,v) - 2*pi^2*sin(pi*x)*sin(pi*y)*v"
  in
  let u, _ =
    Fem.Weak.solve_steady sp form ~dirichlet_regions:[ 1; 2; 3; 4 ]
      ~dirichlet_value:(fun _ -> 0.)
  in
  Fem.Assembly.l2_error sp u exact

let test_poisson_convergence () =
  let e1 = poisson_error 8 in
  let e2 = poisson_error 16 in
  let order = log (e1 /. e2) /. log 2. in
  check_bool
    (Printf.sprintf "P1 L2 order ~2 (got %.2f, errors %.2e -> %.2e)" order e1 e2)
    true
    (order > 1.6 && order < 2.4);
  check_bool "small error at n=16" true (e2 < 0.02)

let test_heat_decay () =
  (* u_t = alpha Laplace u with u0 = fundamental mode: amplitude decays as
     exp(-2 pi^2 alpha t) *)
  let sp = Fem.Assembly.space_of_mesh (unit_square 10) in
  let alpha = 0.5 in
  let dt = 1e-3 and nsteps = 100 in
  let u =
    Fem.Weak.solve_heat sp ~alpha ~source:(fun _ -> 0.)
      ~dirichlet_regions:[ 1; 2; 3; 4 ] ~dirichlet_value:(fun _ -> 0.) ~dt
      ~nsteps ~initial:exact
  in
  let amp = Fem.Assembly.interpolate sp u [| 0.5; 0.5 |] in
  let lambda = 2. *. Float.pi *. Float.pi *. alpha in
  let expected = exp (-.lambda *. (dt *. float_of_int nsteps)) in
  (* backward Euler + P1 on a coarse mesh: ~10% accuracy is expected *)
  check_bool
    (Printf.sprintf "decay amplitude %.4f vs analytic %.4f" amp expected)
    true
    (Float.abs (amp -. expected) < 0.15 *. expected +. 0.02);
  check_bool "decayed but positive" true (amp > 0. && amp < 1.)

let suite =
  ( "fem",
    [
      Alcotest.test_case "csr triplets" `Quick test_csr_triplets;
      Alcotest.test_case "csr spmv" `Quick test_csr_spmv;
      Alcotest.test_case "csr validation" `Quick test_csr_validation;
      Alcotest.test_case "csr symmetry" `Quick test_csr_symmetry;
      Alcotest.test_case "cg solves" `Quick test_cg_solves;
      Alcotest.test_case "cg vs jacobi" `Quick test_cg_vs_jacobi;
      Alcotest.test_case "p1 local matrices" `Quick test_p1_local_matrices;
      Alcotest.test_case "assembly invariants" `Quick test_assembly_invariants;
      Alcotest.test_case "space requires triangles" `Quick test_space_requires_triangles;
      Alcotest.test_case "weak classification" `Quick test_weak_classification;
      Alcotest.test_case "weak spatial load" `Quick test_weak_spatial_load;
      Alcotest.test_case "weak rejects nonsense" `Quick test_weak_rejects_nonsense;
      Alcotest.test_case "poisson convergence O(h^2)" `Quick test_poisson_convergence;
      Alcotest.test_case "heat decay vs analytic" `Quick test_heat_decay;
    ] )
