(* Mesh construction and invariant tests (rectangle, triangulated, line),
   plus property tests over random grid sizes. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let assert_ok m =
  match Fvm.Mesh.check m with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "mesh check failed: %s" (String.concat "; " errs)

let test_rectangle_counts () =
  let m = Fvm.Mesh_gen.rectangle ~nx:4 ~ny:3 ~lx:2.0 ~ly:1.5 () in
  check_int "cells" 12 m.Fvm.Mesh.ncells;
  (* faces: vertical (nx+1)*ny + horizontal nx*(ny+1) *)
  check_int "faces" ((5 * 3) + (4 * 4)) m.Fvm.Mesh.nfaces;
  check_int "boundary faces" (2 * (4 + 3)) (Array.length m.Fvm.Mesh.boundary_faces);
  assert_ok m

let test_rectangle_geometry () =
  let m = Fvm.Mesh_gen.rectangle ~nx:4 ~ny:3 ~lx:2.0 ~ly:1.5 () in
  Tutil.check_close "total volume" 3.0 (Fvm.Mesh.total_volume m);
  Array.iter
    (fun v -> Tutil.check_close "uniform cell volume" (0.5 *. 0.5) v)
    m.Fvm.Mesh.cell_volume;
  (* areas: vertical faces have length dy=0.5, horizontal dx=0.5 *)
  Array.iter
    (fun a -> Tutil.check_close "face area" 0.5 a)
    m.Fvm.Mesh.face_area

let test_rectangle_regions () =
  let m = Fvm.Mesh_gen.rectangle ~nx:5 ~ny:4 ~lx:1.0 ~ly:1.0 () in
  Alcotest.(check (list int)) "regions 1..4" [ 1; 2; 3; 4 ] (Fvm.Mesh.boundary_regions m);
  check_int "bottom faces" 5 (Array.length (Fvm.Mesh.faces_of_region m 1));
  check_int "right faces" 4 (Array.length (Fvm.Mesh.faces_of_region m 2));
  check_int "top faces" 5 (Array.length (Fvm.Mesh.faces_of_region m 3));
  check_int "left faces" 4 (Array.length (Fvm.Mesh.faces_of_region m 4));
  (* normals of region 1 point down *)
  Array.iter
    (fun f ->
      let n = Fvm.Mesh.face_normal m f in
      Tutil.check_close "bottom normal y" (-1.) n.(1))
    (Fvm.Mesh.faces_of_region m 1)

let test_neighbour_symmetry () =
  let m = Fvm.Mesh_gen.rectangle ~nx:6 ~ny:6 ~lx:1.0 ~ly:1.0 () in
  for f = 0 to m.Fvm.Mesh.nfaces - 1 do
    let c1 = m.Fvm.Mesh.face_cell1.(f) and c2 = m.Fvm.Mesh.face_cell2.(f) in
    if c2 >= 0 then begin
      check_int "neighbour of c1 is c2" c2 (Fvm.Mesh.neighbour m f c1);
      check_int "neighbour of c2 is c1" c1 (Fvm.Mesh.neighbour m f c2);
      Tutil.check_close "sign from c1" 1. (Fvm.Mesh.normal_sign m f c1);
      Tutil.check_close "sign from c2" (-1.) (Fvm.Mesh.normal_sign m f c2)
    end
  done

let test_cell_faces_cover () =
  let m = Fvm.Mesh_gen.rectangle ~nx:3 ~ny:3 ~lx:1.0 ~ly:1.0 () in
  (* every quad cell has 4 faces; every face appears in exactly the cells it
     bounds *)
  Array.iter (fun fs -> check_int "quad faces" 4 (Array.length fs)) m.Fvm.Mesh.cell_faces;
  let counts = Array.make m.Fvm.Mesh.nfaces 0 in
  Array.iter
    (Array.iter (fun f -> counts.(f) <- counts.(f) + 1))
    m.Fvm.Mesh.cell_faces;
  Array.iteri
    (fun f n ->
      let expected = if m.Fvm.Mesh.face_cell2.(f) >= 0 then 2 else 1 in
      check_int "face multiplicity" expected n)
    counts

let test_triangulated () =
  let m = Fvm.Mesh_gen.triangulated_rectangle ~nx:4 ~ny:3 ~lx:2.0 ~ly:1.5 () in
  check_int "cells" 24 m.Fvm.Mesh.ncells;
  Tutil.check_close "total volume" 3.0 (Fvm.Mesh.total_volume m);
  Array.iter (fun fs -> check_int "triangle faces" 3 (Array.length fs)) m.Fvm.Mesh.cell_faces;
  assert_ok m

let test_line () =
  let m = Fvm.Mesh_gen.line ~n:10 ~length:2.0 in
  check_int "cells" 10 m.Fvm.Mesh.ncells;
  check_int "faces" 11 m.Fvm.Mesh.nfaces;
  Tutil.check_close "total length" 2.0 (Fvm.Mesh.total_volume m);
  Alcotest.(check (list int)) "end regions" [ 1; 2 ] (Fvm.Mesh.boundary_regions m);
  assert_ok m

let test_degenerate_rejected () =
  Alcotest.check_raises "empty grid"
    (Invalid_argument "Mesh_gen.rectangle: empty grid") (fun () ->
      ignore (Fvm.Mesh_gen.rectangle ~nx:0 ~ny:2 ~lx:1. ~ly:1. ()))

let test_custom_classifier () =
  (* everything is region 7 *)
  let m =
    Fvm.Mesh_gen.rectangle ~classify:(fun _ _ -> 7) ~nx:3 ~ny:3 ~lx:1. ~ly:1. ()
  in
  Alcotest.(check (list int)) "single region" [ 7 ] (Fvm.Mesh.boundary_regions m)

let test_vec_helpers () =
  let v = [| 3.; 4. |] in
  Tutil.check_close "norm" 5. (Fvm.Vec.norm v);
  let r = Fvm.Vec.reflect [| 1.; 1. |] [| 0.; 1. |] in
  Tutil.check_close "reflect x" 1. r.(0);
  Tutil.check_close "reflect y" (-1.) r.(1);
  let u = Fvm.Vec.normalize v in
  Tutil.check_close "unit" 1. (Fvm.Vec.norm u)

let test_box_3d () =
  let m = Fvm.Mesh_gen.box ~nx:3 ~ny:4 ~nz:2 ~lx:3.0 ~ly:2.0 ~lz:1.0 () in
  check_int "cells" 24 m.Fvm.Mesh.ncells;
  check_int "faces" ((4 * 4 * 2) + (3 * 5 * 2) + (3 * 4 * 3)) m.Fvm.Mesh.nfaces;
  Tutil.check_close "total volume" 6.0 (Fvm.Mesh.total_volume m);
  Alcotest.(check (list int)) "six regions" [ 1; 2; 3; 4; 5; 6 ]
    (Fvm.Mesh.boundary_regions m);
  (* region sizes: bottom/top nx*ny, y-walls nx*nz, x-walls ny*nz *)
  check_int "bottom" 12 (Array.length (Fvm.Mesh.faces_of_region m 1));
  check_int "top" 12 (Array.length (Fvm.Mesh.faces_of_region m 2));
  check_int "y=0 wall" 6 (Array.length (Fvm.Mesh.faces_of_region m 3));
  check_int "x=lx wall" 8 (Array.length (Fvm.Mesh.faces_of_region m 4));
  assert_ok m;
  (* hex cells have six faces *)
  Array.iter (fun fs -> check_int "hex faces" 6 (Array.length fs)) m.Fvm.Mesh.cell_faces

let test_box_neighbours () =
  let m = Fvm.Mesh_gen.box ~nx:2 ~ny:2 ~nz:2 ~lx:1. ~ly:1. ~lz:1. () in
  (* each cell of a 2x2x2 box has exactly 3 interior neighbours *)
  for c = 0 to 7 do
    let n = ref 0 in
    Array.iter
      (fun f -> if Fvm.Mesh.neighbour m f c >= 0 then incr n)
      m.Fvm.Mesh.cell_faces.(c);
    check_int "3 neighbours" 3 !n
  done

let prop_random_grids =
  QCheck.Test.make ~name:"random rectangles satisfy mesh invariants" ~count:40
    QCheck.(pair (int_range 1 12) (int_range 1 12))
    (fun (nx, ny) ->
      let m = Fvm.Mesh_gen.rectangle ~nx ~ny ~lx:(float_of_int nx) ~ly:1.3 () in
      (match Fvm.Mesh.check m with Ok () -> () | Error e -> QCheck.Test.fail_reportf "%s" (String.concat ";" e));
      m.Fvm.Mesh.ncells = nx * ny
      && Array.length m.Fvm.Mesh.boundary_faces = 2 * (nx + ny)
      && Tutil.feq (Fvm.Mesh.total_volume m) (float_of_int nx *. 1.3))

let prop_triangulated_grids =
  QCheck.Test.make ~name:"random triangulations satisfy mesh invariants" ~count:25
    QCheck.(pair (int_range 1 9) (int_range 1 9))
    (fun (nx, ny) ->
      let m =
        Fvm.Mesh_gen.triangulated_rectangle ~nx ~ny ~lx:1.0 ~ly:(float_of_int ny) ()
      in
      (match Fvm.Mesh.check m with Ok () -> true | Error _ -> false)
      && m.Fvm.Mesh.ncells = 2 * nx * ny)

let suite =
  ( "mesh",
    [
      Alcotest.test_case "rectangle counts" `Quick test_rectangle_counts;
      Alcotest.test_case "rectangle geometry" `Quick test_rectangle_geometry;
      Alcotest.test_case "boundary regions" `Quick test_rectangle_regions;
      Alcotest.test_case "neighbour symmetry" `Quick test_neighbour_symmetry;
      Alcotest.test_case "cell-face covering" `Quick test_cell_faces_cover;
      Alcotest.test_case "triangulated rectangle" `Quick test_triangulated;
      Alcotest.test_case "1-D line" `Quick test_line;
      Alcotest.test_case "degenerate rejected" `Quick test_degenerate_rejected;
      Alcotest.test_case "custom classifier" `Quick test_custom_classifier;
      Alcotest.test_case "vector helpers" `Quick test_vec_helpers;
      Alcotest.test_case "3-D box mesh" `Quick test_box_3d;
      Alcotest.test_case "3-D box neighbours" `Quick test_box_neighbours;
      QCheck_alcotest.to_alcotest prop_random_grids;
      QCheck_alcotest.to_alcotest prop_triangulated_grids;
    ] )
