test/test_mesh.ml: Alcotest Array Fvm QCheck QCheck_alcotest String Tutil
