test/test_prt.ml: Alcotest Array List Prt Tutil
