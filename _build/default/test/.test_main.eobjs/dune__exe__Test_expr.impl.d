test/test_expr.ml: Alcotest Expr Finch_symbolic Float Hashtbl List Parser Printer QCheck QCheck_alcotest Simplify String
