test/test_gpu.ml: Alcotest Bigarray Float Gpu_sim QCheck QCheck_alcotest String Tutil
