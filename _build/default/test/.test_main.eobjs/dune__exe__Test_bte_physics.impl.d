test/test_bte_physics.ml: Alcotest Array Bte Float Fvm List Printf Tutil
