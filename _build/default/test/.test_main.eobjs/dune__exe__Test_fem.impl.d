test/test_fem.ml: Alcotest Array Fem Float Fvm La Printf Tutil
