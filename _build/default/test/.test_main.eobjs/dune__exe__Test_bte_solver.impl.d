test/test_bte_solver.ml: Alcotest Array Bte Filename Finch Float Fvm Gpu_sim List Option Printf Sys Tutil
