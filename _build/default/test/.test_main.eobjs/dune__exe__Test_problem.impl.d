test/test_problem.ml: Alcotest Array Finch Fvm Gpu_sim List
