test/test_gmsh.ml: Alcotest Array Filename Fvm List Printf String Sys Tutil
