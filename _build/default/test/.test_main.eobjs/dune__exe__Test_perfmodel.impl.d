test/test_perfmodel.ml: Alcotest Bte Float Gpu_sim List Printf Prt
