test/test_solver.ml: Alcotest Array Finch Finch_symbolic Float Fvm Gpu_sim List Printf QCheck QCheck_alcotest Tutil
