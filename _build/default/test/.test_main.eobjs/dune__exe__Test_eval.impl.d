test/test_eval.ml: Alcotest Array Expr Finch Finch_symbolic Float Fvm List Parser QCheck QCheck_alcotest Test_expr Tutil
