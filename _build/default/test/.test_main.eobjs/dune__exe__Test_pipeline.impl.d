test/test_pipeline.ml: Alcotest Bte Expr Finch Finch_symbolic Fvm List Parser Simplify Tutil
