test/test_partition.ml: Alcotest Array Fvm List Printf QCheck QCheck_alcotest Tutil
