test/test_ir.ml: Alcotest Finch Fvm List String
