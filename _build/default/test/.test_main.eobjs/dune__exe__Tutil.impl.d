test/tutil.ml: Alcotest Float String
