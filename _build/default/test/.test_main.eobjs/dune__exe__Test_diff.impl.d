test/test_diff.ml: Alcotest Diff Expr Finch_symbolic Float List Parser Printer QCheck QCheck_alcotest Simplify String Tutil
