test/test_field.ml: Alcotest Bigarray Fvm List Tutil
