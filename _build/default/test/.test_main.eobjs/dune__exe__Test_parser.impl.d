test/test_parser.ml: Alcotest Expr Finch Finch_symbolic Float Hashtbl List Parser Printer QCheck QCheck_alcotest String Test_expr Tutil
