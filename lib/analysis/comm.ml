(* Communication-schedule pass (codes A025-A032).

   The other passes see one rank's program in isolation; this one checks
   the communication *between* ranks and devices.  From a lowered
   program plus its halo plan it elaborates the full rank x device
   message schedule — every rank's send/recv sequence per exchange
   round, every device's D2d ghost push — and verifies it statically:

   - matching and ordering, by running [Prt.Commsched]'s deterministic
     matching simulation over each round (A025 unmatched send, A026
     unmatched recv, A027 waits-for deadlock cycle, A028 ambiguous FIFO
     match on a busy channel, A029 payload-length disagreement);
   - halo completeness (A030): for every variable read across partition
     faces (CELL2), each rank's ghost-cell set — the union of the
     frontier cells its neighbours owe it — must be covered by the cells
     its receives and incoming pushes deliver;
   - redundancy (A031, warning): an exchanged or pushed variable nothing
     reads across faces is a dead ghost write;
   - peer reachability (A032): a D2d push must follow a ghost edge of
     the decomposition — its destination must be in the source tile's
     reachable peer set and inside the device grid.

   Schedules normally come from [elaborate], which instantiates the
   plan's channels at every [Halo_exchange] / [D2d] node; the [Seeded]
   input lets tests (fixtures.ml) hand-build defective schedules —
   dropped entries, swapped tags, inverted post orders — that no
   well-formed elaboration would produce. *)

open Finch

type plan =
  | Ranks of Fvm.Halo.t
  | Grid of { ndevices : int; tile_halo : Fvm.Halo.t }

type entry = { e_src : int; e_dst : int; e_tag : int; e_cells : int array }

type round = {
  rd_var : string;
  rd_sends : entry list;
  rd_recvs : entry list;
  rd_recv_before_send : int list;
}

type push = {
  pu_var : string;
  pu_src : int;
  pu_dst : int;
  pu_cells : int array;
}

type schedule = { sc_rounds : round list; sc_pushes : push list }

type input = Elaborate of plan | Seeded of plan * schedule

let plan_halo = function Ranks h -> h | Grid { tile_halo; _ } -> tile_halo

let plan_nparts = function
  | Ranks h -> h.Fvm.Halo.nranks
  | Grid { ndevices; _ } -> ndevices

(* ------------------------------------------------------------------ *)
(* Plan derivation and schedule elaboration.                           *)
(* ------------------------------------------------------------------ *)

let plan_of_problem (p : Problem.t) =
  match p.Problem.mesh, p.Problem.target with
  | Some mesh, Config.Cpu (Config.Cell_parallel nranks) ->
    (* the same partition Target_cpu executes over *)
    let part = Fvm.Partition.rcb_mesh mesh ~nparts:nranks in
    Some (Ranks (Fvm.Halo.build mesh part))
  | Some mesh, Config.Gpu { devices; ranks; _ } when devices > 1 ->
    let d = Fvm.Decomp2d.build mesh ~ndevices:devices ~nranks:ranks in
    Some (Grid { ndevices = devices; tile_halo = d.Fvm.Decomp2d.halo })
  | _ -> None

let elaborate plan tree =
  let entries =
    List.map
      (fun (e : Fvm.Halo.exchange) ->
        { e_src = e.Fvm.Halo.from_rank;
          e_dst = e.Fvm.Halo.to_rank;
          e_tag = 0;
          e_cells = e.Fvm.Halo.cells })
      (plan_halo plan).Fvm.Halo.exchanges
  in
  let rounds = ref [] and pushes = ref [] in
  Ir.fold
    (fun () n ->
      match n with
      | Ir.Halo_exchange { vars; _ } ->
        List.iter
          (fun v ->
            rounds :=
              { rd_var = v; rd_sends = entries; rd_recvs = entries;
                rd_recv_before_send = [] }
              :: !rounds)
          vars
      | Ir.D2d { vars; _ } ->
        List.iter
          (fun v ->
            List.iter
              (fun e ->
                pushes :=
                  { pu_var = v; pu_src = e.e_src; pu_dst = e.e_dst;
                    pu_cells = e.e_cells }
                  :: !pushes)
              entries)
          vars
      | _ -> ())
    () tree;
  { sc_rounds = List.rev !rounds; sc_pushes = List.rev !pushes }

(* ------------------------------------------------------------------ *)
(* Matching simulation (A025-A029).                                    *)
(* ------------------------------------------------------------------ *)

(* One exchange round as a [Prt.Commsched] program: each rank posts its
   sends, then its receives, then waits — the runtime's
   [Halo.start_exchange] order.  Ranks listed in [rd_recv_before_send]
   instead wait on their receives before posting any send, the blocking
   shape whose cycles the simulation must catch. *)
let round_schedule nparts (rd : round) : Prt.Commsched.schedule =
  Array.init nparts (fun r ->
      let send_ops =
        List.filter_map
          (fun e ->
            if e.e_src <> r then None
            else
              Some
                (Prt.Commsched.Send
                   { peer = e.e_dst; tag = e.e_tag;
                     len = Array.length e.e_cells; label = rd.rd_var }))
          rd.rd_sends
      and recv_ops =
        List.filter_map
          (fun e ->
            if e.e_dst <> r then None
            else
              Some
                (Prt.Commsched.Recv
                   { peer = e.e_src; tag = e.e_tag;
                     len = Array.length e.e_cells; label = rd.rd_var }))
          rd.rd_recvs
      in
      if List.mem r rd.rd_recv_before_send then
        recv_ops @ (Prt.Commsched.Wait_all :: send_ops)
      else send_ops @ recv_ops @ [ Prt.Commsched.Wait_all ])

let finding_of_problem rd_var pr =
  let detail = Prt.Commsched.problem_to_string pr in
  let mk ?(var = rd_var) code =
    Finding.make ~var ~where:"comm/halo_exchange" code detail
  in
  match pr with
  | Prt.Commsched.Unmatched_send { label; _ } ->
    mk ~var:label Finding.Comm_unmatched_send
  | Prt.Commsched.Unmatched_recv { label; _ } ->
    mk ~var:label Finding.Comm_unmatched_recv
  | Prt.Commsched.Deadlock _ -> mk Finding.Comm_deadlock
  | Prt.Commsched.Tag_collision { label; _ } ->
    mk ~var:label Finding.Comm_tag_collision
  | Prt.Commsched.Size_mismatch { label; _ } ->
    mk ~var:label Finding.Comm_size_mismatch

let check_rounds nparts rounds =
  List.concat_map
    (fun rd ->
      List.map (finding_of_problem rd.rd_var)
        (Prt.Commsched.simulate (round_schedule nparts rd)))
    rounds

(* ------------------------------------------------------------------ *)
(* Halo completeness (A030).                                           *)
(* ------------------------------------------------------------------ *)

(* Variables read across partition faces (CELL2 side) anywhere in the
   tree: exactly the variables whose ghost cells must be fresh. *)
let neighbour_read_vars tree =
  let of_expr e =
    List.filter_map
      (fun (name, _idx, side) ->
        if side = Finch_symbolic.Expr.Cell2 then Some name else None)
      (Finch_symbolic.Expr.refs e)
  in
  Ir.fold
    (fun acc n ->
      match n with
      | Ir.Assign { expr; _ } -> of_expr expr @ acc
      | Ir.Flux_update { rvol; rsurf; _ } ->
        of_expr rvol @ of_expr rsurf @ acc
      | _ -> acc)
    [] tree
  |> List.sort_uniq compare

(* For each CELL2-read variable the schedule exchanges, every rank's
   ghost set (the union of the frontier cells its neighbours owe it,
   per [Halo.frontier_cells] symmetry) must be covered by the messages
   targeting it — either half of a round counts, so a dropped or
   mismatched half stays an A025/A026 matching finding rather than
   doubling as incompleteness; A030 is reserved for ghost cells no
   message even names.  Variables with no round at all are Movement's
   A021, not ours. *)
let check_coverage plan sched cell2 =
  let halo = plan_halo plan and nparts = plan_nparts plan in
  let exchanged =
    List.map (fun rd -> rd.rd_var) sched.sc_rounds
    @ List.map (fun p -> p.pu_var) sched.sc_pushes
    |> List.sort_uniq compare
    |> List.filter (fun v -> List.mem v cell2)
  in
  List.concat_map
    (fun v ->
      List.filter_map
        (fun r ->
          let ghosts = Fvm.Halo.ghost_cells halo r in
          if Array.length ghosts = 0 then None
          else begin
            let covered = Hashtbl.create 64 in
            let mark cells = Array.iter (fun c -> Hashtbl.replace covered c ()) cells in
            List.iter
              (fun rd ->
                if rd.rd_var = v then
                  List.iter
                    (fun e -> if e.e_dst = r then mark e.e_cells)
                    (rd.rd_sends @ rd.rd_recvs))
              sched.sc_rounds;
            List.iter
              (fun p -> if p.pu_var = v && p.pu_dst = r then mark p.pu_cells)
              sched.sc_pushes;
            let missing =
              Array.to_list ghosts
              |> List.filter (fun c -> not (Hashtbl.mem covered c))
            in
            match missing with
            | [] -> None
            | c :: _ ->
              Some
                (Finding.make ~var:v ~where:"comm/coverage"
                   Finding.Comm_halo_incomplete
                   (Printf.sprintf
                      "the exchange rounds for %s leave %d of rank %d's %d \
                       ghost cells stale (e.g. cell %d): sweeps read values \
                       no message delivers" v (List.length missing) r
                      (Array.length ghosts) c))
          end)
        (List.init nparts Fun.id))
    exchanged

(* ------------------------------------------------------------------ *)
(* Redundant exchange (A031) and peer reachability (A032).             *)
(* ------------------------------------------------------------------ *)

(* An exchanged/pushed variable nothing reads across faces: the ghost
   regions are written and never consumed.  Harmless but pure waste
   (per-step payload), so warning-grade. *)
let check_redundant cell2 tree =
  Ir.fold
    (fun acc n ->
      let dead what vars =
        List.filter_map
          (fun v ->
            if List.mem v cell2 then None
            else
              Some
                (Finding.make ~var:v ~where:("comm/" ^ what)
                   Finding.Comm_redundant_exchange
                   (Printf.sprintf
                      "%s ships ghost values of %s but nothing reads %s \
                       across faces (CELL2): the ghost write is dead and \
                       the payload pure overhead" what v v)))
          vars
      in
      match n with
      | Ir.Halo_exchange { vars; _ } -> acc @ dead "halo_exchange" vars
      | Ir.D2d { vars; _ } -> acc @ dead "d2d" vars
      | _ -> acc)
    [] tree

(* Every push must follow a ghost edge of the decomposition: its
   destination inside the grid and in the source tile's reachable peer
   set ([Decomp2d.neighbour_tiles], i.e. the halo's send destinations). *)
let check_pushes plan sched =
  let halo = plan_halo plan and nparts = plan_nparts plan in
  List.filter_map
    (fun p ->
      if p.pu_src < 0 || p.pu_src >= nparts || p.pu_dst < 0
         || p.pu_dst >= nparts
      then
        Some
          (Finding.make ~var:p.pu_var ~where:"comm/d2d"
             Finding.Comm_unreachable_peer
             (Printf.sprintf
                "push of %s names device %d -> %d outside the %d-device \
                 grid" p.pu_var p.pu_src p.pu_dst nparts))
      else if not (List.mem p.pu_dst (Fvm.Halo.neighbour_ranks halo p.pu_src))
      then
        Some
          (Finding.make ~var:p.pu_var ~where:"comm/d2d"
             Finding.Comm_unreachable_peer
             (Printf.sprintf
                "push of %s from tile %d to tile %d (%s path) follows no \
                 ghost edge of the decomposition: tile %d owes %d no \
                 frontier cells" p.pu_var p.pu_src p.pu_dst
                (Gpu_sim.Topology.path_name
                   (Gpu_sim.Topology.path ~src:p.pu_src ~dst:p.pu_dst))
                p.pu_src p.pu_dst))
      else None)
    sched.sc_pushes

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)
(* ------------------------------------------------------------------ *)

let run ?comm (_ctx : Ctx.t) (tree : Ir.node) =
  let cell2 = neighbour_read_vars tree in
  match comm with
  | None -> []
  | Some input ->
    let plan, sched =
      match input with
      | Elaborate plan -> plan, elaborate plan tree
      | Seeded (plan, sched) -> plan, sched
    in
    check_rounds (plan_nparts plan) sched.sc_rounds
    @ check_coverage plan sched cell2
    @ check_redundant cell2 tree
    @ check_pushes plan sched
