(** Runtime sanitizer facade: switches the ghost-region poisoning in
    {!Fvm.Field} and the device-buffer poisoning in {!Gpu_sim.Memory} on
    and off together, and reports the poison-read count.  On a program
    with no data-movement defects the sanitized run is bit-identical to
    a plain run (every poisoned value is overwritten before any read);
    see docs/ANALYSIS.md for the poisoning model. *)

val enable : unit -> unit
(** Reset the poison-read count and turn the sanitizer on globally. *)

val disable : unit -> unit
(** Turn the sanitizer off (the accumulated count stays readable). *)

val enabled : unit -> bool
(** Whether the sanitizer is currently on. *)

val poison_reads : unit -> int
(** Poison values that reached owned data since {!enable} — each one a
    read of storage a missing exchange or upload failed to refresh. *)

val with_sanitizer : (unit -> 'a) -> 'a
(** Run a thunk with the sanitizer on, switching it off afterwards even
    on exceptions. *)
