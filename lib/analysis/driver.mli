(** Analysis driver: runs {!Wellformed}, {!Race}, {!Movement} and
    {!Comm} over an IR program and aggregates a report.  Totals are
    mirrored to the [analysis.errors] / [analysis.warnings] metrics. *)

type report = {
  findings : Finding.t list;  (** errors first, then warnings *)
  errors : int;  (** findings with error severity *)
  warnings : int;  (** findings with warning severity *)
}
(** Aggregated result of one check. *)

val empty : report
(** A report with no findings. *)

val check_ir :
  ?plan:Finch.Dataflow.plan -> ?comm:Comm.input ->
  ?ignore_codes:Finding.code list -> Ctx.t -> Finch.Ir.node -> report
(** Run all passes over a tree; [ignore_codes] suppresses listed codes
    (for vetted programs), [plan] enables the A023 cross-check, [comm]
    activates the A025–A032 schedule verification. *)

val check_problem :
  ?post_io:Finch.Dataflow.callback_io -> ?ignore_codes:Finding.code list ->
  Finch.Problem.t -> report
(** Check the program the executors will mirror for this problem: the
    CPU-strategy IR, or the hybrid GPU IR built from the data-movement
    plan (which is then also cross-checked).  On mesh-partitioned
    targets the communication plan is derived with
    {!Comm.plan_of_problem} and the elaborated schedule verified. *)

val pp_report : out_channel -> report -> unit
(** Print each finding plus an error/warning tally, indented. *)
