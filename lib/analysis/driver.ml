(* Analysis driver: runs every pass over an IR program, aggregates the
   findings into a report, and feeds the totals to the metrics registry
   ([analysis.errors] / [analysis.warnings]) so benchmark JSON exposes
   them alongside the performance counters.

   [check_problem] is the entry-point wiring: it derives the context,
   builds the same IR the executors mirror (CPU strategy program, or the
   hybrid GPU program with the data-movement plan's transfer schedule)
   and checks it — so [bte_sim --check] and [bte_lint] validate exactly
   what will run. *)

open Finch

type report = {
  findings : Finding.t list;
  errors : int;
  warnings : int;
}

let m_errors = Prt.Metrics.counter "analysis.errors"
let m_warnings = Prt.Metrics.counter "analysis.warnings"

let empty = { findings = []; errors = 0; warnings = 0 }

let of_findings findings =
  let errors, warnings =
    List.fold_left
      (fun (e, w) f ->
        match Finding.severity f.Finding.code with
        | Finding.Error -> e + 1, w
        | Finding.Warning -> e, w + 1)
      (0, 0) findings
  in
  Prt.Metrics.add m_errors errors;
  Prt.Metrics.add m_warnings warnings;
  { findings; errors; warnings }

let check_ir ?plan ?comm ?(ignore_codes = []) (ctx : Ctx.t) tree =
  let findings =
    Wellformed.run ctx tree @ Race.run ctx tree @ Movement.run ?plan ctx tree
    @ Comm.run ?comm ctx tree
  in
  let findings =
    List.filter
      (fun f -> not (List.mem f.Finding.code ignore_codes))
      findings
  in
  (* errors first, then warnings, keeping program order within each *)
  let errs, warns =
    List.partition
      (fun f -> Finding.severity f.Finding.code = Finding.Error)
      findings
  in
  of_findings (errs @ warns)

let check_problem ?post_io ?(ignore_codes = []) (p : Problem.t) =
  let ctx = Ctx.of_problem ?post_io p in
  let comm =
    Option.map (fun pl -> Comm.Elaborate pl) (Comm.plan_of_problem p)
  in
  match p.Problem.target with
  | Config.Gpu _ ->
    let plan = Dataflow.plan_for_problem ?post_io p in
    let tree = Ir.build_gpu p ~transfers:(Dataflow.ir_transfers plan) in
    check_ir ~plan ?comm ~ignore_codes ctx tree
  | Config.Cpu _ ->
    let tree = Ir.build_cpu p in
    check_ir ?comm ~ignore_codes ctx tree
  | Config.Auto ->
    invalid_arg "Driver.check_problem: unresolved auto target"

let pp_report out r =
  List.iter
    (fun f -> Printf.fprintf out "  %s\n" (Finding.to_string f))
    r.findings;
  if r.errors > 0 || r.warnings > 0 then
    Printf.fprintf out "  %d error%s, %d warning%s\n" r.errors
      (if r.errors = 1 then "" else "s")
      r.warnings
      (if r.warnings = 1 then "" else "s")
