(** Data-movement pass (codes A020–A024).

    Abstractly interprets the transfer schedule in execution order
    (walking steps bodies twice for the cyclic steady state): kernel
    reads must be device-resident at launch (A020), host consumers must
    not read values still sitting on the device (A022), downloads must
    not race the asynchronous kernel (A024).  On mesh-partitioned runs,
    variables read across faces need a halo exchange after their swap
    (A021).  With a plan supplied, IR transfer nodes are cross-checked
    against {!Finch.Dataflow}'s schedule (A023). *)

val run : ?plan:Finch.Dataflow.plan -> Ctx.t -> Finch.Ir.node -> Finding.t list
(** Deduplicated findings in program order. *)
