(* Runtime sanitizer facade.

   The heavy lifting lives next to the storage it guards: [Fvm.Field]
   poisons ghost regions after each commit and counts poison that
   reaches owned cells; [Gpu_sim.Memory] NaN-poisons fresh device
   buffers so never-uploaded reads surface.  This module just switches
   both on/off together and reports the finding count. *)

let enable () =
  Fvm.Field.reset_poison ();
  Fvm.Field.set_sanitize true;
  Gpu_sim.Memory.set_sanitize true

let disable () =
  Fvm.Field.set_sanitize false;
  Gpu_sim.Memory.set_sanitize false

let enabled () = Fvm.Field.sanitize_enabled ()

let poison_reads () = Fvm.Field.poison_reads ()

let with_sanitizer f =
  enable ();
  Fun.protect ~finally:disable f
