(** Seeded-defect fixtures: minimal IR programs each planted with one
    defect class and the exact codes the analyzer must report.  They
    back the analyzer's regression tests and [bte_lint --selftest]. *)

type fixture = {
  fname : string;  (** short kebab-case identifier *)
  descr : string;  (** what defect is seeded *)
  fctx : Ctx.t;  (** entity context the program is checked under *)
  fplan : Finch.Dataflow.plan option;  (** plan for the A023 cross-check *)
  fcomm : Comm.input option;
      (** communication plan/schedule for the A025–A032 checks *)
  ir : Finch.Ir.node;  (** the defective program *)
  expect : Finding.code list;  (** exact multiset of expected codes *)
}
(** One seeded-defect program. *)

val all : fixture list
(** Every fixture; covers each error code in {!Finding.catalogue}. *)

val check : fixture -> Finding.code list * Finding.code list
(** [check f] runs the analyzer and returns [(expected, found)] code
    multisets, both sorted, ready to compare for equality. *)
