(** Parallel-race pass (codes A010–A012).

    Abstracts every parallel region (a [parallel] loop or a kernel body)
    as concurrent iterations each owning one cell, collects per-iteration
    access footprints, and reports the collisions: write-write races on
    shared slots (A010: globals, or both-cell scatters under face
    parallelism), neighbour ([CELL2]) reads against in-place writes
    (A011: the forgot-double-buffering race), and unguarded [`Add]
    reductions into shared slots (A012). *)

val run : Ctx.t -> Finch.Ir.node -> Finding.t list
(** Findings grouped per parallel region, in program order. *)
