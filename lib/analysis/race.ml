(* Parallel-race pass (codes A010-A012).

   Every parallel region — a [Loop] with [parallel = true], or a [Kernel]
   body (one device thread per degree of freedom) — is abstracted as a
   set of concurrent iterations, each owning one cell (or one index
   value).  The pass collects a per-iteration access footprint and
   checks the pairs that can collide across iterations:

   - writes to per-cell variables land in the iteration's own cell and
     are disjoint — unless the parallelism is over faces (each face
     touches BOTH adjacent cells: a scatter) or the destination is not
     per-cell (a scalar/global: every iteration hits the same slot);
   - reads tagged [Cell2] (the neighbour across a face) reach other
     iterations' cells, which is only safe against writes going to the
     double buffer ([dest_new]): an in-place update with a neighbour
     stencil is the classic forgot-double-buffering race;
   - [`Add] reductions into shared slots (globals, or cells under face
     parallelism) need a guard the IR cannot express, so they are
     flagged as unguarded. *)

open Finch

type space = Own | Multi | Global

type write = {
  w_var : string;
  w_new : bool;
  w_space : space;
  w_add : bool;
}

let loop_name = function
  | Ir.Cells -> "cells"
  | Ir.Faces_of_cell -> "faces"
  | Ir.Index s -> "index " ^ s
  | Ir.Steps -> "steps"

let at path s = String.concat "/" (List.rev (s :: path))

(* Footprint of one iteration of a parallel region.  [multi] is set when
   the enclosing parallelism iterates faces, so cell-variable writes
   scatter to both adjacent cells. *)
let rec collect (ctx : Ctx.t) ~multi (writes, nbr_reads) (n : Ir.node) =
  match n with
  | Ir.Comment _ | Ir.Boundary_cpu _ | Ir.Callback _ | Ir.Swap_buffers _
  | Ir.Halo_exchange _ | Ir.Allreduce _ | Ir.H2d _ | Ir.D2h _ | Ir.D2d _
  | Ir.Stream_sync | Ir.Advance_time ->
    (writes, nbr_reads) (* host/communication nodes: flagged by Wellformed
                           when misplaced, no per-iteration footprint *)
  | Ir.Seq ns | Ir.Kernel { body = ns; _ } ->
    List.fold_left (collect ctx ~multi) (writes, nbr_reads) ns
  | Ir.Loop { range; body; parallel } ->
    let multi = multi || (range = Ir.Faces_of_cell && parallel) in
    List.fold_left (collect ctx ~multi) (writes, nbr_reads) body
  | Ir.Assign { dest; dest_new; expr; reduce; _ } ->
    let w_space =
      if not (Ctx.is_cell_var ctx dest) then Global
      else if multi then Multi
      else Own
    in
    let w =
      { w_var = dest; w_new = dest_new; w_space; w_add = reduce = `Add }
    in
    (w :: writes, neighbour_reads expr @ nbr_reads)
  | Ir.Flux_update { var; rvol; rsurf; _ } ->
    let w_space = if multi then Multi else Own in
    let w = { w_var = var; w_new = true; w_space; w_add = false } in
    (w :: writes,
     neighbour_reads rvol @ neighbour_reads rsurf @ nbr_reads)

and neighbour_reads expr =
  List.filter_map
    (fun (name, _idx, side) ->
      if side = Finch_symbolic.Expr.Cell2 then Some name else None)
    (Finch_symbolic.Expr.refs expr)

let check_region (ctx : Ctx.t) path kind body =
  let multi = kind = `Faces in
  let writes, nbr_reads =
    List.fold_left (collect ctx ~multi) ([], []) body
  in
  let findings = ref [] in
  let kind_name =
    match kind with
    | `Cells -> "parallel cells"
    | `Faces -> "parallel faces"
    | `Index s -> "parallel index " ^ s
    | `Kernel k -> "kernel " ^ k
  in
  let emit ?var code detail =
    findings :=
      Finding.make ?var ~where:(at path kind_name) code detail :: !findings
  in
  List.iter
    (fun w ->
      match w.w_space with
      | Global ->
        if w.w_add then
          emit ~var:w.w_var Finding.Unguarded_reduction
            (Printf.sprintf
               "every iteration accumulates into scalar %s with no \
                reduction guard (atomic/tree reduction needed)" w.w_var)
        else
          emit ~var:w.w_var Finding.Parallel_write_write
            (Printf.sprintf
               "every iteration writes scalar %s; concurrent stores \
                collide" w.w_var)
      | Multi ->
        if w.w_add then
          emit ~var:w.w_var Finding.Unguarded_reduction
            (Printf.sprintf
               "face iterations scatter-add into the cells of %s without \
                atomics; faces of one cell run concurrently" w.w_var)
        else
          emit ~var:w.w_var Finding.Parallel_write_write
            (Printf.sprintf
               "face iterations write both cells adjacent to each face of \
                %s; neighbouring faces collide" w.w_var)
      | Own ->
        if (not w.w_new) && List.mem w.w_var nbr_reads then
          emit ~var:w.w_var Finding.Parallel_read_write
            (Printf.sprintf
               "%s is updated in place while other iterations read it \
                across faces (CELL2); stage the write in the double \
                buffer instead" w.w_var))
    writes;
  List.rev !findings

(* Walk the tree looking for outermost parallel regions; nested parallel
   loops are analysed as part of the enclosing region's footprint. *)
let rec scan ctx path acc (n : Ir.node) =
  match n with
  | Ir.Comment _ | Ir.Assign _ | Ir.Flux_update _ | Ir.Boundary_cpu _
  | Ir.Callback _ | Ir.Swap_buffers _ | Ir.Halo_exchange _ | Ir.Allreduce _
  | Ir.H2d _ | Ir.D2h _ | Ir.D2d _ | Ir.Stream_sync | Ir.Advance_time -> acc
  | Ir.Seq ns -> List.fold_left (scan ctx path) acc ns
  | Ir.Kernel { kname; body; _ } ->
    acc @ check_region ctx path (`Kernel kname) body
  | Ir.Loop { range; body; parallel } ->
    if parallel then
      let kind =
        match range with
        | Ir.Cells -> `Cells
        | Ir.Faces_of_cell -> `Faces
        | Ir.Index s -> `Index s
        | Ir.Steps -> `Cells (* a parallel time loop would be nonsense;
                                treat iterations like cells *)
      in
      acc @ check_region ctx path kind body
    else
      List.fold_left (scan ctx (loop_name range :: path)) acc body

let run (ctx : Ctx.t) (tree : Ir.node) = scan ctx [] [] tree
