(* Well-formedness pass (codes A001-A006).

   A single forward walk of the IR in execution order, tracking which
   names have a value ([defined], seeded from the context's initial
   conditions and coefficients) and which double-buffer writes are
   staged awaiting their [Swap_buffers] ([staged]).  Loop bodies are
   walked once: a first-iteration read must already be covered, so
   cyclic definitions (a variable defined later in a steps body) do not
   excuse it — that is exactly the initial-condition requirement.

   Host-only nodes (boundary callbacks, user callbacks, communication,
   transfers, swaps, stream sync, time advance) may not appear inside a
   [Kernel] body: the kernel is one device thread per degree of freedom
   and has none of that machinery. *)

open Finch
module SS = Set.Make (String)

type state = {
  ctx : Ctx.t;
  mutable defined : SS.t;
  mutable staged : SS.t;
  mutable findings : Finding.t list;
}

let emit st ?var ~where code detail =
  st.findings <- Finding.make ?var ~where code detail :: st.findings

let loop_name = function
  | Ir.Cells -> "cells"
  | Ir.Faces_of_cell -> "faces"
  | Ir.Index s -> "index " ^ s
  | Ir.Steps -> "steps"

let at path s = String.concat "/" (List.rev (s :: path))

let check_phase st path (note : Ir.meta) what =
  if note.Ir.m_phase = None then
    emit st ~where:(at path what) Finding.Missing_phase
      (what ^ " carries no phase annotation for the profiler breakdown")

let check_reads st path what names =
  List.iter
    (fun v ->
      if not (SS.mem v st.defined) then
        emit st ~var:v ~where:(at path what) Finding.Undefined_read
          (Printf.sprintf
             "%s reads %s, which has no initial condition and no prior write"
             what v))
    names

(* a body consisting only of comments computes nothing *)
let body_is_empty body =
  List.for_all (function Ir.Comment _ -> true | _ -> false) body

let host_only st path what =
  emit st ~where:(at path what) Finding.Host_node_in_kernel
    (what ^ " cannot execute inside a device kernel body")

let rec walk st ~in_kernel path (n : Ir.node) =
  match n with
  | Ir.Comment _ -> ()
  | Ir.Seq ns -> List.iter (walk st ~in_kernel path) ns
  | Ir.Loop { range; body; _ } ->
    let name = loop_name range in
    if body_is_empty body then
      emit st ~where:(at path ("loop " ^ name)) Finding.Empty_body
        ("loop over " ^ name ^ " has an empty body");
    List.iter (walk st ~in_kernel (name :: path)) body
  | Ir.Kernel { kname; body; note } ->
    if in_kernel then host_only st path ("nested kernel " ^ kname)
    else begin
      check_phase st path note ("kernel " ^ kname);
      if body_is_empty body then
        emit st ~where:(at path kname) Finding.Empty_body
          ("kernel " ^ kname ^ " has an empty body");
      List.iter (walk st ~in_kernel:true (kname :: path)) body
    end
  | Ir.Assign { dest; dest_new; expr; reduce; note } ->
    check_phase st path note ("assign " ^ dest);
    let reads = Finch_symbolic.Expr.ref_names expr in
    let reads = if reduce = `Add then dest :: reads else reads in
    check_reads st path ("assign " ^ dest) reads;
    if dest_new then st.staged <- SS.add dest st.staged
    else st.defined <- SS.add dest st.defined
  | Ir.Flux_update { var; rvol; rsurf; note } ->
    check_phase st path note ("flux_update " ^ var);
    check_reads st path ("flux_update " ^ var)
      ((var :: Finch_symbolic.Expr.ref_names rvol)
       @ Finch_symbolic.Expr.ref_names rsurf);
    st.staged <- SS.add var st.staged
  | Ir.Boundary_cpu { var; note } ->
    if in_kernel then host_only st path ("boundary_cpu " ^ var)
    else begin
      check_phase st path note ("boundary_cpu " ^ var);
      check_reads st path ("boundary_cpu " ^ var) [ var ];
      st.staged <- SS.add var st.staged
    end
  | Ir.Callback { which; note } ->
    let what =
      "callback " ^ (match which with `Pre -> "pre" | `Post -> "post")
    in
    if in_kernel then host_only st path what
    else begin
      check_phase st path note what;
      check_reads st path what st.ctx.Ctx.cb_reads;
      st.defined <- SS.union st.defined (SS.of_list st.ctx.Ctx.cb_writes)
    end
  | Ir.Swap_buffers v ->
    if in_kernel then host_only st path ("swap " ^ v)
    else if SS.mem v st.staged then begin
      st.staged <- SS.remove v st.staged;
      st.defined <- SS.add v st.defined
    end
    else
      emit st ~var:v ~where:(at path ("swap " ^ v)) Finding.Unmatched_swap
        (Printf.sprintf
           "swap of %s publishes nothing: no staged double-buffer write \
            precedes it" v)
  | Ir.Halo_exchange { vars; note; _ } ->
    if in_kernel then host_only st path "halo_exchange"
    else begin
      check_phase st path note "halo_exchange";
      check_reads st path "halo_exchange" vars
    end
  | Ir.Allreduce { vars; note; _ } ->
    if in_kernel then host_only st path "allreduce"
    else begin
      check_phase st path note "allreduce";
      check_reads st path "allreduce" vars
    end
  | Ir.H2d { vars; _ } ->
    if in_kernel then host_only st path "h2d"
    else check_reads st path "h2d" vars
  | Ir.D2h { vars; _ } ->
    if in_kernel then host_only st path "d2h"
    else check_reads st path "d2h" vars
  | Ir.D2d { vars; note; _ } ->
    (* issued by the host driver like every transfer *)
    if in_kernel then host_only st path "d2d"
    else begin
      check_phase st path note "d2d";
      check_reads st path "d2d" vars
    end
  | Ir.Stream_sync -> if in_kernel then host_only st path "stream_sync"
  | Ir.Advance_time -> if in_kernel then host_only st path "advance_time"

let run (ctx : Ctx.t) (tree : Ir.node) =
  let st =
    { ctx;
      defined = SS.of_list ctx.Ctx.defined;
      staged = SS.empty;
      findings = [] }
  in
  walk st ~in_kernel:false [] tree;
  SS.iter
    (fun v ->
      emit st ~var:v ~where:"end" Finding.Missing_swap
        (Printf.sprintf
           "double-buffer write of %s is never published by a swap" v))
    st.staged;
  List.rev st.findings
