(** Communication-schedule pass (codes A025–A032).

    Statically elaborates the full rank×device message schedule of a
    lowered program from its halo plan — one exchange round per
    [Halo_exchange] node and variable, one ghost push per [D2d] edge —
    and verifies it before anything executes: matching and deadlock via
    {!Prt.Commsched}'s deterministic simulation (A025–A029), halo
    completeness against the plan's ghost sets (A030), dead ghost
    writes (A031, warning) and D2d peer reachability (A032).  The
    {!Seeded} input lets tests hand-build defective schedules no
    well-formed elaboration would produce. *)

type plan =
  | Ranks of Fvm.Halo.t
      (** SPMD mesh partitioning: the cell-parallel CPU target's halo
          plan, one rank per partition piece *)
  | Grid of { ndevices : int; tile_halo : Fvm.Halo.t }
      (** multi-device GPU target: [ndevices] tiles over the cell axis
          exchanging ghosts device-to-device along [tile_halo] *)
(** What the program communicates over. *)

type entry = {
  e_src : int;  (** sending rank / tile *)
  e_dst : int;  (** receiving rank / tile *)
  e_tag : int;  (** message tag of the channel *)
  e_cells : int array;  (** cells the message carries *)
}
(** One directed message of an exchange round. *)

type round = {
  rd_var : string;  (** the exchanged variable *)
  rd_sends : entry list;  (** messages posted by their [e_src] ranks *)
  rd_recvs : entry list;  (** receives posted by their [e_dst] ranks *)
  rd_recv_before_send : int list;
      (** ranks that wait on their receives before posting any send —
          the blocking shape whose cycles deadlock (normal ranks post
          sends, then receives, then wait, like the runtime) *)
}
(** One halo-exchange round. *)

type push = {
  pu_var : string;  (** the pushed variable *)
  pu_src : int;  (** owning device tile *)
  pu_dst : int;  (** receiving device tile *)
  pu_cells : int array;  (** frontier cells pushed *)
}
(** One direct device-to-device ghost copy. *)

type schedule = { sc_rounds : round list; sc_pushes : push list }
(** The complete elaborated message schedule of a program. *)

type input =
  | Elaborate of plan
      (** derive the schedule from the tree's exchange/push nodes and
          the plan's channels (the normal path) *)
  | Seeded of plan * schedule
      (** check a hand-built schedule against the plan (fixtures) *)
(** How the pass obtains the schedule to verify. *)

val plan_of_problem : Finch.Problem.t -> plan option
(** The communication plan the executors will use for this problem:
    {!Ranks} over the cell-parallel CPU partition, {!Grid} over the
    multi-device GPU decomposition, [None] for targets that exchange
    no ghosts (serial, threads, bands, hybrid, single-device GPU). *)

val elaborate : plan -> Finch.Ir.node -> schedule
(** Instantiate the schedule the tree implies: every [Halo_exchange]
    node contributes one round per listed variable over the plan's
    channels (tag 0, runtime posting order), every [D2d] node one push
    per variable and ghost edge. *)

val run : ?comm:input -> Ctx.t -> Finch.Ir.node -> Finding.t list
(** Verify the schedule; without [comm] the pass is inert (the other
    passes' single-rank view applies).  Findings in check order:
    matching simulation per round, then coverage, redundancy and push
    reachability. *)
