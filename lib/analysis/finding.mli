(** Structured diagnostics produced by the static analysis passes.

    Codes are stable identifiers (A0xx) grouped by pass: A00x
    well-formedness ({!Wellformed}), A01x parallel races ({!Race}),
    A020-A024 data movement ({!Movement}), A025-A032 communication
    schedules ({!Comm}).  {!catalogue} is the single source of truth
    behind docs/ANALYSIS.md and [bte_lint --codes]. *)

type severity = Error | Warning

type code =
  | Undefined_read        (** A001: read with no prior definition *)
  | Unmatched_swap        (** A002: swap with no staged write *)
  | Missing_swap          (** A003: staged write never published *)
  | Host_node_in_kernel   (** A004: host-only node in a kernel body *)
  | Missing_phase         (** A005 (warning): node without phase metadata *)
  | Empty_body            (** A006 (warning): empty loop/kernel body *)
  | Parallel_write_write  (** A010: write-write race across iterations *)
  | Parallel_read_write   (** A011: neighbour read vs in-place write *)
  | Unguarded_reduction   (** A012: unguarded [`Add] in a parallel region *)
  | Uncovered_device_read (** A020: kernel read never uploaded *)
  | Stale_ghost_read      (** A021: neighbour read without halo exchange *)
  | Stale_host_read       (** A022: host read of undownloaded device data *)
  | Plan_mismatch         (** A023: IR transfers vs {!Finch.Dataflow} plan *)
  | Unsynced_download     (** A024: download races the async kernel *)
  | Comm_unmatched_send   (** A025: send no receive ever matches *)
  | Comm_unmatched_recv   (** A026: receive no send ever satisfies *)
  | Comm_deadlock         (** A027: waits-for cycle between ranks *)
  | Comm_tag_collision    (** A028: ambiguous FIFO match on a channel *)
  | Comm_size_mismatch    (** A029: send/receive payload lengths differ *)
  | Comm_halo_incomplete  (** A030: exchange round misses ghost cells *)
  | Comm_redundant_exchange
      (** A031 (warning): exchanged ghosts never read *)
  | Comm_unreachable_peer (** A032: [D2d] push to a non-neighbour tile *)

val id : code -> string
(** The stable "A0xx" identifier of a code. *)

val of_id : string -> code option
(** Inverse of {!id} (for suppression lists). *)

val severity : code -> severity
(** A005/A006/A031 are warnings; everything else is an error. *)

val title : code -> string
(** One-line description of a code. *)

val catalogue : code list
(** Every code, in identifier order. *)

type t = {
  code : code;  (** which defect class *)
  var : string option;  (** the variable involved, when there is one *)
  where : string;  (** node path, e.g. ["steps/cells/flux_update"] *)
  detail : string;  (** human-readable specifics *)
}
(** One diagnostic. *)

val make : ?var:string -> where:string -> code -> string -> t
(** Build a finding. *)

val severity_string : severity -> string
(** ["error"] / ["warning"]. *)

val to_string : t -> string
(** Render as ["A010 error: <title> (var) — <detail> [where]"]. *)
