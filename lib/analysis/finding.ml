(* Findings: the structured diagnostics every analysis pass produces.

   Codes are stable identifiers (A0xx) so tests, suppression lists and
   scripts can match on them; the numeric ranges group by pass:
   A00x well-formedness, A01x parallel races, A020-A024 data movement,
   A025-A032 communication schedules.  The catalogue below is the single
   source of truth for docs/ANALYSIS.md and the [bte_lint --codes]
   listing. *)

type severity = Error | Warning

type code =
  | Undefined_read        (* A001 *)
  | Unmatched_swap        (* A002 *)
  | Missing_swap          (* A003 *)
  | Host_node_in_kernel   (* A004 *)
  | Missing_phase         (* A005 *)
  | Empty_body            (* A006 *)
  | Parallel_write_write  (* A010 *)
  | Parallel_read_write   (* A011 *)
  | Unguarded_reduction   (* A012 *)
  | Uncovered_device_read (* A020 *)
  | Stale_ghost_read      (* A021 *)
  | Stale_host_read       (* A022 *)
  | Plan_mismatch         (* A023 *)
  | Unsynced_download     (* A024 *)
  | Comm_unmatched_send   (* A025 *)
  | Comm_unmatched_recv   (* A026 *)
  | Comm_deadlock         (* A027 *)
  | Comm_tag_collision    (* A028 *)
  | Comm_size_mismatch    (* A029 *)
  | Comm_halo_incomplete  (* A030 *)
  | Comm_redundant_exchange (* A031 *)
  | Comm_unreachable_peer (* A032 *)

let id = function
  | Undefined_read -> "A001"
  | Unmatched_swap -> "A002"
  | Missing_swap -> "A003"
  | Host_node_in_kernel -> "A004"
  | Missing_phase -> "A005"
  | Empty_body -> "A006"
  | Parallel_write_write -> "A010"
  | Parallel_read_write -> "A011"
  | Unguarded_reduction -> "A012"
  | Uncovered_device_read -> "A020"
  | Stale_ghost_read -> "A021"
  | Stale_host_read -> "A022"
  | Plan_mismatch -> "A023"
  | Unsynced_download -> "A024"
  | Comm_unmatched_send -> "A025"
  | Comm_unmatched_recv -> "A026"
  | Comm_deadlock -> "A027"
  | Comm_tag_collision -> "A028"
  | Comm_size_mismatch -> "A029"
  | Comm_halo_incomplete -> "A030"
  | Comm_redundant_exchange -> "A031"
  | Comm_unreachable_peer -> "A032"

let severity = function
  | Missing_phase | Empty_body | Comm_redundant_exchange -> Warning
  | Undefined_read | Unmatched_swap | Missing_swap | Host_node_in_kernel
  | Parallel_write_write | Parallel_read_write | Unguarded_reduction
  | Uncovered_device_read | Stale_ghost_read | Stale_host_read
  | Plan_mismatch | Unsynced_download | Comm_unmatched_send
  | Comm_unmatched_recv | Comm_deadlock | Comm_tag_collision
  | Comm_size_mismatch | Comm_halo_incomplete | Comm_unreachable_peer ->
    Error

let title = function
  | Undefined_read -> "read of a variable with no prior definition"
  | Unmatched_swap -> "buffer swap with no staged double-buffer write"
  | Missing_swap -> "staged double-buffer write never published"
  | Host_node_in_kernel -> "host-only node inside a device kernel"
  | Missing_phase -> "computational node without a phase annotation"
  | Empty_body -> "loop or kernel with an empty body"
  | Parallel_write_write -> "write-write race between parallel iterations"
  | Parallel_read_write -> "neighbour read races an in-place parallel write"
  | Unguarded_reduction -> "unguarded reduction in a parallel region"
  | Uncovered_device_read -> "kernel reads a variable no transfer uploads"
  | Stale_ghost_read -> "neighbour read without a halo exchange"
  | Stale_host_read -> "host consumes device results never downloaded"
  | Plan_mismatch -> "IR transfers disagree with the data-movement plan"
  | Unsynced_download -> "download races the asynchronous kernel"
  | Comm_unmatched_send -> "send no receive ever matches"
  | Comm_unmatched_recv -> "receive no send ever satisfies"
  | Comm_deadlock -> "ranks wait on each other's sends in a cycle"
  | Comm_tag_collision -> "ambiguous FIFO matching on a busy channel"
  | Comm_size_mismatch -> "send and receive payload lengths disagree"
  | Comm_halo_incomplete -> "exchange round leaves ghost cells stale"
  | Comm_redundant_exchange -> "exchanged variable's ghosts are never read"
  | Comm_unreachable_peer -> "peer push outside the topology's reach"

let catalogue =
  [ Undefined_read; Unmatched_swap; Missing_swap; Host_node_in_kernel;
    Missing_phase; Empty_body; Parallel_write_write; Parallel_read_write;
    Unguarded_reduction; Uncovered_device_read; Stale_ghost_read;
    Stale_host_read; Plan_mismatch; Unsynced_download; Comm_unmatched_send;
    Comm_unmatched_recv; Comm_deadlock; Comm_tag_collision;
    Comm_size_mismatch; Comm_halo_incomplete; Comm_redundant_exchange;
    Comm_unreachable_peer ]

let of_id s = List.find_opt (fun c -> id c = s) catalogue

type t = {
  code : code;
  var : string option;   (* the variable involved, when there is one *)
  where : string;        (* node path, e.g. "steps/cells/flux_update" *)
  detail : string;
}

let make ?var ~where code detail = { code; var; where; detail }

let severity_string = function Error -> "error" | Warning -> "warning"

let to_string f =
  Printf.sprintf "%s %s: %s%s — %s [%s]" (id f.code)
    (severity_string (severity f.code))
    (title f.code)
    (match f.var with Some v -> " (" ^ v ^ ")" | None -> "")
    f.detail f.where
