(* Analysis context: what the passes need to know about the program's
   entities beyond the IR tree itself — which names are variables vs
   coefficients, which variables live per cell, what has an initial
   value, whether the run is mesh-partitioned, and what the opaque
   user callbacks declare as their reads/writes. *)

type t = {
  variables : string list;
  coefficients : string list;
  cell_vars : string list;
  defined : string list;
  partitioned : bool;
  cb_reads : string list;
  cb_writes : string list;
}

let make ?(variables = []) ?(coefficients = []) ?(cell_vars = [])
    ?(defined = []) ?(partitioned = false) ?(cb_reads = []) ?(cb_writes = [])
    () =
  { variables; coefficients; cell_vars; defined; partitioned; cb_reads;
    cb_writes }

let of_problem ?post_io (p : Finch.Problem.t) =
  let variables =
    List.map (fun v -> v.Finch.Entity.vname) p.Finch.Problem.variables
  in
  let coefficients =
    List.map (fun c -> c.Finch.Entity.cname) p.Finch.Problem.coefficients
  in
  let cell_vars =
    List.filter_map
      (fun v ->
        if v.Finch.Entity.location = Finch.Entity.Cell then
          Some v.Finch.Entity.vname
        else None)
      p.Finch.Problem.variables
  in
  let defined =
    coefficients
    @ List.filter
        (fun v -> List.mem_assoc v p.Finch.Problem.initials)
        variables
  in
  let partitioned =
    (* mesh-partitioned: cell-parallel CPU ranks, or a multi-device GPU
       grid whose devices tile the cell axis *)
    match p.Finch.Problem.target with
    | Finch.Config.Cpu (Finch.Config.Cell_parallel _) -> true
    | Finch.Config.Gpu { devices; _ } -> devices > 1
    | _ -> false
  in
  let cb_reads, cb_writes =
    match post_io with
    | Some io -> io.Finch.Dataflow.cb_reads, io.Finch.Dataflow.cb_writes
    | None ->
      (* no declaration: conservatively assume the callbacks touch every
         variable (mirrors Dataflow's convention) *)
      if p.Finch.Problem.post_step <> [] || p.Finch.Problem.pre_step <> []
      then variables, variables
      else [], []
  in
  { variables; coefficients; cell_vars; defined; partitioned; cb_reads;
    cb_writes }

let is_cell_var t v = List.mem v t.cell_vars
let is_coefficient t v = List.mem v t.coefficients
