(** Analysis context: entity facts the passes need beyond the IR tree —
    name classification, initial-value coverage, partitioning, and the
    declared effects of opaque user callbacks. *)

type t = {
  variables : string list;  (** declared variable names *)
  coefficients : string list;
      (** declared coefficient names (constant memory on the device) *)
  cell_vars : string list;  (** variables stored per mesh cell *)
  defined : string list;
      (** names with a value before the program runs: coefficients plus
          variables with an initial condition *)
  partitioned : bool;
      (** mesh-partitioned run (ghost regions need halo exchanges) *)
  cb_reads : string list;  (** variables the step callbacks read *)
  cb_writes : string list;  (** variables the step callbacks write *)
}

val make :
  ?variables:string list -> ?coefficients:string list ->
  ?cell_vars:string list -> ?defined:string list -> ?partitioned:bool ->
  ?cb_reads:string list -> ?cb_writes:string list -> unit -> t
(** Explicit construction (fixtures and tests); everything defaults
    empty/false. *)

val of_problem : ?post_io:Finch.Dataflow.callback_io -> Finch.Problem.t -> t
(** Derive the context from a configured problem.  Without [post_io],
    callbacks are conservatively assumed to touch every variable
    (mirroring {!Finch.Dataflow}). *)

val is_cell_var : t -> string -> bool
(** Whether a name is a per-cell variable. *)

val is_coefficient : t -> string -> bool
(** Whether a name is a coefficient. *)
