(* Seeded-defect fixtures: minimal IR programs each planted with exactly
   one defect class, plus the code the analyzer must report for it.
   They back the analyzer's own regression tests and [bte_lint
   --selftest] — if a pass regresses, the fixture that covers its code
   fails with a readable diff of expected vs found codes.

   Each fixture is engineered to be clean apart from its seeded defect,
   so tests can assert the EXACT multiset of reported codes. *)

open Finch
module E = Finch_symbolic.Expr

type fixture = {
  fname : string;
  descr : string;
  fctx : Ctx.t;
  fplan : Dataflow.plan option;
  ir : Ir.node;
  expect : Finding.code list;
}

let ph = Ir.meta ~phase:Ir.Ph_intensity ()
let ph_b = Ir.meta ~phase:Ir.Ph_boundary ()
let ph_t = Ir.meta ~phase:Ir.Ph_temperature ()
let ph_c = Ir.meta ~phase:Ir.Ph_communication ()

(* u: per-cell unknown with an initial; s: global scalar; k: coefficient *)
let ctx ?(partitioned = false) ?(cb_reads = []) ?(cb_writes = []) () =
  Ctx.make ~variables:[ "u"; "s" ] ~coefficients:[ "k" ]
    ~cell_vars:[ "u" ] ~defined:[ "u"; "s"; "k" ] ~partitioned ~cb_reads
    ~cb_writes ()

let k = E.ref_ "k" []
let u_nbr = E.ref_ ~side:E.Cell2 "u" []

let assign ?(dest = "u") ?(dest_new = false) ?(reduce = `Set) ?(note = ph)
    expr =
  Ir.Assign { dest; dest_new; expr; reduce; note }

let flux =
  Ir.Flux_update { var = "u"; rvol = k; rsurf = E.mul [ k; u_nbr ]; note = ph }

let cells ?(parallel = false) body = Ir.Loop { range = Ir.Cells; body; parallel }
let faces ?(parallel = false) body =
  Ir.Loop { range = Ir.Faces_of_cell; body; parallel }

let kernel body = Ir.Kernel { kname = "fixture_kernel"; body; note = ph }

let fx fname descr ?plan ?(ctx = ctx ()) ir expect =
  { fname; descr; fctx = ctx; fplan = plan; ir = Ir.Seq ir; expect }

let all =
  [
    fx "undefined-read"
      "an assignment reads a variable that has no initial and no writer"
      [ cells [ assign (E.ref_ "ghost" []) ] ]
      [ Finding.Undefined_read ];
    fx "unmatched-swap"
      "a buffer swap with no staged double-buffer write before it"
      [ Ir.Swap_buffers "u" ]
      [ Finding.Unmatched_swap ];
    fx "missing-swap"
      "a double-buffer write that is never published"
      [ cells [ assign ~dest_new:true k ] ]
      [ Finding.Missing_swap ];
    fx "boundary-in-kernel"
      "a CPU boundary callback placed inside a device kernel body"
      [ Ir.H2d { vars = [ "u" ]; every_step = false };
        kernel [ Ir.Boundary_cpu { var = "u"; note = ph_b } ] ]
      [ Finding.Host_node_in_kernel ];
    fx "missing-phase"
      "a computational node without phase metadata (warning)"
      [ cells [ assign ~note:(Ir.meta ()) k ] ]
      [ Finding.Missing_phase ];
    fx "empty-loop"
      "a loop whose body holds only comments (warning)"
      [ cells [ Ir.Comment "nothing to do" ] ]
      [ Finding.Empty_body ];
    fx "scalar-write-race"
      "every iteration of a parallel cell loop stores to the same scalar"
      [ cells ~parallel:true [ assign ~dest:"s" k ] ]
      [ Finding.Parallel_write_write ];
    fx "neighbour-write-race"
      "a parallel face loop writes both cells adjacent to each face"
      [ faces ~parallel:true [ assign ~dest_new:true k ];
        Ir.Swap_buffers "u" ]
      [ Finding.Parallel_write_write ];
    fx "inplace-neighbour-read"
      "an in-place update whose stencil reads the neighbour cell (CELL2)"
      [ cells ~parallel:true [ assign (E.add [ k; u_nbr ]) ] ]
      [ Finding.Parallel_read_write ];
    fx "unguarded-reduction"
      "a parallel accumulation into a scalar with no reduction guard"
      [ cells ~parallel:true [ assign ~dest:"s" ~reduce:`Add k ] ]
      [ Finding.Unguarded_reduction ];
    fx "scatter-add"
      "a parallel face loop scatter-adds into cell storage without atomics"
      [ faces ~parallel:true [ assign ~dest_new:true ~reduce:`Add k ];
        Ir.Swap_buffers "u" ]
      [ Finding.Unguarded_reduction ];
    fx "uncovered-device-read"
      "the kernel reads the unknown but no upload ever moves it over"
      [ kernel [ flux ];
        Ir.Stream_sync;
        Ir.D2h { vars = [ "u" ]; every_step = false };
        Ir.Swap_buffers "u" ]
      [ Finding.Uncovered_device_read ];
    fx "missing-halo"
      "a partitioned run whose steps body never exchanges ghost values"
      ~ctx:(ctx ~partitioned:true ())
      [ Ir.Loop
          { range = Ir.Steps;
            body =
              [ cells ~parallel:true [ flux ];
                Ir.Boundary_cpu { var = "u"; note = ph_b };
                Ir.Swap_buffers "u" ];
            parallel = false } ]
      [ Finding.Stale_ghost_read ];
    fx "missing-download"
      "the host callback consumes device results that were never fetched"
      ~ctx:(ctx ~cb_reads:[ "u" ] ())
      [ Ir.H2d { vars = [ "u" ]; every_step = false };
        kernel [ flux ];
        Ir.Stream_sync;
        Ir.Swap_buffers "u";
        Ir.Callback { which = `Post; note = ph_t } ]
      [ Finding.Stale_host_read ];
    fx "plan-mismatch"
      "the data-movement plan schedules an upload the IR never performs"
      ~plan:
        { Dataflow.placement = [];
          transfers =
            [ { Dataflow.tr_var = "u"; tr_h2d_every_step = true;
                tr_d2h_every_step = false; tr_h2d_once = false } ];
          bytes_per_step = 0;
          bytes_once = 0 }
      [ Ir.Comment "a program with no transfer nodes at all" ]
      [ Finding.Plan_mismatch ];
    fx "unsynced-download"
      "the result download is issued while the kernel is still in flight"
      [ Ir.H2d { vars = [ "u" ]; every_step = false };
        kernel [ flux ];
        Ir.D2h { vars = [ "u" ]; every_step = false };
        Ir.Swap_buffers "u" ]
      [ Finding.Unsynced_download ];
    fx "d2d-before-upload"
      "the peer ghost push runs before any upload makes the variable \
       device-resident"
      [ Ir.D2d { vars = [ "u" ]; note = ph_c };
        Ir.H2d { vars = [ "u" ]; every_step = false };
        kernel [ flux ];
        Ir.Stream_sync;
        Ir.D2h { vars = [ "u" ]; every_step = false };
        Ir.Swap_buffers "u" ]
      [ Finding.Uncovered_device_read ];
    fx "missing-ghost-push"
      "a multi-device steps body re-uploads the unknown but never pushes \
       tile-frontier ghosts between devices"
      ~ctx:(ctx ~partitioned:true ())
      [ Ir.H2d { vars = [ "u" ]; every_step = false };
        Ir.Loop
          { range = Ir.Steps;
            body =
              [ kernel [ flux ];
                Ir.Boundary_cpu { var = "u"; note = ph_b };
                Ir.Stream_sync;
                Ir.D2h { vars = [ "u" ]; every_step = true };
                Ir.Swap_buffers "u";
                Ir.H2d { vars = [ "u" ]; every_step = true } ];
            parallel = false } ]
      [ Finding.Stale_ghost_read ];
    fx "ghost-push-after-publish"
      "the clean multi-device shape: per-step upload then peer ghost push \
       after the publish (no findings expected)"
      ~ctx:(ctx ~partitioned:true ())
      [ Ir.H2d { vars = [ "u" ]; every_step = false };
        Ir.Loop
          { range = Ir.Steps;
            body =
              [ kernel [ flux ];
                Ir.Boundary_cpu { var = "u"; note = ph_b };
                Ir.Stream_sync;
                Ir.D2h { vars = [ "u" ]; every_step = true };
                Ir.Swap_buffers "u";
                Ir.H2d { vars = [ "u" ]; every_step = true };
                Ir.D2d { vars = [ "u" ]; note = ph_c } ];
            parallel = false } ]
      [];
  ]

(* Run the analyzer over one fixture; returns (expected, found) code
   multisets, both sorted, for the caller to compare. *)
let check f =
  let report = Driver.check_ir ?plan:f.fplan f.fctx f.ir in
  let found = List.map (fun fd -> fd.Finding.code) report.Driver.findings in
  (List.sort compare f.expect, List.sort compare found)
