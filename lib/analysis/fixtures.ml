(* Seeded-defect fixtures: minimal IR programs each planted with exactly
   one defect class, plus the code the analyzer must report for it.
   They back the analyzer's own regression tests and [bte_lint
   --selftest] — if a pass regresses, the fixture that covers its code
   fails with a readable diff of expected vs found codes.

   Each fixture is engineered to be clean apart from its seeded defect,
   so tests can assert the EXACT multiset of reported codes. *)

open Finch
module E = Finch_symbolic.Expr

type fixture = {
  fname : string;
  descr : string;
  fctx : Ctx.t;
  fplan : Dataflow.plan option;
  fcomm : Comm.input option;
  ir : Ir.node;
  expect : Finding.code list;
}

let ph = Ir.meta ~phase:Ir.Ph_intensity ()
let ph_b = Ir.meta ~phase:Ir.Ph_boundary ()
let ph_t = Ir.meta ~phase:Ir.Ph_temperature ()
let ph_c = Ir.meta ~phase:Ir.Ph_communication ()

(* u: per-cell unknown with an initial; s: global scalar; k: coefficient *)
let ctx ?(partitioned = false) ?(cb_reads = []) ?(cb_writes = []) () =
  Ctx.make ~variables:[ "u"; "s" ] ~coefficients:[ "k" ]
    ~cell_vars:[ "u" ] ~defined:[ "u"; "s"; "k" ] ~partitioned ~cb_reads
    ~cb_writes ()

let k = E.ref_ "k" []
let u_nbr = E.ref_ ~side:E.Cell2 "u" []

let assign ?(dest = "u") ?(dest_new = false) ?(reduce = `Set) ?(note = ph)
    expr =
  Ir.Assign { dest; dest_new; expr; reduce; note }

let flux =
  Ir.Flux_update { var = "u"; rvol = k; rsurf = E.mul [ k; u_nbr ]; note = ph }

let cells ?(parallel = false) body = Ir.Loop { range = Ir.Cells; body; parallel }
let faces ?(parallel = false) body =
  Ir.Loop { range = Ir.Faces_of_cell; body; parallel }

let kernel body = Ir.Kernel { kname = "fixture_kernel"; body; note = ph }
let steps body = Ir.Loop { range = Ir.Steps; body; parallel = false }

(* ------------------------------------------------------------------ *)
(* Synthetic communication plans and schedules for the Comm fixtures.  *)
(* ------------------------------------------------------------------ *)

let xch from_rank to_rank cells = { Fvm.Halo.from_rank; to_rank; cells }

(* two ranks: 0 owes 1 the frontier cells {2,3}, 1 owes 0 {4,5} *)
let plan2 =
  Comm.Ranks
    (Fvm.Halo.of_exchanges ~nranks:2
       [ xch 0 1 [| 2; 3 |]; xch 1 0 [| 4; 5 |] ])

let entry src dst tag cells =
  { Comm.e_src = src; e_dst = dst; e_tag = tag; e_cells = cells }

(* the two messages of plan2's (clean) exchange round *)
let e01 = entry 0 1 0 [| 2; 3 |]
let e10 = entry 1 0 0 [| 4; 5 |]

let round ?(recv_first = []) ~sends ~recvs () =
  { Comm.rd_var = "u"; rd_sends = sends; rd_recvs = recvs;
    rd_recv_before_send = recv_first }

let seeded ?(plan = plan2) ?(rounds = []) ?(pushes = []) () =
  Comm.Seeded (plan, { Comm.sc_rounds = rounds; sc_pushes = pushes })

let push var src dst cells =
  { Comm.pu_var = var; pu_src = src; pu_dst = dst; pu_cells = cells }

let fx fname descr ?plan ?comm ?(ctx = ctx ()) ir expect =
  { fname; descr; fctx = ctx; fplan = plan; fcomm = comm; ir = Ir.Seq ir;
    expect }

let all =
  [
    fx "undefined-read"
      "an assignment reads a variable that has no initial and no writer"
      [ cells [ assign (E.ref_ "ghost" []) ] ]
      [ Finding.Undefined_read ];
    fx "unmatched-swap"
      "a buffer swap with no staged double-buffer write before it"
      [ Ir.Swap_buffers "u" ]
      [ Finding.Unmatched_swap ];
    fx "missing-swap"
      "a double-buffer write that is never published"
      [ cells [ assign ~dest_new:true k ] ]
      [ Finding.Missing_swap ];
    fx "boundary-in-kernel"
      "a CPU boundary callback placed inside a device kernel body"
      [ Ir.H2d { vars = [ "u" ]; every_step = false };
        kernel [ Ir.Boundary_cpu { var = "u"; note = ph_b } ] ]
      [ Finding.Host_node_in_kernel ];
    fx "missing-phase"
      "a computational node without phase metadata (warning)"
      [ cells [ assign ~note:(Ir.meta ()) k ] ]
      [ Finding.Missing_phase ];
    fx "empty-loop"
      "a loop whose body holds only comments (warning)"
      [ cells [ Ir.Comment "nothing to do" ] ]
      [ Finding.Empty_body ];
    fx "scalar-write-race"
      "every iteration of a parallel cell loop stores to the same scalar"
      [ cells ~parallel:true [ assign ~dest:"s" k ] ]
      [ Finding.Parallel_write_write ];
    fx "neighbour-write-race"
      "a parallel face loop writes both cells adjacent to each face"
      [ faces ~parallel:true [ assign ~dest_new:true k ];
        Ir.Swap_buffers "u" ]
      [ Finding.Parallel_write_write ];
    fx "inplace-neighbour-read"
      "an in-place update whose stencil reads the neighbour cell (CELL2)"
      [ cells ~parallel:true [ assign (E.add [ k; u_nbr ]) ] ]
      [ Finding.Parallel_read_write ];
    fx "unguarded-reduction"
      "a parallel accumulation into a scalar with no reduction guard"
      [ cells ~parallel:true [ assign ~dest:"s" ~reduce:`Add k ] ]
      [ Finding.Unguarded_reduction ];
    fx "scatter-add"
      "a parallel face loop scatter-adds into cell storage without atomics"
      [ faces ~parallel:true [ assign ~dest_new:true ~reduce:`Add k ];
        Ir.Swap_buffers "u" ]
      [ Finding.Unguarded_reduction ];
    fx "uncovered-device-read"
      "the kernel reads the unknown but no upload ever moves it over"
      [ kernel [ flux ];
        Ir.Stream_sync;
        Ir.D2h { vars = [ "u" ]; every_step = false };
        Ir.Swap_buffers "u" ]
      [ Finding.Uncovered_device_read ];
    fx "missing-halo"
      "a partitioned run whose steps body never exchanges ghost values"
      ~ctx:(ctx ~partitioned:true ())
      [ Ir.Loop
          { range = Ir.Steps;
            body =
              [ cells ~parallel:true [ flux ];
                Ir.Boundary_cpu { var = "u"; note = ph_b };
                Ir.Swap_buffers "u" ];
            parallel = false } ]
      [ Finding.Stale_ghost_read ];
    fx "missing-download"
      "the host callback consumes device results that were never fetched"
      ~ctx:(ctx ~cb_reads:[ "u" ] ())
      [ Ir.H2d { vars = [ "u" ]; every_step = false };
        kernel [ flux ];
        Ir.Stream_sync;
        Ir.Swap_buffers "u";
        Ir.Callback { which = `Post; note = ph_t } ]
      [ Finding.Stale_host_read ];
    fx "plan-mismatch"
      "the data-movement plan schedules an upload the IR never performs"
      ~plan:
        { Dataflow.placement = [];
          transfers =
            [ { Dataflow.tr_var = "u"; tr_h2d_every_step = true;
                tr_d2h_every_step = false; tr_h2d_once = false } ];
          bytes_per_step = 0;
          bytes_once = 0 }
      [ Ir.Comment "a program with no transfer nodes at all" ]
      [ Finding.Plan_mismatch ];
    fx "unsynced-download"
      "the result download is issued while the kernel is still in flight"
      [ Ir.H2d { vars = [ "u" ]; every_step = false };
        kernel [ flux ];
        Ir.D2h { vars = [ "u" ]; every_step = false };
        Ir.Swap_buffers "u" ]
      [ Finding.Unsynced_download ];
    fx "d2d-before-upload"
      "the peer ghost push runs before any upload makes the variable \
       device-resident"
      [ Ir.D2d { vars = [ "u" ]; note = ph_c };
        Ir.H2d { vars = [ "u" ]; every_step = false };
        kernel [ flux ];
        Ir.Stream_sync;
        Ir.D2h { vars = [ "u" ]; every_step = false };
        Ir.Swap_buffers "u" ]
      [ Finding.Uncovered_device_read ];
    fx "missing-ghost-push"
      "a multi-device steps body re-uploads the unknown but never pushes \
       tile-frontier ghosts between devices"
      ~ctx:(ctx ~partitioned:true ())
      [ Ir.H2d { vars = [ "u" ]; every_step = false };
        Ir.Loop
          { range = Ir.Steps;
            body =
              [ kernel [ flux ];
                Ir.Boundary_cpu { var = "u"; note = ph_b };
                Ir.Stream_sync;
                Ir.D2h { vars = [ "u" ]; every_step = true };
                Ir.Swap_buffers "u";
                Ir.H2d { vars = [ "u" ]; every_step = true } ];
            parallel = false } ]
      [ Finding.Stale_ghost_read ];
    fx "ghost-push-after-publish"
      "the clean multi-device shape: per-step upload then peer ghost push \
       after the publish (no findings expected)"
      ~ctx:(ctx ~partitioned:true ())
      [ Ir.H2d { vars = [ "u" ]; every_step = false };
        Ir.Loop
          { range = Ir.Steps;
            body =
              [ kernel [ flux ];
                Ir.Boundary_cpu { var = "u"; note = ph_b };
                Ir.Stream_sync;
                Ir.D2h { vars = [ "u" ]; every_step = true };
                Ir.Swap_buffers "u";
                Ir.H2d { vars = [ "u" ]; every_step = true };
                Ir.D2d { vars = [ "u" ]; note = ph_c } ];
            parallel = false } ]
      [];
    fx "comm-clean"
      "the clean partitioned exchange shape: halo exchange after the \
       publish, full channel coverage (no findings expected)"
      ~ctx:(ctx ~partitioned:true ())
      ~comm:(Comm.Elaborate plan2)
      [ steps
          [ cells ~parallel:true [ flux ];
            Ir.Boundary_cpu { var = "u"; note = ph_b };
            Ir.Swap_buffers "u";
            Ir.Halo_exchange { vars = [ "u" ]; note = ph_c } ] ]
      [];
    fx "comm-dropped-send"
      "a dropped exchange half: rank 1 posts its receive but rank 0 \
       never sends"
      ~comm:(seeded ~rounds:[ round ~sends:[ e10 ] ~recvs:[ e01; e10 ] () ] ())
      [ cells [ flux ]; Ir.Swap_buffers "u" ]
      [ Finding.Comm_unmatched_recv ];
    fx "comm-dropped-recv"
      "a dropped exchange half: rank 0 sends but rank 1 posts no receive"
      ~comm:(seeded ~rounds:[ round ~sends:[ e01; e10 ] ~recvs:[ e10 ] () ] ())
      [ cells [ flux ]; Ir.Swap_buffers "u" ]
      [ Finding.Comm_unmatched_send ];
    fx "comm-swapped-tag"
      "one side of a channel posts tag 1 while the other expects tag 0: \
       both halves go unmatched"
      ~comm:
        (seeded
           ~rounds:
             [ round
                 ~sends:[ entry 0 1 1 [| 2; 3 |]; e10 ]
                 ~recvs:[ e01; e10 ] () ]
           ())
      [ cells [ flux ]; Ir.Swap_buffers "u" ]
      [ Finding.Comm_unmatched_send; Finding.Comm_unmatched_recv ];
    fx "comm-deadlock"
      "a cyclic ordering: both ranks wait on their receives before \
       posting any send"
      ~comm:
        (seeded
           ~rounds:
             [ round ~recv_first:[ 0; 1 ] ~sends:[ e01; e10 ]
                 ~recvs:[ e01; e10 ] () ]
           ())
      [ cells [ flux ]; Ir.Swap_buffers "u" ]
      [ Finding.Comm_deadlock ];
    fx "comm-tag-collision"
      "two messages with different payloads in flight on one (src, dst, \
       tag) channel: FIFO matching is order-dependent"
      ~comm:
        (seeded
           ~rounds:
             [ round
                 ~sends:
                   [ entry 0 1 0 [| 2 |]; entry 0 1 0 [| 2; 3 |]; e10 ]
                 ~recvs:
                   [ entry 0 1 0 [| 2 |]; entry 0 1 0 [| 2; 3 |]; e10 ]
                 () ]
           ())
      [ cells [ flux ]; Ir.Swap_buffers "u" ]
      [ Finding.Comm_tag_collision ];
    fx "comm-size-mismatch"
      "the sender ships more cells than the receiver's buffer expects"
      ~comm:
        (seeded
           ~plan:
             (Comm.Ranks
                (Fvm.Halo.of_exchanges ~nranks:2
                   [ xch 0 1 [| 2 |]; xch 1 0 [| 4 |] ]))
           ~rounds:
             [ round
                 ~sends:[ entry 0 1 0 [| 2; 3 |]; entry 1 0 0 [| 4 |] ]
                 ~recvs:[ entry 0 1 0 [| 2 |]; entry 1 0 0 [| 4 |] ]
                 () ]
           ())
      [ cells [ flux ]; Ir.Swap_buffers "u" ]
      [ Finding.Comm_size_mismatch ];
    fx "comm-undersized-halo"
      "an exchange round that moves only part of the plan's ghost set: \
       cell 3 of rank 1's halo stays stale"
      ~comm:
        (seeded
           ~rounds:
             [ round
                 ~sends:[ entry 0 1 0 [| 2 |]; e10 ]
                 ~recvs:[ entry 0 1 0 [| 2 |]; e10 ]
                 () ]
           ())
      [ cells [ flux ]; Ir.Swap_buffers "u" ]
      [ Finding.Comm_halo_incomplete ];
    fx "comm-redundant-exchange"
      "the exchange also ships a variable nothing reads across faces: \
       its ghost write is dead (warning)"
      ~ctx:(ctx ~partitioned:true ())
      ~comm:(Comm.Elaborate plan2)
      [ steps
          [ cells ~parallel:true [ flux ];
            Ir.Boundary_cpu { var = "u"; note = ph_b };
            Ir.Swap_buffers "u";
            Ir.Halo_exchange { vars = [ "u"; "s" ]; note = ph_c } ] ]
      [ Finding.Comm_redundant_exchange ];
    fx "comm-unreachable-peer"
      "a d2d push to a tile the decomposition gives no ghost edge to"
      ~comm:
        (seeded
           ~plan:
             (Comm.Grid
                { ndevices = 3;
                  tile_halo =
                    Fvm.Halo.of_exchanges ~nranks:3
                      [ xch 0 1 [| 2; 3 |]; xch 1 0 [| 4; 5 |] ] })
           ~pushes:
             [ push "u" 0 1 [| 2; 3 |]; push "u" 1 0 [| 4; 5 |];
               push "u" 0 2 [||] ]
           ())
      [ cells [ flux ]; Ir.Swap_buffers "u" ]
      [ Finding.Comm_unreachable_peer ];
  ]

(* Run the analyzer over one fixture; returns (expected, found) code
   multisets, both sorted, for the caller to compare. *)
let check f =
  let report = Driver.check_ir ?plan:f.fplan ?comm:f.fcomm f.fctx f.ir in
  let found = List.map (fun fd -> fd.Finding.code) report.Driver.findings in
  (List.sort compare f.expect, List.sort compare found)
