(* Data-movement pass (codes A020-A024).

   Abstract interpretation of the transfer schedule over the IR in
   execution order, tracking three facts per variable:

   - [device_valid]: the device copy is current, so a kernel may read it.
     Uploads establish it; publishing a host-side composition (swap after
     the combine, or a callback write) invalidates it, forcing the
     per-step re-upload the data-movement plan prescribes.
   - [staged_device]: a kernel wrote the variable's double buffer on the
     device and no download has fetched it yet.  If the swap publishes
     while it is still set, the host's current copy is missing the device
     results ([host_stale]), and any later host read is an error (A022).
   - [kernel_async]: a kernel launch with no stream sync yet — a download
     issued now races it (A024).

   Bodies of [Steps] loops are walked twice: the first pass is the first
   iteration (whose reads the one-time uploads must cover), the second
   pass exercises the cyclic schedule (end-of-body uploads covering the
   next iteration's reads).  Duplicate findings are collapsed.

   On mesh-partitioned runs the pass additionally requires a halo
   exchange for every variable read across faces (CELL2): the exchange
   must appear in the steps body AFTER the variable's swap, so each
   iteration's neighbour reads see the values the owner published at the
   end of the previous iteration (first-iteration reads see initial
   conditions and need no exchange).  A021 otherwise.

   When a [Dataflow.plan] is supplied, the IR's transfer nodes are
   cross-checked against it (A023): every planned upload/download must
   appear with the right cadence, and every per-step IR transfer must be
   justified by the plan. *)

open Finch
module SS = Set.Make (String)

type state = {
  ctx : Ctx.t;
  mutable device_valid : SS.t;
  mutable staged_device : SS.t;
  mutable host_stale : SS.t;
  mutable kernel_async : bool;
  mutable findings : Finding.t list;
}

let emit st ?var ~where code detail =
  st.findings <- Finding.make ?var ~where code detail :: st.findings

let loop_name = function
  | Ir.Cells -> "cells"
  | Ir.Faces_of_cell -> "faces"
  | Ir.Index s -> "index " ^ s
  | Ir.Steps -> "steps"

let at path s = String.concat "/" (List.rev (s :: path))

let check_host_reads st path what names =
  List.iter
    (fun v ->
      if SS.mem v st.host_stale then
        emit st ~var:v ~where:(at path what) Finding.Stale_host_read
          (Printf.sprintf
             "%s reads %s on the host, but its newest value sits on the \
              device with no download since the kernel produced it" what v))
    names

(* kernel-body reads that must be device-resident (coefficients are
   compiled into the kernel as constant memory and need no transfer) *)
let kernel_reads ctx body =
  List.filter
    (fun v -> not (Ctx.is_coefficient ctx v))
    (Ir.reads (Ir.Seq body))

let rec walk st path (n : Ir.node) =
  match n with
  | Ir.Comment _ -> ()
  | Ir.Seq ns -> List.iter (walk st path) ns
  | Ir.Loop { range = Ir.Steps; body; _ } ->
    (* twice: first iteration, then the cyclic steady state *)
    List.iter (walk st ("steps" :: path)) body;
    List.iter (walk st ("steps" :: path)) body
  | Ir.Loop { range; body; _ } ->
    List.iter (walk st (loop_name range :: path)) body
  | Ir.Kernel { kname; body; _ } ->
    List.iter
      (fun v ->
        if not (SS.mem v st.device_valid) then
          emit st ~var:v ~where:(at path ("kernel " ^ kname))
            Finding.Uncovered_device_read
            (Printf.sprintf
               "kernel %s reads %s but no upload makes it device-resident \
                at launch" kname v))
      (kernel_reads st.ctx body);
    st.staged_device <- SS.union st.staged_device (SS.of_list (Ir.writes n));
    st.kernel_async <- true
  | Ir.Stream_sync -> st.kernel_async <- false
  | Ir.H2d { vars; _ } ->
    st.device_valid <- SS.union st.device_valid (SS.of_list vars)
  | Ir.D2h { vars; _ } ->
    if st.kernel_async then
      emit st ~where:(at path "d2h") Finding.Unsynced_download
        (Printf.sprintf
           "download of %s races the asynchronous kernel: no stream sync \
            since the launch" (String.concat ", " vars));
    st.staged_device <- SS.diff st.staged_device (SS.of_list vars)
  | Ir.Swap_buffers v ->
    if SS.mem v st.staged_device then begin
      st.host_stale <- SS.add v st.host_stale;
      st.staged_device <- SS.remove v st.staged_device
    end;
    (* the published value is composed on the host (combine/boundary), so
       the device copy needs a re-upload before the next kernel read *)
    st.device_valid <- SS.remove v st.device_valid
  | Ir.Boundary_cpu { var; _ } ->
    check_host_reads st path ("boundary_cpu " ^ var) [ var ]
  | Ir.Callback { which; _ } ->
    let what =
      "callback " ^ (match which with `Pre -> "pre" | `Post -> "post")
    in
    check_host_reads st path what st.ctx.Ctx.cb_reads;
    st.host_stale <- SS.diff st.host_stale (SS.of_list st.ctx.Ctx.cb_writes);
    st.device_valid <- SS.diff st.device_valid (SS.of_list st.ctx.Ctx.cb_writes)
  | Ir.Assign { dest; expr; _ } ->
    check_host_reads st path ("assign " ^ dest)
      (Finch_symbolic.Expr.ref_names expr)
  | Ir.Flux_update { var; rvol; rsurf; _ } ->
    check_host_reads st path ("flux_update " ^ var)
      ((var :: Finch_symbolic.Expr.ref_names rvol)
       @ Finch_symbolic.Expr.ref_names rsurf)
  | Ir.D2d { vars; _ } ->
    (* the peer ghost push reads the owners' device copies: each listed
       variable must be device-resident (freshly uploaded) when it runs,
       or the neighbours receive stale ghosts *)
    List.iter
      (fun v ->
        if not (SS.mem v st.device_valid) then
          emit st ~var:v ~where:(at path "d2d") Finding.Uncovered_device_read
            (Printf.sprintf
               "peer ghost push of %s runs before any upload makes it \
                device-resident: neighbours would receive stale values" v))
      vars
  | Ir.Halo_exchange _ | Ir.Allreduce _ | Ir.Advance_time -> ()

(* ------------------------------------------------------------------ *)
(* Halo coverage on partitioned runs (A021).                           *)
(* ------------------------------------------------------------------ *)

(* Flatten a body to (position, node) leaves so "the exchange follows the
   swap" is a comparison of positions in execution order. *)
let flatten body =
  let pos = ref 0 in
  let out = ref [] in
  let rec go n =
    match n with
    | Ir.Seq ns | Ir.Loop { body = ns; _ } | Ir.Kernel { body = ns; _ } ->
      incr pos;
      List.iter go ns
    | leaf ->
      out := (!pos, leaf) :: !out;
      incr pos
  in
  List.iter go body;
  List.rev !out

let neighbour_read_vars body =
  let of_expr e =
    List.filter_map
      (fun (name, _idx, side) ->
        if side = Finch_symbolic.Expr.Cell2 then Some name else None)
      (Finch_symbolic.Expr.refs e)
  in
  Ir.fold
    (fun acc n ->
      match n with
      | Ir.Assign { expr; _ } -> of_expr expr @ acc
      | Ir.Flux_update { rvol; rsurf; _ } -> of_expr rvol @ of_expr rsurf @ acc
      | _ -> acc)
    [] (Ir.Seq body)
  |> List.sort_uniq compare

let check_halo st path body =
  let leaves = flatten body in
  let swap_pos v =
    List.find_map
      (fun (i, n) -> if n = Ir.Swap_buffers v then Some i else None)
      leaves
  in
  let halo_pos v =
    (* either communication shape refreshes ghosts: the SPMD halo
       exchange, or the multi-device peer copy *)
    List.find_map
      (fun (i, n) ->
        match n with
        | Ir.Halo_exchange { vars; _ } when List.mem v vars -> Some i
        | Ir.D2d { vars; _ } when List.mem v vars -> Some i
        | _ -> None)
      leaves
  in
  List.iter
    (fun v ->
      (* only variables this program also updates need fresh ghosts *)
      if List.mem v (Ir.writes (Ir.Seq body)) then
        match halo_pos v, swap_pos v with
        | None, _ ->
          emit st ~var:v ~where:(at path "steps") Finding.Stale_ghost_read
            (Printf.sprintf
               "%s is read across partition faces (CELL2) but the steps \
                body has no halo exchange for it: ghosts keep initial \
                values forever" v)
        | Some h, Some s when h < s ->
          emit st ~var:v ~where:(at path "steps") Finding.Stale_ghost_read
            (Printf.sprintf
               "the halo exchange of %s runs before its swap, shipping \
                the previous step's values; move it after the publish" v)
        | Some _, _ -> ())
    (neighbour_read_vars body)

let rec scan_halo st path (n : Ir.node) =
  match n with
  | Ir.Seq ns -> List.iter (scan_halo st path) ns
  | Ir.Loop { range = Ir.Steps; body; _ } -> check_halo st path body
  | Ir.Loop { range; body; _ } ->
    List.iter (scan_halo st (loop_name range :: path)) body
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Plan cross-check (A023).                                            *)
(* ------------------------------------------------------------------ *)

let check_plan st (plan : Dataflow.plan) tree =
  let h2ds =
    Ir.fold
      (fun acc n ->
        match n with
        | Ir.H2d { vars; every_step } ->
          List.map (fun v -> v, every_step) vars @ acc
        | _ -> acc)
      [] tree
  in
  let d2hs =
    Ir.fold
      (fun acc n ->
        match n with
        | Ir.D2h { vars; every_step } ->
          List.map (fun v -> v, every_step) vars @ acc
        | _ -> acc)
      [] tree
  in
  (* every planned upload appears with the right cadence *)
  List.iter
    (fun (v, every_step) ->
      let covered =
        if every_step then List.mem (v, true) h2ds
        else List.mem_assoc v h2ds
      in
      if not covered then
        emit st ~var:v ~where:"plan" Finding.Plan_mismatch
          (Printf.sprintf
             "the data-movement plan uploads %s %s but the IR has no such \
              h2d node" v
             (if every_step then "every step" else "once")))
    (Dataflow.ir_transfers plan);
  List.iter
    (fun (tr : Dataflow.transfer) ->
      if
        tr.Dataflow.tr_d2h_every_step
        && not (List.mem (tr.Dataflow.tr_var, true) d2hs)
      then
        emit st ~var:tr.Dataflow.tr_var ~where:"plan" Finding.Plan_mismatch
          (Printf.sprintf
             "the data-movement plan downloads %s every step but the IR \
              has no such d2h node" tr.Dataflow.tr_var))
    plan.Dataflow.transfers;
  (* every per-step IR transfer is justified by the plan *)
  let planned = Dataflow.ir_transfers plan in
  List.iter
    (fun (v, every_step) ->
      if every_step && not (List.mem (v, true) planned) then
        emit st ~var:v ~where:"plan" Finding.Plan_mismatch
          (Printf.sprintf
             "the IR uploads %s every step but the data-movement plan \
              does not ask for it" v))
    h2ds;
  List.iter
    (fun (v, every_step) ->
      let justified =
        List.exists
          (fun (tr : Dataflow.transfer) ->
            tr.Dataflow.tr_var = v && tr.Dataflow.tr_d2h_every_step)
          plan.Dataflow.transfers
      in
      if every_step && not justified then
        emit st ~var:v ~where:"plan" Finding.Plan_mismatch
          (Printf.sprintf
             "the IR downloads %s every step but the data-movement plan \
              does not ask for it" v))
    d2hs

let run ?plan (ctx : Ctx.t) (tree : Ir.node) =
  let st =
    { ctx;
      device_valid = SS.empty;
      staged_device = SS.empty;
      host_stale = SS.empty;
      kernel_async = false;
      findings = [] }
  in
  walk st [] tree;
  if ctx.Ctx.partitioned then scan_halo st [] tree;
  (match plan with Some p -> check_plan st p tree | None -> ());
  (* the double walk of steps bodies repeats identical findings *)
  List.sort_uniq compare (List.rev st.findings)
