(** Well-formedness pass (codes A001–A006).

    One forward walk of the IR in execution order checking def-before-use
    (A001, seeded from initial conditions and coefficients), matched
    double-buffer swaps (A002 unmatched / A003 never published), host-only
    nodes inside kernel bodies (A004), phase-metadata coverage (A005,
    warning) and empty loop/kernel bodies (A006, warning). *)

val run : Ctx.t -> Finch.Ir.node -> Finding.t list
(** Findings in program order. *)
