(* Scenario construction: encodes the phonon BTE in the DSL exactly as the
   paper's input script does (Section III-B and the appendix listing), and
   wires the physics callbacks.

   Two scenarios are provided:
   - [hotspot]: the paper's main demonstration (Figs. 1-2): square domain,
     cold isothermal bottom wall, isothermal top wall with a centred
     Gaussian hot spot, symmetry sides, initial equilibrium at the cold
     temperature;
   - [corner]: the Fig. 10 variant: elongated domain with the heat source
     in one corner of the top wall at a lower base temperature. *)

type scenario = {
  sname : string;
  lx : float;
  ly : float;
  nx : int;
  ny : int;
  ndirs : int;
  n_la_bands : int;      (* frequency bands; polarization-resolved count is larger *)
  t_cold : float;        (* initial / cold-wall temperature, K *)
  t_hot : float;         (* hot-spot peak temperature, K *)
  hot_radius : float;    (* 1/e^2 radius of the Gaussian, m *)
  hot_center : float;    (* x position of the peak, m *)
  dt : float;
  nsteps : int;
}

(* The paper's full-scale configuration: 525um square, 120x120 cells,
   20 directions, 40 frequency bands (55 resolved), dt such that 100 steps
   span 100 ns. *)
let paper_hotspot =
  {
    sname = "hotspot";
    lx = 525e-6;
    ly = 525e-6;
    nx = 120;
    ny = 120;
    ndirs = 20;
    n_la_bands = 40;
    t_cold = 300.;
    t_hot = 350.;
    hot_radius = 10e-6;
    hot_center = 262.5e-6;
    dt = 1e-12;
    nsteps = 100;
  }

(* A reduced sub-micron configuration (Knudsen number near one, the regime
   the BTE exists for) that runs in seconds for tests and examples. *)
let small_hotspot =
  {
    sname = "hotspot-small";
    lx = 4e-6;
    ly = 4e-6;
    nx = 24;
    ny = 24;
    ndirs = 8;
    n_la_bands = 8;
    t_cold = 300.;
    t_hot = 350.;
    hot_radius = 1e-6;
    hot_center = 2e-6;
    dt = 1e-12;
    nsteps = 20;
  }

let paper_corner =
  {
    sname = "corner";
    lx = 200e-6;
    ly = 50e-6;
    nx = 160;
    ny = 40;
    ndirs = 20;
    n_la_bands = 40;
    t_cold = 100.;
    t_hot = 150.;
    hot_radius = 10e-6;
    hot_center = 0.;
    dt = 1e-12;
    nsteps = 100;
  }

let small_corner =
  {
    sname = "corner-small";
    lx = 8e-6;
    ly = 2e-6;
    nx = 32;
    ny = 8;
    ndirs = 8;
    n_la_bands = 8;
    t_cold = 100.;
    t_hot = 150.;
    hot_radius = 2e-6;
    hot_center = 0.;
    dt = 1e-12;
    nsteps = 20;
  }

type built = {
  problem : Finch.Problem.t;
  scenario : scenario;
  disp : Dispersion.t;
  angles : Angles.t;
  eqtab : Equilibrium.t;
  temp_model : Temperature.model;
  mesh : Fvm.Mesh.t;
}

(* Stability bound for the explicit scheme: the advective CFL condition
   AND the relaxation-rate bound dt * max(1/tau) < 1 (the high-frequency
   bands have tau of a few picoseconds at room temperature, which is why
   the paper's appendix uses dt = 1e-12 s). *)
let cfl_dt sc disp =
  let dx = Float.min (sc.lx /. float_of_int sc.nx) (sc.ly /. float_of_int sc.ny) in
  let vmax =
    Array.fold_left
      (fun acc (b : Dispersion.band) -> Float.max acc b.Dispersion.vg)
      0. disp.Dispersion.bands
  in
  let t_max_scenario = Float.max sc.t_cold sc.t_hot in
  let rate_max =
    Array.fold_left
      (fun acc b -> Float.max acc (Scattering.band_rate b t_max_scenario))
      0. disp.Dispersion.bands
  in
  Float.min (dx /. vmax /. 2.) (0.5 /. rate_max)

(* Data-movement declaration for the post-step callback: the temperature
   update reads the intensity and writes Io/beta/T. *)
let post_io =
  { Finch.Dataflow.cb_reads = [ "I" ]; cb_writes = [ "Io"; "beta"; "T" ] }

(* The physics tables are pure functions of (bands, directions,
   temperature range): identical inputs produce bit-identical tables, so
   a process serving many requests may reuse them.  The memo is gated on
   the facade's scenario-cache switch — off (the default), every build
   pays the full table construction, exactly the historical behaviour;
   the serve scheduler turns it on together with its program cache. *)
let table_memo :
    ( int * int * float * float,
      Dispersion.t * Angles.t * Equilibrium.t * Temperature.model )
    Hashtbl.t =
  Hashtbl.create 16

let tables_for (sc : scenario) =
  let fresh () =
    let disp = Dispersion.make ~n_la:sc.n_la_bands in
    let angles = Angles.make_2d ~ndirs:sc.ndirs in
    let eqtab =
      Equilibrium.make ~omega_total:angles.Angles.total
        ~t_lo:(Float.max 2. (Float.min sc.t_cold sc.t_hot /. 2.))
        ~t_hi:(2. *. Float.max sc.t_cold sc.t_hot)
        disp
    in
    let temp_model = Temperature.make ~disp ~eqtab ~angles () in
    disp, angles, eqtab, temp_model
  in
  if not (Finch.scenario_cache_enabled ()) then fresh ()
  else begin
    let key = sc.n_la_bands, sc.ndirs, sc.t_cold, sc.t_hot in
    match Hashtbl.find_opt table_memo key with
    | Some tables -> tables
    | None ->
      let tables = fresh () in
      Hashtbl.add table_memo key tables;
      tables
  end

let build ?(enforce_cfl = true) ?(stepper = Finch.Config.Euler_explicit)
    (sc : scenario) =
  let disp, angles, eqtab, temp_model = tables_for sc in
  let nb = Dispersion.nbands disp in
  (* the point-implicit stepper is free of the relaxation-rate bound, so
     only the advective CFL limit applies to it *)
  let dt =
    if not enforce_cfl then sc.dt
    else
      match stepper with
      | Finch.Config.Euler_point_implicit ->
        let dx =
          Float.min (sc.lx /. float_of_int sc.nx) (sc.ly /. float_of_int sc.ny)
        in
        let vmax =
          Array.fold_left
            (fun acc (b : Dispersion.band) -> Float.max acc b.Dispersion.vg)
            0. disp.Dispersion.bands
        in
        Float.min sc.dt (dx /. vmax /. 2.)
      | _ -> Float.min sc.dt (cfl_dt sc disp)
  in

  let p = Finch.Problem.init ("bte-" ^ sc.sname) in
  Finch.Problem.domain p 2;
  Finch.Problem.solver_type p Finch.Config.FV;
  Finch.Problem.time_stepper p stepper;
  let mesh = Fvm.Mesh_gen.rectangle ~nx:sc.nx ~ny:sc.ny ~lx:sc.lx ~ly:sc.ly () in
  Finch.Problem.set_mesh p mesh;
  Finch.Problem.set_steps p ~dt ~nsteps:sc.nsteps;

  (* indices and entities, as in the paper's listing *)
  let d = Finch.Problem.index p ~name:"d" ~range:(1, sc.ndirs) in
  let b = Finch.Problem.index p ~name:"b" ~range:(1, nb) in
  let vI =
    Finch.Problem.variable p ~name:"I" ~location:Finch.Entity.Cell
      ~indices:[ d; b ] ()
  in
  let vIo =
    Finch.Problem.variable p ~name:"Io" ~location:Finch.Entity.Cell
      ~indices:[ b ] ()
  in
  let _vbeta =
    Finch.Problem.variable p ~name:"beta" ~location:Finch.Entity.Cell
      ~indices:[ b ] ()
  in
  let _vT = Finch.Problem.variable p ~name:"T" ~location:Finch.Entity.Cell () in
  let _sx =
    Finch.Problem.coefficient p ~name:"Sx" ~index:d
      (Finch.Entity.Arr (Array.copy angles.Angles.sx))
  in
  let _sy =
    Finch.Problem.coefficient p ~name:"Sy" ~index:d
      (Finch.Entity.Arr (Array.copy angles.Angles.sy))
  in
  let _vg =
    Finch.Problem.coefficient p ~name:"vg" ~index:b
      (Finch.Entity.Arr (Dispersion.vg_array disp))
  in

  (* initial thermal equilibrium at the cold temperature *)
  let i_init = Array.init nb (fun bb -> Equilibrium.i0 eqtab bb sc.t_cold) in
  Finch.Problem.initial p vI
    (Finch.Problem.Init_fn (fun _pos comp -> i_init.(comp / sc.ndirs)));
  Finch.Problem.initial p vIo
    (Finch.Problem.Init_fn (fun _pos bb -> i_init.(bb)));
  Finch.Problem.initial p _vbeta
    (Finch.Problem.Init_fn
       (fun _pos bb ->
         Scattering.band_rate (Dispersion.band disp bb) sc.t_cold));
  Finch.Problem.initial p _vT (Finch.Problem.Init_const sc.t_cold);

  (* boundary conditions: bottom (1) cold isothermal; top (3) isothermal
     with the Gaussian hot spot; left (4) and right (2) symmetry *)
  let bcctx = { Bc.disp; eqtab; angles } in
  let hot_wall pos =
    let x = pos.(0) -. sc.hot_center in
    sc.t_cold
    +. ((sc.t_hot -. sc.t_cold)
        *. exp (-2. *. x *. x /. (sc.hot_radius *. sc.hot_radius)))
  in
  Finch.Problem.callback_function p "isothermal_cold" (Bc.isothermal bcctx);
  Finch.Problem.callback_function p "isothermal_hot"
    (Bc.isothermal ~wall:(Bc.Profile_wall hot_wall) bcctx);
  Finch.Problem.callback_function p "symmetry" (Bc.symmetry bcctx);
  Finch.Problem.boundary p vI 1 Finch.Config.Flux
    (Printf.sprintf "isothermal_cold(I,vg,Sx,Sy,b,d,normal,%g)" sc.t_cold);
  Finch.Problem.boundary p vI 3 Finch.Config.Flux
    "isothermal_hot(I,vg,Sx,Sy,b,d,normal)";
  Finch.Problem.boundary p vI 2 Finch.Config.Flux "symmetry(I,Sx,Sy,b,d,normal)";
  Finch.Problem.boundary p vI 4 Finch.Config.Flux "symmetry(I,Sx,Sy,b,d,normal)";

  (* the temperature update runs after every step *)
  Finch.Problem.post_step_function p (Temperature.post_step temp_model);

  (* the BTE in conservation form, as in the paper's listing (with the
     surface term's sign written explicitly; see DESIGN.md) *)
  let _eq =
    Finch.Problem.conservation_form p vI
      "(Io[b] - I[d,b]) * beta[b] - surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"
  in
  ignore vIo;
  { problem = p; scenario = { sc with dt }; disp; angles; eqtab; temp_model; mesh }

(* The corner scenario differs only in geometry/temperatures: source on the
   top wall against the left corner. *)
let build_corner ?(enforce_cfl = true) ?stepper (sc : scenario) =
  build ~enforce_cfl ?stepper { sc with hot_center = 0. }

(* ------------------------------------------------------------------ *)
(* facade registration                                                *)

(* Derive a concrete scenario record from a request: the small_* record
   of the requested family supplies the geometry (the domain stays at
   the base physical size, so growing nx refines the mesh — the same
   convention the bench sweeps use); the request overrides the
   discretization dimensions, step count and temperatures. *)
let scenario_of_request base (req : Finch.Solve_request.t) =
  { base with
    nx = req.Finch.Solve_request.nx;
    ny = req.Finch.Solve_request.ny;
    ndirs = req.Finch.Solve_request.ndirs;
    n_la_bands = req.Finch.Solve_request.nbands;
    nsteps = req.Finch.Solve_request.nsteps;
    t_hot =
      (match req.Finch.Solve_request.t_hot with
       | Some t -> t
       | None -> base.t_hot);
    t_cold =
      (match req.Finch.Solve_request.t_cold with
       | Some t -> t
       | None -> base.t_cold) }

let prepared_of built =
  { Finch.pr_problem = built.problem;
    pr_post_io = Some post_io;
    pr_band_index = Some "b";
    pr_solution = "T" }

let register_scenarios () =
  Finch.register_scenario "hotspot" (fun req ->
      prepared_of (build (scenario_of_request small_hotspot req)));
  Finch.register_scenario "corner" (fun req ->
      prepared_of (build_corner (scenario_of_request small_corner req)));
  (* paper-scale geometry (Fig. 2 / Fig. 10 domains); the request still
     sets the discretization, so callers pass the paper dims explicitly
     (see [request_of_base]) *)
  Finch.register_scenario "hotspot-paper" (fun req ->
      prepared_of (build (scenario_of_request paper_hotspot req)));
  Finch.register_scenario "corner-paper" (fun req ->
      prepared_of (build_corner (scenario_of_request paper_corner req)))

let base_of_scenario = function
  | "hotspot" -> Some small_hotspot
  | "corner" -> Some small_corner
  | "hotspot-paper" -> Some paper_hotspot
  | "corner-paper" -> Some paper_corner
  | _ -> None

let request_of_base (base : scenario) name =
  { (Finch.Solve_request.make name) with
    Finch.Solve_request.nx = base.nx;
    ny = base.ny;
    ndirs = base.ndirs;
    nbands = base.n_la_bands;
    nsteps = base.nsteps }
