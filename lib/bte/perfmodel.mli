(** Analytic performance model for the paper-scale experiments (Figs. 4,
    5, 7, 8, 9 and the Sec. III-D profiling table).

    The paper's evaluation hardware is simulated; this model combines
    per-rank work counts of the algorithms implemented in this repository
    with calibrated unit costs (anchored to the paper's sequential
    measurements), the alpha-beta network model, and the GPU roofline.
    All calibration constants live in {!default} so every figure's
    sensitivity is inspectable; the shape claims are asserted by
    [test/test_perfmodel.ml]. *)

type calib = {
  dsl_dof_time : float;       (** s per intensity DOF update, DSL CPU code *)
  fortran_dof_time : float;
  reduce_dof_time : float;    (** s per DOF in the absorbed-power reduction *)
  newton_cell_time : float;   (** s per cell for the Newton solve *)
  refresh_band_time : float;  (** s per (cell, band) Io/beta refresh *)
  boundary_dof_time : float;  (** s per boundary-face DOF (CPU callbacks) *)
  fortran_temp_parallel : bool;
    (** the Fortran code's temperature update is not parallelized (the
        paper's "slightly different parallelization of one part") *)
  sync_jitter : float;
    (** per-rank growth of collective waiting (imbalance/noise) *)
  network : Prt.Cluster.network;
  nvlink : Prt.Cluster.network;
    (** device-to-device peer-copy link inside a node (NVLink), used by
        the {!Gpu_grid} tile-frontier ghost pushes *)
  gpu : Gpu_sim.Spec.t;
  kernel_flops_per_dof : float;
  kernel_bytes_per_dof : float;
}

val default : calib

type shape = {
  ncells : int;
  ndirs : int;
  nbands : int;
  nsteps : int;
  boundary_faces : int;
}

val paper_shape : shape
(** 120x120 cells, 20 directions, 55 bands, 100 steps. *)

val shape_of_scenario : Setup.scenario -> shape
val ndofs : shape -> int
val max_bands : shape -> int -> int
val max_cells : shape -> int -> int

type strategy =
  | Serial
  | Bands of int
  | Cells of int
  | Threads of int      (** shared-memory domain pool, one process *)
  | Hybrid of int * int (** band-parallel ranks x pool threads *)
  | Gpu of int          (** band partitioning, one device per rank *)
  | Gpu_grid of int * int
      (** [Gpu_grid (g, p)]: 2-D band x cell decomposition — [p]
          band-parallel ranks, each driving [g] devices that tile the
          cells; the tile frontier moves device-to-device over NVLink
          (host-staged past {!Gpu_sim.Topology.devices_per_node}).
          [Gpu_grid (1, p)] is exactly [Gpu p]. *)
  | Fortran of int

type overlap_model = {
  sync_step : float;     (** per-step seconds with a blocking halo exchange *)
  overlap_step : float;  (** same step with the exchange behind the sweep *)
  hidden : float;        (** exchange seconds taken off the critical path *)
}
(** Modelled effect of nonblocking halo messaging on one cell-parallel
    step: up to [min(interior sweep, exchange)] seconds of communication
    hide behind the sweep of the cells no neighbour needs. *)

val cells_overlap : ?calib:calib -> ?shape:shape -> p:int -> unit -> overlap_model
(** Per-step sync-vs-overlap comparison for [Cells p]; at [p = 1] both
    times equal the serial step and [hidden = 0]. *)

val step_breakdown : ?calib:calib -> ?shape:shape -> strategy -> Prt.Breakdown.t
(** Per-step phase times. Raises [Invalid_argument] beyond a strategy's
    partition cap (bands/GPU/Fortran: the band count). *)

val run_breakdown : ?calib:calib -> ?shape:shape -> strategy -> Prt.Breakdown.t
val run_time : ?calib:calib -> ?shape:shape -> strategy -> float

val gpu_speedup : ?calib:calib -> ?shape:shape -> p:int -> unit -> float
(** The headline: CPU band-parallel over hybrid at equal rank counts. *)

val gpu_profile : ?calib:calib -> ?shape:shape -> unit -> float * float * float
(** (SM utilization, memory-throughput fraction, FLOP fraction of DP
    peak) of the 1-GPU intensity kernel — the paper's profiling table. *)
