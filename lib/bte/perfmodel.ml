(* Analytic performance model for the paper-scale experiments.

   The paper's evaluation platform (40-core Cascade Lake nodes, up to 320
   MPI ranks, eight A6000 GPUs per node) is not available, so the
   strong-scaling figures are regenerated from a calibrated model of the
   implemented algorithms:

   - per-rank compute is work-units x calibrated unit times (anchored to
     the paper's sequential measurements: about 2.4e3 s per 100 steps for
     the DSL-generated CPU code, half that for the hand-written Fortran);
   - communication uses the alpha-beta machinery of [Prt.Cluster]
     (allreduce of the per-cell absorbed power for band partitioning, halo
     exchange of interface-cell intensities for cell partitioning);
   - GPU kernel time comes from the roofline model of [Gpu_sim.Spec] with
     the same cost annotation the executable hybrid target uses, and PCIe
     transfers follow the data-movement plan (intensity both ways, Io/beta
     up, every step).

   Every constant lives in the [calib] record below, so the sensitivity of
   each figure to the calibration is inspectable (and exercised by the
   ablation benches). *)

type calib = {
  (* CPU work *)
  dsl_dof_time : float;       (* s per intensity DOF update, DSL CPU code *)
  fortran_dof_time : float;   (* same, hand-written Fortran *)
  reduce_dof_time : float;    (* s per DOF in the absorbed-power reduction *)
  newton_cell_time : float;   (* s per cell for the Newton solve *)
  refresh_band_time : float;  (* s per (cell, band) for the Io/beta refresh *)
  boundary_dof_time : float;  (* s per boundary-face DOF (CPU callbacks) *)
  (* the Fortran code's temperature update is not parallelized (the
     "slightly different parallelization of one part of the calculation") *)
  fortran_temp_parallel : bool;
  (* per-rank synchronization-wait/imbalance growth: each additional rank
     adds this fraction of the sweep time as waiting inside collectives *)
  sync_jitter : float;
  network : Prt.Cluster.network;
  nvlink : Prt.Cluster.network;
  gpu : Gpu_sim.Spec.t;
  (* per-thread kernel cost annotation (same shape as the hybrid target) *)
  kernel_flops_per_dof : float;
  kernel_bytes_per_dof : float;
}

let default = {
  dsl_dof_time = 1.45e-6;
  fortran_dof_time = 0.72e-6;
  reduce_dof_time = 55e-9;
  newton_cell_time = 2.0e-6;
  refresh_band_time = 0.1e-6;
  boundary_dof_time = 0.6e-6;
  fortran_temp_parallel = false;
  sync_jitter = 0.005;
  network = { Prt.Cluster.alpha = 2e-6; beta = 1. /. 0.5e9 };
  (* A6000 NVLink 3 bridge: 56.25 GB/s per direction, same 2 us launch
     latency the executable Topology model charges *)
  nvlink = { Prt.Cluster.alpha = 2e-6; beta = 1. /. 56.25e9 };
  gpu = Gpu_sim.Spec.a6000;
  kernel_flops_per_dof = 124.;
  kernel_bytes_per_dof = 18.;
}

(* problem shape *)
type shape = {
  ncells : int;
  ndirs : int;
  nbands : int;
  nsteps : int;
  boundary_faces : int;
}

let paper_shape =
  {
    ncells = 120 * 120;
    ndirs = 20;
    nbands = 55;
    nsteps = 100;
    boundary_faces = 4 * 120;
  }

let shape_of_scenario (sc : Setup.scenario) =
  let disp = Dispersion.make ~n_la:sc.Setup.n_la_bands in
  {
    ncells = sc.Setup.nx * sc.Setup.ny;
    ndirs = sc.Setup.ndirs;
    nbands = Dispersion.nbands disp;
    nsteps = sc.Setup.nsteps;
    boundary_faces = 2 * (sc.Setup.nx + sc.Setup.ny);
  }

let ndofs s = s.ncells * s.ndirs * s.nbands

(* bands owned by the busiest rank *)
let max_bands s p = (s.nbands + p - 1) / p
let max_cells s p = (s.ncells + p - 1) / p

(* ------------------------------------------------------------------ *)
(* Per-step times (seconds) by strategy.  Each returns a breakdown.     *)
(* ------------------------------------------------------------------ *)

(* temperature update of a band-partitioned rank: local reduction over its
   DOF slice, allreduce of the per-cell absorbed power, then the per-cell
   Newton solve running redundantly on every rank (each band-parallel rank
   owns every cell — exactly what the implemented executor does), and the
   Io/beta refresh for the owned bands over all cells. *)
let temp_band c s ~p =
  let mb = max_bands s p in
  let reduce = float_of_int (s.ncells * s.ndirs * mb) *. c.reduce_dof_time in
  let newton = float_of_int s.ncells *. c.newton_cell_time in
  let refresh = float_of_int (s.ncells * mb) *. c.refresh_band_time in
  let comm =
    if p = 1 then 0.
    else Prt.Cluster.allreduce c.network ~p ~bytes:(8 * s.ncells)
  in
  (reduce +. newton +. refresh), comm

(* waiting time inside collectives from load imbalance and system noise,
   growing with the rank count; attributed to communication *)
let sync_wait c ~p ~compute =
  if p <= 1 then 0. else compute *. c.sync_jitter *. float_of_int p

let step_cpu_serial c s =
  let intensity = float_of_int (ndofs s) *. c.dsl_dof_time in
  let boundary =
    float_of_int (s.boundary_faces * s.ndirs * s.nbands) *. c.boundary_dof_time
  in
  let temp, _ = temp_band c s ~p:1 in
  Prt.Breakdown.make ~intensity:(intensity +. boundary) ~temperature:temp
    ~communication:0. ()

let step_cpu_bands c s ~p =
  if p > s.nbands then invalid_arg "Perfmodel: more ranks than bands";
  let mb = max_bands s p in
  let intensity = float_of_int (s.ncells * s.ndirs * mb) *. c.dsl_dof_time in
  let boundary =
    float_of_int (s.boundary_faces * s.ndirs * mb) *. c.boundary_dof_time
  in
  let temp, comm = temp_band c s ~p in
  let comm = comm +. sync_wait c ~p ~compute:intensity in
  Prt.Breakdown.make ~intensity:(intensity +. boundary) ~temperature:temp
    ~communication:comm ()

(* interface cells of a square-ish RCB part of an nx x ny grid *)
let interface_cells s ~p =
  if p = 1 then 0
  else begin
    let part_cells = float_of_int s.ncells /. float_of_int p in
    let side = sqrt part_cells in
    int_of_float (ceil (4. *. side))
  end

let step_cpu_cells c s ~p =
  if p > s.ncells then invalid_arg "Perfmodel: more ranks than cells";
  let mc = max_cells s p in
  let comp = s.ndirs * s.nbands in
  let intensity = float_of_int (mc * comp) *. c.dsl_dof_time in
  let boundary =
    (* boundary faces shared among the ranks that own them *)
    float_of_int (s.boundary_faces * comp) /. float_of_int p *. c.boundary_dof_time
  in
  (* mesh-partitioned ranks solve the Newton update only for their own
     cells, so the whole temperature update scales *)
  let temp =
    (float_of_int (mc * comp) *. c.reduce_dof_time)
    +. (float_of_int mc *. c.newton_cell_time)
    +. (float_of_int (mc * s.nbands) *. c.refresh_band_time)
  in
  let comm =
    if p = 1 then 0.
    else begin
      let ifc = interface_cells s ~p in
      let bytes = ifc * comp * 8 in
      (* roughly four neighbours exchanging a quarter of the interface each,
         send and receive *)
      Prt.Cluster.halo_exchange c.network
        ~neighbour_bytes:[ bytes / 2; bytes / 2; bytes / 2; bytes / 2 ]
    end
  in
  let comm = comm +. sync_wait c ~p ~compute:intensity in
  Prt.Breakdown.make ~intensity:(intensity +. boundary) ~temperature:temp
    ~communication:comm ()

(* shared-memory pool over cell ranges (one process): the intensity sweep
   and its boundary part scale with the thread count, the temperature
   update stays serial on the base thread, and there is no network —
   the only overhead is barrier wait from load imbalance, modelled with
   the same jitter term as the collectives *)
let step_cpu_threads c s ~p =
  if p > s.ncells then invalid_arg "Perfmodel: more threads than cells";
  let mc = max_cells s p in
  let comp = s.ndirs * s.nbands in
  let intensity = float_of_int (mc * comp) *. c.dsl_dof_time in
  let boundary =
    float_of_int (s.boundary_faces * comp) /. float_of_int p *. c.boundary_dof_time
  in
  let temp, _ = temp_band c s ~p:1 in
  let barrier = sync_wait c ~p ~compute:intensity in
  Prt.Breakdown.make ~intensity:(intensity +. boundary) ~temperature:temp
    ~communication:barrier ()

(* MPI+threads hybrid: band-parallel ranks whose sweeps run on a t-thread
   pool — per-rank intensity shrinks by the thread count on top of the
   band slice, the allreduce still crosses ranks *)
let step_cpu_hybrid c s ~p ~t =
  if p > s.nbands then invalid_arg "Perfmodel: more ranks than bands";
  if t > s.ncells then invalid_arg "Perfmodel: more threads than cells";
  let mb = max_bands s p in
  let mc = max_cells s t in
  let intensity = float_of_int (mc * s.ndirs * mb) *. c.dsl_dof_time in
  let boundary =
    float_of_int (s.boundary_faces * s.ndirs * mb)
    /. float_of_int t *. c.boundary_dof_time
  in
  let temp, comm = temp_band c s ~p in
  let comm =
    comm
    +. sync_wait c ~p ~compute:intensity
    +. sync_wait c ~p:t ~compute:intensity
  in
  Prt.Breakdown.make ~intensity:(intensity +. boundary) ~temperature:temp
    ~communication:comm ()

let step_fortran c s ~p =
  if p > s.nbands then invalid_arg "Perfmodel: more ranks than bands";
  let mb = max_bands s p in
  let intensity =
    float_of_int (s.ncells * s.ndirs * mb) *. c.fortran_dof_time
  in
  let boundary =
    float_of_int (s.boundary_faces * s.ndirs * mb) *. c.fortran_dof_time
  in
  let temp, comm =
    if c.fortran_temp_parallel then
      let t, cm = temp_band c s ~p in
      (* Fortran's unit costs are about half the DSL's *)
      t /. 2., cm
    else begin
      (* the whole temperature update runs redundantly on every rank —
         the paper's "slightly different parallelization of one part" *)
      let t, _ = temp_band c s ~p:1 in
      t /. 2., if p = 1 then 0. else Prt.Cluster.allreduce c.network ~p ~bytes:(8 * s.ncells)
    end
  in
  let comm = comm +. sync_wait c ~p ~compute:intensity in
  Prt.Breakdown.make ~intensity:(intensity +. boundary) ~temperature:temp
    ~communication:comm ()

(* hybrid CPU/GPU, band partitioning across [p] (device, rank) pairs *)
let step_gpu c s ~p =
  if p > s.nbands then invalid_arg "Perfmodel: more ranks than bands";
  let mb = max_bands s p in
  let slice_dofs = s.ncells * s.ndirs * mb in
  let kernel =
    Gpu_sim.Spec.kernel_time c.gpu ~threads:slice_dofs
      ~flops:(c.kernel_flops_per_dof *. float_of_int slice_dofs)
      ~dram_bytes:(c.kernel_bytes_per_dof *. float_of_int slice_dofs)
  in
  let boundary =
    float_of_int (s.boundary_faces * s.ndirs * mb) *. c.boundary_dof_time
  in
  (* the boundary callback overlaps the kernel (Fig. 6) *)
  let intensity = Float.max kernel boundary in
  let temp, net_comm = temp_band c s ~p in
  let slice_bytes = 8 * slice_dofs in
  let io_bytes = 2 * 8 * s.ncells * mb in
  let pcie =
    Gpu_sim.Spec.transfer_time c.gpu ~bytes:slice_bytes (* D2H of I *)
    +. Gpu_sim.Spec.transfer_time c.gpu ~bytes:slice_bytes (* H2D of I *)
    +. Gpu_sim.Spec.transfer_time c.gpu ~bytes:io_bytes    (* H2D Io, beta *)
  in
  Prt.Breakdown.make ~intensity ~temperature:temp
    ~communication:(net_comm +. pcie) ()

(* 2-D band x cell decomposition: [p] SPMD ranks split the bands (as in
   [step_gpu]) and each rank drives [g] devices that tile the cells.
   Per-device kernel and PCIe work shrink by the device count; the tile
   frontier is refreshed every step by device-to-device peer copies —
   NVLink inside a node, staged through host PCIe (both directions) when
   the grid spills across [Gpu_sim.Topology.devices_per_node]. *)
let step_gpu_grid c s ~g ~p =
  if p > s.nbands then invalid_arg "Perfmodel: more ranks than bands";
  if g > s.ncells then invalid_arg "Perfmodel: more devices than cells";
  let mb = max_bands s p in
  let mc = max_cells s g in
  let comp = s.ndirs * mb in
  let dev_dofs = mc * comp in
  let kernel =
    Gpu_sim.Spec.kernel_time c.gpu ~threads:dev_dofs
      ~flops:(c.kernel_flops_per_dof *. float_of_int dev_dofs)
      ~dram_bytes:(c.kernel_bytes_per_dof *. float_of_int dev_dofs)
  in
  let boundary =
    float_of_int (s.boundary_faces * s.ndirs * mb) *. c.boundary_dof_time
  in
  (* the boundary callback overlaps the kernels, which run concurrently
     across devices: the step's intensity cost is the busiest device *)
  let intensity = Float.max kernel boundary in
  let temp, net_comm = temp_band c s ~p in
  (* per-device PCIe traffic: the owned slice both ways plus the Io/beta
     refresh, all concurrent across devices (critical path = busiest) *)
  let slice_bytes = 8 * dev_dofs in
  let io_bytes = 2 * 8 * mc * mb in
  let pcie =
    Gpu_sim.Spec.transfer_time c.gpu ~bytes:slice_bytes (* D2H of I *)
    +. Gpu_sim.Spec.transfer_time c.gpu ~bytes:slice_bytes (* H2D of I *)
    +. Gpu_sim.Spec.transfer_time c.gpu ~bytes:io_bytes    (* H2D Io, beta *)
  in
  let d2d =
    if g = 1 then 0.
    else begin
      let ifc = interface_cells s ~p:g in
      let bytes = ifc * comp * 8 in
      (* four frontier neighbours, a quarter of the interface each; the
         fraction of tile boundaries that are also node boundaries goes
         through host staging at twice the PCIe cost *)
      let dpn = Gpu_sim.Topology.devices_per_node in
      let nnodes = (g + dpn - 1) / dpn in
      let cross =
        if nnodes <= 1 then 0.
        else float_of_int (nnodes - 1) /. float_of_int (g - 1)
      in
      let msg = bytes / 4 in
      let nv = Prt.Cluster.p2p c.nvlink ~bytes:msg in
      let staged = 2. *. Gpu_sim.Spec.transfer_time c.gpu ~bytes:msg in
      4. *. (((1. -. cross) *. nv) +. (cross *. staged))
    end
  in
  let comm = net_comm +. pcie +. d2d +. sync_wait c ~p ~compute:intensity in
  Prt.Breakdown.make ~intensity ~temperature:temp ~communication:comm ()

(* modelled communication/computation overlap for the cell-parallel
   strategy: the halo messages are posted nonblocking before the interior
   sweep (the owned cells no neighbour needs), so up to
   min(interior sweep, exchange) seconds of the exchange leave the
   per-step critical path.  The jitter term stays: imbalance waiting is
   not hideable by reordering. *)
type overlap_model = {
  sync_step : float;     (* per-step seconds with a blocking exchange *)
  overlap_step : float;  (* same step with the exchange behind the sweep *)
  hidden : float;        (* exchange seconds off the critical path *)
}

let cells_overlap ?(calib = default) ?(shape = paper_shape) ~p () =
  let b =
    if p = 1 then step_cpu_serial calib shape else step_cpu_cells calib shape ~p
  in
  let sync_step = Prt.Breakdown.total b in
  let hidden =
    if p = 1 then 0.
    else begin
      let comp = shape.ndirs * shape.nbands in
      let ifc = interface_cells shape ~p in
      let interior = max 0 (max_cells shape p - ifc) in
      let interior_sweep =
        float_of_int (interior * comp) *. calib.dsl_dof_time
      in
      let bytes = ifc * comp * 8 in
      let exchange =
        Prt.Cluster.halo_exchange calib.network
          ~neighbour_bytes:[ bytes / 2; bytes / 2; bytes / 2; bytes / 2 ]
      in
      Float.min interior_sweep exchange
    end
  in
  { sync_step; overlap_step = sync_step -. hidden; hidden }

(* ------------------------------------------------------------------ *)
(* Whole-run times                                                      *)
(* ------------------------------------------------------------------ *)

type strategy =
  | Serial
  | Bands of int
  | Cells of int
  | Threads of int        (* shared-memory domain pool, one process *)
  | Hybrid of int * int   (* band-parallel ranks x pool threads *)
  | Gpu of int
  | Gpu_grid of int * int (* devices per rank x band-parallel ranks *)
  | Fortran of int

let step_breakdown ?(calib = default) ?(shape = paper_shape) strategy =
  match strategy with
  | Serial -> step_cpu_serial calib shape
  | Bands p -> if p = 1 then step_cpu_serial calib shape else step_cpu_bands calib shape ~p
  | Cells p -> if p = 1 then step_cpu_serial calib shape else step_cpu_cells calib shape ~p
  | Threads p ->
    if p = 1 then step_cpu_serial calib shape else step_cpu_threads calib shape ~p
  | Hybrid (p, t) ->
    if p = 1 then step_cpu_threads calib shape ~p:t
    else step_cpu_hybrid calib shape ~p ~t
  | Gpu p -> step_gpu calib shape ~p
  | Gpu_grid (g, p) ->
    if g = 1 then step_gpu calib shape ~p
    else step_gpu_grid calib shape ~g ~p
  | Fortran p -> step_fortran calib shape ~p

let run_breakdown ?calib ?(shape = paper_shape) strategy =
  Prt.Breakdown.scale (float_of_int shape.nsteps)
    (step_breakdown ?calib ~shape strategy)

let run_time ?calib ?shape strategy =
  Prt.Breakdown.total (run_breakdown ?calib ?shape strategy)

(* the paper's headline: GPU vs CPU at equal rank counts *)
let gpu_speedup ?calib ?shape ~p () =
  run_time ?calib ?shape (Bands p) /. run_time ?calib ?shape (Gpu p)

(* profiling-table metrics for the 1-GPU kernel (paper Section III-D) *)
let gpu_profile ?(calib = default) ?(shape = paper_shape) () =
  let n = ndofs shape in
  let flops = calib.kernel_flops_per_dof *. float_of_int n in
  let bytes = calib.kernel_bytes_per_dof *. float_of_int n in
  let kt =
    Gpu_sim.Spec.kernel_time calib.gpu ~threads:n ~flops ~dram_bytes:bytes
  in
  let spec = calib.gpu in
  let capacity =
    float_of_int (spec.Gpu_sim.Spec.sm_count * spec.Gpu_sim.Spec.max_threads_per_sm)
  in
  let occupancy = Float.min 1. (float_of_int n /. capacity) in
  ( occupancy *. 0.86,                                    (* SM utilization *)
    bytes /. kt /. spec.Gpu_sim.Spec.mem_bandwidth,       (* memory throughput *)
    flops /. kt /. spec.Gpu_sim.Spec.fp64_peak_flops )    (* FLOP fraction *)
