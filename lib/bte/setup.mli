(** Scenario construction: encodes the phonon BTE in the DSL exactly as
    the paper's input script (Sec. III-B / appendix listing) and wires the
    physics callbacks.

    Scenarios: [hotspot] — the main demonstration (cold isothermal bottom
    wall, isothermal top wall with a centred Gaussian hot spot, symmetric
    sides, initial equilibrium at the cold temperature); [corner] — the
    Fig. 10 variant with the source against a corner of an elongated
    domain at 100 K. *)

type scenario = {
  sname : string;
  lx : float;
  ly : float;
  nx : int;
  ny : int;
  ndirs : int;
  n_la_bands : int;   (** frequency bands; resolved count is larger *)
  t_cold : float;
  t_hot : float;
  hot_radius : float; (** 1/e^2 radius of the Gaussian, m *)
  hot_center : float; (** x position of the peak, m *)
  dt : float;
  nsteps : int;
}

val paper_hotspot : scenario
(** 525 um square, 120x120 cells, 20 directions, 40 frequency bands (55
    resolved), dt = 1e-12 s (the appendix's stable value). *)

val small_hotspot : scenario
(** A sub-micron reduced configuration (Knudsen number near one) that runs
    in seconds. *)

val paper_corner : scenario
val small_corner : scenario

type built = {
  problem : Finch.Problem.t;
  scenario : scenario; (** with dt clamped to the stability bound *)
  disp : Dispersion.t;
  angles : Angles.t;
  eqtab : Equilibrium.t;
  temp_model : Temperature.model;
  mesh : Fvm.Mesh.t;
}

val cfl_dt : scenario -> Dispersion.t -> float
(** Stability bound: advective CFL AND the relaxation-rate bound
    dt * max(1/tau) < 1 (high-frequency bands have tau of a few ps). *)

val post_io : Finch.Dataflow.callback_io
(** Data-movement declaration of the temperature update: reads "I",
    writes "Io"/"beta"/"T". *)

val build :
  ?enforce_cfl:bool -> ?stepper:Finch.Config.time_stepper -> scenario -> built
(** With the point-implicit stepper only the advective CFL bound applies
    to dt (the relaxation-rate bound disappears). *)

val build_corner :
  ?enforce_cfl:bool -> ?stepper:Finch.Config.time_stepper -> scenario -> built

val scenario_of_request : scenario -> Finch.Solve_request.t -> scenario
(** Concrete scenario for a request: the base record supplies the
    geometry (the physical domain size is kept, so growing [nx] refines
    the mesh); the request overrides discretization dimensions, step
    count and temperatures. *)

val register_scenarios : unit -> unit
(** Install ["hotspot"], ["corner"] and their paper-scale geometry
    variants ["hotspot-paper"] / ["corner-paper"] in the {!Finch}
    scenario registry, enabling [Finch.solve] on requests naming them.
    Entry points call this once at startup (archive linking drops
    unreferenced side effects, so registration must be explicit).
    Idempotent. *)

val base_of_scenario : string -> scenario option
(** The base record a registered scenario name builds from, for callers
    that report geometry (domain size, default temperatures) before the
    solve. *)

val request_of_base : scenario -> string -> Finch.Solve_request.t
(** A request whose discretization dimensions and step count match the
    base record exactly — the way to run the paper-scale variants, whose
    dims differ from the {!Finch.Solve_request.make} defaults. *)
