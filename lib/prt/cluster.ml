(* Cluster and network model for the strong-scaling studies.

   The paper's evaluation ran on two-socket Intel Xeon Cascade Lake nodes
   (40 cores, 192 GB) connected by a commodity interconnect.  Reproducing
   320-rank strong-scaling curves requires a machine model; we use the
   standard alpha-beta (latency-bandwidth) model for point-to-point
   messages and tree-based collectives.

   Calibration: [cpu_dof_update_time] anchors the sequential execution time
   of the paper's Finch/Julia CPU code (Fig. 9: about 2.4e3 s for 100 steps
   of the 1.6e7-DOF problem => 1.5e-6 s per DOF update); the Fortran
   reference is the paper's stated ~2x faster.  The network parameters are
   typical for the cluster class (2 us latency, ~12.5 GB/s effective). *)

type node = {
  name : string;
  cores_per_node : int;
  cpu_dof_update_time : float;     (* s per intensity DOF update, 1 core *)
  fortran_dof_update_time : float; (* same, hand-written Fortran code *)
  temp_update_time_per_cell : float; (* s per cell per step (Newton + reduce) *)
  boundary_time_per_face_dof : float; (* s per boundary face DOF per step *)
}

let cascade_lake = {
  name = "XeonSP Cascade Lake";
  cores_per_node = 40;
  cpu_dof_update_time = 1.5e-6;
  fortran_dof_update_time = 0.75e-6;
  temp_update_time_per_cell = 65e-6;
  boundary_time_per_face_dof = 2.0e-6;
}

type network = {
  alpha : float; (* per-message latency, s *)
  beta : float;  (* per-byte time, s *)
}

let default_network = { alpha = 2e-6; beta = 1. /. 12.5e9 }

(* Modelled traffic accounting: every costed message bumps these, so a
   scaling study run under [Metrics.enable] reports how much (virtual)
   data the evaluated schedule would move. *)
let m_msgs = Metrics.counter "cluster.msgs"
let m_bytes = Metrics.counter "cluster.bytes"

let account ~msgs ~bytes =
  Metrics.add m_msgs msgs;
  Metrics.add m_bytes bytes

(* Point-to-point message time. *)
let p2p net ~bytes =
  account ~msgs:1 ~bytes;
  net.alpha +. (float_of_int bytes *. net.beta)

let m_p2p_time_ns = Metrics.counter "cluster.p2p_time_ns"

(* Accounting entry point for a message that was actually delivered (by
   the Spmd executor's isend/irecv matching, or any other transport):
   bump the traffic counters and charge the alpha-beta latency the
   message would cost on the modelled interconnect. *)
let account_p2p ?(net = default_network) ~bytes () =
  if Metrics.enabled () then begin
    account ~msgs:1 ~bytes;
    Metrics.add m_p2p_time_ns
      (int_of_float ((net.alpha +. (float_of_int bytes *. net.beta)) *. 1e9))
  end

(* Tree allreduce over [p] ranks of an [bytes]-sized payload:
   reduce-scatter + allgather costs ~ 2 log2(p) latency terms and
   2 (p-1)/p of the data per rank (Rabenseifner); we use the common
   simplification 2*ceil(log2 p)*(alpha + bytes*beta). *)
let allreduce net ~p ~bytes =
  if p <= 1 then 0.
  else
    let lg = ceil (log (float_of_int p) /. log 2.) in
    let rounds = int_of_float (2. *. lg) in
    account ~msgs:rounds ~bytes:(rounds * bytes);
    2. *. lg *. (net.alpha +. (float_of_int bytes *. net.beta))

(* Allgather of [bytes_per_rank] from each of [p] ranks (ring): (p-1)
   rounds moving one chunk each. *)
let allgather net ~p ~bytes_per_rank =
  if p <= 1 then 0.
  else begin
    account ~msgs:(p - 1) ~bytes:((p - 1) * bytes_per_rank);
    float_of_int (p - 1) *. (net.alpha +. (float_of_int bytes_per_rank *. net.beta))
  end

(* Halo exchange for one rank: one message per neighbour, sends and the
   matching receives overlapping; cost = sum over neighbours of p2p. *)
let halo_exchange net ~neighbour_bytes =
  List.fold_left (fun acc b -> acc +. p2p net ~bytes:b) 0. neighbour_bytes

(* Broadcast of [bytes] to [p] ranks (binomial tree). *)
let broadcast net ~p ~bytes =
  if p <= 1 then 0.
  else begin
    let lg = ceil (log (float_of_int p) /. log 2.) in
    let rounds = int_of_float lg in
    account ~msgs:rounds ~bytes:(rounds * bytes);
    lg *. (net.alpha +. (float_of_int bytes *. net.beta))
  end
