(** Persistent domain pool.

    Worker domains are spawned once at {!create} and reused for every
    parallel region until {!shutdown}, replacing the per-step
    [Domain.spawn]/[Domain.join] churn of the original threaded executor.
    The calling domain always participates as rank 0, so a pool of size
    [n] spawns only [n - 1] domains.

    Instrumentation: each region executes under a [cat:"pool"] span on
    the participant's ["pool worker R"] trace track, barrier waits feed
    the [pool.barrier_wait_ns] metrics histogram, and rank 0's wall time
    per region (body plus the wait for the last worker) feeds
    [pool.region_ns] (see [docs/OBSERVABILITY.md]); all are no-ops
    unless {!Trace.enable} / {!Metrics.enable} was called. *)

exception Pool_error of string
(** Raised on misuse: zero size, nested regions, or running a pool that
    was shut down. *)

type t
(** A pool of worker domains plus the calling domain. *)

val create : size:int -> t
(** [create ~size] spawns [size - 1] worker domains ([size >= 1]). *)

val size : t -> int
(** Number of participants, including the caller. *)

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f rank] on every participant ([0 .. size-1]; the
    caller runs rank 0) and returns when all are done.  If any participant
    raises, the first exception is re-raised from [run].  Regions must not
    nest. *)

val barrier : t -> unit
(** Sense-reversing barrier over all participants of the current region.
    Every participant must call it the same number of times.  Late
    arrivers spin with exponential backoff before parking on the
    condition variable, so short waits (the common case at solver region
    sizes) avoid futex wakeup latency.  Pools that oversubscribe the
    machine ([size >= Domain.recommended_domain_count ()]) park
    immediately: there, spinning only steals cycles from the awaited
    participant. *)

val block : t -> int -> n:int -> int * int
(** [block t rank ~n] is the [(offset, length)] contiguous block of
    [0, n) owned by [rank]; same partition as
    [Fvm.Partition.block_range]. *)

val parallel_for : t -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_for t ~n f] runs [f ~lo ~hi] on each participant over its
    owned block of [0, n) (inclusive bounds); participants with an empty
    block skip [f]. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent. *)

val with_pool : size:int -> (t -> 'a) -> 'a
(** [with_pool ~size f] creates a pool, applies [f], and shuts the pool
    down even if [f] raises. *)
