(** Virtual-rank BSP executor: explicit supersteps over per-rank states.

    A simpler alternative to {!Spmd} when the program structure is already
    bulk-synchronous: run every rank's local computation, then exchange
    through a function that sees all states. *)

type 'state t
(** [nranks] per-rank states advanced in lock-step supersteps. *)

val create : nranks:int -> init:(int -> 'state) -> 'state t
(** [create ~nranks ~init] builds the executor with [init rank] as each
    rank's initial state ([nranks >= 1]). *)

val nranks : 'state t -> int
(** Number of virtual ranks. *)

val state : 'state t -> int -> 'state
(** [state t r] is rank [r]'s current state. *)

val superstep :
  'state t ->
  compute:(int -> 'state -> unit) ->
  exchange:('state array -> unit) ->
  unit
(** One BSP superstep: [compute rank state] runs for every rank (the
    local phase), then [exchange states] sees the full state array (the
    communication phase). *)

val allreduce_sum :
  'state t ->
  get:('state -> float array) ->
  set:('state -> float array -> unit) ->
  len:int -> unit
(** Elementwise-sum the first [len] entries of [get state] across all
    ranks and store the result into every rank via [set]. *)

val iter_ranks : 'state t -> (int -> 'state -> unit) -> unit
(** [iter_ranks t f] applies [f rank state] to every rank in order. *)
