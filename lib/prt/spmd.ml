(* Effects-based SPMD executor: a miniature MPI.

   Rank programs are plain functions that perform collectives ([barrier],
   [allreduce_sum]) and nonblocking point-to-point operations ([isend],
   [irecv], [wait]).  The scheduler runs each rank until it suspends
   (capturing its continuation), performs whatever combination or delivery
   is due, and resumes runnable ranks in rank order.  This gives
   deterministic message-passing semantics inside a single process —
   debuggable and bit-identical to a sequential reference — which is how
   the distributed BTE strategies are verified.

   Point-to-point semantics: messages are matched by (source, destination,
   tag) in FIFO posting order, like MPI's ordered matching per rank pair
   and tag.  [isend] snapshots its payload at post time (an eager buffered
   send), so the caller may reuse the array immediately; [irecv]'s buffer
   must not be read until [wait] returns.  Matching is eager: the moment
   both sides are posted, the payload is delivered, so a [wait] suspends
   only when the counterpart has not been posted yet — and a suspended
   wait that can never complete (every other rank blocked or finished) is
   a deadlock, reported as [Spmd_error] naming each blocked rank.

   Collective mismatches (some ranks finished or at a different collective
   while others wait) are detected and reported with the offending rank
   ids, as a real MPI run would deadlock. *)

type request = {
  req_kind : [ `Send | `Recv ];
  req_src : int;
  req_dst : int;
  req_tag : int;
  req_buf : float array;
    (* `Send: snapshot of the payload; `Recv: the caller's buffer *)
  mutable req_done : bool;
}

type _ Effect.t +=
  | Barrier : unit Effect.t
  | Allreduce_sum : float array -> unit Effect.t
      (* in-place elementwise sum across all ranks *)
  | Isend : int * int * float array -> request Effect.t (* dst, tag, data *)
  | Irecv : int * int * float array -> request Effect.t (* src, tag, buf *)
  | Wait : request -> unit Effect.t

exception Spmd_error of string

let barrier () = Effect.perform Barrier
let allreduce_sum a = Effect.perform (Allreduce_sum a)
let isend ~dst ~tag data = Effect.perform (Isend (dst, tag, data))
let irecv ~src ~tag buf = Effect.perform (Irecv (src, tag, buf))
let wait r = Effect.perform (Wait r)
let waitall rs = List.iter wait rs
let request_done r = r.req_done

(* Observability: each uninterrupted stretch of a rank between two
   suspension points is a "compute" span on its "spmd rank R" track;
   collectives and message postings are instant events, and a suspended
   [wait] becomes a "wait" span covering the suspension.  Counters account
   the modelled traffic (an allreduce moves each rank's 8*len payload; a
   delivered message moves 8*len once and is also charged to the
   alpha-beta cluster model via [Cluster.account_p2p]). *)
let m_barriers = Metrics.counter "spmd.barriers"
let m_allreduces = Metrics.counter "spmd.allreduces"
let m_allreduce_bytes = Metrics.counter "spmd.allreduce_bytes"
let m_p2p_msgs = Metrics.counter "spmd.p2p_msgs"
let m_p2p_bytes = Metrics.counter "spmd.p2p_bytes"
let m_waits = Metrics.counter "spmd.waits"

let segment rank f =
  if Trace.enabled () then Trace.span ~cat:"spmd" (Trace.rank rank) "compute" f
  else f ()

type suspended =
  | Running
  | At_barrier of (unit, unit) Effect.Deep.continuation
  | At_allreduce of float array * (unit, unit) Effect.Deep.continuation
  | At_wait of request * float * (unit, unit) Effect.Deep.continuation
      (* the float is the wall-clock suspension time (0. unless tracing) *)
  | Finished

(* Unmatched posted operations, FIFO per (src, dst, tag). *)
type mailbox = (int * int * int, request Queue.t) Hashtbl.t

let mailbox_queue (mb : mailbox) key =
  match Hashtbl.find_opt mb key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add mb key q;
    q

let describe_request (r : request) =
  match r.req_kind with
  | `Send ->
    Printf.sprintf "isend from rank %d to rank %d (tag %d, %d values)"
      r.req_src r.req_dst r.req_tag (Array.length r.req_buf)
  | `Recv ->
    Printf.sprintf "irecv on rank %d from rank %d (tag %d)" r.req_dst
      r.req_src r.req_tag

(* Deliver a matched send/recv pair: copy payload, complete both, and
   account the message (metrics + alpha-beta cluster model + trace). *)
let deliver (snd_req : request) (rcv_req : request) =
  let len = Array.length snd_req.req_buf in
  if Array.length rcv_req.req_buf <> len then
    raise
      (Spmd_error
         (Printf.sprintf
            "isend/irecv length mismatch: rank %d -> rank %d (tag %d): send \
             has %d values, recv buffer has %d"
            snd_req.req_src snd_req.req_dst snd_req.req_tag len
            (Array.length rcv_req.req_buf)));
  Array.blit snd_req.req_buf 0 rcv_req.req_buf 0 len;
  snd_req.req_done <- true;
  rcv_req.req_done <- true;
  let bytes = 8 * len in
  Metrics.incr m_p2p_msgs;
  Metrics.add m_p2p_bytes bytes;
  Cluster.account_p2p ~bytes ();
  if Trace.enabled () then
    Trace.instant ~cat:"spmd" (Trace.rank rcv_req.req_dst) "deliver"
      ~args:
        [ "src", float_of_int snd_req.req_src;
          "tag", float_of_int snd_req.req_tag;
          "bytes", float_of_int bytes ]

let run ~nranks (program : int -> unit) =
  if nranks < 1 then invalid_arg "Spmd.run";
  let states = Array.make nranks Running in
  let sendbox : mailbox = Hashtbl.create 64 in
  let recvbox : mailbox = Hashtbl.create 64 in
  let check_peer op rank peer =
    if peer < 0 || peer >= nranks then
      raise
        (Spmd_error
           (Printf.sprintf "%s on rank %d: peer rank %d outside 0..%d" op rank
              peer (nranks - 1)))
  in
  let post_isend rank dst tag data =
    check_peer "isend" rank dst;
    let req =
      { req_kind = `Send; req_src = rank; req_dst = dst; req_tag = tag;
        req_buf = Array.copy data; req_done = false }
    in
    if Trace.enabled () then
      Trace.instant ~cat:"spmd" (Trace.rank rank) "isend"
        ~args:
          [ "dst", float_of_int dst; "tag", float_of_int tag;
            "bytes", float_of_int (8 * Array.length data) ];
    let key = rank, dst, tag in
    let pending = mailbox_queue recvbox key in
    if Queue.is_empty pending then Queue.push req (mailbox_queue sendbox key)
    else deliver req (Queue.pop pending);
    req
  in
  let post_irecv rank src tag buf =
    check_peer "irecv" rank src;
    let req =
      { req_kind = `Recv; req_src = src; req_dst = rank; req_tag = tag;
        req_buf = buf; req_done = false }
    in
    if Trace.enabled () then
      Trace.instant ~cat:"spmd" (Trace.rank rank) "irecv"
        ~args:[ "src", float_of_int src; "tag", float_of_int tag ];
    let key = src, rank, tag in
    let pending = mailbox_queue sendbox key in
    if Queue.is_empty pending then Queue.push req (mailbox_queue recvbox key)
    else deliver (Queue.pop pending) req;
    req
  in
  let start rank =
    let open Effect.Deep in
    match_with program rank
      {
        retc = (fun () -> states.(rank) <- Finished);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Barrier ->
              Some
                (fun (k : (a, unit) continuation) ->
                  states.(rank) <- At_barrier k)
            | Allreduce_sum arr ->
              Some
                (fun (k : (a, unit) continuation) ->
                  states.(rank) <- At_allreduce (arr, k))
            | Isend (dst, tag, data) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  continue k (post_isend rank dst tag data))
            | Irecv (src, tag, buf) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  continue k (post_irecv rank src tag buf))
            | Wait req ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Metrics.incr m_waits;
                  if req.req_done then begin
                    if Trace.enabled () then
                      Trace.instant ~cat:"spmd" (Trace.rank rank) "wait"
                        ~args:[ "tag", float_of_int req.req_tag ];
                    continue k ()
                  end
                  else begin
                    let t0 =
                      if Trace.enabled () then Unix.gettimeofday () else 0.
                    in
                    states.(rank) <- At_wait (req, t0, k)
                  end)
            | _ -> None);
      }
  in
  for r = 0 to nranks - 1 do
    segment r (fun () -> start r)
  done;
  let describe_state rank = function
    | Running -> Printf.sprintf "rank %d running" rank
    | At_barrier _ -> Printf.sprintf "rank %d at barrier" rank
    | At_allreduce (a, _) ->
      Printf.sprintf "rank %d at allreduce (%d values)" rank (Array.length a)
    | At_wait (req, _, _) ->
      Printf.sprintf "rank %d waiting on %s" rank (describe_request req)
    | Finished -> Printf.sprintf "rank %d finished" rank
  in
  let check_unmatched () =
    let leftovers = ref [] in
    let collect (mb : mailbox) =
      Hashtbl.iter
        (fun _ q -> Queue.iter (fun r -> leftovers := r :: !leftovers) q)
        mb
    in
    collect sendbox;
    collect recvbox;
    match
      List.sort
        (fun a b -> compare (a.req_src, a.req_dst, a.req_tag) (b.req_src, b.req_dst, b.req_tag))
        !leftovers
    with
    | [] -> ()
    | rs ->
      raise
        (Spmd_error
           (Printf.sprintf "unmatched at program end: %s"
              (String.concat "; " (List.map describe_request rs))))
  in
  let resume_wait r req t0 k =
    states.(r) <- Running;
    if Trace.enabled () then
      Trace.complete (Trace.rank r) ~cat:"spmd" "wait" ~t0
        ~t1:(Unix.gettimeofday ())
        ~args:
          [ "tag", float_of_int req.req_tag;
            "bytes", float_of_int (8 * Array.length req.req_buf) ];
    segment r (fun () -> Effect.Deep.continue k ())
  in
  let rec drive () =
    (* 1. progress: resume (in rank order) any rank whose waited request
       completed; resumed ranks may deliver further messages, so rescan *)
    let progressed = ref false in
    Array.iteri
      (fun r s ->
        match s with
        | At_wait (req, t0, k) when req.req_done ->
          progressed := true;
          resume_wait r req t0 k
        | _ -> ())
      states;
    if !progressed then drive ()
    else begin
      (* 2. no runnable wait: all remaining ranks sit at collectives (or
         are stuck).  Classify. *)
      let barriers = ref [] and reduces = ref [] in
      let nfinished = ref 0 and nwaiting = ref 0 in
      Array.iteri
        (fun r s ->
          match s with
          | At_barrier k -> barriers := (r, k) :: !barriers
          | At_allreduce (a, k) -> reduces := (r, a, k) :: !reduces
          | At_wait _ -> incr nwaiting
          | Finished -> incr nfinished
          | Running -> raise (Spmd_error "internal: rank still marked running"))
        states;
      if !nfinished = nranks then check_unmatched ()
      else begin
        (match List.rev !barriers, List.rev !reduces with
         | bs, [] when List.length bs = nranks ->
           Metrics.incr m_barriers;
           List.iter
             (fun (r, k) ->
               states.(r) <- Running;
               if Trace.enabled () then
                 Trace.instant ~cat:"spmd" (Trace.rank r) "barrier";
               segment r (fun () -> Effect.Deep.continue k ()))
             bs
         | [], rs when List.length rs = nranks ->
           (match rs with
            | [] -> ()
            | (r0, first, _) :: rest ->
              let len = Array.length first in
              List.iter
                (fun (r, a, _) ->
                  if Array.length a <> len then
                    raise
                      (Spmd_error
                         (Printf.sprintf
                            "allreduce length mismatch: rank %d has %d \
                             values, rank %d has %d"
                            r (Array.length a) r0 len)))
                rest;
              let acc = Array.make len 0. in
              List.iter
                (fun (_, a, _) ->
                  for i = 0 to len - 1 do
                    acc.(i) <- acc.(i) +. a.(i)
                  done)
                rs;
              List.iter (fun (_, a, _) -> Array.blit acc 0 a 0 len) rs;
              Metrics.incr m_allreduces;
              Metrics.add m_allreduce_bytes (8 * len * nranks));
           List.iter
             (fun (r, a, k) ->
               states.(r) <- Running;
               if Trace.enabled () then
                 Trace.instant ~cat:"spmd" (Trace.rank r) "allreduce"
                   ~args:[ "bytes", float_of_int (8 * Array.length a) ];
               segment r (fun () -> Effect.Deep.continue k ()))
             rs
         | _ ->
           (* mixed collectives, or waits that can never complete: every
              live rank is blocked on something no other rank will
              provide — a deadlock.  Name each blocked rank. *)
           let blocked =
             Array.to_list
               (Array.mapi
                  (fun r s ->
                    match s with
                    | Finished -> None
                    | s -> Some (describe_state r s))
                  states)
             |> List.filter_map Fun.id
           in
           raise
             (Spmd_error
                (Printf.sprintf
                   "deadlock (%d of %d ranks finished): %s"
                   !nfinished nranks
                   (String.concat "; " blocked))));
        drive ()
      end
    end
  in
  drive ()
