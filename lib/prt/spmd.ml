(* Effects-based SPMD executor: a miniature MPI.

   Rank programs are plain functions that perform [barrier] and
   [allreduce_sum] collectives.  The scheduler runs each rank until it
   reaches a collective, suspends it (capturing its continuation), and when
   every rank has arrived performs the combination and resumes them all.
   This gives bulk-synchronous message-passing semantics inside a single
   process — deterministic, debuggable, and bit-identical to a sequential
   reference — which is how the distributed BTE strategies are verified.

   Collective mismatches (some ranks finished or at a different collective
   while others wait) are detected and reported, as a real MPI run would
   deadlock. *)

type _ Effect.t +=
  | Barrier : unit Effect.t
  | Allreduce_sum : float array -> unit Effect.t
      (* in-place elementwise sum across all ranks *)

exception Spmd_error of string

let barrier () = Effect.perform Barrier
let allreduce_sum a = Effect.perform (Allreduce_sum a)

(* Observability: each uninterrupted stretch of a rank between two
   collectives is a "compute" span on its "spmd rank R" track, with the
   collective itself marked by an instant event; counters account the
   modelled traffic (an allreduce moves each rank's 8*len payload). *)
let m_barriers = Metrics.counter "spmd.barriers"
let m_allreduces = Metrics.counter "spmd.allreduces"
let m_allreduce_bytes = Metrics.counter "spmd.allreduce_bytes"

let segment rank f =
  if Trace.enabled () then Trace.span ~cat:"spmd" (Trace.rank rank) "compute" f
  else f ()

type suspended =
  | Running
  | At_barrier of (unit, unit) Effect.Deep.continuation
  | At_allreduce of float array * (unit, unit) Effect.Deep.continuation
  | Finished

let run ~nranks (program : int -> unit) =
  if nranks < 1 then invalid_arg "Spmd.run";
  let states = Array.make nranks Running in
  let start rank =
    let open Effect.Deep in
    match_with program rank
      {
        retc = (fun () -> states.(rank) <- Finished);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Barrier ->
              Some
                (fun (k : (a, unit) continuation) ->
                  states.(rank) <- At_barrier k)
            | Allreduce_sum arr ->
              Some
                (fun (k : (a, unit) continuation) ->
                  states.(rank) <- At_allreduce (arr, k))
            | _ -> None);
      }
  in
  for r = 0 to nranks - 1 do
    segment r (fun () -> start r)
  done;
  let rec drive () =
    let barriers = ref [] and reduces = ref [] and nfinished = ref 0 in
    Array.iteri
      (fun r s ->
        match s with
        | At_barrier k -> barriers := (r, k) :: !barriers
        | At_allreduce (a, k) -> reduces := (r, a, k) :: !reduces
        | Finished -> incr nfinished
        | Running -> raise (Spmd_error "internal: rank still marked running"))
      states;
    if !nfinished = nranks then ()
    else begin
      (match List.rev !barriers, List.rev !reduces with
       | bs, [] when List.length bs = nranks ->
         Metrics.incr m_barriers;
         List.iter
           (fun (r, k) ->
             states.(r) <- Running;
             if Trace.enabled () then Trace.instant ~cat:"spmd" (Trace.rank r) "barrier";
             segment r (fun () -> Effect.Deep.continue k ()))
           bs
       | [], rs when List.length rs = nranks ->
         (match rs with
          | [] -> ()
          | (_, first, _) :: rest ->
            let len = Array.length first in
            List.iter
              (fun (_, a, _) ->
                if Array.length a <> len then
                  raise (Spmd_error "allreduce length mismatch across ranks"))
              rest;
            let acc = Array.make len 0. in
            List.iter
              (fun (_, a, _) ->
                for i = 0 to len - 1 do
                  acc.(i) <- acc.(i) +. a.(i)
                done)
              rs;
            List.iter (fun (_, a, _) -> Array.blit acc 0 a 0 len) rs;
            Metrics.incr m_allreduces;
            Metrics.add m_allreduce_bytes (8 * len * nranks));
         List.iter
           (fun (r, a, k) ->
             states.(r) <- Running;
             if Trace.enabled () then
               Trace.instant ~cat:"spmd" (Trace.rank r) "allreduce"
                 ~args:[ "bytes", float_of_int (8 * Array.length a) ];
             segment r (fun () -> Effect.Deep.continue k ()))
           rs
       | _ ->
         raise
           (Spmd_error
              (Printf.sprintf
                 "collective mismatch: %d at barrier, %d at allreduce, %d finished of %d ranks"
                 (List.length !barriers) (List.length !reduces) !nfinished nranks)));
      drive ()
    end
  in
  drive ()
