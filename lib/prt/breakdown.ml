(* Phase-time accounting: the paper's execution-time breakdowns (Figs. 5
   and 8) split wall time into "solve for intensity", "temperature update"
   and "communication".  This module is the common currency for both the
   analytic performance model and the instrumented real runs. *)

type t = {
  mutable intensity : float;     (* s spent updating I *)
  mutable temperature : float;   (* s spent in the temperature update *)
  mutable communication : float; (* s in MPI-like or host<->device traffic *)
  mutable boundary : float;      (* s in boundary callbacks *)
  mutable other : float;
}

let zero () =
  { intensity = 0.; temperature = 0.; communication = 0.; boundary = 0.; other = 0. }

let make ~intensity ~temperature ~communication ?(boundary = 0.) ?(other = 0.) () =
  { intensity; temperature; communication; boundary; other }

let total b = b.intensity +. b.temperature +. b.communication +. b.boundary +. b.other

let add a b =
  {
    intensity = a.intensity +. b.intensity;
    temperature = a.temperature +. b.temperature;
    communication = a.communication +. b.communication;
    boundary = a.boundary +. b.boundary;
    other = a.other +. b.other;
  }

let scale c b =
  {
    intensity = c *. b.intensity;
    temperature = c *. b.temperature;
    communication = c *. b.communication;
    boundary = c *. b.boundary;
    other = c *. b.other;
  }

type percentages = {
  pct_intensity : float;
  pct_temperature : float;
  pct_communication : float;
  pct_boundary : float;
  pct_other : float;
}

let percentages b =
  let t = total b in
  if t <= 0. then
    { pct_intensity = 0.; pct_temperature = 0.; pct_communication = 0.;
      pct_boundary = 0.; pct_other = 0. }
  else
    {
      pct_intensity = 100. *. b.intensity /. t;
      pct_temperature = 100. *. b.temperature /. t;
      pct_communication = 100. *. b.communication /. t;
      pct_boundary = 100. *. b.boundary /. t;
      pct_other = 100. *. b.other /. t;
    }

let pp ppf b =
  let p = percentages b in
  Format.fprintf ppf
    "intensity %.1f%% | temperature %.1f%% | communication %.1f%%%s (total %.3g s)"
    p.pct_intensity p.pct_temperature p.pct_communication
    (if b.boundary > 0. then Printf.sprintf " | boundary %.1f%%" p.pct_boundary
     else "")
    (total b)

(* Wall-clock phase timer for instrumented real runs. *)
type phase = Intensity | Temperature | Communication | Boundary | Other

let record b phase dt =
  match phase with
  | Intensity -> b.intensity <- b.intensity +. dt
  | Temperature -> b.temperature <- b.temperature +. dt
  | Communication -> b.communication <- b.communication +. dt
  | Boundary -> b.boundary <- b.boundary +. dt
  | Other -> b.other <- b.other +. dt

let phase_name = function
  | Intensity -> "intensity"
  | Temperature -> "temperature"
  | Communication -> "communication"
  | Boundary -> "boundary"
  | Other -> "other"

let phase_of_name = function
  | "intensity" -> Some Intensity
  | "temperature" -> Some Temperature
  | "communication" -> Some Communication
  | "boundary" -> Some Boundary
  | "other" -> Some Other
  | _ -> None

(* Phase sections are also trace spans (cat "phase") when tracing is on:
   the accumulator [t] is then just a materialised view of the span
   stream — [of_events] recomputes it from the trace. *)
let timed ?track b phase f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  record b phase (t1 -. t0);
  (match track with
   | Some tr -> Trace.complete tr ~cat:"phase" (phase_name phase) ~t0 ~t1
   | None -> ());
  r

let of_events evs =
  let b = zero () in
  List.iter
    (fun ev ->
      if ev.Trace.ev_cat = "phase" && ev.Trace.ev_dur >= 0. then
        match phase_of_name ev.Trace.ev_name with
        | Some p -> record b p (ev.Trace.ev_dur *. 1e-6)
        | None -> ())
    evs;
  b

(* Sum a list of breakdowns, counting each physical record once.  Guards
   aggregation against aliasing: when the caller participates as pool
   worker 0 (or a rebound device state shares its host's record), the
   same mutable record can appear under two names — summing it twice
   would double-count the caller's phase time. *)
let sum_distinct bs =
  let seen = ref [] in
  List.fold_left
    (fun acc b ->
      if List.exists (fun s -> s == b) !seen then acc
      else begin
        seen := b :: !seen;
        add acc b
      end)
    (zero ()) bs
