(* Unified tracing: nestable spans on named tracks, exported as Chrome
   trace-event JSON (load in Perfetto / chrome://tracing).

   The model follows the executors' shape (see docs/OBSERVABILITY.md):

   - track "main"           — the calling domain (steps, serial phases);
   - track "pool worker R"  — pool participant R (the caller is worker 0);
   - track "spmd rank R"    — SPMD rank fiber R;
   - track "gpu stream S"   — the simulated device's stream, on its own
     *modelled* timeline (a separate Chrome pid, so wall-clock and modelled
     microseconds are not visually conflated).

   Each track owns its own event buffer and has exactly one writer at a
   time (pool workers write only their own track; rank fibers and the main
   thread run on the calling domain), so appending needs no lock — the
   "lock-free-ish per-worker buffer" of a real tracer.  Only the track
   registry (creation by name) takes a mutex.  Buffers are drained by the
   exporter after regions complete, i.e. at barrier-synchronized points.

   Everything is a no-op while disabled: [span] costs one atomic load and
   runs the thunk directly, so instrumented code paths are bit- and
   cost-identical to uninstrumented ones (asserted by test/test_trace.ml). *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts : float;  (* microseconds on the track's timeline *)
  ev_dur : float; (* microseconds; negative means an instant event *)
  ev_tid : int;
  ev_pid : int;
  ev_args : (string * float) list;
}

type track = {
  tid : int;
  tname : string;
  pid : int;
  sort : int;
  mutable buf : event list; (* newest first; single writer per track *)
}

let host_pid = 1
let device_pid = 2

(* ---------- global state ---------- *)

let enabled_ = Atomic.make false
let epoch = ref 0. (* wall-clock origin of the trace, set at [enable] *)

let registry : (string, track) Hashtbl.t = Hashtbl.create 32
let registry_m = Mutex.create ()
let next_tid = ref 0

let enabled () = Atomic.get enabled_

let track ?(pid = host_pid) ?(sort = 0) name =
  Mutex.lock registry_m;
  let t =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
      incr next_tid;
      let t = { tid = !next_tid; tname = name; pid; sort; buf = [] } in
      Hashtbl.add registry name t;
      t
  in
  Mutex.unlock registry_m;
  t

let main = track ~sort:0 "main"
let worker r = track ~sort:(100 + r) (Printf.sprintf "pool worker %d" r)
let rank r = track ~sort:(200 + r) (Printf.sprintf "spmd rank %d" r)
let stream s = track ~pid:device_pid ~sort:(300 + s) (Printf.sprintf "gpu stream %d" s)

let enable () =
  if not (Atomic.get enabled_) then begin
    if !epoch = 0. then epoch := Unix.gettimeofday ();
    Atomic.set enabled_ true
  end

let disable () = Atomic.set enabled_ false

let clear () =
  Mutex.lock registry_m;
  Hashtbl.iter (fun _ t -> t.buf <- []) registry;
  Mutex.unlock registry_m;
  epoch := if Atomic.get enabled_ then Unix.gettimeofday () else 0.

(* ---------- recording ---------- *)

let to_us t = (t -. !epoch) *. 1e6

let emit tr ev = tr.buf <- ev :: tr.buf

let complete tr ?(cat = "") ?(args = []) name ~t0 ~t1 =
  if Atomic.get enabled_ then
    emit tr
      { ev_name = name; ev_cat = cat; ev_ts = to_us t0;
        ev_dur = Float.max 0. ((t1 -. t0) *. 1e6); ev_tid = tr.tid;
        ev_pid = tr.pid; ev_args = args }

let span ?cat ?args tr name f =
  if not (Atomic.get enabled_) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    match f () with
    | r ->
      complete tr ?cat ?args name ~t0 ~t1:(Unix.gettimeofday ());
      r
    | exception e ->
      complete tr ?cat ?args name ~t0 ~t1:(Unix.gettimeofday ());
      raise e
  end

(* Spans on a modelled timeline (the GPU simulator's clocks): [ts_s] and
   [dur_s] are seconds since the modelled time origin, not wall clock. *)
let span_at tr ?(cat = "") ?(args = []) name ~ts_s ~dur_s =
  if Atomic.get enabled_ then
    emit tr
      { ev_name = name; ev_cat = cat; ev_ts = ts_s *. 1e6;
        ev_dur = Float.max 0. (dur_s *. 1e6); ev_tid = tr.tid;
        ev_pid = tr.pid; ev_args = args }

let instant ?(cat = "") ?(args = []) tr name =
  if Atomic.get enabled_ then
    emit tr
      { ev_name = name; ev_cat = cat;
        ev_ts = to_us (Unix.gettimeofday ()); ev_dur = -1.;
        ev_tid = tr.tid; ev_pid = tr.pid; ev_args = args }

(* ---------- draining ---------- *)

let tracks () =
  Mutex.lock registry_m;
  let ts = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_m;
  List.sort (fun a b -> compare (a.pid, a.sort, a.tid) (b.pid, b.sort, b.tid)) ts

let events () =
  let evs = List.concat_map (fun t -> List.rev t.buf) (tracks ()) in
  List.stable_sort (fun a b -> compare a.ev_ts b.ev_ts) evs

let event_count () =
  List.fold_left (fun acc t -> acc + List.length t.buf) 0 (tracks ())

(* ---------- Chrome trace-event JSON export ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_args b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf "\"%s\":%.17g" (json_escape k) v))
    args;
  Buffer.add_string b "}"

let chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  (* process metadata: wall-clock host vs modelled device timelines *)
  List.iter
    (fun (pid, name) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid (json_escape name)))
    [ host_pid, "host (wall clock)"; device_pid, "gpu (modelled timeline)" ];
  (* track metadata: names and display order *)
  List.iter
    (fun t ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           t.pid t.tid (json_escape t.tname));
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":%d,\"tid\":%d,\"args\":{\"sort_index\":%d}}"
           t.pid t.tid t.sort))
    (tracks ());
  (* the events themselves *)
  List.iter
    (fun ev ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf "{\"ph\":\"%s\",\"name\":\"%s\",\"cat\":\"%s\""
           (if ev.ev_dur < 0. then "i" else "X")
           (json_escape ev.ev_name)
           (json_escape (if ev.ev_cat = "" then "default" else ev.ev_cat)));
      Buffer.add_string b
        (Printf.sprintf ",\"ts\":%.3f,\"pid\":%d,\"tid\":%d" ev.ev_ts ev.ev_pid
           ev.ev_tid);
      if ev.ev_dur >= 0. then
        Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" ev.ev_dur)
      else Buffer.add_string b ",\"s\":\"t\"";
      if ev.ev_args <> [] then begin
        Buffer.add_string b ",\"args\":";
        add_args b ev.ev_args
      end;
      Buffer.add_string b "}")
    (events ());
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_json ()))
