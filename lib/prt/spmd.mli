(** Effects-based SPMD executor: a miniature in-process MPI.

    Rank programs are plain functions performing collectives and
    nonblocking point-to-point operations; the scheduler suspends each
    rank where it blocks (capturing its continuation), performs the due
    combination or delivery, and resumes runnable ranks in rank order.
    Execution is deterministic, so distributed solvers can be verified
    bit-for-bit against sequential references.

    Point-to-point semantics: messages are matched by (source,
    destination, tag) in FIFO posting order, as MPI orders matching per
    rank pair and tag.  Matching is eager — the payload is delivered the
    moment both sides are posted — so {!wait} suspends only until the
    counterpart appears, and computation issued between {!isend}/{!irecv}
    and {!wait} genuinely overlaps other ranks' progress. *)

type request
(** Handle to a posted {!isend} or {!irecv}, completed by {!wait}. *)

exception Spmd_error of string
(** Raised on anything that would hang or crash a real MPI run, with the
    offending rank ids and tag in the message: collective mismatches
    (ranks blocked at different collectives, or finished while others
    wait), allreduce length disagreements, send/recv payload length
    mismatches, unmatched isend/irecv at program end, and deadlocks
    (every live rank blocked on something no other rank will provide). *)

val barrier : unit -> unit
(** Block until every rank reaches a barrier. Must be called from inside
    {!run}. *)

val allreduce_sum : float array -> unit
(** Elementwise sum across all ranks, in place: after the call every
    rank's array holds the global sums. Must be called from inside
    {!run}. *)

val isend : dst:int -> tag:int -> float array -> request
(** [isend ~dst ~tag data] posts a nonblocking send of [data] to rank
    [dst].  The payload is snapshotted at post time (an eager buffered
    send), so the caller may overwrite [data] immediately.  Returns at
    once; {!wait} the request to confirm delivery.  Must be called from
    inside {!run}. *)

val irecv : src:int -> tag:int -> float array -> request
(** [irecv ~src ~tag buf] posts a nonblocking receive from rank [src]
    into [buf], whose length must equal the matching send's payload
    length.  [buf] must not be read until {!wait} on the returned
    request completes.  Must be called from inside {!run}. *)

val wait : request -> unit
(** Block until the request's message has been delivered.  Returns
    immediately if it already was; otherwise the rank suspends and other
    ranks run until the counterpart operation is posted. *)

val waitall : request list -> unit
(** {!wait} each request in order. *)

val request_done : request -> bool
(** Whether the request's message has been delivered (no suspension). *)

val run : nranks:int -> (int -> unit) -> unit
(** [run ~nranks program] executes [program rank] for every rank under
    the scheduler and returns when all ranks finish.  Raises
    {!Spmd_error} if any rank can no longer make progress or if posted
    messages are left unmatched at the end.

    Instrumentation: with {!Trace.enable}, each rank's stretches between
    suspension points become [cat:"spmd"] ["compute"] spans on its
    ["spmd rank R"] track; barriers, allreduces, [isend]/[irecv]
    postings, deliveries and already-complete waits are instant markers,
    and a suspended {!wait} becomes a ["wait"] span covering the
    suspension.  With {!Metrics.enable}, [spmd.barriers],
    [spmd.allreduces], [spmd.allreduce_bytes] (8 bytes x length x ranks
    per reduce), [spmd.p2p_msgs], [spmd.p2p_bytes] (8 bytes x length per
    delivered message) and [spmd.waits] are accumulated, and each
    delivery charges {!Cluster.account_p2p}. *)
