(** Effects-based SPMD executor: a miniature in-process MPI.

    Rank programs are plain functions performing collectives; the scheduler
    suspends each rank at a collective (capturing its continuation),
    combines once all ranks have arrived, and resumes them. Execution is
    deterministic and bulk-synchronous, so distributed solvers can be
    verified bit-for-bit against sequential references. *)

exception Spmd_error of string
(** Raised on collective mismatches (some ranks finished or waiting at a
    different collective — a deadlock in a real MPI run) and on allreduce
    length disagreements. *)

val barrier : unit -> unit
(** Block until every rank reaches a barrier. Must be called from inside
    {!run}. *)

val allreduce_sum : float array -> unit
(** Elementwise sum across all ranks, in place: after the call every
    rank's array holds the global sums. Must be called from inside
    {!run}. *)

val run : nranks:int -> (int -> unit) -> unit
(** [run ~nranks program] executes [program rank] for every rank under the
    collective scheduler and returns when all ranks finish.

    Instrumentation: with {!Trace.enable}, each rank's stretches between
    collectives become [cat:"spmd"] ["compute"] spans on its
    ["spmd rank R"] track with instant markers at barriers/allreduces;
    with {!Metrics.enable}, [spmd.barriers], [spmd.allreduces] and
    [spmd.allreduce_bytes] (8 bytes x length x ranks per reduce) are
    accumulated. *)
