(** Phase-time accounting — the currency of the paper's execution-time
    breakdowns (Figs. 5 and 8): intensity solve / temperature update /
    communication (plus boundary and other). *)

type t = {
  mutable intensity : float;  (** seconds updating the intensity field *)
  mutable temperature : float;  (** seconds in the temperature inversion *)
  mutable communication : float;  (** seconds in halo / host-device traffic *)
  mutable boundary : float;  (** seconds in boundary callbacks *)
  mutable other : float;  (** everything not attributed above *)
}
(** Mutable per-phase second counters.  When tracing is on this record is
    a materialised view of the [cat:"phase"] span stream — {!of_events}
    recomputes it from a drained trace. *)

val zero : unit -> t
(** A fresh all-zero breakdown. *)

val make :
  intensity:float -> temperature:float -> communication:float ->
  ?boundary:float -> ?other:float -> unit -> t
(** Build a breakdown from known phase times (analytic-model side). *)

val total : t -> float
(** Sum of all phases, in seconds. *)

val add : t -> t -> t
(** Componentwise sum (fresh record; arguments unchanged). *)

val scale : float -> t -> t
(** [scale c b] multiplies every phase by [c] (fresh record). *)

type percentages = {
  pct_intensity : float;
  pct_temperature : float;
  pct_communication : float;
  pct_boundary : float;
  pct_other : float;
}

val percentages : t -> percentages
(** Phase shares of {!total}, in percent (all zero when total is 0). *)

val pp : Format.formatter -> t -> unit
(** Print the paper-style one-line summary (percentages + total). *)

type phase = Intensity | Temperature | Communication | Boundary | Other
(** The accounting categories of the paper's Figs. 5 and 8. *)

val phase_name : phase -> string
(** Lower-case span name of a phase (["intensity"], ...), the [cat:"phase"]
    event naming used in traces. *)

val record : t -> phase -> float -> unit
(** Add [dt] seconds to a phase. *)

val timed : ?track:Trace.track -> t -> phase -> (unit -> 'a) -> 'a
(** Run a thunk, recording its wall-clock duration against a phase.  With
    [?track] (and tracing enabled) the section is also emitted as a
    [cat:"phase"] span named {!phase_name} on that track, so the same
    measurement feeds both the accumulator and the trace. *)

val of_events : Trace.event list -> t
(** Rebuild a breakdown from drained trace events: sums the durations of
    [cat:"phase"] spans per phase.  For a traced run this agrees with the
    accumulated record up to clock-read jitter. *)

val sum_distinct : t list -> t
(** Sum a list of breakdowns counting each {e physical} record once.
    Aggregators use this instead of folding {!add} so that aliased
    records — the caller participating as pool worker 0, or a rebound
    device state sharing its host's record — are not double-counted. *)
