(* Process-wide metrics registry: counters, gauges, and log2-bucket
   histograms, with text and JSON dumps.

   Handles are created at module-initialisation time by the instrumented
   layers (pool, spmd, halo, gpu simulator, ...), so the well-known names
   are always registered and a dump shows them even at zero.  Creation is
   idempotent: asking for the same name returns the same handle, which is
   also how external consumers (bench JSON) read values without a lookup
   API.  Updates are atomic and gated on [enabled] — a disabled update is
   one atomic load, so instrumentation is free until switched on. *)

type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; g : float Atomic.t }

(* Bucket i counts observations v with 2^(i-1) < v <= 2^i (bucket 0
   takes v <= 1).  64 buckets cover the full positive int range. *)
let nbuckets = 64

type histogram = {
  h_name : string;
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_max : float Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let enabled_ = Atomic.make false
let enable () = Atomic.set enabled_ true
let disable () = Atomic.set enabled_ false
let enabled () = Atomic.get enabled_

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32
let registry_m = Mutex.create ()

let register name make cast =
  Mutex.lock registry_m;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
      let m = make () in
      Hashtbl.add registry name m;
      m
  in
  Mutex.unlock registry_m;
  cast m

let kind_error name want =
  invalid_arg (Printf.sprintf "Metrics.%s: %S already registered as a different kind" want name)

let counter name =
  register name
    (fun () -> Counter { c_name = name; c = Atomic.make 0 })
    (function Counter c -> c | _ -> kind_error name "counter")

let gauge name =
  register name
    (fun () -> Gauge { g_name = name; g = Atomic.make 0. })
    (function Gauge g -> g | _ -> kind_error name "gauge")

let histogram name =
  register name
    (fun () ->
      Histogram
        { h_name = name;
          h_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0; h_sum = Atomic.make 0.;
          h_max = Atomic.make 0. })
    (function Histogram h -> h | _ -> kind_error name "histogram")

(* ---------- updates ---------- *)

let add c n = if Atomic.get enabled_ then ignore (Atomic.fetch_and_add c.c n)
let incr c = add c 1
let value c = Atomic.get c.c

let rec atomic_addf a x =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (v +. x)) then atomic_addf a x

let rec atomic_maxf a x =
  let v = Atomic.get a in
  if x > v && not (Atomic.compare_and_set a v x) then atomic_maxf a x

let set g x = if Atomic.get enabled_ then Atomic.set g.g x
let gauge_value g = Atomic.get g.g

let bucket_of v =
  if v <= 1. then 0
  else
    let b = int_of_float (Float.ceil (Float.log2 v)) in
    if b < 0 then 0 else if b >= nbuckets then nbuckets - 1 else b

let observe h v =
  if Atomic.get enabled_ then begin
    ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    atomic_addf h.h_sum v;
    atomic_maxf h.h_max v
  end

let hist_count h = Atomic.get h.h_count
let hist_sum h = Atomic.get h.h_sum
let hist_max h = Atomic.get h.h_max
let hist_bucket h i = Atomic.get h.h_buckets.(i)

let hist_mean h =
  let n = hist_count h in
  if n = 0 then 0. else hist_sum h /. float_of_int n

let counter_values () =
  Mutex.lock registry_m;
  let vs =
    Hashtbl.fold
      (fun _ m acc ->
        match m with
        | Counter c -> (c.c_name, Atomic.get c.c) :: acc
        | Gauge _ | Histogram _ -> acc)
      registry []
  in
  Mutex.unlock registry_m;
  List.sort (fun (a, _) (b, _) -> compare a b) vs

(* ---------- dumps ---------- *)

let all () =
  Mutex.lock registry_m;
  let ms = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock registry_m;
  let name = function
    | Counter c -> c.c_name
    | Gauge g -> g.g_name
    | Histogram h -> h.h_name
  in
  List.sort (fun a b -> compare (name a) (name b)) ms

let reset_all () =
  List.iter
    (function
      | Counter c -> Atomic.set c.c 0
      | Gauge g -> Atomic.set g.g 0.
      | Histogram h ->
        Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
        Atomic.set h.h_count 0;
        Atomic.set h.h_sum 0.;
        Atomic.set h.h_max 0.)
    (all ())

let nonzero_buckets h =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    let n = hist_bucket h i in
    if n > 0 then acc := (i, n) :: !acc
  done;
  !acc

let dump_text () =
  let b = Buffer.create 512 in
  List.iter
    (fun m ->
      match m with
      | Counter c ->
        Buffer.add_string b
          (Printf.sprintf "%-28s counter    %d\n" c.c_name (value c))
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "%-28s gauge      %g\n" g.g_name (gauge_value g))
      | Histogram h ->
        Buffer.add_string b
          (Printf.sprintf "%-28s histogram  count %d  sum %g  mean %g  max %g\n"
             h.h_name (hist_count h) (hist_sum h) (hist_mean h) (hist_max h));
        match nonzero_buckets h with
        | [] -> ()
        | bs ->
          Buffer.add_string b (String.make 28 ' ');
          Buffer.add_string b "   buckets   ";
          List.iter
            (fun (i, n) ->
              Buffer.add_string b (Printf.sprintf "(<=2^%d: %d) " i n))
            bs;
          Buffer.add_char b '\n')
    (all ());
  Buffer.contents b

let dump_json () =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  ";
      match m with
      | Counter c ->
        Buffer.add_string b
          (Printf.sprintf "\"%s\": {\"type\": \"counter\", \"value\": %d}"
             c.c_name (value c))
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "\"%s\": {\"type\": \"gauge\", \"value\": %.17g}"
             g.g_name (gauge_value g))
      | Histogram h ->
        Buffer.add_string b
          (Printf.sprintf
             "\"%s\": {\"type\": \"histogram\", \"count\": %d, \"sum\": %.17g, \"max\": %.17g, \"buckets\": {"
             h.h_name (hist_count h) (hist_sum h) (hist_max h));
        List.iteri
          (fun j (i, n) ->
            if j > 0 then Buffer.add_string b ", ";
            Buffer.add_string b (Printf.sprintf "\"%d\": %d" i n))
          (nonzero_buckets h);
        Buffer.add_string b "}}")
    (all ());
  Buffer.add_string b "\n}\n";
  Buffer.contents b
