(* Persistent domain pool: the shared-memory runtime layer.

   The seed's threaded executor spawned fresh OCaml domains twice per time
   step (once for the sweep, once for the commit), so domain start-up cost
   was paid 2*nsteps times per solve.  This pool spawns its worker domains
   once, parks them on a condition variable between parallel regions, and
   reuses them for every region of every step — the structure a generated
   OpenMP/pthreads runtime would have.

   A region is [run pool f]: the calling domain becomes participant 0 and
   the pool's workers become participants 1..n-1; all of them execute
   [f rank] and [run] returns when every participant is done.  Inside a
   region, [barrier pool] is a sense-reversing barrier over all
   participants, which lets one region hold several phases (sweep, barrier,
   commit) without returning to the caller in between.

   Exceptions raised by participants are captured and re-raised (the first
   one wins) from [run] on the calling domain. *)

exception Pool_error of string

(* Observability handles, registered at load time so dumps always list
   them.  Region spans land on each participant's "pool worker R" track;
   barrier waits feed a histogram (count = number of waits, sum = total
   nanoseconds parked). *)
let m_regions = Metrics.counter "pool.regions"
let m_barrier_wait = Metrics.histogram "pool.barrier_wait_ns"
let m_region_ns = Metrics.histogram "pool.region_ns"

let traced rank f =
  if Trace.enabled () then Trace.span ~cat:"pool" (Trace.worker rank) "region" f
  else f ()

type t = {
  size : int; (* participants, including the caller *)
  mutable domains : unit Domain.t array;
  m : Mutex.t;
  work_ready : Condition.t; (* workers wait here between regions *)
  work_done : Condition.t;  (* the caller waits here for region end *)
  mutable job : (int -> unit) option;
  mutable generation : int; (* region sequence number *)
  mutable pending : int;    (* workers still inside the current region *)
  mutable stop : bool;
  mutable failure : exn option; (* first exception raised in a region *)
  mutable in_region : bool;
  (* sense-reversing barrier over all [size] participants; the sense is
     atomic so late arrivers can spin on it without taking [bm] *)
  bm : Mutex.t;
  bc : Condition.t;
  mutable bar_waiting : int;
  bar_sense : bool Atomic.t;
}

let size t = t.size

let record_failure t exn =
  Mutex.lock t.m;
  (match t.failure with None -> t.failure <- Some exn | Some _ -> ());
  Mutex.unlock t.m

let worker t rank =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while t.generation = !last && not t.stop do
      Condition.wait t.work_ready t.m
    done;
    if t.stop then begin
      running := false;
      Mutex.unlock t.m
    end
    else begin
      last := t.generation;
      let job = t.job in
      Mutex.unlock t.m;
      (match job with
       | Some f -> ( try traced rank (fun () -> f rank) with exn -> record_failure t exn)
       | None -> ());
      Mutex.lock t.m;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.work_done;
      Mutex.unlock t.m
    end
  done

let create ~size =
  if size < 1 then raise (Pool_error "Pool.create: size < 1");
  let t =
    {
      size;
      domains = [||];
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      pending = 0;
      stop = false;
      failure = None;
      in_region = false;
      bm = Mutex.create ();
      bc = Condition.create ();
      bar_waiting = 0;
      bar_sense = Atomic.make false;
    }
  in
  t.domains <- Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let run t f =
  if t.stop then raise (Pool_error "Pool.run: pool is shut down");
  if t.in_region then raise (Pool_error "Pool.run: nested region");
  Mutex.lock t.m;
  t.in_region <- true;
  t.failure <- None;
  t.job <- Some f;
  t.pending <- t.size - 1;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  Metrics.incr m_regions;
  let t0 = if Metrics.enabled () then Unix.gettimeofday () else 0. in
  (* the caller is participant 0 *)
  (try traced 0 (fun () -> f 0) with exn -> record_failure t exn);
  Mutex.lock t.m;
  while t.pending > 0 do
    Condition.wait t.work_done t.m
  done;
  if t0 > 0. then Metrics.observe m_region_ns ((Unix.gettimeofday () -. t0) *. 1e9);
  t.job <- None;
  t.in_region <- false;
  let failure = t.failure in
  t.failure <- None;
  Mutex.unlock t.m;
  match failure with Some exn -> raise exn | None -> ()

(* Spin budget before a barrier participant parks on the condition
   variable.  At solver region sizes the last arriver is typically only
   microseconds away, so most of the measured barrier wait is futex
   wakeup latency; spinning with exponential backoff (cpu_relax bursts of
   doubling length) absorbs that common case and falls back to blocking
   for the long tail, keeping idle pools cheap.  When the pool
   oversubscribes the machine, spinning can only steal cycles from the
   participant being waited for, so oversubscribed pools park
   immediately. *)
let spin_budget = 1 lsl 14
let max_pause = 1 lsl 8

let effective_spin_budget size =
  if size >= Domain.recommended_domain_count () then 0 else spin_budget

(* All [size] participants must call this the same number of times per
   region; calling it outside a region (or from a strict subset of the
   participants) deadlocks, as a real barrier would.  No ABA hazard on
   the spun-on sense: it cannot flip again until this participant
   re-enters the barrier. *)
let barrier t =
  if t.size > 1 then begin
    let t0 = if Metrics.enabled () then Unix.gettimeofday () else 0. in
    Mutex.lock t.bm;
    let sense = Atomic.get t.bar_sense in
    t.bar_waiting <- t.bar_waiting + 1;
    if t.bar_waiting = t.size then begin
      t.bar_waiting <- 0;
      Atomic.set t.bar_sense (not sense);
      Condition.broadcast t.bc;
      Mutex.unlock t.bm
    end
    else begin
      Mutex.unlock t.bm;
      let budget = ref (effective_spin_budget t.size) and pause = ref 1 in
      while Atomic.get t.bar_sense = sense && !budget > 0 do
        for _ = 1 to !pause do
          Domain.cpu_relax ()
        done;
        budget := !budget - !pause;
        pause := min (!pause * 2) max_pause
      done;
      if Atomic.get t.bar_sense = sense then begin
        Mutex.lock t.bm;
        while Atomic.get t.bar_sense = sense do
          Condition.wait t.bc t.bm
        done;
        Mutex.unlock t.bm
      end
    end;
    if t0 > 0. then
      Metrics.observe m_barrier_wait ((Unix.gettimeofday () -. t0) *. 1e9)
  end

(* Owned block of [0, n) for a participant: same block partition as
   Fvm.Partition.block_range (block sizes differ by at most one), so pool
   ranges and rank ranges line up.  Inlined to keep prt dependency-free. *)
let block t rank ~n =
  let base = n / t.size and extra = n mod t.size in
  let start = (rank * base) + min rank extra in
  let sz = base + if rank < extra then 1 else 0 in
  (start, sz)

let parallel_for t ~n f =
  run t (fun rank ->
      let off, len = block t rank ~n in
      if len > 0 then f ~lo:off ~hi:(off + len - 1))

let shutdown t =
  if not t.stop then begin
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ~size f =
  let t = create ~size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
