(** Unified tracing: nestable spans on named tracks with a Chrome
    trace-event JSON exporter (open the file in {{:https://ui.perfetto.dev}
    Perfetto} or [chrome://tracing]).

    Tracks mirror the executors: ["main"] for the calling domain,
    ["pool worker R"] per {!Pool} participant, ["spmd rank R"] per
    {!Spmd} fiber, and ["gpu stream S"] for the simulated device's
    modelled timeline (exported under a separate Chrome process id so
    wall-clock and modelled microseconds are not conflated).  Each track
    buffer has a single writer, so recording takes no lock; only track
    creation does.  While disabled, {!span} costs one atomic load and
    runs its thunk directly — instrumented code is bit-identical either
    way.  See [docs/OBSERVABILITY.md] for conventions and a worked
    example. *)

type event = private {
  ev_name : string;  (** span or instant name, e.g. ["sweep"] *)
  ev_cat : string;  (** category, e.g. ["phase"], ["pool"], ["gpu"] *)
  ev_ts : float;  (** start, microseconds on the track's timeline *)
  ev_dur : float;  (** duration in microseconds; negative for instants *)
  ev_tid : int;  (** track id the event was recorded on *)
  ev_pid : int;  (** timeline id: {!host_pid} or {!device_pid} *)
  ev_args : (string * float) list;  (** numeric payload, e.g. byte counts *)
}
(** One recorded event, as drained by {!events}. *)

type track
(** A named timeline row in the exported trace.  Creation is idempotent:
    the same name always yields the same track. *)

val host_pid : int
(** Chrome process id grouping wall-clock tracks (main, workers, ranks). *)

val device_pid : int
(** Chrome process id grouping modelled-time tracks (GPU streams). *)

val enable : unit -> unit
(** Switch recording on and (on first enable) set the trace epoch that
    wall-clock timestamps are measured from. *)

val disable : unit -> unit
(** Switch recording off.  Already-buffered events are kept. *)

val enabled : unit -> bool
(** Whether recording is currently on.  Instrumentation sites may check
    this to skip argument computation entirely. *)

val clear : unit -> unit
(** Drop all buffered events (tracks stay registered) and restart the
    trace epoch. *)

val track : ?pid:int -> ?sort:int -> string -> track
(** [track name] returns the track registered under [name], creating it
    on first use.  [pid] selects the timeline ({!host_pid} by default);
    [sort] orders tracks in the viewer. *)

val main : track
(** The calling domain's track. *)

val worker : int -> track
(** [worker r] is the track of pool participant [r] (the caller runs as
    worker 0). *)

val rank : int -> track
(** [rank r] is the track of SPMD rank fiber [r]. *)

val stream : int -> track
(** [stream s] is the modelled-timeline track of GPU device [s]'s
    stream (lives under {!device_pid}). *)

val span : ?cat:string -> ?args:(string * float) list -> track -> string ->
  (unit -> 'a) -> 'a
(** [span track name f] runs [f ()] and, when enabled, records a
    wall-clock span covering it (also on exception).  Nesting is
    expressed by timestamp containment, exactly as Chrome renders it. *)

val complete : track -> ?cat:string -> ?args:(string * float) list ->
  string -> t0:float -> t1:float -> unit
(** [complete track name ~t0 ~t1] records an already-measured wall-clock
    span from absolute times [t0..t1] (seconds, [Unix.gettimeofday]
    basis).  Used by {!Breakdown.timed}, which must keep its own clock. *)

val span_at : track -> ?cat:string -> ?args:(string * float) list ->
  string -> ts_s:float -> dur_s:float -> unit
(** [span_at track name ~ts_s ~dur_s] records a span on a {e modelled}
    timeline: [ts_s]/[dur_s] are seconds since the model's time origin,
    not wall clock.  Used by the GPU simulator's stream clocks. *)

val instant : ?cat:string -> ?args:(string * float) list -> track ->
  string -> unit
(** Record a zero-duration marker (rendered as an arrow in Perfetto),
    e.g. a barrier release or an allreduce. *)

val events : unit -> event list
(** Drain a snapshot of all buffered events, sorted by timestamp.  Call
    from the coordinating thread after regions complete (worker buffers
    are quiescent past a {!Pool.barrier}). *)

val event_count : unit -> int
(** Number of buffered events across all tracks. *)

val tracks : unit -> track list
(** All registered tracks in export order. *)

val chrome_json : unit -> string
(** Render buffered events as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}] with ["X"]/["i"] events plus ["M"]
    process/thread metadata). *)

val write_chrome : string -> unit
(** [write_chrome path] writes {!chrome_json} to [path]. *)
