(* Static message-schedule simulator: the deterministic matching model
   behind the Spmd point-to-point runtime, lifted to a pure data
   structure so schedules can be verified without executing anything.

   A schedule is one op list per rank.  The simulation mirrors the
   executor's semantics exactly: sends are eager-buffered (they complete
   locally at post time, like [Spmd.isend]'s payload snapshot), receives
   complete when a matching send is delivered, matching is FIFO per
   (src, dst, tag) channel, and [Wait_all] suspends the rank until every
   receive it has posted so far is delivered.  Ranks are stepped in rank
   order, each running until it blocks — the same deterministic
   scheduling [Spmd.run] uses — so a schedule that simulates clean here
   cannot produce an [Spmd_error] for matching reasons at runtime.

   The simulator reports the static counterparts of the runtime failure
   modes: sends/receives left unmatched at the end (peer or tag
   mismatch, a dropped exchange), wait cycles no rank can break
   (deadlock), payload-length disagreements on a matched pair, and tag
   collisions — two messages simultaneously in flight on one channel
   with different lengths, where FIFO matching becomes order-dependent
   and a reordered schedule would corrupt payload framing. *)

type op =
  | Send of { peer : int; tag : int; len : int; label : string }
  | Recv of { peer : int; tag : int; len : int; label : string }
  | Wait_all

type schedule = op list array

type problem =
  | Unmatched_send of { src : int; dst : int; tag : int; label : string }
  | Unmatched_recv of { src : int; dst : int; tag : int; label : string }
  | Deadlock of { ranks : int list }
  | Tag_collision of { src : int; dst : int; tag : int; label : string }
  | Size_mismatch of {
      src : int;
      dst : int;
      tag : int;
      sent : int;
      expected : int;
      label : string;
    }

(* one pending (posted, undelivered) message half *)
type pending = { p_len : int; p_label : string; p_owner : int }

type chan = { mutable sends : pending list; mutable recvs : pending list }

type rstate = {
  mutable ops : op list;  (* remaining program of the rank *)
  mutable unmatched_recvs : int;  (* receives posted but not delivered *)
  mutable blocked : bool;  (* suspended at a Wait_all *)
}

let simulate (sched : schedule) =
  let nranks = Array.length sched in
  let ranks =
    Array.map
      (fun ops -> { ops; unmatched_recvs = 0; blocked = false })
      sched
  in
  let chans : (int * int * int, chan) Hashtbl.t = Hashtbl.create 16 in
  let chan key =
    match Hashtbl.find_opt chans key with
    | Some c -> c
    | None ->
      let c = { sends = []; recvs = [] } in
      Hashtbl.add chans key c;
      c
  in
  let problems = ref [] in
  let report p = problems := p :: !problems in
  (* two halves of one channel meet: FIFO pop, length check *)
  let deliver ~src ~dst ~tag (s : pending) (r : pending) =
    if s.p_len <> r.p_len then
      report
        (Size_mismatch
           { src; dst; tag; sent = s.p_len; expected = r.p_len;
             label = r.p_label });
    ranks.(r.p_owner).unmatched_recvs <-
      ranks.(r.p_owner).unmatched_recvs - 1
  in
  (* a second in-flight message on a busy channel with a different
     length makes FIFO matching order-dependent *)
  let collision ~src ~dst ~tag (waiting : pending list) (fresh : pending) =
    if List.exists (fun p -> p.p_len <> fresh.p_len) waiting then
      report (Tag_collision { src; dst; tag; label = fresh.p_label })
  in
  let post_send r ~dst ~tag ~len ~label =
    let key = r, dst, tag in
    let c = chan key in
    match c.recvs with
    | rv :: rest ->
      c.recvs <- rest;
      deliver ~src:r ~dst ~tag { p_len = len; p_label = label; p_owner = r } rv
    | [] ->
      let p = { p_len = len; p_label = label; p_owner = r } in
      collision ~src:r ~dst ~tag c.sends p;
      c.sends <- c.sends @ [ p ]
  in
  let post_recv r ~src ~tag ~len ~label =
    let key = src, r, tag in
    let c = chan key in
    let p = { p_len = len; p_label = label; p_owner = r } in
    match c.sends with
    | s :: rest ->
      c.sends <- rest;
      deliver ~src ~dst:r ~tag s p
    | [] ->
      collision ~src ~dst:r ~tag c.recvs p;
      c.recvs <- c.recvs @ [ p ];
      ranks.(r).unmatched_recvs <- ranks.(r).unmatched_recvs + 1
  in
  (* run rank [r] until it finishes or blocks; true if it made progress *)
  let step r =
    let st = ranks.(r) in
    let progressed = ref false in
    let running = ref true in
    while !running do
      match st.ops with
      | [] ->
        st.blocked <- false;
        running := false
      | Send { peer; tag; len; label } :: rest ->
        post_send r ~dst:peer ~tag ~len ~label;
        st.ops <- rest;
        progressed := true
      | Recv { peer; tag; len; label } :: rest ->
        post_recv r ~src:peer ~tag ~len ~label;
        st.ops <- rest;
        progressed := true
      | Wait_all :: rest ->
        if st.unmatched_recvs = 0 then begin
          st.blocked <- false;
          st.ops <- rest;
          progressed := true
        end
        else begin
          st.blocked <- true;
          running := false
        end
    done;
    !progressed
  in
  let any = ref true in
  while !any do
    any := false;
    for r = 0 to nranks - 1 do
      if step r then any := true
    done
  done;
  (* fixpoint: classify what is left.  Blocked ranks wait on the source
     of some undelivered receive; a cycle in that waits-for relation is
     a deadlock (reported once per cycle, subsuming the per-message
     unmatched reports among its ranks). *)
  let finished r = ranks.(r).ops = [] in
  let recv_sources r =
    Hashtbl.fold
      (fun (src, dst, _) c acc ->
        if dst = r && List.exists (fun p -> p.p_owner = r) c.recvs then
          src :: acc
        else acc)
      chans []
    |> List.sort_uniq compare
  in
  (* ranks on a waits-for cycle: iteratively keep blocked ranks that
     wait (directly) on another kept rank; the fixpoint of that pruning
     is the union of cycles plus their in-cycle feeders *)
  let deadlocked =
    let keep = Array.init nranks (fun r -> not (finished r)) in
    let changed = ref true in
    while !changed do
      changed := false;
      for r = 0 to nranks - 1 do
        if keep.(r) && not (List.exists (fun s -> keep.(s)) (recv_sources r))
        then begin
          keep.(r) <- false;
          changed := true
        end
      done
    done;
    keep
  in
  let cycle_ranks =
    List.filter (fun r -> deadlocked.(r)) (List.init nranks Fun.id)
  in
  if cycle_ranks <> [] then report (Deadlock { ranks = cycle_ranks });
  Hashtbl.iter
    (fun (src, dst, tag) c ->
      List.iter
        (fun p ->
          if not (deadlocked.(src) || deadlocked.(dst)) then
            report (Unmatched_send { src; dst; tag; label = p.p_label }))
        c.sends;
      List.iter
        (fun p ->
          if not (deadlocked.(src) || deadlocked.(dst)) then
            report (Unmatched_recv { src; dst; tag; label = p.p_label }))
        c.recvs)
    chans;
  List.sort compare !problems

let problem_to_string = function
  | Unmatched_send { src; dst; tag; label } ->
    Printf.sprintf
      "send %d -> %d (tag %d, %s) is never received: the peer posts no \
       matching receive" src dst tag label
  | Unmatched_recv { src; dst; tag; label } ->
    Printf.sprintf
      "receive on rank %d from %d (tag %d, %s) is never satisfied: the \
       peer posts no matching send" dst src tag label
  | Deadlock { ranks } ->
    Printf.sprintf "ranks {%s} wait on each other's sends in a cycle"
      (String.concat ", " (List.map string_of_int ranks))
  | Tag_collision { src; dst; tag; label } ->
    Printf.sprintf
      "two in-flight messages with different payloads share channel \
       %d -> %d tag %d (%s): FIFO matching becomes order-dependent" src
      dst tag label
  | Size_mismatch { src; dst; tag; sent; expected; label } ->
    Printf.sprintf
      "payload length disagreement on %d -> %d (tag %d, %s): %d values \
       sent, %d expected" src dst tag label sent expected
