(** Static message-schedule simulator: {!Spmd}'s deterministic matching
    semantics (eager-buffered sends, FIFO matching per (src, dst, tag)
    channel, rank-order scheduling) lifted to pure data, so a
    communication schedule can be verified for matching, deadlock and
    framing defects without executing a program.  The static analyzer's
    Comm pass elaborates halo-exchange plans into schedules and feeds
    them here. *)

type op =
  | Send of { peer : int; tag : int; len : int; label : string }
      (** nonblocking eager-buffered send: completes locally at post
          time, like {!Spmd.isend}; [label] names the logical stream
          (e.g. the exchanged variable) in reports *)
  | Recv of { peer : int; tag : int; len : int; label : string }
      (** nonblocking receive of [len] values from [peer] *)
  | Wait_all
      (** suspend until every receive this rank has posted so far is
          delivered (sends never block, mirroring the runtime's
          payload-snapshot sends) *)

type schedule = op list array
(** One op sequence per rank, indexed by rank id. *)

type problem =
  | Unmatched_send of { src : int; dst : int; tag : int; label : string }
      (** a posted send no receive ever matches (peer or tag mismatch,
          or a dropped receive) *)
  | Unmatched_recv of { src : int; dst : int; tag : int; label : string }
      (** a posted receive no send ever satisfies (a dropped send) *)
  | Deadlock of { ranks : int list }
      (** the listed ranks block at waits that only each other's
          not-yet-posted sends could release — a waits-for cycle *)
  | Tag_collision of { src : int; dst : int; tag : int; label : string }
      (** two messages with different payload lengths simultaneously in
          flight on one channel: FIFO matching is order-dependent *)
  | Size_mismatch of {
      src : int;
      dst : int;
      tag : int;
      sent : int;
      expected : int;
      label : string;
    }
      (** a matched pair whose send and receive lengths disagree (the
          runtime raises [Spmd_error] on this) *)
(** Everything the simulation can find wrong with a schedule. *)

val simulate : schedule -> problem list
(** Run the deterministic matching simulation to its fixpoint and
    report every problem, sorted.  A deadlock cycle subsumes the
    per-message unmatched reports among its ranks (one [Deadlock] per
    fixpoint, not one finding per blocked message); an empty list means
    the schedule matches completely and cannot deadlock under the
    runtime's scheduling. *)

val problem_to_string : problem -> string
(** Human-readable one-line description of a problem. *)
