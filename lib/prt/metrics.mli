(** Process-wide metrics: counters, gauges, and log2-bucket histograms
    with text and JSON dumps.

    Instrumented layers create their handles at module-initialisation
    time, so the well-known names ([halo.bytes], [pool.barrier_wait_ns],
    [gpu.kernel_launches], [spmd.allreduce_bytes], [tape.ops_skipped],
    ...) are always registered and appear in dumps even at zero.
    Creation is idempotent — requesting an existing name returns the
    same handle — which is also how consumers read values.  Updates are
    atomic, safe from any domain, and gated on {!enabled}: a disabled
    update costs one atomic load.  Naming conventions live in
    [docs/OBSERVABILITY.md]. *)

type counter
(** A monotonically increasing integer, e.g. bytes moved or launches. *)

type gauge
(** A float that can move both ways, e.g. a pool size or an occupancy. *)

type histogram
(** A log2-bucketed distribution: bucket [i] counts observations [v]
    with [2^(i-1) < v <= 2^i] (bucket 0 takes [v <= 1]), plus exact
    count/sum/max — so e.g. [pool.barrier_wait_ns] yields the number of
    waits, total wait, and tail shape at once. *)

val enable : unit -> unit
(** Switch metric updates on. *)

val disable : unit -> unit
(** Switch metric updates off (values are kept). *)

val enabled : unit -> bool
(** Whether updates are currently recorded.  Sites may check this to
    skip computing expensive update arguments. *)

val counter : string -> counter
(** [counter name] returns the counter registered under [name], creating
    it at zero on first use.
    @raise Invalid_argument if [name] is registered as another kind. *)

val gauge : string -> gauge
(** [gauge name] returns the gauge registered under [name].
    @raise Invalid_argument if [name] is registered as another kind. *)

val histogram : string -> histogram
(** [histogram name] returns the histogram registered under [name].
    @raise Invalid_argument if [name] is registered as another kind. *)

val add : counter -> int -> unit
(** [add c n] increments [c] by [n] (no-op while disabled). *)

val incr : counter -> unit
(** [incr c] is [add c 1]. *)

val value : counter -> int
(** Current value of a counter (readable even while disabled). *)

val set : gauge -> float -> unit
(** [set g x] stores [x] in [g] (no-op while disabled). *)

val gauge_value : gauge -> float
(** Current value of a gauge. *)

val observe : histogram -> float -> unit
(** [observe h v] records one observation (no-op while disabled). *)

val hist_count : histogram -> int
(** Number of observations recorded. *)

val hist_sum : histogram -> float
(** Exact sum of all observations. *)

val hist_max : histogram -> float
(** Largest observation recorded (0 if none). *)

val hist_mean : histogram -> float
(** [hist_sum / hist_count], or 0 with no observations. *)

val hist_bucket : histogram -> int -> int
(** [hist_bucket h i] is the count in log2 bucket [i]. *)

val bucket_of : float -> int
(** The bucket index an observation falls into: smallest [i] with
    [v <= 2^i], clamped to [0 .. 63].  Exposed for tests. *)

val counter_values : unit -> (string * int) list
(** Snapshot of every registered counter, sorted by name.  Diffing two
    snapshots yields the per-operation counter deltas the facade attaches
    to each {!Solve} result; readable even while disabled. *)

val reset_all : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val dump_text : unit -> string
(** Human-readable dump, one line per metric, sorted by name (histograms
    add a second line listing non-empty buckets). *)

val dump_json : unit -> string
(** JSON object keyed by metric name, each value carrying [type] plus
    the kind's fields ([value], or [count]/[sum]/[max]/[buckets]). *)
