(** Cluster node description and alpha-beta network cost models used by
    the strong-scaling studies (the paper's evaluation platform is
    modelled, not available; see DESIGN.md).

    With {!Metrics.enable}, every costed message also accumulates into
    the [cluster.msgs] / [cluster.bytes] counters, so a scaling study
    reports the modelled traffic of the evaluated schedule. *)

type node = {
  name : string;  (** platform label used in reports *)
  cores_per_node : int;  (** physical cores per node *)
  cpu_dof_update_time : float;  (** s per intensity DOF update, 1 core *)
  fortran_dof_update_time : float;  (** same, hand-written Fortran code *)
  temp_update_time_per_cell : float;  (** s per cell per step (Newton + reduce) *)
  boundary_time_per_face_dof : float;  (** s per boundary face DOF per step *)
}
(** Calibrated per-operation costs of one cluster node. *)

val cascade_lake : node
(** The paper's two-socket 40-core Cascade Lake node, with unit costs
    anchored to its sequential measurements. *)

type network = {
  alpha : float;  (** per-message latency, s *)
  beta : float;  (** per-byte time, s *)
}
(** The standard alpha-beta (latency-bandwidth) interconnect model. *)

val default_network : network
(** Commodity-cluster parameters: 2 us latency, ~12.5 GB/s effective
    bandwidth. *)

val p2p : network -> bytes:int -> float
(** Point-to-point message time: [alpha + bytes*beta]. *)

val account_p2p : ?net:network -> bytes:int -> unit -> unit
(** Account one {e delivered} point-to-point message of [bytes] payload:
    bumps [cluster.msgs] / [cluster.bytes] and adds the message's
    alpha-beta cost to the [cluster.p2p_time_ns] counter (no-op while
    metrics are disabled).  Called by {!Spmd}'s message matcher, so a
    metered run reports the modelled network time its isend/irecv
    traffic would cost on [net] ({!default_network} by default). *)

val allreduce : network -> p:int -> bytes:int -> float
(** Tree allreduce: ~ 2 ceil(log2 p) (alpha + bytes*beta); 0 for p <= 1. *)

val allgather : network -> p:int -> bytes_per_rank:int -> float
(** Ring allgather: (p-1) rounds of one chunk. *)

val halo_exchange : network -> neighbour_bytes:int list -> float
(** Sum of point-to-point costs over a rank's neighbours. *)

val broadcast : network -> p:int -> bytes:int -> float
(** Binomial-tree broadcast: ceil(log2 p) (alpha + bytes*beta); 0 for
    p <= 1. *)
