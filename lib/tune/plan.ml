(* Execution plans: the plain-data records the tuner enumerates, scores
   and memoizes.  See plan.mli. *)

type t = {
  target : Finch.Config.target;
  opt_level : Finch.Config.opt_level;
  eval_mode : Finch.Config.eval_mode;
  overlap : bool;
  chunk : int;
}

let default_gpu_chunk = 4

let make ?(opt_level = Finch.Config.O2) ?(eval_mode = Finch.Config.Closure)
    ?(overlap = false) ?(chunk = 1) target =
  if target = Finch.Config.Auto then
    invalid_arg "Plan.make: a plan's target must be concrete, not auto";
  if chunk < 1 then invalid_arg "Plan.make: chunk must be >= 1";
  { target; opt_level; eval_mode; overlap; chunk }

let name p =
  Printf.sprintf "%s opt=%s eval=%s %s chunk=%d"
    (Finch.Config.target_name p.target)
    (Finch.Config.opt_level_name p.opt_level)
    (Finch.Config.eval_mode_name p.eval_mode)
    (if p.overlap then "overlap" else "sync")
    p.chunk

let equal a b =
  Finch.Config.target_name a.target = Finch.Config.target_name b.target
  && a.opt_level = b.opt_level && a.eval_mode = b.eval_mode
  && a.overlap = b.overlap && a.chunk = b.chunk

let chunk_of_target = function
  | Finch.Config.Gpu { devices = 1; ranks = 1; _ } -> default_gpu_chunk
  | Finch.Config.Gpu _ | Finch.Config.Cpu _ | Finch.Config.Auto -> 1

let of_request (req : Finch.Solve_request.t) =
  if req.Finch.Solve_request.backend = Finch.Config.Auto then
    invalid_arg "Plan.of_request: backend auto encodes no concrete plan";
  {
    target = req.Finch.Solve_request.backend;
    opt_level = req.Finch.Solve_request.opt_level;
    eval_mode = req.Finch.Solve_request.eval_mode;
    overlap = req.Finch.Solve_request.overlap;
    chunk = chunk_of_target req.Finch.Solve_request.backend;
  }

let apply p (req : Finch.Solve_request.t) =
  {
    req with
    Finch.Solve_request.backend = p.target;
    opt_level = p.opt_level;
    eval_mode = p.eval_mode;
    overlap = p.overlap;
  }

let to_json p =
  Finch.Json.Obj
    [
      "backend", Finch.Json.Str (Finch.Config.target_name p.target);
      "opt", Finch.Json.Str (Finch.Config.opt_level_name p.opt_level);
      "eval", Finch.Json.Str (Finch.Config.eval_mode_name p.eval_mode);
      "overlap", Finch.Json.Bool p.overlap;
      "chunk", Finch.Json.Num (float_of_int p.chunk);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let field k extract =
    match Finch.Json.member k j with
    | Some v -> extract v
    | None -> Error (Printf.sprintf "plan: missing member %S" k)
  in
  let* backend = field "backend" Finch.Json.to_str in
  let* target = Finch.Config.target_of_string backend in
  let* () =
    if target = Finch.Config.Auto then Error "plan: backend auto is not a plan"
    else Ok ()
  in
  let* opt = field "opt" Finch.Json.to_str in
  let* opt_level = Finch.Config.opt_level_of_string opt in
  let* ev = field "eval" Finch.Json.to_str in
  let* eval_mode =
    match ev with
    | "closure" -> Ok Finch.Config.Closure
    | "tape" -> Ok Finch.Config.Tape
    | "native" -> Ok Finch.Config.Native
    | s -> Error (Printf.sprintf "plan: bad eval mode %S" s)
  in
  let* overlap = field "overlap" Finch.Json.to_bool in
  let* chunk = field "chunk" Finch.Json.to_int in
  if chunk < 1 then Error "plan: chunk must be >= 1"
  else Ok { target; opt_level; eval_mode; overlap; chunk }
