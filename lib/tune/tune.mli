(** The execution-plan autotuner behind [--backend auto] (docs/TUNER.md).

    Given a solve request, the tuner enumerates the legal candidate
    plans (backend x opt level x evaluator x overlap, bounded by the
    machine profile and the problem shape), scores every candidate with
    the calibrated {!Bte.Perfmodel} (plus a small dispatch/launch
    overhead model that separates the optimizer levels, the
    [cells_overlap] model for overlapped cell-parallel plans, and a
    communication-hiding credit for overlapped GPU plans), walks the
    ranking through the {!Finch_analysis} gate — a plan whose program
    fails analysis is discarded, never silently "fixed" — optionally
    refines the surviving shortlist with short measured calibration runs
    on the real executors, and memoizes the winner in a two-level cache
    (in-process plus [_build/finch_tune/] on disk) keyed by
    [(program digest, grid shape, machine profile, refinement mode)].

    Observability: [tune.candidates_scored], [tune.measured_trials],
    [tune.cache_hits], [tune.cache_misses] and [tune.plan_switches]
    counters, plus a [tune:plan] span on the main trace track. *)

type profile = {
  cores : int;       (** pool domains available to CPU plans *)
  gpu : string;      (** simulated device enumerated for GPU plans *)
  native_ok : bool;  (** native runtime + ocamlfind toolchain present *)
}
(** The machine profile a plan is tuned for — part of the cache key, so
    a decision never leaks onto a differently-shaped host. *)

val detect_profile : unit -> profile
(** Probe the running host (memoized): recommended domain count, the
    default simulated GPU, and whether the codegen toolchain can
    compile [--eval native] kernels. *)

val profile_digest : profile -> string
(** Stable hex digest of a profile, the machine component of the cache
    key. *)

(** Why a candidate did or did not survive. [Scored] candidates were
    ranked by the model but never reached the analysis gate. *)
type verdict =
  | Scored                    (** model-ranked only; below the gate cutoff *)
  | Legal                     (** passed the analysis gate with zero errors *)
  | Rejected of string        (** prepare failed or analysis found errors *)
  | Unpredictable of string   (** cost model refused (beyond partition caps) *)

type candidate = {
  cd_plan : Plan.t;
  cd_predicted_s : float;       (** modelled runtime; [infinity] if refused *)
  cd_verdict : verdict;
  cd_measured_s : float option; (** best trial wall clock, when refined *)
}

(** Where the winning decision came from. *)
type origin = Computed | Memory_hit | Disk_hit

type decision = {
  dc_plan : Plan.t;             (** the winner *)
  dc_predicted_s : float;       (** its modelled runtime, seconds *)
  dc_measured_s : float option; (** its best calibration trial, if any *)
  dc_candidates : candidate list;
    (** the full scored table in ranking order; empty on cache hits
        (recompute with [~force:true] to rebuild it) *)
  dc_origin : origin;
  dc_key : string;              (** two-level cache key, hex *)
}

val candidates : ?profile:profile -> Finch.Solve_request.t -> Plan.t list
(** The structural candidate set for a request: every plan the profile
    and the problem shape admit, before scoring and the analysis
    gate. *)

val predict : ?profile:profile -> Finch.Solve_request.t -> Plan.t -> float
(** Modelled runtime of one plan on the request's shape, seconds;
    [infinity] when the cost model refuses the decomposition. *)

val plan :
  ?profile:profile ->
  ?post_io:Finch.Dataflow.callback_io ->
  ?shortlist:int ->
  ?measure_steps:int ->
  ?measure_trials:int ->
  ?force:bool ->
  Finch.Solve_request.t ->
  (decision, string) result
(** Choose a plan for the request.  [shortlist] bounds how many ranked
    candidates pass the analysis gate (default 4; the walk extends past
    rejected candidates until one survives).  [measure_steps > 0]
    refines the surviving shortlist with calibration runs clamped to
    that many steps, [measure_trials] times each (default 1); trial
    rounds interleave across the shortlist so clock drift biases no
    candidate, each candidate keeps its best trial, and measured walls
    within 0.5% of the minimum count as ties broken by the
    deterministic model ranking.  [measure_steps = 0] (the default)
    trusts the model, which is fully deterministic.  [force] skips
    cache {e reads} (the winner is still written back).  [Error] when
    the scenario is unknown or no candidate survives the gate. *)

val resolve :
  ?profile:profile ->
  ?post_io:Finch.Dataflow.callback_io ->
  ?shortlist:int ->
  ?measure_steps:int ->
  ?measure_trials:int ->
  ?force:bool ->
  Finch.Solve_request.t ->
  (Finch.Solve_request.t * decision option, string) result
(** The entry-point helper: requests with a concrete backend pass
    through untouched ([None]); a [backend = Auto] request is planned
    and returned with the winner applied ({!Plan.apply}). *)

val cache_key :
  ?post_io:Finch.Dataflow.callback_io ->
  ?measure_steps:int ->
  profile:profile ->
  Finch.Solve_request.t ->
  (string, string) result
(** The decision cache key: digest of the value-independent program
    text (emitted from a canonical serial preparation, so all backends
    share it), the grid shape, the machine profile and the refinement
    mode.  Exposed for tests and cache tooling. *)

val set_cache_dir : string -> unit
(** Override the on-disk decision cache directory (highest precedence,
    above the [FINCH_TUNE_CACHE_DIR] environment variable and the
    default [_build/finch_tune] under the current directory). *)

val cache_dir : unit -> string
(** The directory decisions are persisted under. *)

val clear_memo : unit -> unit
(** Drop the in-process decision memo (the disk level is untouched);
    for tests that assert cold-vs-warm behaviour. *)

val memo_size : unit -> int
(** Number of decisions held in the in-process memo. *)
