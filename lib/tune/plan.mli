(** An execution plan — the unit the autotuner searches over.

    A plan is plain data: the concrete backend target (never
    [Config.Auto]), the optimizer level, the evaluator, the overlap
    toggle, and the serve-layer co-batching chunk.  Applying a plan to a
    solve request overrides exactly those knobs and nothing else, so two
    requests that differ only in temperatures resolve onto the same
    plan and keep sharing program-cache entries. *)

type t = {
  target : Finch.Config.target;  (** concrete backend; never [Auto] *)
  opt_level : Finch.Config.opt_level;
  eval_mode : Finch.Config.eval_mode;
  overlap : bool;       (** comm/compute overlap on SPMD/GPU paths *)
  chunk : int;
    (** serve co-batching window the plan asks for: how many compatible
        queued requests the scheduler may coalesce with this one
        (1 = never batch; only single-device GPU plans benefit) *)
}

val make :
  ?opt_level:Finch.Config.opt_level ->
  ?eval_mode:Finch.Config.eval_mode ->
  ?overlap:bool ->
  ?chunk:int ->
  Finch.Config.target ->
  t
(** [make target] with defaults [O2], [Closure], no overlap, chunk 1.
    Raises [Invalid_argument] on [Config.Auto] or [chunk < 1]. *)

val name : t -> string
(** Canonical one-line spelling, e.g. ["gpu:a6000 opt=2 eval=closure
    sync chunk=4"] — stable across runs, usable as a report label. *)

val equal : t -> t -> bool
(** Structural equality (targets compare via their canonical spec). *)

val of_request : Finch.Solve_request.t -> t
(** The plan a concrete request already encodes (chunk 1; single-device
    GPU backends get chunk {!default_gpu_chunk}).  Raises
    [Invalid_argument] if the request's backend is [Auto]. *)

val apply : t -> Finch.Solve_request.t -> Finch.Solve_request.t
(** Rewrite the request's backend, opt level, evaluator and overlap to
    the plan's; every other field (scenario, dims, temperatures,
    deadline, label) is untouched. *)

val default_gpu_chunk : int
(** The co-batching window granted to single-device GPU plans (the only
    targets [Finch_serve.Batch] can fuse). *)

val chunk_of_target : Finch.Config.target -> int
(** {!default_gpu_chunk} for single-device GPU targets, [1] for
    everything else (CPU and multi-device plans never co-batch). *)

val to_json : t -> Finch.Json.t
(** Serialize (backend in the {!Finch.Config.target_name} grammar). *)

val of_json : Finch.Json.t -> (t, string) result
(** Parse; inverse of {!to_json}. *)
