(* Perfmodel-guided execution-plan search.  See tune.mli and
   docs/TUNER.md for the policy; the shape of the two-level decision
   cache deliberately mirrors lib/codegen's kernel cache. *)

let m_scored = Prt.Metrics.counter "tune.candidates_scored"
let m_trials = Prt.Metrics.counter "tune.measured_trials"
let m_hits = Prt.Metrics.counter "tune.cache_hits"
let m_misses = Prt.Metrics.counter "tune.cache_misses"
let m_switches = Prt.Metrics.counter "tune.plan_switches"

(* ------------------------------------------------------------------ *)
(* Machine profile.                                                    *)
(* ------------------------------------------------------------------ *)

type profile = { cores : int; gpu : string; native_ok : bool }

let profile_memo : profile option ref = ref None

let detect_profile () =
  match !profile_memo with
  | Some p -> p
  | None ->
    let native_ok =
      Sys.backend_type = Sys.Native
      && Sys.command "command -v ocamlfind > /dev/null 2>&1" = 0
    in
    let p =
      {
        cores = max 1 (Domain.recommended_domain_count ());
        gpu = String.lowercase_ascii Gpu_sim.Spec.a6000.Gpu_sim.Spec.name;
        native_ok;
      }
    in
    profile_memo := Some p;
    p

let profile_digest p =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "cores=%d;gpu=%s;native=%b" p.cores p.gpu p.native_ok))

(* ------------------------------------------------------------------ *)
(* Candidate enumeration: every plan the profile and the problem shape *)
(* structurally admit.  Bounded by construction, not truncation.       *)
(* ------------------------------------------------------------------ *)

(* resolved shape of a request (TA bands materialize on top of the LA
   count, exactly as Perfmodel.shape_of_scenario derives it) *)
let shape_of_request (req : Finch.Solve_request.t) : Bte.Perfmodel.shape =
  let disp = Bte.Dispersion.make ~n_la:req.Finch.Solve_request.nbands in
  {
    Bte.Perfmodel.ncells = req.Finch.Solve_request.nx * req.Finch.Solve_request.ny;
    ndirs = req.Finch.Solve_request.ndirs;
    nbands = Bte.Dispersion.nbands disp;
    nsteps = req.Finch.Solve_request.nsteps;
    boundary_faces = 2 * (req.Finch.Solve_request.nx + req.Finch.Solve_request.ny);
  }

let dedupe_ints xs =
  List.sort_uniq compare xs

let targets_of profile (shape : Bte.Perfmodel.shape) =
  let nb = shape.Bte.Perfmodel.nbands in
  let nc = shape.Bte.Perfmodel.ncells in
  let cpu s = Finch.Config.Cpu s in
  let threads =
    dedupe_ints [ 2; profile.cores ]
    (* never oversubscribe: a pool wider than the host's cores only adds
       contention, so single-core profiles offer no threaded plan *)
    |> List.filter (fun n -> n >= 2 && n <= profile.cores && n <= nc)
    |> List.map (fun n -> cpu (Finch.Config.Threaded n))
  in
  let bands =
    [ 2; 4 ]
    |> List.filter (fun n -> n <= nb)
    |> List.map (fun n -> cpu (Finch.Config.Band_parallel n))
  in
  let cells =
    [ 2; 4 ]
    |> List.filter (fun n -> n <= nc)
    |> List.map (fun n -> cpu (Finch.Config.Cell_parallel n))
  in
  let hybrid =
    if profile.cores >= 4 && nb >= 2 && nc >= 2 then
      [ cpu (Finch.Config.Hybrid (2, 2)) ]
    else []
  in
  let spec =
    try Gpu_sim.Spec.by_name profile.gpu
    with Invalid_argument _ -> Gpu_sim.Spec.a6000
  in
  let gpu devices ranks = Finch.Config.Gpu { spec; devices; ranks } in
  let gpus =
    [ gpu 1 1 ]
    @ (if nb >= 2 then [ gpu 1 2 ] else [])
    @ (if nc >= 2 then [ gpu 2 1 ] else [])
    @ if nb >= 2 && nc >= 2 then [ gpu 2 2 ] else []
  in
  (cpu Finch.Config.Serial :: threads) @ bands @ cells @ hybrid @ gpus

let is_cpu = function Finch.Config.Cpu _ -> true | _ -> false

(* overlap only where an executor has a nonblocking path to hide: the
   cell-parallel halo exchange and the GPU transfer/frontier streams *)
let overlap_capable = function
  | Finch.Config.Cpu (Finch.Config.Cell_parallel n) -> n > 1
  | Finch.Config.Gpu _ -> true
  | Finch.Config.Cpu _ | Finch.Config.Auto -> false

let candidates ?profile (req : Finch.Solve_request.t) =
  let profile = match profile with Some p -> p | None -> detect_profile () in
  let shape = shape_of_request req in
  targets_of profile shape
  |> List.concat_map (fun target ->
         let evals =
           Finch.Config.Closure
           :: (if profile.native_ok && is_cpu target then
                 [ Finch.Config.Native ]
               else [])
         in
         let overlaps = false :: (if overlap_capable target then [ true ] else []) in
         List.concat_map
           (fun opt_level ->
             List.concat_map
               (fun eval_mode ->
                 List.map
                   (fun overlap ->
                     Plan.make ~opt_level ~eval_mode ~overlap
                       ~chunk:(Plan.chunk_of_target target) target)
                   overlaps)
               evals)
           [ Finch.Config.O0; Finch.Config.O2 ])

(* ------------------------------------------------------------------ *)
(* Scoring: Perfmodel runtime plus the knobs the model is blind to.    *)
(* ------------------------------------------------------------------ *)

(* measured in BENCH_cpu.json: generated native loop bodies sweep the
   intensity DOFs about 3x faster than the closure interpreter (the
   boundary callbacks stay host OCaml either way) *)
let native_sweep_speedup = 3.0

(* per-dispatch overheads separating the optimizer levels: O0 pays one
   pool region / kernel launch per band loop, O2's fused+batched
   schedule pays O(1) per step.  Values are coarse but only their
   ordering matters to the ranking. *)
let launch_overhead_s = 5e-6
let region_overhead_s = 10e-6

(* fraction of the exchange the double-buffered paths actually hide
   (the frontier still synchronizes once per step) *)
let overlap_hide_fraction = 0.8

let strategy_of_target = function
  | Finch.Config.Cpu Finch.Config.Serial -> Bte.Perfmodel.Serial
  | Finch.Config.Cpu (Finch.Config.Threaded n) -> Bte.Perfmodel.Threads n
  | Finch.Config.Cpu (Finch.Config.Band_parallel n) -> Bte.Perfmodel.Bands n
  | Finch.Config.Cpu (Finch.Config.Cell_parallel n) -> Bte.Perfmodel.Cells n
  | Finch.Config.Cpu (Finch.Config.Hybrid (r, d)) -> Bte.Perfmodel.Hybrid (r, d)
  | Finch.Config.Gpu { devices; ranks; _ } ->
    Bte.Perfmodel.Gpu_grid (devices, ranks)
  | Finch.Config.Auto -> invalid_arg "Tune: unresolved auto target"

let dispatch_overhead (shape : Bte.Perfmodel.shape) (p : Plan.t) =
  let nb = float_of_int shape.Bte.Perfmodel.nbands in
  let per_step =
    match p.Plan.target, p.Plan.opt_level with
    | Finch.Config.Gpu _, (Finch.Config.O0 | Finch.Config.O1) ->
      launch_overhead_s *. nb
    | Finch.Config.Gpu _, Finch.Config.O2 -> launch_overhead_s
    | Finch.Config.Cpu (Finch.Config.Threaded _ | Finch.Config.Hybrid _),
      Finch.Config.O0 ->
      region_overhead_s *. 2. *. nb
    | Finch.Config.Cpu (Finch.Config.Threaded _ | Finch.Config.Hybrid _), _ ->
      region_overhead_s *. 2.
    (* serial/SPMD closures: negligible, but a per-band epsilon keeps
       the O0-vs-O2 ranking deterministic instead of a float tie *)
    | Finch.Config.Cpu _, Finch.Config.O0 -> 1e-9 *. nb
    | Finch.Config.Cpu _, _ -> 1e-9
    | Finch.Config.Auto, _ -> 0.
  in
  per_step *. float_of_int shape.Bte.Perfmodel.nsteps

let predict_shape (shape : Bte.Perfmodel.shape) (p : Plan.t) =
  let calib =
    match p.Plan.eval_mode, p.Plan.target with
    | Finch.Config.Native, Finch.Config.Cpu _ ->
      {
        Bte.Perfmodel.default with
        Bte.Perfmodel.dsl_dof_time =
          Bte.Perfmodel.default.Bte.Perfmodel.dsl_dof_time
          /. native_sweep_speedup;
      }
    | _ -> Bte.Perfmodel.default
  in
  let strategy = strategy_of_target p.Plan.target in
  let base = Bte.Perfmodel.run_time ~calib ~shape strategy in
  let hidden =
    if not p.Plan.overlap then 0.
    else
      match p.Plan.target with
      | Finch.Config.Cpu (Finch.Config.Cell_parallel n) when n > 1 ->
        let om = Bte.Perfmodel.cells_overlap ~calib ~shape ~p:n () in
        om.Bte.Perfmodel.hidden *. float_of_int shape.Bte.Perfmodel.nsteps
      | Finch.Config.Gpu _ ->
        let b = Bte.Perfmodel.run_breakdown ~calib ~shape strategy in
        overlap_hide_fraction
        *. min b.Prt.Breakdown.communication b.Prt.Breakdown.intensity
      | _ -> 0.
  in
  Float.max 0. (base -. hidden) +. dispatch_overhead shape p

let predict ?profile:_ (req : Finch.Solve_request.t) (p : Plan.t) =
  match predict_shape (shape_of_request req) p with
  | t -> t
  | exception Invalid_argument _ -> infinity

(* ------------------------------------------------------------------ *)
(* Candidate table: scored, deterministically ranked.                  *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Scored
  | Legal
  | Rejected of string
  | Unpredictable of string

type candidate = {
  cd_plan : Plan.t;
  cd_predicted_s : float;
  cd_verdict : verdict;
  cd_measured_s : float option;
}

type origin = Computed | Memory_hit | Disk_hit

type decision = {
  dc_plan : Plan.t;
  dc_predicted_s : float;
  dc_measured_s : float option;
  dc_candidates : candidate list;
  dc_origin : origin;
  dc_key : string;
}

let opt_rank = function
  | Finch.Config.O2 -> 0
  | Finch.Config.O1 -> 1
  | Finch.Config.O0 -> 2

(* ranking: modelled seconds, then (on exact float ties) prefer the
   higher opt level, the sync schedule and the lexicographic name — a
   total order, so the choice is reproducible run to run *)
let compare_candidates a b =
  match compare a.cd_predicted_s b.cd_predicted_s with
  | 0 -> (
    match compare (opt_rank a.cd_plan.Plan.opt_level) (opt_rank b.cd_plan.Plan.opt_level) with
    | 0 -> (
      match Bool.compare a.cd_plan.Plan.overlap b.cd_plan.Plan.overlap with
      | 0 -> compare (Plan.name a.cd_plan) (Plan.name b.cd_plan)
      | c -> c)
    | c -> c)
  | c -> c

let score_all profile req =
  let shape = shape_of_request req in
  let scored =
    List.map
      (fun p ->
        match predict_shape shape p with
        | t -> { cd_plan = p; cd_predicted_s = t; cd_verdict = Scored;
                 cd_measured_s = None }
        | exception Invalid_argument m ->
          { cd_plan = p; cd_predicted_s = infinity;
            cd_verdict = Unpredictable m; cd_measured_s = None })
      (candidates ~profile req)
  in
  Prt.Metrics.add m_scored (List.length scored);
  List.stable_sort compare_candidates scored

(* ------------------------------------------------------------------ *)
(* The analysis gate: prepare the plan's request and lint its program.  *)
(* A failing plan is discarded — the tuner never edits a program.       *)
(* ------------------------------------------------------------------ *)

let gate ?post_io req (c : candidate) =
  match c.cd_verdict with
  | Unpredictable _ -> c
  | _ -> (
    match Finch.prepare (Plan.apply c.cd_plan req) with
    | Error e -> { c with cd_verdict = Rejected (Finch.Solve_error.to_string e) }
    | Ok prep -> (
      match
        Finch_analysis.Driver.check_problem ?post_io prep.Finch.pr_problem
      with
      | rep ->
        if rep.Finch_analysis.Driver.errors > 0 then
          { c with
            cd_verdict =
              Rejected
                (Printf.sprintf "analysis found %d error(s)"
                   rep.Finch_analysis.Driver.errors) }
        else { c with cd_verdict = Legal }
      | exception e ->
        { c with cd_verdict = Rejected (Printexc.to_string e) }))

(* ------------------------------------------------------------------ *)
(* Measured refinement: short calibration runs on the real executors.   *)
(* ------------------------------------------------------------------ *)

let measure_once ~steps req (c : candidate) =
  let treq = Plan.apply c.cd_plan req in
  let treq =
    { treq with
      Finch.Solve_request.nsteps = min steps treq.Finch.Solve_request.nsteps;
      deadline_s = None;
      label = Some "tune-trial" }
  in
  Prt.Metrics.incr m_trials;
  match Finch.solve treq with
  | Ok res -> Some res.Finch.Solve_result.wall_s
  | Error _ -> None

(* trial rounds interleave across the shortlist (one solve per candidate
   per round) so clock drift — warmup, frequency scaling, cache state —
   biases no candidate; each candidate keeps its best trial *)
let measure_shortlist ~steps ~trials req gated =
  let arr = Array.of_list gated in
  let best = Array.make (Array.length arr) infinity in
  for _ = 1 to max 1 trials do
    Array.iteri
      (fun i c ->
        match c.cd_verdict with
        | Legal -> (
          match measure_once ~steps req c with
          | Some w -> best.(i) <- Float.min best.(i) w
          | None -> ())
        | _ -> ())
      arr
  done;
  Array.to_list
    (Array.mapi
       (fun i c ->
         if best.(i) = infinity then c
         else { c with cd_measured_s = Some best.(i) })
       arr)

(* measured walls within this factor of the minimum count as ties
   broken by the deterministic model ranking.  Kept tight: wall-clock
   noise is one-sided (scheduling delays only add time), so best-trial
   minima converge to the true floors and a wider window would hand a
   systematically slower plan the win whenever the model prefers it *)
let measured_tie = 1.005

(* ------------------------------------------------------------------ *)
(* Two-level decision cache (mirrors the codegen kernel cache).         *)
(* ------------------------------------------------------------------ *)

let cache_dir_override : string option ref = ref None
let set_cache_dir d = cache_dir_override := Some d

let cache_dir () =
  match !cache_dir_override with
  | Some d -> d
  | None -> (
    match Sys.getenv_opt "FINCH_TUNE_CACHE_DIR" with
    | Some d -> d
    | None ->
      Filename.concat (Sys.getcwd ()) (Filename.concat "_build" "finch_tune"))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let memo : (string, Plan.t * float) Hashtbl.t = Hashtbl.create 8
let memo_size () = Hashtbl.length memo
let clear_memo () = Hashtbl.reset memo

let entry_path key = Filename.concat (cache_dir ()) ("tune_" ^ key ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let disk_load key =
  let path = entry_path key in
  if not (Sys.file_exists path) then None
  else
    match Finch.Json.of_string (read_file path) with
    | Error _ -> None
    | Ok j -> (
      match Finch.Json.member "plan" j with
      | None -> None
      | Some pj -> (
        match Plan.of_json pj with
        | Error _ -> None
        | Ok plan ->
          let predicted =
            match Finch.Json.member "predicted_s" j with
            | Some v -> (match Finch.Json.to_num v with Ok f -> f | Error _ -> nan)
            | None -> nan
          in
          Some (plan, predicted)))

let disk_store ~key ~profile (plan : Plan.t) predicted =
  mkdir_p (cache_dir ());
  let j =
    Finch.Json.Obj
      [
        "key", Finch.Json.Str key;
        "plan", Plan.to_json plan;
        "predicted_s", Finch.Json.Num predicted;
        "profile", Finch.Json.Str (profile_digest profile);
      ]
  in
  write_file (entry_path key) (Finch.Json.to_string ~indent:2 j ^ "\n")

(* the problem's identity independent of any backend choice: the naive
   program text of a canonical serial preparation (value-independent,
   like the serve program cache) plus the full grid shape *)
let cache_key ?post_io:_ ?(measure_steps = 0) ~profile
    (req : Finch.Solve_request.t) =
  let canonical = Plan.apply (Plan.make (Finch.Config.Cpu Finch.Config.Serial)) req in
  match Finch.prepare canonical with
  | Error e -> Error (Finch.Solve_error.to_string e)
  | Ok prep ->
    let src = Finch.Emit_source.to_julia (Finch.Ir.build_cpu prep.Finch.pr_problem) in
    let dims =
      Printf.sprintf "%s|%dx%d|d%d|b%d|s%d" req.Finch.Solve_request.scenario
        req.Finch.Solve_request.nx req.Finch.Solve_request.ny
        req.Finch.Solve_request.ndirs req.Finch.Solve_request.nbands
        req.Finch.Solve_request.nsteps
    in
    let mode =
      if measure_steps > 0 then Printf.sprintf "measured:%d" measure_steps
      else "model"
    in
    Ok
      (Digest.to_hex
         (Digest.string
            (String.concat "|"
               [ Digest.to_hex (Digest.string src); dims;
                 profile_digest profile; mode ])))

(* ------------------------------------------------------------------ *)
(* The planner.                                                        *)
(* ------------------------------------------------------------------ *)

let choose ?post_io ~shortlist ~measure_steps ~measure_trials req scored =
  (* walk the ranking, gating candidates until [shortlist] are legal or
     the table is exhausted; rejected candidates stay in the table with
     their verdicts for the explain output *)
  let legal = ref 0 in
  let gated =
    List.map
      (fun c ->
        if !legal >= shortlist then c
        else
          let c = gate ?post_io req c in
          (match c.cd_verdict with Legal -> incr legal | _ -> ());
          c)
      scored
  in
  let refined =
    if measure_steps > 0 then
      measure_shortlist ~steps:measure_steps ~trials:measure_trials req gated
    else gated
  in
  let winner =
    if measure_steps > 0 then begin
      (* measured minimum among the survivors; anything within
         [measured_tie] of it counts as tied and the first such
         candidate in model-ranking order wins *)
      let best =
        List.fold_left
          (fun acc c ->
            match c.cd_verdict, c.cd_measured_s with
            | Legal, Some m -> Float.min acc m
            | _ -> acc)
          infinity refined
      in
      if best = infinity then
        List.find_opt (fun c -> c.cd_verdict = Legal) refined
      else
        List.find_opt
          (fun c ->
            match c.cd_verdict, c.cd_measured_s with
            | Legal, Some m -> m <= measured_tie *. best
            | _ -> false)
          refined
    end
    else List.find_opt (fun c -> c.cd_verdict = Legal) refined
  in
  winner, refined

let plan ?profile ?post_io ?(shortlist = 4) ?(measure_steps = 0)
    ?(measure_trials = 1) ?(force = false) (req : Finch.Solve_request.t) =
  let profile = match profile with Some p -> p | None -> detect_profile () in
  Prt.Trace.span ~cat:"tune" Prt.Trace.main "tune:plan" (fun () ->
      match cache_key ?post_io ~measure_steps ~profile req with
      | Error e -> Error e
      | Ok key -> (
        let cached =
          if force then None
          else
            match Hashtbl.find_opt memo key with
            | Some (p, t) -> Some (p, t, Memory_hit)
            | None -> (
              match disk_load key with
              | Some (p, t) -> Some (p, t, Disk_hit)
              | None -> None)
        in
        match cached with
        | Some (p, t, origin) ->
          Prt.Metrics.incr m_hits;
          Hashtbl.replace memo key (p, t);
          Ok
            { dc_plan = p; dc_predicted_s = t; dc_measured_s = None;
              dc_candidates = []; dc_origin = origin; dc_key = key }
        | None ->
          Prt.Metrics.incr m_misses;
          let scored = score_all profile req in
          let winner, table =
            choose ?post_io ~shortlist ~measure_steps ~measure_trials req
              scored
          in
          (match winner with
           | None -> Error "tune: no candidate plan survived the analysis gate"
           | Some w ->
             (* a recorded decision that changes on recompute is a plan
                switch (profile drift, measurement noise, model change) *)
             (match disk_load key with
              | Some (prev, _) when not (Plan.equal prev w.cd_plan) ->
                Prt.Metrics.incr m_switches
              | _ -> ());
             disk_store ~key ~profile w.cd_plan w.cd_predicted_s;
             Hashtbl.replace memo key (w.cd_plan, w.cd_predicted_s);
             Ok
               { dc_plan = w.cd_plan;
                 dc_predicted_s = w.cd_predicted_s;
                 dc_measured_s = w.cd_measured_s;
                 dc_candidates = table;
                 dc_origin = Computed;
                 dc_key = key })))

let resolve ?profile ?post_io ?shortlist ?measure_steps ?measure_trials ?force
    (req : Finch.Solve_request.t) =
  match req.Finch.Solve_request.backend with
  | Finch.Config.Auto ->
    Result.map
      (fun d -> Plan.apply d.dc_plan req, Some d)
      (plan ?profile ?post_io ?shortlist ?measure_steps ?measure_trials ?force
         req)
  | Finch.Config.Cpu _ | Finch.Config.Gpu _ -> Ok (req, None)
