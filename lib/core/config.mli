(** Solver configuration enumerations (script options). *)

type solver_type =
  | FV (** finite volume — the method used throughout the paper *)
  | FE (** accepted for completeness; code generation targets FV *)

type time_stepper =
  | Euler_explicit       (** the paper's scheme *)
  | RK2                  (** explicit midpoint (extension) *)
  | RK4                  (** classic four-stage (extension) *)
  | Euler_point_implicit
    (** source linearized symbolically and treated implicitly, advection
        explicit — removes the stiff relaxation bound on dt (extension) *)

val stepper_stages : time_stepper -> int
val stepper_name : time_stepper -> string

type bc_kind =
  | Flux      (** prescribes the surface-term integrand (possibly callback) *)
  | Dirichlet (** prescribes the ghost/boundary value *)

val bc_kind_name : bc_kind -> string

(** Parallel execution strategies explored in the paper (Sec. III-C/D),
    plus shared-memory extensions. *)
type strategy =
  | Serial
  | Cell_parallel of int (** mesh partitioned into n pieces *)
  | Band_parallel of int (** equation index space partitioned into n pieces *)
  | Threaded of int      (** shared-memory domain pool over cell ranges *)
  | Hybrid of int * int
    (** band-parallel ranks x pool domains per rank (MPI+threads hybrid) *)

type target =
  | Cpu of strategy
  | Gpu of { spec : Gpu_sim.Spec.t; devices : int; ranks : int }
    (** [ranks] SPMD processes over the band axis, each driving
        [devices] simulated devices over the cell axis; devices exchange
        ghosts device-to-device (simulated NVLink within a node, host
        staging across).  [devices = ranks = 1] is the single-device
        target. *)
  | Auto
    (** placeholder resolved by the autotuner ([finch_tune],
        docs/TUNER.md) before preparation: entry points replace it with
        the winning plan's concrete target.  Executors and lowering
        never see [Auto]; {!Finch.prepare} rejects it. *)

val target_name : target -> string
(** Canonical backend spec of a target: ["auto"], ["serial"],
    ["threads:N"], ["bands:N"], ["cells:N"], ["hybrid:RxD"],
    ["gpu:NAME"], ["gpu:NAME:RANKS"] or ["gpu:NAME:GxR"] (G devices per
    rank when G > 1).  Round-trips through {!target_of_string}. *)

val target_of_string : string -> (target, string) result
(** Parse a backend spec
    [auto|serial|threads:N|bands:N|cells:N|hybrid:RxD|gpu[:NAME[:RANKS|:GxR]]]
    (case-insensitive; GPU names as accepted by {!Gpu_sim.Spec.by_name},
    defaulting to [a6000] with one device and one rank; the legacy
    spellings [hybrid:R:D] and [gpu:NAME:1xR] are accepted as aliases).
    [Error msg] describes the expected grammar on malformed input. *)

(** How compiled right-hand sides are executed: closure tree, flat
    register tape with CSE and loop-invariant caching, or generated
    OCaml compiled and dynlinked behind a content-hash cache
    (docs/CODEGEN.md; falls back to closures with a warning when the
    toolchain or emission is unavailable). *)
type eval_mode = Closure | Tape | Native

val eval_mode_name : eval_mode -> string

(** Optimization level of the IR middle end and the matching executor
    schedules: [O0] naive lowering (one pool region / kernel launch per
    IR loop), [O1] CPU loop fusion + dead-assign elimination + transfer
    coalescing, [O2] additionally band-batched device launches and
    loop-invariant H2d hoisting.  All levels are bit-identical; see
    docs/OPTIMIZER.md. *)
type opt_level = O0 | O1 | O2

val opt_level_name : opt_level -> string
(** ["0"], ["1"] or ["2"] — the CLI spelling of a level. *)

val opt_level_of_string : string -> (opt_level, string) result
(** Parse ["0"|"1"|"2"] (also accepts ["O0"].."[O2]", case-insensitive).
    [Error msg] describes the expected grammar on malformed input. *)
