(** Data-movement analysis and CPU/GPU task placement.

    "The DSL automatically partitions tasks between the CPU and GPU by
    minimizing the data movement." Tasks carry read/write sets and a work
    estimate; user-callback tasks are pinned to the CPU. The optimizer
    enumerates placements of the free tasks, estimates per-step wall time
    as compute + PCIe traffic, and keeps the minimum; the winning
    placement induces the per-variable transfer schedule (once vs. every
    step, each direction). *)

type side = Cpu_side | Gpu_side

type task = {
  t_name : string;
  t_reads : string list;
  t_writes : string list;
  t_pinned : side option; (** user callbacks are pinned to the CPU *)
  t_flops : float;        (** per-step work estimate *)
}

type var_info = { v_name : string; v_bytes : int }

type placement = (string * side) list

type transfer = {
  tr_var : string;
  tr_h2d_every_step : bool; (** produced on host, consumed on device *)
  tr_d2h_every_step : bool; (** produced on device, consumed on host *)
  tr_h2d_once : bool;       (** static device input *)
}

type plan = {
  placement : placement;
  transfers : transfer list;
  bytes_per_step : int;
  bytes_once : int;
}

val side_of : placement -> task -> side

val schedule : tasks:task list -> vars:var_info list -> placement -> plan
(** The transfer schedule induced by a fixed placement. *)

type rates = {
  cpu_flops : float;
  gpu_flops : float;
  pcie : float;
}

val default_rates : rates
val plan_cost : tasks:task list -> rates -> plan -> float

val optimize :
  ?rates:rates -> tasks:task list -> vars:var_info list -> unit -> plan
(** Enumerate placements of unpinned tasks (2^k) and keep the cheapest,
    breaking ties toward less traffic, then toward more GPU tasks. *)

type callback_io = { cb_reads : string list; cb_writes : string list }
(** Declared reads/writes of the post-step user callback; when absent,
    callbacks are conservatively assumed to touch every variable. *)

val tasks_of_problem : Problem.t -> post_io:callback_io option -> task list
val vars_of_problem : Problem.t -> var_info list
val plan_for_problem : ?post_io:callback_io -> ?rates:rates -> Problem.t -> plan

val ir_transfers : plan -> (string * bool) list
(** The (variable, uploaded-every-step) pairs [Ir.build_gpu] consumes:
    one entry per device input the plan uploads, once or per step. *)
