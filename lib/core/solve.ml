(* Top-level driver: dispatch a configured problem to its code-generation
   target and package the results, mirroring the paper's [solve(I)]. *)

type outcome = {
  u : Fvm.Field.t;                  (* gathered unknown after the run *)
  fields : (string * Fvm.Field.t) list; (* rank-0 view of all variables *)
  breakdown : Prt.Breakdown.t;
  gpu : Target_gpu.result option;   (* present for GPU runs *)
  states : Lower.state array;
}

(* Which index is split by band-parallel runs.  Defaults to the last
   declared index (the paper's band index is declared after the direction
   index), overridable per call. *)
let default_band_index (p : Problem.t) =
  match List.rev p.Problem.indices with
  | i :: _ -> i.Entity.iname
  | [] -> raise (Problem.Problem_error "band-parallel run with no indices")

(* Post-solve metrics: steps taken and, for tape-mode runs, the dynamic
   op savings derivable from the tape counters (recorded once here rather
   than per-DOF in the hot path). *)
let m_steps = Prt.Metrics.counter "solve.steps"
let m_tape_skipped = Prt.Metrics.counter "tape.ops_skipped"

let record_solve_metrics (p : Problem.t) states =
  if Prt.Metrics.enabled () then begin
    Prt.Metrics.add m_steps p.Problem.nsteps;
    Array.iter
      (fun (st : Lower.state) ->
        List.iter
          (fun (_, t) ->
            let skipped =
              (Eval.tape_runs t * Eval.tape_length t) - Eval.tape_executed t
            in
            Prt.Metrics.add m_tape_skipped skipped)
          st.Lower.tapes)
      states
  end

let solve_dispatch ?band_index ?post_io (p : Problem.t) =
  match p.Problem.target with
  | Config.Cpu Config.Serial ->
    let r = Target_cpu.run_serial p in
    let st = Target_cpu.primary r in
    {
      u = st.Lower.u;
      fields = st.Lower.fields;
      breakdown = r.Target_cpu.breakdown;
      gpu = None;
      states = r.Target_cpu.states;
    }
  | Config.Cpu (Config.Band_parallel n) ->
    let index =
      match band_index with Some i -> i | None -> default_band_index p
    in
    let r = Target_cpu.run_band_parallel p ~index ~nranks:n in
    let u = Target_cpu.gather_unknown r in
    let st = Target_cpu.primary r in
    {
      u;
      fields =
        List.map
          (fun (name, f) ->
            if name = st.Lower.uvar.Entity.vname then name, u else name, f)
          st.Lower.fields;
      breakdown = r.Target_cpu.breakdown;
      gpu = None;
      states = r.Target_cpu.states;
    }
  | Config.Cpu (Config.Cell_parallel n) ->
    let r = Target_cpu.run_cell_parallel ~overlap:p.Problem.overlap p ~nranks:n in
    let u = Target_cpu.gather_unknown r in
    let st = Target_cpu.primary r in
    {
      u;
      fields =
        List.map
          (fun (name, f) ->
            if name = st.Lower.uvar.Entity.vname then name, u else name, f)
          st.Lower.fields;
      breakdown = r.Target_cpu.breakdown;
      gpu = None;
      states = r.Target_cpu.states;
    }
  | Config.Cpu (Config.Threaded n) ->
    (* workers share the base state's fields, so rank 0 already holds the
       complete unknown *)
    let r = Target_cpu.run_threaded ?post_io p ~ndomains:n in
    let st = Target_cpu.primary r in
    {
      u = st.Lower.u;
      fields = st.Lower.fields;
      breakdown = r.Target_cpu.breakdown;
      gpu = None;
      states = r.Target_cpu.states;
    }
  | Config.Cpu (Config.Hybrid (nranks, ndomains)) ->
    let index =
      match band_index with Some i -> i | None -> default_band_index p
    in
    let r = Target_cpu.run_hybrid p ~index ~nranks ~ndomains in
    let u = Target_cpu.gather_unknown r in
    let st = Target_cpu.primary r in
    {
      u;
      fields =
        List.map
          (fun (name, f) ->
            if name = st.Lower.uvar.Entity.vname then name, u else name, f)
          st.Lower.fields;
      breakdown = r.Target_cpu.breakdown;
      gpu = None;
      states = r.Target_cpu.states;
    }
  | Config.Gpu _ ->
    let r = Target_gpu.run ?post_io p in
    let st = r.Target_gpu.state in
    {
      u = st.Lower.u;
      fields = st.Lower.fields;
      breakdown = r.Target_gpu.breakdown;
      gpu = Some r;
      states = [| st |];
    }
  | Config.Auto ->
    invalid_arg "Solve: unresolved auto target (run the tuner first)"

let solve ?band_index ?post_io (p : Problem.t) =
  let outcome =
    Prt.Trace.span ~cat:"solve" Prt.Trace.main "solve" (fun () ->
        solve_dispatch ?band_index ?post_io p)
  in
  record_solve_metrics p outcome.states;
  outcome

let field outcome name =
  match List.assoc_opt name outcome.fields with
  | Some f -> f
  | None -> raise (Problem.Problem_error ("solve outcome: no field " ^ name))
