(* Minimal JSON: a value type, printer and recursive-descent parser.
   Enough for Solve_request round-trips and BENCH emitters without an
   external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                           *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let num_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = 0) v =
  let b = Buffer.create 256 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (depth * indent) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (num_string f)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          pad (depth + 1);
          escape_string b k;
          Buffer.add_string b (if indent > 0 then ": " else ":");
          go (depth + 1) x)
        kvs;
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parsing                                                            *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "short \\u escape";
           let hex = String.sub s !pos 4 in
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           (* encode the code point as UTF-8 (BMP only; surrogate pairs
              are passed through as two 3-byte sequences) *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
             Buffer.add_char b
               (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
           end
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let str = String.sub s start (!pos - start) in
    match float_of_string_opt str with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" str)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let pair () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let items = ref [ pair () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := pair () :: !items;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !items)
      end
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "json: at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* accessors                                                          *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_num = function Num f -> Ok f | _ -> Error "expected a number"

let to_int = function
  | Num f when Float.is_integer f -> Ok (int_of_float f)
  | Num _ -> Error "expected an integer"
  | _ -> Error "expected a number"

let to_str = function Str s -> Ok s | _ -> Error "expected a string"
let to_bool = function Bool b -> Ok b | _ -> Error "expected a boolean"
