(* Solver configuration enumerations, mirroring the DSL's script options. *)

type solver_type =
  | FV (* finite volume — the method used throughout the paper *)
  | FE (* finite element — accepted, but code generation targets FV *)

type time_stepper =
  | Euler_explicit
  | RK2 (* explicit midpoint; an "extension" stepper beyond the paper *)
  | RK4
  | Euler_point_implicit
    (* source term linearized (via symbolic differentiation) and treated
       implicitly, advection explicit: removes the stiff relaxation-rate
       bound on dt (extension) *)

let stepper_stages = function
  | Euler_explicit | Euler_point_implicit -> 1
  | RK2 -> 2
  | RK4 -> 4

let stepper_name = function
  | Euler_explicit -> "EULER_EXPLICIT"
  | RK2 -> "RK2"
  | RK4 -> "RK4"
  | Euler_point_implicit -> "EULER_POINT_IMPLICIT"

type bc_kind =
  | Flux      (* prescribes the boundary flux (possibly via callback) *)
  | Dirichlet (* prescribes the ghost/boundary value *)

let bc_kind_name = function Flux -> "FLUX" | Dirichlet -> "DIRICHLET"

(* Parallel execution strategies explored in the paper (Section III-C/D),
   plus the shared-memory pool and MPI+threads hybrid extensions. *)
type strategy =
  | Serial
  | Cell_parallel of int  (* mesh partitioned into n pieces *)
  | Band_parallel of int  (* equation index space partitioned into n pieces *)
  | Threaded of int       (* shared-memory domain pool over cell ranges *)
  | Hybrid of int * int
    (* band-parallel ranks x pool domains per rank: each SPMD rank owns a
       band slice and sweeps its cells on a shared persistent domain pool
       (the paper's MPI+threads hybrid) *)

type target =
  | Cpu of strategy
  | Gpu of { spec : Gpu_sim.Spec.t; devices : int; ranks : int }
    (* [ranks] SPMD processes, each driving [devices] simulated devices:
       ranks partition the band axis (one CPU process per node as in the
       paper's multi-GPU experiments), devices partition the cell axis
       within a rank and exchange ghosts device-to-device over the
       simulated NVLink/host-staging path.  devices = ranks = 1 is the
       classic single-device target. *)
  | Auto
    (* placeholder resolved by the autotuner (lib/tune) before any
       problem is prepared: entry points replace it with the concrete
       plan's target.  Executors and lowering never see Auto. *)

(* Canonical backend spec strings.  [target_name] and [target_of_string]
   round-trip: parsing a printed name yields the same target, so the one
   spec grammar serves CLI flags, reports and benchmark labels alike. *)
let target_name = function
  | Auto -> "auto"
  | Cpu Serial -> "serial"
  | Cpu (Cell_parallel n) -> Printf.sprintf "cells:%d" n
  | Cpu (Band_parallel n) -> Printf.sprintf "bands:%d" n
  | Cpu (Threaded n) -> Printf.sprintf "threads:%d" n
  | Cpu (Hybrid (r, d)) -> Printf.sprintf "hybrid:%dx%d" r d
  | Gpu { spec; devices; ranks } ->
    let name = String.lowercase_ascii spec.Gpu_sim.Spec.name in
    if devices = 1 && ranks = 1 then Printf.sprintf "gpu:%s" name
    else if devices = 1 then Printf.sprintf "gpu:%s:%d" name ranks
    else Printf.sprintf "gpu:%s:%dx%d" name devices ranks

let target_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "bad backend spec %S (expected \
          auto|serial|threads:N|bands:N|cells:N|hybrid:RxD|gpu[:NAME[:RANKS|:GxR]])"
         s)
  in
  let pos_int x =
    match int_of_string_opt x with Some n when n >= 1 -> Some n | _ -> None
  in
  let spec_of name =
    try Some (Gpu_sim.Spec.by_name name) with Invalid_argument _ -> None
  in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "auto" ] -> Ok Auto
  | [ "serial" ] -> Ok (Cpu Serial)
  | [ "threads"; n ] -> (
    match pos_int n with Some n -> Ok (Cpu (Threaded n)) | None -> fail ())
  | [ "bands"; n ] -> (
    match pos_int n with Some n -> Ok (Cpu (Band_parallel n)) | None -> fail ())
  | [ "cells"; n ] -> (
    match pos_int n with Some n -> Ok (Cpu (Cell_parallel n)) | None -> fail ())
  | [ "hybrid"; rd ] -> (
    match String.split_on_char 'x' rd with
    | [ r; d ] -> (
      match pos_int r, pos_int d with
      | Some r, Some d -> Ok (Cpu (Hybrid (r, d)))
      | _ -> fail ())
    | _ -> fail ())
  | [ "hybrid"; r; d ] -> (
    (* legacy spelling hybrid:R:D, kept as a parse alias *)
    match pos_int r, pos_int d with
    | Some r, Some d -> Ok (Cpu (Hybrid (r, d)))
    | _ -> fail ())
  | [ "gpu" ] -> Ok (Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 })
  | [ "gpu"; name ] -> (
    match spec_of name with
    | Some spec -> Ok (Gpu { spec; devices = 1; ranks = 1 })
    | None -> fail ())
  | [ "gpu"; name; r ] -> (
    (* gpu:NAME:R — R band-parallel ranks, one device each;
       gpu:NAME:GxR — G devices per rank (cell axis) x R ranks (bands) *)
    match spec_of name with
    | None -> fail ()
    | Some spec -> (
      match String.split_on_char 'x' r with
      | [ r ] -> (
        match pos_int r with
        | Some ranks -> Ok (Gpu { spec; devices = 1; ranks })
        | None -> fail ())
      | [ g; r ] -> (
        match pos_int g, pos_int r with
        | Some devices, Some ranks -> Ok (Gpu { spec; devices; ranks })
        | _ -> fail ())
      | _ -> fail ()))
  | _ -> fail ()

(* How the equation's right-hand sides are executed: as a compiled closure
   tree, as a flat register tape with common-subexpression elimination
   and loop-invariant caching (see Eval), or as generated OCaml compiled
   to a shared object and dynlinked (see lib/codegen; falls back to
   closures with a warning when emission or the toolchain is
   unavailable). *)
type eval_mode = Closure | Tape | Native

let eval_mode_name = function
  | Closure -> "closure"
  | Tape -> "tape"
  | Native -> "native"

(* Optimization level of the IR middle end (see Opt in lib/opt) and of
   the matching executor schedules:
   O0 — naive lowering: one pool region / kernel launch per IR loop (one
        launch per band on the device);
   O1 — CPU loop fusion, dead-assign elimination, transfer coalescing;
   O2 — O1 plus band-batched kernel launches and loop-invariant H2d
        hoisting on the device path. *)
type opt_level = O0 | O1 | O2

let opt_level_name = function O0 -> "0" | O1 -> "1" | O2 -> "2"

let opt_level_of_string s =
  match String.trim s with
  | "0" | "O0" | "o0" -> Ok O0
  | "1" | "O1" | "o1" -> Ok O1
  | "2" | "O2" | "o2" -> Ok O2
  | s -> Error (Printf.sprintf "bad optimization level %S (expected 0|1|2)" s)
