(* Solver configuration enumerations, mirroring the DSL's script options. *)

type solver_type =
  | FV (* finite volume — the method used throughout the paper *)
  | FE (* finite element — accepted, but code generation targets FV *)

type time_stepper =
  | Euler_explicit
  | RK2 (* explicit midpoint; an "extension" stepper beyond the paper *)
  | RK4
  | Euler_point_implicit
    (* source term linearized (via symbolic differentiation) and treated
       implicitly, advection explicit: removes the stiff relaxation-rate
       bound on dt (extension) *)

let stepper_stages = function
  | Euler_explicit | Euler_point_implicit -> 1
  | RK2 -> 2
  | RK4 -> 4

let stepper_name = function
  | Euler_explicit -> "EULER_EXPLICIT"
  | RK2 -> "RK2"
  | RK4 -> "RK4"
  | Euler_point_implicit -> "EULER_POINT_IMPLICIT"

type bc_kind =
  | Flux      (* prescribes the boundary flux (possibly via callback) *)
  | Dirichlet (* prescribes the ghost/boundary value *)

let bc_kind_name = function Flux -> "FLUX" | Dirichlet -> "DIRICHLET"

(* Parallel execution strategies explored in the paper (Section III-C/D),
   plus the shared-memory pool and MPI+threads hybrid extensions. *)
type strategy =
  | Serial
  | Cell_parallel of int  (* mesh partitioned into n pieces *)
  | Band_parallel of int  (* equation index space partitioned into n pieces *)
  | Threaded of int       (* shared-memory domain pool over cell ranges *)
  | Hybrid of int * int
    (* band-parallel ranks x pool domains per rank: each SPMD rank owns a
       band slice and sweeps its cells on a shared persistent domain pool
       (the paper's MPI+threads hybrid) *)

type target =
  | Cpu of strategy
  | Gpu of { spec : Gpu_sim.Spec.t; ranks : int }
    (* ranks > 1: band-parallel across multiple devices, one CPU process
       per device, as in the paper's multi-GPU experiments *)

let target_name = function
  | Cpu Serial -> "cpu-serial"
  | Cpu (Cell_parallel n) -> Printf.sprintf "cpu-cells-%d" n
  | Cpu (Band_parallel n) -> Printf.sprintf "cpu-bands-%d" n
  | Cpu (Threaded n) -> Printf.sprintf "cpu-threads-%d" n
  | Cpu (Hybrid (r, d)) -> Printf.sprintf "cpu-hybrid-%dx%d" r d
  | Gpu { spec; ranks } -> Printf.sprintf "gpu-%s-%d" spec.Gpu_sim.Spec.name ranks

(* How the equation's right-hand sides are executed: as a compiled closure
   tree, or as a flat register tape with common-subexpression elimination
   and loop-invariant caching (see Eval). *)
type eval_mode = Closure | Tape

let eval_mode_name = function Closure -> "closure" | Tape -> "tape"
