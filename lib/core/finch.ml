(** The [Finch] facade — the library's public surface.

    Alongside the classic module tree (re-exported below: {!Problem},
    {!Solve}, {!Config}, ...), this root module defines the request/result
    API that external entry points use: one {!Solve_request.t} record in,
    one {!Solve_result.t} out.  Callers no longer hand-wire
    [Problem.set_*] mutations; they describe the solve as data and the
    facade prepares, runs and packages it — attaching a trace id, a
    per-request span on the ["serve"] trace track, a wall-clock latency
    and the metrics-counter deltas the run produced.

    Scenario constructors live outside this library (the BTE physics
    layer depends on [finch], not the reverse), so scenarios arrive
    through {!register_scenario}: [Bte.Setup.register_scenarios ()]
    installs ["hotspot"] and ["corner"].  [Solve.solve] remains the
    internal engine underneath. *)

module Config = Config
module Dataflow = Dataflow
module Emit_source = Emit_source
module Entity = Entity
module Eval = Eval
module Ir = Ir
module Json = Json
module Lower = Lower
module Operators = Operators
module Problem = Problem
module Solve = Solve
module Solve_request = Solve_request
module Target_cpu = Target_cpu
module Target_gpu = Target_gpu
module Transform = Transform

(** Why a request was not solved. *)
module Solve_error = struct
  type t =
    | Invalid_request of string
      (** the record failed {!Solve_request.validate} *)
    | Unknown_scenario of string
      (** no constructor registered under this name *)
    | Engine_failure of string
      (** the solver raised; the message carries the exception text *)

  let to_string = function
    | Invalid_request m -> "invalid request: " ^ m
    | Unknown_scenario s ->
      Printf.sprintf "unknown scenario %S (registered: %s)" s
        "see Finch.scenario_names"
    | Engine_failure m -> "engine failure: " ^ m
end

(** What a solved request returns: the primary solution field plus the
    run's observability payload. *)
module Solve_result = struct
  type t = {
    solution : Fvm.Field.t;  (** the scenario's primary field (e.g. [T]) *)
    solution_name : string;  (** its name in [outcome.fields] *)
    breakdown : Prt.Breakdown.t;  (** per-phase wall-clock split *)
    metrics : (string * int) list;
      (** counter deltas attributable to this solve (sorted by name,
          zero-delta entries dropped) *)
    trace_id : string;  (** e.g. ["req-42"], also the trace span name *)
    wall_s : float;  (** submit-to-done wall seconds *)
    outcome : Solve.outcome;  (** full engine outcome, for power users *)
  }
end

(* ------------------------------------------------------------------ *)
(* scenario registry                                                  *)

type prepared = {
  pr_problem : Problem.t;
  pr_post_io : Dataflow.callback_io option;
      (** callback read/write sets for the analyzer and GPU planner *)
  pr_band_index : string option;  (** index split by band-parallel runs *)
  pr_solution : string;  (** name of the primary solution field *)
}

let scenario_registry : (string, Solve_request.t -> prepared) Hashtbl.t =
  Hashtbl.create 8

(* When on, scenario constructors may memoize pure sub-builds (material
   dispersion, angular quadrature, equilibrium tables) across requests
   with identical inputs — bit-identical by construction, since the same
   inputs produce the same tables.  The serve scheduler switches this
   with its cache setting so the unbatched baseline keeps today's
   cold-build-per-request behaviour. *)
let scenario_cache = ref false

let set_scenario_cache on = scenario_cache := on
let scenario_cache_enabled () = !scenario_cache

let register_scenario name build = Hashtbl.replace scenario_registry name build

let scenario_names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) scenario_registry []
  |> List.sort compare

let prepare (req : Solve_request.t) : (prepared, Solve_error.t) result =
  match Solve_request.validate req with
  | Error m -> Error (Solve_error.Invalid_request m)
  | Ok () when req.Solve_request.backend = Config.Auto ->
    (* lowering and the executors have no notion of "auto": the tuner
       (finch_tune) must have replaced it with a concrete plan by now *)
    Error
      (Solve_error.Invalid_request
         "backend auto must be resolved by the tuner before prepare")
  | Ok () ->
    (match Hashtbl.find_opt scenario_registry req.Solve_request.scenario with
     | None -> Error (Solve_error.Unknown_scenario req.Solve_request.scenario)
     | Some build ->
       (match build req with
        | prep ->
          let p = prep.pr_problem in
          Problem.set_target p req.Solve_request.backend;
          Problem.set_eval_mode p req.Solve_request.eval_mode;
          Problem.set_opt_level p req.Solve_request.opt_level;
          Problem.set_overlap p req.Solve_request.overlap;
          Ok prep
        | exception e ->
          Error (Solve_error.Engine_failure (Printexc.to_string e))))

(* ------------------------------------------------------------------ *)
(* request execution                                                  *)

let trace_counter = Atomic.make 0
let fresh_trace_id () = Printf.sprintf "req-%d" (Atomic.fetch_and_add trace_counter 1)
let serve_track () = Prt.Trace.track "serve"

let metrics_delta before after =
  (* [after] may contain names absent from [before]; treat those as
     starting at zero.  Drop zero deltas to keep results readable. *)
  List.filter_map
    (fun (name, v1) ->
      let v0 =
        match List.assoc_opt name before with Some v -> v | None -> 0
      in
      if v1 - v0 <> 0 then Some (name, v1 - v0) else None)
    after

let solve_prepared ?trace_id (req : Solve_request.t) (prep : prepared) :
    (Solve_result.t, Solve_error.t) result =
  let trace_id = match trace_id with Some t -> t | None -> fresh_trace_id () in
  let before = Prt.Metrics.counter_values () in
  let t0 = Unix.gettimeofday () in
  match
    Solve.solve ?band_index:prep.pr_band_index ?post_io:prep.pr_post_io
      prep.pr_problem
  with
  | outcome ->
    let t1 = Unix.gettimeofday () in
    let label =
      match req.Solve_request.label with
      | Some l -> Printf.sprintf "%s (%s)" trace_id l
      | None -> trace_id
    in
    Prt.Trace.complete (serve_track ()) ~cat:"serve" label ~t0 ~t1;
    let solution =
      match List.assoc_opt prep.pr_solution outcome.Solve.fields with
      | Some f -> f
      | None -> outcome.Solve.u
    in
    Ok
      { Solve_result.solution;
        solution_name = prep.pr_solution;
        breakdown = outcome.Solve.breakdown;
        metrics = metrics_delta before (Prt.Metrics.counter_values ());
        trace_id;
        wall_s = t1 -. t0;
        outcome }
  | exception e -> Error (Solve_error.Engine_failure (Printexc.to_string e))

let solve (req : Solve_request.t) : (Solve_result.t, Solve_error.t) result =
  match prepare req with
  | Error e -> Error e
  | Ok prep -> solve_prepared req prep
