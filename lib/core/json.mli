(** Minimal JSON values for the request/result wire surface.

    The repo deliberately avoids external JSON dependencies; this module
    provides just enough — a value type, a printer and a recursive-descent
    parser — for {!Solve_request} round-trips and the BENCH emitters.
    Numbers are kept as [float] (JSON has one number type); object member
    order is preserved by the printer. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize a value.  [indent > 0] pretty-prints with that many spaces
    per nesting level; the default [0] emits a compact single line.
    Strings are escaped per RFC 8259; integral floats print without a
    fractional part. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  [Error msg] carries a byte offset
    and a description on malformed input; trailing garbage after the
    top-level value is an error. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value bound to [k], if any; [None] for
    non-objects. *)

val to_num : t -> (float, string) result
(** Extract a number, with a descriptive error otherwise. *)

val to_int : t -> (int, string) result
(** Extract a number that is an exact integer. *)

val to_str : t -> (string, string) result
(** Extract a string, with a descriptive error otherwise. *)

val to_bool : t -> (bool, string) result
(** Extract a boolean, with a descriptive error otherwise. *)
