(** CPU code-generation target: serial, band-parallel (equation-
    partitioned) and cell-parallel (mesh-partitioned) executors, plus a
    shared-memory variant on OCaml domains.

    The distributed strategies run as SPMD rank programs under [Prt.Spmd]
    (deterministic in-process message passing) and are therefore
    comparable DOF-for-DOF with the serial executor — the double-buffered
    explicit scheme makes all of them produce identical results. *)

exception Target_error of string

type result = {
  states : Lower.state array; (** one per rank; index 0 for serial *)
  breakdown : Prt.Breakdown.t;
}

val primary : result -> Lower.state

val gather_unknown : result -> Fvm.Field.t
(** Reassemble the unknown from the ranks' owned cells / component
    ranges. *)

val noop_allreduce : float array -> unit

val step_serial : Lower.state -> unit
val run_serial : Problem.t -> result

val run_band_parallel : Problem.t -> index:string -> nranks:int -> result
(** Partition the given index's range across ranks; the post-step
    callback performs its cross-band reduction through [st_allreduce]. *)

val run_cell_parallel : ?overlap:bool -> Problem.t -> nranks:int -> result
(** RCB mesh partition with per-step halo exchange of the unknown.  With
    [~overlap:true] the exchange is split around the next step's sweep:
    ghost values travel as nonblocking [Prt.Spmd] messages while interior
    cells (whose stencils read no ghosts) are swept, and the frontier is
    swept after they land — bit-identical to the synchronous path (the
    default), with the per-step barriers removed. *)

val run_threaded :
  ?post_io:Dataflow.callback_io -> Problem.t -> ndomains:int -> result
(** Shared-memory parallel sweep over cell ranges on a persistent
    [Prt.Pool] of OCaml domains (spawned once per solve); each domain has
    its own env/closures, fields are shared.  Per-worker breakdown
    counters are aggregated into the result like the SPMD executors.

    At [opt_level >= O1] and when {!fused_schedule_ok} holds, two
    timesteps are fused into one pool region with a single internal
    barrier (the commit becomes a buffer-role swap), halving
    [pool.regions] and [pool.barrier_waits]; bit-identical to the classic
    schedule.  [post_io] declares the post-step callbacks' reads/writes
    for the legality check — without it, problems with post-steps keep
    the classic schedule. *)

val fused_schedule_ok : ?post_io:Dataflow.callback_io -> Problem.t -> bool
(** Whether the fused step-pair schedule is legal for this problem:
    [opt_level >= O1], forward Euler, no pre-step callbacks, every
    expression boundary condition of the unknown closed (no entity
    references), and declared post-step writes neither the unknown nor
    any field the surface term reads at the neighbouring cell. *)

val make_parity : Lower.state -> Lower.state
(** The B-parity of a worker state: unknown binding moved onto the
    [u_new] storage and the double buffer onto the [u] storage, so a
    sweep of the parity state is the "odd" step of the fused schedule.
    Clock and step refs are shared with the worker. *)

val run_threaded_respawn : Problem.t -> ndomains:int -> result
(** The pre-pool executor, kept as a benchmark baseline: domains are
    spawned and joined twice per timestep. *)

val run_hybrid :
  Problem.t -> index:string -> nranks:int -> ndomains:int -> result
(** MPI+threads hybrid: band-parallel SPMD ranks whose sweeps run on a
    shared persistent domain pool over cell ranges. *)
