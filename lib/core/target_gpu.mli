(** Hybrid CPU/GPU code-generation target (paper Sec. II-B, Fig. 6).

    Per step: async interior kernel on the simulated device (one thread
    per DOF, flattened loops, boundary faces skipped) → CPU boundary
    callbacks overlapping it → synchronize, download, combine → host
    post-step → re-upload of the variables the data-movement plan marks
    as per-step device inputs. Kernels really execute on device buffers
    (distinct memory), so the numerics are testable against the CPU
    targets; timings come from the roofline model. *)

exception Gpu_error of string

type result = {
  state : Lower.state;         (** host-side state *)
  device : Gpu_sim.Memory.device;
  breakdown : Prt.Breakdown.t; (** modelled GPU/transfers + real CPU time *)
  plan : Dataflow.plan;
  profile_threads : int;       (** grid size, for the profiler report *)
}

val run_single :
  ?post_io:Dataflow.callback_io -> ?info:Lower.rankinfo ->
  ?allreduce:(float array -> unit) -> ?overlap:bool -> spec:Gpu_sim.Spec.t ->
  Problem.t -> result
(** One (device, rank) pair; [info] restricts it to a band slice.  With
    [~overlap:true] the per-step transfers run on a second (copy) stream
    against a double-buffered unknown: the result download is enqueued
    behind the kernel and overlaps the boundary host work, next-step
    uploads stay in flight until the following launch joins them.
    Numerics are bit-identical; only the modelled timeline and the
    Communication share of the breakdown change. *)

val run_multi :
  ?post_io:Dataflow.callback_io -> ?overlap:bool -> spec:Gpu_sim.Spec.t ->
  ranks:int -> Problem.t -> result * result array
(** Band-partitioned multi-device run under the SPMD runtime; the first
    component has rank 0's state with the gathered unknown and the summed
    breakdown. *)

val run : ?post_io:Dataflow.callback_io -> Problem.t -> result
(** Dispatch on the problem's GPU target (ranks <= 1: single device).
    Raises {!Gpu_error} if the target is not a GPU. *)
