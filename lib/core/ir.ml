(* Intermediate representation: a computational graph describing the
   generated program at an abstract level, with metadata and comment nodes
   ("unlike other such graphs, this IR also includes metadata about the
   parts of the computation and comment nodes to facilitate generation of
   easily readable code").

   The IR stays target-independent: loops are symbolic (over cells, faces
   of a cell, or a named index), and device placement/communication nodes
   express the hybrid structure without committing to CUDA specifics.
   [Emit_source] renders it as readable Julia-like or CUDA-like code;
   [Dataflow] analyses it; the executors mirror its structure. *)

open Finch_symbolic

type phase = Ph_intensity | Ph_temperature | Ph_communication | Ph_boundary

type meta = {
  m_comment : string option;
  m_phase : phase option;
  m_flops : float; (* per innermost iteration, 0 when not annotated *)
}

let meta ?comment ?phase ?(flops = 0.) () =
  { m_comment = comment; m_phase = phase; m_flops = flops }

type loop_range =
  | Cells
  | Faces_of_cell
  | Index of string  (* a declared index, e.g. directions or bands *)
  | Steps            (* the time loop *)

type node =
  | Comment of string
  | Seq of node list
  | Loop of { range : loop_range; body : node list; parallel : bool }
  | Assign of {
      dest : string;            (* variable name *)
      dest_new : bool;          (* write the double buffer *)
      expr : Expr.t;            (* scalar expression per iteration *)
      reduce : [ `Set | `Add ];
      note : meta;
    }
  | Flux_update of {
      var : string;             (* conservation-form fused update *)
      rvol : Expr.t;
      rsurf : Expr.t;
      note : meta;
    }
  | Boundary_cpu of { var : string; note : meta }
  | Callback of { which : [ `Pre | `Post ]; note : meta }
  | Swap_buffers of string
  | Halo_exchange of { vars : string list; note : meta }
  | Allreduce of { what : string; vars : string list; note : meta }
  | Kernel of { kname : string; body : node list; note : meta }
  | H2d of { vars : string list; every_step : bool }
  | D2h of { vars : string list; every_step : bool }
  | D2d of { vars : string list; note : meta }
    (* multi-device ghost push: owner devices peer-copy the listed
       variables' tile-frontier cells into their neighbours' ghost
       regions (NVLink within a node, host-staged across) *)
  | Stream_sync
  | Advance_time

(* Fold over all nodes (pre-order). *)
let rec fold f acc n =
  let acc = f acc n in
  match n with
  | Seq ns | Loop { body = ns; _ } | Kernel { body = ns; _ } ->
    List.fold_left (fold f) acc ns
  | Comment _ | Assign _ | Flux_update _ | Boundary_cpu _ | Callback _
  | Swap_buffers _ | Halo_exchange _ | Allreduce _ | H2d _ | D2h _ | D2d _
  | Stream_sync | Advance_time -> acc

(* Variables read / written by a node tree, for the dataflow and static
   analyses.  Every constructor that touches named storage contributes:
   communication and transfer nodes both read their source copy and write
   their destination copy of each listed variable (the name spaces are
   collapsed — host/device/ghost copies share the variable's name), and
   [Swap_buffers v] consumes v's double buffer to publish v.  Callback
   nodes are opaque: their reads/writes are declared by the problem (see
   [Dataflow.callback_io]). *)
let writes tree =
  fold
    (fun acc n ->
      match n with
      | Assign { dest; _ } | Flux_update { var = dest; _ }
      | Boundary_cpu { var = dest; _ } | Swap_buffers dest -> dest :: acc
      | Halo_exchange { vars; _ }   (* ghost regions overwritten *)
      | Allreduce { vars; _ }       (* reduced in place on every rank *)
      | H2d { vars; _ }             (* device copies refreshed *)
      | D2h { vars; _ }             (* host copies refreshed *)
      | D2d { vars; _ }             (* peer ghost regions overwritten *)
        -> vars @ acc
      | Comment _ | Seq _ | Loop _ | Kernel _ | Callback _ | Stream_sync
      | Advance_time -> acc)
    [] tree
  |> List.sort_uniq compare

let reads tree =
  fold
    (fun acc n ->
      match n with
      | Assign { expr; _ } -> Expr.ref_names expr @ acc
      | Flux_update { rvol; rsurf; var; _ } ->
        (var :: Expr.ref_names rvol) @ Expr.ref_names rsurf @ acc
      | Boundary_cpu { var; _ }   (* boundary closures read the field *)
      | Swap_buffers var          (* consumes the staged double buffer *)
        -> var :: acc
      | Halo_exchange { vars; _ } (* owned frontier values are packed *)
      | Allreduce { vars; _ }     (* local contributions enter the sum *)
      | H2d { vars; _ }           (* host copies are the transfer source *)
      | D2h { vars; _ }           (* device copies are the transfer source *)
      | D2d { vars; _ }           (* owners' frontier values are packed *)
        -> vars @ acc
      | Comment _ | Seq _ | Loop _ | Kernel _ | Callback _ | Stream_sync
      | Advance_time -> acc)
    [] tree
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Building the IR for a configured problem.                           *)
(* ------------------------------------------------------------------ *)

(* The per-DOF loop nest in the configured assembly order.  [loop_order]
   entries are index names plus the pseudo-entry "elements"/"cells";
   default order is cells outermost then declared indices ("the default
   choice of an outermost cell loop"). *)
let dof_loops (p : Problem.t) inner =
  let order =
    match p.Problem.loop_order with
    | Some o -> o
    | None ->
      "elements"
      :: List.map (fun i -> i.Entity.iname) p.Problem.indices
  in
  List.fold_right
    (fun name body ->
      let range =
        if name = "elements" || name = "cells" then Cells else Index name
      in
      [ Loop { range; body; parallel = range = Cells } ])
    order inner

let step_body (p : Problem.t) (eq : Transform.equation) =
  let cost =
    (Eval.cost eq.Transform.rvol).Eval.flops
    +. (4. *. (Eval.cost eq.Transform.rsurf).Eval.flops)
  in
  let update =
    Flux_update
      {
        var = eq.Transform.eq_var;
        rvol = eq.Transform.rvol;
        rsurf = eq.Transform.rsurf;
        note =
          meta ~comment:"conservation-form update: u += dt*(source - flux)"
            ~phase:Ph_intensity ~flops:cost ();
      }
  in
  dof_loops p [ update ]

(* CPU program: sequential or rank-local body of an SPMD program. *)
let build_cpu (p : Problem.t) =
  let eq = Problem.the_equation p in
  let strategy =
    match p.Problem.target with
    | Config.Cpu s -> s
    | Config.Gpu _ -> Config.Serial
    | Config.Auto -> invalid_arg "Ir.build_cpu: unresolved auto target"
  in
  let comm =
    match strategy with
    | Config.Serial -> []
    | Config.Threaded _ ->
      (* shared memory: the pool barrier replaces explicit communication *)
      []
    | Config.Cell_parallel _ ->
      [ Halo_exchange
          {
            vars = [ eq.Transform.eq_var ];
            note = meta ~comment:"neighbour values along partition interfaces"
                     ~phase:Ph_communication ();
          } ]
    | Config.Band_parallel _ | Config.Hybrid _ ->
      [ Allreduce
          {
            what = "cell energy (band reduction for the temperature update)";
            vars = [ eq.Transform.eq_var ];
            note = meta ~phase:Ph_communication ();
          } ]
  in
  let body =
    [ Comment "interior + boundary update of the unknown" ]
    @ step_body p eq
    @ [ Boundary_cpu
          { var = eq.Transform.eq_var;
            note = meta ~comment:"user-supplied boundary callbacks" ~phase:Ph_boundary () };
        Swap_buffers eq.Transform.eq_var ]
    @ comm
    @ (if p.Problem.post_step <> [] then
         [ Callback { which = `Post; note = meta ~comment:"post-step user code (temperature update)" ~phase:Ph_temperature () } ]
       else [])
    @ [ Advance_time ]
  in
  Seq [ Loop { range = Steps; body; parallel = false } ]

(* Hybrid CPU/GPU program (paper Fig. 6): interior kernel on the device,
   boundary callback on the host overlapping it, combine, post-step on the
   host, re-upload mutable inputs. *)
let build_gpu (p : Problem.t) ~(transfers : (string * bool) list) =
  let eq = Problem.the_equation p in
  let every_step = List.filter_map (fun (v, e) -> if e then Some v else None) transfers in
  let once = List.filter_map (fun (v, e) -> if not e then Some v else None) transfers in
  let kernel_body =
    [ Comment "one thread per degree of freedom; flattened loops";
      Flux_update
        {
          var = eq.Transform.eq_var;
          rvol = eq.Transform.rvol;
          rsurf = eq.Transform.rsurf;
          note =
            meta ~comment:"interior conservation-form update" ~phase:Ph_intensity
              ~flops:
                ((Eval.cost eq.Transform.rvol).Eval.flops
                 +. (4. *. (Eval.cost eq.Transform.rsurf).Eval.flops))
              ();
        } ]
  in
  (* The unbatched (O0) shape launches one kernel per value of every
     index beyond the first: a cells×dirs slab per band instead of one
     batched cells×dirs×bands launch.  O1/O2 (and problems with at most
     one declared index, where the two shapes coincide) keep the single
     batched kernel; Opt.batch_band_kernels rewrites the O0 shape into
     the batched one and Target_gpu mirrors the same split. *)
  let uvar_indices =
    match Problem.find_variable p eq.Transform.eq_var with
    | Some v -> v.Entity.vindices
    | None -> []
  in
  let interior =
    let kernel =
      Kernel
        { kname = eq.Transform.eq_var ^ "_interior_kernel";
          body = kernel_body;
          note = meta ~comment:"launched asynchronously" ~phase:Ph_intensity () }
    in
    match p.Problem.opt_level, uvar_indices with
    | Config.O0, _ :: (_ :: _ as outer) ->
      List.fold_right
        (fun (i : Entity.index) body ->
          [ Loop { range = Index i.Entity.iname; body; parallel = false } ])
        outer [ kernel ]
      |> List.hd
    | _ -> kernel
  in
  (* multi-device targets push tile-frontier ghosts device-to-device
     after the owners' fresh per-step upload *)
  let ghost_push =
    match p.Problem.target with
    | Config.Gpu { devices; _ } when devices > 1 ->
      [ D2d
          { vars = [ eq.Transform.eq_var ];
            note =
              meta
                ~comment:
                  "peer-copy tile-frontier ghosts between devices (NVLink)"
                ~phase:Ph_communication () } ]
    | _ -> []
  in
  let body =
    [ interior;
      Boundary_cpu
        { var = eq.Transform.eq_var;
          note = meta ~comment:"computed on the CPU while the kernel runs" ~phase:Ph_boundary () };
      Stream_sync;
      D2h { vars = [ eq.Transform.eq_var ]; every_step = true };
      Comment "combine interior and boundary contributions";
      Swap_buffers eq.Transform.eq_var;
      Callback { which = `Post; note = meta ~comment:"post-step user code on the host" ~phase:Ph_temperature () };
      H2d { vars = every_step; every_step = true } ]
    @ ghost_push
    @ [ Advance_time ]
  in
  Seq
    [ Comment "one-time uploads (initial values of every device input)";
      (* the executor mirrors every device input once before the loop, so
         the initial upload covers the every-step variables too — their
         first kernel read happens before the first per-step H2d *)
      H2d { vars = once @ every_step; every_step = false };
      Loop { range = Steps; body; parallel = false } ]
