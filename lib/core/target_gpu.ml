(* Hybrid CPU/GPU code-generation target (paper Section II-B and Fig. 6).

   Per time step the generated program:
     1. launches the interior-update kernel asynchronously on the device
        (one thread per degree of freedom, loops flattened);
     2. computes the boundary contributions on the CPU with the
        user-supplied callbacks, overlapping the kernel;
     3. synchronizes, downloads the interior result, and combines it with
        the boundary part on the host;
     4. runs the post-step user code (the BTE temperature update) on the
        host;
     5. uploads the variables the device needs fresh next step, as decided
        by the data-movement analysis ([Dataflow]).

   The device is the [Gpu_sim] simulator: kernels really execute (on device
   buffers that are genuinely distinct memory), and their timing comes from
   the roofline model, so both numerics and the communication/compute
   balance are exercised. *)

exception Gpu_error of string

type result = {
  state : Lower.state;               (* host-side state *)
  device : Gpu_sim.Memory.device;
  breakdown : Prt.Breakdown.t;       (* modelled GPU/transfer + real CPU time *)
  plan : Dataflow.plan;
  profile_threads : int;             (* grid size used for profiling *)
}

(* single-device hybrid run; [info] restricts the rank to a band slice in
   multi-device configurations.  [overlap] routes the per-step transfers
   through a second (copy) stream against double-buffered unknown storage:
   the download of each step's result is enqueued behind the kernel and
   overlaps the boundary host work, uploads for the next step stay in
   flight until the next launch joins them.  Data effects are immediate in
   the simulator, so results are bit-identical; only the modelled timeline
   and the Communication accounting change. *)
let run_single ?post_io ?(info = Lower.serial_rankinfo)
    ?(allreduce = Target_cpu.noop_allreduce) ?(overlap = false) ~spec
    (p : Problem.t) =
  let host = Lower.build ~info p in
  let mesh = host.Lower.mesh in
  let ncells = mesh.Fvm.Mesh.ncells in
  let ncomp = Fvm.Field.ncomp host.Lower.u in
  let plan = Dataflow.plan_for_problem ?post_io p in
  let dev = Gpu_sim.Memory.create_device spec in
  let clock = Gpu_sim.Stream.create_clock () in
  let stream = Gpu_sim.Stream.create dev in
  (* Device mirrors for every variable the kernel touches, plus the double
     buffer for the unknown.  Coefficient arrays are compiled into the
     kernel closures directly (constant memory). *)
  let dev_fields =
    List.map
      (fun (name, f) ->
        let buf =
          Gpu_sim.Memory.alloc dev ~label:name ~size:(Fvm.Field.size f)
        in
        let view =
          Fvm.Field.of_bigarray ~name ~ncells:(Fvm.Field.ncells f)
            ~ncomp:(Fvm.Field.ncomp f) buf.Gpu_sim.Memory.device_data
        in
        name, (buf, view))
      host.Lower.fields
  in
  (* the unknown's device double buffer: one buffer synchronously, two
     alternating by step parity when transfers are overlapped (so a
     download of step N's result may still be in flight at step N+1's
     launch) *)
  let nbuf = if overlap then 2 else 1 in
  let u_new_bufs =
    Array.init nbuf (fun i ->
        Gpu_sim.Memory.alloc dev
          ~label:(if i = 0 then "u_new" else "u_new.alt")
          ~size:(Fvm.Field.size host.Lower.u_new))
  in
  (* device-bound states: same problem, env and closures compiled against
     the device field views, one per unknown buffer *)
  let dev_only = List.map (fun (n, (_, v)) -> n, v) dev_fields in
  let dstates =
    Array.map
      (fun (buf : Gpu_sim.Memory.buffer) ->
        let view =
          Fvm.Field.of_bigarray ~name:"u_new" ~ncells ~ncomp
            buf.Gpu_sim.Memory.device_data
        in
        Lower.rebind host ~fields:dev_only ~u_new:view)
      u_new_bufs
  in
  let dstate = dstates.(0) in
  (* kernel: one thread per DOF, interior faces only (boundary contributions
     are the CPU's job) *)
  let interior_cost =
    let open Eval in
    let cv = cost host.Lower.eq.Transform.rvol
    and cs = cost host.Lower.eq.Transform.rsurf in
    (* per-thread flops: volume part + one flux per face (quad mesh: 4);
       the factor on top accounts for index arithmetic and predication in
       real generated PTX *)
    let nfaces_per_cell = float_of_int (Array.length mesh.Fvm.Mesh.cell_faces.(0)) in
    let flops = (cv.flops +. (nfaces_per_cell *. cs.flops)) *. 4.0 in
    (* effective DRAM traffic per thread: the unknown in and out plus a
       cache-amortized share of neighbour and coefficient data *)
    let dram = 8. *. (2. +. (0.25 *. float_of_int (cv.loads + cs.loads))) in
    { Gpu_sim.Kernel.flops_per_thread = flops; dram_bytes_per_thread = dram }
  in
  (* the owned component slice: full range for a single device, a band
     slice per rank in multi-device runs.  The flattened thread space
     covers cells x owned components, as the paper's "flatten all of the
     loops and distribute each degree of freedom to separate threads". *)
  let nd =
    match host.Lower.uvar.Entity.vindices with
    | first :: _ -> Entity.index_extent first
    | [] -> 1
  in
  let owned_comps =
    match info.Lower.index_ranges with
    | [] -> Array.init ncomp (fun c -> c)
    | (_, (off, len)) :: _ ->
      (* the partitioned index is the unknown's second (slow) index *)
      Array.init (len * nd) (fun i -> (off * nd) + i)
  in
  let n_owned = Array.length owned_comps in
  let nthreads = ncells * n_owned in
  (* Launch batching (the IR-level Opt.batch_band_kernels rewrite,
     mirrored here): O1/O2 launch ONE batched cells×dirs×bands kernel per
     step; O0 keeps the naive per-band shape — one cells×dirs launch per
     owned slow-index value, each paying the modelled launch overhead.
     Per-DOF updates are independent, so any split of the thread space is
     bit-identical; with at most one declared index the shapes coincide. *)
  let comp_chunks =
    match p.Problem.opt_level with
    | Config.O0 when n_owned > nd && n_owned mod nd = 0 ->
      Array.init (n_owned / nd) (fun k -> Array.sub owned_comps (k * nd) nd)
    | _ -> [| owned_comps |]
  in
  let make_kernel (dstate : Lower.state) (chunk : int array) =
    let n_chunk = Array.length chunk in
    Gpu_sim.Kernel.make ~name:"interior_update" ~cost:interior_cost (fun tid ->
        let cell = tid / n_chunk and slot = tid mod n_chunk in
        let comp = chunk.(slot) in
        let env = dstate.Lower.env in
        env.Eval.cell <- cell;
        Lower.set_ivals_of_comp dstate comp;
        let v =
          Fvm.Field.get dstate.Lower.u cell comp
          +. (!(dstate.Lower.dt) *. Lower.dof_rhs_interior dstate)
        in
        Fvm.Field.set dstate.Lower.u_new cell comp v)
  in
  (* per unknown buffer: one kernel per chunk *)
  let kernels =
    Array.map (fun ds -> Array.map (make_kernel ds) comp_chunks) dstates
  in
  let launch_step stream (parity : int) =
    Array.iteri
      (fun i k ->
        Gpu_sim.Stream.kernel stream clock k
          ~nthreads:(ncells * Array.length comp_chunks.(i)) ())
      kernels.(parity)
  in
  (* boundary contribution accumulator on the host *)
  let u_bdry = Fvm.Field.create ~name:"u_bdry" ~ncells ~ncomp () in
  let b = host.Lower.breakdown in
  (* host-side phase spans: the main track for a single-device run, the
     rank's track when driven as an SPMD fiber (multi-device) *)
  let track =
    if info.Lower.nranks > 1 then Prt.Trace.rank info.Lower.rank
    else Prt.Trace.main
  in
  (* one-time uploads: everything the kernel reads *)
  List.iter
    (fun (name, (buf, _)) ->
      ignore name;
      let hf = List.assoc name host.Lower.fields in
      Prt.Breakdown.record b Prt.Breakdown.Communication
        (Gpu_sim.Memory.h2d dev buf (Fvm.Field.raw hf)))
    dev_fields;
  let kernel_time_seen = ref 0. in
  let every_step_h2d =
    List.filter_map
      (fun tr ->
        if tr.Dataflow.tr_h2d_every_step then Some tr.Dataflow.tr_var else None)
      plan.Dataflow.transfers
  in
  let combine_boundary () =
    for cell = 0 to ncells - 1 do
      Array.iter
        (fun comp ->
          let v =
            Fvm.Field.get host.Lower.u_new cell comp
            +. Fvm.Field.get u_bdry cell comp
          in
          Fvm.Field.set host.Lower.u cell comp v)
        owned_comps
    done
  in
  (* Sanitizer hook: in sanitize mode device buffers start NaN-poisoned
     (Memory.alloc), so a kernel reading a variable the transfer schedule
     never uploaded yields poisoned results.  After each combine, scan the
     owned slice of the unknown the step just produced — only owned comps:
     in multi-rank runs the downloaded u_new legitimately carries poison in
     comps this rank never computes. *)
  let sanitize_scan () =
    if Fvm.Field.sanitize_enabled () then begin
      let n = ref 0 in
      for cell = 0 to ncells - 1 do
        Array.iter
          (fun comp ->
            if Fvm.Field.is_poison (Fvm.Field.get host.Lower.u cell comp)
            then incr n)
          owned_comps
      done;
      Fvm.Field.record_poison !n
    end
  in
  if overlap then begin
    (* Overlapped schedule on two streams.  Host phases are real time;
       advancing the modelled clock by their measured duration lets the
       copy stream's transfers hide behind them on the modelled timeline,
       and Communication is charged only what the host work did not
       hide. *)
    let copy = Gpu_sim.Stream.create dev in
    let timed_host cat f =
      let t0 = Unix.gettimeofday () in
      let r = Prt.Breakdown.timed ~track b cat f in
      clock.Gpu_sim.Stream.now <-
        clock.Gpu_sim.Stream.now +. (Unix.gettimeofday () -. t0);
      r
    in
    for step = 0 to p.Problem.nsteps - 1 do
      let parity = step mod nbuf in
      Lower.run_pre_step host ~allreduce;
      (* 1. async kernel launch, ordered after the uploads still in
         flight on the copy stream; any residual upload time delays the
         launch and is charged as communication.  The kernel mutates the
         device state's env directly (outside iterate_dofs), so
         invalidate its tape caches: device fields changed since the
         last launch. *)
      let lag =
        Float.max 0.
          (copy.Gpu_sim.Stream.tail
           -. Float.max clock.Gpu_sim.Stream.now stream.Gpu_sim.Stream.tail)
      in
      if lag > 0. then Prt.Breakdown.record b Prt.Breakdown.Communication lag;
      Gpu_sim.Stream.join stream copy;
      Eval.bump_epoch dstates.(parity).Lower.env;
      launch_step stream parity;
      (* 2. download of this step's result, enqueued on the copy stream
         behind the kernel — in flight during the boundary host work *)
      Gpu_sim.Stream.join copy stream;
      Gpu_sim.Stream.d2h copy clock u_new_bufs.(parity)
        (Fvm.Field.raw host.Lower.u_new);
      (* 3. boundary contributions on the CPU, overlapping kernel and
         download *)
      timed_host Prt.Breakdown.Boundary (fun () ->
          Fvm.Field.fill u_bdry 0.;
          Lower.boundary_contributions host ~into:u_bdry);
      (* 4. drain: the kernel is charged at its roofline duration, the
         transfer only what the boundary work left exposed *)
      Prt.Breakdown.record b Prt.Breakdown.Intensity
        (dev.Gpu_sim.Memory.kernel_time -. !kernel_time_seen);
      kernel_time_seen := dev.Gpu_sim.Memory.kernel_time;
      Prt.Breakdown.record b Prt.Breakdown.Communication
        (Float.max 0.
           (copy.Gpu_sim.Stream.tail -. clock.Gpu_sim.Stream.now));
      Gpu_sim.Stream.synchronize copy clock;
      timed_host Prt.Breakdown.Intensity combine_boundary;
      sanitize_scan ();
      (* 5. post-step user code on the host *)
      timed_host Prt.Breakdown.Temperature (fun () ->
          Lower.run_post_step host ~allreduce);
      (* 6. uploads for the next step go out asynchronously; the next
         launch joins them *)
      List.iter
        (fun name ->
          match List.assoc_opt name dev_fields with
          | Some (buf, _) ->
            let hf = List.assoc name host.Lower.fields in
            Gpu_sim.Stream.h2d copy clock buf (Fvm.Field.raw hf)
          | None -> ())
        every_step_h2d;
      host.Lower.time := !(host.Lower.time) +. !(host.Lower.dt);
      incr host.Lower.step
    done;
    Gpu_sim.Stream.synchronize copy clock
  end
  else
    for _ = 1 to p.Problem.nsteps do
      Lower.run_pre_step host ~allreduce;
      (* 1. async kernel launch.  The kernel mutates the device state's env
         directly (outside iterate_dofs), so invalidate its tape caches
         here: device fields changed since the last launch. *)
      Eval.bump_epoch dstate.Lower.env;
      launch_step stream 0;
      (* 2. boundary contributions on the CPU, overlapping the kernel *)
      Prt.Breakdown.timed ~track b Prt.Breakdown.Boundary (fun () ->
          Fvm.Field.fill u_bdry 0.;
          Lower.boundary_contributions host ~into:u_bdry);
      (* 3. synchronize; download; combine *)
      Gpu_sim.Stream.synchronize stream clock;
      Prt.Breakdown.record b Prt.Breakdown.Intensity
        (dev.Gpu_sim.Memory.kernel_time -. !kernel_time_seen);
      kernel_time_seen := dev.Gpu_sim.Memory.kernel_time;
      Prt.Breakdown.record b Prt.Breakdown.Communication
        (Gpu_sim.Memory.d2h dev u_new_bufs.(0) (Fvm.Field.raw host.Lower.u_new));
      Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity combine_boundary;
      sanitize_scan ();
      (* 4. post-step user code on the host *)
      Prt.Breakdown.timed ~track b Prt.Breakdown.Temperature (fun () ->
          Lower.run_post_step host ~allreduce);
      (* 5. upload what the device needs fresh *)
      List.iter
        (fun name ->
          match List.assoc_opt name dev_fields with
          | Some (buf, _) ->
            let hf = List.assoc name host.Lower.fields in
            Prt.Breakdown.record b Prt.Breakdown.Communication
              (Gpu_sim.Memory.h2d dev buf (Fvm.Field.raw hf))
          | None -> ())
        every_step_h2d;
      host.Lower.time := !(host.Lower.time) +. !(host.Lower.dt);
      incr host.Lower.step
    done;
  { state = host; device = dev; breakdown = b; plan; profile_threads = nthreads }

(* Multi-device run: the paper's band-based partitioning across (device,
   rank) pairs.  Each rank owns a slice of the partitioned index (the
   unknown's slow index), drives its own simulated device, and joins the
   others in the temperature update's allreduce through the SPMD runtime.
   Results are gathered into rank 0's fields. *)
let run_multi ?post_io ?(overlap = false) ~spec ~ranks (p : Problem.t) =
  let band_index =
    match List.rev p.Problem.indices with
    | i :: _ -> i
    | [] -> raise (Gpu_error "multi-GPU run needs a partitioned index")
  in
  let extent = Entity.index_extent band_index in
  if ranks > extent then raise (Gpu_error "more GPU ranks than index values");
  let results = Array.make ranks None in
  Prt.Spmd.run ~nranks:ranks (fun rank ->
      let off, len =
        Fvm.Partition.block_range ~nitems:extent ~nparts:ranks rank
      in
      let info =
        { Lower.rank; nranks = ranks; owned_cells = None;
          index_ranges = [ band_index.Entity.iname, (off, len) ] }
      in
      let r =
        run_single ?post_io ~info ~allreduce:Prt.Spmd.allreduce_sum ~overlap
          ~spec p
      in
      results.(rank) <- Some r);
  let results =
    Array.map
      (function Some r -> r | None -> raise (Gpu_error "rank did not run"))
      results
  in
  (* gather the band slices into rank 0's unknown *)
  let r0 = results.(0) in
  let u0 = r0.state.Lower.u in
  Array.iter
    (fun (r : result) ->
      let st = r.state in
      Lower.iterate_dofs st (fun () ->
          let cell = st.Lower.env.Eval.cell in
          let c = st.Lower.ucomp () in
          Fvm.Field.set u0 cell c (Fvm.Field.get st.Lower.u cell c)))
    results;
  let breakdown =
    Prt.Breakdown.sum_distinct
      (Array.to_list (Array.map (fun r -> r.breakdown) results))
  in
  { r0 with breakdown }, results

(* ---- Multi-device grid target: G devices per rank x R ranks ---------

   The 2-D band x cell decomposition (Fvm.Decomp2d): each SPMD rank owns
   a contiguous band slice (exactly as [run_multi]) and drives [devices]
   simulated devices that tile the mesh by recursive coordinate
   bisection.  Per step, each device launches the interior kernel over
   its owned cells x the rank's owned components; the host computes
   boundaries, downloads each device's owned slice of the result,
   combines, runs the post-step callback, then uploads each device's
   owned slice of the fresh unknown and pushes ghost cells between
   devices with peer copies (simulated NVLink within a node, host
   staging across — see Gpu_sim.Topology).  Devices run concurrently, so
   kernel and transfer phases are charged at their per-step critical
   path (max over devices).  Data effects are immediate in the
   simulator and ghost values equal the host's fresh values, so results
   are bit-identical to the single-device target. *)

(* Stream-ordered partial transfers (see Memory.h2d_runs/d2h_runs). *)
let stream_h2d_runs (st : Gpu_sim.Stream.t) clock buf host ~runs =
  let dur = ref 0. in
  Gpu_sim.Stream.enqueue st clock ~dur:0. (fun () ->
      dur := Gpu_sim.Memory.h2d_runs st.Gpu_sim.Stream.device buf host ~runs);
  st.Gpu_sim.Stream.tail <- st.Gpu_sim.Stream.tail +. !dur

let stream_d2h_runs (st : Gpu_sim.Stream.t) clock buf host ~runs =
  let dur = ref 0. in
  Gpu_sim.Stream.enqueue st clock ~dur:0. (fun () ->
      dur := Gpu_sim.Memory.d2h_runs st.Gpu_sim.Stream.device buf host ~runs);
  st.Gpu_sim.Stream.tail <- st.Gpu_sim.Stream.tail +. !dur

(* One rank's share of the grid: [devices] devices with global ids
   [rank*devices ..], each owning one RCB cell tile of the rank's band
   slice. *)
let run_rank_grid ?post_io ?(info = Lower.serial_rankinfo)
    ?(allreduce = Target_cpu.noop_allreduce) ?(overlap = false) ~spec
    ~devices (p : Problem.t) =
  let host = Lower.build ~info p in
  let mesh = host.Lower.mesh in
  let ncells = mesh.Fvm.Mesh.ncells in
  let ncomp = Fvm.Field.ncomp host.Lower.u in
  let plan = Dataflow.plan_for_problem ?post_io p in
  let decomp =
    Fvm.Decomp2d.build mesh ~ndevices:devices ~nranks:info.Lower.nranks
  in
  let clock = Gpu_sim.Stream.create_clock () in
  let devs =
    Array.init devices (fun g ->
        Gpu_sim.Memory.create_device
          ~id:((info.Lower.rank * devices) + g)
          spec)
  in
  let streams = Array.map Gpu_sim.Stream.create devs in
  (* per-device mirrors of every variable the kernel touches *)
  let dev_fields =
    Array.map
      (fun dev ->
        List.map
          (fun (name, f) ->
            let buf =
              Gpu_sim.Memory.alloc dev ~label:name ~size:(Fvm.Field.size f)
            in
            let view =
              Fvm.Field.of_bigarray ~name ~ncells:(Fvm.Field.ncells f)
                ~ncomp:(Fvm.Field.ncomp f) buf.Gpu_sim.Memory.device_data
            in
            name, (buf, view))
          host.Lower.fields)
      devs
  in
  let nbuf = if overlap then 2 else 1 in
  let u_new_bufs =
    Array.mapi
      (fun _ dev ->
        Array.init nbuf (fun i ->
            Gpu_sim.Memory.alloc dev
              ~label:(if i = 0 then "u_new" else "u_new.alt")
              ~size:(Fvm.Field.size host.Lower.u_new)))
      devs
  in
  let dstates =
    Array.mapi
      (fun g bufs ->
        let dev_only = List.map (fun (n, (_, v)) -> n, v) dev_fields.(g) in
        Array.map
          (fun (buf : Gpu_sim.Memory.buffer) ->
            let view =
              Fvm.Field.of_bigarray ~name:"u_new" ~ncells ~ncomp
                buf.Gpu_sim.Memory.device_data
            in
            Lower.rebind host ~fields:dev_only ~u_new:view)
          bufs)
      u_new_bufs
  in
  let interior_cost =
    let open Eval in
    let cv = cost host.Lower.eq.Transform.rvol
    and cs = cost host.Lower.eq.Transform.rsurf in
    let nfaces_per_cell =
      float_of_int (Array.length mesh.Fvm.Mesh.cell_faces.(0))
    in
    let flops = (cv.flops +. (nfaces_per_cell *. cs.flops)) *. 4.0 in
    let dram = 8. *. (2. +. (0.25 *. float_of_int (cv.loads + cs.loads))) in
    { Gpu_sim.Kernel.flops_per_thread = flops; dram_bytes_per_thread = dram }
  in
  let nd =
    match host.Lower.uvar.Entity.vindices with
    | first :: _ -> Entity.index_extent first
    | [] -> 1
  in
  let owned_comps =
    match info.Lower.index_ranges with
    | [] -> Array.init ncomp (fun c -> c)
    | (_, (off, len)) :: _ -> Array.init (len * nd) (fun i -> (off * nd) + i)
  in
  let n_owned = Array.length owned_comps in
  let comp_chunks =
    match p.Problem.opt_level with
    | Config.O0 when n_owned > nd && n_owned mod nd = 0 ->
      Array.init (n_owned / nd) (fun k -> Array.sub owned_comps (k * nd) nd)
    | _ -> [| owned_comps |]
  in
  (* owned cells per device, and the packed element runs the transfers
     move: the unknown travels owned-only (ghosts arrive device-to-
     device), other per-step variables travel owned+ghost from the
     host *)
  let owned_cells = Array.init devices (Fvm.Decomp2d.owned_cells decomp) in
  let owned_runs_u =
    Array.map (fun cells -> Fvm.Decomp2d.cell_runs ~cells ~ncomp) owned_cells
  in
  let reach_cells =
    Array.init devices (fun g ->
        Array.append owned_cells.(g) decomp.Fvm.Decomp2d.halo.Fvm.Halo.ghosts.(g))
  in
  let d2d_plan =
    List.map
      (fun (src, dst, cells) ->
        src, dst, Fvm.Decomp2d.cell_runs ~cells ~ncomp)
      (Fvm.Decomp2d.d2d_edges decomp)
  in
  (* kernel over one device's owned cells x one component chunk *)
  let make_kernel g (dstate : Lower.state) (chunk : int array) =
    let n_chunk = Array.length chunk in
    let owned = owned_cells.(g) in
    Gpu_sim.Kernel.make ~name:"interior_update" ~cost:interior_cost (fun tid ->
        let cell = owned.(tid / n_chunk) and slot = tid mod n_chunk in
        let comp = chunk.(slot) in
        let env = dstate.Lower.env in
        env.Eval.cell <- cell;
        Lower.set_ivals_of_comp dstate comp;
        let v =
          Fvm.Field.get dstate.Lower.u cell comp
          +. (!(dstate.Lower.dt) *. Lower.dof_rhs_interior dstate)
        in
        Fvm.Field.set dstate.Lower.u_new cell comp v)
  in
  let kernels =
    Array.mapi
      (fun g states ->
        Array.map (fun ds -> Array.map (make_kernel g ds) comp_chunks) states)
      dstates
  in
  let launch_step g stream parity =
    let ncells_g = Array.length owned_cells.(g) in
    if ncells_g > 0 then
      Array.iteri
        (fun i k ->
          Gpu_sim.Stream.kernel stream clock k
            ~nthreads:(ncells_g * Array.length comp_chunks.(i))
            ())
        kernels.(g).(parity)
  in
  let u_bdry = Fvm.Field.create ~name:"u_bdry" ~ncells ~ncomp () in
  let b = host.Lower.breakdown in
  let track =
    if info.Lower.nranks > 1 then Prt.Trace.rank info.Lower.rank
    else Prt.Trace.main
  in
  (* one-time uploads run concurrently across devices: charge the max *)
  let t_once =
    Array.fold_left Float.max 0.
      (Array.mapi
         (fun g dev ->
           List.fold_left
             (fun acc (name, (buf, _)) ->
               let hf = List.assoc name host.Lower.fields in
               acc +. Gpu_sim.Memory.h2d dev buf (Fvm.Field.raw hf))
             0. dev_fields.(g))
         devs)
  in
  Prt.Breakdown.record b Prt.Breakdown.Communication t_once;
  let kernel_seen = Array.map (fun _ -> ref 0.) devs in
  let u_name = Fvm.Field.name host.Lower.u in
  let every_step_h2d =
    List.filter_map
      (fun tr ->
        if tr.Dataflow.tr_h2d_every_step then Some tr.Dataflow.tr_var else None)
      plan.Dataflow.transfers
  in
  (* per-step upload runs of one every-step variable on one device *)
  let upload_runs g name =
    match List.assoc_opt name dev_fields.(g) with
    | None -> None
    | Some (buf, view) ->
      let hf = List.assoc name host.Lower.fields in
      let runs =
        if name = u_name then owned_runs_u.(g)
        else
          Fvm.Decomp2d.cell_runs ~cells:reach_cells.(g)
            ~ncomp:(Fvm.Field.ncomp view)
      in
      Some (buf, hf, runs)
  in
  let combine_boundary () =
    for cell = 0 to ncells - 1 do
      Array.iter
        (fun comp ->
          let v =
            Fvm.Field.get host.Lower.u_new cell comp
            +. Fvm.Field.get u_bdry cell comp
          in
          Fvm.Field.set host.Lower.u cell comp v)
        owned_comps
    done
  in
  let sanitize_scan () =
    if Fvm.Field.sanitize_enabled () then begin
      let n = ref 0 in
      for cell = 0 to ncells - 1 do
        Array.iter
          (fun comp ->
            if Fvm.Field.is_poison (Fvm.Field.get host.Lower.u cell comp)
            then incr n)
          owned_comps
      done;
      Fvm.Field.record_poison !n
    end
  in
  (* max-over-devices of a per-device modelled duration: concurrent
     devices are charged at their critical path *)
  let record_max cat per_dev =
    let t = Array.fold_left Float.max 0. per_dev in
    if t > 0. then Prt.Breakdown.record b cat t
  in
  let record_intensity () =
    record_max Prt.Breakdown.Intensity
      (Array.mapi
         (fun g dev ->
           let d = dev.Gpu_sim.Memory.kernel_time -. !(kernel_seen.(g)) in
           kernel_seen.(g) := dev.Gpu_sim.Memory.kernel_time;
           d)
         devs)
  in
  if overlap then begin
    (* Overlapped schedule, one copy stream per device (the run_single
       two-stream pattern per device): result downloads chase the kernel
       on the copy stream and hide behind the boundary host work; next-
       step uploads and ghost peer copies go out after the post-step and
       stay in flight until the next launch joins them. *)
    let copies = Array.map Gpu_sim.Stream.create devs in
    let timed_host cat f =
      let t0 = Unix.gettimeofday () in
      let r = Prt.Breakdown.timed ~track b cat f in
      clock.Gpu_sim.Stream.now <-
        clock.Gpu_sim.Stream.now +. (Unix.gettimeofday () -. t0);
      r
    in
    for step = 0 to p.Problem.nsteps - 1 do
      let parity = step mod nbuf in
      Lower.run_pre_step host ~allreduce;
      record_max Prt.Breakdown.Communication
        (Array.mapi
           (fun g copy ->
             Float.max 0.
               (copy.Gpu_sim.Stream.tail
               -. Float.max clock.Gpu_sim.Stream.now
                    streams.(g).Gpu_sim.Stream.tail))
           copies);
      Array.iteri
        (fun g stream ->
          Gpu_sim.Stream.join stream copies.(g);
          Eval.bump_epoch dstates.(g).(parity).Lower.env;
          launch_step g stream parity)
        streams;
      Array.iteri
        (fun g copy ->
          Gpu_sim.Stream.join copy streams.(g);
          stream_d2h_runs copy clock u_new_bufs.(g).(parity)
            (Fvm.Field.raw host.Lower.u_new)
            ~runs:owned_runs_u.(g))
        copies;
      timed_host Prt.Breakdown.Boundary (fun () ->
          Fvm.Field.fill u_bdry 0.;
          Lower.boundary_contributions host ~into:u_bdry);
      record_intensity ();
      record_max Prt.Breakdown.Communication
        (Array.map
           (fun copy ->
             Float.max 0.
               (copy.Gpu_sim.Stream.tail -. clock.Gpu_sim.Stream.now))
           copies);
      Array.iter (fun copy -> Gpu_sim.Stream.synchronize copy clock) copies;
      timed_host Prt.Breakdown.Intensity combine_boundary;
      sanitize_scan ();
      timed_host Prt.Breakdown.Temperature (fun () ->
          Lower.run_post_step host ~allreduce);
      Array.iteri
        (fun g copy ->
          List.iter
            (fun name ->
              match upload_runs g name with
              | Some (buf, hf, runs) ->
                stream_h2d_runs copy clock buf (Fvm.Field.raw hf) ~runs
              | None -> ())
            every_step_h2d)
        copies;
      (* ghost peer copies, ordered after the owners' fresh uploads *)
      List.iter
        (fun (src, dst, runs) ->
          match List.assoc_opt u_name dev_fields.(src),
                List.assoc_opt u_name dev_fields.(dst) with
          | Some (src_buf, _), Some (dst_buf, _) ->
            Gpu_sim.Stream.join copies.(dst) copies.(src);
            Gpu_sim.Stream.d2d copies.(dst) clock ~src:devs.(src) ~src_buf
              dst_buf ~runs
          | _ -> ())
        d2d_plan;
      host.Lower.time := !(host.Lower.time) +. !(host.Lower.dt);
      incr host.Lower.step
    done;
    Array.iter (fun copy -> Gpu_sim.Stream.synchronize copy clock) copies
  end
  else
    for _ = 1 to p.Problem.nsteps do
      Lower.run_pre_step host ~allreduce;
      Array.iteri
        (fun g stream ->
          Eval.bump_epoch dstates.(g).(0).Lower.env;
          launch_step g stream 0)
        streams;
      Prt.Breakdown.timed ~track b Prt.Breakdown.Boundary (fun () ->
          Fvm.Field.fill u_bdry 0.;
          Lower.boundary_contributions host ~into:u_bdry);
      Array.iter (fun stream -> Gpu_sim.Stream.synchronize stream clock) streams;
      record_intensity ();
      (* download each device's owned slice of the result *)
      record_max Prt.Breakdown.Communication
        (Array.mapi
           (fun g dev ->
             Gpu_sim.Memory.d2h_runs dev u_new_bufs.(g).(0)
               (Fvm.Field.raw host.Lower.u_new)
               ~runs:owned_runs_u.(g))
           devs);
      Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity combine_boundary;
      sanitize_scan ();
      Prt.Breakdown.timed ~track b Prt.Breakdown.Temperature (fun () ->
          Lower.run_post_step host ~allreduce);
      (* per-step uploads: each device its owned (unknown) or
         owned+ghost (other variables) slice *)
      record_max Prt.Breakdown.Communication
        (Array.mapi
           (fun g dev ->
             List.fold_left
               (fun acc name ->
                 match upload_runs g name with
                 | Some (buf, hf, runs) ->
                   acc +. Gpu_sim.Memory.h2d_runs dev buf (Fvm.Field.raw hf) ~runs
                 | None -> acc)
               0. every_step_h2d)
           devs);
      (* ghost exchange: peer copies along the tile halo plan *)
      (let per_dev = Array.make devices 0. in
       List.iter
         (fun (src, dst, runs) ->
           match List.assoc_opt u_name dev_fields.(src),
                 List.assoc_opt u_name dev_fields.(dst) with
           | Some (src_buf, _), Some (dst_buf, _) ->
             let t =
               Gpu_sim.Memory.d2d ~src:devs.(src) ~src_buf ~dst:devs.(dst)
                 ~dst_buf ~runs
             in
             per_dev.(src) <- per_dev.(src) +. t;
             per_dev.(dst) <- per_dev.(dst) +. t
           | _ -> ())
         d2d_plan;
       record_max Prt.Breakdown.Communication per_dev);
      host.Lower.time := !(host.Lower.time) +. !(host.Lower.dt);
      incr host.Lower.step
    done;
  let nthreads =
    Array.fold_left (fun acc cells -> acc + (Array.length cells * n_owned))
      0 owned_cells
  in
  { state = host; device = devs.(0); breakdown = b; plan;
    profile_threads = nthreads }

(* The full grid: R ranks x G devices.  Ranks slice the band axis exactly
   as [run_multi]; each rank drives its devices via [run_rank_grid]. *)
let run_grid ?post_io ?(overlap = false) ~spec ~devices ~ranks
    (p : Problem.t) =
  if ranks <= 1 then begin
    let r = run_rank_grid ?post_io ~overlap ~spec ~devices p in
    r, [| r |]
  end
  else begin
    let band_index =
      match List.rev p.Problem.indices with
      | i :: _ -> i
      | [] -> raise (Gpu_error "multi-GPU run needs a partitioned index")
    in
    let extent = Entity.index_extent band_index in
    if ranks > extent then
      raise (Gpu_error "more GPU ranks than index values");
    let results = Array.make ranks None in
    Prt.Spmd.run ~nranks:ranks (fun rank ->
        let off, len =
          Fvm.Partition.block_range ~nitems:extent ~nparts:ranks rank
        in
        let info =
          { Lower.rank; nranks = ranks; owned_cells = None;
            index_ranges = [ band_index.Entity.iname, (off, len) ] }
        in
        let r =
          run_rank_grid ?post_io ~info ~allreduce:Prt.Spmd.allreduce_sum
            ~overlap ~spec ~devices p
        in
        results.(rank) <- Some r);
    let results =
      Array.map
        (function Some r -> r | None -> raise (Gpu_error "rank did not run"))
        results
    in
    let r0 = results.(0) in
    let u0 = r0.state.Lower.u in
    Array.iter
      (fun (r : result) ->
        let st = r.state in
        Lower.iterate_dofs st (fun () ->
            let cell = st.Lower.env.Eval.cell in
            let c = st.Lower.ucomp () in
            Fvm.Field.set u0 cell c (Fvm.Field.get st.Lower.u cell c)))
      results;
    let breakdown =
      Prt.Breakdown.sum_distinct
        (Array.to_list (Array.map (fun r -> r.breakdown) results))
    in
    { r0 with breakdown }, results
  end

let run ?post_io (p : Problem.t) =
  let spec, devices, ranks =
    match p.Problem.target with
    | Config.Gpu { spec; devices; ranks } -> spec, devices, ranks
    | Config.Cpu _ | Config.Auto ->
      raise (Gpu_error "problem target is not a GPU")
  in
  let overlap = p.Problem.overlap in
  if devices > 1 then fst (run_grid ?post_io ~overlap ~spec ~devices ~ranks p)
  else if ranks <= 1 then run_single ?post_io ~overlap ~spec p
  else fst (run_multi ?post_io ~overlap ~spec ~ranks p)
