(** Compilation of symbolic expressions to evaluation closures.

    [compile] resolves every entity reference to a direct field or
    coefficient access once; the resulting closure reads loop state
    (current cell, face, index values) from a mutable environment owned by
    the executor and performs no lookups or allocation in the inner loop.

    Recognized special symbols: [dt], [t]/[time], [pi], [x]/[y]/[z] (cell
    centroid), [VOLUME], [FACEAREA], [NORMAL_k] (outward normal component,
    sign-adjusted for the current cell). *)

exception Compile_error of string

type env = {
  mesh : Fvm.Mesh.t;
  dt : float ref;
  time : float ref;
  mutable cell : int;
  mutable cell2 : int;   (** neighbour across the current face; -1 = ghost *)
  mutable face : int;
  mutable nsign : float; (** +1 when [cell] owns the current face *)
  mutable ghost : (string -> int -> float) option;
    (** boundary ghost accessor: variable name -> component -> value *)
  ivals : (string * int ref) list; (** current 0-based index values *)
  mutable epoch : int;
    (** traversal counter; executors bump it once per DOF traversal so tape
        evaluation knows mutable inputs (fields, dt, time) may have changed *)
}

val make_env :
  mesh:Fvm.Mesh.t -> dt:float ref -> time:float ref ->
  index_names:string list -> env

val bump_epoch : env -> unit

val ival : env -> string -> int ref
(** The mutable cell holding an index's current value; raises
    {!Compile_error} for unknown indices. *)

type binding =
  | Bfield of Fvm.Field.t * (string * int * int) list
    (** field + per-index (name, 1-based lo, stride) layout *)
  | Bcoef_const of float
  | Bcoef_arr of float array * string * int
  | Bcoef_fn of (float array -> float)

type bindings = (string * binding) list

type compiled = env -> float

val compile : bindings -> Finch_symbolic.Expr.t -> compiled
(** Raises {!Compile_error} on unknown entities, unresolved operator
    calls, or misused indexed entities. *)

(** {2 Tape compilation}

    [compile_tape] lowers the expression to a flat register tape (SSA op
    array evaluated over a preallocated float array) with
    common-subexpression elimination; at run time, ops whose inputs
    (epoch / cell / index variables) did not change since the previous
    call keep their register value, hoisting loop-invariant subterms out
    of the inner loops.  Results are bit-identical to the closure
    evaluator.  A tape holds mutable cache state: use one tape per
    state/env, not shared across domains. *)

type tape

val compile_tape : bindings -> Finch_symbolic.Expr.t -> tape
(** Raises {!Compile_error} like {!compile}. *)

val tape_run : tape -> env -> float

val tape_compiled : tape -> compiled
(** The tape as a drop-in [compiled] closure. *)

val tape_length : tape -> int
(** Total ops in the tape (post-CSE). *)

val tape_runs : tape -> int
(** Number of [tape_run] calls since the last reset. *)

val tape_executed : tape -> int
(** Cumulative ops actually executed (cache misses) since the last
    reset; [tape_executed / (tape_runs * tape_length)] is the dynamic
    evaluation ratio. *)

val tape_reset_stats : tape -> unit

type cost = { flops : float; loads : int }

val cost : Finch_symbolic.Expr.t -> cost
(** Static per-evaluation FLOP and load-count estimate, consumed by the
    GPU roofline model. *)

val tape_cost : tape -> cost
(** Post-CSE static cost of one full tape evaluation, with the same
    per-op weights as {!cost}. *)
