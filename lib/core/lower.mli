(** Lowering: from a declared problem to executable state — field storage
    for every variable, compiled volume/flux closures, a per-face boundary
    table, the loop plan, and rank-ownership information. One state is
    built per rank; serial runs own everything. *)

exception Lower_error of string

type bc_resolved =
  | RFlux_expr of Eval.compiled
  | RFlux_callback of Problem.bc_callback * float array
  | RDirichlet_expr of Eval.compiled
  | RDirichlet_callback of Problem.bc_callback * float array

type rankinfo = {
  rank : int;
  nranks : int;
  owned_cells : int array option; (** None = every cell *)
  index_ranges : (string * (int * int)) list;
    (** owned (offset, length) per partitioned index, 0-based *)
}

val serial_rankinfo : rankinfo

(** Generated-code entry points for one state: whole loop bodies emitted
    by [Emit_source.to_ocaml], compiled and bound by lib/codegen.  When a
    state carries one, {!sweep}/{!sweep_cells}/{!commit}/
    {!dof_rhs_interior} dispatch to it instead of the closure
    interpreter; the generated bodies are bit-identical by construction,
    so every executor schedule composes unchanged. *)
type native_entry = {
  n_sweep : int array option -> unit;
      (** sweep the given cells ([None] = owned/all) into the buffer *)
  n_commit : int array option -> unit;  (** publish the double buffer *)
  n_dof_interior : int -> int -> float;
      (** [n_dof_interior cell comp]: interior-face R for one DOF *)
}

type state = {
  p : Problem.t;
  mesh : Fvm.Mesh.t;
  eq : Transform.equation;
  uvar : Entity.variable;
  u : Fvm.Field.t;       (** current values of the unknown *)
  u_new : Fvm.Field.t;   (** double buffer *)
  fields : (string * Fvm.Field.t) list;
  env : Eval.env;
  bindings : Eval.bindings;
  rvol_f : Eval.compiled;
  rsurf_f : Eval.compiled;
  ucomp : unit -> int;   (** component of the unknown at current ivals *)
  face_bc : bc_resolved option array;
  time : float ref;
  dt : float ref;
  step : int ref;
  info : rankinfo;
  breakdown : Prt.Breakdown.t;
  loops : loop_entry list;
  rvol_du_f : Eval.compiled Lazy.t;
    (** -d(rvol)/du, compiled lazily for the point-implicit stepper *)
  tapes : (string * Eval.tape) list;
    (** tape handles behind rvol_f/rsurf_f ("rvol"/"rsurf") when the
        problem's eval_mode is Tape, for op statistics; empty otherwise *)
  mutable native : native_entry option;
    (** generated entry points, set by the {!native_hook} when the
        problem's eval_mode is Native and codegen succeeded *)
}

and loop_entry =
  | Over_cells
  | Over_index of string * int

val native_hook : (state -> native_entry option) ref
(** Backend hook consulted at state construction when eval_mode is
    Native: core cannot depend on lib/codegen, so [Finch_codegen.install]
    stores its emit-compile-load-bind pipeline here (returning [None]
    falls back to the closure interpreter). *)

val native_hook_installed : bool ref
(** Set by the codegen backend alongside {!native_hook}; when false, a
    Native-mode build warns once and falls back silently thereafter. *)

val field : state -> string -> Fvm.Field.t
val coef_exn : Problem.t -> string -> Entity.coefficient
val layout_of_var : Entity.variable -> (string * int * int) list

val build :
  ?info:rankinfo -> ?share_with:state -> ?private_clock:bool -> Problem.t ->
  state
(** Build a rank's state. [share_with] reuses another state's field
    storage and time/dt refs (shared-memory workers) and skips initial
    conditions.  [private_clock] (with [share_with]) gives the worker its
    own dt/time refs seeded from the base, so a fused schedule can
    advance workers independently between barriers. *)

val apply_initial_conditions : state -> unit
val index_range : state -> string -> int -> int * int

val iterate_dofs : state -> (unit -> unit) -> unit
(** Run a thunk for every owned (cell x index) combination in the
    configured loop order; loop state is set in [state.env]. *)

val dof_rhs : state -> float
(** R = rvol + (1/V) Σ_faces area·rsurf at the current DOF, boundary
    conditions applied (unconstrained boundary faces contribute zero). *)

val boundary_term : state -> bc_resolved -> int -> int -> float
(** [boundary_term st bc face cell]: one resolved boundary condition's
    flux value at the current env state (Dirichlet specs evaluate rsurf
    under a ghost accessor).  Exposed for the native-codegen binding,
    whose generated sweeps call back into it per boundary face. *)

val sweep : state -> unit
(** Forward-Euler sweep of the owned DOFs into the double buffer. *)

val sweep_cells : state -> int array -> unit
(** [sweep_cells st cells] is {!sweep} restricted to [cells] (a subset of
    the owned cells).  Per-DOF updates are independent, so sweeping
    disjoint subsets in any order is bit-identical to one full {!sweep};
    executors use this to sweep interior cells while ghost messages are
    in flight and frontier cells once they land. *)

val commit : state -> unit
(** Publish the double buffer for the owned DOFs. *)

val make_step_ctx : state -> allreduce:(float array -> unit) -> Problem.step_ctx
val run_post_step : state -> allreduce:(float array -> unit) -> unit
val run_pre_step : state -> allreduce:(float array -> unit) -> unit

(** {2 Hybrid GPU-target support} *)

val set_ivals_of_comp : state -> int -> unit
(** Decompose a flat component id of the unknown into index values. *)

val rebind :
  state -> fields:(string * Fvm.Field.t) list -> u_new:Fvm.Field.t -> state
(** A state whose closures read/write the given (device-view) storage;
    time/dt refs shared with the base. *)

val dof_rhs_interior : state -> float
(** Like {!dof_rhs} but interior faces only (the kernel's part; the CPU
    adds boundary contributions separately). *)

val boundary_contributions : state -> into:Fvm.Field.t -> unit
(** Accumulate dt·area·(boundary term)/V for every boundary face and
    component into [into]. *)

(** {2 Runge-Kutta stages (serial executor)} *)

val sweep_rhs : state -> into:Fvm.Field.t -> unit
val set_combination : state -> base:Fvm.Field.t -> a:float -> k:Fvm.Field.t -> unit

val dof_flux : state -> float
(** The surface part of R only (boundary conditions applied). *)

val sweep_point_implicit : state -> unit
(** Relaxation treated implicitly via the symbolic linearization,
    advection explicit — removes the dt*max(1/tau) stability bound. *)

val rk_step : state -> unit
(** One step of the configured scheme (Euler / RK2 midpoint / classic
    RK4), advancing the unknown in place. *)
