(* Script-level problem description: the OCaml counterpart of the paper's
   Julia input script (initFinch, domain, solverType, timeStepper, mesh,
   index/variable/coefficient, boundary, postStepFunction,
   conservationForm, assemblyLoops, useCUDA, solve).

   A [Problem.t] is a mutable builder; code generation happens in
   [Solve.solve] once everything is declared. *)

open Finch_symbolic

exception Problem_error of string

(* Context handed to boundary-condition callbacks (the paper's
   user-supplied functions that run on the CPU). *)
type bc_ctx = {
  bc_mesh : Fvm.Mesh.t;
  bc_field : string -> Fvm.Field.t; (* host-side fields of this rank *)
  bc_coef : string -> Entity.coefficient;
  bc_face : int;
  bc_cell : int;               (* interior cell adjacent to the face *)
  bc_normal : float array;     (* outward unit normal *)
  bc_ivals : (string * int) list; (* current 0-based index values *)
  bc_comp : int;               (* flattened component of the variable *)
  bc_time : float;
  bc_args : float array;       (* numeric literals from the bc string *)
}

let bc_ival ctx name =
  match List.assoc_opt name ctx.bc_ivals with
  | Some v -> v
  | None -> raise (Problem_error ("bc callback: unknown index " ^ name))

type bc_callback = bc_ctx -> float

(* Context handed to pre-/post-step callbacks (e.g. the BTE temperature
   update).  [comp_range] exposes the index subrange owned by this rank in
   equation-partitioned (band-parallel) runs; [allreduce] sums an array
   elementwise across ranks (identity for serial runs). *)
type step_ctx = {
  st_mesh : Fvm.Mesh.t;
  st_field : string -> Fvm.Field.t;
  st_coef : string -> Entity.coefficient;
  st_time : float;
  st_dt : float;
  st_step : int;
  st_rank : int;
  st_nranks : int;
  st_index_range : string -> int * int; (* owned (offset, length), 0-based *)
  st_allreduce : float array -> unit;
  st_cells : int array option; (* owned cells in mesh-partitioned runs *)
}

type step_callback = step_ctx -> unit

type bc_spec =
  | Bc_expr of Expr.t
  | Bc_callback of { name : string; args : float array }

type bc = {
  bc_var : string;
  bc_region : int;
  bc_kind : Config.bc_kind;
  bc_spec : bc_spec;
}

type initial_spec =
  | Init_const of float
  | Init_fn of (float array -> int -> float) (* position, component *)

type t = {
  name : string;
  mutable dim : int;
  mutable solver : Config.solver_type;
  mutable stepper : Config.time_stepper;
  mutable dt : float;
  mutable nsteps : int;
  mutable mesh : Fvm.Mesh.t option;
  mutable target : Config.target;
  mutable indices : Entity.index list;
  mutable variables : Entity.variable list;
  mutable coefficients : Entity.coefficient list;
  mutable callbacks : (string * bc_callback) list;
  mutable bcs : bc list;
  mutable initials : (string * initial_spec) list;
  mutable pre_step : step_callback list;
  mutable post_step : step_callback list;
  mutable equations : Transform.equation list;
  mutable loop_order : string list option; (* e.g. ["b"; "elements"; "d"] *)
  mutable eval_mode : Config.eval_mode;
    (* how lowered right-hand sides execute; Tape (the optimizing
       register-tape evaluator) unless overridden *)
  mutable overlap : bool;
    (* overlap communication with computation where the target has
       point-to-point messages or transfers (cell-parallel halo
       exchange, GPU H2D/D2H); bit-identical to the synchronous path *)
  mutable opt_level : Config.opt_level;
    (* middle-end optimization level; executors mirror the IR rewrites
       (fused pool regions, batched kernel launches) when legal, and
       every level is bit-identical to O0 *)
}

let init name =
  {
    name;
    dim = 2;
    solver = Config.FV;
    stepper = Config.Euler_explicit;
    dt = 1e-3;
    nsteps = 1;
    mesh = None;
    target = Config.Cpu Config.Serial;
    indices = [];
    variables = [];
    coefficients = [];
    callbacks = [];
    bcs = [];
    initials = [];
    pre_step = [];
    post_step = [];
    equations = [];
    loop_order = None;
    eval_mode = Config.Closure;
    overlap = false;
    opt_level = Config.O2;
  }

(* --- configuration commands, mirroring the paper's script API ---------- *)

let domain p d =
  if d < 1 || d > 3 then raise (Problem_error "domain must be 1, 2 or 3");
  p.dim <- d

let solver_type p s = p.solver <- s
let time_stepper p s = p.stepper <- s

let set_steps p ~dt ~nsteps =
  if dt <= 0. || nsteps < 1 then raise (Problem_error "set_steps: bad arguments");
  p.dt <- dt;
  p.nsteps <- nsteps

let use_cuda ?(spec = Gpu_sim.Spec.a6000) ?(devices = 1) ?(ranks = 1) p =
  p.target <- Config.Gpu { spec; devices; ranks }

let set_target p t = p.target <- t
let set_eval_mode p m = p.eval_mode <- m
let set_overlap p v = p.overlap <- v
let set_opt_level p l = p.opt_level <- l

let set_mesh p m =
  if m.Fvm.Mesh.dim <> p.dim then
    raise (Problem_error "mesh dimension does not match domain");
  p.mesh <- Some m

let mesh_file p path = set_mesh p (Fvm.Gmsh.read_file path)

(* --- entities ---------------------------------------------------------- *)

let find_index p name = List.find_opt (fun i -> i.Entity.iname = name) p.indices

let index p ~name ~range =
  if find_index p name <> None then
    raise (Problem_error ("duplicate index " ^ name));
  let i = Entity.index ~name ~range in
  p.indices <- p.indices @ [ i ];
  i

let find_variable p name =
  List.find_opt (fun v -> v.Entity.vname = name) p.variables

let variable p ~name ?(location = Entity.Cell) ?(indices = []) () =
  if find_variable p name <> None then
    raise (Problem_error ("duplicate variable " ^ name));
  let v = Entity.variable ~name ~location ~indices () in
  p.variables <- p.variables @ [ v ];
  v

let find_coefficient p name =
  List.find_opt (fun c -> c.Entity.cname = name) p.coefficients

let coefficient p ~name ?index value =
  if find_coefficient p name <> None then
    raise (Problem_error ("duplicate coefficient " ^ name));
  let c = Entity.coefficient ~name ?index value in
  p.coefficients <- p.coefficients @ [ c ];
  c

(* --- callbacks and conditions ------------------------------------------ *)

let callback_function p name f = p.callbacks <- (name, f) :: p.callbacks

let find_callback p name = List.assoc_opt name p.callbacks

(* Parse a boundary spec string.  A call form [name(arg, ...)] whose name
   is a registered callback becomes [Bc_callback] with the numeric literal
   arguments collected (entity arguments are available to the callback via
   its context, as in the paper where "the relevant values for parameters
   ... will be interpreted automatically by Finch").  Anything else is a
   symbolic expression evaluated per boundary face. *)
let boundary p var region kind spec_text =
  (match find_variable p var.Entity.vname with
   | Some _ -> ()
   | None -> raise (Problem_error ("boundary: unknown variable " ^ var.Entity.vname)));
  let parsed =
    try Parser.parse spec_text
    with Parser.Parse_error m ->
      raise (Problem_error ("boundary: parse error: " ^ m))
  in
  let var_names = List.map (fun v -> v.Entity.vname) p.variables in
  let spec =
    match parsed with
    | Expr.Call (name, args) when find_callback p name <> None ->
      let nums =
        List.filter_map (function Expr.Num x -> Some x | _ -> None) args
      in
      Bc_callback { name; args = Array.of_list nums }
    | e ->
      Bc_expr
        (Simplify.simplify (Operators.expand (Transform.resolve_vars var_names e)))
  in
  p.bcs <-
    p.bcs @ [ { bc_var = var.Entity.vname; bc_region = region; bc_kind = kind; bc_spec = spec } ]

let initial p var spec = p.initials <- (var.Entity.vname, spec) :: p.initials

let pre_step_function p f = p.pre_step <- p.pre_step @ [ f ]
let post_step_function p f = p.post_step <- p.post_step @ [ f ]

(* --- equations ---------------------------------------------------------- *)

let conservation_form p var text =
  (match p.solver with
   | Config.FV -> ()
   | Config.FE ->
     raise (Problem_error "conservationForm requires the FV solver type"));
  let var_names = List.map (fun v -> v.Entity.vname) p.variables in
  let eq = Transform.conservation_form ~var_names var text in
  (* validate that every referenced entity is declared *)
  List.iter
    (fun name ->
      let known =
        find_variable p name <> None
        || find_coefficient p name <> None
      in
      if not known then
        raise (Problem_error ("equation references unknown entity " ^ name)))
    (Expr.ref_names eq.Transform.parsed);
  (* and that every bare symbol is a coefficient or a recognized special *)
  let special s =
    List.mem s [ "dt"; "t"; "time"; "pi"; "x"; "y"; "z"; "VOLUME"; "FACEAREA";
                 "SURFACE"; "TIMEDERIVATIVE" ]
    || (String.length s > 7 && String.sub s 0 7 = "NORMAL_")
  in
  List.iter
    (fun s ->
      if (not (special s)) && find_coefficient p s = None then
        raise (Problem_error ("equation references unknown symbol " ^ s)))
    (Expr.sym_names eq.Transform.expanded);
  p.equations <- p.equations @ [ eq ];
  eq

let assembly_loops p order = p.loop_order <- Some order

(* --- misc accessors ----------------------------------------------------- *)

let mesh_exn p =
  match p.mesh with
  | Some m -> m
  | None -> raise (Problem_error "no mesh configured")

let the_equation p =
  match p.equations with
  | [ eq ] -> eq
  | [] -> raise (Problem_error "no equation declared")
  | _ -> raise (Problem_error "multiple equations not yet supported by targets")

let bcs_for p var = List.filter (fun b -> b.bc_var = var) p.bcs
