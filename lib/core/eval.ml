(* Compilation of symbolic expressions to evaluation closures.

   The code generation targets do not interpret the AST in the inner loop:
   [compile] resolves every entity reference to a direct field/coefficient
   access once, producing a closure tree whose evaluation does no lookups,
   no allocation and no matching beyond the structure of the expression
   itself.  The closure reads loop state (current cell, face, index values)
   from a mutable environment owned by the executor.

   [cost] statically estimates FLOPs and DRAM traffic per evaluation; the
   GPU simulator's roofline model consumes these numbers. *)

open Finch_symbolic

exception Compile_error of string

type env = {
  mesh : Fvm.Mesh.t;
  dt : float ref;
  time : float ref;
  (* loop state, written by the executor *)
  mutable cell : int;
  mutable cell2 : int;   (* neighbour across the current face; -1 = ghost *)
  mutable face : int;
  mutable nsign : float; (* +1 when [cell] owns the current face *)
  (* ghost accessor for boundary faces: variable name -> component -> value *)
  mutable ghost : (string -> int -> float) option;
  (* current value of each index variable, 0-based *)
  ivals : (string * int ref) list;
  (* traversal counter: bumped once per DOF traversal so tape evaluation
     knows when mutable inputs (field contents, dt, time) may have changed *)
  mutable epoch : int;
}

let make_env ~mesh ~dt ~time ~index_names =
  {
    mesh;
    dt;
    time;
    cell = 0;
    cell2 = -1;
    face = 0;
    nsign = 1.;
    ghost = None;
    ivals = List.map (fun n -> n, ref 0) index_names;
    epoch = 0;
  }

let bump_epoch env = env.epoch <- env.epoch + 1

let ival env name =
  match List.assoc_opt name env.ivals with
  | Some r -> r
  | None -> raise (Compile_error ("unknown index " ^ name))

(* What a compiled expression can reference. *)
type binding =
  | Bfield of Fvm.Field.t * (string * int * int) list
    (* field plus per-index (name, 1-based lo, stride) layout *)
  | Bcoef_const of float
  | Bcoef_arr of float array * string * int (* array, index name, 1-based lo *)
  | Bcoef_fn of (float array -> float)

type bindings = (string * binding) list

type compiled = env -> float

(* Component offset closure for a field reference with the given index
   refs. *)
let compile_comp env layout (idx_refs : Expr.index_ref list) : env -> int =
  if List.length layout <> List.length idx_refs then
    raise (Compile_error "index arity mismatch");
  let pieces =
    List.map2
      (fun (iname, lo, stride) iref ->
        match iref with
        | Expr.Iconst k ->
          let p = k - lo in
          fun (_ : env) -> p * stride
        | Expr.Ivar n ->
          if not (String.equal n iname) then
            (* referencing a different index than the layout position was
               declared with is allowed as long as it is a known index —
               e.g. Io[b] on a variable declared over [b]. The layout
               position name is informative only; the *position* governs
               the stride. *)
            ();
          let r = ival env n in
          fun (_ : env) -> !r * stride
        | Expr.Ishift (n, k) ->
          let r = ival env n in
          fun (_ : env) -> (!r + k) * stride)
      layout idx_refs
  in
  fun env -> List.fold_left (fun acc f -> acc + f env) 0 pieces

let rec compile (bindings : bindings) (e : Expr.t) : compiled =
  match e with
  | Expr.Num x -> fun _ -> x
  | Expr.Sym s -> compile_sym bindings s
  | Expr.Ref (name, idx_refs, side) -> compile_ref bindings name idx_refs side
  | Expr.Add es ->
    let fs = Array.of_list (List.map (compile bindings) es) in
    fun env ->
      let s = ref 0. in
      for i = 0 to Array.length fs - 1 do
        s := !s +. fs.(i) env
      done;
      !s
  | Expr.Mul es ->
    let fs = Array.of_list (List.map (compile bindings) es) in
    fun env ->
      let s = ref 1. in
      for i = 0 to Array.length fs - 1 do
        s := !s *. fs.(i) env
      done;
      !s
  | Expr.Pow (a, Expr.Num x) when Float.equal x (-1.) ->
    let fa = compile bindings a in
    fun env -> 1. /. fa env
  | Expr.Pow (a, Expr.Num x) when Float.equal x 2. ->
    let fa = compile bindings a in
    fun env ->
      let v = fa env in
      v *. v
  | Expr.Pow (a, b) ->
    let fa = compile bindings a and fb = compile bindings b in
    fun env -> Float.pow (fa env) (fb env)
  | Expr.Call (name, args) -> compile_call bindings name args
  | Expr.Cmp (op, a, b) ->
    let fa = compile bindings a and fb = compile bindings b in
    let test =
      match op with
      | Expr.Gt -> fun x y -> x > y
      | Expr.Ge -> fun x y -> x >= y
      | Expr.Lt -> fun x y -> x < y
      | Expr.Le -> fun x y -> x <= y
      | Expr.Eq -> fun x y -> Float.equal x y
      | Expr.Ne -> fun x y -> not (Float.equal x y)
    in
    fun env -> if test (fa env) (fb env) then 1. else 0.
  | Expr.Cond (c, t, el) ->
    let fc = compile bindings c
    and ft = compile bindings t
    and fe = compile bindings el in
    fun env -> if fc env <> 0. then ft env else fe env

and compile_sym bindings s =
  match s with
  | "dt" -> fun env -> !(env.dt)
  | "t" | "time" -> fun env -> !(env.time)
  | "pi" -> fun _ -> Float.pi
  | "x" -> fun env -> env.mesh.Fvm.Mesh.cell_centroid.(env.cell * env.mesh.Fvm.Mesh.dim)
  | "y" ->
    fun env ->
      env.mesh.Fvm.Mesh.cell_centroid.((env.cell * env.mesh.Fvm.Mesh.dim) + 1)
  | "z" ->
    fun env ->
      env.mesh.Fvm.Mesh.cell_centroid.((env.cell * env.mesh.Fvm.Mesh.dim) + 2)
  | "VOLUME" -> fun env -> env.mesh.Fvm.Mesh.cell_volume.(env.cell)
  | "FACEAREA" -> fun env -> env.mesh.Fvm.Mesh.face_area.(env.face)
  | s when String.length s > 7 && String.sub s 0 7 = "NORMAL_" ->
    let k = int_of_string (String.sub s 7 (String.length s - 7)) - 1 in
    fun env ->
      env.nsign *. env.mesh.Fvm.Mesh.face_normal.((env.face * env.mesh.Fvm.Mesh.dim) + k)
  | s -> (
    match List.assoc_opt s bindings with
    | Some (Bcoef_const v) -> fun _ -> v
    | Some (Bcoef_fn f) ->
      fun env ->
        let d = env.mesh.Fvm.Mesh.dim in
        f (Array.init d (fun k -> env.mesh.Fvm.Mesh.cell_centroid.((env.cell * d) + k)))
    | Some (Bcoef_arr _) ->
      raise (Compile_error (s ^ " is an indexed coefficient; write " ^ s ^ "[i]"))
    | Some (Bfield _) ->
      raise (Compile_error (s ^ " is an indexed variable; write " ^ s ^ "[...]"))
    | None -> raise (Compile_error ("unknown symbol " ^ s)))

and compile_ref bindings name idx_refs side =
  match List.assoc_opt name bindings with
  | Some (Bfield (field, layout)) ->
    (* fail fast: arity errors are compile-time errors, not lazy runtime
       surprises inside the first evaluation *)
    if not (idx_refs = [] && layout = [])
       && List.length layout <> List.length idx_refs
    then
      raise
        (Compile_error
           (Printf.sprintf "%s expects %d indices, given %d" name
              (List.length layout) (List.length idx_refs)));
    (* Index-variable cells live in the runtime env, so the component
       closure is built lazily against the env of the first call and
       memoized (each compiled program runs against a single env). Scalar
       variables (no indices) read component 0. *)
    let cache : (env * (env -> int)) option ref = ref None in
    let comp env =
      match !cache with
      | Some (e, f) when e == env -> f env
      | _ ->
        let f =
          if idx_refs = [] && layout = [] then fun (_ : env) -> 0
          else compile_comp env layout idx_refs
        in
        cache := Some (env, f);
        f env
    in
    (match side with
     | Expr.Here | Expr.Cell1 ->
       fun env -> Fvm.Field.get field env.cell (comp env)
     | Expr.Cell2 ->
       fun env ->
         let c = comp env in
         if env.cell2 >= 0 then Fvm.Field.get field env.cell2 c
         else (
           match env.ghost with
           | Some g -> g name c
           | None ->
             raise
               (Compile_error
                  ("boundary face reached with no ghost accessor for " ^ name))))
  | Some (Bcoef_arr (arr, iname, lo)) -> (
    match idx_refs with
    | [ Expr.Ivar n ] ->
      ignore iname;
      let cache : (env * int ref) option ref = ref None in
      fun env ->
        let r =
          match !cache with
          | Some (e, r) when e == env -> r
          | _ ->
            let r = ival env n in
            cache := Some (env, r);
            r
        in
        arr.(!r)
    | [ Expr.Iconst k ] ->
      let v = arr.(k - lo) in
      fun _ -> v
    | _ -> raise (Compile_error ("coefficient " ^ name ^ " expects one index")))
  | Some (Bcoef_const v) -> fun _ -> v
  | Some (Bcoef_fn f) ->
    fun env ->
      let d = env.mesh.Fvm.Mesh.dim in
      f (Array.init d (fun k -> env.mesh.Fvm.Mesh.cell_centroid.((env.cell * d) + k)))
  | None -> raise (Compile_error ("unknown entity " ^ name))

and compile_call bindings name args =
  let unary f =
    match args with
    | [ a ] ->
      let fa = compile bindings a in
      fun env -> f (fa env)
    | _ -> raise (Compile_error (name ^ " expects one argument"))
  in
  match name with
  | "sin" -> unary sin
  | "cos" -> unary cos
  | "tan" -> unary tan
  | "exp" -> unary exp
  | "log" -> unary log
  | "sqrt" -> unary sqrt
  | "abs" -> unary Float.abs
  | "sinh" -> unary sinh
  | "cosh" -> unary cosh
  | "tanh" -> unary tanh
  | "min" | "max" -> (
    match args with
    | [ a; b ] ->
      let fa = compile bindings a and fb = compile bindings b in
      let f = if name = "min" then Float.min else Float.max in
      fun env -> f (fa env) (fb env)
    | _ -> raise (Compile_error (name ^ " expects two arguments")))
  | _ ->
    raise
      (Compile_error
         (Printf.sprintf
            "unresolved call %s/%d (operators must be expanded before compilation)"
            name (List.length args)))

(* ------------------------------------------------------------------ *)
(* Tape compilation: flat register tape with CSE and invariant caching. *)
(* ------------------------------------------------------------------ *)

(* The closure tree above re-evaluates every node on every call.  A tape
   lowers the expression into SSA form — op [i] writes register [i], in
   producer-before-consumer order — which buys two things:

   - common-subexpression elimination: structurally equal subtrees (e.g.
     the advection speed "b . n" appearing in all three positions of an
     upwind cond) lower to a single op;

   - loop-invariant caching: each op carries a dependency signature
     (constant / epoch / cell / specific index variables / face) unioned
     over its subtree, and ops whose inputs did not change since the last
     run keep their register value instead of re-executing.  Terms that
     only depend on the outer loop variables are therefore hoisted out of
     the inner loops at run time — the band loop does not re-evaluate
     direction-only terms, the cell loop does not re-evaluate geometry.

   Field and coefficient-array contents can mutate between traversals
   (commit, post-step callbacks), so their loads also depend on an [epoch]
   counter which executors bump once per traversal (see [bump_epoch];
   Lower.iterate_dofs and friends call it).  Face-dependent ops (FACEAREA,
   normals, neighbour reads — whose value also depends on cell2/nsign and
   the ghost accessor) are never cached.

   Evaluation order within Add/Mul and the special-cased powers replicate
   the closure compiler exactly, so tape results are bit-identical.  The
   one semantic difference: [cond] evaluates both branches eagerly (float
   arithmetic cannot trap, and boundary evaluation always runs under a
   ghost accessor, so this is safe for every expressible program; an
   index-shifted reference whose range safety depends on a cond guard
   would need the closure evaluator). *)

type top =
  | Tleaf of compiled
  | Tadd of int array
  | Tmul of int array
  | Trecip of int
  | Tsq of int
  | Tpow of int * int
  | Tcall1 of (float -> float) * int
  | Tcall2 of (float -> float -> float) * int * int
  | Tcmp of (float -> float -> bool) * int * int
  | Tcond of int * int * int

type tsig = {
  s_face : bool;           (* never cached *)
  s_cell : bool;
  s_epoch : bool;
  s_ivars : string array;  (* sorted index-variable names *)
}

let sig_const = { s_face = false; s_cell = false; s_epoch = false; s_ivars = [||] }
let sig_epoch = { sig_const with s_epoch = true }
let sig_cell = { sig_const with s_cell = true }
let sig_face = { sig_const with s_face = true }

let sig_union a b =
  {
    s_face = a.s_face || b.s_face;
    s_cell = a.s_cell || b.s_cell;
    s_epoch = a.s_epoch || b.s_epoch;
    s_ivars =
      (if a.s_ivars = [||] then b.s_ivars
       else if b.s_ivars = [||] then a.s_ivars
       else
         Array.of_list
           (List.sort_uniq String.compare
              (Array.to_list a.s_ivars @ Array.to_list b.s_ivars)));
  }

(* Per-signature cache state: the input snapshot the group's registers
   were last computed against. *)
type tgroup = {
  g_sig : tsig;
  mutable c_epoch : int;
  mutable c_cell : int;
  c_ivals : int array;            (* parallel to g_sig.s_ivars *)
  mutable g_refs : int ref array; (* env index cells, resolved per env *)
}

type tape = {
  t_ops : top array;
  t_group_of : int array;  (* op index -> group index *)
  t_groups : tgroup array;
  t_regs : float array;
  t_dirty : bool array;    (* per group, scratch *)
  t_flops : float;         (* static post-CSE cost of one full evaluation *)
  t_loads : int;
  mutable t_env : env option;
  mutable t_runs : int;
  mutable t_exec : int;
}

let ivars_of_refs idx_refs =
  List.filter_map
    (function
      | Expr.Iconst _ -> None
      | Expr.Ivar n | Expr.Ishift (n, _) -> Some n)
    idx_refs
  |> List.sort_uniq String.compare |> Array.of_list

(* Dependency signature of a leaf (Num/Sym/Ref), mirroring the access
   each compiled closure performs. *)
let leaf_sig (bindings : bindings) (e : Expr.t) =
  match e with
  | Expr.Num _ -> sig_const
  | Expr.Sym s -> (
    match s with
    | "dt" | "t" | "time" -> sig_epoch
    | "pi" -> sig_const
    | "x" | "y" | "z" | "VOLUME" -> sig_cell (* static mesh geometry *)
    | "FACEAREA" -> sig_face
    | s when String.length s > 7 && String.sub s 0 7 = "NORMAL_" -> sig_face
    | s -> (
      match List.assoc_opt s bindings with
      | Some (Bcoef_const _) -> sig_const
      | Some (Bcoef_fn _) -> sig_cell
      | _ -> sig_epoch (* compile will raise; be conservative *)))
  | Expr.Ref (name, idx_refs, side) -> (
    match List.assoc_opt name bindings with
    | Some (Bfield _) -> (
      match side with
      | Expr.Cell2 -> sig_face (* also covers cell2/nsign/ghost changes *)
      | Expr.Here | Expr.Cell1 ->
        { s_face = false; s_cell = true; s_epoch = true;
          s_ivars = ivars_of_refs idx_refs })
    | Some (Bcoef_arr _) -> (
      match idx_refs with
      | [ Expr.Iconst _ ] -> sig_const (* closure bakes the value in *)
      | _ -> { sig_epoch with s_ivars = ivars_of_refs idx_refs })
    | Some (Bcoef_const _) -> sig_const
    | Some (Bcoef_fn _) -> sig_cell
    | None -> sig_epoch (* compile will raise *))
  | _ -> invalid_arg "leaf_sig: not a leaf"

let compile_tape (bindings : bindings) (e : Expr.t) : tape =
  let ops = ref [] and sigs = ref [] and nops = ref 0 in
  let flops = ref 0. and loads = ref 0 in
  let memo : (Expr.t, int) Hashtbl.t = Hashtbl.create 64 in
  let emit op s =
    let id = !nops in
    ops := op :: !ops;
    sigs := s :: !sigs;
    incr nops;
    id
  in
  let leaf e =
    (match e with
     | Expr.Ref _ -> incr loads
     | Expr.Sym s when String.length s > 7 && String.sub s 0 7 = "NORMAL_" ->
       incr loads
     | _ -> ());
    emit (Tleaf (compile bindings e)) (leaf_sig bindings e)
  in
  let sig_of id = List.nth !sigs (!nops - 1 - id) in
  let union_of ids = List.fold_left (fun s i -> sig_union s (sig_of i)) sig_const ids in
  let rec go (e : Expr.t) =
    match Hashtbl.find_opt memo e with
    | Some id -> id
    | None ->
      let id =
        match e with
        | Expr.Num _ | Expr.Sym _ | Expr.Ref _ -> leaf e
        | Expr.Add es ->
          let ids = List.map go es in
          flops := !flops +. float_of_int (List.length es - 1);
          emit (Tadd (Array.of_list ids)) (union_of ids)
        | Expr.Mul es ->
          let ids = List.map go es in
          flops := !flops +. float_of_int (List.length es - 1);
          emit (Tmul (Array.of_list ids)) (union_of ids)
        | Expr.Pow (a, Expr.Num x) when Float.equal x (-1.) ->
          let ia = go a in
          flops := !flops +. 4.;
          emit (Trecip ia) (sig_of ia)
        | Expr.Pow (a, Expr.Num x) when Float.equal x 2. ->
          let ia = go a in
          flops := !flops +. 4.;
          emit (Tsq ia) (sig_of ia)
        | Expr.Pow (a, b) ->
          let ia = go a in
          let ib = go b in
          flops := !flops +. 4.;
          emit (Tpow (ia, ib)) (union_of [ ia; ib ])
        | Expr.Call (("min" | "max") as name, [ a; b ]) ->
          let ia = go a in
          let ib = go b in
          let f = if name = "min" then Float.min else Float.max in
          flops := !flops +. 1.;
          emit (Tcall2 (f, ia, ib)) (union_of [ ia; ib ])
        | Expr.Call (name, args) ->
          let f, weight =
            match name with
            | "sin" -> sin, 8.
            | "cos" -> cos, 8.
            | "tan" -> tan, 8.
            | "exp" -> exp, 8.
            | "log" -> log, 8.
            | "sqrt" -> sqrt, 8.
            | "abs" -> Float.abs, 1.
            | "sinh" -> sinh, 8.
            | "cosh" -> cosh, 8.
            | "tanh" -> tanh, 8.
            | _ ->
              raise
                (Compile_error
                   (Printf.sprintf
                      "unresolved call %s/%d (operators must be expanded \
                       before compilation)"
                      name (List.length args)))
          in
          (match args with
           | [ a ] ->
             let ia = go a in
             flops := !flops +. weight;
             emit (Tcall1 (f, ia)) (sig_of ia)
           | _ -> raise (Compile_error (name ^ " expects one argument")))
        | Expr.Cmp (op, a, b) ->
          let ia = go a in
          let ib = go b in
          let test =
            match op with
            | Expr.Gt -> fun x y -> x > y
            | Expr.Ge -> fun x y -> x >= y
            | Expr.Lt -> fun x y -> x < y
            | Expr.Le -> fun x y -> x <= y
            | Expr.Eq -> fun x y -> Float.equal x y
            | Expr.Ne -> fun x y -> not (Float.equal x y)
          in
          flops := !flops +. 1.;
          emit (Tcmp (test, ia, ib)) (union_of [ ia; ib ])
        | Expr.Cond (c, t, el) ->
          let ic = go c in
          let it = go t in
          let ie = go el in
          emit (Tcond (ic, it, ie)) (union_of [ ic; it; ie ])
      in
      Hashtbl.replace memo e id;
      id
  in
  let _root = go e in
  let ops = Array.of_list (List.rev !ops) in
  let sigs = Array.of_list (List.rev !sigs) in
  (* group ops by signature *)
  let groups = ref [] and ngroups = ref 0 in
  let group_of =
    Array.map
      (fun s ->
        match
          List.find_opt (fun (_, s') -> s = s') !groups
        with
        | Some (gi, _) -> gi
        | None ->
          let gi = !ngroups in
          groups := (gi, s) :: !groups;
          incr ngroups;
          gi)
      sigs
  in
  let groups =
    Array.init !ngroups (fun gi ->
        let s = List.assoc gi !groups in
        {
          g_sig = s;
          c_epoch = min_int;
          c_cell = min_int;
          c_ivals = Array.make (Array.length s.s_ivars) min_int;
          g_refs = [||];
        })
  in
  {
    t_ops = ops;
    t_group_of = group_of;
    t_groups = groups;
    t_regs = Array.make (Array.length ops) 0.;
    t_dirty = Array.make !ngroups true;
    t_flops = !flops;
    t_loads = !loads;
    t_env = None;
    t_runs = 0;
    t_exec = 0;
  }

let tape_run (t : tape) (env : env) : float =
  let groups = t.t_groups in
  (* bind to the env on first use (or env change): resolve index cells and
     force a full evaluation *)
  let fresh =
    match t.t_env with
    | Some e when e == env -> false
    | _ ->
      t.t_env <- Some env;
      Array.iter
        (fun g -> g.g_refs <- Array.map (fun n -> ival env n) g.g_sig.s_ivars)
        groups;
      true
  in
  for gi = 0 to Array.length groups - 1 do
    let g = groups.(gi) in
    let s = g.g_sig in
    let dirty =
      fresh || s.s_face
      || (s.s_epoch && g.c_epoch <> env.epoch)
      || (s.s_cell && g.c_cell <> env.cell)
      ||
      let n = Array.length g.g_refs in
      let rec changed i = i < n && (!(g.g_refs.(i)) <> g.c_ivals.(i) || changed (i + 1)) in
      changed 0
    in
    if dirty then begin
      g.c_epoch <- env.epoch;
      g.c_cell <- env.cell;
      Array.iteri (fun i r -> g.c_ivals.(i) <- !r) g.g_refs
    end;
    t.t_dirty.(gi) <- dirty
  done;
  let ops = t.t_ops and regs = t.t_regs and gof = t.t_group_of in
  let dirty = t.t_dirty in
  (* interpreter inner loop: indices are constructed in-range, so use
     unchecked accesses *)
  let reg j = Array.unsafe_get regs j in
  let nexec = ref 0 in
  for i = 0 to Array.length ops - 1 do
    if Array.unsafe_get dirty (Array.unsafe_get gof i) then begin
      incr nexec;
      Array.unsafe_set regs i
        (match Array.unsafe_get ops i with
         | Tleaf f -> f env
         | Tadd js ->
           let s = ref 0. in
           for k = 0 to Array.length js - 1 do
             s := !s +. reg (Array.unsafe_get js k)
           done;
           !s
         | Tmul js ->
           let s = ref 1. in
           for k = 0 to Array.length js - 1 do
             s := !s *. reg (Array.unsafe_get js k)
           done;
           !s
         | Trecip j -> 1. /. reg j
         | Tsq j ->
           let v = reg j in
           v *. v
         | Tpow (a, b) -> Float.pow (reg a) (reg b)
         | Tcall1 (f, a) -> f (reg a)
         | Tcall2 (f, a, b) -> f (reg a) (reg b)
         | Tcmp (test, a, b) -> if test (reg a) (reg b) then 1. else 0.
         | Tcond (c, th, el) -> if reg c <> 0. then reg th else reg el)
    end
  done;
  t.t_runs <- t.t_runs + 1;
  t.t_exec <- t.t_exec + !nexec;
  regs.(Array.length ops - 1)

let tape_compiled (t : tape) : compiled = fun env -> tape_run t env
let tape_length (t : tape) = Array.length t.t_ops
let tape_runs (t : tape) = t.t_runs
let tape_executed (t : tape) = t.t_exec

let tape_reset_stats (t : tape) =
  t.t_runs <- 0;
  t.t_exec <- 0

(* ------------------------------------------------------------------ *)
(* Static cost estimation for the roofline model.                      *)
(* ------------------------------------------------------------------ *)

type cost = { flops : float; loads : int }

let cost e =
  let flops = ref 0. and loads = ref 0 in
  let count _ n =
    (match n with
     | Expr.Add es -> flops := !flops +. float_of_int (List.length es - 1)
     | Expr.Mul es -> flops := !flops +. float_of_int (List.length es - 1)
     | Expr.Pow _ -> flops := !flops +. 4.
     | Expr.Call (("min" | "max" | "abs"), _) -> flops := !flops +. 1.
     | Expr.Call _ -> flops := !flops +. 8. (* transcendental *)
     | Expr.Cmp _ -> flops := !flops +. 1.
     | Expr.Ref _ -> incr loads
     | Expr.Sym s when String.length s > 7 && String.sub s 0 7 = "NORMAL_" ->
       incr loads
     | Expr.Sym _ | Expr.Num _ | Expr.Cond _ -> ());
    ()
  in
  Expr.fold count () e;
  { flops = !flops; loads = !loads }

(* Post-CSE cost of one full tape evaluation: same per-op weights as
   [cost], but duplicate subtrees are only counted once.  The run-time op
   skip rate ([tape_executed] / ([tape_runs] * [tape_length])) refines
   this further. *)
let tape_cost (t : tape) = { flops = t.t_flops; loads = t.t_loads }
