(** Script-level problem description — the OCaml counterpart of the
    paper's Julia input script ([initFinch], [domain], [solverType],
    [timeStepper], [mesh], [index]/[variable]/[coefficient], [boundary],
    [callbackFunction], [postStepFunction], [conservationForm],
    [assemblyLoops], [useCUDA], [solve]).

    A value of type {!t} is a mutable builder; lowering and code
    generation happen in [Solve.solve]. *)

open Finch_symbolic

exception Problem_error of string

(** Context handed to boundary-condition callbacks — the paper's
    user-supplied functions, always executed on the CPU. *)
type bc_ctx = {
  bc_mesh : Fvm.Mesh.t;
  bc_field : string -> Fvm.Field.t;
  bc_coef : string -> Entity.coefficient;
  bc_face : int;
  bc_cell : int;               (** interior cell adjacent to the face *)
  bc_normal : float array;     (** outward unit normal *)
  bc_ivals : (string * int) list; (** current 0-based index values *)
  bc_comp : int;               (** flattened component of the variable *)
  bc_time : float;
  bc_args : float array;       (** numeric literals from the bc string *)
}

val bc_ival : bc_ctx -> string -> int

type bc_callback = bc_ctx -> float

(** Context handed to pre-/post-step callbacks (e.g. the BTE temperature
    update). [st_index_range] exposes the index subrange owned by this
    rank in band-parallel runs; [st_allreduce] sums elementwise across
    ranks (identity for serial); [st_cells] is the owned cell set in
    mesh-partitioned runs. *)
type step_ctx = {
  st_mesh : Fvm.Mesh.t;
  st_field : string -> Fvm.Field.t;
  st_coef : string -> Entity.coefficient;
  st_time : float;
  st_dt : float;
  st_step : int;
  st_rank : int;
  st_nranks : int;
  st_index_range : string -> int * int;
  st_allreduce : float array -> unit;
  st_cells : int array option;
}

type step_callback = step_ctx -> unit

type bc_spec =
  | Bc_expr of Expr.t
  | Bc_callback of { name : string; args : float array }

type bc = {
  bc_var : string;
  bc_region : int;
  bc_kind : Config.bc_kind;
  bc_spec : bc_spec;
}

type initial_spec =
  | Init_const of float
  | Init_fn of (float array -> int -> float) (** position, component *)

type t = {
  name : string;
  mutable dim : int;
  mutable solver : Config.solver_type;
  mutable stepper : Config.time_stepper;
  mutable dt : float;
  mutable nsteps : int;
  mutable mesh : Fvm.Mesh.t option;
  mutable target : Config.target;
  mutable indices : Entity.index list;
  mutable variables : Entity.variable list;
  mutable coefficients : Entity.coefficient list;
  mutable callbacks : (string * bc_callback) list;
  mutable bcs : bc list;
  mutable initials : (string * initial_spec) list;
  mutable pre_step : step_callback list;
  mutable post_step : step_callback list;
  mutable equations : Transform.equation list;
  mutable loop_order : string list option;
  mutable eval_mode : Config.eval_mode; (** Closure unless overridden *)
  mutable overlap : bool;
      (** overlap communication with computation where the target has
          point-to-point messages or transfers; off by default *)
  mutable opt_level : Config.opt_level;
      (** middle-end optimization level, [O2] by default; every level is
          bit-identical to [O0] (see docs/OPTIMIZER.md) *)
}

val init : string -> t

(** {2 Configuration commands} *)

val domain : t -> int -> unit
val solver_type : t -> Config.solver_type -> unit
val time_stepper : t -> Config.time_stepper -> unit
val set_steps : t -> dt:float -> nsteps:int -> unit

val use_cuda :
  ?spec:Gpu_sim.Spec.t -> ?devices:int -> ?ranks:int -> t -> unit
(** The paper's [useCUDA()]: switch code generation to the hybrid target.
    [devices] simulated devices per rank partition the cell axis;
    [ranks] SPMD ranks partition the band axis (both default to 1). *)

val set_target : t -> Config.target -> unit

(** Select the right-hand-side evaluator: the optimizing register tape
    (default) or the plain closure tree. *)
val set_eval_mode : t -> Config.eval_mode -> unit

val set_overlap : t -> bool -> unit
(** Enable communication/computation overlap: the cell-parallel executor
    splits its halo exchange around the sweep ({!Target_cpu.run_cell_parallel})
    and the GPU target routes per-step transfers through a second stream
    ({!Target_gpu.run_single}).  Results are bit-identical either way;
    targets without point-to-point messages (serial, bands, threads,
    hybrid — collectives only) ignore the flag. *)

val set_opt_level : t -> Config.opt_level -> unit
(** Select the optimization level applied by the IR middle end ([Opt])
    and mirrored by the executors: [O0] disables fusion/batching (naive
    per-loop regions and per-band launches), [O1] fuses pool regions on
    the threaded path, [O2] (default) additionally batches device
    launches across bands.  Results are bit-identical at every level. *)

val set_mesh : t -> Fvm.Mesh.t -> unit
val mesh_file : t -> string -> unit

(** {2 Entities} *)

val find_index : t -> string -> Entity.index option
val index : t -> name:string -> range:int * int -> Entity.index
val find_variable : t -> string -> Entity.variable option

val variable :
  t -> name:string -> ?location:Entity.location ->
  ?indices:Entity.index list -> unit -> Entity.variable

val find_coefficient : t -> string -> Entity.coefficient option
val coefficient :
  t -> name:string -> ?index:Entity.index -> Entity.coef_value ->
  Entity.coefficient

(** {2 Callbacks and conditions} *)

val callback_function : t -> string -> bc_callback -> unit
val find_callback : t -> string -> bc_callback option

val boundary : t -> Entity.variable -> int -> Config.bc_kind -> string -> unit
(** [boundary p var region kind spec] parses [spec]: a call form whose
    head is a registered callback becomes a callback condition (numeric
    literal arguments are collected; entity arguments reach the callback
    via its context, as the paper's "interpreted automatically" note
    describes); anything else is a symbolic expression evaluated per
    boundary face. *)

val initial : t -> Entity.variable -> initial_spec -> unit
val pre_step_function : t -> step_callback -> unit
val post_step_function : t -> step_callback -> unit

(** {2 Equations} *)

val conservation_form : t -> Entity.variable -> string -> Transform.equation
(** Parse, expand and classify a conservation-form equation; validates
    that referenced entities are declared. *)

val assembly_loops : t -> string list -> unit
(** The paper's [assemblyLoops]: the generated loop-nest order, as index
    names plus the pseudo-entry ["elements"]. *)

(** {2 Accessors} *)

val mesh_exn : t -> Fvm.Mesh.t
val the_equation : t -> Transform.equation
val bcs_for : t -> string -> bc list
