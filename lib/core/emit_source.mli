(** Source emission from the IR and from lowered states.

    [to_julia]/[to_cuda] are the documentation-grade listings a Finch
    user would inspect or hand-modify.  [to_ocaml] is executable: it
    renders a lowered program's sweep/commit/interior-DOF loop bodies as
    an OCaml module that lib/codegen compiles to a shared object and
    dynlinks (docs/CODEGEN.md). *)

val to_julia : Ir.node -> string
(** Julia-like CPU listing (the original Finch's native output style). *)

val to_cuda : Ir.node -> string
(** CUDA-C-like hybrid listing: kernel body with thread-index
    decomposition and guard, host-side callback/combine steps, stream
    synchronization and memcpy annotations. *)

exception Unsupported_native of string
(** Raised by {!to_ocaml} when a program's closure semantics cannot be
    reproduced in generated code (non-finite literals, face-context
    symbols in the volume term, boundary conditions depending on loop
    indices not derivable from the unknown's component, non-cell-major
    storage); callers fall back to the closure interpreter. *)

(** How the binder fills one constant slot at bind time: a [Const]
    coefficient's value, or the element (at a 0-based offset) of an
    indexed coefficient referenced at a literal index — the two value
    classes [Eval.compile] bakes into closures, kept out of the source
    text so the content-hash cache key is value-independent. *)
type const_spec =
  | Cs_coef of string
  | Cs_arr_elem of string * int

type ocaml_emission = {
  oc_src : string;      (** complete module source, registers via Finch_ci *)
  oc_fields : string list;
      (** field slot order (the unknown's double buffer is appended by
          the binder as the final slot) *)
  oc_arrays : string list;  (** indexed-coefficient slot order *)
  oc_fns : string list;     (** space-function coefficient slot order *)
  oc_consts : const_spec list;  (** constant slot recipes *)
}
(** An executable emission: the source plus the positional slot tables
    the binder resolves against a concrete state. *)

val to_ocaml : Lower.state -> ocaml_emission
(** Emit the full sweep/commit/interior-DOF bodies of a lowered state as
    an OCaml module, arithmetic mirroring [Eval.compile] operation for
    operation so generated results are bit-identical to the closure
    interpreter.  The source depends only on program structure (never on
    field or coefficient values), so its digest is a stable cache key.
    @raise Unsupported_native when emission cannot preserve closure
    semantics. *)
