(* Readable source emission from the IR.

   The paper stresses that the IR carries comments and metadata "to
   facilitate generation of easily readable code" and that generated code
   can be hand-modified.  This module renders an IR tree in two syntaxes:
   a Julia-like listing (the CPU target's native output in the original
   Finch) and a CUDA-C-like listing for the GPU kernel structure.  The
   output is for humans — it is what a user would inspect or edit — while
   execution goes through the compiled closures. *)

open Finch_symbolic

let indent n = String.make (2 * n) ' '

let range_header = function
  | Ir.Cells -> "for cell = 1:Ncells"
  | Ir.Faces_of_cell -> "for face = 1:Nfaces(cell)"
  | Ir.Index name -> Printf.sprintf "for %s = 1:N%s" name name
  | Ir.Steps -> "for step = 1:Nsteps"

let rec julia buf depth node =
  let line s = Buffer.add_string buf (indent depth ^ s ^ "\n") in
  match node with
  | Ir.Comment c -> line ("# " ^ c)
  | Ir.Seq ns -> List.iter (julia buf depth) ns
  | Ir.Loop { range; body; parallel } ->
    if parallel then line "# (parallel loop)";
    line (range_header range);
    List.iter (julia buf (depth + 1)) body;
    line "end"
  | Ir.Assign { dest; dest_new; expr; reduce; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    let op = match reduce with `Set -> "=" | `Add -> "+=" in
    line
      (Printf.sprintf "%s%s %s %s" dest
         (if dest_new then "_new" else "")
         op (Printer.to_string expr))
  | Ir.Flux_update { var; rvol; rsurf; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "source = %s" (Printer.to_string rvol));
    line "flux = 0.0";
    line "for face = 1:Nfaces(cell)";
    line (indent 1 ^ Printf.sprintf "flux += area[face] * (%s)" (Printer.to_string rsurf));
    line "end";
    line (Printf.sprintf "%s_new = %s + dt * (source + flux / volume[cell])" var var)
  | Ir.Boundary_cpu { var; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "apply_boundary_conditions(%s_new)" var)
  | Ir.Callback { which; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line
      (match which with
       | `Pre -> "pre_step_function()"
       | `Post -> "post_step_function()")
  | Ir.Swap_buffers var -> line (Printf.sprintf "%s = %s_new" var var)
  | Ir.Halo_exchange { vars; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "exchange_ghosts(%s)" (String.concat ", " vars))
  | Ir.Allreduce { what; note; _ } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "MPI.Allreduce!(%s)" what)
  | Ir.Kernel { kname; body; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "@cuda threads=256 blocks=cld(Ndofs,256) %s(args...)" kname);
    line ("# kernel " ^ kname ^ " body:");
    List.iter (julia buf (depth + 1)) body
  | Ir.H2d { vars; every_step } ->
    line
      (Printf.sprintf "copyto!(device, (%s))%s" (String.concat ", " vars)
         (if every_step then "  # every step" else "  # once"))
  | Ir.D2h { vars; every_step } ->
    line
      (Printf.sprintf "copyto!(host, (%s))%s" (String.concat ", " vars)
         (if every_step then "  # every step" else "  # once"))
  | Ir.D2d { vars; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line
      (Printf.sprintf "copyto_peer!(neighbour_ghosts, (%s))"
         (String.concat ", " vars))
  | Ir.Stream_sync -> line "CUDA.synchronize()"
  | Ir.Advance_time -> line "time += dt"

let to_julia node =
  let buf = Buffer.create 1024 in
  julia buf 0 node;
  Buffer.contents buf

let rec cuda buf depth node =
  let line s = Buffer.add_string buf (indent depth ^ s ^ "\n") in
  match node with
  | Ir.Comment c -> line ("// " ^ c)
  | Ir.Seq ns -> List.iter (cuda buf depth) ns
  | Ir.Loop { range = Ir.Steps; body; _ } ->
    line "for (int step = 0; step < nsteps; ++step) {";
    List.iter (cuda buf (depth + 1)) body;
    line "}"
  | Ir.Loop { range; body; _ } ->
    (* flattened on the device: loops become the thread index decomposition *)
    line ("// flattened: " ^ range_header range);
    List.iter (cuda buf depth) body
  | Ir.Assign { dest; dest_new; expr; reduce; _ } ->
    let op = match reduce with `Set -> "=" | `Add -> "+=" in
    line
      (Printf.sprintf "%s%s %s %s;" dest
         (if dest_new then "_new" else "")
         op (Printer.to_string expr))
  | Ir.Flux_update { var; rvol; rsurf; note } ->
    Option.iter (fun c -> line ("// " ^ c)) note.Ir.m_comment;
    line "int tid = blockIdx.x * blockDim.x + threadIdx.x;";
    line "if (tid >= ndofs) return;";
    line "int cell = tid / ncomp, comp = tid % ncomp;";
    line (Printf.sprintf "double source = %s;" (Printer.to_string rvol));
    line "double flux = 0.0;";
    line "for (int i = 0; i < nfaces_of[cell]; ++i) {";
    line (indent 1 ^ "int face = cell_faces[cell][i];");
    line (indent 1 ^ "if (neighbour[face] < 0) continue;  // boundary: CPU adds it");
    line
      (indent 1
       ^ Printf.sprintf "flux += area[face] * (%s);" (Printer.to_string rsurf));
    line "}";
    line
      (Printf.sprintf "%s_new[tid] = %s[tid] + dt * (source + flux / volume[cell]);"
         var var)
  | Ir.Boundary_cpu { var; _ } ->
    line (Printf.sprintf "/* host */ compute_boundary_contribution(%s_bdry);" var)
  | Ir.Callback { which; _ } ->
    line
      (match which with
       | `Pre -> "/* host */ pre_step_function();"
       | `Post -> "/* host */ post_step_function();")
  | Ir.Swap_buffers var ->
    line (Printf.sprintf "/* host */ combine_and_swap(%s, %s_new, %s_bdry);" var var var)
  | Ir.Halo_exchange { vars; _ } ->
    line (Printf.sprintf "/* host */ exchange_ghosts(%s);" (String.concat ", " vars))
  | Ir.Allreduce { what; _ } ->
    line (Printf.sprintf "/* host */ MPI_Allreduce(%s);" what)
  | Ir.Kernel { kname; body; note } ->
    Option.iter (fun c -> line ("// " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "%s<<<cld(ndofs,256), 256, 0, stream>>>(...);" kname);
    line ("// __global__ void " ^ kname ^ " {");
    List.iter (cuda buf (depth + 1)) body;
    line "// }"
  | Ir.H2d { vars; every_step } ->
    line
      (Printf.sprintf "cudaMemcpyAsync(dev, host, {%s}, H2D);%s"
         (String.concat ", " vars)
         (if every_step then "  // every step" else "  // once"))
  | Ir.D2h { vars; every_step } ->
    line
      (Printf.sprintf "cudaMemcpyAsync(host, dev, {%s}, D2H);%s"
         (String.concat ", " vars)
         (if every_step then "  // every step" else "  // once"))
  | Ir.D2d { vars; note } ->
    Option.iter (fun c -> line ("// " ^ c)) note.Ir.m_comment;
    line
      (Printf.sprintf
         "cudaMemcpyPeerAsync(ghosts_on_neighbour, {%s});  // NVLink"
         (String.concat ", " vars))
  | Ir.Stream_sync -> line "cudaStreamSynchronize(stream);"
  | Ir.Advance_time -> line "time += dt;"

let to_cuda node =
  let buf = Buffer.create 1024 in
  cuda buf 0 node;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Executable OCaml emission (the native-codegen backend's front half). *)
(* ------------------------------------------------------------------ *)

(* Unlike the listings above, [to_ocaml] is executable: it renders a
   lowered state's full sweep/commit/interior-DOF loop bodies as an OCaml
   module that Finch_codegen compiles to a .cmxs and dynlinks.  The
   emitted arithmetic mirrors [Eval.compile] operation for operation
   (fold-from-zero sums, fold-from-one products, the reciprocal/square
   power special cases, lazy conditionals, Float.equal comparisons), so
   generated results are bit-identical to the closure interpreter.

   Anything whose closure semantics cannot be reproduced in straight-line
   generated code raises [Unsupported_native] and the caller falls back
   to the interpreter: NaN/infinite literals, face-context symbols
   (FACEAREA / NORMAL_k / CELL2 references) inside the volume term —
   whose interpreted value would depend on stale traversal state — and
   boundary conditions that depend on loop indices the generated
   callback cannot reconstruct from the unknown's component id.

   Values never land in the source text: field/array/function slots are
   positional, and constants (Const coefficients and the array elements
   the closure compiler bakes in at [Iconst] indices) are emitted as
   [const_spec] recipes the binder evaluates at bind time.  The source is
   therefore a pure function of the program structure, which is what
   makes the content-hash cache key stable across runs and mesh sizes. *)

exception Unsupported_native of string

type const_spec =
  | Cs_coef of string
  | Cs_arr_elem of string * int

type ocaml_emission = {
  oc_src : string;
  oc_fields : string list;
  oc_arrays : string list;
  oc_fns : string list;
  oc_consts : const_spec list;
}

(* face context of an emitted expression: the volume term has none; the
   surface term is only emitted for the interior branch (boundary faces
   go through the runtime's bc_term callback) *)
type face_ctx = No_face | Interior

let unsup fmt = Printf.ksprintf (fun s -> raise (Unsupported_native s)) fmt

let check_ident what n =
  let ok_char i c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || c = '_'
    || (i > 0 && c >= '0' && c <= '9')
  in
  if
    n = ""
    || not (String.for_all (fun c -> ok_char 1 c) n)
    || not (ok_char 0 n.[0])
  then unsup "%s %S is not a valid generated identifier" what n

(* a float literal that round-trips exactly: hex mantissa/exponent form *)
let lit x =
  if Float.is_nan x || not (Float.is_finite x) then
    unsup "non-finite literal %f" x;
  Printf.sprintf "(%h)" x

let to_ocaml (st : Lower.state) : ocaml_emission =
  let p = st.Lower.p in
  let uvar = st.Lower.uvar in
  let vars = p.Problem.variables in
  let nvars = List.length vars in
  let var_slot name =
    let rec go i = function
      | [] -> None
      | (v : Entity.variable) :: rest ->
        if String.equal v.Entity.vname name then Some (i, v) else go (i + 1) rest
    in
    go 0 vars
  in
  let coef name =
    List.find_opt
      (fun (c : Entity.coefficient) -> String.equal c.Entity.cname name)
      p.Problem.coefficients
  in
  let arr_names =
    List.filter_map
      (fun (c : Entity.coefficient) ->
        match c.Entity.cvalue with Entity.Arr _ -> Some c.Entity.cname | _ -> None)
      p.Problem.coefficients
  in
  let fn_names =
    List.filter_map
      (fun (c : Entity.coefficient) ->
        match c.Entity.cvalue with
        | Entity.Space_fn _ -> Some c.Entity.cname
        | _ -> None)
      p.Problem.coefficients
  in
  let slot_of names n =
    let rec go i = function
      | [] -> None
      | x :: rest -> if String.equal x n then Some i else go (i + 1) rest
    in
    go 0 names
  in
  (* constant slots: Const coefficients first, then the values the
     closure compiler bakes in (Arr elements at literal indices),
     appended in emission-walk order *)
  let consts = ref [] and nconsts = ref 0 in
  let const_slot spec =
    let rec find i = function
      | [] -> None
      | s :: rest -> if s = spec then Some (!nconsts - 1 - i) else find (i + 1) rest
    in
    match find 0 !consts with
    | Some i -> i
    | None ->
      let i = !nconsts in
      consts := spec :: !consts;
      incr nconsts;
      i
  in
  List.iter
    (fun (c : Entity.coefficient) ->
      match c.Entity.cvalue with
      | Entity.Const _ -> ignore (const_slot (Cs_coef c.Entity.cname))
      | _ -> ())
    p.Problem.coefficients;
  List.iter (fun (i : Entity.index) -> check_ident "index" i.Entity.iname) p.Problem.indices;
  let idx_slot name = slot_of (List.map (fun (i : Entity.index) -> i.Entity.iname) p.Problem.indices) name in
  let ivar n scope =
    match List.assoc_opt n scope with
    | Some v -> Some v
    | None ->
      (* a declared index that no enclosing loop (or component
         decomposition) sets: the interpreter reads its env cell, which
         stays 0 for the whole traversal *)
      if List.exists (fun (i : Entity.index) -> String.equal i.Entity.iname n) p.Problem.indices
      then None
      else unsup "unknown index %s" n
  in
  (* component offset of a field reference, mirroring Eval.compile_comp:
     position in the declared index list governs the stride *)
  let comp_of ~scope name layout idx_refs =
    if idx_refs = [] && layout = [] then "0"
    else if List.length layout <> List.length idx_refs then
      unsup "%s: index arity mismatch" name
    else
      let pieces =
        List.map2
          (fun (_iname, lo, stride) (iref : Expr.index_ref) ->
            match iref with
            | Expr.Iconst k -> string_of_int ((k - lo) * stride)
            | Expr.Ivar n -> (
              match ivar n scope with
              | Some v -> Printf.sprintf "(%s * %d)" v stride
              | None -> "0")
            | Expr.Ishift (n, k) -> (
              match ivar n scope with
              | Some v -> Printf.sprintf "((%s + %d) * %d)" v k stride
              | None -> Printf.sprintf "(%d * %d)" k stride))
          layout idx_refs
      in
      "(" ^ String.concat " + " pieces ^ ")"
  in
  let rec ex ~scope ~face (e : Expr.t) : string =
    match e with
    | Expr.Num x -> lit x
    | Expr.Sym s -> sym ~scope ~face s
    | Expr.Ref (name, idx_refs, side) -> ref_ ~scope ~face name idx_refs side
    | Expr.Add es ->
      (* fold from 0, exactly like the closure's accumulator *)
      "(0." ^ String.concat "" (List.map (fun e -> " +. " ^ ex ~scope ~face e) es) ^ ")"
    | Expr.Mul es ->
      "(1." ^ String.concat "" (List.map (fun e -> " *. " ^ ex ~scope ~face e) es) ^ ")"
    | Expr.Pow (a, Expr.Num x) when Float.equal x (-1.) ->
      "(1. /. " ^ ex ~scope ~face a ^ ")"
    | Expr.Pow (a, Expr.Num x) when Float.equal x 2. ->
      "(let pv = " ^ ex ~scope ~face a ^ " in pv *. pv)"
    | Expr.Pow (a, b) ->
      "(Float.pow " ^ ex ~scope ~face a ^ " " ^ ex ~scope ~face b ^ ")"
    | Expr.Call (name, args) -> call ~scope ~face name args
    | Expr.Cmp (op, a, b) ->
      let sa = ex ~scope ~face a and sb = ex ~scope ~face b in
      (match op with
       | Expr.Gt -> Printf.sprintf "(if %s > %s then 1. else 0.)" sa sb
       | Expr.Ge -> Printf.sprintf "(if %s >= %s then 1. else 0.)" sa sb
       | Expr.Lt -> Printf.sprintf "(if %s < %s then 1. else 0.)" sa sb
       | Expr.Le -> Printf.sprintf "(if %s <= %s then 1. else 0.)" sa sb
       | Expr.Eq -> Printf.sprintf "(if Float.equal %s %s then 1. else 0.)" sa sb
       | Expr.Ne -> Printf.sprintf "(if not (Float.equal %s %s) then 1. else 0.)" sa sb)
    | Expr.Cond (c, t, el) ->
      (* lazy, like the closure (the tape is the eager one) *)
      Printf.sprintf "(if %s <> 0. then %s else %s)" (ex ~scope ~face c)
        (ex ~scope ~face t) (ex ~scope ~face el)
  and sym ~scope ~face s =
    match s with
    | "dt" -> "dt"
    | "t" | "time" -> "(!time_r)"
    | "pi" -> "Float.pi"
    | "x" -> "cent.(cell * dim)"
    | "y" -> "cent.((cell * dim) + 1)"
    | "z" -> "cent.((cell * dim) + 2)"
    | "VOLUME" -> "vol.(cell)"
    | "FACEAREA" ->
      if face = No_face then unsup "FACEAREA outside a face context";
      "area.(face)"
    | s when String.length s > 7 && String.sub s 0 7 = "NORMAL_" ->
      if face = No_face then unsup "%s outside a face context" s;
      let k = int_of_string (String.sub s 7 (String.length s - 7)) - 1 in
      Printf.sprintf "(nsign *. nrm.((face * dim) + %d))" k
    | s -> (
      ignore scope;
      match var_slot s with
      | Some _ -> unsup "%s is an indexed variable used as a scalar" s
      | None -> (
        match coef s with
        | Some { Entity.cvalue = Entity.Const _; _ } ->
          Printf.sprintf "cns.(%d)" (const_slot (Cs_coef s))
        | Some { Entity.cvalue = Entity.Space_fn _; _ } ->
          (match slot_of fn_names s with
           | Some i -> Printf.sprintf "(fnv %d cell)" i
           | None -> assert false)
        | Some { Entity.cvalue = Entity.Arr _; _ } ->
          unsup "%s is an indexed coefficient used as a scalar" s
        | None -> unsup "unknown symbol %s" s))
  and ref_ ~scope ~face name idx_refs side =
    match var_slot name with
    | Some (vi, v) -> (
      let layout = Lower.layout_of_var v in
      let comp = comp_of ~scope name layout idx_refs in
      let nc = Entity.var_ncomp v in
      match side with
      | Expr.Here | Expr.Cell1 ->
        Printf.sprintf "(Bigarray.Array1.unsafe_get f%d ((cell * %d) + %s))" vi
          nc comp
      | Expr.Cell2 ->
        if face = No_face then unsup "CELL2 reference to %s outside a face context" name;
        Printf.sprintf "(Bigarray.Array1.unsafe_get f%d ((cell2 * %d) + %s))" vi
          nc comp)
    | None -> (
      match coef name with
      | Some { Entity.cvalue = Entity.Arr _; cindex; _ } -> (
        let lo = match cindex with Some i -> i.Entity.lo | None -> 1 in
        match idx_refs with
        | [ Expr.Ivar n ] -> (
          let slot = match slot_of arr_names name with Some i -> i | None -> assert false in
          match ivar n scope with
          | Some v -> Printf.sprintf "a%d.(%s)" slot v
          | None -> Printf.sprintf "a%d.(0)" slot)
        | [ Expr.Iconst k ] ->
          (* the closure bakes the element's value in at compile time, so
             the binder captures it into a constant slot at bind time *)
          Printf.sprintf "cns.(%d)" (const_slot (Cs_arr_elem (name, k - lo)))
        | _ -> unsup "coefficient %s expects one index" name)
      | Some { Entity.cvalue = Entity.Const _; _ } ->
        Printf.sprintf "cns.(%d)" (const_slot (Cs_coef name))
      | Some { Entity.cvalue = Entity.Space_fn _; _ } ->
        (match slot_of fn_names name with
         | Some i -> Printf.sprintf "(fnv %d cell)" i
         | None -> assert false)
      | None -> unsup "unknown entity %s" name)
  and call ~scope ~face name args =
    let unary fname =
      match args with
      | [ a ] -> Printf.sprintf "(%s %s)" fname (ex ~scope ~face a)
      | _ -> unsup "%s expects one argument" name
    in
    match name with
    | "sin" | "cos" | "tan" | "exp" | "log" | "sqrt" | "sinh" | "cosh" | "tanh" ->
      unary name
    | "abs" -> unary "Float.abs"
    | "min" | "max" -> (
      match args with
      | [ a; b ] ->
        Printf.sprintf "(Float.%s %s %s)" name (ex ~scope ~face a)
          (ex ~scope ~face b)
      | _ -> unsup "%s expects two arguments" name)
    | _ -> unsup "unresolved call %s/%d" name (List.length args)
  in
  (* ---- feasibility checks beyond per-expression support ---- *)
  let u_layout = Lower.layout_of_var uvar in
  let u_nc = Entity.var_ncomp uvar in
  let u_slot = match var_slot uvar.Entity.vname with Some (i, _) -> i | None -> assert false in
  if Fvm.Field.layout st.Lower.u <> Fvm.Field.Cell_major
     || Fvm.Field.layout st.Lower.u_new <> Fvm.Field.Cell_major
  then unsup "non-cell-major unknown storage";
  let uvar_inames = List.map (fun (i : Entity.index) -> i.Entity.iname) uvar.Entity.vindices in
  let has_any_bc = Array.exists (fun o -> o <> None) st.Lower.face_bc in
  List.iter
    (fun entry ->
      match entry with
      | Lower.Over_cells -> ()
      | Lower.Over_index (n, _) ->
        if has_any_bc && not (List.mem n uvar_inames) then
          unsup
            "boundary conditions with loop index %s not derivable from the \
             unknown's component"
            n)
    st.Lower.loops;
  (* ---- source assembly ---- *)
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let line d s = out "%s%s\n" (String.make (2 * d) ' ') s in
  let linef d fmt = Printf.ksprintf (line d) fmt in
  let gensym =
    let n = ref 0 in
    fun base ->
      incr n;
      Printf.sprintf "%s%d" base !n
  in
  (* the loop nest around a per-DOF body; [scope] maps index names to the
     generated loop variables *)
  let scope =
    List.filter_map
      (function
        | Lower.Over_cells -> None
        | Lower.Over_index (n, _) -> Some (n, "i_" ^ n))
      st.Lower.loops
  in
  let rec emit_loops d loops body =
    match loops with
    | [] -> body d
    | Lower.Over_cells :: rest ->
      let fn = gensym "cell_body" in
      linef d "let %s cell =" fn;
      emit_loops (d + 1) rest body;
      line d "in";
      line d "(match cells with";
      linef d " | None -> for cell = 0 to ncells - 1 do %s cell done" fn;
      linef d " | Some cs -> Array.iter %s cs)" fn
    | Lower.Over_index (n, _) :: rest ->
      let slot = match idx_slot n with Some i -> i | None -> assert false in
      linef d "for i_%s = ioff.(%d) to ioff.(%d) + ilen.(%d) - 1 do" n slot slot
        slot;
      emit_loops (d + 1) rest body;
      line d "done"
  in
  (* the interior-face flux accumulation shared by sweep and dof_interior;
     [with_bc] adds the boundary branch through the runtime callback *)
  let emit_flux d ~scope ~with_bc =
    let rsurf = ex ~scope ~face:Interior st.Lower.eq.Transform.rsurf in
    line d "let flux = ref 0. in";
    line d "let fcs = cfaces.(cell) in";
    line d "for fi = 0 to Array.length fcs - 1 do";
    line (d + 1) "let face = fcs.(fi) in";
    line (d + 1) "let c1 = fc1.(face) in";
    line (d + 1) "let cell2 = if c1 = cell then fc2.(face) else c1 in";
    line (d + 1) "if cell2 >= 0 then begin";
    line (d + 2) "let nsign = if c1 = cell then 1. else (-1.) in";
    linef (d + 2) "flux := !flux +. (area.(face) *. %s)" rsurf;
    line (d + 1) "end";
    if with_bc then begin
      line (d + 1) "else if has_bc.(face) then";
      (* unconstrained boundary faces add nothing — not even +. 0. — so
         signed zeros survive exactly as in the interpreter *)
      line (d + 2) "flux := !flux +. (area.(face) *. (bc_term face cell comp))"
    end;
    line d "done;"
  in
  line 0 "[@@@warning \"-a\"]";
  line 0 "";
  line 0 "let () =";
  line 1 "Finch_ci.register (fun rt ->";
  let d0 = 2 in
  line d0 "let ncells = rt.Finch_ci.ncells in";
  line d0 "let dim = rt.Finch_ci.dim in";
  line d0 "let cfaces = rt.Finch_ci.cell_faces in";
  line d0 "let fc1 = rt.Finch_ci.face_cell1 in";
  line d0 "let fc2 = rt.Finch_ci.face_cell2 in";
  line d0 "let area = rt.Finch_ci.face_area in";
  line d0 "let nrm = rt.Finch_ci.face_normal in";
  line d0 "let vol = rt.Finch_ci.cell_volume in";
  line d0 "let cent = rt.Finch_ci.cell_centroid in";
  List.iteri (fun i _ -> linef d0 "let f%d = rt.Finch_ci.fields.(%d) in" i i) vars;
  linef d0 "let fnew = rt.Finch_ci.fields.(%d) in" nvars;
  List.iteri (fun i _ -> linef d0 "let a%d = rt.Finch_ci.arrays.(%d) in" i i) arr_names;
  line d0 "let cns = rt.Finch_ci.consts in";
  line d0 "let fns = rt.Finch_ci.fns in";
  line d0
    "let fnv i cell = fns.(i) (Array.init dim (fun k -> cent.((cell * dim) + \
     k))) in";
  line d0 "let dt_r = rt.Finch_ci.dt in";
  line d0 "let time_r = rt.Finch_ci.time in";
  line d0 "let ioff = rt.Finch_ci.index_off in";
  line d0 "let ilen = rt.Finch_ci.index_len in";
  line d0 "let has_bc = rt.Finch_ci.has_bc in";
  line d0 "let bc_term = rt.Finch_ci.bc_term in";
  (* sweep: the full forward-Euler update over the loop plan *)
  line d0 "let sweep cells =";
  line (d0 + 1) "let dt = !dt_r in";
  emit_loops (d0 + 1) st.Lower.loops (fun d ->
      linef d "let comp = %s in"
        (comp_of ~scope uvar.Entity.vname u_layout
           (List.map (fun (i : Entity.index) -> Expr.Ivar i.Entity.iname)
              uvar.Entity.vindices));
      linef d "let rv = %s in" (ex ~scope ~face:No_face st.Lower.eq.Transform.rvol);
      emit_flux d ~scope ~with_bc:true;
      linef d "let idx = (cell * %d) + comp in" u_nc;
      linef d
        "Bigarray.Array1.unsafe_set fnew idx ((Bigarray.Array1.unsafe_get f%d \
         idx) +. (dt *. (rv +. (!flux /. vol.(cell)))))"
        u_slot);
  line d0 "in";
  (* commit: publish the double buffer over the same loop plan *)
  line d0 "let commit cells =";
  emit_loops (d0 + 1) st.Lower.loops (fun d ->
      linef d "let comp = %s in"
        (comp_of ~scope uvar.Entity.vname u_layout
           (List.map (fun (i : Entity.index) -> Expr.Ivar i.Entity.iname)
              uvar.Entity.vindices));
      linef d "let idx = (cell * %d) + comp in" u_nc;
      linef d
        "Bigarray.Array1.unsafe_set f%d idx (Bigarray.Array1.unsafe_get fnew \
         idx)"
        u_slot);
  line d0 "in";
  (* dof_interior: the GPU kernel's per-thread body — volume term plus
     interior-face fluxes, index values decomposed from the component *)
  line d0 "let dof_interior cell comp =";
  let dscope =
    (* first declared index fastest, as in Lower.set_ivals_of_comp *)
    let d1 = d0 + 1 in
    line d1 "let dt = !dt_r in";
    line d1 "let dc0 = comp in";
    List.mapi
      (fun k (i : Entity.index) ->
        let ext = Entity.index_extent i in
        linef d1 "let i_%s = dc%d mod %d in" i.Entity.iname k ext;
        linef d1 "let dc%d = dc%d / %d in" (k + 1) k ext;
        (i.Entity.iname, "i_" ^ i.Entity.iname))
      uvar.Entity.vindices
  in
  let d1 = d0 + 1 in
  linef d1 "let rv = %s in" (ex ~scope:dscope ~face:No_face st.Lower.eq.Transform.rvol);
  emit_flux d1 ~scope:dscope ~with_bc:false;
  line d1 "rv +. (!flux /. vol.(cell))";
  line d0 "in";
  line d0
    "{ Finch_ci.e_sweep = sweep; e_commit = commit; e_dof_interior = \
     dof_interior })";
  {
    oc_src = Buffer.contents buf;
    oc_fields = List.map (fun (v : Entity.variable) -> v.Entity.vname) vars;
    oc_arrays = arr_names;
    oc_fns = fn_names;
    oc_consts = List.rev !consts;
  }
