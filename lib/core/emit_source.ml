(* Readable source emission from the IR.

   The paper stresses that the IR carries comments and metadata "to
   facilitate generation of easily readable code" and that generated code
   can be hand-modified.  This module renders an IR tree in two syntaxes:
   a Julia-like listing (the CPU target's native output in the original
   Finch) and a CUDA-C-like listing for the GPU kernel structure.  The
   output is for humans — it is what a user would inspect or edit — while
   execution goes through the compiled closures. *)

open Finch_symbolic

let indent n = String.make (2 * n) ' '

let range_header = function
  | Ir.Cells -> "for cell = 1:Ncells"
  | Ir.Faces_of_cell -> "for face = 1:Nfaces(cell)"
  | Ir.Index name -> Printf.sprintf "for %s = 1:N%s" name name
  | Ir.Steps -> "for step = 1:Nsteps"

let rec julia buf depth node =
  let line s = Buffer.add_string buf (indent depth ^ s ^ "\n") in
  match node with
  | Ir.Comment c -> line ("# " ^ c)
  | Ir.Seq ns -> List.iter (julia buf depth) ns
  | Ir.Loop { range; body; parallel } ->
    if parallel then line "# (parallel loop)";
    line (range_header range);
    List.iter (julia buf (depth + 1)) body;
    line "end"
  | Ir.Assign { dest; dest_new; expr; reduce; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    let op = match reduce with `Set -> "=" | `Add -> "+=" in
    line
      (Printf.sprintf "%s%s %s %s" dest
         (if dest_new then "_new" else "")
         op (Printer.to_string expr))
  | Ir.Flux_update { var; rvol; rsurf; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "source = %s" (Printer.to_string rvol));
    line "flux = 0.0";
    line "for face = 1:Nfaces(cell)";
    line (indent 1 ^ Printf.sprintf "flux += area[face] * (%s)" (Printer.to_string rsurf));
    line "end";
    line (Printf.sprintf "%s_new = %s + dt * (source + flux / volume[cell])" var var)
  | Ir.Boundary_cpu { var; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "apply_boundary_conditions(%s_new)" var)
  | Ir.Callback { which; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line
      (match which with
       | `Pre -> "pre_step_function()"
       | `Post -> "post_step_function()")
  | Ir.Swap_buffers var -> line (Printf.sprintf "%s = %s_new" var var)
  | Ir.Halo_exchange { vars; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "exchange_ghosts(%s)" (String.concat ", " vars))
  | Ir.Allreduce { what; note; _ } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "MPI.Allreduce!(%s)" what)
  | Ir.Kernel { kname; body; note } ->
    Option.iter (fun c -> line ("# " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "@cuda threads=256 blocks=cld(Ndofs,256) %s(args...)" kname);
    line ("# kernel " ^ kname ^ " body:");
    List.iter (julia buf (depth + 1)) body
  | Ir.H2d { vars; every_step } ->
    line
      (Printf.sprintf "copyto!(device, (%s))%s" (String.concat ", " vars)
         (if every_step then "  # every step" else "  # once"))
  | Ir.D2h { vars; every_step } ->
    line
      (Printf.sprintf "copyto!(host, (%s))%s" (String.concat ", " vars)
         (if every_step then "  # every step" else "  # once"))
  | Ir.Stream_sync -> line "CUDA.synchronize()"
  | Ir.Advance_time -> line "time += dt"

let to_julia node =
  let buf = Buffer.create 1024 in
  julia buf 0 node;
  Buffer.contents buf

let rec cuda buf depth node =
  let line s = Buffer.add_string buf (indent depth ^ s ^ "\n") in
  match node with
  | Ir.Comment c -> line ("// " ^ c)
  | Ir.Seq ns -> List.iter (cuda buf depth) ns
  | Ir.Loop { range = Ir.Steps; body; _ } ->
    line "for (int step = 0; step < nsteps; ++step) {";
    List.iter (cuda buf (depth + 1)) body;
    line "}"
  | Ir.Loop { range; body; _ } ->
    (* flattened on the device: loops become the thread index decomposition *)
    line ("// flattened: " ^ range_header range);
    List.iter (cuda buf depth) body
  | Ir.Assign { dest; dest_new; expr; reduce; _ } ->
    let op = match reduce with `Set -> "=" | `Add -> "+=" in
    line
      (Printf.sprintf "%s%s %s %s;" dest
         (if dest_new then "_new" else "")
         op (Printer.to_string expr))
  | Ir.Flux_update { var; rvol; rsurf; note } ->
    Option.iter (fun c -> line ("// " ^ c)) note.Ir.m_comment;
    line "int tid = blockIdx.x * blockDim.x + threadIdx.x;";
    line "if (tid >= ndofs) return;";
    line "int cell = tid / ncomp, comp = tid % ncomp;";
    line (Printf.sprintf "double source = %s;" (Printer.to_string rvol));
    line "double flux = 0.0;";
    line "for (int i = 0; i < nfaces_of[cell]; ++i) {";
    line (indent 1 ^ "int face = cell_faces[cell][i];");
    line (indent 1 ^ "if (neighbour[face] < 0) continue;  // boundary: CPU adds it");
    line
      (indent 1
       ^ Printf.sprintf "flux += area[face] * (%s);" (Printer.to_string rsurf));
    line "}";
    line
      (Printf.sprintf "%s_new[tid] = %s[tid] + dt * (source + flux / volume[cell]);"
         var var)
  | Ir.Boundary_cpu { var; _ } ->
    line (Printf.sprintf "/* host */ compute_boundary_contribution(%s_bdry);" var)
  | Ir.Callback { which; _ } ->
    line
      (match which with
       | `Pre -> "/* host */ pre_step_function();"
       | `Post -> "/* host */ post_step_function();")
  | Ir.Swap_buffers var ->
    line (Printf.sprintf "/* host */ combine_and_swap(%s, %s_new, %s_bdry);" var var var)
  | Ir.Halo_exchange { vars; _ } ->
    line (Printf.sprintf "/* host */ exchange_ghosts(%s);" (String.concat ", " vars))
  | Ir.Allreduce { what; _ } ->
    line (Printf.sprintf "/* host */ MPI_Allreduce(%s);" what)
  | Ir.Kernel { kname; body; note } ->
    Option.iter (fun c -> line ("// " ^ c)) note.Ir.m_comment;
    line (Printf.sprintf "%s<<<cld(ndofs,256), 256, 0, stream>>>(...);" kname);
    line ("// __global__ void " ^ kname ^ " {");
    List.iter (cuda buf (depth + 1)) body;
    line "// }"
  | Ir.H2d { vars; every_step } ->
    line
      (Printf.sprintf "cudaMemcpyAsync(dev, host, {%s}, H2D);%s"
         (String.concat ", " vars)
         (if every_step then "  // every step" else "  // once"))
  | Ir.D2h { vars; every_step } ->
    line
      (Printf.sprintf "cudaMemcpyAsync(host, dev, {%s}, D2H);%s"
         (String.concat ", " vars)
         (if every_step then "  // every step" else "  // once"))
  | Ir.Stream_sync -> line "cudaStreamSynchronize(stream);"
  | Ir.Advance_time -> line "time += dt;"

let to_cuda node =
  let buf = Buffer.create 1024 in
  cuda buf 0 node;
  Buffer.contents buf
