(* Data-movement analysis and CPU/GPU task placement.

   "The DSL automatically partitions tasks between the CPU and GPU by
   minimizing the data movement."  The program is viewed as a small set of
   per-step tasks; user-callback tasks are pinned to the CPU, everything
   else may run on either side.  For each candidate placement we compute
   the bytes that must cross PCIe per time step, and keep the minimum.

   The same analysis derives the per-variable transfer schedule: values
   produced on one side and consumed on the other move every step; values
   only read by the device and never rewritten by the host move once. *)

type side = Cpu_side | Gpu_side

type task = {
  t_name : string;
  t_reads : string list;   (* variable/coefficient names *)
  t_writes : string list;
  t_pinned : side option;  (* user callbacks are pinned to the CPU *)
  t_flops : float;         (* per-step work estimate for the cost model *)
}

type var_info = {
  v_name : string;
  v_bytes : int; (* full-field size *)
}

type placement = (string * side) list

type transfer = {
  tr_var : string;
  tr_h2d_every_step : bool;
  tr_d2h_every_step : bool;
  tr_h2d_once : bool;
}

type plan = {
  placement : placement;
  transfers : transfer list;
  bytes_per_step : int;
  bytes_once : int;
}

let side_of placement t =
  match t.t_pinned with
  | Some s -> s
  | None -> List.assoc t.t_name placement

(* Transfer schedule for a fixed placement. *)
let schedule ~tasks ~vars placement =
  let on_gpu t = side_of placement t = Gpu_side in
  let transfers =
    List.map
      (fun v ->
        let read_by_gpu =
          List.exists (fun t -> on_gpu t && List.mem v.v_name t.t_reads) tasks
        and written_by_gpu =
          List.exists (fun t -> on_gpu t && List.mem v.v_name t.t_writes) tasks
        and read_by_cpu =
          List.exists (fun t -> (not (on_gpu t)) && List.mem v.v_name t.t_reads) tasks
        and written_by_cpu =
          List.exists (fun t -> (not (on_gpu t)) && List.mem v.v_name t.t_writes) tasks
        in
        {
          tr_var = v.v_name;
          (* produced on the host, consumed on the device: upload each step *)
          tr_h2d_every_step = read_by_gpu && written_by_cpu;
          (* produced on the device, consumed on the host: download each step *)
          tr_d2h_every_step = written_by_gpu && read_by_cpu;
          (* static device input: upload once *)
          tr_h2d_once = read_by_gpu && not written_by_cpu;
        })
      vars
  in
  let bytes_per_step =
    List.fold_left
      (fun acc tr ->
        let v = List.find (fun v -> v.v_name = tr.tr_var) vars in
        acc
        + (if tr.tr_h2d_every_step then v.v_bytes else 0)
        + if tr.tr_d2h_every_step then v.v_bytes else 0)
      0 transfers
  in
  let bytes_once =
    List.fold_left
      (fun acc tr ->
        let v = List.find (fun v -> v.v_name = tr.tr_var) vars in
        acc + if tr.tr_h2d_once then v.v_bytes else 0)
      0 transfers
  in
  { placement; transfers; bytes_per_step; bytes_once }

(* Cost model for placement choice: per-step wall time is estimated as
   CPU compute + GPU compute + PCIe traffic (serialized; overlap only
   improves on this, so the ranking is conservative).  Movement alone is
   not a sufficient objective — it would pin everything to the host. *)
type rates = {
  cpu_flops : float;  (* effective host rate, FLOP/s *)
  gpu_flops : float;  (* effective device rate, FLOP/s *)
  pcie : float;       (* bytes/s *)
}

let default_rates =
  { cpu_flops = 5e9; gpu_flops = 5e11; pcie = 16e9 }

let plan_cost ~tasks rates plan =
  let compute =
    List.fold_left
      (fun acc t ->
        let r =
          match side_of plan.placement t with
          | Cpu_side -> rates.cpu_flops
          | Gpu_side -> rates.gpu_flops
        in
        acc +. (t.t_flops /. r))
      0. tasks
  in
  compute +. (float_of_int plan.bytes_per_step /. rates.pcie)

(* Enumerate placements of the unpinned tasks (2^k, k small) and keep the
   one minimizing estimated per-step time (compute + data movement),
   breaking ties toward less traffic and then toward more GPU tasks. *)
let optimize ?(rates = default_rates) ~tasks ~vars () =
  let free = List.filter (fun t -> t.t_pinned = None) tasks in
  let rec placements = function
    | [] -> [ [] ]
    | t :: rest ->
      let tails = placements rest in
      List.concat_map
        (fun tail -> [ (t.t_name, Cpu_side) :: tail; (t.t_name, Gpu_side) :: tail ])
        tails
  in
  let candidates = placements free in
  let plans = List.map (schedule ~tasks ~vars) candidates in
  let gpu_count plan =
    List.length (List.filter (fun (_, s) -> s = Gpu_side) plan.placement)
  in
  match
    List.sort
      (fun a b ->
        let c = compare (plan_cost ~tasks rates a) (plan_cost ~tasks rates b) in
        if c <> 0 then c
        else
          let c = compare a.bytes_per_step b.bytes_per_step in
          if c <> 0 then c else compare (gpu_count b) (gpu_count a))
      plans
  with
  | best :: _ -> best
  | [] -> invalid_arg "Dataflow.optimize: no tasks"

(* ------------------------------------------------------------------ *)
(* Problem-specific task extraction.                                   *)
(* ------------------------------------------------------------------ *)

(* Reads/writes of user callbacks cannot be inferred from symbolic input;
   the problem may declare them, otherwise we assume conservatively that
   callbacks touch every declared variable. *)
type callback_io = { cb_reads : string list; cb_writes : string list }

let tasks_of_problem (p : Problem.t) ~(post_io : callback_io option) =
  let eq = Problem.the_equation p in
  let u = eq.Transform.eq_var in
  let eq_reads =
    Finch_symbolic.Expr.ref_names eq.Transform.rvol
    @ Finch_symbolic.Expr.ref_names eq.Transform.rsurf
    @ [ u ]
    |> List.sort_uniq compare
  in
  let all_vars = List.map (fun v -> v.Entity.vname) p.Problem.variables in
  let post_io =
    match post_io with
    | Some io -> io
    | None -> { cb_reads = all_vars; cb_writes = all_vars }
  in
  let mesh = Problem.mesh_exn p in
  let ndofs =
    let uv =
      match Problem.find_variable p u with Some v -> v | None -> assert false
    in
    mesh.Fvm.Mesh.ncells * Entity.var_ncomp uv
  in
  let flops_per_dof =
    (Eval.cost eq.Transform.rvol).Eval.flops
    +. (4. *. (Eval.cost eq.Transform.rsurf).Eval.flops)
  in
  let interior =
    { t_name = "interior_update"; t_reads = eq_reads; t_writes = [ u ];
      t_pinned = None; t_flops = flops_per_dof *. float_of_int ndofs }
  in
  let nbfaces = Array.length mesh.Fvm.Mesh.boundary_faces in
  let ncomp = ndofs / mesh.Fvm.Mesh.ncells in
  let boundary =
    {
      t_name = "boundary_update";
      t_reads = eq_reads;
      t_writes = [ u ];
      t_pinned = Some Cpu_side; (* user callbacks stay on the CPU *)
      t_flops = flops_per_dof *. float_of_int (nbfaces * ncomp);
    }
  in
  let post =
    if p.Problem.post_step = [] then []
    else
      [ { t_name = "post_step";
          t_reads = post_io.cb_reads;
          t_writes = post_io.cb_writes;
          t_pinned = Some Cpu_side;
          t_flops = 40. *. float_of_int ndofs } ]
  in
  [ interior; boundary ] @ post

let vars_of_problem (p : Problem.t) =
  let m = Problem.mesh_exn p in
  let ncells = m.Fvm.Mesh.ncells in
  List.map
    (fun v ->
      { v_name = v.Entity.vname; v_bytes = 8 * ncells * Entity.var_ncomp v })
    p.Problem.variables
  @ List.filter_map
      (fun (c : Entity.coefficient) ->
        match c.Entity.cvalue with
        | Entity.Arr a ->
          Some { v_name = c.Entity.cname; v_bytes = 8 * Array.length a }
        | Entity.Const _ -> Some { v_name = c.Entity.cname; v_bytes = 8 }
        | Entity.Space_fn _ ->
          (* evaluated host-side and materialized per cell if the device
             needs it *)
          Some { v_name = c.Entity.cname; v_bytes = 8 * ncells })
      p.Problem.coefficients

let plan_for_problem ?post_io ?rates (p : Problem.t) =
  optimize ?rates ~tasks:(tasks_of_problem p ~post_io) ~vars:(vars_of_problem p) ()

(* The (variable, uploaded-every-step) pairs [Ir.build_gpu] consumes: one
   entry per device input the plan uploads, once or per step. *)
let ir_transfers plan =
  List.filter_map
    (fun tr ->
      if tr.tr_h2d_every_step then Some (tr.tr_var, true)
      else if tr.tr_h2d_once then Some (tr.tr_var, false)
      else None)
    plan.transfers
