(** Intermediate representation: a target-independent computational graph
    describing the generated program, carrying comment and metadata nodes
    "to facilitate generation of easily readable code" (paper Sec. II-A).

    [Emit_source] renders it as Julia-like or CUDA-like listings;
    [Dataflow] analyses it; the executors mirror its structure. *)

open Finch_symbolic

type phase = Ph_intensity | Ph_temperature | Ph_communication | Ph_boundary

type meta = {
  m_comment : string option;
  m_phase : phase option;
  m_flops : float; (** per innermost iteration; 0 when not annotated *)
}

val meta : ?comment:string -> ?phase:phase -> ?flops:float -> unit -> meta

type loop_range =
  | Cells
  | Faces_of_cell
  | Index of string
  | Steps

type node =
  | Comment of string
  | Seq of node list
  | Loop of { range : loop_range; body : node list; parallel : bool }
  | Assign of {
      dest : string;
      dest_new : bool;
      expr : Expr.t;
      reduce : [ `Set | `Add ];
      note : meta;
    }
  | Flux_update of {
      var : string; (** fused conservation-form update *)
      rvol : Expr.t;
      rsurf : Expr.t;
      note : meta;
    }
  | Boundary_cpu of { var : string; note : meta }
  | Callback of { which : [ `Pre | `Post ]; note : meta }
  | Swap_buffers of string
  | Halo_exchange of { vars : string list; note : meta }
  | Allreduce of { what : string; vars : string list; note : meta }
  | Kernel of { kname : string; body : node list; note : meta }
  | H2d of { vars : string list; every_step : bool }
  | D2h of { vars : string list; every_step : bool }
  | D2d of { vars : string list; note : meta }
    (** multi-device ghost push: owner devices peer-copy the listed
        variables' tile-frontier cells into their neighbours' ghost
        regions (NVLink within a node, host staging across) *)
  | Stream_sync
  | Advance_time

val fold : ('a -> node -> 'a) -> 'a -> node -> 'a

val writes : node -> string list
(** Variable names a node tree writes (sorted, unique).  Communication
    and transfer nodes write the destination copy of each listed variable
    (ghost region, device or host mirror — name spaces are collapsed);
    [Swap_buffers v] publishes [v].  [Callback] nodes are opaque — their
    effects are declared via {!Dataflow.callback_io}. *)

val reads : node -> string list
(** Variable names a node tree reads (sorted, unique), with the same
    copy-collapsing and callback-opacity conventions as {!writes}. *)

val dof_loops : Problem.t -> node list -> node list
(** Wrap a body in the per-DOF loop nest in the configured assembly order
    (default: cells outermost, then the declared indices). *)

val step_body : Problem.t -> Transform.equation -> node list

val build_cpu : Problem.t -> node
(** The CPU program (serial or the rank-local body of an SPMD program,
    with halo-exchange/allreduce nodes per the configured strategy). *)

val build_gpu : Problem.t -> transfers:(string * bool) list -> node
(** The hybrid CPU/GPU program (paper Fig. 6): async interior kernel, CPU
    boundary callback overlapping it, sync/download/combine, host
    post-step, re-upload. [transfers] lists device inputs as
    (variable, uploaded-every-step). *)
