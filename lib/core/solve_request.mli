(** A solve request — the unit of work the public API and the serve
    scheduler operate on.

    One record captures everything a caller previously hand-wired
    through [Problem.set_*]: the scenario, mesh and discretization
    dimensions, step count, temperature parameters, backend, optimizer
    level and evaluator.  Requests are plain data: they can be hashed,
    queued, serialized ({!to_json}/{!of_json}) and compared for
    batch-compatibility without touching solver state. *)

type t = {
  scenario : string;
    (** registered scenario name, e.g. ["hotspot"] or ["corner"] *)
  nx : int;               (** mesh cells in x *)
  ny : int;               (** mesh cells in y *)
  ndirs : int;            (** angular directions *)
  nbands : int;           (** LA frequency bands *)
  nsteps : int;           (** explicit time steps *)
  t_hot : float option;   (** hot boundary/source temperature, K *)
  t_cold : float option;  (** background temperature, K *)
  backend : Config.target;
  opt_level : Config.opt_level;
  eval_mode : Config.eval_mode;
  overlap : bool;         (** comm/compute overlap on SPMD/GPU paths *)
  deadline_s : float option;
    (** serve-layer admission deadline, seconds from submission *)
  label : string option;  (** free-form tag echoed into traces *)
}

val make :
  ?nx:int ->
  ?ny:int ->
  ?ndirs:int ->
  ?nbands:int ->
  ?nsteps:int ->
  ?t_hot:float ->
  ?t_cold:float ->
  ?backend:Config.target ->
  ?opt_level:Config.opt_level ->
  ?eval_mode:Config.eval_mode ->
  ?overlap:bool ->
  ?deadline_s:float ->
  ?label:string ->
  string ->
  t
(** [make scenario] builds a request with the given scenario name and
    small defaults (24x24 mesh, 8 directions, 8 bands, 20 steps, serial
    backend, O2, closure evaluator, no overlap, no deadline). *)

val validate : t -> (unit, string) result
(** Structural checks independent of scenario registration: positive
    dimensions and step counts, positive temperatures when given,
    non-negative deadline. *)

val equal : t -> t -> bool
(** Structural equality (GPU backends compare by spec name and
    shape). *)

val batch_key : t -> string
(** Requests with equal [batch_key] generate the same lowered program
    shape and may be co-batched: everything except the temperature
    parameters, deadline and label. *)

val to_json : t -> Json.t
(** Serialize for the service queue / wire protocols.  The backend is
    spelled with the canonical {!Config.target_name} grammar. *)

val of_json : Json.t -> (t, string) result
(** Parse a request; inverse of {!to_json}.  Unknown members are
    ignored; missing optional members take the {!make} defaults; the
    backend string goes through {!Config.target_of_string}. *)

val of_string : string -> (t, string) result
(** [of_json] composed with {!Json.of_string}. *)

val to_string : t -> string
(** Compact single-line JSON of {!to_json}. *)

val summary : t -> string
(** One-line human description: scenario, dims, backend, opt, eval. *)
