(* A solve request: plain data describing one solve, hashable and
   serializable.  The facade (Finch.solve) and the serve scheduler both
   consume these. *)

type t = {
  scenario : string;
  nx : int;
  ny : int;
  ndirs : int;
  nbands : int;
  nsteps : int;
  t_hot : float option;
  t_cold : float option;
  backend : Config.target;
  opt_level : Config.opt_level;
  eval_mode : Config.eval_mode;
  overlap : bool;
  deadline_s : float option;
  label : string option;
}

let make ?(nx = 24) ?(ny = 24) ?(ndirs = 8) ?(nbands = 8) ?(nsteps = 20)
    ?t_hot ?t_cold ?(backend = Config.Cpu Config.Serial)
    ?(opt_level = Config.O2) ?(eval_mode = Config.Closure)
    ?(overlap = false) ?deadline_s ?label scenario =
  { scenario; nx; ny; ndirs; nbands; nsteps; t_hot; t_cold; backend;
    opt_level; eval_mode; overlap; deadline_s; label }

let validate r =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (r.scenario <> "") "scenario name is empty" in
  let* () = check (r.nx > 0 && r.ny > 0) "mesh dimensions must be positive" in
  let* () = check (r.ndirs > 0) "ndirs must be positive" in
  let* () = check (r.nbands > 0) "nbands must be positive" in
  let* () = check (r.nsteps > 0) "nsteps must be positive" in
  let pos_opt name = function
    | Some v when v <= 0.0 -> Error (name ^ " must be positive")
    | _ -> Ok ()
  in
  let* () = pos_opt "t_hot" r.t_hot in
  let* () = pos_opt "t_cold" r.t_cold in
  match r.deadline_s with
  | Some d when d < 0.0 -> Error "deadline_s must be non-negative"
  | _ -> Ok ()

let equal a b =
  a.scenario = b.scenario && a.nx = b.nx && a.ny = b.ny
  && a.ndirs = b.ndirs && a.nbands = b.nbands && a.nsteps = b.nsteps
  && a.t_hot = b.t_hot && a.t_cold = b.t_cold
  && Config.target_name a.backend = Config.target_name b.backend
  && a.opt_level = b.opt_level && a.eval_mode = b.eval_mode
  && a.overlap = b.overlap && a.deadline_s = b.deadline_s
  && a.label = b.label

let batch_key r =
  Printf.sprintf "%s/%dx%d/d%d/b%d/s%d/%s/O%s/%s/%s" r.scenario r.nx r.ny
    r.ndirs r.nbands r.nsteps
    (Config.target_name r.backend)
    (Config.opt_level_name r.opt_level)
    (Config.eval_mode_name r.eval_mode)
    (if r.overlap then "ov" else "sync")

let to_json r =
  let base =
    [ "scenario", Json.Str r.scenario;
      "nx", Json.Num (float_of_int r.nx);
      "ny", Json.Num (float_of_int r.ny);
      "ndirs", Json.Num (float_of_int r.ndirs);
      "nbands", Json.Num (float_of_int r.nbands);
      "nsteps", Json.Num (float_of_int r.nsteps);
      "backend", Json.Str (Config.target_name r.backend);
      "opt", Json.Str (Config.opt_level_name r.opt_level);
      "eval", Json.Str (Config.eval_mode_name r.eval_mode);
      "overlap", Json.Bool r.overlap ]
  in
  let opt name f v l = match v with None -> l | Some x -> (name, f x) :: l in
  let tail =
    opt "t_hot" (fun f -> Json.Num f) r.t_hot
    @@ opt "t_cold" (fun f -> Json.Num f) r.t_cold
    @@ opt "deadline_s" (fun f -> Json.Num f) r.deadline_s
    @@ opt "label" (fun s -> Json.Str s) r.label []
  in
  Json.Obj (base @ tail)

let eval_mode_of_string s =
  match String.lowercase_ascii s with
  | "closure" -> Ok Config.Closure
  | "tape" -> Ok Config.Tape
  | "native" -> Ok Config.Native
  | _ -> Error (Printf.sprintf "bad eval mode %S (closure|tape|native)" s)

let of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Json.Obj _ ->
    let str_field name = Option.map Json.to_str (Json.member name j) in
    let int_field name default =
      match Json.member name j with
      | None -> Ok default
      | Some v -> Json.to_int v
    in
    let num_opt name =
      match Json.member name j with
      | None -> Ok None
      | Some v -> Result.map Option.some (Json.to_num v)
    in
    let* scenario =
      match str_field "scenario" with
      | None -> Error "missing \"scenario\" member"
      | Some r -> r
    in
    let d = make scenario in
    let* nx = int_field "nx" d.nx in
    let* ny = int_field "ny" d.ny in
    let* ndirs = int_field "ndirs" d.ndirs in
    let* nbands = int_field "nbands" d.nbands in
    let* nsteps = int_field "nsteps" d.nsteps in
    let* t_hot = num_opt "t_hot" in
    let* t_cold = num_opt "t_cold" in
    let* deadline_s = num_opt "deadline_s" in
    let* backend =
      match str_field "backend" with
      | None -> Ok d.backend
      | Some r -> Result.bind r Config.target_of_string
    in
    let* opt_level =
      match str_field "opt" with
      | None -> Ok d.opt_level
      | Some r -> Result.bind r Config.opt_level_of_string
    in
    let* eval_mode =
      match str_field "eval" with
      | None -> Ok d.eval_mode
      | Some r -> Result.bind r eval_mode_of_string
    in
    let* overlap =
      match Json.member "overlap" j with
      | None -> Ok d.overlap
      | Some v -> Json.to_bool v
    in
    let* label =
      match str_field "label" with
      | None -> Ok None
      | Some r -> Result.map Option.some r
    in
    let r =
      { scenario; nx; ny; ndirs; nbands; nsteps; t_hot; t_cold; backend;
        opt_level; eval_mode; overlap; deadline_s; label }
    in
    let* () = validate r in
    Ok r
  | _ -> Error "expected a JSON object"

let of_string s = Result.bind (Json.of_string s) of_json
let to_string r = Json.to_string (to_json r)

let summary r =
  Printf.sprintf "%s %dx%d d%d b%d s%d %s O%s %s%s" r.scenario r.nx r.ny
    r.ndirs r.nbands r.nsteps
    (Config.target_name r.backend)
    (Config.opt_level_name r.opt_level)
    (Config.eval_mode_name r.eval_mode)
    (match r.label with None -> "" | Some l -> " [" ^ l ^ "]")
