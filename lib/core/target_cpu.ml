(* CPU code-generation target: serial, band-parallel (equation-partitioned)
   and cell-parallel (mesh-partitioned) executors, plus a shared-memory
   multithreaded variant using OCaml domains.

   The distributed strategies run as SPMD rank programs under [Prt.Spmd]
   (deterministic in-process message passing), which makes them directly
   comparable — DOF for DOF — with the serial executor.  All executors
   advance the same lowered state machinery from [Lower]. *)

exception Target_error of string

type result = {
  states : Lower.state array; (* one per rank; index 0 for serial *)
  breakdown : Prt.Breakdown.t;
}

let primary r = r.states.(0)

(* Gather a variable's field across ranks into one full field.  For
   band-partitioned runs each rank owns a component range of the unknown;
   for cell-partitioned runs each rank owns a cell range.  Non-unknown
   variables are taken from rank 0 (every rank computes them fully). *)
let gather_unknown r =
  let st0 = r.states.(0) in
  let out = Fvm.Field.copy st0.Lower.u in
  Array.iter
    (fun (st : Lower.state) ->
      let u = st.Lower.u in
      match st.Lower.info.Lower.owned_cells with
      | Some cells -> Fvm.Field.blit_cells ~src:u ~dst:out cells
      | None ->
        (* band-partitioned: copy the owned component ranges *)
        let ranges = st.Lower.info.Lower.index_ranges in
        if ranges = [] then ()
        else
          (* enumerate owned comps by iterating the state's own loops *)
          Lower.iterate_dofs st (fun () ->
              let cell = st.Lower.env.Eval.cell in
              let c = st.Lower.ucomp () in
              Fvm.Field.set out cell c (Fvm.Field.get u cell c)))
    r.states;
  out

(* ------------------------------------------------------------------ *)
(* Serial                                                               *)
(* ------------------------------------------------------------------ *)

let noop_allreduce (_ : float array) = ()

let step_serial (st : Lower.state) =
  let b = st.Lower.breakdown in
  let track = Prt.Trace.main in
  Lower.run_pre_step st ~allreduce:noop_allreduce;
  (* the configured time stepper: forward Euler as in the paper, or an
     explicit Runge-Kutta scheme (extension) *)
  Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () -> Lower.rk_step st);
  Prt.Breakdown.timed ~track b Prt.Breakdown.Temperature (fun () ->
      Lower.run_post_step st ~allreduce:noop_allreduce);
  st.Lower.time := !(st.Lower.time) +. !(st.Lower.dt);
  incr st.Lower.step

let run_serial (p : Problem.t) =
  let st = Lower.build p in
  for _ = 1 to p.Problem.nsteps do
    Prt.Trace.span ~cat:"step" Prt.Trace.main "step" (fun () -> step_serial st)
  done;
  { states = [| st |]; breakdown = st.Lower.breakdown }

(* ------------------------------------------------------------------ *)
(* Band-parallel: partition a declared index's range across ranks.      *)
(* ------------------------------------------------------------------ *)

let run_band_parallel (p : Problem.t) ~index ~nranks =
  let idx =
    match Problem.find_index p index with
    | Some i -> i
    | None -> raise (Target_error ("band-parallel: unknown index " ^ index))
  in
  let extent = Entity.index_extent idx in
  if nranks > extent then
    raise (Target_error "band-parallel: more ranks than index values");
  let states = Array.make nranks None in
  Prt.Spmd.run ~nranks (fun rank ->
      let off, len = Fvm.Partition.block_range ~nitems:extent ~nparts:nranks rank in
      let info =
        { Lower.rank; nranks; owned_cells = None;
          index_ranges = [ index, (off, len) ] }
      in
      let st = Lower.build ~info p in
      states.(rank) <- Some st;
      let b = st.Lower.breakdown in
      let track = Prt.Trace.rank rank in
      for _ = 1 to p.Problem.nsteps do
        Lower.run_pre_step st ~allreduce:Prt.Spmd.allreduce_sum;
        Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () -> Lower.sweep st);
        Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () -> Lower.commit st);
        (* the post-step callback performs the cross-band reduction itself
           through st_allreduce (the paper's "reduction of intensity across
           bands" communication) *)
        Prt.Breakdown.timed ~track b Prt.Breakdown.Temperature (fun () ->
            Lower.run_post_step st ~allreduce:Prt.Spmd.allreduce_sum);
        st.Lower.time := !(st.Lower.time) +. !(st.Lower.dt);
        incr st.Lower.step
      done);
  let states =
    Array.map
      (function Some st -> st | None -> raise (Target_error "rank did not start"))
      states
  in
  let breakdown =
    Prt.Breakdown.sum_distinct
      (Array.to_list (Array.map (fun st -> st.Lower.breakdown) states))
  in
  { states; breakdown }

(* ------------------------------------------------------------------ *)
(* Cell-parallel: RCB mesh partition + halo exchange of the unknown.    *)
(* ------------------------------------------------------------------ *)

(* Sanitizer hook for the halo executors: after each commit, scan the
   rank's owned cells for poison that a broken exchange let propagate
   into real data, then poison the ghost region so the next sweep can
   only observe stale ghosts as NaN.  A correct schedule overwrites every
   poisoned ghost before it is read (blocking path: the blit round;
   overlap path: finish_exchange precedes the frontier sweep and the
   interior reads no ghosts), so sanitized runs stay bit-identical. *)
let sanitize_commit (st : Lower.state) ~owned ~ghosts =
  if Fvm.Field.sanitize_enabled () then begin
    Fvm.Field.record_poison (Fvm.Field.count_poison_cells st.Lower.u owned);
    Fvm.Field.poison_cells st.Lower.u ghosts
  end

let run_cell_parallel ?(overlap = false) (p : Problem.t) ~nranks =
  let mesh = Problem.mesh_exn p in
  let part = Fvm.Partition.rcb_mesh mesh ~nparts:nranks in
  let halo = Fvm.Halo.build mesh part in
  let states = Array.make nranks None in
  let get_state r =
    match states.(r) with
    | Some st -> st
    | None -> raise (Target_error "rank state not ready")
  in
  Prt.Spmd.run ~nranks (fun rank ->
      let owned = Fvm.Partition.cells_of_rank part rank in
      let info =
        { Lower.rank; nranks; owned_cells = Some owned; index_ranges = [] }
      in
      let st = Lower.build ~info p in
      states.(rank) <- Some st;
      (* everyone must be constructed before any exchange *)
      Prt.Spmd.barrier ();
      let b = st.Lower.breakdown in
      let track = Prt.Trace.rank rank in
      if overlap then begin
        (* Overlapped halo exchange: after each commit, ghost values go
           out as nonblocking messages; the next step sweeps interior
           cells (whose stencils read no ghosts) while they are in
           flight, then unpacks and sweeps the frontier.  Ranks drift
           independently — the only synchronization is message matching —
           yet the result is bit-identical to the synchronous path:
           per-DOF updates are order-independent, frontier sweeps see
           exactly the ghost values the blocking path would have, and the
           temperature update reads owned cells only. *)
        let interior, frontier = Fvm.Halo.split_cells halo rank ~owned in
        let pending = ref None in
        for _ = 1 to p.Problem.nsteps do
          Lower.run_pre_step st ~allreduce:Prt.Spmd.allreduce_sum;
          (match !pending with
           | None ->
             (* first step: ghosts still hold initial conditions *)
             Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () ->
                 Lower.sweep st)
           | Some ses ->
             Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () ->
                 Lower.sweep_cells st interior);
             Prt.Breakdown.timed ~track b Prt.Breakdown.Communication
               (fun () -> Fvm.Halo.finish_exchange ses st.Lower.u);
             Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () ->
                 Lower.sweep_cells st frontier));
          Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () ->
              Lower.commit st);
          sanitize_commit st ~owned ~ghosts:halo.Fvm.Halo.ghosts.(rank);
          pending :=
            Some
              (Prt.Breakdown.timed ~track b Prt.Breakdown.Communication
                 (fun () -> Fvm.Halo.start_exchange halo ~rank st.Lower.u));
          Prt.Breakdown.timed ~track b Prt.Breakdown.Temperature (fun () ->
              Lower.run_post_step st ~allreduce:Prt.Spmd.allreduce_sum);
          st.Lower.time := !(st.Lower.time) +. !(st.Lower.dt);
          incr st.Lower.step
        done;
        (* drain the last round so no request is left unmatched *)
        match !pending with
        | Some ses ->
          Prt.Breakdown.timed ~track b Prt.Breakdown.Communication (fun () ->
              Fvm.Halo.finish_exchange ses st.Lower.u)
        | None -> ()
      end
      else
        for _ = 1 to p.Problem.nsteps do
          Lower.run_pre_step st ~allreduce:Prt.Spmd.allreduce_sum;
          Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () -> Lower.sweep st);
          Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () -> Lower.commit st);
          sanitize_commit st ~owned ~ghosts:halo.Fvm.Halo.ghosts.(rank);
          (* halo exchange: receive ghost-cell values of the unknown from
             the owning ranks.  The barrier gives BSP semantics; reading
             the peer's committed buffer stands in for matched send/recv. *)
          Prt.Spmd.barrier ();
          Prt.Breakdown.timed ~track b Prt.Breakdown.Communication (fun () ->
              List.iter
                (fun (e : Fvm.Halo.exchange) ->
                  Fvm.Field.blit_cells
                    ~src:(get_state e.Fvm.Halo.from_rank).Lower.u
                    ~dst:st.Lower.u e.Fvm.Halo.cells)
                (Fvm.Halo.recvs_of halo rank);
              Fvm.Halo.account halo rank ~ncomp:(Fvm.Field.ncomp st.Lower.u));
          Prt.Spmd.barrier ();
          Prt.Breakdown.timed ~track b Prt.Breakdown.Temperature (fun () ->
              Lower.run_post_step st ~allreduce:Prt.Spmd.allreduce_sum);
          st.Lower.time := !(st.Lower.time) +. !(st.Lower.dt);
          incr st.Lower.step
        done);
  let states =
    Array.map
      (function Some st -> st | None -> raise (Target_error "rank did not start"))
      states
  in
  let breakdown =
    Prt.Breakdown.sum_distinct
      (Array.to_list (Array.map (fun st -> st.Lower.breakdown) states))
  in
  { states; breakdown }

(* ------------------------------------------------------------------ *)
(* Shared-memory multithreading: domains over cell ranges.              *)
(* ------------------------------------------------------------------ *)

(* Each domain gets its own lowered state (own env and closures) sharing
   the same underlying mesh; fields are shared by pointing every state at
   the base state's field storage.  Writes are disjoint (cell ranges),
   reads of the previous step go through the shared current buffer, so the
   sweep is race-free. *)
let make_workers ?(private_clock = false) (p : Problem.t) ~(base : Lower.state)
    ~ndomains ~index_ranges =
  let mesh = base.Lower.mesh in
  let part = Fvm.Partition.blocks ~nitems:mesh.Fvm.Mesh.ncells ~nparts:ndomains in
  Array.init ndomains (fun rank ->
      let info =
        { Lower.rank; nranks = ndomains;
          owned_cells = Some (Fvm.Partition.cells_of_rank part rank);
          index_ranges }
      in
      Lower.build ~info ~share_with:base ~private_clock p)

(* Per-worker breakdown counters summed into the aggregate, like the SPMD
   executors do (the seed only observed worker sweeps through the base
   timer).  [sum_distinct] keeps the sum correct even when the caller's
   record appears both as the base and as a pool participant. *)
let sum_breakdowns (base : Lower.state) workers =
  Prt.Breakdown.sum_distinct
    (base.Lower.breakdown
     :: Array.to_list
          (Array.map (fun (st : Lower.state) -> st.Lower.breakdown) workers))

(* One timestep's parallel region: every pool participant sweeps its cell
   range, all meet at the barrier (no domain may publish u_new while
   another still reads u), then commit.  Phase times land in each worker's
   own breakdown. *)
let pool_step pool (workers : Lower.state array) =
  Prt.Pool.run pool (fun rank ->
      let st = workers.(rank) in
      let b = st.Lower.breakdown in
      let track = Prt.Trace.worker rank in
      Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () -> Lower.sweep st);
      Prt.Pool.barrier pool;
      Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () -> Lower.commit st))

(* Persistent-pool executor: domains are spawned once per solve and parked
   between regions, not respawned twice per timestep. *)
let run_threaded_classic (p : Problem.t) ~ndomains =
  (* base state: full ownership, runs pre/post-step and initialization *)
  let base = Lower.build p in
  let workers = make_workers p ~base ~ndomains ~index_ranges:[] in
  Prt.Pool.with_pool ~size:ndomains (fun pool ->
      for _ = 1 to p.Problem.nsteps do
        Prt.Trace.span ~cat:"step" Prt.Trace.main "step" (fun () ->
            Lower.run_pre_step base ~allreduce:noop_allreduce;
            pool_step pool workers;
            Prt.Breakdown.timed ~track:Prt.Trace.main base.Lower.breakdown
              Prt.Breakdown.Temperature
              (fun () -> Lower.run_post_step base ~allreduce:noop_allreduce);
            (* time/dt refs are shared between base and workers *)
            base.Lower.time := !(base.Lower.time) +. !(base.Lower.dt);
            incr base.Lower.step)
      done);
  { states = [| base |]; breakdown = sum_breakdowns base workers }

(* ------------------------------------------------------------------ *)
(* Fused threaded schedule (opt_level >= O1): one pool region per PAIR  *)
(* of timesteps with a single internal barrier — the executor mirror of *)
(* the Opt.fuse_steps IR rewrite.                                       *)
(* ------------------------------------------------------------------ *)

(* The classic schedule spends one pool region and one barrier round per
   step ({sweep; barrier; commit}).  The fused schedule replaces the
   commit copy with a buffer-ROLE swap and packs two steps into one
   region:

     phase A: sweep u -> u_new; post-step on the A parity; advance;
     barrier;
     phase B: sweep u_new -> u; post-step on the B parity; advance.

   The "B parity" of a worker is a rebound state whose unknown binding
   points at the u_new storage (so reading the unknown reads what phase A
   just wrote) and whose double buffer is the u storage.  The one barrier
   protects the only cross-worker dependency: phase B's neighbour (Cell2)
   reads of values phase A wrote.  Legality, checked by
   [fused_schedule_ok]:
   - forward Euler only (the parity trick has no meaning for multi-stage
     schemes or the point-implicit solve's in-place reads);
   - no pre-step callbacks (they expect the base clock between steps);
   - every expression boundary condition of the unknown is closed (no
     entity references): expression BCs compile against the unswapped
     storage at build time, so one referencing a variable would read the
     stale buffer in phase B.  Callback BCs resolve fields through the
     sweeping state and are parity-safe;
   - post-step callbacks, if any, declare their I/O and no field they
     write is read at the neighbouring cell by the surface term (within
     a phase, one worker's post-step writes would race with another's
     neighbour reads), nor is the unknown itself written.  Post-steps
     run per worker restricted to its own cells — the step_ctx st_cells
     contract already relied on by the cell-parallel executor. *)
let fused_schedule_ok ?post_io (p : Problem.t) =
  let module E = Finch_symbolic.Expr in
  match p.Problem.opt_level with
  | Config.O0 -> false
  | Config.O1 | Config.O2 ->
    p.Problem.stepper = Config.Euler_explicit
    && p.Problem.pre_step = []
    &&
    let eq = Problem.the_equation p in
    let closed_bcs =
      List.for_all
        (fun (bc : Problem.bc) ->
          match bc.Problem.bc_spec with
          | Problem.Bc_callback _ -> true
          | Problem.Bc_expr e -> E.ref_names e = [])
        (Problem.bcs_for p eq.Transform.eq_var)
    in
    let post_ok =
      if p.Problem.post_step = [] then true
      else
        match post_io with
        | None -> false (* opaque callbacks: keep the classic schedule *)
        | Some (io : Dataflow.callback_io) ->
          let neighbour_reads =
            List.filter_map
              (fun (name, _, side) ->
                if side = E.Cell2 then Some name else None)
              (E.refs eq.Transform.rvol @ E.refs eq.Transform.rsurf)
          in
          (not (List.mem eq.Transform.eq_var io.Dataflow.cb_writes))
          && List.for_all
               (fun w -> not (List.mem w neighbour_reads))
               io.Dataflow.cb_writes
    in
    closed_bcs && post_ok

(* The B-parity of a worker: unknown binding moved onto the u_new storage,
   double buffer moved onto the u storage.  Clock and step refs are shared
   with the worker (rebind inherits them), so advancing one advances both. *)
let make_parity (st : Lower.state) =
  let uname = st.Lower.uvar.Entity.vname in
  let fields =
    List.map
      (fun (n, f) -> if n = uname then n, st.Lower.u_new else n, f)
      st.Lower.fields
  in
  Lower.rebind st ~fields ~u_new:st.Lower.u

(* One fused region = two timesteps, one barrier. *)
let fused_region pool (workers : Lower.state array) (parity : Lower.state array) =
  Prt.Pool.run pool (fun rank ->
      let st_a = workers.(rank) and st_b = parity.(rank) in
      let b_a = st_a.Lower.breakdown and b_b = st_b.Lower.breakdown in
      let track = Prt.Trace.worker rank in
      Prt.Breakdown.timed ~track b_a Prt.Breakdown.Intensity (fun () ->
          Lower.sweep st_a);
      (* post-step of the first step reads the just-swept values through
         the B parity; it writes only this worker's cells, so it is safe
         before the barrier *)
      Prt.Breakdown.timed ~track b_b Prt.Breakdown.Temperature (fun () ->
          Lower.run_post_step st_b ~allreduce:noop_allreduce);
      st_a.Lower.time := !(st_a.Lower.time) +. !(st_a.Lower.dt);
      incr st_a.Lower.step;
      Prt.Pool.barrier pool;
      Prt.Breakdown.timed ~track b_b Prt.Breakdown.Intensity (fun () ->
          Lower.sweep st_b);
      Prt.Breakdown.timed ~track b_a Prt.Breakdown.Temperature (fun () ->
          Lower.run_post_step st_a ~allreduce:noop_allreduce);
      st_a.Lower.time := !(st_a.Lower.time) +. !(st_a.Lower.dt);
      incr st_a.Lower.step)

(* Trailing region for an odd step count: the classic step shape, but the
   post-step still runs per worker on its own cells. *)
let fused_tail pool (workers : Lower.state array) =
  Prt.Pool.run pool (fun rank ->
      let st = workers.(rank) in
      let b = st.Lower.breakdown in
      let track = Prt.Trace.worker rank in
      Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () ->
          Lower.sweep st);
      Prt.Pool.barrier pool;
      Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () ->
          Lower.commit st);
      Prt.Breakdown.timed ~track b Prt.Breakdown.Temperature (fun () ->
          Lower.run_post_step st ~allreduce:noop_allreduce);
      st.Lower.time := !(st.Lower.time) +. !(st.Lower.dt);
      incr st.Lower.step)

let run_threaded_fused (p : Problem.t) ~ndomains =
  let base = Lower.build p in
  (* workers carry private clocks: each advances its own time mid-region
     instead of racing on the base refs *)
  let workers =
    make_workers p ~base ~ndomains ~index_ranges:[] ~private_clock:true
  in
  let parity = Array.map make_parity workers in
  let npairs = p.Problem.nsteps / 2 in
  Prt.Pool.with_pool ~size:ndomains (fun pool ->
      for _ = 1 to npairs do
        Prt.Trace.span ~cat:"step" Prt.Trace.main "step-pair" (fun () ->
            fused_region pool workers parity);
        base.Lower.time := !(base.Lower.time) +. (2. *. !(base.Lower.dt));
        base.Lower.step := !(base.Lower.step) + 2
      done;
      if p.Problem.nsteps mod 2 = 1 then begin
        Prt.Trace.span ~cat:"step" Prt.Trace.main "step" (fun () ->
            fused_tail pool workers);
        base.Lower.time := !(base.Lower.time) +. !(base.Lower.dt);
        incr base.Lower.step
      end);
  let breakdown =
    Prt.Breakdown.sum_distinct
      (base.Lower.breakdown
       :: (Array.to_list (Array.map (fun st -> st.Lower.breakdown) workers)
           @ Array.to_list (Array.map (fun st -> st.Lower.breakdown) parity)))
  in
  { states = [| base |]; breakdown }

let run_threaded ?post_io (p : Problem.t) ~ndomains =
  if ndomains < 1 then raise (Target_error "run_threaded: ndomains < 1");
  if fused_schedule_ok ?post_io p then run_threaded_fused p ~ndomains
  else run_threaded_classic p ~ndomains

(* The seed executor, kept as the benchmark baseline: fresh domains are
   spawned and joined twice per timestep, so their start-up cost is paid
   2*nsteps times per solve. *)
let run_threaded_respawn (p : Problem.t) ~ndomains =
  if ndomains < 1 then raise (Target_error "run_threaded_respawn: ndomains < 1");
  let base = Lower.build p in
  let workers = make_workers p ~base ~ndomains ~index_ranges:[] in
  let b = base.Lower.breakdown in
  let track = Prt.Trace.main in
  for _ = 1 to p.Problem.nsteps do
    Lower.run_pre_step base ~allreduce:noop_allreduce;
    Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () ->
        let spawned =
          Array.init (ndomains - 1) (fun i ->
              Domain.spawn (fun () -> Lower.sweep workers.(i + 1)))
        in
        Lower.sweep workers.(0);
        Array.iter Domain.join spawned);
    Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () ->
        let spawned =
          Array.init (ndomains - 1) (fun i ->
              Domain.spawn (fun () -> Lower.commit workers.(i + 1)))
        in
        Lower.commit workers.(0);
        Array.iter Domain.join spawned);
    Prt.Breakdown.timed ~track b Prt.Breakdown.Temperature (fun () ->
        Lower.run_post_step base ~allreduce:noop_allreduce);
    base.Lower.time := !(base.Lower.time) +. !(base.Lower.dt);
    incr base.Lower.step
  done;
  { states = [| base |]; breakdown = b }

(* ------------------------------------------------------------------ *)
(* Hybrid: SPMD band-parallel ranks x pool domains per rank.            *)
(* ------------------------------------------------------------------ *)

(* The paper's MPI+threads mode: each SPMD rank owns a band slice (its own
   full field storage, as in [run_band_parallel]) and executes its sweeps
   on a persistent domain pool over cell ranges.  The pool is shared by
   all ranks — rank programs are cooperative fibers, so their parallel
   regions are serialized on it; worker states per rank carry BOTH the
   rank's band slice and their cell block. *)
let run_hybrid (p : Problem.t) ~index ~nranks ~ndomains =
  if ndomains < 1 then raise (Target_error "run_hybrid: ndomains < 1");
  let idx =
    match Problem.find_index p index with
    | Some i -> i
    | None -> raise (Target_error ("hybrid: unknown index " ^ index))
  in
  let extent = Entity.index_extent idx in
  if nranks > extent then
    raise (Target_error "hybrid: more ranks than index values");
  let states = Array.make nranks None in
  let breakdowns = Array.init nranks (fun _ -> Prt.Breakdown.zero ()) in
  Prt.Pool.with_pool ~size:ndomains (fun pool ->
      Prt.Spmd.run ~nranks (fun rank ->
          let off, len =
            Fvm.Partition.block_range ~nitems:extent ~nparts:nranks rank
          in
          let index_ranges = [ index, (off, len) ] in
          let info =
            { Lower.rank; nranks; owned_cells = None; index_ranges }
          in
          let st = Lower.build ~info p in
          states.(rank) <- Some st;
          let workers = make_workers p ~base:st ~ndomains ~index_ranges in
          let b = st.Lower.breakdown in
          let track = Prt.Trace.rank rank in
          for _ = 1 to p.Problem.nsteps do
            Lower.run_pre_step st ~allreduce:Prt.Spmd.allreduce_sum;
            pool_step pool workers;
            Prt.Breakdown.timed ~track b Prt.Breakdown.Temperature (fun () ->
                Lower.run_post_step st ~allreduce:Prt.Spmd.allreduce_sum);
            st.Lower.time := !(st.Lower.time) +. !(st.Lower.dt);
            incr st.Lower.step
          done;
          breakdowns.(rank) <- sum_breakdowns st workers));
  let states =
    Array.map
      (function Some st -> st | None -> raise (Target_error "rank did not start"))
      states
  in
  let breakdown =
    Array.fold_left Prt.Breakdown.add (Prt.Breakdown.zero ()) breakdowns
  in
  { states; breakdown }
