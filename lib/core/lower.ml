(* Lowering: from a declared problem to executable state.

   Creates field storage for every variable, compiles the equation's volume
   and flux expressions to closures, resolves boundary conditions to a
   per-face table, and packages the loop/rank configuration the executors
   need.  One [state] is built per rank; serial runs have a single rank
   owning everything. *)


exception Lower_error of string

type bc_resolved =
  | RFlux_expr of Eval.compiled
  | RFlux_callback of Problem.bc_callback * float array
  | RDirichlet_expr of Eval.compiled
  | RDirichlet_callback of Problem.bc_callback * float array

type rankinfo = {
  rank : int;
  nranks : int;
  owned_cells : int array option; (* None = every cell (serial / band runs) *)
  index_ranges : (string * (int * int)) list;
    (* per index name: owned (offset, length), 0-based; full range if absent *)
}

let serial_rankinfo = { rank = 0; nranks = 1; owned_cells = None; index_ranges = [] }

(* Generated-code entry points for one state (lib/codegen).  When
   present, [sweep]/[sweep_cells]/[commit]/[dof_rhs_interior] dispatch to
   them instead of the closure interpreter; the generated bodies are
   bit-identical by construction, so every executor schedule composes
   unchanged. *)
type native_entry = {
  n_sweep : int array option -> unit;
  n_commit : int array option -> unit;
  n_dof_interior : int -> int -> float;
}

type state = {
  p : Problem.t;
  mesh : Fvm.Mesh.t;
  eq : Transform.equation;
  uvar : Entity.variable;
  u : Fvm.Field.t;
  u_new : Fvm.Field.t;
  fields : (string * Fvm.Field.t) list; (* all variables incl. the unknown *)
  env : Eval.env;
  bindings : Eval.bindings;
  rvol_f : Eval.compiled;
  rsurf_f : Eval.compiled;
  ucomp : unit -> int;       (* component of the unknown at current ivals *)
  face_bc : bc_resolved option array; (* indexed by face id; None on interior *)
  time : float ref;
  dt : float ref;
  step : int ref;
  info : rankinfo;
  breakdown : Prt.Breakdown.t;
  (* loop plan: outer-to-inner entries *)
  loops : loop_entry list;
  (* -d(rvol)/du, compiled lazily (used by the point-implicit stepper) *)
  rvol_du_f : Eval.compiled Lazy.t;
  (* tape handles behind rvol_f/rsurf_f when eval_mode = Tape, for op
     statistics; empty in closure mode *)
  tapes : (string * Eval.tape) list;
  (* generated entry points, installed by the native-codegen hook when
     eval_mode = Native and emission/compilation succeeded *)
  mutable native : native_entry option;
}

and loop_entry =
  | Over_cells
  | Over_index of string * int (* extent (full); rank restriction applied at run time *)

(* Core cannot depend on lib/codegen (which depends on core), so native
   code generation reaches states through this hook: Finch_codegen
   installs a function that emits, compiles/loads and binds a state,
   returning its entry points (or None to fall back to the closures).
   Only consulted when the problem's eval_mode is Native. *)
let native_hook : (state -> native_entry option) ref = ref (fun _ -> None)
let native_hook_installed = ref false

let warned_no_hook = ref false

let attach_native st =
  match st.p.Problem.eval_mode with
  | Config.Native ->
    if !native_hook_installed then st.native <- !native_hook st
    else if not !warned_no_hook then begin
      warned_no_hook := true;
      prerr_endline
        "finch: warning: eval mode is native but no codegen backend is \
         installed; falling back to the closure interpreter"
    end
  | Config.Closure | Config.Tape -> ()

let field st name =
  match List.assoc_opt name st.fields with
  | Some f -> f
  | None -> raise (Lower_error ("no field for variable " ^ name))

let coef_exn (p : Problem.t) name =
  match Problem.find_coefficient p name with
  | Some c -> c
  | None -> raise (Lower_error ("unknown coefficient " ^ name))

(* Layout metadata for Eval: per-index (name, 1-based lo, stride), first
   declared index fastest. *)
let layout_of_var (v : Entity.variable) =
  let rec go stride = function
    | [] -> []
    | (i : Entity.index) :: rest ->
      (i.Entity.iname, i.Entity.lo, stride)
      :: go (stride * Entity.index_extent i) rest
  in
  go 1 v.Entity.vindices

let rec build ?(info = serial_rankinfo) ?share_with ?(private_clock = false)
    (p : Problem.t) : state =
  let mesh = Problem.mesh_exn p in
  let eq = Problem.the_equation p in
  let uvar =
    match Problem.find_variable p eq.Transform.eq_var with
    | Some v -> v
    | None -> raise (Lower_error "equation variable not declared")
  in
  (* fields for every variable; shared-memory workers reuse the base
     state's storage and differ only in env/closures/ownership *)
  let fields =
    match share_with with
    | Some (base : state) -> base.fields
    | None ->
      List.map
        (fun (v : Entity.variable) ->
          ( v.Entity.vname,
            Fvm.Field.create ~name:v.Entity.vname ~ncells:mesh.Fvm.Mesh.ncells
              ~ncomp:(Entity.var_ncomp v) () ))
        p.Problem.variables
  in
  let u = List.assoc uvar.Entity.vname fields in
  let u_new =
    match share_with with
    | Some base -> base.u_new
    | None ->
      Fvm.Field.create ~name:(uvar.Entity.vname ^ "_new")
        ~ncells:mesh.Fvm.Mesh.ncells ~ncomp:(Entity.var_ncomp uvar) ()
  in
  (* bindings for the expression compiler *)
  let bindings : Eval.bindings =
    List.map
      (fun (v : Entity.variable) ->
        v.Entity.vname,
        Eval.Bfield (List.assoc v.Entity.vname fields, layout_of_var v))
      p.Problem.variables
    @ List.map
        (fun (c : Entity.coefficient) ->
          let b =
            match c.Entity.cvalue with
            | Entity.Const x -> Eval.Bcoef_const x
            | Entity.Arr a ->
              let iname, lo =
                match c.Entity.cindex with
                | Some i -> i.Entity.iname, i.Entity.lo
                | None -> "", 1
              in
              Eval.Bcoef_arr (a, iname, lo)
            | Entity.Space_fn f -> Eval.Bcoef_fn f
          in
          c.Entity.cname, b)
        p.Problem.coefficients
  in
  let dt, time =
    match share_with with
    (* [private_clock] gives a shared-storage worker its own dt/time refs
       (seeded from the base) so a fused schedule can advance workers
       independently between barriers without racing on the base clock *)
    | Some base when private_clock -> ref !(base.dt), ref !(base.time)
    | Some base -> base.dt, base.time
    | None -> ref p.Problem.dt, ref 0.
  in
  let index_names = List.map (fun i -> i.Entity.iname) p.Problem.indices in
  let env = Eval.make_env ~mesh ~dt ~time ~index_names in
  let compile_rhs name e =
    match p.Problem.eval_mode with
    (* Native compiles the closures too: they are the fallback and serve
       the boundary-term evaluation the generated code calls back into *)
    | Config.Closure | Config.Native -> Eval.compile bindings e, None
    | Config.Tape ->
      let t = Eval.compile_tape bindings e in
      Eval.tape_compiled t, Some (name, t)
  in
  let rvol_f, rvol_t = compile_rhs "rvol" eq.Transform.rvol in
  let rsurf_f, rsurf_t = compile_rhs "rsurf" eq.Transform.rsurf in
  let tapes = List.filter_map Fun.id [ rvol_t; rsurf_t ] in
  let rvol_du_f =
    lazy (fst (compile_rhs "rvol_du" (Transform.rvol_linearization eq)))
  in
  (* component of the unknown from current index values *)
  let ucomp =
    let pieces =
      List.map
        (fun (iname, _lo, stride) ->
          let r = Eval.ival env iname in
          fun () -> !r * stride)
        (layout_of_var uvar)
    in
    fun () -> List.fold_left (fun acc f -> acc + f ()) 0 pieces
  in
  (* resolve boundary conditions into a per-face table *)
  let face_bc = Array.make mesh.Fvm.Mesh.nfaces None in
  let bcs = Problem.bcs_for p uvar.Entity.vname in
  List.iter
    (fun (bc : Problem.bc) ->
      let resolved =
        match bc.Problem.bc_kind, bc.Problem.bc_spec with
        | Config.Flux, Problem.Bc_expr e -> RFlux_expr (Eval.compile bindings e)
        | Config.Dirichlet, Problem.Bc_expr e ->
          RDirichlet_expr (Eval.compile bindings e)
        | Config.Flux, Problem.Bc_callback { name; args } -> (
          match Problem.find_callback p name with
          | Some f -> RFlux_callback (f, args)
          | None -> raise (Lower_error ("unknown callback " ^ name)))
        | Config.Dirichlet, Problem.Bc_callback { name; args } -> (
          match Problem.find_callback p name with
          | Some f -> RDirichlet_callback (f, args)
          | None -> raise (Lower_error ("unknown callback " ^ name)))
      in
      Array.iter
        (fun f ->
          if mesh.Fvm.Mesh.face_bid.(f) = bc.Problem.bc_region then
            face_bc.(f) <- Some resolved)
        mesh.Fvm.Mesh.boundary_faces)
    bcs;
  (* loop plan *)
  let loops =
    let order =
      match p.Problem.loop_order with
      | Some o -> o
      | None -> "elements" :: index_names
    in
    let seen_cells = List.exists (fun s -> s = "elements" || s = "cells") order in
    if not seen_cells then raise (Lower_error "assemblyLoops must include \"elements\"");
    List.iter
      (fun s ->
        if s <> "elements" && s <> "cells" && Problem.find_index p s = None then
          raise (Lower_error ("assemblyLoops: unknown index " ^ s)))
      order;
    List.map
      (fun s ->
        if s = "elements" || s = "cells" then Over_cells
        else
          let i =
            match Problem.find_index p s with Some i -> i | None -> assert false
          in
          Over_index (s, Entity.index_extent i))
      order
  in
  let st =
    {
      p;
      mesh;
      eq;
      uvar;
      u;
      u_new;
      fields;
      env;
      bindings;
      rvol_f;
      rsurf_f;
      ucomp;
      face_bc;
      time;
      dt;
      step = ref 0;
      info;
      breakdown = Prt.Breakdown.zero ();
      loops;
      rvol_du_f;
      tapes;
      native = None;
    }
  in
  (match share_with with
   | Some _ -> ()
   | None -> apply_initial_conditions st);
  attach_native st;
  st

and apply_initial_conditions st =
  let mesh = st.mesh in
  List.iter
    (fun (name, spec) ->
      match List.assoc_opt name st.fields with
      | None -> raise (Lower_error ("initial condition for unknown variable " ^ name))
      | Some f -> (
        match spec with
        | Problem.Init_const v -> Fvm.Field.fill f v
        | Problem.Init_fn g ->
          Fvm.Field.init f (fun cell comp ->
              g (Fvm.Mesh.cell_centroid mesh cell) comp)))
    st.p.Problem.initials;
  (* the double buffer starts as a copy so untouched comps stay coherent *)
  Fvm.Field.blit ~src:st.u ~dst:st.u_new

(* owned range of an index for this rank (0-based offset, length) *)
let index_range st name extent =
  match List.assoc_opt name st.info.index_ranges with
  | Some r -> r
  | None -> 0, extent

(* Run [f] for every (cell x index) combination in the configured loop
   order, with the cell loop drawn from [cells] ([None] = every mesh
   cell).  [f] is called with loop state already set in [st.env]. *)
let iterate_dofs_cells st ~cells (f : unit -> unit) =
  let env = st.env in
  (* mutable inputs (fields, dt, time) may have changed since the last
     traversal: invalidate tape caches *)
  Eval.bump_epoch env;
  let rec go = function
    | [] -> f ()
    | Over_cells :: rest ->
      (match cells with
       | None ->
         for c = 0 to st.mesh.Fvm.Mesh.ncells - 1 do
           env.Eval.cell <- c;
           go rest
         done
       | Some cs ->
         for i = 0 to Array.length cs - 1 do
           env.Eval.cell <- cs.(i);
           go rest
         done)
    | Over_index (name, extent) :: rest ->
      let off, len = index_range st name extent in
      let r = Eval.ival env name in
      for v = off to off + len - 1 do
        r := v;
        go rest
      done
  in
  go st.loops

(* Run [f] for every owned (cell x index) combination. *)
let iterate_dofs st f = iterate_dofs_cells st ~cells:st.info.owned_cells f

(* The per-DOF conservation-form update (forward Euler form); assumes
   [st.env] has cell and index values set.  Returns the updated value but
   does not store it. *)
let rec dof_rhs st =
  let env = st.env in
  let mesh = st.mesh in
  let cell = env.Eval.cell in
  let rv = st.rvol_f env in
  let flux = ref 0. in
  let faces = mesh.Fvm.Mesh.cell_faces.(cell) in
  for i = 0 to Array.length faces - 1 do
    let f = faces.(i) in
    env.Eval.face <- f;
    env.Eval.nsign <- Fvm.Mesh.normal_sign mesh f cell;
    let c2 = Fvm.Mesh.neighbour mesh f cell in
    if c2 >= 0 then begin
      env.Eval.cell2 <- c2;
      flux := !flux +. (mesh.Fvm.Mesh.face_area.(f) *. st.rsurf_f env)
    end
    else begin
      env.Eval.cell2 <- -1;
      match st.face_bc.(f) with
      | None -> () (* unconstrained boundary: zero surface contribution *)
      | Some bc -> flux := !flux +. (mesh.Fvm.Mesh.face_area.(f) *. boundary_term st bc f cell)
    end
  done;
  rv +. (!flux /. mesh.Fvm.Mesh.cell_volume.(cell))

and boundary_term st bc f cell =
  let env = st.env in
  match bc with
  | RFlux_expr g -> g env
  | RFlux_callback (cb, args) -> cb (make_bc_ctx st ~args f cell)
  | RDirichlet_expr g ->
    let ghost_val = g env in
    with_ghost st ghost_val (fun () -> st.rsurf_f env)
  | RDirichlet_callback (cb, args) ->
    let ghost_val = cb (make_bc_ctx st ~args f cell) in
    with_ghost st ghost_val (fun () -> st.rsurf_f env)

and with_ghost st ghost_val k =
  let env = st.env in
  let uname = st.uvar.Entity.vname in
  let saved = env.Eval.ghost in
  env.Eval.ghost <-
    Some
      (fun name comp ->
        if String.equal name uname then ghost_val
        else Fvm.Field.get (field st name) env.Eval.cell comp);
  let r = k () in
  env.Eval.ghost <- saved;
  r

and make_bc_ctx st ~args f cell =
  let env = st.env in
  {
    Problem.bc_mesh = st.mesh;
    bc_field = (fun n -> field st n);
    bc_coef = (fun n -> coef_exn st.p n);
    bc_face = f;
    bc_cell = cell;
    bc_normal = Fvm.Mesh.face_normal st.mesh f;
    bc_ivals = List.map (fun (n, r) -> n, !r) env.Eval.ivals;
    bc_comp = st.ucomp ();
    bc_time = !(st.time);
    bc_args = args;
  }

let sweep_dof st ~dt () =
  let cell = st.env.Eval.cell in
  let c = st.ucomp () in
  let v = Fvm.Field.get st.u cell c +. (dt *. dof_rhs st) in
  Fvm.Field.set st.u_new cell c v

(* One forward-Euler sweep over the owned DOFs into the double buffer.
   A generated native entry replaces the whole loop nest (bit-identical
   by construction), not just the expression evaluation. *)
let sweep st =
  match st.native with
  | Some n -> n.n_sweep st.info.owned_cells
  | None -> iterate_dofs st (sweep_dof st ~dt:!(st.dt))

(* The same sweep restricted to [cells] (a subset of the owned cells).
   Per-DOF updates are independent, so sweeping disjoint subsets in any
   order is bit-identical to one full [sweep] — which is what lets an
   executor sweep interior cells while ghost messages are in flight and
   frontier cells after they land. *)
let sweep_cells st cells =
  match st.native with
  | Some n -> n.n_sweep (Some cells)
  | None -> iterate_dofs_cells st ~cells:(Some cells) (sweep_dof st ~dt:!(st.dt))

(* Publish the double buffer: owned DOFs of u_new become current. *)
let commit st =
  match st.native with
  | Some n -> n.n_commit st.info.owned_cells
  | None ->
    iterate_dofs st (fun () ->
        let cell = st.env.Eval.cell in
        let c = st.ucomp () in
        Fvm.Field.set st.u cell c (Fvm.Field.get st.u_new cell c))

let make_step_ctx st ~allreduce =
  {
    Problem.st_mesh = st.mesh;
    st_field = (fun n -> field st n);
    st_coef = (fun n -> coef_exn st.p n);
    st_time = !(st.time);
    st_dt = !(st.dt);
    st_step = !(st.step);
    st_rank = st.info.rank;
    st_nranks = st.info.nranks;
    st_index_range =
      (fun name ->
        match Problem.find_index st.p name with
        | None -> raise (Lower_error ("step ctx: unknown index " ^ name))
        | Some i -> index_range st name (Entity.index_extent i));
    st_allreduce = allreduce;
    st_cells = st.info.owned_cells;
  }

let run_post_step st ~allreduce =
  let ctx = make_step_ctx st ~allreduce in
  List.iter (fun f -> f ctx) st.p.Problem.post_step

let run_pre_step st ~allreduce =
  let ctx = make_step_ctx st ~allreduce in
  List.iter (fun f -> f ctx) st.p.Problem.pre_step

(* ------------------------------------------------------------------ *)
(* Support for the hybrid GPU target.                                  *)
(* ------------------------------------------------------------------ *)

(* Decompose a flat component id of the unknown into per-index values
   (first declared index fastest) and store them in the env. *)
let set_ivals_of_comp st comp =
  let env = st.env in
  let rec go comp = function
    | [] -> ()
    | (i : Entity.index) :: rest ->
      let ext = Entity.index_extent i in
      let r = Eval.ival env i.Entity.iname in
      r := comp mod ext;
      go (comp / ext) rest
  in
  go comp st.uvar.Entity.vindices

(* A state whose closures read and write the given field storage (device
   views) instead of the base state's host fields.  Time/dt refs are shared
   with the base so both sides agree on the clock. *)
let rebind (base : state) ~fields ~u_new =
  let p = base.p in
  let mesh = base.mesh in
  let bindings : Eval.bindings =
    List.map
      (fun (v : Entity.variable) ->
        v.Entity.vname,
        Eval.Bfield (List.assoc v.Entity.vname fields, layout_of_var v))
      p.Problem.variables
    @ List.filter_map
        (fun (name, b) ->
          match b with
          | Eval.Bfield _ -> None
          | b -> Some (name, b))
        base.bindings
  in
  let index_names = List.map (fun i -> i.Entity.iname) p.Problem.indices in
  let env = Eval.make_env ~mesh ~dt:base.dt ~time:base.time ~index_names in
  let compile_rhs name e =
    match p.Problem.eval_mode with
    | Config.Closure | Config.Native -> Eval.compile bindings e, None
    | Config.Tape ->
      let t = Eval.compile_tape bindings e in
      Eval.tape_compiled t, Some (name, t)
  in
  let rvol_f, rvol_t = compile_rhs "rvol" base.eq.Transform.rvol in
  let rsurf_f, rsurf_t = compile_rhs "rsurf" base.eq.Transform.rsurf in
  let tapes = List.filter_map Fun.id [ rvol_t; rsurf_t ] in
  let ucomp =
    let pieces =
      List.map
        (fun (iname, _lo, stride) ->
          let r = Eval.ival env iname in
          fun () -> !r * stride)
        (layout_of_var base.uvar)
    in
    fun () -> List.fold_left (fun acc f -> acc + f ()) 0 pieces
  in
  let st' =
    {
      base with
      fields;
      u = List.assoc base.uvar.Entity.vname fields;
      u_new;
      env;
      bindings;
      rvol_f;
      rsurf_f;
      ucomp;
      rvol_du_f = lazy (fst (compile_rhs "rvol_du" (Transform.rvol_linearization base.eq)));
      tapes;
      (* own accounting: sharing base's mutable breakdown record would make
         aggregators that sum both states double-count every phase *)
      breakdown = Prt.Breakdown.zero ();
      (* re-derive generated entry points against the rebound storage *)
      native = None;
    }
  in
  attach_native st';
  st'

(* Volume term plus interior-face fluxes only; boundary faces contribute
   nothing (the CPU adds their part separately in the hybrid schedule). *)
let rec dof_rhs_interior st =
  match st.native with
  | Some n -> n.n_dof_interior st.env.Eval.cell (st.ucomp ())
  | None -> dof_rhs_interior_interp st

and dof_rhs_interior_interp st =
  let env = st.env in
  let mesh = st.mesh in
  let cell = env.Eval.cell in
  let rv = st.rvol_f env in
  let flux = ref 0. in
  let faces = mesh.Fvm.Mesh.cell_faces.(cell) in
  for i = 0 to Array.length faces - 1 do
    let f = faces.(i) in
    let c2 = Fvm.Mesh.neighbour mesh f cell in
    if c2 >= 0 then begin
      env.Eval.face <- f;
      env.Eval.nsign <- Fvm.Mesh.normal_sign mesh f cell;
      env.Eval.cell2 <- c2;
      flux := !flux +. (mesh.Fvm.Mesh.face_area.(f) *. st.rsurf_f env)
    end
  done;
  rv +. (!flux /. mesh.Fvm.Mesh.cell_volume.(cell))

(* Accumulate dt * (area * boundary term) / volume for every boundary face
   and component into [into].  Used by the hybrid target's CPU side. *)
let boundary_contributions st ~into =
  let env = st.env in
  Eval.bump_epoch env; (* fields changed since the last traversal *)
  let mesh = st.mesh in
  let dt = !(st.dt) in
  let ncomp = Fvm.Field.ncomp st.u in
  Array.iter
    (fun f ->
      match st.face_bc.(f) with
      | None -> ()
      | Some bc ->
        let cell = mesh.Fvm.Mesh.face_cell1.(f) in
        for comp = 0 to ncomp - 1 do
          env.Eval.cell <- cell;
          set_ivals_of_comp st comp;
          env.Eval.face <- f;
          env.Eval.nsign <- 1.; (* boundary faces are owned by their cell *)
          env.Eval.cell2 <- -1;
          let g = boundary_term st bc f cell in
          let dv =
            dt *. mesh.Fvm.Mesh.face_area.(f) *. g
            /. mesh.Fvm.Mesh.cell_volume.(cell)
          in
          Fvm.Field.set into cell comp (Fvm.Field.get into cell comp +. dv)
        done)
    mesh.Fvm.Mesh.boundary_faces

(* ------------------------------------------------------------------ *)
(* Runge-Kutta stage support (serial executor).                        *)
(* ------------------------------------------------------------------ *)

(* Evaluate R(u) for every owned DOF into [into] (no dt applied). *)
let sweep_rhs st ~into =
  iterate_dofs st (fun () ->
      let cell = st.env.Eval.cell in
      let c = st.ucomp () in
      Fvm.Field.set into cell c (dof_rhs st))

(* u := base + a * k over the owned DOFs. *)
let set_combination st ~base ~a ~k =
  iterate_dofs st (fun () ->
      let cell = st.env.Eval.cell in
      let c = st.ucomp () in
      Fvm.Field.set st.u cell c
        (Fvm.Field.get base cell c +. (a *. Fvm.Field.get k cell c)))

(* The surface part of R only: (1/V) sum over faces of area * rsurf with
   boundary conditions applied — [dof_rhs] minus the volume term. *)
let dof_flux st =
  let env = st.env in
  let mesh = st.mesh in
  let cell = env.Eval.cell in
  let flux = ref 0. in
  let faces = mesh.Fvm.Mesh.cell_faces.(cell) in
  for i = 0 to Array.length faces - 1 do
    let f = faces.(i) in
    env.Eval.face <- f;
    env.Eval.nsign <- Fvm.Mesh.normal_sign mesh f cell;
    let c2 = Fvm.Mesh.neighbour mesh f cell in
    if c2 >= 0 then begin
      env.Eval.cell2 <- c2;
      flux := !flux +. (mesh.Fvm.Mesh.face_area.(f) *. st.rsurf_f env)
    end
    else begin
      env.Eval.cell2 <- -1;
      match st.face_bc.(f) with
      | None -> ()
      | Some bc ->
        flux := !flux +. (mesh.Fvm.Mesh.face_area.(f) *. boundary_term st bc f cell)
    end
  done;
  !flux /. mesh.Fvm.Mesh.cell_volume.(cell)

(* Point-implicit sweep: relaxation-type volume terms treated implicitly
   via the symbolic linearization b = -d(rvol)/du, advection explicit:
     u' = (u + dt*(rvol(u) + b*u + flux)) / (1 + dt*b).
   Exact for volume terms affine in u (the BTE's (Io - I)*beta), and free
   of the dt * max(1/tau) < 1 stability bound. *)
let sweep_point_implicit st =
  let dt = !(st.dt) in
  let bf = Lazy.force st.rvol_du_f in
  iterate_dofs st (fun () ->
      let cell = st.env.Eval.cell in
      let c = st.ucomp () in
      let u0 = Fvm.Field.get st.u cell c in
      let b = bf st.env in
      let rv = st.rvol_f st.env in
      let flux = dof_flux st in
      let v = (u0 +. (dt *. (rv +. (b *. u0) +. flux))) /. (1. +. (dt *. b)) in
      Fvm.Field.set st.u_new cell c v)

(* One step of the configured scheme, advancing the unknown in place.
   Stage evaluations hold boundary data at the step's start time (the
   schemes here are used with autonomous right-hand sides).  Supported:
   Euler, point-implicit Euler, RK2 midpoint, classic RK4. *)
let rk_step st =
  let dt = !(st.dt) in
  let scratch name =
    Fvm.Field.create ~name ~ncells:(Fvm.Field.ncells st.u)
      ~ncomp:(Fvm.Field.ncomp st.u) ()
  in
  match st.p.Problem.stepper with
  | Config.Euler_explicit ->
    sweep st;
    commit st
  | Config.Euler_point_implicit ->
    sweep_point_implicit st;
    commit st
  | Config.RK2 ->
    (* midpoint: k1 = R(u); u_mid = u + dt/2 k1; u' = u + dt R(u_mid) *)
    let base = Fvm.Field.copy st.u in
    let k1 = scratch "rk_k1" and k2 = scratch "rk_k2" in
    sweep_rhs st ~into:k1;
    set_combination st ~base ~a:(dt /. 2.) ~k:k1;
    sweep_rhs st ~into:k2;
    set_combination st ~base ~a:dt ~k:k2
  | Config.RK4 ->
    let base = Fvm.Field.copy st.u in
    let k1 = scratch "rk_k1"
    and k2 = scratch "rk_k2"
    and k3 = scratch "rk_k3"
    and k4 = scratch "rk_k4" in
    sweep_rhs st ~into:k1;
    set_combination st ~base ~a:(dt /. 2.) ~k:k1;
    sweep_rhs st ~into:k2;
    set_combination st ~base ~a:(dt /. 2.) ~k:k2;
    sweep_rhs st ~into:k3;
    set_combination st ~base ~a:dt ~k:k3;
    sweep_rhs st ~into:k4;
    iterate_dofs st (fun () ->
        let cell = st.env.Eval.cell in
        let c = st.ucomp () in
        let combo =
          Fvm.Field.get k1 cell c
          +. (2. *. Fvm.Field.get k2 cell c)
          +. (2. *. Fvm.Field.get k3 cell c)
          +. Fvm.Field.get k4 cell c
        in
        Fvm.Field.set st.u cell c
          (Fvm.Field.get base cell c +. (dt /. 6. *. combo)))
