(* Native code generation: compile lowered programs to OCaml, dynlink
   them, and splice the generated loop bodies into solver states.

   The pipeline per state (behind Lower.native_hook, engaged only when
   the problem's eval_mode is Native):

     emit     Emit_source.to_ocaml renders the sweep/commit/interior-DOF
              bodies as a module registering itself through Finch_ci;
     key      the source digest plus the optimizer level — the source is
              value-independent, so identical programs at identical
              levels share one compilation across scenarios and runs;
     compile  `ocamlfind ocamlopt -shared` against the Finch_ci
              interface, persisted as <key>.cmxs under the cache dir
              (default _build/finch_cache) with an in-process memo;
     verify   Finch_analysis.Driver.check_problem gates the program the
              same way optimizer passes are gated — any error falls back
              to the interpreter;
     bind     pack mesh/field/coefficient storage into a Finch_ci.rt,
              with boundary terms calling back into the interpreter.

   Every fallback path prints one warning per reason and returns None,
   leaving the closure interpreter in charge — `--eval native` degrades
   gracefully on bytecode runs, missing toolchains, or unsupported
   programs. *)

let m_hits = Prt.Metrics.counter "codegen.cache_hits"
let m_misses = Prt.Metrics.counter "codegen.cache_misses"
let m_compile_ns = Prt.Metrics.counter "codegen.compile_ns"

(* ------------------------------------------------------------------ *)
(* Cache directory and toolchain discovery.                            *)
(* ------------------------------------------------------------------ *)

let cache_dir_override : string option ref = ref None
let set_cache_dir d = cache_dir_override := Some d

let cache_dir () =
  match !cache_dir_override with
  | Some d -> d
  | None -> (
    match Sys.getenv_opt "FINCH_CODEGEN_CACHE_DIR" with
    | Some d -> d
    | None -> Filename.concat (Sys.getcwd ()) (Filename.concat "_build" "finch_cache"))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Directories holding finch_ci.cmi/.cmx, which generated modules compile
   against: an explicit override, or dune's object directories located by
   walking up from the running executable (falling back to the build tree
   under the current directory). *)
let iface_include_dirs () =
  match Sys.getenv_opt "FINCH_CI_DIR" with
  | Some d -> if Sys.file_exists (Filename.concat d "finch_ci.cmi") then Some [ d ] else None
  | None ->
    let objs_of root =
      Filename.concat root
        (List.fold_left Filename.concat "lib" [ "codegen"; "iface"; ".finch_ci.objs" ])
    in
    let usable objs = Sys.file_exists (Filename.concat objs (Filename.concat "byte" "finch_ci.cmi")) in
    let abs p = if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p in
    let rec up dir n =
      if n > 8 then None
      else if usable (objs_of dir) then Some (objs_of dir)
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent (n + 1)
    in
    let found =
      match up (Filename.dirname (abs Sys.executable_name)) 0 with
      | Some o -> Some o
      | None ->
        let o = objs_of (Filename.concat (Sys.getcwd ()) (Filename.concat "_build" "default")) in
        if usable o then Some o else None
    in
    Option.map
      (fun o -> [ Filename.concat o "byte"; Filename.concat o "native" ])
      found

(* ------------------------------------------------------------------ *)
(* Warnings: once per reason, to stderr.                               *)
(* ------------------------------------------------------------------ *)

let warned : (string, unit) Hashtbl.t = Hashtbl.create 8

let warn fmt =
  Printf.ksprintf
    (fun s ->
      if not (Hashtbl.mem warned s) then begin
        Hashtbl.add warned s ();
        Printf.eprintf "finch-codegen: warning: %s; falling back to the closure interpreter\n%!" s
      end)
    fmt

(* ------------------------------------------------------------------ *)
(* Compile + load, behind the two-level cache.                         *)
(* ------------------------------------------------------------------ *)

let memo : (string, Finch_ci.rt -> Finch_ci.entry) Hashtbl.t = Hashtbl.create 8

let memo_size () = Hashtbl.length memo
let clear_memo () = Hashtbl.reset memo

let post_io_ref : Finch.Dataflow.callback_io option ref = ref None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let load_cmxs cmxs =
  Dynlink.loadfile_private cmxs;
  match Finch_ci.take () with
  | Some maker -> Ok maker
  | None -> Error "loaded module did not register an entry maker"

let compile_cmxs ~src ~ml ~cmxs ~log =
  match iface_include_dirs () with
  | None -> Error "cannot locate the Finch_ci interface (set FINCH_CI_DIR)"
  | Some incs ->
    write_file ml src;
    let cmd =
      Printf.sprintf "ocamlfind ocamlopt -shared %s -o %s %s > %s 2>&1"
        (String.concat " " (List.map (fun d -> "-I " ^ Filename.quote d) incs))
        (Filename.quote cmxs) (Filename.quote ml) (Filename.quote log)
    in
    let t0 = Unix.gettimeofday () in
    let status = Prt.Trace.span ~cat:"codegen" Prt.Trace.main "compile" (fun () -> Sys.command cmd) in
    Prt.Metrics.add m_compile_ns
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
    if status <> 0 then begin
      let tail = try read_file log with _ -> "" in
      Error
        (Printf.sprintf "ocamlfind ocamlopt failed (status %d): %s" status
           (String.trim tail))
    end
    else Ok ()

(* The maker for one emission key: in-process memo, then the on-disk
   .cmxs, then a fresh compile.  Loads count as cache hits; only a real
   compile is a miss. *)
let maker_for_key ~key ~src =
  match Hashtbl.find_opt memo key with
  | Some maker ->
    Prt.Metrics.incr m_hits;
    Ok maker
  | None ->
    let dir = cache_dir () in
    mkdir_p dir;
    let base = Filename.concat dir ("finch_kernel_" ^ key) in
    let cmxs = base ^ ".cmxs" in
    let fresh_compile () =
      match compile_cmxs ~src ~ml:(base ^ ".ml") ~cmxs ~log:(base ^ ".log") with
      | Error _ as e -> e
      | Ok () -> (
        Prt.Metrics.incr m_misses;
        match load_cmxs cmxs with
        | Ok maker -> Ok maker
        | Error e -> Error e)
    in
    let r =
      if Sys.file_exists cmxs then
        match load_cmxs cmxs with
        | Ok maker ->
          Prt.Metrics.incr m_hits;
          Ok maker
        | Error _ ->
          (* a stale artifact from an older build of the host: recompile *)
          fresh_compile ()
      else fresh_compile ()
    in
    (match r with Ok maker -> Hashtbl.replace memo key maker | Error _ -> ());
    r

(* ------------------------------------------------------------------ *)
(* Binding a generated module to one state.                            *)
(* ------------------------------------------------------------------ *)

let bind_state (st : Finch.Lower.state) (em : Finch.Emit_source.ocaml_emission)
    maker : Finch.Lower.native_entry option =
  let p = st.Finch.Lower.p in
  let mesh = st.Finch.Lower.mesh in
  let field name =
    let f = Finch.Lower.field st name in
    if Fvm.Field.layout f <> Fvm.Field.Cell_major then
      failwith (name ^ ": not cell-major");
    Fvm.Field.raw f
  in
  let coef_arr name =
    match Finch.Problem.find_coefficient p name with
    | Some { Finch.Entity.cvalue = Finch.Entity.Arr a; _ } -> a
    | _ -> failwith ("missing array coefficient " ^ name)
  in
  let coef_fn name =
    match Finch.Problem.find_coefficient p name with
    | Some { Finch.Entity.cvalue = Finch.Entity.Space_fn f; _ } -> f
    | _ -> failwith ("missing space-function coefficient " ^ name)
  in
  let const_of = function
    | Finch.Emit_source.Cs_coef name -> (
      match Finch.Problem.find_coefficient p name with
      | Some { Finch.Entity.cvalue = Finch.Entity.Const x; _ } -> x
      | _ -> failwith ("missing constant coefficient " ^ name))
    | Finch.Emit_source.Cs_arr_elem (name, off) -> (coef_arr name).(off)
  in
  match
    let fields =
      Array.of_list
        (List.map field em.Finch.Emit_source.oc_fields
        @ [ Fvm.Field.raw st.Finch.Lower.u_new ])
    in
    let rt =
      {
        Finch_ci.ncells = mesh.Fvm.Mesh.ncells;
        dim = mesh.Fvm.Mesh.dim;
        cell_faces = mesh.Fvm.Mesh.cell_faces;
        face_cell1 = mesh.Fvm.Mesh.face_cell1;
        face_cell2 = mesh.Fvm.Mesh.face_cell2;
        face_area = mesh.Fvm.Mesh.face_area;
        face_normal = mesh.Fvm.Mesh.face_normal;
        cell_volume = mesh.Fvm.Mesh.cell_volume;
        cell_centroid = mesh.Fvm.Mesh.cell_centroid;
        fields;
        arrays = Array.of_list (List.map coef_arr em.Finch.Emit_source.oc_arrays);
        consts = Array.of_list (List.map const_of em.Finch.Emit_source.oc_consts);
        fns = Array.of_list (List.map coef_fn em.Finch.Emit_source.oc_fns);
        dt = st.Finch.Lower.dt;
        time = st.Finch.Lower.time;
        index_off =
          Array.of_list
            (List.map
               (fun (i : Finch.Entity.index) ->
                 fst
                   (Finch.Lower.index_range st i.Finch.Entity.iname
                      (Finch.Entity.index_extent i)))
               p.Finch.Problem.indices);
        index_len =
          Array.of_list
            (List.map
               (fun (i : Finch.Entity.index) ->
                 snd
                   (Finch.Lower.index_range st i.Finch.Entity.iname
                      (Finch.Entity.index_extent i)))
               p.Finch.Problem.indices);
        has_bc = Array.map (fun o -> o <> None) st.Finch.Lower.face_bc;
        bc_term =
          (* boundary faces stay on the interpreter: set the env exactly
             as Lower.dof_rhs does before its boundary branch, then
             evaluate the resolved condition *)
          (fun face cell comp ->
            let env = st.Finch.Lower.env in
            env.Finch.Eval.cell <- cell;
            Finch.Lower.set_ivals_of_comp st comp;
            env.Finch.Eval.face <- face;
            env.Finch.Eval.nsign <- 1.;
            env.Finch.Eval.cell2 <- -1;
            match st.Finch.Lower.face_bc.(face) with
            | Some bc -> Finch.Lower.boundary_term st bc face cell
            | None -> 0.);
      }
    in
    maker rt
  with
  | exception Failure msg ->
    warn "cannot bind generated code (%s)" msg;
    None
  | entry ->
    Some
      {
        Finch.Lower.n_sweep = entry.Finch_ci.e_sweep;
        n_commit = entry.Finch_ci.e_commit;
        n_dof_interior = entry.Finch_ci.e_dof_interior;
      }

(* ------------------------------------------------------------------ *)
(* The hook.                                                           *)
(* ------------------------------------------------------------------ *)

(* analysis verification runs once per key (the re-check mirrors how
   optimizer passes are gated; see docs/CODEGEN.md) *)
let verified : (string, bool) Hashtbl.t = Hashtbl.create 8

let verify_key key (p : Finch.Problem.t) =
  match Hashtbl.find_opt verified key with
  | Some ok -> ok
  | None ->
    let report = Finch_analysis.Driver.check_problem ?post_io:!post_io_ref p in
    let ok = report.Finch_analysis.Driver.errors = 0 in
    Hashtbl.replace verified key ok;
    ok

let native_entry_for (st : Finch.Lower.state) : Finch.Lower.native_entry option =
  if not Dynlink.is_native then begin
    warn "bytecode runtime cannot load native kernels";
    None
  end
  else if Fvm.Field.sanitize_enabled () then begin
    (* generated sweeps bypass the poison-read instrumentation *)
    warn "field sanitizer is enabled";
    None
  end
  else
    match Finch.Emit_source.to_ocaml st with
    | exception Finch.Emit_source.Unsupported_native msg ->
      warn "program not supported by the emitter (%s)" msg;
      None
    | em ->
      let key =
        Digest.to_hex
          (Digest.string
             (em.Finch.Emit_source.oc_src ^ "|opt"
             ^ Finch.Config.opt_level_name st.Finch.Lower.p.Finch.Problem.opt_level))
      in
      if not (verify_key key st.Finch.Lower.p) then begin
        warn "static analysis reported errors for the generated program";
        None
      end
      else (
        match maker_for_key ~key ~src:em.Finch.Emit_source.oc_src with
        | Error msg ->
          warn "%s" msg;
          None
        | Ok maker -> bind_state st em maker)

let install ?post_io () =
  post_io_ref := post_io;
  Finch.Lower.native_hook := native_entry_for;
  Finch.Lower.native_hook_installed := true
