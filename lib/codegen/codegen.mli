(** Native code generation: emit lowered programs as OCaml
    ([Emit_source.to_ocaml]), compile them with
    [ocamlfind ocamlopt -shared], dynlink the result, and splice the
    generated loop bodies into solver states through [Lower.native_hook].

    Compilations sit behind a two-level content-hash cache — an
    in-process memo plus [<cache-dir>/finch_kernel_<key>.cmxs] on disk,
    keyed on the digest of the (value-independent) generated source and
    the optimizer level — and are observable as [codegen.cache_hits] /
    [codegen.cache_misses] / [codegen.compile_ns] plus a compile span on
    the main trace track.  Generated programs are re-verified with
    [Finch_analysis] before first use, the same gate optimizer passes
    run behind.  Every failure path (bytecode runtime, missing
    toolchain, unsupported program, analysis errors) warns once and
    falls back to the closure interpreter.  See docs/CODEGEN.md. *)

val set_cache_dir : string -> unit
(** Override the on-disk cache directory (highest precedence, above the
    [FINCH_CODEGEN_CACHE_DIR] environment variable and the default
    [_build/finch_cache] under the current directory). *)

val cache_dir : unit -> string
(** The directory compiled kernels are persisted under. *)

val memo_size : unit -> int
(** Number of compiled program objects held in the in-process memo — the
    serve layer's program-object cache rides on this level; exposed so
    schedulers and tests can assert reuse without re-deriving keys. *)

val clear_memo : unit -> unit
(** Drop the in-process memo (the disk level is untouched); for tests
    that assert cold-vs-warm compile behaviour. *)

val install : ?post_io:Finch.Dataflow.callback_io -> unit -> unit
(** Install the codegen backend into [Lower.native_hook]; states built
    with eval mode [Native] then compile and bind generated kernels.
    [post_io] is the callback IO contract handed to the analysis
    re-verification (pass the same value the solve's gate uses). *)

val native_entry_for : Finch.Lower.state -> Finch.Lower.native_entry option
(** The hook body itself: emit, verify, compile/load through the cache,
    and bind one state.  Exposed for tests; returns [None] (after a
    one-shot warning) on any fallback path. *)
