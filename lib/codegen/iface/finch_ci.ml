(* Host <-> generated-plugin interface.

   Generated kernel modules (see Finch_codegen) are compiled out of
   process and loaded with Dynlink, so they cannot link against the full
   solver libraries: everything a generated sweep needs crosses this one
   tiny module, which both the host executable and every plugin compile
   against.  A plugin's top-level code calls [register] with its
   entry-point maker; the host calls [take] right after loading to claim
   it.  The indirection avoids baking a registry key into the generated
   source (which would perturb the content-hash cache key). *)

type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type rt = {
  ncells : int;
  dim : int;
  cell_faces : int array array;
  face_cell1 : int array;
  face_cell2 : int array;
  face_area : float array;
  face_normal : float array;
  cell_volume : float array;
  cell_centroid : float array;
  fields : ba array;
  arrays : float array array;
  consts : float array;
  fns : (float array -> float) array;
  dt : float ref;
  time : float ref;
  index_off : int array;
  index_len : int array;
  has_bc : bool array;
  bc_term : int -> int -> int -> float;
}

type entry = {
  e_sweep : int array option -> unit;
  e_commit : int array option -> unit;
  e_dof_interior : int -> int -> float;
}

let pending : (rt -> entry) option ref = ref None
let register f = pending := Some f

let take () =
  let v = !pending in
  pending := None;
  v
