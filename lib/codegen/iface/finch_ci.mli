(** Host/plugin interface for generated native kernels.

    Generated modules (emitted by [Emit_source.to_ocaml], compiled and
    dynlinked by [Finch_codegen]) are built against this module alone, so
    it must stay dependency-free: the host packs everything a sweep needs
    into an {!rt} record of plain arrays, refs and callbacks, and the
    plugin hands back an {!entry} of loop bodies.  The register/take
    handshake keys nothing on the generated source, keeping the
    content-hash cache key value-independent. *)

type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Raw cell-major field storage as exposed by [Fvm.Field.raw]. *)

type rt = {
  ncells : int;
  dim : int;
  cell_faces : int array array;  (** face ids bounding each cell *)
  face_cell1 : int array;        (** owning cell of each face *)
  face_cell2 : int array;        (** neighbour cell, or -1 on the boundary *)
  face_area : float array;
  face_normal : float array;     (** nfaces * dim, outward from cell1 *)
  cell_volume : float array;
  cell_centroid : float array;   (** ncells * dim *)
  fields : ba array;             (** slot order fixed by the emission *)
  arrays : float array array;    (** indexed-coefficient arrays, aliased *)
  consts : float array;          (** values captured at bind time *)
  fns : (float array -> float) array;  (** space-function coefficients *)
  dt : float ref;
  time : float ref;
  index_off : int array;         (** per declared index: owned offset *)
  index_len : int array;         (** per declared index: owned length *)
  has_bc : bool array;           (** per face: a boundary condition applies *)
  bc_term : int -> int -> int -> float;
      (** [bc_term face cell comp]: the interpreter-evaluated boundary
          term (flux value, or rsurf under a Dirichlet ghost) *)
}
(** Everything a generated kernel reads or writes, bound per solver
    state. *)

type entry = {
  e_sweep : int array option -> unit;
      (** forward-Euler sweep into the double buffer over the given cells
          ([None] = every cell), restricted to the owned index ranges *)
  e_commit : int array option -> unit;
      (** publish the double buffer over the given cells *)
  e_dof_interior : int -> int -> float;
      (** [e_dof_interior cell comp]: volume term plus interior-face
          fluxes only (the GPU kernel's per-thread body) *)
}
(** The generated loop bodies for one compiled program. *)

val register : (rt -> entry) -> unit
(** Called by a plugin's top-level code to publish its entry maker. *)

val take : unit -> (rt -> entry) option
(** Claim (and clear) the most recently registered maker; the host calls
    this immediately after [Dynlink.loadfile_private]. *)
