(** Optimizing middle end: verified IR-to-IR rewrites between the
    program builders ({!Finch.Ir}) and the execution targets.

    The pipeline is selected by {!Finch.Config.opt_level}: O0 is the
    identity, O1 enables the CPU-side passes (cell-loop fusion,
    dead-assign elimination, transfer coalescing and — when the target's
    fused pool schedule is legal — step-pair fusion), O2 adds the
    device-side passes (band-kernel batching, loop-invariant upload
    hoisting).  Every pass that changes the tree is re-checked by the
    {!Finch_analysis} Wellformed/Race/Movement/Comm passes; a pass whose
    output carries any finding absent from its input is rejected — the
    pre-pass IR is kept and the rejection recorded — so an unsafe
    rewrite (including one that drops or retargets a halo exchange or
    D2d push, A025–A032) can never reach an executor.  See
    docs/OPTIMIZER.md. *)

type stats = {
  loops_fused : int;
      (** adjacent parallel cell loops merged, plus step pairs fused
          (region-level loop fusion) *)
  steps_fused : int;  (** steps loops rewritten to the fused-pair schedule *)
  kernels_batched : int;
      (** sequential per-index launch loops folded into batched kernels *)
  assigns_eliminated : int;  (** dead assignments removed *)
  transfers_coalesced : int;  (** adjacent same-cadence transfer nodes merged *)
  h2d_hoisted : int;  (** loop-invariant per-step uploads hoisted *)
}
(** Counts of accepted rewrites, also mirrored to the [opt.*] metrics
    ([opt.loops_fused], [opt.kernels_fused], [opt.assigns_eliminated],
    [opt.transfers_coalesced], [opt.h2d_hoisted], [opt.steps_fused];
    rejections land on [opt.passes_rejected]). *)

type rejection = {
  rej_pass : string;  (** name of the rejected pass *)
  rej_finding : Finch_analysis.Finding.t;
      (** the first new finding its output introduced *)
}
(** One rejected pass: the rewrite was discarded and the pre-pass IR
    kept. *)

type result = {
  ir : Finch.Ir.node;  (** the optimized (or untouched, at O0) program *)
  stats : stats;  (** accepted-rewrite counts *)
  rejected : rejection list;  (** passes vetoed by the analyses, in order *)
}
(** Outcome of one pipeline run. *)

val no_stats : stats
(** All-zero counts. *)

val can_fuse_cell_loops : Finch.Ir.node list -> Finch.Ir.node list -> bool
(** Legality of merging two adjacent parallel cell-loop bodies: both
    must be pure compute (assigns/flux updates only, so their footprint
    is fully visible), and neither body's in-place writes may be read
    across faces (CELL2) by the other — that pair is exactly the
    forgot-double-buffering race (A011) once the bodies share an
    iteration.  Double-buffered writes never conflict. *)

val fuse_cell_loops : Finch.Ir.node -> Finch.Ir.node * int
(** Merge adjacent parallel [Cells] loops wherever
    {!can_fuse_cell_loops} holds (chains collapse left to right),
    collapsing one parallel region — and its pool barrier — per merge.
    Returns the rewritten tree and the number of merges. *)

val eliminate_dead_assigns :
  live_out:string list -> Finch.Ir.node -> Finch.Ir.node * int
(** Remove [Assign] nodes whose destination is neither in [live_out]
    nor read anywhere in the tree; loops left holding only comments go
    with them.  Returns the tree and the number of assigns removed. *)

val coalesce_transfers : Finch.Ir.node -> Finch.Ir.node * int
(** Merge adjacent [H2d]/[H2d] and [D2h]/[D2h] pairs of the same
    cadence into one node over the union of their variables (one copy
    invocation instead of two).  Returns the tree and the merge count. *)

val fuse_steps : Finch.Ir.node -> Finch.Ir.node * int
(** Rewrite each [Steps] loop to the fused step-pair schedule the
    threaded executor runs at O1: the body appears twice (phase A, then
    phase B on swapped buffer roles) under half the trip count, one
    pool region and one internal barrier per pair.  Only applied when
    [Target_cpu.fused_schedule_ok] holds for the problem. *)

val batch_band_kernels : Finch.Ir.node -> Finch.Ir.node * int
(** Collapse sequential per-index launch loops wrapping a single
    [Kernel] into the bare kernel, folding the index into the launch
    grid: one batched cells×dirs×bands launch instead of a launch per
    band.  Returns the tree and the number of loops collapsed. *)

val hoist_invariant_h2d : Finch.Ir.node -> Finch.Ir.node * int
(** Hoist out of the [Steps] loop every per-step upload of a variable
    no IR-visible node in the loop writes.  Callbacks are opaque to
    this legality check, so the verification harness (Movement with the
    data-movement plan) is what vetoes hoists crossing a callback
    write; see the rejection contract in docs/ANALYSIS.md. *)

val optimize :
  ?plan:Finch.Dataflow.plan ->
  ?comm:Finch_analysis.Comm.input ->
  ?live_out:string list ->
  ?fuse_step_pairs:bool ->
  level:Finch.Config.opt_level ->
  Finch_analysis.Ctx.t ->
  Finch.Ir.node ->
  result
(** Run the pipeline for [level] over a tree, verifying each pass as
    described above ([plan] additionally arms the Movement plan
    cross-check, A023; [comm] the communication-schedule checks,
    A025–A032).  [live_out] (default empty) names variables whose final
    values are observed by the caller; [fuse_step_pairs] (default
    false) enables {!fuse_steps} — the caller asserts the executor-side
    legality via [Target_cpu.fused_schedule_ok]. *)

val optimize_problem :
  ?post_io:Finch.Dataflow.callback_io -> Finch.Problem.t -> result
(** Build the naive program for a configured problem (the O0 shape:
    CPU-strategy IR, or the per-band device IR with its data-movement
    plan) and run {!optimize} at the problem's [opt_level], with all
    declared variables live out, step-pair fusion iff the threaded
    target's fused schedule is legal, the plan cross-check armed on GPU
    targets, and the communication-schedule checks armed on
    mesh-partitioned targets ({!Finch_analysis.Comm.plan_of_problem}). *)
