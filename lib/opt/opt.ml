(* Optimizing middle end: IR-to-IR rewrites between [Lower]/[Ir] and the
   targets.

   The generator's naive output is maximally conservative — one parallel
   region per loop nest, one kernel launch per band slab, one transfer
   node per variable — which is correct everywhere but leaves easy
   performance on the table.  This module hosts the pass pipeline that
   recovers it: loop fusion, dead-assign elimination, transfer
   coalescing, step-pair fusion (the IR image of the fused pool schedule
   in [Target_cpu]) and, for the GPU program, band-kernel batching and
   loop-invariant upload hoisting.  [Config.opt_level] selects the
   pipeline: O0 is identity, O1 enables the CPU-side passes, O2 adds the
   device-side ones.

   Safety is not argued pass-by-pass in prose; it is checked in-repo.
   Every pass that changes the tree re-runs the [Finch_analysis]
   Wellformed/Race/Movement passes over its output and diffs the
   findings against the pre-pass report: a pass that introduces ANY new
   finding is rejected — the pre-pass IR is kept, the rejection is
   recorded (and counted on [opt.passes_rejected]) — so an unsafe
   rewrite can never reach an executor.  The executors mirror the same
   decisions ([Target_cpu.fused_schedule_ok], the [opt_level] branches in
   [Ir.build_gpu]/[Target_gpu]), which is what the bit-identity test
   matrix pins down. *)

open Finch
module E = Finch_symbolic.Expr
module A = Finch_analysis

type stats = {
  loops_fused : int;
  steps_fused : int;
  kernels_batched : int;
  assigns_eliminated : int;
  transfers_coalesced : int;
  h2d_hoisted : int;
}

let no_stats =
  {
    loops_fused = 0;
    steps_fused = 0;
    kernels_batched = 0;
    assigns_eliminated = 0;
    transfers_coalesced = 0;
    h2d_hoisted = 0;
  }

type rejection = { rej_pass : string; rej_finding : A.Finding.t }

type result = { ir : Ir.node; stats : stats; rejected : rejection list }

(* Counters mirrored from accepted passes; [opt.loops_fused] counts both
   adjacent cell-loop merges and step-pair fusions (the latter is the
   region-level fusion the pool executor realizes). *)
let m_loops_fused = Prt.Metrics.counter "opt.loops_fused"
let m_steps_fused = Prt.Metrics.counter "opt.steps_fused"
let m_kernels_fused = Prt.Metrics.counter "opt.kernels_fused"
let m_assigns_eliminated = Prt.Metrics.counter "opt.assigns_eliminated"
let m_transfers_coalesced = Prt.Metrics.counter "opt.transfers_coalesced"
let m_h2d_hoisted = Prt.Metrics.counter "opt.h2d_hoisted"
let m_passes_rejected = Prt.Metrics.counter "opt.passes_rejected"

(* ------------------------------------------------------------------ *)
(* Footprint helpers.                                                  *)
(* ------------------------------------------------------------------ *)

(* Fusion only considers loop bodies whose per-iteration footprint is
   fully visible to [Ir.reads]/[Ir.writes]: pure compute nodes.  A body
   holding a swap, callback, communication or transfer node has ordering
   constraints the footprint cannot express, so it never fuses. *)
let rec transparent (n : Ir.node) =
  match n with
  | Ir.Comment _ | Ir.Assign _ | Ir.Flux_update _ -> true
  | Ir.Seq ns | Ir.Loop { body = ns; _ } -> List.for_all transparent ns
  | _ -> false

(* In-place (non-double-buffered) writes of one iteration. *)
let rec inplace_writes (n : Ir.node) =
  match n with
  | Ir.Assign { dest; dest_new = false; _ } -> [ dest ]
  | Ir.Seq ns | Ir.Loop { body = ns; _ } | Ir.Kernel { body = ns; _ } ->
    List.concat_map inplace_writes ns
  | _ -> []

let cell2_of_expr e =
  List.filter_map
    (fun (name, _idx, side) -> if side = E.Cell2 then Some name else None)
    (E.refs e)

(* Neighbour (CELL2) reads of one iteration: the reads that reach other
   iterations' cells under cell parallelism. *)
let rec cell2_reads (n : Ir.node) =
  match n with
  | Ir.Assign { expr; _ } -> cell2_of_expr expr
  | Ir.Flux_update { rvol; rsurf; _ } ->
    cell2_of_expr rvol @ cell2_of_expr rsurf
  | Ir.Seq ns | Ir.Loop { body = ns; _ } | Ir.Kernel { body = ns; _ } ->
    List.concat_map cell2_reads ns
  | _ -> []

let intersects a b = List.exists (fun x -> List.mem x b) a

(* Two adjacent parallel cell loops may fuse iff neither body's in-place
   writes are read across faces by the other: such a pair would turn
   into the classic forgot-double-buffering race (A011) once the bodies
   share an iteration.  Writes staged in the double buffer never
   conflict with reads — readers keep seeing the published copy. *)
let can_fuse_cell_loops a b =
  List.for_all transparent a
  && List.for_all transparent b
  && (not
        (intersects
           (List.concat_map inplace_writes a)
           (List.concat_map cell2_reads b)))
  && not
       (intersects
          (List.concat_map inplace_writes b)
          (List.concat_map cell2_reads a))

(* ------------------------------------------------------------------ *)
(* O1 passes.                                                          *)
(* ------------------------------------------------------------------ *)

let fuse_cell_loops tree =
  let count = ref 0 in
  let rec node (n : Ir.node) =
    match n with
    | Ir.Seq ns -> Ir.Seq (fuse ns)
    | Ir.Loop l -> Ir.Loop { l with body = fuse l.body }
    | Ir.Kernel k -> Ir.Kernel { k with body = fuse k.body }
    | n -> n
  and fuse ns =
    let ns = List.map node ns in
    let rec go = function
      | Ir.Loop { range = Ir.Cells; body = a; parallel = true }
        :: Ir.Loop { range = Ir.Cells; body = b; parallel = true }
        :: rest
        when can_fuse_cell_loops a b ->
        incr count;
        (* re-examine the merged loop against the next sibling *)
        go (Ir.Loop { range = Ir.Cells; body = a @ b; parallel = true } :: rest)
      | n :: rest -> n :: go rest
      | [] -> []
    in
    go ns
  in
  let t = node tree in
  (t, !count)

let comments_only body =
  List.for_all (function Ir.Comment _ -> true | _ -> false) body

let eliminate_dead_assigns ~live_out tree =
  let count = ref 0 in
  let all_reads = Ir.reads tree in
  let dead dest =
    (not (List.mem dest live_out)) && not (List.mem dest all_reads)
  in
  let rec node (n : Ir.node) : Ir.node option =
    match n with
    | Ir.Assign { dest; _ } when dead dest ->
      incr count;
      None
    | Ir.Seq ns -> Some (Ir.Seq (List.filter_map node ns))
    | Ir.Loop { range; body; parallel } ->
      let before = !count in
      let body = List.filter_map node body in
      (* a loop that only held dead assigns goes with them — leaving it
         behind would manufacture an empty-body finding (A006) *)
      if !count > before && comments_only body then None
      else Some (Ir.Loop { range; body; parallel })
    | Ir.Kernel k -> Some (Ir.Kernel { k with body = List.filter_map node k.body })
    | n -> Some n
  in
  let t = match node tree with Some t -> t | None -> Ir.Seq [] in
  (t, !count)

let coalesce_transfers tree =
  let count = ref 0 in
  let rec node (n : Ir.node) =
    match n with
    | Ir.Seq ns -> Ir.Seq (merge ns)
    | Ir.Loop l -> Ir.Loop { l with body = merge l.body }
    | Ir.Kernel k -> Ir.Kernel { k with body = merge k.body }
    | n -> n
  and merge ns =
    let ns = List.map node ns in
    let rec go = function
      | Ir.H2d { vars = a; every_step = ea }
        :: Ir.H2d { vars = b; every_step = eb }
        :: rest
        when ea = eb ->
        incr count;
        go (Ir.H2d { vars = List.sort_uniq compare (a @ b); every_step = ea } :: rest)
      | Ir.D2h { vars = a; every_step = ea }
        :: Ir.D2h { vars = b; every_step = eb }
        :: rest
        when ea = eb ->
        incr count;
        go (Ir.D2h { vars = List.sort_uniq compare (a @ b); every_step = ea } :: rest)
      | n :: rest -> n :: go rest
      | [] -> []
    in
    go ns
  in
  let t = node tree in
  (t, !count)

let fuse_steps tree =
  let count = ref 0 in
  let rec node (n : Ir.node) =
    match n with
    | Ir.Seq ns -> Ir.Seq (List.map node ns)
    | Ir.Loop { range = Ir.Steps; body; parallel } ->
      incr count;
      Ir.Loop
        {
          range = Ir.Steps;
          parallel;
          body =
            (Ir.Comment
               "fused step pair (half the trip count): one pool region, \
                phase A on the primary buffer roles"
            :: body)
            @ (Ir.Comment
                 "phase B: buffer roles swapped in place of the commit; \
                  one barrier separates the phases"
              :: body);
        }
    | Ir.Loop l -> Ir.Loop { l with body = List.map node l.body }
    | Ir.Kernel k -> Ir.Kernel { k with body = List.map node k.body }
    | n -> n
  in
  let t = node tree in
  (t, !count)

(* ------------------------------------------------------------------ *)
(* O2 (device) passes.                                                 *)
(* ------------------------------------------------------------------ *)

let batch_band_kernels tree =
  let count = ref 0 in
  let rec node (n : Ir.node) =
    match n with
    | Ir.Seq ns -> Ir.Seq (List.map node ns)
    | Ir.Loop { range = Ir.Index _ as range; body; parallel = false } -> (
      let body = List.map node body in
      match List.filter (function Ir.Comment _ -> false | _ -> true) body with
      | [ (Ir.Kernel _ as k) ] ->
        (* a sequential per-index launch loop around a single kernel:
           fold the index into the launch grid instead *)
        incr count;
        k
      | _ -> Ir.Loop { range; body; parallel = false })
    | Ir.Loop l -> Ir.Loop { l with body = List.map node l.body }
    | Ir.Kernel k -> Ir.Kernel { k with body = List.map node k.body }
    | n -> n
  in
  let t = node tree in
  (t, !count)

let hoist_invariant_h2d tree =
  let count = ref 0 in
  let rec node (n : Ir.node) =
    match n with
    | Ir.Seq ns -> Ir.Seq (hoist ns)
    | Ir.Loop l -> Ir.Loop { l with body = hoist l.body }
    | Ir.Kernel k -> Ir.Kernel { k with body = hoist k.body }
    | n -> n
  and hoist ns =
    let ns = List.map node ns in
    List.concat_map
      (fun n ->
        match n with
        | Ir.Loop { range = Ir.Steps; body; parallel } ->
          (* a variable re-uploaded every step whose host copy no
             IR-visible node in the loop writes is loop-invariant; note
             callbacks are opaque here, so a hoist that crosses a
             callback write survives only if the verification harness
             (Movement with the data-movement plan) signs off on it *)
          let loop_writes =
            Ir.writes
              (Ir.Seq
                 (List.map
                    (function
                      | Ir.H2d { every_step = true; _ } ->
                        Ir.Comment "(upload under consideration)"
                      | n -> n)
                    body))
          in
          let hoisted = ref [] in
          let body =
            List.filter_map
              (fun n ->
                match n with
                | Ir.H2d { vars; every_step = true } ->
                  let keep, out =
                    List.partition (fun v -> List.mem v loop_writes) vars
                  in
                  hoisted := !hoisted @ out;
                  if keep = [] then None
                  else Some (Ir.H2d { vars = keep; every_step = true })
                | n -> Some n)
              body
          in
          if !hoisted = [] then [ n ]
          else begin
            count := !count + List.length !hoisted;
            [
              Ir.Comment "hoisted loop-invariant uploads";
              Ir.H2d
                { vars = List.sort_uniq compare !hoisted; every_step = false };
              Ir.Loop { range = Ir.Steps; body; parallel };
            ]
          end
        | n -> [ n ])
      ns
  in
  let t = node tree in
  (t, !count)

(* ------------------------------------------------------------------ *)
(* Verified pipeline.                                                  *)
(* ------------------------------------------------------------------ *)

let optimize ?plan ?comm ?(live_out = []) ?(fuse_step_pairs = false) ~level
    (ctx : A.Ctx.t) tree =
  let check t = A.Driver.check_ir ?plan ?comm ctx t in
  let baseline = ref (check tree) in
  let ir = ref tree in
  let stats = ref no_stats in
  let rejected = ref [] in
  (* Run one pass and keep its output only if the analyses stay clean:
     any finding absent from the pre-pass report rejects the rewrite.
     The accepted report becomes the next pass's baseline, so pre-existing
     findings (a deliberately unclean input program) never mask a
     regression introduced later in the pipeline. *)
  let apply name pass record =
    let t, n = pass !ir in
    if n > 0 then begin
      let after = check t in
      let fresh =
        List.filter
          (fun f -> not (List.mem f (!baseline).A.Driver.findings))
          after.A.Driver.findings
      in
      match fresh with
      | [] ->
        ir := t;
        baseline := after;
        record n
      | f :: _ ->
        Prt.Metrics.incr m_passes_rejected;
        rejected := { rej_pass = name; rej_finding = f } :: !rejected
    end
  in
  if level <> Config.O0 then begin
    apply "fuse_cell_loops" fuse_cell_loops (fun n ->
        Prt.Metrics.add m_loops_fused n;
        stats := { !stats with loops_fused = (!stats).loops_fused + n });
    apply "eliminate_dead_assigns" (eliminate_dead_assigns ~live_out) (fun n ->
        Prt.Metrics.add m_assigns_eliminated n;
        stats := { !stats with assigns_eliminated = n });
    apply "coalesce_transfers" coalesce_transfers (fun n ->
        Prt.Metrics.add m_transfers_coalesced n;
        stats := { !stats with transfers_coalesced = n });
    if level = Config.O2 then begin
      apply "batch_band_kernels" batch_band_kernels (fun n ->
          Prt.Metrics.add m_kernels_fused n;
          stats := { !stats with kernels_batched = n });
      apply "hoist_invariant_h2d" hoist_invariant_h2d (fun n ->
          Prt.Metrics.add m_h2d_hoisted n;
          stats := { !stats with h2d_hoisted = n })
    end;
    if fuse_step_pairs then
      apply "fuse_steps" fuse_steps (fun n ->
          Prt.Metrics.add m_loops_fused n;
          Prt.Metrics.add m_steps_fused n;
          stats :=
            {
              !stats with
              steps_fused = n;
              loops_fused = (!stats).loops_fused + n;
            })
  end;
  { ir = !ir; stats = !stats; rejected = List.rev !rejected }

let optimize_problem ?post_io (p : Problem.t) =
  let ctx = A.Ctx.of_problem ?post_io p in
  let level = p.Problem.opt_level in
  let live_out =
    List.map (fun (v : Entity.variable) -> v.Entity.vname) p.Problem.variables
  in
  (* re-verification covers the communication schedule too: a pass that
     drops, reorders or retargets an exchange/push trips A025-A032 and
     is rejected like any other regression *)
  let comm =
    Option.map (fun pl -> A.Comm.Elaborate pl) (A.Comm.plan_of_problem p)
  in
  match p.Problem.target with
  | Config.Cpu strategy ->
    let fuse_step_pairs =
      (match strategy with Config.Threaded _ -> true | _ -> false)
      && Target_cpu.fused_schedule_ok ?post_io p
    in
    optimize ?comm ~live_out ~fuse_step_pairs ~level ctx (Ir.build_cpu p)
  | Config.Gpu _ ->
    let plan = Dataflow.plan_for_problem ?post_io p in
    (* start from the naive (unbatched, per-band) device program so the
       pipeline, not the builder, earns the batched shape *)
    let saved = p.Problem.opt_level in
    Problem.set_opt_level p Config.O0;
    let tree =
      Fun.protect
        ~finally:(fun () -> Problem.set_opt_level p saved)
        (fun () -> Ir.build_gpu p ~transfers:(Dataflow.ir_transfers plan))
    in
    optimize ~plan ?comm ~live_out ~level ctx tree
  | Config.Auto -> invalid_arg "Opt: unresolved auto target"
