(** GPU device specifications and the roofline timing model.

    Default parameters are the published figures for the cards in the
    paper's evaluation (RTX A6000, A100); [fp64_issue_efficiency] is the
    fraction of double-precision peak a well-shaped compute-bound kernel
    achieves (the paper's own BTE-kernel profile: 49% of DP peak). *)

type t = {
  name : string;  (** card name, e.g. ["RTX A6000"] *)
  sm_count : int;  (** streaming multiprocessors *)
  max_threads_per_sm : int;  (** resident-thread capacity per SM *)
  fp64_peak_flops : float;  (** double-precision peak, FLOP/s *)
  fp32_peak_flops : float;  (** single-precision peak, FLOP/s *)
  mem_bandwidth : float;          (** bytes/s, device global memory *)
  pcie_bandwidth : float;         (** bytes/s, host <-> device *)
  pcie_latency : float;           (** seconds per transfer *)
  kernel_launch_overhead : float; (** seconds per launch *)
  fp64_issue_efficiency : float;  (** achieved fraction of DP peak *)
  mem_efficiency : float;         (** achieved fraction of DRAM bandwidth *)
  nvlink_bandwidth : float;
    (** bytes/s per direction over the intra-node device interconnect *)
  nvlink_latency : float;  (** seconds per device-to-device transfer *)
}

val a6000 : t
(** NVIDIA RTX A6000, the paper's evaluation card (8 per node). *)

val a100 : t
(** NVIDIA A100 (SXM), the strong-DP comparison card. *)

val by_name : string -> t
(** "A6000"/"a6000" or "A100"/"a100"; raises [Invalid_argument] otherwise. *)

val transfer_time : t -> bytes:int -> float
(** PCIe latency + bytes/bandwidth; 0 for 0 bytes. *)

val kernel_time : t -> threads:int -> flops:float -> dram_bytes:float -> float
(** Roofline: launch overhead + max(compute, memory) time, with throughput
    scaled down when [threads] cannot fill the device (occupancy), floored
    at one SM's worth. *)
