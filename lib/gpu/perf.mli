(** nvprof-style profiling report: the three metrics the paper's Section
    III-D table gives for the BTE intensity kernel on one A6000 (SM
    utilization, memory throughput fraction, FLOP fraction of DP peak). *)

type report = {
  device : string;  (** card name the profile was taken on *)
  kernel_time : float;  (** modelled kernel seconds *)
  transfer_time : float;  (** modelled PCIe seconds *)
  kernel_launches : int;  (** launches profiled *)
  sm_utilization : float;      (** 0..1 *)
  mem_throughput_frac : float; (** achieved DRAM rate over peak *)
  flop_frac_of_peak : float;   (** achieved FLOP rate over fp64 peak *)
  bytes_h2d : int;  (** host-to-device bytes moved *)
  bytes_d2h : int;  (** device-to-host bytes moved *)
}
(** The profile summary for one device. *)

val report : Memory.device -> avg_threads:int -> report
(** [avg_threads] is the typical grid size of the profiled launches; it
    determines the occupancy term of SM utilization. *)

val pp : Format.formatter -> report -> unit
(** Print the nvprof-style table. *)

val to_string : report -> string
(** {!pp} rendered to a string. *)
