(* Device interconnect topology.

   The paper's evaluation nodes carry 8 GPUs; devices on the same node
   exchange ghost data directly over NVLink (cudaMemcpyPeer), while
   devices on different nodes stage through host memory — a d2h on the
   source followed by an h2d on the destination, both over PCIe.  The
   global device index encodes placement: device [id] lives on node
   [id / devices_per_node]. *)

type path = Nvlink | Host_staged

let devices_per_node = 8

let node_of id = id / devices_per_node

let path ~src ~dst =
  if node_of src = node_of dst then Nvlink else Host_staged

let path_name = function Nvlink -> "nvlink" | Host_staged -> "host"

(* Modelled seconds to move [bytes] from one device to another over
   [path].  NVLink is one hop at link bandwidth; host staging pays PCIe
   twice (down on the source, up on the destination). *)
let d2d_time (spec : Spec.t) p ~bytes =
  if bytes = 0 then 0.
  else
    let b = float_of_int bytes in
    match p with
    | Nvlink -> spec.nvlink_latency +. (b /. spec.nvlink_bandwidth)
    | Host_staged ->
      2. *. (spec.pcie_latency +. (b /. spec.pcie_bandwidth))
