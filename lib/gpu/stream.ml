(* Asynchronous streams over the simulated device.

   The host enqueues operations; each op executes immediately (data effects
   are synchronous in the simulator) but its *modelled* duration is appended
   to the stream's timeline.  [synchronize] advances the host clock to the
   stream tail, so a driver can overlap modelled CPU work with modelled GPU
   work exactly the way the paper's generated code overlaps the boundary
   callback with the interior kernel (Fig. 6). *)

type t = {
  device : Memory.device;
  mutable tail : float; (* stream completion time on the host clock *)
}

type host_clock = { mutable now : float }

let create_clock () = { now = 0. }

let create device = { device; tail = 0. }

(* Model: enqueueing costs the host a few microseconds. *)
let enqueue_overhead = 2e-6

(* Enqueue an operation whose modelled duration is [dur]; the real effect
   [f] runs now.  The op starts when both the host has issued it and the
   stream is free. *)
let enqueue st clock ~dur f =
  let result = f () in
  clock.now <- clock.now +. enqueue_overhead;
  let start = Float.max clock.now st.tail in
  st.tail <- start +. dur;
  result

(* Kernel launch through the stream: same scheduling as [enqueue] (the
   duration is only known after the launch, so the tail is patched), with
   a modelled span on the stream's trace track covering [start, start+dur]
   on the stream timeline. *)
let kernel st clock k ~nthreads ?(block = 256) () =
  let dur = Kernel.launch st.device k ~nthreads ~block () in
  clock.now <- clock.now +. enqueue_overhead;
  let start = Float.max clock.now st.tail in
  st.tail <- start +. dur;
  if Prt.Trace.enabled () then
    Prt.Trace.span_at (Prt.Trace.stream st.device.Memory.id) ~cat:"gpu"
      k.Kernel.name
      ~args:[ "threads", float_of_int nthreads ]
      ~ts_s:start ~dur_s:dur

let h2d st clock buf host =
  let dur = ref 0. in
  enqueue st clock ~dur:0. (fun () -> dur := Memory.h2d st.device buf host);
  st.tail <- st.tail +. !dur

let d2h st clock buf host =
  let dur = ref 0. in
  enqueue st clock ~dur:0. (fun () -> dur := Memory.d2h st.device buf host);
  st.tail <- st.tail +. !dur

(* Stream-ordered peer copy into this stream's device. *)
let d2d st clock ~src ~src_buf dst_buf ~runs =
  let dur = ref 0. in
  enqueue st clock ~dur:0. (fun () ->
      dur := Memory.d2d ~src ~src_buf ~dst:st.device ~dst_buf ~runs);
  st.tail <- st.tail +. !dur

(* Cross-stream ordering (cudaStreamWaitEvent): work enqueued on [st]
   after the join starts no earlier than everything currently on [other].
   No host blocking — only the stream timelines are coupled. *)
let join st other = st.tail <- Float.max st.tail other.tail

(* Host-side work of modelled duration [dur] (e.g. the boundary callback)
   overlapping whatever the stream is doing. *)
let host_work clock ~dur f =
  let result = f () in
  clock.now <- clock.now +. dur;
  result

let m_sync_wait_ns = Prt.Metrics.counter "gpu.sync_wait_ns"

(* Block the host until the stream drains; the modelled wait is metered. *)
let synchronize st clock =
  if st.tail > clock.now then
    Prt.Metrics.add m_sync_wait_ns
      (int_of_float ((st.tail -. clock.now) *. 1e9));
  clock.now <- Float.max clock.now st.tail

let pending st clock = st.tail > clock.now
