(** Simulated device memory.

    Buffers own genuinely separate storage standing for device global
    memory: host <-> device transfers really copy, so generated code that
    forgets a transfer computes wrong numbers — the simulator preserves the
    programming model's failure modes, not just its timings. Transfer and
    kernel activity is accounted on the owning device. *)

type buffer = {
  label : string;  (** debug label, shown in errors and trace spans *)
  device_data :
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
      (** the device-resident storage (genuinely separate from host) *)
  mutable h2d_count : int;  (** number of host-to-device copies *)
  mutable d2h_count : int;  (** number of device-to-host copies *)
}
(** One device allocation. *)

type device = {
  spec : Spec.t;  (** the card being simulated *)
  id : int;  (** device index (also selects trace tracks) *)
  mutable buffers : buffer list;  (** live allocations, newest first *)
  mutable bytes_h2d : int;  (** accumulated host-to-device traffic *)
  mutable bytes_d2h : int;  (** accumulated device-to-host traffic *)
  mutable bytes_d2d : int;  (** accumulated device-to-device traffic *)
  mutable transfer_time : float;   (** modelled PCIe/NVLink seconds *)
  mutable kernel_time : float;     (** modelled kernel seconds *)
  mutable kernel_launches : int;  (** kernels launched since reset *)
  mutable flops : float;  (** accumulated modelled FLOPs *)
  mutable dram_bytes : float;  (** accumulated modelled DRAM traffic *)
  mutable busy_until : float;  (** device timeline position, seconds *)
}
(** A simulated device plus its profiler counters. *)

val create_device : ?id:int -> Spec.t -> device
(** Fresh device with zeroed counters and no allocations. *)

val set_sanitize : bool -> unit
(** Enable/disable sanitizer mode (off by default): when on, fresh
    buffers are poisoned with NaN instead of zero-filled so kernels that
    read never-uploaded device memory produce detectable output.  See
    {!Fvm.Field.set_sanitize} and docs/ANALYSIS.md. *)

val sanitize_enabled : unit -> bool
(** Whether sanitizer mode is currently on. *)

val alloc : device -> label:string -> size:int -> buffer
(** [alloc dev ~label ~size] allocates a float64 buffer of [size]
    elements on [dev], zero-filled (NaN-poisoned in sanitizer mode). *)

val size : buffer -> int
(** Element count of a buffer. *)

val bytes : buffer -> int
(** Byte size of a buffer (8 per element). *)

val h2d :
  device -> buffer ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> float
(** Copy host data to the device; returns the modelled transfer seconds.
    Accumulates the [gpu.h2d_bytes] metric and, when tracing, a modelled
    span on the device's ["gpu N dma"] track.
    Raises [Invalid_argument] on size mismatch. *)

val d2h :
  device -> buffer ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> float
(** Copy a device buffer back to host data, mirroring {!h2d} (metric
    [gpu.d2h_bytes]). *)

val h2d_runs :
  device -> buffer ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  runs:(int * int) list -> float
(** Partial {!h2d}: copy the [(offset, length)] element runs from the
    host array into the same offsets of the buffer, modelled as one
    packed transfer (one PCIe latency + the runs' total bytes).  Returns
    the modelled seconds.  Raises [Invalid_argument] on size mismatch or
    a run outside the buffer. *)

val d2h_runs :
  device -> buffer ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  runs:(int * int) list -> float
(** Partial {!d2h}, mirroring {!h2d_runs}. *)

val d2d :
  src:device -> src_buf:buffer -> dst:device -> dst_buf:buffer ->
  runs:(int * int) list -> float
(** Device-to-device copy of the [(offset, length)] element runs, the
    simulator's [cudaMemcpyPeer]: data moves from [src_buf] to the same
    offsets of [dst_buf], timed over NVLink when {!Topology.path} puts
    the two device ids on one node and staged through the host
    otherwise.  The modelled seconds land on both devices'
    [transfer_time] and accumulate the [gpu.d2d_bytes]/[gpu.d2d_msgs]
    metrics; returns the modelled seconds.  Raises [Invalid_argument]
    when buffer sizes differ or a run falls outside them. *)

val reset_counters : device -> unit
(** Zero the device's profiler counters (allocations are kept). *)
