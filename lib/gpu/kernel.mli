(** SPMD kernel execution on the simulated device.

    A kernel body receives a global thread index and runs real code
    against device buffers; launches mirror CUDA's flat 1-D grid with the
    excess threads of the last block guarded out. Execution is sequential
    over threads (deterministic, bit-reproducible); timing comes from the
    roofline model via the per-thread cost annotation. *)

type cost = {
  flops_per_thread : float;  (** modelled FLOPs each thread performs *)
  dram_bytes_per_thread : float;  (** modelled DRAM traffic per thread *)
}
(** Per-thread cost annotation feeding the roofline model. *)

type t = {
  name : string;  (** kernel name, used in profiles and trace spans *)
  cost : cost;  (** roofline cost annotation *)
  body : int -> unit;  (** the kernel body, applied to each global tid *)
}
(** A compiled kernel: real OCaml body plus modelled cost. *)

val make : name:string -> cost:cost -> (int -> unit) -> t
(** [make ~name ~cost body] packages a kernel. *)

val launch : Memory.device -> t -> nthreads:int -> ?block:int -> unit -> float
(** Execute over [nthreads] logical threads (blocks of [block], default
    256); returns the modelled kernel duration and updates the device's
    counters plus the [gpu.kernel_launches] / [gpu.kernel_ns] metrics. *)
