(* Simulated device memory.

   A buffer owns a real, separate float64 array standing for device global
   memory.  Host <-> device transfers genuinely copy data, so generated code
   that forgets a transfer produces wrong numbers — the simulator preserves
   the failure modes of the real programming model, not just its timings.
   All transfer traffic is accounted on the owning device's profiler. *)

type buffer = {
  label : string;
  device_data :
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable h2d_count : int;
  mutable d2h_count : int;
}

type device = {
  spec : Spec.t;
  id : int;
  mutable buffers : buffer list;
  mutable bytes_h2d : int;
  mutable bytes_d2h : int;
  mutable transfer_time : float;   (* modelled seconds spent on PCIe *)
  mutable kernel_time : float;     (* modelled seconds of kernel execution *)
  mutable kernel_launches : int;
  mutable flops : float;           (* accumulated modelled FLOPs *)
  mutable dram_bytes : float;      (* accumulated modelled DRAM traffic *)
  mutable busy_until : float;      (* device timeline position (s) *)
}

let create_device ?(id = 0) spec =
  {
    spec;
    id;
    buffers = [];
    bytes_h2d = 0;
    bytes_d2h = 0;
    transfer_time = 0.;
    kernel_time = 0.;
    kernel_launches = 0;
    flops = 0.;
    dram_bytes = 0.;
    busy_until = 0.;
  }

(* Sanitizer mode (see Fvm.Field and docs/ANALYSIS.md): fresh device
   buffers are poisoned with NaN instead of zero-filled, so a kernel that
   reads a buffer the transfer schedule never uploaded produces poisoned
   output that the host-side scans catch.  Correct schedules upload before
   the first read, making sanitized runs bit-identical. *)
let sanitize_on = Atomic.make false
let set_sanitize b = Atomic.set sanitize_on b
let sanitize_enabled () = Atomic.get sanitize_on

let alloc dev ~label ~size =
  if size < 1 then invalid_arg "Memory.alloc: empty buffer";
  let device_data =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout size
  in
  Bigarray.Array1.fill device_data
    (if Atomic.get sanitize_on then Float.nan else 0.);
  let b = { label; device_data; h2d_count = 0; d2h_count = 0 } in
  dev.buffers <- b :: dev.buffers;
  b

let size b = Bigarray.Array1.dim b.device_data
let bytes b = size b * 8

(* Transfers feed the metrics counters and, when tracing, modelled spans
   on a per-device "gpu N dma" track whose timeline is cumulative PCIe
   busy time (kernels live on the stream track; see Stream). *)
let m_h2d_bytes = Prt.Metrics.counter "gpu.h2d_bytes"
let m_d2h_bytes = Prt.Metrics.counter "gpu.d2h_bytes"

let dma_track dev =
  Prt.Trace.track ~pid:Prt.Trace.device_pid ~sort:(400 + dev.id)
    (Printf.sprintf "gpu %d dma" dev.id)

let trace_transfer dev name b ~dur =
  if Prt.Trace.enabled () then
    Prt.Trace.span_at (dma_track dev) ~cat:"gpu"
      (name ^ " " ^ b.label)
      ~args:[ "bytes", float_of_int (bytes b) ]
      ~ts_s:dev.transfer_time ~dur_s:dur

(* Copy host array into device buffer; returns modelled transfer seconds. *)
let h2d dev b host =
  if Bigarray.Array1.dim host <> size b then
    invalid_arg ("Memory.h2d: size mismatch for " ^ b.label);
  Bigarray.Array1.blit host b.device_data;
  b.h2d_count <- b.h2d_count + 1;
  let t = Spec.transfer_time dev.spec ~bytes:(bytes b) in
  trace_transfer dev "h2d" b ~dur:t;
  Prt.Metrics.add m_h2d_bytes (bytes b);
  dev.bytes_h2d <- dev.bytes_h2d + bytes b;
  dev.transfer_time <- dev.transfer_time +. t;
  t

(* Copy device buffer back into host array; returns modelled seconds. *)
let d2h dev b host =
  if Bigarray.Array1.dim host <> size b then
    invalid_arg ("Memory.d2h: size mismatch for " ^ b.label);
  Bigarray.Array1.blit b.device_data host;
  b.d2h_count <- b.d2h_count + 1;
  let t = Spec.transfer_time dev.spec ~bytes:(bytes b) in
  trace_transfer dev "d2h" b ~dur:t;
  Prt.Metrics.add m_d2h_bytes (bytes b);
  dev.bytes_d2h <- dev.bytes_d2h + bytes b;
  dev.transfer_time <- dev.transfer_time +. t;
  t

let reset_counters dev =
  dev.bytes_h2d <- 0;
  dev.bytes_d2h <- 0;
  dev.transfer_time <- 0.;
  dev.kernel_time <- 0.;
  dev.kernel_launches <- 0;
  dev.flops <- 0.;
  dev.dram_bytes <- 0.;
  dev.busy_until <- 0.
