(* Simulated device memory.

   A buffer owns a real, separate float64 array standing for device global
   memory.  Host <-> device transfers genuinely copy data, so generated code
   that forgets a transfer produces wrong numbers — the simulator preserves
   the failure modes of the real programming model, not just its timings.
   All transfer traffic is accounted on the owning device's profiler. *)

type buffer = {
  label : string;
  device_data :
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable h2d_count : int;
  mutable d2h_count : int;
}

type device = {
  spec : Spec.t;
  id : int;
  mutable buffers : buffer list;
  mutable bytes_h2d : int;
  mutable bytes_d2h : int;
  mutable bytes_d2d : int;
  mutable transfer_time : float;   (* modelled seconds spent on PCIe *)
  mutable kernel_time : float;     (* modelled seconds of kernel execution *)
  mutable kernel_launches : int;
  mutable flops : float;           (* accumulated modelled FLOPs *)
  mutable dram_bytes : float;      (* accumulated modelled DRAM traffic *)
  mutable busy_until : float;      (* device timeline position (s) *)
}

let create_device ?(id = 0) spec =
  {
    spec;
    id;
    buffers = [];
    bytes_h2d = 0;
    bytes_d2h = 0;
    bytes_d2d = 0;
    transfer_time = 0.;
    kernel_time = 0.;
    kernel_launches = 0;
    flops = 0.;
    dram_bytes = 0.;
    busy_until = 0.;
  }

(* Sanitizer mode (see Fvm.Field and docs/ANALYSIS.md): fresh device
   buffers are poisoned with NaN instead of zero-filled, so a kernel that
   reads a buffer the transfer schedule never uploaded produces poisoned
   output that the host-side scans catch.  Correct schedules upload before
   the first read, making sanitized runs bit-identical. *)
let sanitize_on = Atomic.make false
let set_sanitize b = Atomic.set sanitize_on b
let sanitize_enabled () = Atomic.get sanitize_on

let alloc dev ~label ~size =
  if size < 1 then invalid_arg "Memory.alloc: empty buffer";
  let device_data =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout size
  in
  Bigarray.Array1.fill device_data
    (if Atomic.get sanitize_on then Float.nan else 0.);
  let b = { label; device_data; h2d_count = 0; d2h_count = 0 } in
  dev.buffers <- b :: dev.buffers;
  b

let size b = Bigarray.Array1.dim b.device_data
let bytes b = size b * 8

(* Transfers feed the metrics counters and, when tracing, modelled spans
   on a per-device "gpu N dma" track whose timeline is cumulative PCIe
   busy time (kernels live on the stream track; see Stream). *)
let m_h2d_bytes = Prt.Metrics.counter "gpu.h2d_bytes"
let m_d2h_bytes = Prt.Metrics.counter "gpu.d2h_bytes"
let m_d2d_bytes = Prt.Metrics.counter "gpu.d2d_bytes"
let m_d2d_msgs = Prt.Metrics.counter "gpu.d2d_msgs"

let dma_track dev =
  Prt.Trace.track ~pid:Prt.Trace.device_pid ~sort:(400 + dev.id)
    (Printf.sprintf "gpu %d dma" dev.id)

let trace_transfer dev name b ~dur =
  if Prt.Trace.enabled () then
    Prt.Trace.span_at (dma_track dev) ~cat:"gpu"
      (name ^ " " ^ b.label)
      ~args:[ "bytes", float_of_int (bytes b) ]
      ~ts_s:dev.transfer_time ~dur_s:dur

(* Copy host array into device buffer; returns modelled transfer seconds. *)
let h2d dev b host =
  if Bigarray.Array1.dim host <> size b then
    invalid_arg ("Memory.h2d: size mismatch for " ^ b.label);
  Bigarray.Array1.blit host b.device_data;
  b.h2d_count <- b.h2d_count + 1;
  let t = Spec.transfer_time dev.spec ~bytes:(bytes b) in
  trace_transfer dev "h2d" b ~dur:t;
  Prt.Metrics.add m_h2d_bytes (bytes b);
  dev.bytes_h2d <- dev.bytes_h2d + bytes b;
  dev.transfer_time <- dev.transfer_time +. t;
  t

(* Copy device buffer back into host array; returns modelled seconds. *)
let d2h dev b host =
  if Bigarray.Array1.dim host <> size b then
    invalid_arg ("Memory.d2h: size mismatch for " ^ b.label);
  Bigarray.Array1.blit b.device_data host;
  b.d2h_count <- b.d2h_count + 1;
  let t = Spec.transfer_time dev.spec ~bytes:(bytes b) in
  trace_transfer dev "d2h" b ~dur:t;
  Prt.Metrics.add m_d2h_bytes (bytes b);
  dev.bytes_d2h <- dev.bytes_d2h + bytes b;
  dev.transfer_time <- dev.transfer_time +. t;
  t

(* Partial transfers: a list of (offset, length) element runs moved as
   one packed operation — one latency, the runs' total bytes at PCIe
   bandwidth — the way a real driver moves a packed ghost-region staging
   buffer.  Data effects still copy each run individually. *)

let runs_bytes runs =
  8 * List.fold_left (fun acc (_, len) -> acc + len) 0 runs

let check_runs name b runs =
  List.iter
    (fun (off, len) ->
      if off < 0 || len < 0 || off + len > size b then
        invalid_arg
          (Printf.sprintf "Memory.%s: run (%d,%d) outside %s[%d]" name off
             len b.label (size b)))
    runs

let trace_runs dev name b ~bytes:nbytes ~dur =
  if Prt.Trace.enabled () then
    Prt.Trace.span_at (dma_track dev) ~cat:"gpu"
      (name ^ " " ^ b.label)
      ~args:[ "bytes", float_of_int nbytes ]
      ~ts_s:dev.transfer_time ~dur_s:dur

let h2d_runs dev b host ~runs =
  if Bigarray.Array1.dim host <> size b then
    invalid_arg ("Memory.h2d_runs: size mismatch for " ^ b.label);
  check_runs "h2d_runs" b runs;
  List.iter
    (fun (off, len) ->
      if len > 0 then
        Bigarray.Array1.blit
          (Bigarray.Array1.sub host off len)
          (Bigarray.Array1.sub b.device_data off len))
    runs;
  b.h2d_count <- b.h2d_count + 1;
  let nbytes = runs_bytes runs in
  let t = Spec.transfer_time dev.spec ~bytes:nbytes in
  trace_runs dev "h2d" b ~bytes:nbytes ~dur:t;
  Prt.Metrics.add m_h2d_bytes nbytes;
  dev.bytes_h2d <- dev.bytes_h2d + nbytes;
  dev.transfer_time <- dev.transfer_time +. t;
  t

let d2h_runs dev b host ~runs =
  if Bigarray.Array1.dim host <> size b then
    invalid_arg ("Memory.d2h_runs: size mismatch for " ^ b.label);
  check_runs "d2h_runs" b runs;
  List.iter
    (fun (off, len) ->
      if len > 0 then
        Bigarray.Array1.blit
          (Bigarray.Array1.sub b.device_data off len)
          (Bigarray.Array1.sub host off len))
    runs;
  b.d2h_count <- b.d2h_count + 1;
  let nbytes = runs_bytes runs in
  let t = Spec.transfer_time dev.spec ~bytes:nbytes in
  trace_runs dev "d2h" b ~bytes:nbytes ~dur:t;
  Prt.Metrics.add m_d2h_bytes nbytes;
  dev.bytes_d2h <- dev.bytes_d2h + nbytes;
  dev.transfer_time <- dev.transfer_time +. t;
  t

(* Device-to-device copy (cudaMemcpyPeer): runs move from [src_buf] on
   [src] to the same offsets of [dst_buf] on [dst], over NVLink when the
   two global device ids share a node and staged through the host
   otherwise (see Topology).  The modelled time lands on both devices'
   transfer accounting — a peer copy occupies both ends. *)
let d2d ~src ~src_buf ~dst ~dst_buf ~runs =
  if size src_buf <> size dst_buf then
    invalid_arg
      (Printf.sprintf "Memory.d2d: size mismatch %s[%d] -> %s[%d]"
         src_buf.label (size src_buf) dst_buf.label (size dst_buf));
  check_runs "d2d" src_buf runs;
  List.iter
    (fun (off, len) ->
      if len > 0 then
        Bigarray.Array1.blit
          (Bigarray.Array1.sub src_buf.device_data off len)
          (Bigarray.Array1.sub dst_buf.device_data off len))
    runs;
  let nbytes = runs_bytes runs in
  let p = Topology.path ~src:src.id ~dst:dst.id in
  let t = Topology.d2d_time dst.spec p ~bytes:nbytes in
  trace_runs dst
    (Printf.sprintf "d2d[%s] gpu %d->%d" (Topology.path_name p) src.id
       dst.id)
    dst_buf ~bytes:nbytes ~dur:t;
  Prt.Metrics.add m_d2d_bytes nbytes;
  Prt.Metrics.incr m_d2d_msgs;
  src.bytes_d2d <- src.bytes_d2d + nbytes;
  dst.bytes_d2d <- dst.bytes_d2d + nbytes;
  src.transfer_time <- src.transfer_time +. t;
  dst.transfer_time <- dst.transfer_time +. t;
  t

let reset_counters dev =
  dev.bytes_h2d <- 0;
  dev.bytes_d2h <- 0;
  dev.bytes_d2d <- 0;
  dev.transfer_time <- 0.;
  dev.kernel_time <- 0.;
  dev.kernel_launches <- 0;
  dev.flops <- 0.;
  dev.dram_bytes <- 0.;
  dev.busy_until <- 0.
