(** Device interconnect topology: which pairs of simulated devices talk
    over NVLink and which must stage through host memory, and the
    alpha-beta cost of each path.  Mirrors the paper's evaluation nodes
    (8 GPUs per node, NVLink within a node, PCIe + network across). *)

type path =
  | Nvlink  (** direct device-to-device copy within a node *)
  | Host_staged
    (** d2h on the source then h2d on the destination, both over PCIe *)

val devices_per_node : int
(** GPUs per node in the simulated cluster (8, as in the paper). *)

val node_of : int -> int
(** Node index hosting global device [id]
    ([id / devices_per_node]). *)

val path : src:int -> dst:int -> path
(** The interconnect path between two global device indices: [Nvlink]
    when they share a node, [Host_staged] otherwise. *)

val path_name : path -> string
(** ["nvlink"] or ["host"], for traces and reports. *)

val d2d_time : Spec.t -> path -> bytes:int -> float
(** Modelled seconds to move [bytes] over [path]: NVLink latency +
    bytes/bandwidth for one hop, or twice the PCIe cost when staging
    through the host; 0 for 0 bytes. *)
