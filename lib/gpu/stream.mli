(** Asynchronous streams over the simulated device.

    Data effects happen immediately; modelled durations accumulate on the
    stream's timeline. [synchronize] advances the host clock to the stream
    tail, so a driver can overlap modelled CPU work with modelled GPU work
    exactly as the paper's generated code overlaps the boundary callback
    with the interior kernel (Fig. 6). *)

type t = { device : Memory.device; mutable tail : float }
(** One in-order stream: [tail] is the modelled completion time of the
    last enqueued operation on the host clock's timeline. *)

type host_clock = { mutable now : float }
(** The modelled host timeline that stream operations are issued on. *)

val create_clock : unit -> host_clock
(** A fresh host clock at time 0. *)

val create : Memory.device -> t
(** A fresh, empty stream bound to [device]. *)

val enqueue_overhead : float
(** Host-side cost of issuing one operation. *)

val enqueue : t -> host_clock -> dur:float -> (unit -> 'a) -> 'a
(** [enqueue st clock ~dur f] runs the real effect [f ()] now and appends
    a modelled operation of duration [dur] to the stream: it starts at
    [max clock.now st.tail] after charging {!enqueue_overhead} to the
    host. *)

val kernel : t -> host_clock -> Kernel.t -> nthreads:int -> ?block:int -> unit -> unit
(** Launch a kernel through the stream ({!Kernel.launch} semantics) and
    advance the stream tail by its roofline duration.  With
    {!Prt.Trace.enable}, emits a modelled span on the device's
    ["gpu stream S"] track covering the kernel's slot on the stream
    timeline. *)

val h2d :
  t -> host_clock -> Memory.buffer ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> unit
(** Stream-ordered {!Memory.h2d}: the copy happens now, the modelled
    transfer occupies the stream. *)

val d2h :
  t -> host_clock -> Memory.buffer ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> unit
(** Stream-ordered {!Memory.d2h}, mirroring {!h2d}. *)

val d2d :
  t -> host_clock -> src:Memory.device -> src_buf:Memory.buffer ->
  Memory.buffer -> runs:(int * int) list -> unit
(** Stream-ordered {!Memory.d2d} into this stream's device: the peer
    copy of the element runs happens now, the modelled NVLink (or
    host-staged) time occupies the stream. *)

val join : t -> t -> unit
(** [join st other]: cross-stream ordering point (the simulator's
    [cudaStreamWaitEvent]) — work enqueued on [st] after the join starts
    no earlier than everything currently enqueued on [other].  Does not
    block the host.  Used to order kernel launches after in-flight
    uploads on a second copy stream, and copies after kernels. *)

val host_work : host_clock -> dur:float -> (unit -> 'a) -> 'a
(** CPU work of modelled duration [dur] overlapping the stream. *)

val synchronize : t -> host_clock -> unit
(** Advance the host clock to the stream tail (a blocking wait in the
    model); the modelled wait accumulates into the [gpu.sync_wait_ns]
    metric. *)

val pending : t -> host_clock -> bool
(** Whether the stream still has modelled work beyond the host clock. *)
