(* GPU device specifications used by the performance model.

   Numbers are the published figures for the cards used in the paper's
   evaluation (NVIDIA RTX A6000 and A100) plus generic PCIe parameters.
   [fp64_issue_efficiency] is the fraction of double-precision peak a
   well-shaped compute-bound kernel achieves in practice; the paper's own
   profiling of the BTE kernel reports 49% of DP peak at 86% SM utilization,
   which is what the default reproduces. *)

type t = {
  name : string;
  sm_count : int;
  max_threads_per_sm : int;
  fp64_peak_flops : float;        (* FLOP/s, double precision *)
  fp32_peak_flops : float;
  mem_bandwidth : float;          (* bytes/s, device global memory *)
  pcie_bandwidth : float;         (* bytes/s, host <-> device *)
  pcie_latency : float;           (* seconds per transfer *)
  kernel_launch_overhead : float; (* seconds per launch *)
  fp64_issue_efficiency : float;  (* achieved fraction of DP peak *)
  mem_efficiency : float;         (* achieved fraction of DRAM bandwidth *)
  nvlink_bandwidth : float;       (* bytes/s, device <-> device, per dir *)
  nvlink_latency : float;         (* seconds per d2d transfer *)
}

(* NVIDIA RTX A6000: 84 SMs, 38.7 TFLOPS FP32, FP64 = FP32/32, 768 GB/s. *)
let a6000 = {
  name = "A6000";
  sm_count = 84;
  max_threads_per_sm = 1536;
  fp64_peak_flops = 38.7e12 /. 32.;
  fp32_peak_flops = 38.7e12;
  mem_bandwidth = 768e9;
  pcie_bandwidth = 16e9;
  pcie_latency = 10e-6;
  kernel_launch_overhead = 5e-6;
  fp64_issue_efficiency = 0.49;
  mem_efficiency = 0.8;
  (* NVLink 3 bridge: 112.5 GB/s bidirectional = 56.25 GB/s per direction *)
  nvlink_bandwidth = 56.25e9;
  nvlink_latency = 2e-6;
}

(* NVIDIA A100 (SXM 40GB): 108 SMs, 9.7 TFLOPS FP64, 1555 GB/s HBM2. *)
let a100 = {
  name = "A100";
  sm_count = 108;
  max_threads_per_sm = 2048;
  fp64_peak_flops = 9.7e12;
  fp32_peak_flops = 19.5e12;
  mem_bandwidth = 1555e9;
  pcie_bandwidth = 25e9;
  pcie_latency = 10e-6;
  kernel_launch_overhead = 5e-6;
  fp64_issue_efficiency = 0.49;
  mem_efficiency = 0.8;
  (* NVLink 3 full mesh via NVSwitch: 600 GB/s bidir = 300 GB/s per dir *)
  nvlink_bandwidth = 300e9;
  nvlink_latency = 2e-6;
}

let by_name = function
  | "A6000" | "a6000" -> a6000
  | "A100" | "a100" -> a100
  | other -> invalid_arg ("Spec.by_name: unknown device " ^ other)

(* Time to move [bytes] across PCIe, one direction. *)
let transfer_time spec ~bytes =
  if bytes = 0 then 0.
  else spec.pcie_latency +. (float_of_int bytes /. spec.pcie_bandwidth)

(* Roofline kernel-time model.  [threads] concurrent threads with
   [flops] total double-precision operations and [dram_bytes] total DRAM
   traffic.  Occupancy below one SM's worth of warps scales throughput
   down (tiny grids cannot saturate the device). *)
let kernel_time spec ~threads ~flops ~dram_bytes =
  let capacity = float_of_int (spec.sm_count * spec.max_threads_per_sm) in
  let occupancy = Float.min 1. (float_of_int threads /. capacity) in
  (* Very small grids still progress at at least one SM's rate. *)
  let occupancy = Float.max occupancy (1. /. float_of_int spec.sm_count) in
  let flop_rate = spec.fp64_peak_flops *. spec.fp64_issue_efficiency *. occupancy in
  let mem_rate = spec.mem_bandwidth *. spec.mem_efficiency *. occupancy in
  let t_compute = flops /. flop_rate in
  let t_memory = dram_bytes /. mem_rate in
  spec.kernel_launch_overhead +. Float.max t_compute t_memory
