(* SPMD kernel execution on the simulated device.

   A kernel body receives a global thread index and runs real OCaml code
   against device buffers.  Launch semantics mirror CUDA's flat 1-D grid:
   one thread per degree of freedom, the grid rounded up to whole blocks,
   excess threads guarded out by the body itself (the generated code emits
   the guard, as CUDA codegen would).

   The cost annotation gives modelled per-thread FLOPs and DRAM bytes; the
   launch advances the device timeline by the roofline time. *)

type cost = {
  flops_per_thread : float;
  dram_bytes_per_thread : float;
}

type t = {
  name : string;
  cost : cost;
  body : int -> unit; (* global thread index *)
}

let make ~name ~cost body = { name; cost; body }

(* Launch accounting also feeds the process-wide metrics registry (the
   per-device counters remain the profiler's source of truth). *)
let m_launches = Prt.Metrics.counter "gpu.kernel_launches"
let m_kernel_ns = Prt.Metrics.counter "gpu.kernel_ns"

(* Launch [k] over [nthreads] logical threads with blocks of [block] threads.
   Returns the modelled kernel duration.  Execution itself is sequential
   over threads — simulating the SPMD model, not racing it — which keeps
   results deterministic and bit-reproducible. *)
let launch dev k ~nthreads ?(block = 256) () =
  if nthreads < 1 then invalid_arg "Kernel.launch: empty grid";
  let nblocks = (nthreads + block - 1) / block in
  let launched = nblocks * block in
  for tid = 0 to launched - 1 do
    (* guard: threads past the logical range are no-ops, as in generated
       CUDA where the body begins with [if (tid >= n) return;] *)
    if tid < nthreads then k.body tid
  done;
  let flops = k.cost.flops_per_thread *. float_of_int nthreads in
  let dram = k.cost.dram_bytes_per_thread *. float_of_int nthreads in
  let t =
    Spec.kernel_time dev.Memory.spec ~threads:nthreads ~flops ~dram_bytes:dram
  in
  dev.Memory.kernel_time <- dev.Memory.kernel_time +. t;
  dev.Memory.kernel_launches <- dev.Memory.kernel_launches + 1;
  dev.Memory.flops <- dev.Memory.flops +. flops;
  dev.Memory.dram_bytes <- dev.Memory.dram_bytes +. dram;
  Prt.Metrics.incr m_launches;
  Prt.Metrics.add m_kernel_ns (int_of_float (t *. 1e9));
  t
