(** Finite-volume mesh: cells, oriented faces, boundary regions.

    Storage is struct-of-arrays for the hot flux loops. Faces are oriented:
    the stored unit normal points out of [face_cell1] into [face_cell2];
    boundary faces have [face_cell2 = -1] and a positive region id. *)

type t = {
  dim : int;
  ncells : int;
  nfaces : int;
  nvertices : int;
  coords : float array;            (** nvertices * dim vertex coordinates *)
  cell_vertices : int array array;
  cell_centroid : float array;     (** ncells * dim *)
  cell_volume : float array;       (** area in 2-D, length in 1-D *)
  cell_faces : int array array;    (** face ids bounding each cell *)
  face_cell1 : int array;          (** owning cell *)
  face_cell2 : int array;          (** neighbour, or -1 on the boundary *)
  face_area : float array;         (** length in 2-D, 1.0 in 1-D *)
  face_normal : float array;       (** nfaces * dim, unit, outward from cell1 *)
  face_centroid : float array;
  face_bid : int array;            (** 0 interior, >0 boundary region id *)
  boundary_faces : int array;
}

val dim : t -> int
(** Spatial dimension (1, 2 or 3). *)

val ncells : t -> int
(** Number of cells. *)

val nfaces : t -> int
(** Number of faces (interior and boundary). *)

val cell_centroid : t -> int -> float array
(** Centroid of one cell; fresh array of length [dim]. *)

val face_centroid : t -> int -> float array
(** Centroid of one face; fresh array of length [dim]. *)

val face_normal : t -> int -> float array
(** Unit normal of one face (outward from [face_cell1]); fresh array of
    length [dim]. *)

val is_boundary_face : t -> int -> bool
(** Whether the face lies on the domain boundary. *)

val neighbour : t -> int -> int -> int
(** [neighbour m f c] is the cell across face [f] from cell [c]; -1 when
    [f] is a boundary face. *)

val normal_sign : t -> int -> int -> float
(** +1.0 if the stored normal points out of the given cell (i.e. the cell
    owns the face), -1.0 otherwise. *)

val boundary_regions : t -> int list
(** Distinct boundary region ids, sorted. *)

val faces_of_region : t -> int -> int array
(** Boundary face ids carrying the given region id. *)

val polygon_area_centroid : float array -> int -> int array -> float * float array
(** Shoelace area (absolute) and centroid of a CCW polygon given vertex
    ids into a coordinate array; 2-D only. *)

val of_cells_2d :
  coords:float array ->
  cells:int array array ->
  classify:(float array -> float array -> int) ->
  t
(** Build a 2-D mesh from vertex coordinates and per-cell CCW vertex
    lists; faces are discovered by edge hashing. [classify centre normal]
    assigns each boundary face its region id (>= 1). *)

val line : n:int -> length:float -> t
(** 1-D mesh on [0,length]: region 1 = left end, 2 = right end. *)

type check_error = string

val check : t -> (unit, check_error list) result
(** Structural and geometric invariants: indices in range, unit normals,
    positive areas/volumes, and closure (the area-weighted outward normals
    of every cell sum to zero). *)

val total_volume : t -> float
(** Sum of all cell volumes. *)
