(** 2-D band x cell decomposition for the multi-device GPU target.

    SPMD ranks partition the equation (band) axis into contiguous blocks
    — the paper's one-process-per-node MPI decomposition — while the
    devices of each rank partition the mesh (cell axis) by recursive
    coordinate bisection.  Every rank reuses the same cell tiling, so
    the device-to-device ghost traffic is identical across ranks and the
    halo plan over tiles doubles as the per-device exchange schedule. *)

type t = {
  nranks : int;  (** ranks over the band axis *)
  ndevices : int;  (** devices per rank over the cell axis *)
  part : Partition.t;  (** the cell tiling shared by every rank *)
  halo : Halo.t;  (** ghost-exchange plan between device tiles *)
}
(** One decomposition: band blocks x cell tiles. *)

val build : Mesh.t -> ndevices:int -> nranks:int -> t
(** Tile the mesh into [ndevices] parts (RCB over centroids) and derive
    the tile halo plan.  Raises [Invalid_argument] when either count is
    below 1. *)

val owned_cells : t -> int -> int array
(** Cells owned by device tile [g], ascending. *)

val band_range : t -> nbands:int -> int -> int * int
(** [(offset, length)] of a rank's contiguous band slice, consistent
    with {!Partition.block_range}. *)

val d2d_edges : t -> (int * int * int array) list
(** The directed ghost edges between device tiles as
    [(src, dst, cells)]: [cells] are owned by tile [src] and ghosts on
    tile [dst], exactly the cells a peer copy must push after each
    step. *)

val neighbour_tiles : t -> int -> int list
(** The device tiles that tile [g] legitimately pushes ghosts to
    (sorted, without duplicates) — the reachable peer set the static
    Comm analysis checks [D2d] pushes against. *)

val cell_runs : cells:int array -> ncomp:int -> (int * int) list
(** Contiguous [(offset, length)] element runs covering a cell set under
    the Cell_major field layout (cell [c] occupies elements
    [c*ncomp .. (c+1)*ncomp - 1]); adjacent cells merge so blocks move
    as single packed copies.  The input need not be sorted. *)

val interface_cells : t -> int
(** Total cells crossing tile cuts per exchange round (the sum of all
    send-list lengths) — the per-step d2d payload in cells. *)
