(** Cell-centred field storage: [ncomp] float64 components per cell in one
    flat Bigarray.

    Multi-index DSL variables (e.g. I[d,b]) flatten their index space into
    components; the component ordering is owned by the caller. *)

type layout =
  | Cell_major (** (cell, comp) at cell*ncomp + comp — per-cell work *)
  | Comp_major (** (cell, comp) at comp*ncells + cell — per-band sweeps *)

type t

val create : ?layout:layout -> name:string -> ncells:int -> ncomp:int -> unit -> t
(** Zero-initialised. *)

val of_bigarray :
  ?layout:layout -> name:string -> ncells:int -> ncomp:int ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> t
(** View an existing bigarray (e.g. simulated device memory) as a field;
    writes go through to the backing storage. *)

val name : t -> string
(** Debug name, shown in traces and errors. *)

val ncells : t -> int
(** Number of cells. *)

val ncomp : t -> int
(** Components per cell. *)

val size : t -> int
(** Total element count ([ncells * ncomp]). *)

val layout : t -> layout
(** Storage layout of the backing array. *)

val get : t -> int -> int -> float
(** [get t cell comp]; unchecked (hot path). *)

val set : t -> int -> int -> float -> unit
(** [set t cell comp v]; unchecked (hot path). *)

val get_checked : t -> int -> int -> float
(** Bounds-checked accessor; raises [Invalid_argument]. *)

val fill : t -> float -> unit
(** Store one value in every element. *)

val blit : src:t -> dst:t -> unit
(** Copy all elements; fields must agree in shape and layout. *)

val blit_cells : src:t -> dst:t -> int array -> unit
(** Copy all components of the given cells (any order; consecutive ids
    are coalesced into contiguous Bigarray blits). Fields must agree in
    shape and layout. *)

val copy : t -> t
(** Fresh field with the same shape, layout and contents. *)

val init : t -> (int -> int -> float) -> unit
(** [init t f] stores [f cell comp] into every element. *)

val iter : t -> (int -> int -> float -> unit) -> unit
(** Visit every element as [(cell, comp, value)]. *)

val fold : t -> ('a -> int -> int -> float -> 'a) -> 'a -> 'a
(** Fold over every element in iteration order. *)

val max_abs : t -> float
(** Largest absolute element value. *)

val max_abs_diff : t -> t -> float
(** Largest absolute elementwise difference between two fields. *)

val sum_comp : t -> int -> float
(** Sum of one component over all cells. *)

val integral : t -> Mesh.t -> int -> float
(** Volume-weighted integral of one component over the mesh. *)

val raw : t -> (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The backing storage (for transfers and kernel binding). *)

(** {2 Runtime sanitizer}

    When enabled, executors poison storage that must be refreshed before
    its next read (ghost regions after a commit, simulated device buffers
    at allocation) with NaN.  Correct transfer schedules overwrite every
    poisoned value before it is read, so sanitized runs are bit-identical
    to plain runs; a missing exchange or upload lets the poison propagate
    into owned data, where post-phase scans count it as findings.  See
    docs/ANALYSIS.md. *)

val set_sanitize : bool -> unit
(** Globally enable/disable sanitizer behaviour (off by default). *)

val sanitize_enabled : unit -> bool
(** Whether the sanitizer is currently on. *)

val poison_value : float
(** The poison sentinel written into stale storage (NaN). *)

val is_poison : float -> bool
(** Whether a value is (or was contaminated by) the poison sentinel. *)

val poison_cells : t -> int array -> unit
(** Write the poison sentinel into every component of the given cells. *)

val count_poison_cells : t -> int array -> int
(** Count poisoned values over the given cells (all components). *)

val record_poison : int -> unit
(** Record [n] poison-read findings: adds to the process-local total and
    the [sanitize.poison_reads] metric (no-op for [n <= 0]). *)

val poison_reads : unit -> int
(** Total poison-read findings recorded since the last {!reset_poison}. *)

val reset_poison : unit -> unit
(** Zero the process-local poison-read total. *)
