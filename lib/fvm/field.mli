(** Cell-centred field storage: [ncomp] float64 components per cell in one
    flat Bigarray.

    Multi-index DSL variables (e.g. I[d,b]) flatten their index space into
    components; the component ordering is owned by the caller. *)

type layout =
  | Cell_major (** (cell, comp) at cell*ncomp + comp — per-cell work *)
  | Comp_major (** (cell, comp) at comp*ncells + cell — per-band sweeps *)

type t

val create : ?layout:layout -> name:string -> ncells:int -> ncomp:int -> unit -> t
(** Zero-initialised. *)

val of_bigarray :
  ?layout:layout -> name:string -> ncells:int -> ncomp:int ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> t
(** View an existing bigarray (e.g. simulated device memory) as a field;
    writes go through to the backing storage. *)

val name : t -> string
val ncells : t -> int
val ncomp : t -> int
val size : t -> int
val layout : t -> layout

val get : t -> int -> int -> float
(** [get t cell comp]; unchecked (hot path). *)

val set : t -> int -> int -> float -> unit

val get_checked : t -> int -> int -> float
(** Bounds-checked accessor; raises [Invalid_argument]. *)

val fill : t -> float -> unit
val blit : src:t -> dst:t -> unit

val blit_cells : src:t -> dst:t -> int array -> unit
(** Copy all components of the given cells (any order; consecutive ids
    are coalesced into contiguous Bigarray blits). Fields must agree in
    shape and layout. *)

val copy : t -> t
val init : t -> (int -> int -> float) -> unit
val iter : t -> (int -> int -> float -> unit) -> unit
val fold : t -> ('a -> int -> int -> float -> 'a) -> 'a -> 'a
val max_abs : t -> float
val max_abs_diff : t -> t -> float
val sum_comp : t -> int -> float

val integral : t -> Mesh.t -> int -> float
(** Volume-weighted integral of one component over the mesh. *)

val raw : t -> (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The backing storage (for transfers and kernel binding). *)
