(** Small dense-vector helpers for mesh geometry (dimension 1-3).
    Vectors are plain float arrays of length [dim]. *)

val dot : float array -> float array -> float
(** Inner product. *)

val norm : float array -> float
(** Euclidean length. *)

val scale : float -> float array -> float array
(** [scale a v] is the fresh vector [a v]. *)

val add : float array -> float array -> float array
(** Componentwise sum (fresh vector). *)

val sub : float array -> float array -> float array
(** Componentwise difference (fresh vector). *)

val normalize : float array -> float array
(** Raises [Invalid_argument] on the zero vector. *)

val reflect : float array -> float array -> float array
(** [reflect v n] is v - 2 (v.n) n for unit normal [n] — specular
    reflection, used by symmetry boundary conditions. *)

val equal_eps : float -> float array -> float array -> bool
(** [equal_eps eps a b]: componentwise equality within [eps]. *)
