(* 2-D band x cell decomposition for the multi-device GPU target.

   Ranks partition the equation (band) axis into contiguous blocks — the
   paper's MPI decomposition, one process per node — while the devices
   of each rank partition the mesh (cell axis) by recursive coordinate
   bisection.  Every rank uses the same cell tiling, so device g of every
   rank owns the same cells (for its rank's band slice) and the
   device-to-device ghost traffic is identical across ranks.  The halo
   plan over the tiles names exactly which owned cells each device must
   push to which neighbour after every step. *)

type t = {
  nranks : int;
  ndevices : int;
  part : Partition.t;
  halo : Halo.t;
}

let build mesh ~ndevices ~nranks =
  if ndevices < 1 then invalid_arg "Decomp2d.build: ndevices < 1";
  if nranks < 1 then invalid_arg "Decomp2d.build: nranks < 1";
  let part = Partition.rcb_mesh mesh ~nparts:ndevices in
  let halo = Halo.build mesh part in
  { nranks; ndevices; part; halo }

let owned_cells t g = Partition.cells_of_rank t.part g

let band_range t ~nbands rank =
  Partition.block_range ~nitems:nbands ~nparts:t.nranks rank

(* The directed ghost edges between device tiles: (src, dst, cells) with
   [cells] owned by [src] and ghosts on [dst]. *)
let d2d_edges t =
  List.concat_map
    (fun g ->
      List.map
        (fun (e : Halo.exchange) -> (e.from_rank, e.to_rank, e.cells))
        (Halo.sends_of t.halo g))
    (List.init t.ndevices Fun.id)

(* The tiles a device may legitimately push ghosts to: exactly the
   destinations of its halo send lists. *)
let neighbour_tiles t g = Halo.neighbour_ranks t.halo g

(* Contiguous (offset, length) element runs of a sorted cell set under
   the Cell_major layout: cell c occupies elements [c*ncomp, (c+1)*ncomp).
   Adjacent cells merge into one run, so a block of cells moves as a
   single packed copy. *)
let cell_runs ~cells ~ncomp =
  let cells = Array.copy cells in
  Array.sort compare cells;
  let runs = ref [] in
  let start = ref (-1) and len = ref 0 in
  Array.iter
    (fun c ->
      if !len > 0 && c = !start + !len then incr len
      else begin
        if !len > 0 then runs := (!start * ncomp, !len * ncomp) :: !runs;
        start := c;
        len := 1
      end)
    cells;
  if !len > 0 then runs := (!start * ncomp, !len * ncomp) :: !runs;
  List.rev !runs

(* Total cells crossing tile cuts per exchange round (sum of send-list
   lengths) — the per-step d2d payload in cells. *)
let interface_cells t =
  List.fold_left
    (fun acc (_, _, cells) -> acc + Array.length cells)
    0 (d2d_edges t)
