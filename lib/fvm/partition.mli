(** Mesh and index-space partitioning (METIS stand-in).

    [blocks] splits an index range into contiguous, balanced blocks (the
    paper's band-parallel strategy); [rcb]/[rcb_mesh] is recursive
    coordinate bisection over positions (cell-parallel strategy). *)

type t

val nparts : t -> int
(** Number of parts (ranks). *)

val owner : t -> int -> int
(** Owning rank of one item. *)

val nitems : t -> int
(** Number of partitioned items. *)

val cells_of_rank : t -> int -> int array
(** Item ids owned by a rank, ascending. *)

val counts : t -> int array
(** Items per rank, indexed by rank. *)

val imbalance : t -> float
(** max over ranks of items / (average items); 1.0 is perfect. *)

val blocks : nitems:int -> nparts:int -> t
(** Contiguous blocks whose sizes differ by at most one. Raises
    [Invalid_argument] if [nparts > nitems]. *)

val block_range : nitems:int -> nparts:int -> int -> int * int
(** [(offset, length)] of a rank's block, consistent with {!blocks}. *)

val rcb : coords:float array -> dim:int -> nitems:int -> nparts:int -> t
(** Recursive coordinate bisection over [nitems] points (positions in a
    flat [nitems*dim] array), splitting the widest extent at the weighted
    median. Handles non-power-of-two part counts. *)

val rcb_mesh : Mesh.t -> nparts:int -> t
(** {!rcb} over the mesh's cell centroids. *)

val edge_cut : Mesh.t -> t -> int
(** Interior faces whose two cells live on different ranks — the
    communication-volume proxy for mesh partitioning. *)

val rank_adjacency : Mesh.t -> t -> int list array
(** For each rank, the sorted ranks it shares cut faces with. *)
