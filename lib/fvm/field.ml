(* Cell-centred field storage.

   A field holds [ncomp] components per cell in a flat Bigarray (row:
   cell-major by default, i.e. value (cell, comp) lives at
   cell*ncomp + comp).  Multi-index variables such as I[d,b] flatten their
   index space into components; the component layout/order is owned by the
   caller (the DSL's loop-ordering configuration). *)

type layout =
  | Cell_major (* (cell, comp) -> cell*ncomp + comp : good for per-cell work *)
  | Comp_major (* (cell, comp) -> comp*ncells + cell : good for per-band sweeps *)

type t = {
  name : string;
  ncells : int;
  ncomp : int;
  layout : layout;
  data :
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
}

let create ?(layout = Cell_major) ~name ~ncells ~ncomp () =
  if ncells < 1 || ncomp < 1 then invalid_arg "Field.create";
  let data =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (ncells * ncomp)
  in
  Bigarray.Array1.fill data 0.;
  { name; ncells; ncomp; layout; data }

(* View an existing bigarray (e.g. simulated device memory) as a field. *)
let of_bigarray ?(layout = Cell_major) ~name ~ncells ~ncomp data =
  if Bigarray.Array1.dim data <> ncells * ncomp then
    invalid_arg "Field.of_bigarray: size mismatch";
  { name; ncells; ncomp; layout; data }

let name t = t.name
let ncells t = t.ncells
let ncomp t = t.ncomp
let size t = t.ncells * t.ncomp
let layout t = t.layout

let idx t cell comp =
  match t.layout with
  | Cell_major -> (cell * t.ncomp) + comp
  | Comp_major -> (comp * t.ncells) + cell

let get t cell comp = Bigarray.Array1.unsafe_get t.data (idx t cell comp)
let set t cell comp v = Bigarray.Array1.unsafe_set t.data (idx t cell comp) v

let get_checked t cell comp =
  if cell < 0 || cell >= t.ncells || comp < 0 || comp >= t.ncomp then
    invalid_arg
      (Printf.sprintf "Field.get %s: (%d,%d) out of range" t.name cell comp);
  get t cell comp

let fill t v = Bigarray.Array1.fill t.data v

let blit ~src ~dst =
  if size src <> size dst || src.layout <> dst.layout then
    invalid_arg "Field.blit: incompatible fields";
  Bigarray.Array1.blit src.data dst.data

(* Copy all components of the given cells from [src] to [dst] using
   contiguous Bigarray blits: the cell set is decomposed into maximal runs
   of consecutive ids, and each run maps to one contiguous slab per blit
   (cell-major: one slab of run*ncomp values; comp-major: one slab of run
   values per component). *)
let blit_cells ~src ~dst cells =
  if src.ncells <> dst.ncells || src.ncomp <> dst.ncomp
     || src.layout <> dst.layout
  then invalid_arg "Field.blit_cells: incompatible fields";
  let n = Array.length cells in
  let blit_range c0 len =
    match src.layout with
    | Cell_major ->
      let off = c0 * src.ncomp and sz = len * src.ncomp in
      Bigarray.Array1.blit
        (Bigarray.Array1.sub src.data off sz)
        (Bigarray.Array1.sub dst.data off sz)
    | Comp_major ->
      for comp = 0 to src.ncomp - 1 do
        let off = (comp * src.ncells) + c0 in
        Bigarray.Array1.blit
          (Bigarray.Array1.sub src.data off len)
          (Bigarray.Array1.sub dst.data off len)
      done
  in
  let i = ref 0 in
  while !i < n do
    let c0 = cells.(!i) in
    let j = ref (!i + 1) in
    while !j < n && cells.(!j) = c0 + (!j - !i) do
      incr j
    done;
    blit_range c0 (!j - !i);
    i := !j
  done

let copy t =
  let c = create ~layout:t.layout ~name:t.name ~ncells:t.ncells ~ncomp:t.ncomp () in
  Bigarray.Array1.blit t.data c.data;
  c

let init t f =
  for cell = 0 to t.ncells - 1 do
    for comp = 0 to t.ncomp - 1 do
      set t cell comp (f cell comp)
    done
  done

let iter t f =
  for cell = 0 to t.ncells - 1 do
    for comp = 0 to t.ncomp - 1 do
      f cell comp (get t cell comp)
    done
  done

let fold t f acc =
  let acc = ref acc in
  iter t (fun cell comp v -> acc := f !acc cell comp v);
  !acc

let max_abs t = fold t (fun m _ _ v -> Float.max m (Float.abs v)) 0.

let max_abs_diff a b =
  if size a <> size b then invalid_arg "Field.max_abs_diff";
  let m = ref 0. in
  for cell = 0 to a.ncells - 1 do
    for comp = 0 to a.ncomp - 1 do
      m := Float.max !m (Float.abs (get a cell comp -. get b cell comp))
    done
  done;
  !m

(* Sum of one component over all cells (used by reductions/tests). *)
let sum_comp t comp =
  let s = ref 0. in
  for cell = 0 to t.ncells - 1 do
    s := !s +. get t cell comp
  done;
  !s

(* Volume-weighted integral of a component over the mesh. *)
let integral t (m : Mesh.t) comp =
  if t.ncells <> m.Mesh.ncells then invalid_arg "Field.integral: mesh mismatch";
  let s = ref 0. in
  for cell = 0 to t.ncells - 1 do
    s := !s +. (get t cell comp *. m.Mesh.cell_volume.(cell))
  done;
  !s

(* Raw access for kernel compilation: the underlying bigarray plus the
   layout parameters needed to compute offsets without going through [t]. *)
let raw t = t.data

(* ------------------------------------------------------------------ *)
(* Runtime sanitizer support.                                          *)
(*                                                                     *)
(* When enabled, executors poison storage that must be refreshed before
   the next read (ghost regions after a commit, device buffers at
   allocation) with NaN.  A correct transfer schedule overwrites every
   poisoned value before anything reads it, so sanitized runs stay
   bit-identical; a missing exchange/upload lets NaN propagate into
   owned data, where the post-phase scans below count it.  Findings are
   kept in a process-local atomic (readable without the metrics
   registry) and mirrored to the [sanitize.poison_reads] counter.      *)
(* ------------------------------------------------------------------ *)

let sanitize_on = Atomic.make false
let set_sanitize b = Atomic.set sanitize_on b
let sanitize_enabled () = Atomic.get sanitize_on

let poison_value = Float.nan
let is_poison v = Float.is_nan v

let poison_found = Atomic.make 0
let m_poison_reads = Prt.Metrics.counter "sanitize.poison_reads"

let record_poison n =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add poison_found n);
    Prt.Metrics.add m_poison_reads n
  end

let poison_reads () = Atomic.get poison_found
let reset_poison () = Atomic.set poison_found 0

let poison_cells t cells =
  Array.iter
    (fun cell ->
      for comp = 0 to t.ncomp - 1 do
        set t cell comp poison_value
      done)
    cells

let count_poison_cells t cells =
  let n = ref 0 in
  Array.iter
    (fun cell ->
      for comp = 0 to t.ncomp - 1 do
        if is_poison (get t cell comp) then incr n
      done)
    cells;
  !n
