(** Structured mesh generation (the DSL's internal "simple generation
    utility").

    Default boundary-region numbering:
    - 2-D rectangle: 1 = bottom (y=0), 2 = right, 3 = top, 4 = left;
    - 3-D box: 1 = bottom (z=0), 2 = top, 3 = y=0, 4 = x=lx, 5 = y=ly,
      6 = x=0;
    - 1-D line: 1 = left end, 2 = right end. *)

val default_classify_2d :
  lx:float -> ly:float -> float array -> float array -> int
(** [default_classify_2d ~lx ~ly centre normal] assigns a boundary face
    its region id under the default rectangle numbering above. *)

val rectangle :
  ?classify:(float array -> float array -> int) ->
  nx:int -> ny:int -> lx:float -> ly:float -> unit -> Mesh.t
(** Uniform grid of quadrilateral cells on [0,lx] x [0,ly]. *)

val cell_at : nx:int -> int -> int -> int
(** [cell_at ~nx i j] is the cell id at structured position (i, j). *)

val triangulated_rectangle :
  ?classify:(float array -> float array -> int) ->
  nx:int -> ny:int -> lx:float -> ly:float -> unit -> Mesh.t
(** Each grid cell split into two triangles (exercises the general
    polygonal construction path). *)

val line : n:int -> length:float -> Mesh.t
(** Uniform 1-D mesh on [0,length] ({!Mesh.line}). *)

val box :
  nx:int -> ny:int -> nz:int -> lx:float -> ly:float -> lz:float -> unit ->
  Mesh.t
(** Uniform hexahedral box; supports the paper's coarse 3-D runs. *)

val cell_at_3d : nx:int -> ny:int -> int -> int -> int -> int
(** [cell_at_3d ~nx ~ny i j k] is the cell id at position (i, j, k). *)
