(* Halo (ghost) exchange plans for cell-based mesh partitioning.

   For a given partition, each rank owns a set of cells; flux computation on
   a cut face needs the neighbour cell's values, so those cells are ghosts
   to be received each step.  The plan records, per ordered rank pair
   (r -> r'), the owned cells r must send to r'.  By symmetry of face
   adjacency the receive list of r from r' is r''s send list to r. *)

type exchange = {
  from_rank : int;
  to_rank : int;
  cells : int array; (* cells owned by [from_rank], ghosts on [to_rank] *)
}

type t = {
  nranks : int;
  exchanges : exchange list;
  (* ghost cells each rank needs (union over incoming exchanges) *)
  ghosts : int array array;
}

let build (m : Mesh.t) (p : Partition.t) =
  let nranks = Partition.nparts p in
  (* (sender, receiver) -> cell set *)
  let tbl : (int * int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let add sender receiver cell =
    let key = sender, receiver in
    let set =
      match Hashtbl.find_opt tbl key with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 64 in
        Hashtbl.add tbl key s;
        s
    in
    Hashtbl.replace set cell ()
  in
  for f = 0 to m.Mesh.nfaces - 1 do
    let c1 = m.Mesh.face_cell1.(f) and c2 = m.Mesh.face_cell2.(f) in
    if c2 >= 0 then begin
      let r1 = Partition.owner p c1 and r2 = Partition.owner p c2 in
      if r1 <> r2 then begin
        add r1 r2 c1;
        add r2 r1 c2
      end
    end
  done;
  let exchanges =
    Hashtbl.fold
      (fun (s, r) set acc ->
        let cells =
          Hashtbl.fold (fun c () l -> c :: l) set [] |> List.sort compare
          |> Array.of_list
        in
        { from_rank = s; to_rank = r; cells } :: acc)
      tbl []
    |> List.sort (fun a b ->
           compare (a.from_rank, a.to_rank) (b.from_rank, b.to_rank))
  in
  let ghosts = Array.make nranks [] in
  List.iter
    (fun e -> ghosts.(e.to_rank) <- e.cells :: ghosts.(e.to_rank))
    exchanges;
  let ghosts =
    Array.map
      (fun lists ->
        List.concat_map Array.to_list lists |> List.sort_uniq compare
        |> Array.of_list)
      ghosts
  in
  { nranks; exchanges; ghosts }

(* Total number of (cell) values a rank sends per exchange round. *)
let send_count t r =
  List.fold_left
    (fun acc e -> if e.from_rank = r then acc + Array.length e.cells else acc)
    0 t.exchanges

let recv_count t r = Array.length t.ghosts.(r)

(* Bytes moved by rank [r] per exchange round for a field with [ncomp]
   components of [bytes_per] bytes each (send + receive). *)
let bytes_per_round t r ~ncomp ~bytes_per =
  (send_count t r + recv_count t r) * ncomp * bytes_per

let max_send_count t =
  let mx = ref 0 in
  for r = 0 to t.nranks - 1 do
    mx := max !mx (send_count t r)
  done;
  !mx

let neighbour_ranks t r =
  List.filter_map
    (fun e -> if e.from_rank = r then Some e.to_rank else None)
    t.exchanges
  |> List.sort_uniq compare

(* Metrics accounting for executed exchange rounds.  [halo.bytes] counts
   the MPI-equivalent traffic of the round (send + receive payload),
   whatever the in-process mechanism that performed it. *)
let m_rounds = Prt.Metrics.counter "halo.rounds"
let m_bytes = Prt.Metrics.counter "halo.bytes"

let account t r ~ncomp =
  if Prt.Metrics.enabled () then begin
    Prt.Metrics.incr m_rounds;
    Prt.Metrics.add m_bytes (bytes_per_round t r ~ncomp ~bytes_per:8)
  end
