(* Halo (ghost) exchange plans for cell-based mesh partitioning.

   For a given partition, each rank owns a set of cells; flux computation on
   a cut face needs the neighbour cell's values, so those cells are ghosts
   to be received each step.  The plan records, per ordered rank pair
   (r -> r'), the owned cells r must send to r'.  By symmetry of face
   adjacency the receive list of r from r' is r''s send list to r.

   Consumers address the plan rank-centrically ([sends_of] / [recvs_of]);
   the flat [exchanges] list is an internal representation detail.  The
   [start_exchange] / [finish_exchange] pair executes a round as
   nonblocking Spmd messages so callers can compute interior cells while
   ghost payloads are in flight. *)

type exchange = {
  from_rank : int;
  to_rank : int;
  cells : int array; (* cells owned by [from_rank], ghosts on [to_rank] *)
}

type t = {
  nranks : int;
  exchanges : exchange list;
  (* ghost cells each rank needs (union over incoming exchanges) *)
  ghosts : int array array;
  (* rank-centric views of [exchanges], in deterministic peer order *)
  sends : exchange list array;
  recvs : exchange list array;
}

(* Assemble the rank-centric views from a raw directed exchange list.
   Shared by [build] and by consumers (tests, the static Comm pass) that
   construct small synthetic plans without a mesh. *)
let of_exchanges ~nranks exchanges =
  List.iter
    (fun e ->
      if
        e.from_rank < 0 || e.from_rank >= nranks || e.to_rank < 0
        || e.to_rank >= nranks || e.from_rank = e.to_rank
      then invalid_arg "Halo.of_exchanges: bad rank pair")
    exchanges;
  let exchanges =
    List.sort
      (fun a b -> compare (a.from_rank, a.to_rank) (b.from_rank, b.to_rank))
      exchanges
  in
  let ghosts = Array.make nranks [] in
  List.iter
    (fun e -> ghosts.(e.to_rank) <- e.cells :: ghosts.(e.to_rank))
    exchanges;
  let ghosts =
    Array.map
      (fun lists ->
        List.concat_map Array.to_list lists |> List.sort_uniq compare
        |> Array.of_list)
      ghosts
  in
  let sends = Array.make nranks [] and recvs = Array.make nranks [] in
  List.iter
    (fun e ->
      sends.(e.from_rank) <- e :: sends.(e.from_rank);
      recvs.(e.to_rank) <- e :: recvs.(e.to_rank))
    exchanges;
  (* [exchanges] is sorted, so reversing the accumulated lists leaves each
     rank's sends ordered by peer and its recvs ordered by sender *)
  let sends = Array.map List.rev sends and recvs = Array.map List.rev recvs in
  { nranks; exchanges; ghosts; sends; recvs }

let build (m : Mesh.t) (p : Partition.t) =
  let nranks = Partition.nparts p in
  (* (sender, receiver) -> cell set *)
  let tbl : (int * int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let add sender receiver cell =
    let key = sender, receiver in
    let set =
      match Hashtbl.find_opt tbl key with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 64 in
        Hashtbl.add tbl key s;
        s
    in
    Hashtbl.replace set cell ()
  in
  for f = 0 to m.Mesh.nfaces - 1 do
    let c1 = m.Mesh.face_cell1.(f) and c2 = m.Mesh.face_cell2.(f) in
    if c2 >= 0 then begin
      let r1 = Partition.owner p c1 and r2 = Partition.owner p c2 in
      if r1 <> r2 then begin
        add r1 r2 c1;
        add r2 r1 c2
      end
    end
  done;
  let exchanges =
    Hashtbl.fold
      (fun (s, r) set acc ->
        let cells =
          Hashtbl.fold (fun c () l -> c :: l) set [] |> List.sort compare
          |> Array.of_list
        in
        { from_rank = s; to_rank = r; cells } :: acc)
      tbl []
  in
  of_exchanges ~nranks exchanges

let sends_of t r = t.sends.(r)
let recvs_of t r = t.recvs.(r)
let ghost_cells t r = t.ghosts.(r)

let channels t =
  List.map
    (fun e -> e.from_rank, e.to_rank, Array.length e.cells)
    t.exchanges

(* Total number of (cell) values a rank sends per exchange round. *)
let send_count t r =
  List.fold_left (fun acc e -> acc + Array.length e.cells) 0 (sends_of t r)

let recv_count t r = Array.length t.ghosts.(r)

(* Bytes moved by rank [r] per exchange round for a field with [ncomp]
   components of [bytes_per] bytes each (send + receive). *)
let bytes_per_round t r ~ncomp ~bytes_per =
  (send_count t r + recv_count t r) * ncomp * bytes_per

let max_send_count t =
  let mx = ref 0 in
  for r = 0 to t.nranks - 1 do
    mx := max !mx (send_count t r)
  done;
  !mx

let neighbour_ranks t r =
  List.map (fun e -> e.to_rank) (sends_of t r) |> List.sort_uniq compare

(* A rank's frontier: owned cells some neighbour needs as ghosts, i.e. the
   cells on this side of a cut face.  These are exactly the owned cells
   whose flux stencil reads a ghost, so sweeping everything else (the
   interior) needs no fresh halo data. *)
let frontier_cells t r =
  List.concat_map (fun e -> Array.to_list e.cells) (sends_of t r)
  |> List.sort_uniq compare |> Array.of_list

(* Partition [owned] (preserving its order) into cells not on the frontier
   and cells on it. *)
let split_cells t r ~owned =
  let frontier = frontier_cells t r in
  let on_frontier = Hashtbl.create (Array.length frontier) in
  Array.iter (fun c -> Hashtbl.replace on_frontier c ()) frontier;
  let interior = ref [] and front = ref [] in
  Array.iter
    (fun c ->
      if Hashtbl.mem on_frontier c then front := c :: !front
      else interior := c :: !interior)
    owned;
  ( Array.of_list (List.rev !interior),
    Array.of_list (List.rev !front) )

(* Metrics accounting for executed exchange rounds.  [halo.bytes] counts
   the MPI-equivalent traffic of the round (send + receive payload),
   whatever the in-process mechanism that performed it. *)
let m_rounds = Prt.Metrics.counter "halo.rounds"
let m_bytes = Prt.Metrics.counter "halo.bytes"

let account t r ~ncomp =
  if Prt.Metrics.enabled () then begin
    Prt.Metrics.incr m_rounds;
    Prt.Metrics.add m_bytes (bytes_per_round t r ~ncomp ~bytes_per:8)
  end

(* One in-flight exchange round of one rank: packed send payloads have
   been isent, receive buffers irecved.  [finish_exchange] completes the
   requests and scatters the ghost payloads into the field. *)
type session = {
  ses_plan : t;
  ses_rank : int;
  ses_ncomp : int;
  ses_sends : Prt.Spmd.request list;
  ses_recvs : (exchange * float array * Prt.Spmd.request) list;
}

let pack field cells ncomp =
  let n = Array.length cells in
  let buf = Array.make (n * ncomp) 0. in
  for i = 0 to n - 1 do
    for c = 0 to ncomp - 1 do
      buf.((i * ncomp) + c) <- Field.get field cells.(i) c
    done
  done;
  buf

let unpack field cells ncomp buf =
  for i = 0 to Array.length cells - 1 do
    for c = 0 to ncomp - 1 do
      Field.set field cells.(i) c buf.((i * ncomp) + c)
    done
  done

let start_exchange ?(tag = 0) t ~rank field =
  let ncomp = Field.ncomp field in
  (* post all sends, then all recvs, in the plan's deterministic peer
     order; FIFO matching per (src, dst, tag) keeps successive rounds with
     the same tag correctly paired *)
  let sends =
    List.map
      (fun e ->
        Prt.Spmd.isend ~dst:e.to_rank ~tag (pack field e.cells ncomp))
      (sends_of t rank)
  in
  let recvs =
    List.map
      (fun e ->
        let buf = Array.make (Array.length e.cells * ncomp) 0. in
        e, buf, Prt.Spmd.irecv ~src:e.from_rank ~tag buf)
      (recvs_of t rank)
  in
  { ses_plan = t; ses_rank = rank; ses_ncomp = ncomp;
    ses_sends = sends; ses_recvs = recvs }

let finish_exchange ses field =
  Prt.Spmd.waitall ses.ses_sends;
  List.iter
    (fun (e, buf, req) ->
      Prt.Spmd.wait req;
      unpack field e.cells ses.ses_ncomp buf)
    ses.ses_recvs;
  account ses.ses_plan ses.ses_rank ~ncomp:ses.ses_ncomp
