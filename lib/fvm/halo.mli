(** Halo (ghost-cell) exchange plans for mesh-partitioned runs.

    For each ordered rank pair, the plan lists the cells the sender owns
    that the receiver needs as ghosts (cells adjacent across cut faces). *)

type exchange = {
  from_rank : int;  (** sending rank *)
  to_rank : int;  (** receiving rank *)
  cells : int array; (** owned by [from_rank], ghosts on [to_rank] *)
}
(** One directed send list of a rank pair. *)

type t = {
  nranks : int;  (** ranks in the partition *)
  exchanges : exchange list;  (** all directed send lists, sorted *)
  ghosts : int array array; (** ghost cells needed by each rank *)
}
(** The full exchange plan of one partition. *)

val build : Mesh.t -> Partition.t -> t
(** Derive the plan from face adjacency across partition cuts. *)

val send_count : t -> int -> int
(** Cells rank [r] sends per exchange round. *)

val recv_count : t -> int -> int
(** Ghost cells rank [r] receives per exchange round. *)

val bytes_per_round : t -> int -> ncomp:int -> bytes_per:int -> int
(** Bytes moved by a rank per round (send + receive) for a field with
    [ncomp] components of [bytes_per] bytes. *)

val max_send_count : t -> int
(** Largest per-rank send count — the per-round critical payload. *)

val neighbour_ranks : t -> int -> int list
(** Ranks that rank [r] sends to (sorted, without duplicates). *)

val account : t -> int -> ncomp:int -> unit
(** [account t r ~ncomp] records one executed exchange round of rank [r]
    into the [halo.rounds] / [halo.bytes] metrics ([bytes_per_round] with
    8-byte values); no-op unless {!Prt.Metrics.enabled}. *)
