(** Halo (ghost-cell) exchange plans for mesh-partitioned runs.

    For each ordered rank pair, the plan lists the cells the sender owns
    that the receiver needs as ghosts (cells adjacent across cut faces).
    Consumers address the plan through the rank-centric accessors
    ({!sends_of}, {!recvs_of}, {!frontier_cells}); an exchange round can
    be executed either by copying along {!recvs_of} lists, or
    asynchronously via {!start_exchange} / {!finish_exchange} so interior
    computation overlaps the messages. *)

type exchange = {
  from_rank : int;  (** sending rank *)
  to_rank : int;  (** receiving rank *)
  cells : int array; (** owned by [from_rank], ghosts on [to_rank] *)
}
(** One directed send list of a rank pair. *)

type t = {
  nranks : int;  (** ranks in the partition *)
  exchanges : exchange list;
      (** internal: the flat sorted list backing the rank-centric views.
          Consumers should use {!sends_of} / {!recvs_of} instead of
          scanning this field. *)
  ghosts : int array array; (** ghost cells needed by each rank *)
  sends : exchange list array;
      (** internal: per-rank send lists; use {!sends_of}. *)
  recvs : exchange list array;
      (** internal: per-rank receive lists; use {!recvs_of}. *)
}
(** The full exchange plan of one partition. *)

val build : Mesh.t -> Partition.t -> t
(** Derive the plan from face adjacency across partition cuts. *)

val of_exchanges : nranks:int -> exchange list -> t
(** Assemble a plan from a raw directed send list, deriving the ghost
    sets and the rank-centric views.  Used by {!build} internally, and
    by consumers (tests, the static Comm analysis) that need small
    synthetic plans without a mesh.  Raises [Invalid_argument] on a
    rank outside [0, nranks) or a self-exchange. *)

val ghost_cells : t -> int -> int array
(** The ghost cells rank [r] needs each round (sorted, unique): the
    union of its incoming exchanges' cell lists.  A complete exchange
    round must cover exactly this set. *)

val channels : t -> (int * int * int) list
(** The directed communication channels of the plan as
    [(from_rank, to_rank, ncells)] triples, sorted by rank pair — the
    read-only view the static Comm analysis elaborates message
    schedules from. *)

val sends_of : t -> int -> exchange list
(** [sends_of t r] lists the exchanges rank [r] sends, ordered by
    destination rank. *)

val recvs_of : t -> int -> exchange list
(** [recvs_of t r] lists the exchanges rank [r] receives (each entry's
    [cells] are ghosts on [r] owned by [from_rank]), ordered by source
    rank. *)

val send_count : t -> int -> int
(** Cells rank [r] sends per exchange round. *)

val recv_count : t -> int -> int
(** Ghost cells rank [r] receives per exchange round. *)

val bytes_per_round : t -> int -> ncomp:int -> bytes_per:int -> int
(** Bytes moved by a rank per round (send + receive) for a field with
    [ncomp] components of [bytes_per] bytes. *)

val max_send_count : t -> int
(** Largest per-rank send count — the per-round critical payload. *)

val neighbour_ranks : t -> int -> int list
(** Ranks that rank [r] sends to (sorted, without duplicates). *)

val frontier_cells : t -> int -> int array
(** [frontier_cells t r]: the owned cells of [r] that some neighbour
    needs as ghosts (sorted, unique).  Exactly the owned cells whose flux
    stencil reads a ghost, so the complement — the interior — can be
    swept before fresh halo data arrives. *)

val split_cells : t -> int -> owned:int array -> int array * int array
(** [split_cells t r ~owned] partitions [owned] (preserving its order)
    into [(interior, frontier)]: cells absent from / present in
    {!frontier_cells}. *)

val account : t -> int -> ncomp:int -> unit
(** [account t r ~ncomp] records one executed exchange round of rank [r]
    into the [halo.rounds] / [halo.bytes] metrics ([bytes_per_round] with
    8-byte values); no-op unless {!Prt.Metrics.enabled}. *)

type session
(** An in-flight exchange round of one rank: send payloads posted with
    {!Prt.Spmd.isend}, ghost buffers posted with {!Prt.Spmd.irecv}. *)

val start_exchange : ?tag:int -> t -> rank:int -> Field.t -> session
(** [start_exchange t ~rank field] packs rank [rank]'s send lists from
    [field] and posts all its sends and receives as nonblocking Spmd
    messages ([tag] defaults to 0).  Returns immediately; the caller may
    update any non-ghost cell of [field] (e.g. sweep the interior) while
    the messages are in flight.  Must be called from inside
    {!Prt.Spmd.run}. *)

val finish_exchange : session -> Field.t -> unit
(** [finish_exchange ses field] waits for every request of the session,
    scatters the received payloads into the ghost cells of [field], and
    {!account}s the round.  Successive rounds with the same tag are safe:
    matching is FIFO per rank pair and tag. *)
