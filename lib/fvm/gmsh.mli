(** Gmsh MSH 2.2 ASCII reader/writer (the subset the DSL needs).

    Supported elements: 2-node lines (boundary region tags via the first
    physical tag), 3-node triangles, 4-node quadrangles; point elements are
    ignored. Clockwise cells are reoriented. Boundary faces without a line
    element default to region 1. *)

exception Format_error of string

val read_string : string -> Mesh.t
(** Parse MSH 2.2 ASCII content; raises {!Format_error} on bad input. *)

val read_file : string -> Mesh.t
(** {!read_string} over a file's contents. *)

val write_string : Mesh.t -> string
(** 2-D meshes only; emits nodes, one tagged line element per boundary
    face, and the surface elements. Raises [Invalid_argument] on non-2-D
    input or cells that are neither triangles nor quadrangles. *)

val write_file : string -> Mesh.t -> unit
(** {!write_string} to a file. *)
