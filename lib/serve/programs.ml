(* Program cache for the serve scheduler: content-hash the naive lowered
   program and memoize the optimized IR plus the analysis verdict, so a
   stream of compatible requests pays the optimize-and-verify pipeline
   once.  The emitted program text is value-independent (coefficients are
   referenced by name), so e.g. a temperature sweep collapses onto one
   entry; anything that changes the program shape (dims, steps, backend,
   opt level, evaluator) is folded in via the request's batch key. *)

let m_hits = Prt.Metrics.counter "serve.program_hits"
let m_misses = Prt.Metrics.counter "serve.program_misses"

type entry = {
  key : string;
  source : string;
  ir : Finch.Ir.node;
  stats : Finch_opt.Opt.stats;
  rejected : int;
  analysis : Finch_analysis.Driver.report;
}

let cache : (string, entry) Hashtbl.t = Hashtbl.create 16

(* The naive (pre-optimizer) program of a configured problem: the same
   tree the analysis gate and the optimizer start from. *)
let naive_source ?post_io (p : Finch.Problem.t) =
  let ir =
    match p.Finch.Problem.target with
    | Finch.Config.Gpu _ ->
      let plan = Finch.Dataflow.plan_for_problem ?post_io p in
      Finch.Ir.build_gpu p ~transfers:(Finch.Dataflow.ir_transfers plan)
    | Finch.Config.Cpu _ -> Finch.Ir.build_cpu p
    | Finch.Config.Auto ->
      invalid_arg "Programs: unresolved auto target (tune before lookup)"
  in
  Finch.Emit_source.to_julia ir

let key_of ?post_io (req : Finch.Solve_request.t) (prep : Finch.prepared) =
  let src = naive_source ?post_io prep.Finch.pr_problem in
  Digest.to_hex
    (Digest.string (src ^ "|" ^ Finch.Solve_request.batch_key req))

let build_entry ?post_io ~key ~source (prep : Finch.prepared) =
  let p = prep.Finch.pr_problem in
  let res = Finch_opt.Opt.optimize_problem ?post_io p in
  let report = Finch_analysis.Driver.check_problem ?post_io p in
  { key;
    source;
    ir = res.Finch_opt.Opt.ir;
    stats = res.Finch_opt.Opt.stats;
    rejected = List.length res.Finch_opt.Opt.rejected;
    analysis = report }

let lookup ?post_io (req : Finch.Solve_request.t) (prep : Finch.prepared) =
  let source = naive_source ?post_io prep.Finch.pr_problem in
  let key =
    Digest.to_hex
      (Digest.string (source ^ "|" ^ Finch.Solve_request.batch_key req))
  in
  match Hashtbl.find_opt cache key with
  | Some e ->
    Prt.Metrics.incr m_hits;
    e
  | None ->
    Prt.Metrics.incr m_misses;
    let e = build_entry ?post_io ~key ~source prep in
    Hashtbl.add cache key e;
    e

let check_uncached ?post_io (req : Finch.Solve_request.t)
    (prep : Finch.prepared) =
  let source = naive_source ?post_io prep.Finch.pr_problem in
  let key =
    Digest.to_hex
      (Digest.string (source ^ "|" ^ Finch.Solve_request.batch_key req))
  in
  build_entry ?post_io ~key ~source prep

let size () = Hashtbl.length cache
let codegen_programs () = Finch_codegen.Codegen.memo_size ()
let clear () = Hashtbl.reset cache
