(** Admission, queueing and batched dispatch of solve requests.

    Requests are submitted into a bounded FIFO queue and processed by
    {!drain}: each round pops the head, gathers every queued request
    inside the next [max_batch]-sized window that shares its program
    hash (see {!Programs}), and executes the group — through the batched
    GPU engine ({!Batch}) when the group is a co-batchable GPU set of
    two or more, solo otherwise.  Admission rejects on a full queue or
    an invalid/unknown request; a request whose deadline has passed when
    it is picked for execution times out without running; the analysis
    gate rejects requests whose verified program carries errors.

    Requests with [backend = auto] are planned per request by the
    autotuner ({!Finch_tune.Tune.resolve}, model-only so the choice is
    deterministic) when first inspected; the resolved request drives
    preparation and the program hash, so auto requests landing on the
    same plan share {!Programs} entries and co-batch with hand-picked
    ones, and the plan's chunk may narrow the head's coalescing window
    below [max_batch].

    Observability: every request gets a trace id and a span on the
    ["serve"] track covering submit-to-done; the queue depth is the
    [serve.queue_depth] gauge; submit-to-done latency lands in the
    [serve.latency_ns] histogram and group sizes in [serve.batch_size];
    counters [serve.requests] / [serve.completed] / [serve.rejected] /
    [serve.timed_out] / [serve.batches] track totals. *)

type outcome =
  | Completed of Finch.Solve_result.t
  | Rejected of string  (** refused before running; the reason *)
  | Timed_out of float
    (** deadline had passed when picked; seconds it was exceeded by *)

type ticket
(** Handle for one submitted request. *)

type t
(** A scheduler instance.  Schedulers are single-threaded by design —
    [submit]/[drain] from one thread; the solver itself parallelizes
    underneath per the request's backend. *)

val create :
  ?max_queue:int ->
  ?max_batch:int ->
  ?default_deadline_s:float ->
  ?use_cache:bool ->
  ?batching:bool ->
  ?post_io:Finch.Dataflow.callback_io ->
  ?now:(unit -> float) ->
  unit ->
  t
(** [max_queue] bounds admission (default 64); [max_batch] bounds the
    coalescing window (default 8); [default_deadline_s] applies to
    requests carrying no deadline (default none); [use_cache] consults
    {!Programs} (default true — off, every request pays the
    optimize-and-verify pipeline, the unbatched baseline); [batching]
    enables batched GPU execution (default true); [now] injects a clock
    for deadline tests (default [Unix.gettimeofday]). *)

val submit : t -> Finch.Solve_request.t -> ticket
(** Enqueue a request.  A full queue or a failed
    [Finch.Solve_request.validate] resolves the ticket immediately as
    [Rejected]; otherwise the ticket resolves during a later {!drain}. *)

val drain : t -> unit
(** Process the queue to empty, resolving every pending ticket. *)

val outcome : ticket -> outcome option
(** The ticket's resolution, or [None] while still queued. *)

val trace_id : ticket -> string
(** The trace id assigned at submission (also the span name on the
    ["serve"] track). *)

val queue_depth : t -> int
(** Requests currently queued. *)

val run_all : t -> Finch.Solve_request.t list -> outcome list
(** Submit every request, drain, and return the outcomes in submission
    order. *)
