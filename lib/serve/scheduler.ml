(* Admission, queueing and batched dispatch: a bounded FIFO of solve
   requests drained in rounds.  Each round pops the head, coalesces
   every queued request inside the next max_batch window that shares its
   program hash, and runs the group — batched on the GPU engine when
   legal, solo otherwise.  Deadlines are checked when a request is
   picked for execution; admission rejects on a full queue or an invalid
   request; the analysis gate rejects programs with errors. *)

let m_requests = Prt.Metrics.counter "serve.requests"
let m_completed = Prt.Metrics.counter "serve.completed"
let m_rejected = Prt.Metrics.counter "serve.rejected"
let m_timed_out = Prt.Metrics.counter "serve.timed_out"
let m_batches = Prt.Metrics.counter "serve.batches"
let m_batch_errors = Prt.Metrics.counter "serve.batch_analysis_errors"
let m_batch_warnings = Prt.Metrics.counter "serve.batch_analysis_warnings"
let m_batch_fallbacks = Prt.Metrics.counter "serve.batch_fallbacks"
let g_queue_depth = Prt.Metrics.gauge "serve.queue_depth"
let h_latency = Prt.Metrics.histogram "serve.latency_ns"
let h_batch_size = Prt.Metrics.histogram "serve.batch_size"

type outcome =
  | Completed of Finch.Solve_result.t
  | Rejected of string
  | Timed_out of float

type ticket = {
  tk_req : Finch.Solve_request.t;
  tk_trace : string;
  tk_submitted : float;
  mutable tk_outcome : outcome option;
}

(* one queued request; the tuner resolution, prepared problem and
   program entry are memoized across drain rounds so a request inspected
   for co-batching but left queued is not re-planned or re-lowered when
   it reaches the head *)
type item = {
  it_ticket : ticket;
  mutable it_req : Finch.Solve_request.t;
    (* tk_req with backend=auto replaced by the tuner's plan; equal to
       tk_req for concrete requests *)
  mutable it_chunk : int option;
    (* the plan's requested co-batching window, when the tuner chose it *)
  mutable it_prep : (Finch.prepared * Programs.entry, Finch.Solve_error.t) result option;
}

type t = {
  max_queue : int;
  max_batch : int;
  default_deadline_s : float option;
  use_cache : bool;
  batching : bool;
  post_io : Finch.Dataflow.callback_io option;
  now : unit -> float;
  mutable queue : item list;  (* head first; bounded by max_queue *)
}

let create ?(max_queue = 64) ?(max_batch = 8) ?default_deadline_s
    ?(use_cache = true) ?(batching = true) ?post_io
    ?(now = Unix.gettimeofday) () =
  { max_queue; max_batch; default_deadline_s; use_cache; batching; post_io;
    now; queue = [] }

let queue_depth t = List.length t.queue
let set_depth t = Prt.Metrics.set g_queue_depth (float_of_int (queue_depth t))

let resolve t (tk : ticket) outcome =
  tk.tk_outcome <- Some outcome;
  (match outcome with
   | Completed _ ->
     Prt.Metrics.incr m_completed;
     Prt.Metrics.observe h_latency ((t.now () -. tk.tk_submitted) *. 1e9)
   | Rejected _ -> Prt.Metrics.incr m_rejected
   | Timed_out _ -> Prt.Metrics.incr m_timed_out)

let submit t req =
  Prt.Metrics.incr m_requests;
  let tk =
    { tk_req = req;
      tk_trace = Finch.fresh_trace_id ();
      tk_submitted = t.now ();
      tk_outcome = None }
  in
  (match Finch.Solve_request.validate req with
   | Error m -> resolve t tk (Rejected ("invalid request: " ^ m))
   | Ok () ->
     if List.length t.queue >= t.max_queue then
       resolve t tk
         (Rejected (Printf.sprintf "queue full (%d)" t.max_queue))
     else begin
       t.queue <-
         t.queue
         @ [ { it_ticket = tk; it_req = req; it_chunk = None; it_prep = None } ];
       set_depth t
     end);
  tk

let outcome (tk : ticket) = tk.tk_outcome
let trace_id (tk : ticket) = tk.tk_trace

(* tuner resolution + prepare + program lookup, memoized on the item.
   A backend=auto request is planned here (model-only, so the decision
   is deterministic and amortized by the tuner's two-level cache); the
   resolved request drives preparation and the program hash, so auto
   requests that land on the same plan co-batch like hand-picked
   ones. *)
let prep_of t (it : item) =
  match it.it_prep with
  | Some r -> r
  | None ->
    (* table reuse rides with the program cache: off, scenario builds
       stay cold per request (the historical per-invocation pipeline) *)
    Finch.set_scenario_cache t.use_cache;
    let r =
      match Finch_tune.Tune.resolve ?post_io:t.post_io it.it_ticket.tk_req with
      | Error m ->
        Error (Finch.Solve_error.Invalid_request ("tuner: " ^ m))
      | Ok (req, decision) ->
        it.it_req <- req;
        (match decision with
         | Some d ->
           it.it_chunk <- Some d.Finch_tune.Tune.dc_plan.Finch_tune.Plan.chunk
         | None -> ());
        (match Finch.prepare req with
         | Error e -> Error e
         | Ok prep ->
           let entry =
             if t.use_cache then Programs.lookup ?post_io:t.post_io req prep
             else Programs.check_uncached ?post_io:t.post_io req prep
           in
           Ok (prep, entry))
    in
    it.it_prep <- Some r;
    r

let deadline_of t (req : Finch.Solve_request.t) =
  match req.Finch.Solve_request.deadline_s with
  | Some d -> Some d
  | None -> t.default_deadline_s

(* true when the request's deadline had already passed at pick time *)
let expired t (it : item) =
  match deadline_of t it.it_ticket.tk_req with
  | None -> None
  | Some d ->
    let waited = t.now () -. it.it_ticket.tk_submitted in
    if waited > d then Some (waited -. d) else None

let solve_solo t (it : item) (prep : Finch.prepared) =
  match
    Finch.solve_prepared ~trace_id:it.it_ticket.tk_trace it.it_req prep
  with
  | Ok res -> resolve t it.it_ticket (Completed res)
  | Error e -> resolve t it.it_ticket (Rejected (Finch.Solve_error.to_string e))

let solve_batched t (group : (item * Finch.prepared) list) =
  let items = Array.of_list (List.map fst group) in
  let preps = Array.of_list (List.map snd group) in
  let problems = Array.map (fun p -> p.Finch.pr_problem) preps in
  Prt.Metrics.incr m_batches;
  Prt.Metrics.observe h_batch_size (float_of_int (Array.length items));
  let before = Prt.Metrics.counter_values () in
  let t0 = t.now () in
  match Batch.run ?post_io:t.post_io problems with
  | outcomes ->
    let t1 = t.now () in
    let delta = Finch.metrics_delta before (Prt.Metrics.counter_values ()) in
    Array.iteri
      (fun i (oc : Finch.Solve.outcome) ->
        let it = items.(i) in
        let prep = preps.(i) in
        let label =
          match it.it_ticket.tk_req.Finch.Solve_request.label with
          | Some l -> Printf.sprintf "%s (%s)" it.it_ticket.tk_trace l
          | None -> it.it_ticket.tk_trace
        in
        Prt.Trace.complete (Prt.Trace.track "serve") ~cat:"serve" label ~t0
          ~t1;
        let solution =
          match List.assoc_opt prep.Finch.pr_solution oc.Finch.Solve.fields with
          | Some f -> f
          | None -> oc.Finch.Solve.u
        in
        resolve t it.it_ticket
          (Completed
             { Finch.Solve_result.solution;
               solution_name = prep.Finch.pr_solution;
               breakdown = oc.Finch.Solve.breakdown;
               metrics = delta;  (* batch-wide: device work is shared *)
               trace_id = it.it_ticket.tk_trace;
               wall_s = t1 -. t0;
               outcome = oc }))
      outcomes
  | exception e ->
    Array.iter
      (fun it ->
        resolve t it.it_ticket
          (Rejected ("engine failure: " ^ Printexc.to_string e)))
      items

(* one drain round: pop the head; gather co-batchable followers from the
   next max_batch-sized window; execute the group *)
let round t =
  match t.queue with
  | [] -> ()
  | head :: rest ->
    t.queue <- rest;
    (match expired t head with
     | Some by -> resolve t head.it_ticket (Timed_out by)
     | None ->
       (match prep_of t head with
        | Error e ->
          resolve t head.it_ticket
            (Rejected (Finch.Solve_error.to_string e))
        | Ok (prep, entry) ->
          if entry.Programs.analysis.Finch_analysis.Driver.errors > 0 then
            resolve t head.it_ticket
              (Rejected
                 (Printf.sprintf "analysis found %d error(s)"
                    entry.Programs.analysis.Finch_analysis.Driver.errors))
          else begin
            (* coalescing window: same program hash, FIFO order kept for
               everything left behind.  A tuner-chosen plan may narrow
               the window below max_batch via its chunk (CPU plans ask
               for 1 — no point scanning for co-batchable followers). *)
            let window =
              match head.it_chunk with
              | Some c -> min t.max_batch c
              | None -> t.max_batch
            in
            let group = ref [ head, prep ] in
            if t.batching && window > 1 then begin
              let kept = ref [] in
              let scanned = ref 0 in
              List.iter
                (fun it ->
                  if
                    List.length !group < window
                    && !scanned < window - 1
                    && expired t it = None
                  then begin
                    incr scanned;
                    match prep_of t it with
                    | Ok (p, e)
                      when e.Programs.key = entry.Programs.key ->
                      group := (it, p) :: !group
                    | _ -> kept := it :: !kept
                  end
                  else kept := it :: !kept)
                t.queue;
              t.queue <- List.rev !kept
            end;
            let group = List.rev !group in
            set_depth t;
            (match group with
             | [ (it, prep) ] -> solve_solo t it prep
             | _ ->
               let problems =
                 Array.of_list
                   (List.map (fun (_, p) -> p.Finch.pr_problem) group)
               in
               if Batch.compatible problems = Ok () then begin
                 (* gate the batching rewrite itself: lint the
                    request-batched IR, not only the per-request
                    program (which already passed above) *)
                 let rep = Batch.check ?post_io:t.post_io problems in
                 Prt.Metrics.add m_batch_errors
                   rep.Finch_analysis.Driver.errors;
                 Prt.Metrics.add m_batch_warnings
                   rep.Finch_analysis.Driver.warnings;
                 if rep.Finch_analysis.Driver.errors > 0 then begin
                   (* the solo programs are vetted; only the batched
                      schedule is unsafe — fall back to solo runs *)
                   Prt.Metrics.incr m_batch_fallbacks;
                   List.iter (fun (it, p) -> solve_solo t it p) group
                 end
                 else solve_batched t group
               end
               else
                 (* compatible hashes but not a batchable backend (CPU
                    targets, multi-device): run solo, still sharing the
                    program cache *)
                 List.iter (fun (it, p) -> solve_solo t it p) group)
          end));
    set_depth t

let drain t =
  while t.queue <> [] do
    round t
  done

let run_all t reqs =
  let tickets = List.map (submit t) reqs in
  drain t;
  List.map
    (fun tk ->
      match tk.tk_outcome with
      | Some o -> o
      | None -> Rejected "scheduler did not resolve the ticket")
    tickets
