(** Batched multi-request GPU execution: the O2 band-batching idea with
    one more axis.

    [run] takes N configured problems that share one program shape (same
    mesh and index dimensions, step count, optimizer level, evaluator,
    single-device synchronous GPU target) and executes them against one
    simulated device with a request-major thread space: each launch
    covers [requests x cells x chunk] degrees of freedom, where the
    chunk is the owned component slice the solo executor would use (all
    components in one batched launch at O1/O2, one slice per band at
    O0).  Every thread performs exactly the computation the solo run's
    thread performs, against that request's own device buffers, so
    results are bit-identical to solving each request alone — the
    property the serve tests assert across scenario x opt level.

    Host phases (boundary contributions, combine, post-step callback,
    per-step uploads) run per request on that request's own state and
    are charged to its own breakdown; modelled device time is shared and
    charged in equal shares.  One [serve.batched_launches] counter tick
    per launch. *)

val compatible : Finch.Problem.t array -> (unit, string) result
(** Whether the problems may legally share batched launches: at least
    one, all single-device synchronous GPU with equal spec name, step
    count, optimizer level, evaluator and unknown shape.  [Error]
    explains the first violation. *)

val batched_ir :
  ?post_io:Finch.Dataflow.callback_io ->
  Finch.Problem.t array ->
  Finch.Ir.node
(** The IR image of the schedule {!run} executes: the shared solo GPU
    program with kernels kept as single batched launches and every
    host phase / transfer wrapped in a per-request [Index "request"]
    loop.  @raise Invalid_argument when {!compatible} fails. *)

val check :
  ?post_io:Finch.Dataflow.callback_io ->
  Finch.Problem.t array ->
  Finch_analysis.Driver.report
(** Run the full static analysis (including the data-movement plan
    cross-check) over {!batched_ir}: the serve layer's gate on the
    batching rewrite itself, not only the per-request program.
    @raise Invalid_argument when {!compatible} fails. *)

val run :
  ?post_io:Finch.Dataflow.callback_io ->
  Finch.Problem.t array ->
  Finch.Solve.outcome array
(** Execute the batch; the outcome array is index-aligned with the
    input.  @raise Invalid_argument when {!compatible} fails. *)
