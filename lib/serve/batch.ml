(* Batched multi-request GPU execution: Target_gpu.run_single's
   synchronous schedule generalized with a request axis.  N compatible
   problems share one simulated device and one stream; every kernel
   launch covers requests x cells x chunk threads, where the chunk is
   the component slice the solo executor would launch (the whole
   component range in one batched launch at O1/O2 — the
   Opt.batch_band_kernels shape — or one per-band slice at O0).

   Bit-identity with solo execution holds by construction: each thread
   runs the exact per-DOF update of the solo kernel against its own
   request's device buffers, requests touch disjoint memory, and all
   host phases (boundary, combine, post-step) run per request on that
   request's own state in submission order. *)

let m_batched_launches = Prt.Metrics.counter "serve.batched_launches"
let m_steps = Prt.Metrics.counter "solve.steps"

let compatible (ps : Finch.Problem.t array) =
  let open Finch in
  if Array.length ps = 0 then Error "empty batch"
  else begin
    let p0 = ps.(0) in
    let describe (p : Problem.t) =
      match p.Problem.target with
      | Config.Gpu { spec; devices = 1; ranks = 1 } ->
        Ok spec.Gpu_sim.Spec.name
      | Config.Gpu _ -> Error "multi-device GPU targets cannot be batched"
      | Config.Cpu _ -> Error "CPU targets cannot share batched launches"
      | Config.Auto -> Error "unresolved auto target cannot be batched"
    in
    let rec go i =
      if i >= Array.length ps then Ok ()
      else
        let p = ps.(i) in
        match describe p0, describe p with
        | Error e, _ | _, Error e -> Error e
        | Ok n0, Ok n when n0 <> n ->
          Error (Printf.sprintf "device specs differ (%s vs %s)" n0 n)
        | Ok _, Ok _ ->
          if p.Problem.overlap || p0.Problem.overlap then
            Error "overlapped transfers cannot be batched"
          else if p.Problem.nsteps <> p0.Problem.nsteps then
            Error "step counts differ"
          else if p.Problem.opt_level <> p0.Problem.opt_level then
            Error "optimizer levels differ"
          else if p.Problem.eval_mode <> p0.Problem.eval_mode then
            Error "evaluator modes differ"
          else go (i + 1)
    in
    go 1
  end

(* The IR image of the batched schedule [run] executes, derived from the
   shared solo program by the same transformation the executor applies:
   kernels keep one (request-major) batched launch, while every host
   phase and transfer — boundary, combine, callback, uploads, downloads
   — runs once per request inside an [Index "request"] loop.  Linting
   this tree (instead of only the per-request program) is what lets the
   analysis gate vet the batching rewrite itself. *)
let batched_ir ?post_io (ps : Finch.Problem.t array) =
  let open Finch in
  (match compatible ps with
   | Ok () -> ()
   | Error e -> invalid_arg ("Batch.batched_ir: " ^ e));
  let p0 = ps.(0) in
  let plan = Dataflow.plan_for_problem ?post_io p0 in
  let solo = Ir.build_gpu p0 ~transfers:(Dataflow.ir_transfers plan) in
  let per_request n =
    Ir.Loop { range = Ir.Index "request"; body = [ n ]; parallel = false }
  in
  let rec batchify (n : Ir.node) =
    match n with
    | Ir.Seq ns -> Ir.Seq (List.map batchify ns)
    | Ir.Loop l -> Ir.Loop { l with body = List.map batchify l.body }
    | Ir.Kernel k -> Ir.Kernel { k with kname = k.kname ^ "_batch" }
    | (Ir.Boundary_cpu _ | Ir.Callback _ | Ir.Swap_buffers _ | Ir.H2d _
      | Ir.D2h _) as n -> per_request n
    | n -> n
  in
  batchify solo

let check ?post_io (ps : Finch.Problem.t array) =
  let open Finch in
  let p0 = ps.(0) in
  let ctx = Finch_analysis.Ctx.of_problem ?post_io p0 in
  let plan = Dataflow.plan_for_problem ?post_io p0 in
  let comm =
    Option.map
      (fun pl -> Finch_analysis.Comm.Elaborate pl)
      (Finch_analysis.Comm.plan_of_problem p0)
  in
  Finch_analysis.Driver.check_ir ~plan ?comm ctx (batched_ir ?post_io ps)

let run ?post_io (ps : Finch.Problem.t array) =
  let open Finch in
  (match compatible ps with
   | Ok () -> ()
   | Error e -> invalid_arg ("Batch.run: " ^ e));
  let n = Array.length ps in
  let p0 = ps.(0) in
  let spec =
    match p0.Problem.target with
    | Config.Gpu { spec; _ } -> spec
    | Config.Cpu _ | Config.Auto -> assert false
  in
  let allreduce = Target_cpu.noop_allreduce in
  let hosts = Array.map (fun p -> Lower.build p) ps in
  let host0 = hosts.(0) in
  let ncells = host0.Lower.mesh.Fvm.Mesh.ncells in
  let ncomp = Fvm.Field.ncomp host0.Lower.u in
  Array.iter
    (fun (h : Lower.state) ->
      if
        h.Lower.mesh.Fvm.Mesh.ncells <> ncells
        || Fvm.Field.ncomp h.Lower.u <> ncomp
      then invalid_arg "Batch.run: unknown shapes differ")
    hosts;
  let plan = Dataflow.plan_for_problem ?post_io p0 in
  let dev = Gpu_sim.Memory.create_device spec in
  let clock = Gpu_sim.Stream.create_clock () in
  let stream = Gpu_sim.Stream.create dev in
  (* per-request device mirrors + device-bound state, as in the solo
     executor, all resident on the one shared device *)
  let tag r name = Printf.sprintf "r%d.%s" r name in
  let dev_fields =
    Array.mapi
      (fun r (host : Lower.state) ->
        List.map
          (fun (name, f) ->
            let buf =
              Gpu_sim.Memory.alloc dev ~label:(tag r name)
                ~size:(Fvm.Field.size f)
            in
            let view =
              Fvm.Field.of_bigarray ~name ~ncells:(Fvm.Field.ncells f)
                ~ncomp:(Fvm.Field.ncomp f) buf.Gpu_sim.Memory.device_data
            in
            name, (buf, view))
          host.Lower.fields)
      hosts
  in
  let u_new_bufs =
    Array.mapi
      (fun r (host : Lower.state) ->
        Gpu_sim.Memory.alloc dev ~label:(tag r "u_new")
          ~size:(Fvm.Field.size host.Lower.u_new))
      hosts
  in
  let dstates =
    Array.mapi
      (fun r (host : Lower.state) ->
        let dev_only = List.map (fun (nm, (_, v)) -> nm, v) dev_fields.(r) in
        let view =
          Fvm.Field.of_bigarray ~name:"u_new" ~ncells ~ncomp
            u_new_bufs.(r).Gpu_sim.Memory.device_data
        in
        Lower.rebind host ~fields:dev_only ~u_new:view)
      hosts
  in
  let interior_cost =
    let open Eval in
    let cv = cost host0.Lower.eq.Transform.rvol
    and cs = cost host0.Lower.eq.Transform.rsurf in
    let nfaces_per_cell =
      float_of_int (Array.length host0.Lower.mesh.Fvm.Mesh.cell_faces.(0))
    in
    let flops = (cv.flops +. (nfaces_per_cell *. cs.flops)) *. 4.0 in
    let dram = 8. *. (2. +. (0.25 *. float_of_int (cv.loads + cs.loads))) in
    { Gpu_sim.Kernel.flops_per_thread = flops; dram_bytes_per_thread = dram }
  in
  let nd =
    match host0.Lower.uvar.Entity.vindices with
    | first :: _ -> Entity.index_extent first
    | [] -> 1
  in
  let owned_comps = Array.init ncomp (fun c -> c) in
  (* launch shape: O0 keeps the solo executor's per-band chunks (the
     request axis still folds into each launch); O1/O2 take the batched
     cells x dirs x bands x requests shape *)
  let comp_chunks =
    match p0.Problem.opt_level with
    | Config.O0 when ncomp > nd && ncomp mod nd = 0 ->
      Array.init (ncomp / nd) (fun k -> Array.sub owned_comps (k * nd) nd)
    | _ -> [| owned_comps |]
  in
  (* one kernel per chunk, its thread space request-major: threads
     [r * ncells * n_chunk ..] update request r, exactly as the solo
     kernel's thread [cell * n_chunk + slot] does *)
  let make_kernel (chunk : int array) =
    let n_chunk = Array.length chunk in
    let per_req = ncells * n_chunk in
    Gpu_sim.Kernel.make ~name:"interior_update_batch" ~cost:interior_cost
      (fun tid ->
        let r = tid / per_req in
        let rest = tid mod per_req in
        let cell = rest / n_chunk and slot = rest mod n_chunk in
        let comp = chunk.(slot) in
        let dstate = dstates.(r) in
        let env = dstate.Lower.env in
        env.Eval.cell <- cell;
        Lower.set_ivals_of_comp dstate comp;
        let v =
          Fvm.Field.get dstate.Lower.u cell comp
          +. (!(dstate.Lower.dt) *. Lower.dof_rhs_interior dstate)
        in
        Fvm.Field.set dstate.Lower.u_new cell comp v)
  in
  let kernels = Array.map make_kernel comp_chunks in
  let launch_step () =
    Array.iteri
      (fun i k ->
        Prt.Metrics.incr m_batched_launches;
        Gpu_sim.Stream.kernel stream clock k
          ~nthreads:(n * ncells * Array.length comp_chunks.(i))
          ())
      kernels
  in
  let u_bdrys =
    Array.init n (fun r ->
        ignore r;
        Fvm.Field.create ~name:"u_bdry" ~ncells ~ncomp ())
  in
  let track = Prt.Trace.main in
  (* one-time uploads per request *)
  Array.iteri
    (fun r (host : Lower.state) ->
      List.iter
        (fun (name, (buf, _)) ->
          let hf = List.assoc name host.Lower.fields in
          Prt.Breakdown.record host.Lower.breakdown Prt.Breakdown.Communication
            (Gpu_sim.Memory.h2d dev buf (Fvm.Field.raw hf)))
        dev_fields.(r))
    hosts;
  let kernel_time_seen = ref 0. in
  let every_step_h2d =
    List.filter_map
      (fun tr ->
        if tr.Dataflow.tr_h2d_every_step then Some tr.Dataflow.tr_var
        else None)
      plan.Dataflow.transfers
  in
  let combine_boundary r =
    let host = hosts.(r) in
    for cell = 0 to ncells - 1 do
      Array.iter
        (fun comp ->
          let v =
            Fvm.Field.get host.Lower.u_new cell comp
            +. Fvm.Field.get u_bdrys.(r) cell comp
          in
          Fvm.Field.set host.Lower.u cell comp v)
        owned_comps
    done
  in
  let sanitize_scan r =
    if Fvm.Field.sanitize_enabled () then begin
      let host = hosts.(r) in
      let cnt = ref 0 in
      for cell = 0 to ncells - 1 do
        Array.iter
          (fun comp ->
            if Fvm.Field.is_poison (Fvm.Field.get host.Lower.u cell comp)
            then incr cnt)
          owned_comps
      done;
      Fvm.Field.record_poison !cnt
    end
  in
  for _ = 1 to p0.Problem.nsteps do
    Array.iter (fun host -> Lower.run_pre_step host ~allreduce) hosts;
    (* 1. one async batched launch per chunk, covering every request.
       The kernels mutate the device states' envs directly, so
       invalidate their tape caches first. *)
    Array.iter (fun (ds : Lower.state) -> Eval.bump_epoch ds.Lower.env) dstates;
    launch_step ();
    (* 2. boundary contributions on the CPU per request, overlapping
       the shared kernel *)
    Array.iteri
      (fun r (host : Lower.state) ->
        Prt.Breakdown.timed ~track host.Lower.breakdown Prt.Breakdown.Boundary
          (fun () ->
            Fvm.Field.fill u_bdrys.(r) 0.;
            Lower.boundary_contributions host ~into:u_bdrys.(r)))
      hosts;
    (* 3. synchronize once; the modelled kernel time is shared, charged
       in equal shares *)
    Gpu_sim.Stream.synchronize stream clock;
    let kdelta = dev.Gpu_sim.Memory.kernel_time -. !kernel_time_seen in
    kernel_time_seen := dev.Gpu_sim.Memory.kernel_time;
    Array.iter
      (fun (host : Lower.state) ->
        Prt.Breakdown.record host.Lower.breakdown Prt.Breakdown.Intensity
          (kdelta /. float_of_int n))
      hosts;
    (* 4. download / combine / post-step / re-upload, per request *)
    Array.iteri
      (fun r (host : Lower.state) ->
        let b = host.Lower.breakdown in
        Prt.Breakdown.record b Prt.Breakdown.Communication
          (Gpu_sim.Memory.d2h dev u_new_bufs.(r) (Fvm.Field.raw host.Lower.u_new));
        Prt.Breakdown.timed ~track b Prt.Breakdown.Intensity (fun () ->
            combine_boundary r);
        sanitize_scan r;
        Prt.Breakdown.timed ~track b Prt.Breakdown.Temperature (fun () ->
            Lower.run_post_step host ~allreduce);
        List.iter
          (fun name ->
            match List.assoc_opt name dev_fields.(r) with
            | Some (buf, _) ->
              let hf = List.assoc name host.Lower.fields in
              Prt.Breakdown.record b Prt.Breakdown.Communication
                (Gpu_sim.Memory.h2d dev buf (Fvm.Field.raw hf))
            | None -> ())
          every_step_h2d;
        host.Lower.time := !(host.Lower.time) +. !(host.Lower.dt);
        incr host.Lower.step)
      hosts
  done;
  if Prt.Metrics.enabled () then
    Array.iter (fun (p : Problem.t) -> Prt.Metrics.add m_steps p.Problem.nsteps) ps;
  Array.mapi
    (fun r (host : Lower.state) ->
      let gpu =
        { Target_gpu.state = host;
          device = dev;
          breakdown = host.Lower.breakdown;
          plan;
          profile_threads = n * ncells * ncomp }
      in
      ignore r;
      { Solve.u = host.Lower.u;
        fields = host.Lower.fields;
        breakdown = host.Lower.breakdown;
        gpu = Some gpu;
        states = [| host |] })
    hosts
